// Multipath reproduces Figure 7: when a load balancer sprays the bundle
// across paths with imbalanced delays, Bundler's epoch measurements mix
// the paths — but the fraction of out-of-order congestion ACKs exposes the
// imbalance, and the sendbox disables rate control (§5.2) rather than
// mis-steer the bundle.
package main

import (
	"fmt"

	"bundler/internal/scenario"
	"bundler/internal/sim"
)

func main() {
	fmt.Println("40 flows across 4 load-balanced paths with 60 ms delay skew...")
	res := scenario.RunFig7(3, 20*sim.Second)

	for i, ts := range res.PathRTTms {
		fmt.Printf("path %d true RTT ≈ %6.1f ms\n", i+1, ts.MeanOver(0, 20*sim.Second))
	}
	est := 0.0
	for _, v := range res.EstimateRTTms.V {
		est += v
	}
	if n := len(res.EstimateRTTms.V); n > 0 {
		fmt.Printf("sendbox epoch RTT estimates: %d samples, mean %.1f ms (a blur across paths)\n",
			n, est/float64(n))
	}
	fmt.Printf("out-of-order congestion-ACK fraction: %.1f%%  (disable threshold: 5%%)\n", res.OOOFraction*100)
	fmt.Printf("sendbox mode: %v\n", res.Mode)
}
