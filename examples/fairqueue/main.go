// Fairqueue reproduces a small-scale version of the paper's headline
// result (Figure 9): running Stochastic Fairness Queueing at the Bundler
// sendbox cuts median flow-completion-time slowdown versus the status quo,
// approaching undeployable in-network fair queueing.
package main

import (
	"fmt"

	"bundler/internal/scenario"
)

func main() {
	const requests = 10000
	fmt.Printf("replaying %d web requests (heavy-tailed sizes, 84 of 96 Mbit/s offered)\n\n", requests)
	fmt.Printf("%-18s %8s %8s %10s\n", "configuration", "p50", "p90", "p99")
	for _, r := range scenario.RunFig9(7, requests) {
		s := r.Rec.Slowdowns
		fmt.Printf("%-18s %8.2f %8.2f %10.2f\n", r.Label, s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99))
	}
	fmt.Println("\nBundler (SFQ) ≈ In-Network FQ: the queue moved to the edge, where")
	fmt.Println("the operator can schedule it. FIFO at the sendbox shows aggregate")
	fmt.Println("congestion control alone is not enough (§7.2).")
}
