// Quickstart: build a two-site emulated network, attach a Bundler pair,
// run a handful of TCP transfers through it, and watch the queue shift
// from the in-network bottleneck to the sendbox where SFQ schedules it.
package main

import (
	"fmt"

	"bundler/internal/scenario"
	"bundler/internal/sim"
	"bundler/internal/tcp"
)

func main() {
	// A 96 Mbit/s bottleneck with 50 ms of propagation RTT and a 2-BDP
	// droptail buffer: the paper's §7.1 emulated path.
	net := scenario.NewNet(scenario.NetConfig{Seed: 42})

	// One site pairing with the default Bundler configuration: Copa inner
	// loop, Nimbus cross-traffic detection, SFQ scheduling.
	site := net.AddSite(scenario.DefaultBundleConfig())

	// A long-running backlogged transfer plus a stream of short requests.
	bulk := site.AddFlow(1<<40, tcp.NewCubic(), nil)
	var shortFCTs []sim.Time
	launchShort := func() {
		site.AddFlow(50<<10, tcp.NewCubic(), func(_ int64, fct sim.Time) {
			shortFCTs = append(shortFCTs, fct)
		})
	}
	sim.Tick(net.Eng, 2*sim.Second, launchShort)

	// Observe where the queue lives once per second.
	fmt.Println("time   pacing-rate  sendbox-queue  bottleneck-queue  mode")
	sim.Tick(net.Eng, 5*sim.Second, func() {
		fmt.Printf("%5s  %8.1f Mb/s %10.1f ms %13.1f ms   %v\n",
			net.Eng.Now(), site.SB.CurrentRate()/1e6,
			site.SB.QueueDelay().Millis(), net.Bottleneck.QueueDelay().Millis(),
			site.SB.Mode())
	})

	net.Eng.RunUntil(30 * sim.Second)
	site.SB.Stop()

	fmt.Printf("\nbulk transfer moved %.1f MB (%.1f Mbit/s)\n",
		float64(bulk.Acked())/1e6, float64(bulk.Acked())*8/30/1e6)
	var sum sim.Time
	for _, f := range shortFCTs {
		sum += f
	}
	if len(shortFCTs) > 0 {
		fmt.Printf("%d short requests finished, mean FCT %.1f ms — SFQ at the sendbox\n",
			len(shortFCTs), (sum / sim.Time(len(shortFCTs))).Millis())
		fmt.Println("keeps them from queueing behind the bulk transfer.")
	}
}
