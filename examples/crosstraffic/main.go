// Crosstraffic reproduces the Figure 10 timeline: Bundler schedules its
// bundle while the link is uncontested, detects a buffer-filling Cubic
// cross flow via Nimbus pulses and cedes control (pass-through with a
// 10 ms PI-held queue), then re-engages once the buffer-filler departs.
package main

import (
	"fmt"

	"bundler/internal/scenario"
)

func main() {
	fmt.Println("running the 180-second, three-phase cross-traffic timeline...")
	res := scenario.RunFig10(99)

	fmt.Printf("\n%-28s %12s %12s %10s %13s\n",
		"phase", "bundle Mb/s", "cross Mb/s", "queue ms", "pass-through")
	for _, p := range res.Phases {
		fmt.Printf("%-28s %12.1f %12.1f %10.1f %12.0f%%\n",
			p.Label, p.BundleMbps, p.CrossMbps, p.MeanQueueMs, p.PassThroughFrac*100)
	}

	fmt.Println("\nshort-flow slowdowns per phase (p50 / p90):")
	for _, p := range res.Phases {
		fmt.Printf("  %-28s %.2f / %.2f\n", p.Label, p.ShortFlowSlowdowns.P50, p.ShortFlowSlowdowns.P90)
	}
	fmt.Println("\nDuring the buffer-filling phase Bundler lets its endhost loops")
	fmt.Println("compete fairly rather than losing to the loss-based flow (§5.1).")
}
