module bundler

go 1.24
