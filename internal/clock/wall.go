// The wall clock: the same scheduling contract as sim.Engine, driven by
// monotonic real time. This is what lets the pilot datapath
// (internal/pilot) run the unmodified Sendbox/Receivebox/tcp/netem code
// against real UDP datagrams.
package clock

import (
	"math/rand"
	"sync"
	"time"
)

// Wall is a Clock backed by the machine's monotonic clock. A dedicated
// dispatch goroutine pops a timer heap and runs callbacks in deadline
// order, one at a time — the same single-threaded callback discipline
// as the simulator, so migrated components need no internal locking.
//
// Scheduling (CallAt/CallAfter, Timer arming) is safe from any
// goroutine; this is how external event sources (a UDP reader) inject
// work into the clock goroutine: CallAfter(0, ...) acts as a post.
//
// # Contract and documented deviations from sim.Engine
//
//   - Exactly-once, Stop-idempotent timers, negative-delay clamping,
//     and FIFO-among-equal-deadlines hold exactly as on the simulator.
//   - Ordering holds for the dispatch decision: among the events
//     currently due, the earliest (deadline, seq) runs first. Real time
//     advancing while a callback runs can make a later-scheduled event
//     due by the time the dispatcher looks again; that event still runs
//     after every earlier-deadline event, never before.
//   - Determinism is NOT provided. Callback timestamps observe real
//     scheduling jitter (timer resolution, GC, load), so two runs of
//     the same program differ. The deterministic RNG contract degrades
//     accordingly: the stream itself is seeded and reproducible, but
//     the interleaving of drawing components is not.
//   - CallAt with t in the past clamps to "now" instead of panicking:
//     on a wall clock the caller cannot atomically read Now and
//     schedule, so a past deadline is an inherent race, not a logic
//     error.
//
// # Pool ownership
//
// Packet-pool discipline under a Wall clock is the single-engine rule:
// all components of one Wall form one ownership domain (its callback
// goroutine), exactly like components of one sim.Engine. Two Walls in
// one process (the in-process pilot test) are two domains; packets
// crossing between them must do so by value (the pilot's wire codec),
// never by pointer.
type Wall struct {
	start time.Time
	rng   *rand.Rand

	mu      sync.Mutex
	events  wallHeap
	seq     uint64
	kick    chan struct{}
	closed  bool
	done    chan struct{}
	running bool // dispatcher is currently executing a callback
}

type wallEvent struct {
	at  Time
	seq uint64
	fn  func(a0, a1 any)
	a0  any
	a1  any
	// tmr, when non-nil, makes this a timer event: it fires only if the
	// timer's generation still matches gen (Stop/re-arm bump the
	// generation, which is what makes cancellation and exactly-once
	// composable without removing heap entries).
	tmr *WallTimer
	gen uint64
}

// wallHeap is a binary min-heap ordered by (at, seq) — the same total
// order as the simulator's event queue.
type wallHeap []*wallEvent

func (h wallHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h wallHeap) swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *wallHeap) push(ev *wallEvent) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *wallHeap) popMin() *wallEvent {
	old := *h
	n := len(old) - 1
	old.swap(0, n)
	ev := old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && old[:n].less(r, l) {
			j = r
		}
		if !old[:n].less(j, i) {
			break
		}
		old[:n].swap(i, j)
		i = j
	}
	return ev
}

// NewWall returns a running wall clock whose Time zero is the moment of
// this call and whose RNG is seeded with seed. Call Close when done to
// stop the dispatch goroutine.
func NewWall(seed int64) *Wall {
	w := &Wall{
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	go w.dispatch()
	return w
}

// Now returns monotonic nanoseconds since the Wall was created.
func (w *Wall) Now() Time { return Time(time.Since(w.start)) }

// Rand returns the clock's seeded random source. Use only from the
// clock goroutine (inside callbacks): rand.Rand is not safe for
// concurrent use.
func (w *Wall) Rand() *rand.Rand { return w.rng }

// CallAt schedules fn(a0, a1) at absolute time t (clamped to now if t is
// already past). Safe from any goroutine.
func (w *Wall) CallAt(t Time, fn func(a0, a1 any), a0, a1 any) {
	w.schedule(&wallEvent{at: t, fn: fn, a0: a0, a1: a1})
}

// CallAfter schedules fn(a0, a1) d from now; negative d clamps to zero
// (the same contract sim.Engine.CallAfter keeps). Safe from any
// goroutine.
func (w *Wall) CallAfter(d Time, fn func(a0, a1 any), a0, a1 any) {
	if d < 0 {
		d = 0
	}
	w.CallAt(w.Now()+d, fn, a0, a1)
}

func (w *Wall) schedule(ev *wallEvent) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.seq++
	ev.seq = w.seq
	w.events.push(ev)
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// Close stops the dispatcher after the currently running callback (if
// any) returns. Pending events are discarded; scheduling after Close is
// a no-op. Close blocks until the dispatch goroutine has exited and is
// idempotent.
func (w *Wall) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return
	}
	w.closed = true
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.done
}

// dispatch is the clock goroutine: wait for the earliest deadline, pop
// every due event in (deadline, seq) order, run each callback without
// holding the lock.
func (w *Wall) dispatch() {
	defer close(w.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return
		}
		if len(w.events) == 0 {
			w.mu.Unlock()
			<-w.kick
			continue
		}
		next := w.events[0]
		now := w.Now()
		if next.at > now {
			w.mu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(time.Duration(next.at - now))
			select {
			case <-timer.C:
			case <-w.kick:
			}
			continue
		}
		ev := w.events.popMin()
		if t := ev.tmr; t != nil {
			// A stopped or re-armed timer leaves its stale heap entry
			// behind; the generation check discards it here.
			if t.gen != ev.gen {
				w.mu.Unlock()
				continue
			}
			t.pending = false
		}
		w.running = true
		w.mu.Unlock()
		ev.run()
		w.mu.Lock()
		w.running = false
		w.mu.Unlock()
	}
}

func (ev *wallEvent) run() {
	if ev.tmr != nil {
		ev.tmr.fn()
		return
	}
	ev.fn(ev.a0, ev.a1)
}

// WallTimer implements Timer for a Wall clock. It is safe for use from
// any goroutine, though components migrated from the simulator only
// ever touch it from the clock goroutine.
type WallTimer struct {
	w  *Wall
	fn func()
	// gen and pending are guarded by w.mu.
	gen     uint64
	pending bool
}

// NewTimer implements Clock.
func (w *Wall) NewTimer(fn func()) Timer { return &WallTimer{w: w, fn: fn} }

// ArmAt implements Timer: (re)schedule the callback at absolute time at
// (clamped to now if past). An armed timer is rescheduled, exactly like
// cancel-then-arm.
func (t *WallTimer) ArmAt(at Time) {
	w := t.w
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	t.gen++
	t.pending = true
	w.seq++
	w.events.push(&wallEvent{at: at, seq: w.seq, tmr: t, gen: t.gen})
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// ArmAfter implements Timer; negative d clamps to zero.
func (t *WallTimer) ArmAfter(d Time) {
	if d < 0 {
		d = 0
	}
	t.ArmAt(t.w.Now() + d)
}

// Stop implements Timer: disarm without firing. Idempotent.
func (t *WallTimer) Stop() {
	w := t.w
	w.mu.Lock()
	t.gen++
	t.pending = false
	w.mu.Unlock()
}

// Pending implements Timer.
func (t *WallTimer) Pending() bool {
	w := t.w
	w.mu.Lock()
	p := t.pending
	w.mu.Unlock()
	return p
}

// wallTicker re-arms a WallTimer every period.
type wallTicker struct {
	timer   Timer
	period  Time
	fn      func()
	mu      sync.Mutex
	stopped bool
}

// Tick implements Clock. period must be positive.
func (w *Wall) Tick(period Time, fn func()) Ticker {
	if period <= 0 {
		panic("clock: Tick period must be positive")
	}
	t := &wallTicker{period: period, fn: fn}
	t.timer = w.NewTimer(t.tick)
	t.timer.ArmAfter(period)
	return t
}

func (t *wallTicker) tick() {
	t.mu.Lock()
	stopped := t.stopped
	t.mu.Unlock()
	if stopped {
		return
	}
	t.fn()
	t.mu.Lock()
	if !t.stopped {
		t.timer.ArmAfter(t.period)
	}
	t.mu.Unlock()
}

// Stop cancels future ticks.
func (t *wallTicker) Stop() {
	t.mu.Lock()
	t.stopped = true
	t.mu.Unlock()
	t.timer.Stop()
}

var _ Clock = (*Wall)(nil)
