// Package clock abstracts time and scheduling for every component of the
// Bundler reproduction. The paper's Bundler is a deployed middlebox
// processing live traffic; this repository grew up as a simulator, with
// *sim.Engine hard-wired into every constructor. The Clock interface is
// the seam that removes that assumption: the same bundle/qdisc/tcp/netem
// code runs on the simulator's virtual clock (deterministic, the golden
// path) or on a wall clock moving real UDP datagrams (internal/pilot).
//
// Two implementations exist:
//
//   - *sim.Engine satisfies Clock natively: virtual time, single-threaded,
//     exactly reproducible given a seed.
//   - *Wall (this package) drives the same contract from monotonic
//     time.Now with a timer-heap dispatch goroutine. It keeps the
//     ordering and exactly-once guarantees but is, by nature, not
//     deterministic — see the Wall documentation for the exact
//     deviations.
//
// The scheduling contract shared by all implementations:
//
//   - Callbacks run one at a time ("the clock goroutine"): no two
//     callbacks of one Clock ever run concurrently.
//   - Callbacks dispatch in timestamp order, FIFO among equal
//     timestamps (scheduling order breaks ties).
//   - CallAfter clamps negative delays to zero; it never panics.
//   - A scheduled callback fires exactly once, unless cancelled
//     (Timer.Stop) before it fires. Stop is idempotent.
//
// Units: Time is integer nanoseconds, used for both timestamps and
// durations; rates elsewhere in the repository are float64 bits/second.
package clock

import (
	"fmt"
	"math/rand"
)

// Time is a timestamp or duration in nanoseconds. On the simulator it is
// virtual time since engine construction; on a wall clock it is monotonic
// time since the clock was created.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Clock is the injectable time source and scheduler. *sim.Engine
// implements it for virtual time; *Wall implements it for real time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() Time

	// Rand returns the clock's random source. On the simulator it is
	// the seeded deterministic stream every stochastic component must
	// draw from; on a wall clock it is seeded too, but callback
	// interleaving makes the draw order non-reproducible. It must only
	// be used from the clock goroutine (inside callbacks).
	Rand() *rand.Rand

	// CallAt schedules fn(a0, a1) at absolute time t. fn should be a
	// package-level function (or a capture-free literal); the values it
	// needs travel in a0/a1, which keeps the simulator's hot path
	// allocation-free. Scheduling in the past is implementation-defined:
	// the simulator panics (it always indicates a logic error in a
	// deterministic run), the wall clock clamps to "as soon as
	// possible" (racing real time is inherent, not a bug).
	CallAt(t Time, fn func(a0, a1 any), a0, a1 any)

	// CallAfter is CallAt relative to Now; negative d is clamped to
	// zero on every implementation.
	CallAfter(d Time, fn func(a0, a1 any), a0, a1 any)

	// NewTimer returns an unarmed reusable one-shot timer bound to fn.
	NewTimer(fn func()) Timer

	// Tick invokes fn every period until the returned Ticker is
	// stopped. The first invocation is one period from now. period must
	// be positive.
	Tick(period Time, fn func()) Ticker
}

// Timer is a reusable one-shot timer: components that repeatedly
// schedule, cancel, and re-arm the same callback (retransmission
// timeouts, pacing gates) hold one Timer for their lifetime. Re-arming
// an armed timer reschedules it; the callback runs at most once per arm.
type Timer interface {
	// ArmAt (re)schedules the callback at absolute time at.
	ArmAt(at Time)
	// ArmAfter arms the timer d from now; negative d is clamped to zero.
	ArmAfter(d Time)
	// Stop disarms the timer. Stopping an unarmed (or already-fired)
	// timer is a no-op; Stop is idempotent.
	Stop()
	// Pending reports whether the timer is armed and will fire.
	Pending() bool
}

// Ticker is a periodic callback; Stop cancels future ticks.
type Ticker interface {
	Stop()
}

// At schedules a plain func() at absolute time t on any Clock, for call
// sites that need closure convenience rather than the allocation-free
// two-argument path.
func At(c Clock, t Time, fn func()) { c.CallAt(t, runThunk, fn, nil) }

// After schedules a plain func() d from now (negative d clamps to zero).
func After(c Clock, d Time, fn func()) { c.CallAfter(d, runThunk, fn, nil) }

func runThunk(a0, _ any) { a0.(func())() }
