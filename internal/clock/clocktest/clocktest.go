// Package clocktest is the shared conformance suite for clock.Clock
// implementations. The simulator engine and the wall clock both run it
// (see internal/sim and internal/clock tests), so the scheduling
// contract the migrated components rely on — timestamp ordering with
// FIFO tie-break, exactly-once delivery, negative-delay clamping,
// Stop-idempotent timers — is pinned by one set of assertions rather
// than drifting per implementation.
package clocktest

import (
	"testing"

	"bundler/internal/clock"
)

// Factory builds a fresh clock for one subtest, plus a wait function
// that returns only after every callback scheduled at or before horizon
// has finished running. For the simulator that is RunUntil; for the
// wall clock it blocks on a sentinel event. wait must establish a
// happens-before edge, so the test goroutine may freely read state the
// callbacks wrote.
type Factory func(t *testing.T) (c clock.Clock, wait func(horizon clock.Time))

// Timescale note: subtests schedule a few tens of milliseconds out.
// On the simulator that is instant; on the wall clock it keeps each
// subtest under ~100ms real time while staying far above timer
// resolution and scheduler jitter, so ordering assertions are sound.

// Run executes the full contract suite against the implementation
// produced by f.
func Run(t *testing.T, f Factory) {
	t.Run("Ordering", func(t *testing.T) { testOrdering(t, f) })
	t.Run("ExactlyOnce", func(t *testing.T) { testExactlyOnce(t, f) })
	t.Run("NegativeDelayClamp", func(t *testing.T) { testNegativeDelayClamp(t, f) })
	t.Run("TimerStopIdempotent", func(t *testing.T) { testTimerStopIdempotent(t, f) })
	t.Run("TimerRearm", func(t *testing.T) { testTimerRearm(t, f) })
	t.Run("TimerRearmAfterStop", func(t *testing.T) { testTimerRearmAfterStop(t, f) })
	t.Run("Ticker", func(t *testing.T) { testTicker(t, f) })
	t.Run("TickRejectsNonPositivePeriod", func(t *testing.T) { testTickPanics(t, f) })
	t.Run("Rand", func(t *testing.T) { testRand(t, f) })
}

// testOrdering: callbacks dispatch in timestamp order, FIFO among equal
// timestamps regardless of scheduling order.
func testOrdering(t *testing.T, f Factory) {
	c, wait := f(t)
	base := c.Now() + 20*clock.Millisecond
	var got []string
	rec := func(s string) func() { return func() { got = append(got, s) } }
	clock.At(c, base+8*clock.Millisecond, rec("d"))
	clock.At(c, base+2*clock.Millisecond, rec("b1"))
	clock.At(c, base+5*clock.Millisecond, rec("c"))
	clock.At(c, base+2*clock.Millisecond, rec("b2")) // same stamp as b1, scheduled later
	clock.At(c, base, rec("a"))
	wait(base + 10*clock.Millisecond)
	want := []string{"a", "b1", "b2", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("fired %d callbacks, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// testExactlyOnce: each scheduled callback fires exactly once even when
// the clock keeps running long past its deadline.
func testExactlyOnce(t *testing.T, f Factory) {
	c, wait := f(t)
	base := c.Now() + 5*clock.Millisecond
	counts := make([]int, 4)
	for i := range counts {
		i := i
		clock.At(c, base+clock.Time(i)*clock.Millisecond, func() { counts[i]++ })
	}
	wait(base + 20*clock.Millisecond)
	wait(c.Now() + 20*clock.Millisecond) // keep running well past the deadlines
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("callback %d fired %d times, want exactly once", i, n)
		}
	}
}

// testNegativeDelayClamp: CallAfter (and Timer.ArmAfter) with negative
// delay clamps to zero — the callback still fires, before anything
// scheduled later in time.
func testNegativeDelayClamp(t *testing.T, f Factory) {
	c, wait := f(t)
	var got []string
	clock.After(c, -5*clock.Millisecond, func() { got = append(got, "neg") })
	clock.After(c, 5*clock.Millisecond, func() { got = append(got, "pos") })
	tm := c.NewTimer(func() { got = append(got, "timer-neg") })
	tm.ArmAfter(-3 * clock.Millisecond)
	wait(c.Now() + 10*clock.Millisecond)
	if len(got) != 3 {
		t.Fatalf("fired %v, want all three callbacks (negative delays must clamp, not drop)", got)
	}
	if got[2] != "pos" {
		t.Fatalf("dispatch order %v: clamped-negative callbacks must precede the +5ms one", got)
	}
}

// testTimerStopIdempotent: Stop on an unarmed timer is a no-op, Stop on
// an armed timer cancels exactly that arm, and repeated Stops are
// harmless.
func testTimerStopIdempotent(t *testing.T, f Factory) {
	c, wait := f(t)
	fired := 0
	tm := c.NewTimer(func() { fired++ })
	tm.Stop() // unarmed: no-op, must not panic
	if tm.Pending() {
		t.Fatalf("unarmed timer reports Pending")
	}
	base := c.Now() + 10*clock.Millisecond
	tm.ArmAt(base)
	if !tm.Pending() {
		t.Fatalf("armed timer does not report Pending")
	}
	tm.Stop()
	tm.Stop() // idempotent
	if tm.Pending() {
		t.Fatalf("stopped timer reports Pending")
	}
	wait(base + 10*clock.Millisecond)
	if fired != 0 {
		t.Fatalf("stopped timer fired %d times", fired)
	}
}

// testTimerRearm: re-arming an armed timer replaces the old deadline —
// one fire, at the new time (proven by ordering against a marker event
// between the two deadlines).
func testTimerRearm(t *testing.T, f Factory) {
	c, wait := f(t)
	base := c.Now() + 10*clock.Millisecond
	var got []string
	tm := c.NewTimer(func() { got = append(got, "timer") })
	tm.ArmAt(base + 2*clock.Millisecond)
	tm.ArmAt(base + 14*clock.Millisecond) // re-arm later, past the marker
	clock.At(c, base+8*clock.Millisecond, func() { got = append(got, "marker") })
	wait(base + 20*clock.Millisecond)
	if len(got) != 2 || got[0] != "marker" || got[1] != "timer" {
		t.Fatalf("got %v, want [marker timer]: re-arm must replace the old deadline, not add to it", got)
	}
	if tm.Pending() {
		t.Fatalf("fired timer reports Pending")
	}
}

// testTimerRearmAfterStop: a stopped timer is reusable.
func testTimerRearmAfterStop(t *testing.T, f Factory) {
	c, wait := f(t)
	fired := 0
	tm := c.NewTimer(func() { fired++ })
	tm.ArmAfter(2 * clock.Millisecond)
	tm.Stop()
	tm.ArmAfter(5 * clock.Millisecond)
	wait(c.Now() + 15*clock.Millisecond)
	if fired != 1 {
		t.Fatalf("re-armed-after-stop timer fired %d times, want 1", fired)
	}
}

// testTicker: fires every period until stopped; stopping from inside
// the callback takes effect immediately.
func testTicker(t *testing.T, f Factory) {
	c, wait := f(t)
	ticks := 0
	var tk clock.Ticker
	tk = c.Tick(3*clock.Millisecond, func() {
		ticks++
		if ticks == 3 {
			tk.Stop()
		}
	})
	wait(c.Now() + 30*clock.Millisecond)
	if ticks != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3", ticks)
	}
}

// testTickPanics: a non-positive period is a programming error on every
// implementation.
func testTickPanics(t *testing.T, f Factory) {
	c, _ := f(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("Tick(0) did not panic")
		}
	}()
	c.Tick(0, func() {})
}

// testRand: the clock exposes a usable seeded source.
func testRand(t *testing.T, f Factory) {
	c, _ := f(t)
	if c.Rand() == nil {
		t.Fatalf("Rand() returned nil")
	}
	c.Rand().Int63() // must not panic
}
