package clock_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"bundler/internal/clock"
	"bundler/internal/clock/clocktest"
)

// TestWallContract runs the shared conformance suite against the
// real-time implementation.
func TestWallContract(t *testing.T) {
	clocktest.Run(t, func(t *testing.T) (clock.Clock, func(clock.Time)) {
		w := clock.NewWall(1)
		t.Cleanup(w.Close)
		wait := func(horizon clock.Time) {
			done := make(chan struct{})
			clock.At(w, horizon, func() { close(done) })
			<-done
		}
		return w, wait
	})
}

// TestWallCloseIdempotent: Close may be called repeatedly, including
// concurrently, and scheduling after Close is a silent no-op.
func TestWallCloseIdempotent(t *testing.T) {
	w := clock.NewWall(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); w.Close() }()
	}
	wg.Wait()
	w.Close()
	clock.After(w, 0, func() { t.Error("callback ran after Close") })
	w.NewTimer(func() { t.Error("timer fired after Close") }).ArmAfter(0)
}

// TestWallCrossGoroutineScheduling: the wall clock accepts scheduling
// from arbitrary goroutines (how UDP readers inject packets into the
// clock domain) and still serializes all callbacks.
func TestWallCrossGoroutineScheduling(t *testing.T) {
	w := clock.NewWall(1)
	defer w.Close()
	const producers, perProducer = 8, 50
	var active, total int32
	var wg sync.WaitGroup
	done := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				clock.After(w, 0, func() {
					if atomic.AddInt32(&active, 1) != 1 {
						t.Error("two callbacks ran concurrently")
					}
					atomic.AddInt32(&active, -1)
					if atomic.AddInt32(&total, 1) == producers*perProducer {
						close(done)
					}
				})
			}
		}()
	}
	wg.Wait()
	<-done
}
