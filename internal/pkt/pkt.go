// Package pkt defines the packet model shared by the emulated network,
// the endhost transports, and the Bundler middleboxes.
//
// A Packet carries just enough header state to reproduce the paper's
// mechanisms: the IPv4-style identification field plus destination
// address/port feed the FNV-1a epoch-boundary hash (§4.5 of the paper),
// and the TCP-ish sequence/ack fields drive the endhost transports.
package pkt

import (
	"sync"
	"sync/atomic"

	"bundler/internal/clock"
)

// Proto distinguishes transport protocols. Bundler itself is
// protocol-agnostic; the emulator uses the protocol only to route packets
// to the right endpoint logic. Size is the on-wire packet size in bytes,
// headers included (MTU 1500, 40-byte TCP/IPv4-style header).
type Proto uint8

// Supported protocols.
const (
	ProtoTCP Proto = iota
	ProtoUDP
	// ProtoCtl marks Bundler's out-of-band control messages (congestion
	// ACKs and epoch-size updates). On a real deployment these are plain
	// UDP datagrams between the boxes; a distinct value keeps the
	// emulator's demultiplexing honest.
	ProtoCtl
)

// Flags holds TCP-style control bits.
type Flags uint8

// Flag bits.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
)

// Addr identifies an endpoint in the emulated network.
type Addr struct {
	Host uint32
	Port uint16
}

// SACKBlock reports one contiguous received byte range [Start, End) in
// an ACK. Up to four blocks travel inline in the packet (RFC 2018's
// practical limit) so ACK emission needs no per-packet allocation.
type SACKBlock struct{ Start, End int64 }

// Packet is a single datagram in flight. Packets are passed by pointer and
// owned by whichever component currently holds them; they are never shared
// after being forwarded.
//
// # Ownership and pooling
//
// Packets are pooled (Get/Put). Ownership transfers on every hand-off:
// calling Receive(p) gives p away, and the caller must not touch it
// again — the new owner may release it, and the pool may already have
// handed the same object to an unrelated flow. Exactly one component
// releases each packet, exactly once, at the end of its life:
//
//   - the endpoint that consumes it (TCP sender/receiver, ping
//     client/server, Bundler box eating a control message), or
//   - the dropper (a qdisc discarding an already-accepted packet, a
//     demux/mux with no route, a Lossy element, a Sink).
//
// Enqueue returning false does NOT drop: the packet was never accepted,
// so it still belongs to the caller. Taps and hooks (netem.Tap,
// OnDequeue/OnTransmitted/OnDelivery, Receivebox.Observe) borrow the
// packet for the duration of the call and must not retain or release
// it. Double release panics.
type Packet struct {
	// Header subset used by Bundler's epoch hash.
	IPID uint16
	Src  Addr
	Dst  Addr

	Proto Proto
	Size  int // total wire size in bytes, headers included

	// Transport state (TCP).
	Seq   int64 // first payload byte offset
	Ack   int64 // cumulative ack: next expected byte
	Flags Flags

	// FlowID identifies the end-to-end connection for scheduling and
	// statistics. It is derived from the 5-tuple when flows are created.
	FlowID uint64

	// Retransmit marks a retransmitted segment. Real Bundler relies on the
	// IP ID changing on retransmission to avoid spurious epoch samples;
	// the emulator's TCP assigns a fresh IPID on every transmission, and
	// this bit exists for tests to assert that property.
	Retransmit bool

	// SACK carries up to four selective-ACK blocks inline; NSACK is the
	// length of the valid prefix. Zero NSACK means no SACK information.
	SACK  [4]SACKBlock
	NSACK uint8

	// Payload carries protocol-specific metadata (e.g. a control message).
	Payload any

	// Tunneled marks a packet carrying Bundler's encapsulation header
	// (§4.5's alternative to hash-based epoch identification: explicit
	// marker fields in an outer header, required where the IPv4 ID field
	// is unavailable, e.g. IPv6). TunnelSeq is the epoch marker; zero
	// means "not an epoch boundary".
	Tunneled  bool
	TunnelSeq uint64

	// EnqueuedAt is stamped by queues to trace per-queue delays.
	EnqueuedAt clock.Time
	// SentAt is stamped when the packet first leaves its origin host, for
	// end-to-end latency statistics.
	SentAt clock.Time

	// pooled marks a packet currently resting in the free list; Put uses
	// it to catch double releases (a lifecycle bug that would otherwise
	// surface as impossible-to-debug field corruption two flows away).
	pooled bool

	// owner is the single-owner Pool the packet's storage belongs to (nil:
	// the shared global pool). It survives the reset in Put so releases
	// route back to the owning partition, and it changes only through
	// Transfer at a shard barrier — never mid-flight.
	owner *Pool
}

// Pool bookkeeping. Counters are global (sweeps run engines on many
// goroutines against the one pool) and monotonically increasing; the
// perf harness differences them around a run to price its hot path in
// packets, and the invariant tests use Live to check conservation.
var (
	pool     sync.Pool
	getCount atomic.Int64
	putCount atomic.Int64
	newCount atomic.Int64
)

// PoolStats is a snapshot of the packet pool counters.
type PoolStats struct {
	// Gets counts packets handed out by Get (the number of packets
	// "sent" since process start, pooled or fresh).
	Gets int64
	// Puts counts packets released back by Put.
	Puts int64
	// News counts pool misses: Gets served by a fresh allocation.
	News int64
}

// Stats returns a snapshot of the pool counters.
func Stats() PoolStats {
	return PoolStats{Gets: getCount.Load(), Puts: putCount.Load(), News: newCount.Load()}
}

// Live reports packets currently outstanding: handed out by Get and not
// yet returned by Put. Packets constructed directly (tests) and never
// released bias it low; packets dropped into test blackholes bias it
// high — treat it as a conservation signal, not an exact census.
func Live() int64 { return getCount.Load() - putCount.Load() }

// Get returns a zeroed packet from the pool, allocating only on a pool
// miss. The caller owns it until hand-off (see the Packet lifecycle
// contract above).
func Get() *Packet {
	getCount.Add(1)
	if v := pool.Get(); v != nil {
		p := v.(*Packet)
		p.pooled = false
		return p
	}
	newCount.Add(1)
	return new(Packet)
}

// Put releases a packet back to the pool it belongs to: the per-shard
// Pool that issued it, or the shared global pool. Only the packet's
// current owner may call it, exactly once; releasing a packet twice
// panics. Packets built with plain &Packet{} (tests do this) may be
// released too — the global pool adopts them.
func Put(p *Packet) {
	if pl := p.owner; pl != nil {
		pl.Put(p)
		return
	}
	if p.pooled {
		panic("pkt: packet released twice")
	}
	*p = Packet{pooled: true}
	putCount.Add(1)
	pool.Put(p)
}

// Pool is a single-owner packet free list for one event-engine shard.
// Unlike the global pool it is not safe for concurrent use: exactly one
// goroutine (the shard's worker for the current window) may call Get/Put
// at a time. Packets remember their issuing Pool and Put routes them
// back to it even when released by package-level pkt.Put, so code that
// consumes packets never needs to know which shard minted them. Packets
// that physically cross a shard boundary are re-tagged with Transfer at
// the window barrier, where the sharded runner is single-threaded.
//
// The global Gets/Puts/News counters still tick for pool-issued packets:
// the perf harness prices runs by differencing Stats() and must see
// per-shard traffic too.
type Pool struct {
	free []*Packet

	// Per-pool counters mirror the global ones (same meanings), plus the
	// barrier hand-off tallies. Not atomic: Gets/Puts/News are touched
	// only by the owning shard's worker, XferIn/XferOut only at the
	// single-threaded barrier.
	gets, puts, news int64
	xferIn, xferOut  int64
}

// Get returns a zeroed packet owned by this pool. A nil receiver
// delegates to the shared global pool, so components can hold an
// optional *Pool and call Get unconditionally.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return Get()
	}
	getCount.Add(1)
	pl.gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		p.pooled = false
		return p
	}
	newCount.Add(1)
	pl.news++
	return &Packet{owner: pl}
}

// Put releases a packet to this pool. The packet must currently be
// tagged with pl as its owner — releasing a foreign packet here would
// silently migrate storage between shards, so it panics instead.
func (pl *Pool) Put(p *Packet) {
	if p.owner != pl {
		panic("pkt: packet released to a pool that does not own it")
	}
	if p.pooled {
		panic("pkt: packet released twice")
	}
	*p = Packet{pooled: true, owner: pl}
	putCount.Add(1)
	pl.puts++
	pl.free = append(pl.free, p)
}

// Transfer moves ownership of an in-flight packet to dst (nil: the
// global pool), so its eventual Put returns storage to the shard that
// will actually release it. Callers must hold exclusive access to both
// pools — in practice the sharded runner's window barrier, which is
// single-threaded.
func Transfer(p *Packet, dst *Pool) {
	if p.pooled {
		panic("pkt: transfer of a released packet")
	}
	if p.owner == dst {
		return
	}
	if p.owner != nil {
		p.owner.xferOut++
	}
	if dst != nil {
		dst.xferIn++
	}
	p.owner = dst
}

// Stats returns this pool's counter snapshot. TransferredIn/Out count
// packets whose ownership moved into/out of the pool at shard barriers;
// conservation across a run is Gets + TransferredIn ≥ Puts + TransferredOut
// (the slack is packets still in flight).
func (pl *Pool) Stats() (s PoolStats, xferIn, xferOut int64) {
	return PoolStats{Gets: pl.gets, Puts: pl.puts, News: pl.news}, pl.xferIn, pl.xferOut
}

// HeaderBytes is the emulator's fixed per-packet header overhead
// (IP + transport), matching the 40-byte TCP/IPv4 header the paper's MTU
// arithmetic assumes.
const HeaderBytes = 40

// MTU is the wire MTU used throughout the emulator.
const MTU = 1500

// TunnelOverhead is the encapsulation header size Bundler adds per packet
// in tunnel mode (comparable to a minimal L3-in-L3 shim).
const TunnelOverhead = 8

// MSS is the maximum segment payload.
const MSS = MTU - HeaderBytes

// FNV-1a constants (64-bit), per the FNV draft the paper cites.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// EpochHash hashes the header subset the paper's prototype uses to
// identify epoch boundary packets: the IP ID field plus destination IP and
// port (§4.5). Both the sendbox and the receivebox compute this hash on
// every packet; a packet is an epoch boundary when the hash is ≡ 0 modulo
// the current epoch size.
func EpochHash(p *Packet) uint64 {
	h := uint64(fnvOffset)
	step := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	step(byte(p.IPID))
	step(byte(p.IPID >> 8))
	step(byte(p.Dst.Host))
	step(byte(p.Dst.Host >> 8))
	step(byte(p.Dst.Host >> 16))
	step(byte(p.Dst.Host >> 24))
	step(byte(p.Dst.Port))
	step(byte(p.Dst.Port >> 8))
	return h
}

// FlowHash hashes the 5-tuple; qdiscs use it to map packets to buckets.
// The perturbation argument lets SFQ re-key periodically, as the Linux
// implementation does. The hash is byte-wise FNV-1a: word-wise folding
// would leave the low bits (the ones bucket selection uses) dependent on
// only the low input bits.
func FlowHash(p *Packet, perturb uint64) uint64 {
	h := uint64(fnvOffset) ^ perturb
	step := func(v uint64, n int) {
		for i := 0; i < n; i++ {
			h ^= v & 0xFF
			h *= fnvPrime
			v >>= 8
		}
	}
	step(uint64(p.Src.Host), 4)
	step(uint64(p.Src.Port), 2)
	step(uint64(p.Dst.Host), 4)
	step(uint64(p.Dst.Port), 2)
	step(uint64(p.Proto), 1)
	// FNV's low bits avalanche poorly (the multiply never carries high
	// bits downward), and both SFQ buckets and ECMP path choice reduce the
	// hash modulo small powers of two. Finish with a strong mixer.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
