package pkt

import (
	"hash/fnv"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEpochHashMatchesStdlibFNV(t *testing.T) {
	p := &Packet{IPID: 0xBEEF, Dst: Addr{Host: 0x0A000001, Port: 443}}
	h := fnv.New64a()
	h.Write([]byte{
		0xEF, 0xBE, // IPID little-endian
		0x01, 0x00, 0x00, 0x0A, // Dst.Host little-endian
		0xBB, 0x01, // Dst.Port little-endian
	})
	if got, want := EpochHash(p), h.Sum64(); got != want {
		t.Fatalf("EpochHash = %#x, want stdlib FNV-1a %#x", got, want)
	}
}

func TestEpochHashSameAtBothBoxes(t *testing.T) {
	// The hash must depend only on fields that survive transit unmodified:
	// copying a packet (as the receivebox effectively observes the same
	// header) must yield the same hash.
	p := &Packet{IPID: 7, Src: Addr{1, 2}, Dst: Addr{3, 4}, Seq: 100, Size: 1500}
	q := *p
	q.EnqueuedAt = 55 // mutated in the network
	q.SentAt = 99
	if EpochHash(p) != EpochHash(&q) {
		t.Fatal("hash changed across fields that mutate in transit")
	}
}

func TestEpochHashDifferentiatesPackets(t *testing.T) {
	// Same flow, different IPID => different hash (property (iii): it must
	// distinguish individual packets, not just flows).
	a := &Packet{IPID: 1, Dst: Addr{9, 80}}
	b := &Packet{IPID: 2, Dst: Addr{9, 80}}
	if EpochHash(a) == EpochHash(b) {
		t.Fatal("hash failed to differentiate packets of one flow")
	}
}

func TestEpochHashIgnoresSrcAndSeq(t *testing.T) {
	// The prototype's subset is {IPID, dst IP, dst port}; TCP sequence is
	// deliberately excluded (property (iv): retransmissions get a fresh
	// IPID instead).
	a := &Packet{IPID: 5, Src: Addr{1, 1}, Dst: Addr{2, 2}, Seq: 0}
	b := &Packet{IPID: 5, Src: Addr{3, 3}, Dst: Addr{2, 2}, Seq: 1448}
	if EpochHash(a) != EpochHash(b) {
		t.Fatal("hash depends on fields outside the header subset")
	}
}

func TestFlowHashGroupsByFiveTuple(t *testing.T) {
	a := &Packet{IPID: 1, Src: Addr{1, 10}, Dst: Addr{2, 20}, Proto: ProtoTCP}
	b := &Packet{IPID: 99, Src: Addr{1, 10}, Dst: Addr{2, 20}, Proto: ProtoTCP}
	if FlowHash(a, 0) != FlowHash(b, 0) {
		t.Fatal("flow hash differs within one flow")
	}
	c := &Packet{Src: Addr{1, 11}, Dst: Addr{2, 20}, Proto: ProtoTCP}
	if FlowHash(a, 0) == FlowHash(c, 0) {
		t.Fatal("flow hash collides across flows (unlucky but deterministic: pick different test tuples)")
	}
}

func TestFlowHashPerturbation(t *testing.T) {
	p := &Packet{Src: Addr{1, 10}, Dst: Addr{2, 20}}
	if FlowHash(p, 1) == FlowHash(p, 2) {
		t.Fatal("perturbation did not change the hash")
	}
}

// Property: epoch boundary sampling with a power-of-two epoch size N has
// the subset property the paper relies on: every boundary under 2N is also
// a boundary under N (receivebox sampling with a stale, larger epoch size
// observes a strict subset).
func TestPropertyPowerOfTwoSubset(t *testing.T) {
	f := func(ipid uint16, host uint32, port uint16, shift uint8) bool {
		n := uint64(1) << (shift % 16)
		p := &Packet{IPID: ipid, Dst: Addr{Host: host, Port: port}}
		h := EpochHash(p)
		if h%(2*n) == 0 && h%n != 0 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the sampling rate under hash % N == 0 is approximately 1/N for
// uniform-ish header values.
func TestSamplingRateApproximatesEpochSize(t *testing.T) {
	const n = 64
	count := 0
	total := 200000
	for i := 0; i < total; i++ {
		p := &Packet{IPID: uint16(i), Dst: Addr{Host: uint32(i >> 16), Port: 443}}
		if EpochHash(p)%n == 0 {
			count++
		}
	}
	got := float64(count) / float64(total)
	want := 1.0 / n
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("sampling rate %.5f, want ≈ %.5f", got, want)
	}
}

func TestMSSArithmetic(t *testing.T) {
	if MSS != 1460 {
		t.Fatalf("MSS = %d, want 1460", MSS)
	}
	if HeaderBytes+MSS != MTU {
		t.Fatal("header + MSS != MTU")
	}
}
