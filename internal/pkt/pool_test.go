package pkt

import "testing"

// TestPoolRoundTrip checks a shard pool reuses its own storage and the
// counters track it.
func TestPoolRoundTrip(t *testing.T) {
	pl := &Pool{}
	p := pl.Get()
	if p.owner != pl {
		t.Fatal("pool-issued packet not tagged with its owner")
	}
	Put(p) // package-level Put must route back to the owning pool
	q := pl.Get()
	if q != p {
		t.Error("pool did not reuse the released packet")
	}
	s, in, out := pl.Stats()
	if s.Gets != 2 || s.Puts != 1 || s.News != 1 || in != 0 || out != 0 {
		t.Errorf("stats = %+v in %d out %d, want 2 gets / 1 put / 1 new", s, in, out)
	}
	pl.Put(q)
}

// TestPoolNilDelegatesToGlobal: components hold an optional *Pool and
// call Get unconditionally; the nil receiver must behave like pkt.Get.
func TestPoolNilDelegatesToGlobal(t *testing.T) {
	var pl *Pool
	p := pl.Get()
	if p == nil || p.owner != nil {
		t.Fatalf("nil pool Get: got %+v, want an unowned global packet", p)
	}
	Put(p)
}

// TestPoolGlobalCountersTick: the perf harness prices runs by
// differencing the global counters, so per-shard traffic must tick them.
func TestPoolGlobalCountersTick(t *testing.T) {
	before := Stats()
	pl := &Pool{}
	p := pl.Get()
	pl.Put(p)
	after := Stats()
	if after.Gets-before.Gets != 1 || after.Puts-before.Puts != 1 {
		t.Errorf("global counters did not tick for pool traffic: %+v -> %+v", before, after)
	}
}

// TestPoolOwnershipPanics pins the misuse panics: foreign release,
// double release, transfer of a released packet.
func TestPoolOwnershipPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	a, b := &Pool{}, &Pool{}
	p := a.Get()
	mustPanic("foreign release", func() { b.Put(p) })
	a.Put(p)
	mustPanic("double release", func() { a.Put(p) })
	mustPanic("double release via package Put", func() { Put(p) })
	mustPanic("transfer of released packet", func() { Transfer(p, b) })
}

// TestTransferMovesOwnership checks the barrier hand-off: after a
// Transfer, release routes to the new pool and the xfer counters
// balance; a same-pool transfer is a no-op.
func TestTransferMovesOwnership(t *testing.T) {
	a, b := &Pool{}, &Pool{}
	p := a.Get()
	Transfer(p, a) // same-pool no-op: must not touch the counters
	Transfer(p, b)
	if p.owner != b {
		t.Fatal("transfer did not retag the packet")
	}
	Put(p)
	as, aIn, aOut := a.Stats()
	bs, bIn, bOut := b.Stats()
	if aOut != 1 || aIn != 0 || as.Puts != 0 {
		t.Errorf("source pool: %+v in %d out %d, want out=1", as, aIn, aOut)
	}
	if bIn != 1 || bOut != 0 || bs.Puts != 1 {
		t.Errorf("dest pool: %+v in %d out %d, want in=1 put=1", bs, bIn, bOut)
	}
	// Transfer to nil hands the packet to the global pool.
	q := b.Get()
	Transfer(q, nil)
	if q.owner != nil {
		t.Fatal("transfer to nil did not clear ownership")
	}
	Put(q)
}
