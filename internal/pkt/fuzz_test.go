package pkt

import (
	"testing"

	"bundler/internal/sim"
)

// FuzzEpochHash checks the property §4.5 depends on: the sendbox hashes
// a packet as it leaves the source site, the receivebox hashes it again
// on arrival, and the two must agree — so the hash may depend only on
// header fields the network never rewrites (IP ID, destination), never
// on transit-mutable state (queue timestamps, transport bookkeeping,
// SACK contents).
func FuzzEpochHash(f *testing.F) {
	f.Add(uint16(1), uint32(9), uint16(80), uint32(7), uint16(5000), int64(1460), int64(0), uint8(0), 1500)
	f.Add(uint16(65535), uint32(0), uint16(0), uint32(1<<31), uint16(65535), int64(-1), int64(1<<40), uint8(3), 40)
	f.Fuzz(func(t *testing.T, ipid uint16, dstHost uint32, dstPort uint16,
		srcHost uint32, srcPort uint16, seq, ack int64, flags uint8, size int) {
		p := &Packet{
			IPID:  ipid,
			Src:   Addr{Host: srcHost, Port: srcPort},
			Dst:   Addr{Host: dstHost, Port: dstPort},
			Proto: ProtoTCP,
			Size:  size,
			Seq:   seq,
			Ack:   ack,
			Flags: Flags(flags),
		}
		sendboxView := EpochHash(p)

		// What the network legitimately changes in flight.
		p.EnqueuedAt = 123 * sim.Millisecond
		p.SentAt = 456 * sim.Millisecond
		p.Retransmit = !p.Retransmit
		p.FlowID ^= 0xDEADBEEF
		p.NSACK = 2
		p.SACK[0] = SACKBlock{Start: 1, End: 2}
		p.Payload = "opaque"

		if got := EpochHash(p); got != sendboxView {
			t.Fatalf("receivebox hash %#x != sendbox hash %#x after transit mutation", got, sendboxView)
		}
		// Determinism: same header, same hash.
		if again := EpochHash(p); again != sendboxView {
			t.Fatalf("hash not deterministic: %#x then %#x", sendboxView, again)
		}
	})
}

// FuzzFlowHash checks that bucket selection is a pure function of the
// 5-tuple and perturbation key: stable under transit mutation (a flow
// must not hop SFQ buckets mid-life) and sensitive to the perturbation
// in the sense that re-keying is deterministic.
func FuzzFlowHash(f *testing.F) {
	f.Add(uint32(1), uint16(5000), uint32(2), uint16(80), uint8(0), uint64(0))
	f.Add(uint32(0), uint16(0), uint32(0), uint16(0), uint8(2), uint64(0x9E3779B97F4A7C15))
	f.Fuzz(func(t *testing.T, srcHost uint32, srcPort uint16, dstHost uint32, dstPort uint16,
		proto uint8, perturb uint64) {
		p := &Packet{
			Src:   Addr{Host: srcHost, Port: srcPort},
			Dst:   Addr{Host: dstHost, Port: dstPort},
			Proto: Proto(proto),
		}
		h := FlowHash(p, perturb)

		p.IPID++ // IP ID changes every packet of a flow; the bucket must not
		p.Seq, p.Ack = 77, 88
		p.Size = 999
		p.EnqueuedAt = sim.Second
		p.Retransmit = true

		if got := FlowHash(p, perturb); got != h {
			t.Fatalf("flow hash changed mid-flow: %#x -> %#x", h, got)
		}
		if again := FlowHash(p, perturb); again != h {
			t.Fatalf("flow hash not deterministic: %#x then %#x", h, again)
		}
	})
}
