package exp

import (
	"fmt"
	"strings"
	"testing"
)

// fakeExp is a deterministic stand-in experiment: its result is a pure
// function of (seed, params), with optional failure injection.
type fakeExp struct {
	name string
	fail func(p Params) error
}

func (f fakeExp) Name() string { return f.name }
func (f fakeExp) Desc() string { return "fake experiment " + f.name }
func (f fakeExp) Params() []Param {
	return []Param{{Name: "x", Default: "1", Help: "an input"}}
}

func (f fakeExp) Run(seed int64, p Params) (Result, error) {
	if f.fail != nil {
		if err := f.fail(p); err != nil {
			return Result{}, err
		}
	}
	b := Bind(p)
	x := b.Float("x", 1)
	if err := b.Err(); err != nil {
		return Result{}, err
	}
	res := Result{Experiment: f.name, Seed: seed, Params: p}
	res.AddMetric("y", x*float64(seed), "")
	return res, nil
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakeExp{name: "dup-test"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeExp{name: "dup-test"})
}

func TestLookupAndAliases(t *testing.T) {
	Register(fakeExp{name: "lookup-test"})
	RegisterAlias("lookup-alias", "lookup-test")

	e, ok := Lookup("lookup-test")
	if !ok || e.Name() != "lookup-test" {
		t.Fatalf("Lookup(lookup-test) = %v, %v", e, ok)
	}
	e, ok = Lookup("lookup-alias")
	if !ok || e.Name() != "lookup-test" {
		t.Fatalf("alias lookup = %v, %v; want lookup-test", e, ok)
	}
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("alias to unknown canonical did not panic")
		}
	}()
	RegisterAlias("bad-alias", "no-such-experiment")
}

func TestHiddenExcludedFromNames(t *testing.T) {
	RegisterHidden(fakeExp{name: "hidden-test"})
	for _, n := range Names() {
		if n == "hidden-test" {
			t.Fatal("hidden experiment appears in Names()")
		}
	}
	if _, ok := Lookup("hidden-test"); !ok {
		t.Fatal("hidden experiment not found by Lookup")
	}
}

func TestNamesPreserveRegistrationOrder(t *testing.T) {
	Register(fakeExp{name: "order-a"})
	Register(fakeExp{name: "order-b"})
	names := strings.Join(Names(), ",")
	if !strings.Contains(names, "order-a,order-b") {
		t.Fatalf("registration order not preserved: %s", names)
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("rate=24e6,48e6;rtt=20ms;seed=1,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Axes) != 2 || g.Axes[0].Name != "rate" || len(g.Axes[0].Values) != 2 {
		t.Fatalf("bad axes: %+v", g.Axes)
	}
	if len(g.Seeds) != 2 || g.Seeds[0] != 1 || g.Seeds[1] != 2 {
		t.Fatalf("bad seeds: %v", g.Seeds)
	}
	if g.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", g.Size())
	}
	pts := g.Points()
	if len(pts) != 4 {
		t.Fatalf("Points() = %d, want 4", len(pts))
	}
	// Seeds outermost, last axis fastest; indices must be sequential.
	want := []struct {
		seed int64
		rate string
	}{{1, "24e6"}, {1, "48e6"}, {2, "24e6"}, {2, "48e6"}}
	for i, pt := range pts {
		if pt.Index != i {
			t.Errorf("point %d has Index %d", i, pt.Index)
		}
		if pt.Seed != want[i].seed || pt.Params["rate"] != want[i].rate {
			t.Errorf("point %d = seed %d rate %s, want seed %d rate %s",
				i, pt.Seed, pt.Params["rate"], want[i].seed, want[i].rate)
		}
		if pt.Params["rtt"] != "20ms" {
			t.Errorf("point %d rtt = %q", i, pt.Params["rtt"])
		}
	}

	if _, err := ParseGrid("noequals"); err == nil {
		t.Error("ParseGrid accepted axis without values")
	}
	if _, err := ParseGrid("seed=notanint"); err == nil {
		t.Error("ParseGrid accepted non-integer seed")
	}
	if _, err := ParseGrid("rate=24e6;rate=96e6"); err == nil {
		t.Error("ParseGrid accepted a duplicate axis")
	}
}

func TestSweepOrderIndependentOfParallelism(t *testing.T) {
	e := fakeExp{name: "sweep-order-test"}
	g := Grid{
		Axes:  []Axis{{Name: "x", Values: []string{"1", "2", "3", "4", "5"}}},
		Seeds: []int64{3, 7},
	}
	run := func(parallel int) string {
		results, err := Sweep(e, g, parallel, nil)
		if err != nil {
			t.Fatal(err)
		}
		var w strings.Builder
		if err := WriteJSON(&w, results); err != nil {
			t.Fatal(err)
		}
		return w.String()
	}
	serial := run(1)
	for _, par := range []int{2, 8, 100} {
		if got := run(par); got != serial {
			t.Fatalf("parallel %d sweep differs from serial:\n%s\nvs\n%s", par, got, serial)
		}
	}
}

func TestSweepRejectsUndeclaredAxis(t *testing.T) {
	e := fakeExp{name: "sweep-validate-test"}
	g := Grid{Axes: []Axis{{Name: "bogus", Values: []string{"1"}}}}
	if _, err := Sweep(e, g, 1, nil); err == nil {
		t.Fatal("Sweep accepted an axis the experiment does not declare")
	}
	g = Grid{Axes: []Axis{{Name: "x", Values: []string{"1"}}}}
	if _, err := Sweep(e, g, 1, nil); err != nil {
		t.Fatalf("Sweep rejected a declared axis: %v", err)
	}
}

func TestRegisterCollidingWithAliasPanics(t *testing.T) {
	Register(fakeExp{name: "alias-collide-canonical"})
	RegisterAlias("alias-collide", "alias-collide-canonical")
	defer func() {
		if recover() == nil {
			t.Fatal("Register over an existing alias did not panic")
		}
	}()
	Register(fakeExp{name: "alias-collide"})
}

func TestSweepRecordsPerPointErrors(t *testing.T) {
	e := fakeExp{name: "sweep-err-test", fail: func(p Params) error {
		if p["x"] == "2" {
			return fmt.Errorf("boom")
		}
		if p["x"] == "3" {
			panic("kaboom")
		}
		return nil
	}}
	g := Grid{Axes: []Axis{{Name: "x", Values: []string{"1", "2", "3"}}}}
	results, err := Sweep(e, g, 2, nil)
	if err == nil {
		t.Fatal("Sweep did not report the failing point")
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Err != "" || results[0].Metric("y") != 1 {
		t.Errorf("healthy point polluted: %+v", results[0])
	}
	if results[1].Err != "boom" {
		t.Errorf("error point Err = %q, want boom", results[1].Err)
	}
	if !strings.Contains(results[2].Err, "kaboom") {
		t.Errorf("panicking point Err = %q, want panic captured", results[2].Err)
	}
}

func TestEmitCSV(t *testing.T) {
	e := fakeExp{name: "csv-test"}
	g := Grid{Axes: []Axis{{Name: "x", Values: []string{"2", "4"}}}, Seeds: []int64{5}}
	results, err := Sweep(e, g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var w strings.Builder
	if err := WriteCSV(&w, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(w.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV rows = %d, want header + 2", len(lines))
	}
	if lines[0] != "experiment,seed,x,y,err" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "csv-test,5,2,10," {
		t.Errorf("row = %q", lines[1])
	}
}

func TestBinderErrors(t *testing.T) {
	b := Bind(Params{"n": "nope", "f": "1.5"})
	if got := b.Float("f", 0); got != 1.5 {
		t.Errorf("Float = %v", got)
	}
	if got := b.Int("missing", 7); got != 7 {
		t.Errorf("missing default = %v", got)
	}
	_ = b.Int("n", 0)
	if b.Err() == nil {
		t.Error("Binder swallowed a parse error")
	}
}

func TestTryRegisterReportsDuplicates(t *testing.T) {
	Register(fakeExp{name: "try-dup"})
	if err := TryRegister(fakeExp{name: "try-dup"}); err == nil {
		t.Fatal("TryRegister of a duplicate should error")
	}
	if err := TryRegister(fakeExp{name: "try-fresh"}); err != nil {
		t.Fatalf("TryRegister of a fresh name: %v", err)
	}
	if _, ok := Lookup("try-fresh"); !ok {
		t.Fatal("try-fresh not registered")
	}
}

// TestRegisterOrReplace pins the config-shadowing semantics: replacement
// keeps the canonical position, and alias names stay off limits.
func TestRegisterOrReplace(t *testing.T) {
	Register(fakeExp{name: "ror-a"})
	Register(fakeExp{name: "ror-b"})
	replaced, err := RegisterOrReplace(fakeExp{name: "ror-a", fail: func(Params) error {
		return fmt.Errorf("replacement marker")
	}})
	if err != nil || !replaced {
		t.Fatalf("RegisterOrReplace existing: replaced=%v err=%v", replaced, err)
	}
	e, ok := Lookup("ror-a")
	if !ok {
		t.Fatal("ror-a vanished")
	}
	if _, rerr := e.Run(1, nil); rerr == nil || !strings.Contains(rerr.Error(), "replacement marker") {
		t.Fatalf("lookup did not return the replacement: %v", rerr)
	}
	// Canonical order: ror-a must still precede ror-b.
	ia, ib := -1, -1
	for i, n := range Names() {
		switch n {
		case "ror-a":
			ia = i
		case "ror-b":
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("replacement moved ror-a in canonical order (a=%d, b=%d)", ia, ib)
	}
	replaced, err = RegisterOrReplace(fakeExp{name: "ror-new"})
	if err != nil || replaced {
		t.Fatalf("RegisterOrReplace fresh: replaced=%v err=%v", replaced, err)
	}
	RegisterAlias("ror-alias", "ror-a")
	if _, err := RegisterOrReplace(fakeExp{name: "ror-alias"}); err == nil {
		t.Fatal("RegisterOrReplace onto an alias should error")
	}
}
