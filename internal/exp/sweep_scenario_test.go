package exp_test

import (
	"strings"
	"testing"

	"bundler/internal/exp"
	_ "bundler/internal/scenario" // registers the paper's experiments
)

// TestScenarioRegistry checks the paper experiments self-registered in
// canonical figure order, with the fig5/fig6 aliases resolving to the
// shared accuracy run and the building-block fct experiment hidden but
// reachable.
func TestScenarioRegistry(t *testing.T) {
	names := exp.Names()
	wantPrefix := []string{"fig2", "fig56", "fig7", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "sec72", "sec74", "sec76", "policies", "hier"}
	if len(names) < len(wantPrefix) {
		t.Fatalf("Names() = %v, want at least %d experiments", names, len(wantPrefix))
	}
	for i, want := range wantPrefix {
		if names[i] != want {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, names[i], want, names)
		}
	}
	for _, alias := range []string{"fig5", "fig6"} {
		e, ok := exp.Lookup(alias)
		if !ok || e.Name() != "fig56" {
			t.Errorf("Lookup(%s) = %v, %v; want fig56", alias, e, ok)
		}
	}
	if e, ok := exp.Lookup("fct"); !ok || e.Name() != "fct" {
		t.Error("hidden fct experiment not reachable by Lookup")
	}
	for _, n := range names {
		if n == "fct" {
			t.Error("fct should be hidden from Names()")
		}
	}
}

// TestSweepDeterminism is the harness's core guarantee: a fixed-seed grid
// of real simulation runs produces byte-identical JSON at -parallel 1 and
// -parallel 8, because every point owns a private sim.Engine and results
// are ordered by grid index, not completion.
func TestSweepDeterminism(t *testing.T) {
	fct, ok := exp.Lookup("fct")
	if !ok {
		t.Fatal("fct experiment not registered")
	}
	g, err := exp.ParseGrid("sched=sfq,fifo;rtt=20ms,50ms;requests=250;seed=1,2")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 8 {
		t.Fatalf("grid size = %d, want 8", g.Size())
	}
	run := func(parallel int) string {
		results, err := exp.Sweep(fct, g, parallel, nil)
		if err != nil {
			t.Fatal(err)
		}
		var w strings.Builder
		if err := exp.WriteJSON(&w, results); err != nil {
			t.Fatal(err)
		}
		return w.String()
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatalf("parallel 8 sweep differs from parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	// And the runs did real work: every point completed its requests.
	var results []exp.Result
	results, _ = exp.Sweep(fct, g, 8, nil)
	for _, r := range results {
		if r.Err != "" {
			t.Errorf("point %v failed: %s", r.Params, r.Err)
		}
		if r.Metric("completed") < 250 {
			t.Errorf("point %v completed %v of 250 requests", r.Params, r.Metric("completed"))
		}
	}
}

// TestExperimentReportsRender spot-checks that a registered experiment's
// Run produces a report and metrics through the interface (the CLIs rely
// on nothing else).
func TestExperimentReportsRender(t *testing.T) {
	e, ok := exp.Lookup("fig9")
	if !ok {
		t.Fatal("fig9 not registered")
	}
	res, err := e.Run(1, exp.Params{"requests": "400"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Report, "\n=== Figure 9") {
		t.Errorf("report header missing: %q", res.Report[:min(60, len(res.Report))])
	}
	if len(res.Metrics) == 0 {
		t.Error("fig9 produced no metrics")
	}
	if res.Metric("Status_Quo/median-slowdown") != res.Metric("Status_Quo/median-slowdown") {
		t.Error("Status Quo median metric is NaN")
	}
}
