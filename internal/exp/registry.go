package exp

import (
	"fmt"
	"sort"
	"sync"
)

// registry holds every known experiment. Canonical ordering is the
// registration order, which internal/scenario fixes in one place
// (experiments.go) — the CLIs' "all" mode and help text both derive
// from it instead of maintaining their own lists.
type registry struct {
	mu      sync.RWMutex
	ordered []Experiment
	byName  map[string]Experiment
	hidden  map[string]bool
	aliases map[string]string
}

var reg = &registry{
	byName:  map[string]Experiment{},
	hidden:  map[string]bool{},
	aliases: map[string]string{},
}

// Register adds e to the registry in canonical (call) order. It panics
// on a duplicate name: two experiments claiming one name is a
// programming error that silent last-wins resolution would hide.
func Register(e Experiment) {
	if err := TryRegister(e); err != nil {
		panic("exp: " + err.Error())
	}
}

// TryRegister is Register returning an error instead of panicking — the
// entry point for experiments loaded from user-supplied config files,
// where a name collision is bad input rather than a programming error.
func TryRegister(e Experiment) error {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	name := e.Name()
	if _, dup := reg.byName[name]; dup {
		return fmt.Errorf("duplicate experiment %q", name)
	}
	if c, isAlias := reg.aliases[name]; isAlias {
		// Lookup resolves aliases first, so this experiment would be
		// silently unreachable.
		return fmt.Errorf("experiment %q collides with alias of %q", name, c)
	}
	reg.byName[name] = e
	reg.ordered = append(reg.ordered, e)
	return nil
}

// RegisterOrReplace registers e, replacing any existing experiment of
// the same name in place (canonical order and hidden status preserved).
// It reports whether a replacement happened. Loaded topology configs use
// it to shadow a built-in experiment with a declarative re-expression of
// the same scenario.
func RegisterOrReplace(e Experiment) (replaced bool, err error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	name := e.Name()
	if c, isAlias := reg.aliases[name]; isAlias {
		return false, fmt.Errorf("experiment %q collides with alias of %q", name, c)
	}
	if _, dup := reg.byName[name]; dup {
		for i, old := range reg.ordered {
			if old.Name() == name {
				reg.ordered[i] = e
				break
			}
		}
		reg.byName[name] = e
		return true, nil
	}
	reg.byName[name] = e
	reg.ordered = append(reg.ordered, e)
	return false, nil
}

// RegisterHidden registers e but keeps it out of Names() and the CLIs'
// "all" mode — for building-block experiments (like the single-point
// "fct" run) that are looked up explicitly or swept.
func RegisterHidden(e Experiment) {
	Register(e)
	reg.mu.Lock()
	reg.hidden[e.Name()] = true
	reg.mu.Unlock()
}

// RegisterAlias makes alias resolve to the canonical experiment (the
// paper presents Figures 5 and 6 as one accuracy run, so "fig5" and
// "fig6" both alias "fig56"). Panics if canonical is unknown or alias
// collides with an existing name.
func RegisterAlias(alias, canonical string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.byName[canonical]; !ok {
		panic(fmt.Sprintf("exp: alias %q for unknown experiment %q", alias, canonical))
	}
	if _, dup := reg.byName[alias]; dup {
		panic(fmt.Sprintf("exp: alias %q collides with experiment %q", alias, alias))
	}
	if _, dup := reg.aliases[alias]; dup {
		panic(fmt.Sprintf("exp: duplicate alias %q", alias))
	}
	reg.aliases[alias] = canonical
}

// Lookup resolves a name or alias to its experiment.
func Lookup(name string) (Experiment, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	if c, ok := reg.aliases[name]; ok {
		name = c
	}
	e, ok := reg.byName[name]
	return e, ok
}

// All returns the non-hidden experiments in canonical order.
func All() []Experiment {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]Experiment, 0, len(reg.ordered))
	for _, e := range reg.ordered {
		if !reg.hidden[e.Name()] {
			out = append(out, e)
		}
	}
	return out
}

// Names returns the non-hidden experiment names in canonical order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name()
	}
	return out
}

// Aliases returns the alias → canonical map, sorted keys.
func Aliases() map[string]string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make(map[string]string, len(reg.aliases))
	for k, v := range reg.aliases {
		out[k] = v
	}
	return out
}

// AliasNames returns the registered aliases, sorted.
func AliasNames() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]string, 0, len(reg.aliases))
	for a := range reg.aliases {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
