package exp

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Axis is one swept parameter and its values.
type Axis struct {
	Name   string
	Values []string
}

// Grid is the cross product of its axes × seeds: the full parameter
// space one sweep covers.
type Grid struct {
	Axes  []Axis
	Seeds []int64
}

// ParseGrid parses "rate=24e6,48e6;rtt=20ms,50ms;seed=1,2" into a Grid.
// The "seed" axis is special-cased into Seeds; every other axis carries
// its values verbatim to the experiment's Params.
func ParseGrid(spec string) (Grid, error) {
	var g Grid
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, vals, ok := strings.Cut(part, "=")
		if !ok {
			return Grid{}, fmt.Errorf("exp: grid axis %q: want name=v1,v2,...", part)
		}
		name = strings.TrimSpace(name)
		if seen[name] {
			return Grid{}, fmt.Errorf("exp: duplicate grid axis %q", name)
		}
		seen[name] = true
		var values []string
		for _, v := range strings.Split(vals, ",") {
			if v = strings.TrimSpace(v); v != "" {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			return Grid{}, fmt.Errorf("exp: grid axis %q has no values", name)
		}
		if name == "seed" {
			for _, v := range values {
				s, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return Grid{}, fmt.Errorf("exp: grid seed %q: %v", v, err)
				}
				g.Seeds = append(g.Seeds, s)
			}
			continue
		}
		g.Axes = append(g.Axes, Axis{Name: name, Values: values})
	}
	return g, nil
}

// Size is the number of points (axes cross product × seeds).
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	seeds := len(g.Seeds)
	if seeds == 0 {
		seeds = 1
	}
	return n * seeds
}

// Point is one grid cell: a seed plus one value per axis. Index is the
// point's position in the grid's deterministic enumeration order, which
// the sweep runner preserves in its output regardless of parallelism.
type Point struct {
	Index  int
	Seed   int64
	Params Params
}

// Points enumerates the grid: seeds outermost, then axes left to right
// (the last axis varies fastest). With no Seeds set, seed 1 is used.
func (g Grid) Points() []Point {
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	out := make([]Point, 0, g.Size())
	idx := make([]int, len(g.Axes))
	for _, seed := range seeds {
		for i := range idx {
			idx[i] = 0
		}
		for {
			p := make(Params, len(g.Axes))
			for i, a := range g.Axes {
				p[a.Name] = a.Values[idx[i]]
			}
			out = append(out, Point{Index: len(out), Seed: seed, Params: p})
			// Odometer increment, last axis fastest.
			i := len(idx) - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(g.Axes[i].Values) {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	return out
}

// Cache persists completed sweep cells so an interrupted or repeated
// sweep can skip the simulation entirely. internal/runstore implements
// it with a content-addressed on-disk store; the interface lives here so
// exp does not import the store (runstore imports exp for Result).
//
// Load reports a prior Result for the point (a hit must reproduce the
// fresh run byte-for-byte once emitted — same metrics, same report,
// same NaNs). Save records a successful result with its execution time;
// it must be safe to call from multiple goroutines and must not fail
// the sweep (persist errors are the Cache's to surface).
type Cache interface {
	Load(e Experiment, pt Point) (Result, bool)
	Save(e Experiment, pt Point, res Result, dur time.Duration)
}

// Options configures SweepOpts beyond the experiment and grid.
type Options struct {
	// Parallel is the worker goroutine count (min 1).
	Parallel int
	// Cache, when non-nil, receives every successfully computed cell
	// (checkpointing); failed cells are never cached.
	Cache Cache
	// Resume additionally loads cells from Cache instead of re-running
	// them. Kept separate from Cache so a sweep can checkpoint without
	// trusting prior contents (write-only mode recomputes everything).
	Resume bool
	// Progress, if set, is called after each finished point with the
	// cumulative done/cached counts.
	Progress func(done, total, cached int)
}

// Stats summarizes where a sweep's results came from.
type Stats struct {
	Total    int // grid points
	Cached   int // loaded from the cache (zero simulation)
	Executed int // actually simulated this run
}

// Sweep runs e at every grid point, fanning points across a pool of
// `parallel` worker goroutines. Each Run builds its own sim.Engine, so
// points are independent and the returned slice — ordered by Point.Index
// — is identical for any parallelism. A failing point gets its error
// recorded in Result.Err and the sweep continues; the first error is
// also returned after all points finish. progress (optional) is called
// after each completed point.
func Sweep(e Experiment, g Grid, parallel int, progress func(done, total int)) ([]Result, error) {
	var p func(done, total, cached int)
	if progress != nil {
		p = func(done, total, _ int) { progress(done, total) }
	}
	results, _, err := SweepOpts(e, g, Options{Parallel: parallel, Progress: p})
	return results, err
}

// SweepOpts is Sweep with store-backed caching and resume. With
// opt.Resume and a warm opt.Cache, completed cells load instead of
// executing — interrupting a 1000-cell grid loses only the cells in
// flight, and an unchanged re-run simulates nothing. Cached and fresh
// cells are indistinguishable in the returned slice, so the emitted
// JSON/CSV is byte-identical regardless of how many cells were resumed.
func SweepOpts(e Experiment, g Grid, opt Options) ([]Result, Stats, error) {
	if err := g.validate(e); err != nil {
		return nil, Stats{}, err
	}
	points := g.Points()
	st := Stats{Total: len(points)}
	parallel := opt.Parallel
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(points) {
		parallel = len(points)
	}
	results := make([]Result, len(points))
	activeWorkers.Add(int64(parallel))
	defer activeWorkers.Add(-int64(parallel))
	jobs := make(chan Point)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pt := range jobs {
				var (
					res    Result
					err    error
					cached bool
				)
				if opt.Cache != nil && opt.Resume {
					res, cached = opt.Cache.Load(e, pt)
				}
				if !cached {
					start := time.Now()
					res, err = runPoint(e, pt)
					if err != nil {
						res.Experiment = e.Name()
						res.Seed = pt.Seed
						res.Params = pt.Params
						res.Err = err.Error()
					} else if opt.Cache != nil {
						opt.Cache.Save(e, pt, res, time.Since(start))
					}
				}
				results[pt.Index] = res
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("exp: point %d (seed %d): %w", pt.Index, pt.Seed, err)
				}
				done++
				if cached {
					st.Cached++
				} else {
					st.Executed++
				}
				if opt.Progress != nil {
					opt.Progress(done, len(points), st.Cached)
				}
				mu.Unlock()
			}
		}()
	}
	for _, pt := range points {
		jobs <- pt
	}
	close(jobs)
	wg.Wait()
	return results, st, firstErr
}

// activeWorkers counts sweep worker goroutines currently running, across
// every concurrent SweepOpts call in the process. Sharded scenarios
// budget their own parallelism against it so sweep workers × engine
// shards never oversubscribes GOMAXPROCS.
var activeWorkers atomic.Int64

// ShardBudget reports how many engine shards a scenario running inside
// (or outside) a sweep should use by default: GOMAXPROCS divided by the
// active sweep worker count, floored at 1. Outside any sweep the full
// GOMAXPROCS is available. Scenarios use it only for auto (shards=0)
// mode — an explicit shards setting is a user decision and is honored.
func ShardBudget() int {
	workers := activeWorkers.Load()
	if workers < 1 {
		workers = 1
	}
	budget := runtime.GOMAXPROCS(0) / int(workers)
	if budget < 1 {
		budget = 1
	}
	return budget
}

// validate rejects grid axes the experiment does not declare: a typo'd
// axis would otherwise run the whole sweep at defaults and produce N
// copies of the same configuration dressed up as a comparison.
func (g Grid) validate(e Experiment) error {
	declared := e.Params()
	names := make([]string, len(declared))
	ok := make(map[string]bool, len(declared))
	for i, pd := range declared {
		names[i] = pd.Name
		ok[pd.Name] = true
	}
	for _, a := range g.Axes {
		if !ok[a.Name] {
			return fmt.Errorf("exp: experiment %s has no param %q (declared: %s)",
				e.Name(), a.Name, strings.Join(names, ", "))
		}
	}
	return nil
}

// runPoint isolates one Run call so a panicking experiment fails its
// point instead of tearing down the whole sweep.
func runPoint(e Experiment, pt Point) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return e.Run(pt.Seed, pt.Params.Clone())
}
