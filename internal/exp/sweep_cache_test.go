package exp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memCache is an in-memory Cache for exercising SweepOpts without disk.
type memCache struct {
	mu    sync.Mutex
	cells map[string]Result
	loads int
	saves int
}

func (c *memCache) key(e Experiment, pt Point) string {
	return fmt.Sprintf("%s/%d/%v", e.Name(), pt.Seed, pt.Params)
}

func (c *memCache) Load(e Experiment, pt Point) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loads++
	r, ok := c.cells[c.key(e, pt)]
	return r, ok
}

func (c *memCache) Save(e Experiment, pt Point, res Result, _ time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.saves++
	if c.cells == nil {
		c.cells = map[string]Result{}
	}
	c.cells[c.key(e, pt)] = res
}

// countExp counts executions. The counter is atomic because SweepOpts
// invokes Run from Parallel worker goroutines concurrently — a plain
// int here is a data race under the race detector (and undercounts).
type countExp struct{ runs *atomic.Int64 }

func (countExp) Name() string    { return "count" }
func (countExp) Desc() string    { return "counts runs" }
func (countExp) Params() []Param { return []Param{{Name: "x", Default: "0"}} }
func (e countExp) Run(seed int64, p Params) (Result, error) {
	e.runs.Add(1)
	res := Result{Experiment: "count", Seed: seed, Params: p}
	res.AddMetric("seed", float64(seed), "")
	return res, nil
}

// TestSweepWriteOnlyCache: a Cache without Resume checkpoints every
// cell but never trusts prior contents — every cell still executes.
func TestSweepWriteOnlyCache(t *testing.T) {
	g, err := ParseGrid("x=1,2,3;seed=1,2")
	if err != nil {
		t.Fatal(err)
	}
	c := &memCache{}
	var runs atomic.Int64
	_, st, err := SweepOpts(countExp{&runs}, g, Options{Parallel: 3, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != int64(g.Size()) || st.Executed != g.Size() || st.Cached != 0 {
		t.Fatalf("write-only cache skipped cells: runs=%d stats=%+v", runs.Load(), st)
	}
	if c.saves != g.Size() || c.loads != 0 {
		t.Fatalf("write-only cache: saves=%d loads=%d, want %d/0", c.saves, c.loads, g.Size())
	}

	// Second pass with Resume: everything loads, nothing executes, and
	// results match the first pass cell for cell.
	runs.Store(0)
	results, st2, err := SweepOpts(countExp{&runs}, g, Options{Parallel: 3, Cache: c, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 0 || st2.Cached != g.Size() {
		t.Fatalf("resume pass executed cells: runs=%d stats=%+v", runs.Load(), st2)
	}
	for i, pt := range g.Points() {
		if results[i].Seed != pt.Seed || results[i].Params["x"] != pt.Params["x"] {
			t.Fatalf("cell %d out of order after resume: %+v vs point %+v", i, results[i], pt)
		}
	}
}

// TestSweepProgressCachedCounts: the progress callback's cached count
// must be monotonic and end at the cached total (the CLIs print it).
func TestSweepProgressCachedCounts(t *testing.T) {
	g, err := ParseGrid("x=1,2;seed=1")
	if err != nil {
		t.Fatal(err)
	}
	c := &memCache{}
	var runs atomic.Int64
	if _, _, err := SweepOpts(countExp{&runs}, g, Options{Parallel: 1, Cache: c}); err != nil {
		t.Fatal(err)
	}
	var lastDone, lastCached int
	runs.Store(0)
	_, st, err := SweepOpts(countExp{&runs}, g, Options{
		Parallel: 2, Cache: c, Resume: true,
		Progress: func(done, total, cached int) {
			if done < lastDone || cached < lastCached || total != g.Size() {
				t.Errorf("progress went backwards: done=%d cached=%d total=%d", done, cached, total)
			}
			lastDone, lastCached = done, cached
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != g.Size() || lastCached != st.Cached {
		t.Fatalf("final progress %d/%d cached=%d, want %d cached=%d",
			lastDone, g.Size(), lastCached, g.Size(), st.Cached)
	}
}
