// Package exp is the experiment harness: a common interface every
// scenario implements, a registry the CLIs derive their experiment lists
// from, and a parallel sweep runner that fans a parameter grid out across
// goroutines — one deterministic sim.Engine per run — collecting
// structured Results with JSON/CSV emitters built on internal/stats.
//
// Registering a new experiment makes it runnable from cmd/bundler-bench
// (and sweepable) with no CLI changes:
//
//	type myExp struct{}
//	func (myExp) Name() string { return "myexp" }
//	func (myExp) Desc() string { return "what it measures" }
//	func (myExp) Params() []exp.Param { ... }
//	func (myExp) Run(seed int64, p exp.Params) (exp.Result, error) { ... }
//	func init() { exp.Register(myExp{}) }
//
// Experiments also arrive at run time: internal/topo registers
// declarative config files through TryRegister / RegisterOrReplace, so
// a loaded config is indistinguishable from a compiled-in experiment.
// Params are strings in the repository's unit conventions (rates in
// bits/s float syntax, durations as Go strings like "50ms").
package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"bundler/internal/stats"
)

// Param declares one tunable of an experiment, for -help text and
// sweep-grid validation.
type Param struct {
	Name    string
	Default string
	Help    string
}

// Params carries the parameter values for one run as name → string;
// experiments parse them through a Binder. Missing keys mean "use the
// declared default".
type Params map[string]string

// Clone returns an independent copy.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Binder parses Params into typed values, remembering the first parse
// failure so experiments can check once after binding everything.
type Binder struct {
	p   Params
	err error
}

// Bind wraps p for typed access.
func Bind(p Params) *Binder { return &Binder{p: p} }

// Err reports the first parse failure, or nil.
func (b *Binder) Err() error { return b.err }

func (b *Binder) fail(name, val, kind string, err error) {
	if b.err == nil {
		b.err = fmt.Errorf("exp: param %s=%q: bad %s: %v", name, val, kind, err)
	}
}

// String returns the named param or def when absent.
func (b *Binder) String(name, def string) string {
	if v, ok := b.p[name]; ok {
		return v
	}
	return def
}

// Int parses the named param as an integer.
func (b *Binder) Int(name string, def int) int {
	v, ok := b.p[name]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		b.fail(name, v, "int", err)
		return def
	}
	return n
}

// Float parses the named param as a float (so "96e6" works for rates).
func (b *Binder) Float(name string, def float64) float64 {
	v, ok := b.p[name]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		b.fail(name, v, "float", err)
		return def
	}
	return f
}

// Bool parses the named param as a boolean.
func (b *Binder) Bool(name string, def bool) bool {
	v, ok := b.p[name]
	if !ok {
		return def
	}
	t, err := strconv.ParseBool(v)
	if err != nil {
		b.fail(name, v, "bool", err)
		return def
	}
	return t
}

// Duration parses the named param as a time.Duration ("50ms").
func (b *Binder) Duration(name string, def time.Duration) time.Duration {
	v, ok := b.p[name]
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		b.fail(name, v, "duration", err)
		return def
	}
	return d
}

// Metric is one named scalar an experiment reports.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// MarshalJSON emits non-finite values as null instead of failing the
// whole document (encoding/json rejects NaN/Inf). Scale-starved runs
// legitimately produce NaN quantiles — e.g. a latency probe that never
// completed — and one such metric must not make a Result, a sweep
// file, or a golden snapshot unserializable. Finite values go through
// the standard encoder, so their formatting is byte-identical to a
// plain struct marshal.
func (m Metric) MarshalJSON() ([]byte, error) {
	if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
		return json.Marshal(struct {
			Name  string   `json:"name"`
			Value *float64 `json:"value"`
			Unit  string   `json:"unit,omitempty"`
		}{m.Name, nil, m.Unit})
	}
	type noMethods Metric // drop MarshalJSON to avoid recursion
	return json.Marshal(noMethods(m))
}

// UnmarshalJSON is the inverse of the NaN-as-null encoding: a null value
// restores NaN, so a Result loaded from a run-store manifest re-emits
// byte-identically to the fresh run that produced it. Without this, a
// cached NaN metric would decode to 0 and a resumed sweep's output would
// silently differ from an uninterrupted one.
func (m *Metric) UnmarshalJSON(data []byte) error {
	var raw struct {
		Name  string   `json:"name"`
		Value *float64 `json:"value"`
		Unit  string   `json:"unit"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	m.Name, m.Unit = raw.Name, raw.Unit
	if raw.Value == nil {
		m.Value = math.NaN()
	} else {
		m.Value = *raw.Value
	}
	return nil
}

// Artifact is a named blob (CSV trace) an experiment produced. Data is
// excluded from JSON results; the CLIs write it to the -dump directory.
type Artifact struct {
	Name string `json:"name"`
	Data string `json:"-"`
}

// Result is the structured record of one experiment run. Everything in
// it derives from the simulation alone (no wall-clock), so a fixed seed
// and params produce byte-identical Results regardless of scheduling.
type Result struct {
	Experiment string                   `json:"experiment"`
	Seed       int64                    `json:"seed"`
	Params     Params                   `json:"params,omitempty"`
	Metrics    []Metric                 `json:"metrics,omitempty"`
	Summaries  map[string]stats.Summary `json:"summaries,omitempty"`
	Report     string                   `json:"report,omitempty"`
	Artifacts  []Artifact               `json:"artifacts,omitempty"`
	// Err records a per-point failure during a sweep (the sweep keeps
	// going and reports the first error separately).
	Err string `json:"err,omitempty"`
}

// AddMetric appends a metric.
func (r *Result) AddMetric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// Metric returns the named metric's value, or NaN when absent.
func (r *Result) Metric(name string) float64 {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return math.NaN()
}

// Experiment is one reproducible scenario: a parameterized function from
// (seed, params) to a structured Result. Run must be self-contained —
// build its own sim.Engine(s), share no mutable state — so the sweep
// runner can execute many instances concurrently.
type Experiment interface {
	Name() string
	Desc() string
	Params() []Param
	Run(seed int64, p Params) (Result, error)
}

// SourceHasher is an optional Experiment extension: a stable content
// hash of whatever defines the experiment's behavior outside the binary
// (a declarative config's canonical bytes, say). Run stores key cells by
// it, so editing a config invalidates exactly the cells it changes while
// cosmetic edits — comments, key order, whitespace — keep the cache
// warm. Experiments that don't implement it are keyed by the binary
// fingerprint instead: any rebuild invalidates their cells.
type SourceHasher interface {
	// SourceHash returns a scheme-prefixed digest ("topo:<hex>"), or ""
	// to fall back to the binary fingerprint.
	SourceHash() string
}

// Metadater is an optional Experiment extension: extra key/value context
// (paper section, source file, ...) recorded into run-store manifests
// alongside the result. Purely informational — never part of the run
// key.
type Metadater interface {
	Metadata() map[string]string
}
