package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteJSON emits results as indented JSON. Params maps marshal with
// sorted keys and Metrics keep their insertion order, so the bytes are a
// pure function of the results — the determinism tests compare sweeps
// through this emitter.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(results)
}

// WriteCSV flattens results into one row per run: experiment, seed, the
// sorted union of param names, then the sorted union of metric names
// (summaries expand to name.p50 / name.p99 / name.mean columns). Cells
// absent from a given result are left empty.
func WriteCSV(w io.Writer, results []Result) error {
	paramSet := map[string]bool{}
	colSet := map[string]bool{}
	for _, r := range results {
		for k := range r.Params {
			paramSet[k] = true
		}
		for _, m := range r.Metrics {
			colSet[m.Name] = true
		}
		for name := range r.Summaries {
			for _, q := range summaryCols {
				colSet[name+"."+q] = true
			}
		}
	}
	params := sortedKeys(paramSet)
	cols := sortedKeys(colSet)

	header := append([]string{"experiment", "seed"}, params...)
	header = append(header, cols...)
	header = append(header, "err")
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range results {
		row := make([]string, 0, len(header))
		row = append(row, r.Experiment, fmt.Sprintf("%d", r.Seed))
		for _, p := range params {
			row = append(row, r.Params[p])
		}
		vals := map[string]float64{}
		for _, m := range r.Metrics {
			vals[m.Name] = m.Value
		}
		for name, s := range r.Summaries {
			vals[name+".n"] = float64(s.N)
			vals[name+".mean"] = s.Mean
			vals[name+".p50"] = s.P50
			vals[name+".p90"] = s.P90
			vals[name+".p99"] = s.P99
		}
		for _, c := range cols {
			if v, ok := vals[c]; ok {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		row = append(row, csvEscape(r.Err))
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

var summaryCols = []string{"n", "mean", "p50", "p90", "p99"}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
