package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Time{5 * Millisecond, Millisecond, 3 * Millisecond} {
		d := d
		e.At(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{Millisecond, 3 * Millisecond, 5 * Millisecond}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(2*Second, func() {
		e.After(Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 3*Second {
		t.Fatalf("After fired at %v, want 3s", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	e.At(Second, func() { ran = append(ran, e.Now()) })
	e.At(3*Second, func() { ran = append(ran, e.Now()) })
	e.RunUntil(2 * Second)
	if len(ran) != 1 || ran[0] != Second {
		t.Fatalf("ran = %v, want [1s]", ran)
	}
	if e.Now() != 2*Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(ran) != 2 || ran[1] != 3*Second {
		t.Fatalf("after Run, ran = %v", ran)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Second, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestTickerPeriodicAndStops(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	var tk *Ticker
	tk = Tick(e, 10*Millisecond, func() {
		times = append(times, e.Now())
		if len(times) == 5 {
			tk.Stop()
		}
	})
	e.RunUntil(Second)
	if len(times) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(times))
	}
	for i, at := range times {
		want := Time(i+1) * 10 * Millisecond
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := NewEngine(1)
	e.At(Second, func() {
		e.After(-Second, func() {
			if e.Now() != Second {
				t.Errorf("clamped event at %v, want 1s", e.Now())
			}
		})
	})
	e.Run()
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Errorf("Millis() = %v, want 2.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Errorf("FromSeconds(0.25) = %v, want 250ms", got)
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

// Property: events always execute in non-decreasing timestamp order no
// matter the insertion order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint32) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			e.At(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes an event past the horizon.
func TestPropertyRunUntilHorizon(t *testing.T) {
	f := func(delays []uint16, horizon uint16) bool {
		e := NewEngine(9)
		ok := true
		for _, d := range delays {
			e.At(Time(d), func() {
				if e.Now() > Time(horizon) {
					ok = false
				}
			})
		}
		e.RunUntil(Time(horizon))
		return ok
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEventPendingStates(t *testing.T) {
	e := NewEngine(1)
	var nilEv *Event
	if nilEv.Pending() {
		t.Fatal("nil event reports pending")
	}
	ev := e.At(Second, func() {})
	if !ev.Pending() {
		t.Fatal("scheduled event not pending")
	}
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	ev2 := e.At(2*Second, func() {})
	e.Run()
	if ev2.Pending() {
		t.Fatal("fired event still pending")
	}
}
