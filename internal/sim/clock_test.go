package sim_test

import (
	"testing"

	"bundler/internal/clock"
	"bundler/internal/clock/clocktest"
	"bundler/internal/sim"
)

// TestEngineClockContract runs the shared clock conformance suite
// against the simulator engine — the same suite internal/clock runs
// against the wall clock, so the two implementations cannot drift on
// the contract the migrated components rely on.
func TestEngineClockContract(t *testing.T) {
	clocktest.Run(t, func(t *testing.T) (clock.Clock, func(clock.Time)) {
		eng := sim.NewEngine(1)
		return eng, func(horizon clock.Time) { eng.RunUntil(horizon) }
	})
}
