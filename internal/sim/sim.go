// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the network emulation in this repository runs on virtual time: an
// Engine owns a monotonically increasing clock and a priority queue of
// events. Components schedule callbacks at absolute or relative virtual
// times; the engine runs them in timestamp order (FIFO among equal
// timestamps). Because nothing ever consults the wall clock, every run is
// exactly reproducible given the same seed — the property that lets the
// paper's evaluation (§7–§9) regenerate byte for byte.
//
// Units convention: Time is integer nanoseconds of virtual time, used
// for both timestamps and durations; rates elsewhere in the repository
// are float64 bits/second.
//
// The Engine satisfies clock.Clock, the injectable scheduling interface
// in internal/clock; components written against that interface run
// unchanged on this engine or on a real-time clock.Wall.
package sim

import (
	"fmt"
	"math/rand"

	"bundler/internal/clock"
)

// Time is a virtual timestamp or duration in nanoseconds. It is an alias
// for clock.Time: simulator timestamps and wall-clock timestamps are the
// same type, so components migrated to the clock.Clock interface
// interoperate with sim-era code without conversions.
type Time = clock.Time

// Common durations, re-exported from internal/clock.
const (
	Nanosecond  = clock.Nanosecond
	Microsecond = clock.Microsecond
	Millisecond = clock.Millisecond
	Second      = clock.Second
)

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return clock.FromSeconds(s) }

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
//
// Events come in three flavors, distinguished by how their storage is
// managed:
//
//   - handle events (At/After): heap-allocated per call, returned to the
//     caller, never recycled — a retained *Event stays valid forever.
//   - pooled events (CallAt/CallAfter): owned by the engine's free list
//     and recycled the moment they fire. No handle escapes, so no caller
//     can observe the reuse. This is the allocation-free hot path.
//   - intrusive events: embedded in a Timer (or Ticker) and re-armed in
//     place by their owner.
type Event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events with equal timestamps

	// Exactly one of fn / afn is set. afn carries its arguments in the
	// event itself so hot-path callers need no capturing closure.
	fn  func()
	afn func(a0, a1 any)
	a0  any
	a1  any

	index  int // heap index; -1 once removed
	cancel bool
	pooled bool // owned by the engine free list; recycled after firing
}

func (e *Event) run() {
	if e.afn != nil {
		e.afn(e.a0, e.a1)
		return
	}
	e.fn()
}

// Time reports when the event will fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e == nil || e.cancel }

// Pending reports whether the event is still scheduled: not yet fired and
// not cancelled. A nil event is not pending.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancel }

// heapEntry is one slot of the event queue. The ordering key (at, seq)
// is duplicated inline so sift comparisons walk the slice sequentially
// instead of chasing an *Event per compare — with tens of thousands of
// pending events the queue is the engine's hottest data structure, and
// the pointer-chasing version spent most of its time in cache misses.
// The key total-orders events (seq is unique), so pop order — and with
// it every simulation result — is identical to any other heap layout.
type heapEntry struct {
	at  Time
	seq uint64
	ev  *Event
}

// eventHeap is a hand-rolled binary min-heap over heapEntry. It replaces
// container/heap to keep entries unboxed and comparisons devirtualized;
// the sift routines are the textbook ones.
type eventHeap []heapEntry

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].ev.index = i
	h[j].ev.index = j
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts index i toward the leaves, reporting whether it moved.
func (h eventHeap) down(i int) bool {
	i0 := i
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > i0
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(*h)
	*h = append(*h, heapEntry{at: ev.at, seq: ev.seq, ev: ev})
	h.up(ev.index)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	old := *h
	n := len(old) - 1
	old.swap(0, n)
	ev := old[n].ev
	old[n] = heapEntry{}
	*h = old[:n]
	if n > 0 {
		old[:n].down(0)
	}
	ev.index = -1
	return ev
}

// fix re-establishes heap order after the entry at index i changed its
// key (Timer re-arm); the caller must have updated the inline key first.
func (h eventHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

// Engine is a single-threaded discrete-event executor with a deterministic
// pseudo-random source. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	free    []*Event // recycled pooled events (CallAt/CallAfter)
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All stochastic
// components (workload generators, SFQ perturbation, ...) must draw from
// this source so runs are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it always indicates a logic error in a component.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.events.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped
// to zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// CallAt schedules fn(a0, a1) at absolute virtual time t without
// returning a handle. The backing event comes from a per-engine free
// list and is recycled the moment it fires, so steady-state scheduling
// through this path allocates nothing. Use it for per-packet work
// (link serialization, propagation, jitter); use At/After when the
// caller needs to cancel, and Timer for re-armed component timers.
//
// fn should be a package-level function (a func literal that captures
// nothing also compiles to a static value); the values it needs travel
// in a0/a1. Boxing a pointer into any does not allocate.
func (e *Engine) CallAt(t Time, fn func(a0, a1 any), a0, a1 any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		ev = &Event{pooled: true}
	}
	e.seq++
	ev.at, ev.seq = t, e.seq
	ev.afn, ev.a0, ev.a1 = fn, a0, a1
	ev.cancel = false
	e.events.push(ev)
}

// CallAfter is CallAt relative to now; negative d is clamped to zero.
func (e *Engine) CallAfter(d Time, fn func(a0, a1 any), a0, a1 any) {
	if d < 0 {
		d = 0
	}
	e.CallAt(e.now+d, fn, a0, a1)
}

// NewTimer implements clock.Clock: it returns an unarmed Timer bound to
// fn. Components holding their Timer by value should keep calling
// (*Timer).Init instead; this constructor exists for code written
// against the interface.
func (e *Engine) NewTimer(fn func()) clock.Timer {
	t := &Timer{}
	t.Init(e, fn)
	return t
}

// Tick implements clock.Clock; it is Tick(e, period, fn).
func (e *Engine) Tick(period Time, fn func()) clock.Ticker {
	return Tick(e, period, fn)
}

// The engine is the virtual-time implementation of the scheduling
// interface; clock.Wall is the real-time one.
var _ clock.Clock = (*Engine)(nil)

// release returns a pooled event to the free list, dropping references
// so the pool never retains callbacks or packet arguments.
func (e *Engine) release(ev *Event) {
	ev.afn, ev.a0, ev.a1, ev.fn = nil, nil, nil, nil
	e.free = append(e.free, ev)
}

// Stop makes Run / RunUntil return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// step executes the earliest event. It reports false if none remain.
func (e *Engine) step(limit Time, useLimit bool) bool {
	for len(e.events) > 0 {
		if useLimit && e.events[0].at > limit {
			return false
		}
		next := e.events.popMin()
		if next.cancel {
			if next.pooled {
				e.release(next)
			}
			continue
		}
		// Invariant: virtual time never runs backwards. The heap makes
		// this structural, but a corrupted comparison (or a mutated
		// Timer event) would surface here first.
		if next.at < e.now {
			panic(fmt.Sprintf("sim: clock would run backwards: event at %v, now %v", next.at, e.now))
		}
		e.now = next.at
		next.run()
		if next.pooled {
			e.release(next)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step(0, false) {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && e.step(t, true) {
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// Timer is a reusable one-shot timer for components that repeatedly
// schedule, cancel, and re-arm the same callback (retransmission
// timeouts, pacing gates, tickers). It owns a single intrusive Event
// that is re-armed in place, so arming allocates nothing after Init.
//
// A Timer must be initialized with Init before use and belongs to one
// engine for its lifetime. The zero value is not usable.
type Timer struct {
	eng *Engine
	ev  Event
}

// Init binds the timer to an engine and callback. It must be called
// exactly once, before any Arm.
func (t *Timer) Init(eng *Engine, fn func()) {
	if t.eng != nil {
		panic("sim: Timer initialized twice")
	}
	t.eng = eng
	t.ev.fn = fn
	t.ev.index = -1
}

// Pending reports whether the timer is armed and will fire.
func (t *Timer) Pending() bool { return t.ev.index >= 0 && !t.ev.cancel }

// Stop disarms the timer. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() { t.ev.cancel = true }

// ArmAt (re)schedules the timer's callback at absolute time at,
// regardless of its current state. Like Engine.At, arming in the past
// panics. The re-armed event gets a fresh sequence number, so FIFO
// ordering among equal timestamps behaves exactly as if the timer had
// been cancelled and a new event created.
func (t *Timer) ArmAt(at Time) {
	e := t.eng
	if at < e.now {
		panic(fmt.Sprintf("sim: arming timer at %v before now %v", at, e.now))
	}
	e.seq++
	t.ev.at, t.ev.seq, t.ev.cancel = at, e.seq, false
	if i := t.ev.index; i >= 0 {
		// The heap entry's inline key must track the re-armed event.
		e.events[i].at, e.events[i].seq = at, t.ev.seq
		e.events.fix(i)
	} else {
		e.events.push(&t.ev)
	}
}

// ArmAfter arms the timer d from now; negative d is clamped to zero.
func (t *Timer) ArmAfter(d Time) {
	if d < 0 {
		d = 0
	}
	t.ArmAt(t.eng.now + d)
}

// Ticker invokes fn every period until Stop is called on it. The first
// invocation happens one period from the time Tick is called. Each
// tick re-arms an intrusive Timer, so a running ticker allocates
// nothing.
type Ticker struct {
	timer   Timer
	period  Time
	fn      func()
	stopped bool
}

// Tick starts a new periodic callback. period must be positive.
func Tick(eng *Engine, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Tick period must be positive")
	}
	t := &Ticker{period: period, fn: fn}
	t.timer.Init(eng, t.tick)
	t.timer.ArmAfter(period)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.timer.ArmAfter(t.period)
	}
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}
