// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the network emulation in this repository runs on virtual time: an
// Engine owns a monotonically increasing clock and a priority queue of
// events. Components schedule callbacks at absolute or relative virtual
// times; the engine runs them in timestamp order (FIFO among equal
// timestamps). Because nothing ever consults the wall clock, every run is
// exactly reproducible given the same seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among events with equal timestamps
	fn     func()
	index  int // heap index; -1 once removed
	cancel bool
}

// Time reports when the event will fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e == nil || e.cancel }

// Pending reports whether the event is still scheduled: not yet fired and
// not cancelled. A nil event is not pending.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event executor with a deterministic
// pseudo-random source. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All stochastic
// components (workload generators, SFQ perturbation, ...) must draw from
// this source so runs are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it always indicates a logic error in a component.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped
// to zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run / RunUntil return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// step executes the earliest event. It reports false if none remain.
func (e *Engine) step(limit Time, useLimit bool) bool {
	for len(e.events) > 0 {
		next := e.events[0]
		if useLimit && next.at > limit {
			return false
		}
		heap.Pop(&e.events)
		if next.cancel {
			continue
		}
		e.now = next.at
		next.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step(0, false) {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && e.step(t, true) {
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// Ticker invokes fn every period until Stop is called on it. The first
// invocation happens one period from the time Tick is called.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	ev      *Event
	stopped bool
}

// Tick starts a new periodic callback. period must be positive.
func Tick(eng *Engine, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Tick period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.eng.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
