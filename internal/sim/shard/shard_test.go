package shard

import (
	"strings"
	"testing"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/sim"
)

// delivery is one observed packet arrival, for comparing runs.
type delivery struct {
	at   sim.Time
	flow uint64
	seq  int64
}

// buildRing wires n partitions in a ring: partition i emits packets
// toward partition (i+1) mod n through a port with the given latency,
// on a schedule derived from its own RNG stream. Each destination keeps
// its own delivery log (partitions share no mutable state, so the logs
// must be per-partition too); the returned slice is indexed by the
// receiving partition.
func buildRing(n int, latency sim.Time, seed int64, perPart int) (*World, []*[]delivery) {
	w := NewWorld()
	parts := make([]*Part, n)
	logs := make([]*[]delivery, n)
	for i := range parts {
		parts[i] = w.AddPart(MixSeed(seed, i))
		logs[i] = &[]delivery{}
	}
	ports := make([]*Port, n)
	for i := range parts {
		tgt := parts[(i+1)%n]
		log := logs[(i+1)%n]
		sink := netem.ReceiverFunc(func(p *pkt.Packet) {
			*log = append(*log, delivery{at: tgt.Eng.Now(), flow: p.FlowID, seq: p.Seq})
			pkt.Put(p)
		})
		ports[i] = w.NewPort(parts[i], tgt, sink, latency)
	}
	for i, pa := range parts {
		pa := pa
		port := ports[i]
		for k := 0; k < perPart; k++ {
			// Jittered emission times from the partition's own stream keep
			// the schedule irregular without depending on shard count.
			at := sim.Time(pa.Eng.Rand().Int63n(int64(sim.Second)))
			flow, seq := uint64(i), int64(k)
			pa.Eng.At(at, func() {
				p := pa.Pool.Get()
				p.FlowID, p.Seq = flow, seq
				port.Receive(p)
			})
		}
	}
	return w, logs
}

// TestShardCountInvariant runs the same ring under every shard count and
// requires identical delivery logs — the package's core contract.
func TestShardCountInvariant(t *testing.T) {
	const n, perPart = 5, 40
	var want []delivery
	for _, shards := range []int{1, 2, 3, 5, 8} {
		w, logs := buildRing(n, 10*sim.Millisecond, 42, perPart)
		w.SetShards(shards)
		w.Run(3*sim.Second, nil)
		var got []delivery
		for _, log := range logs {
			got = append(got, *log...)
		}
		if len(got) != n*perPart {
			t.Fatalf("shards=%d: delivered %d packets, want %d", shards, len(got), n*perPart)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: delivery %d = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestWindowBound checks messages are delivered exactly one latency
// after emission, i.e. windowing adds no artificial delay.
func TestWindowBound(t *testing.T) {
	w := NewWorld()
	a := w.AddPart(1)
	b := w.AddPart(2)
	var arrived sim.Time
	port := w.NewPort(a, b, netem.ReceiverFunc(func(p *pkt.Packet) {
		arrived = b.Eng.Now()
		pkt.Put(p)
	}), 25*sim.Millisecond)
	const emit = 40 * sim.Millisecond
	a.Eng.At(emit, func() { port.Receive(a.Pool.Get()) })
	w.Run(sim.Second, nil)
	if want := emit + 25*sim.Millisecond; arrived != want {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
	if la := w.Lookahead(); la != 25*sim.Millisecond {
		t.Fatalf("lookahead %v, want 25ms", la)
	}
}

// TestLookaheadViolationPanics drives a boundary crossing whose declared
// arrival precedes the window barrier; drain must refuse it loudly.
func TestLookaheadViolationPanics(t *testing.T) {
	w := NewWorld()
	a := w.AddPart(1)
	b := w.AddPart(2)
	port := w.NewPort(a, b, netem.ReceiverFunc(func(p *pkt.Packet) { pkt.Put(p) }), 50*sim.Millisecond)
	a.Eng.At(10*sim.Millisecond, func() {
		// A buggy upstream element claiming instant arrival: 10ms is
		// inside the first [0, 50ms) window.
		port.ReceiveAt(a.Pool.Get(), a.Eng.Now())
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected lookahead-violation panic")
		}
		if !strings.Contains(r.(string), "lookahead violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	w.Run(sim.Second, nil)
}

// TestPoolHandoff verifies barrier ownership transfer: a packet minted
// by partition A's pool and released on partition B must land in B's
// free list, with the transfer counters balancing.
func TestPoolHandoff(t *testing.T) {
	w := NewWorld()
	a := w.AddPart(1)
	b := w.AddPart(2)
	port := w.NewPort(a, b, netem.ReceiverFunc(func(p *pkt.Packet) { pkt.Put(p) }), 10*sim.Millisecond)
	a.Eng.At(5*sim.Millisecond, func() { port.Receive(a.Pool.Get()) })
	w.Run(sim.Second, nil)
	if w.Transferred() != 1 {
		t.Fatalf("Transferred() = %d, want 1", w.Transferred())
	}
	as, aIn, aOut := a.Pool.Stats()
	bs, bIn, bOut := b.Pool.Stats()
	if as.Gets != 1 || aOut != 1 || aIn != 0 {
		t.Fatalf("source pool: stats %+v in %d out %d, want 1 get / 1 out", as, aIn, aOut)
	}
	if bs.Puts != 1 || bIn != 1 || bOut != 0 {
		t.Fatalf("dest pool: stats %+v in %d out %d, want 1 put / 1 in", bs, bIn, bOut)
	}
	// The released packet must be reissued by B, not reallocated.
	p := b.Pool.Get()
	bs, _, _ = b.Pool.Stats()
	if bs.News != 0 {
		t.Fatalf("dest pool allocated fresh storage (news=%d); hand-off lost the packet", bs.News)
	}
	pkt.Put(p)
}

// TestAdoptedSinglePartition checks a no-port, one-partition world is a
// plain run loop over the adopted engine: same stop time, check cadence
// honored before advancing.
func TestAdoptedSinglePartition(t *testing.T) {
	eng := sim.NewEngine(7)
	w := NewWorld()
	w.AdoptPart(eng)
	fired := 0
	eng.At(1500*sim.Millisecond, func() { fired++ })
	stop := w.Run(10*sim.Second, func() bool { return fired > 0 })
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	// The event fires inside the second 1s window; the barrier check
	// stops the run at its close.
	if stop != 2*sim.Second {
		t.Fatalf("stopped at %v, want 2s", stop)
	}
	if eng.Now() != 2*sim.Second {
		t.Fatalf("engine clock at %v, want 2s", eng.Now())
	}
}

// TestShardsClamp pins SetShards' clamping to [1, partitions].
func TestShardsClamp(t *testing.T) {
	w := NewWorld()
	for i := 0; i < 3; i++ {
		w.AddPart(int64(i))
	}
	w.SetShards(0)
	if got := w.Shards(); got != 1 {
		t.Fatalf("SetShards(0): Shards() = %d, want 1", got)
	}
	w.SetShards(64)
	if got := w.Shards(); got != 3 {
		t.Fatalf("SetShards(64) with 3 parts: Shards() = %d, want 3", got)
	}
}

// TestPortValidation pins the construction panics.
func TestPortValidation(t *testing.T) {
	w := NewWorld()
	a := w.AddPart(1)
	b := w.AddPart(2)
	sink := netem.ReceiverFunc(func(p *pkt.Packet) {})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero latency", func() { w.NewPort(a, b, sink, 0) })
	mustPanic("same partition", func() { w.NewPort(a, a, sink, sim.Millisecond) })
	mustPanic("nil dst", func() { w.NewPort(a, b, nil, sim.Millisecond) })
	mustPanic("empty world", func() { NewWorld().Run(sim.Second, nil) })
}

// TestMixSeedStreams checks seed derivation is stable and collision-free
// across a realistic partition range.
func TestMixSeedStreams(t *testing.T) {
	seen := map[int64]int{}
	for seed := int64(1); seed <= 3; seed++ {
		for part := 0; part < 256; part++ {
			s := MixSeed(seed, part)
			if prior, dup := seen[s]; dup {
				t.Fatalf("MixSeed collision: %d (earlier case %d)", s, prior)
			}
			seen[s] = part
			if s2 := MixSeed(seed, part); s2 != s {
				t.Fatalf("MixSeed not stable: %d then %d", s, s2)
			}
		}
	}
}
