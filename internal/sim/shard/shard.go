// Package shard runs a discrete-event simulation split across several
// sim.Engine partitions that advance in lock-step windows — conservative
// parallel DES in the Chandy–Misra–Bryant tradition.
//
// A World owns N partitions (Part), each with its own engine, RNG
// stream, and packet pool. Partitions advance together through closed
// time windows whose width is bounded by the world's lookahead: the
// minimum declared latency over all cross-partition Ports. Within a
// window the partitions are independent — no shared mutable state — so
// they can run on separate goroutines. A packet crossing partitions
// becomes a timestamped message appended to the source partition's
// outbox; outboxes are drained at the window barrier (single-threaded),
// sorted into a deterministic order, ownership-transferred to the
// destination's pool, and injected as ordinary engine events.
//
// The lookahead argument is what makes this safe: a message emitted at
// any time t inside a window [start, end] travels with latency ≥
// lookahead ≥ (end − start), so it arrives at or after end — the next
// window's territory — and injecting it at the barrier can never be
// late. Run enforces this with a panic rather than trusting it.
//
// Determinism does not depend on the worker count: each partition's
// execution within a window is a function of its own prior state, and
// the barrier merge sorts messages by (arrival time, source partition,
// per-source emission sequence). Running shards=1 and shards=N therefore
// produces byte-identical results — the property the scenario-level
// determinism tests pin down.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/sim"
)

// maxOutbox bounds a partition's per-window outbox. Cross-partition
// links are rate-limited, so a window can only produce a bounded number
// of crossings; blowing past this means a component is emitting packets
// outside the link discipline (or the window width is wrong).
const maxOutbox = 1 << 20

// message is one cross-partition packet in flight between windows.
type message struct {
	arrive sim.Time
	src    int    // source partition ID (merge tie-break)
	seq    uint64 // per-source emission order (merge tie-break)
	tgt    *Part
	dst    netem.Receiver
	p      *pkt.Packet
}

// Part is one partition: an engine, the packet pool that owns the
// partition's in-flight packets, and the outbox of messages it has
// emitted toward other partitions this window. Exactly one goroutine
// drives a Part within a window; the barrier between windows is the
// only cross-partition synchronization point.
type Part struct {
	// ID is the partition's stable index in its World (creation order).
	// RNG streams and merge ordering key off it, so it must not depend
	// on the shard count.
	ID int
	// Eng is the partition's private event engine.
	Eng *sim.Engine
	// Pool owns the packets this partition mints (nil for adopted
	// partitions, which use the global pool).
	Pool *pkt.Pool

	outbox []message
	msgSeq uint64
}

func (pa *Part) send(arrive sim.Time, tgt *Part, dst netem.Receiver, p *pkt.Packet) {
	if len(pa.outbox) >= maxOutbox {
		panic(fmt.Sprintf("shard: partition %d outbox exceeds %d messages in one window", pa.ID, maxOutbox))
	}
	pa.outbox = append(pa.outbox, message{arrive: arrive, src: pa.ID, seq: pa.msgSeq, tgt: tgt, dst: dst, p: p})
	pa.msgSeq++
}

// Port is a cross-partition edge endpoint: a netem.BoundaryPort living
// on the source partition that delivers packets to dst on the target
// partition after latency. Its latency participates in the world's
// lookahead, so it must be the true minimum transit time of the edge.
type Port struct {
	src     *Part
	tgt     *Part
	dst     netem.Receiver
	latency sim.Time
}

// NewPort declares a cross-partition edge from src to tgt with the given
// minimum transit latency, delivering into dst on the target partition.
// Zero or negative latency panics: conservative windows need every
// crossing to take positive time.
func (w *World) NewPort(src, tgt *Part, dst netem.Receiver, latency sim.Time) *Port {
	if latency <= 0 {
		panic("shard: port latency must be positive (it bounds the lookahead)")
	}
	if src == tgt {
		panic("shard: port endpoints must be distinct partitions")
	}
	if dst == nil {
		panic("shard: port needs a destination receiver")
	}
	pt := &Port{src: src, tgt: tgt, dst: dst, latency: latency}
	w.ports = append(w.ports, pt)
	return pt
}

// ReceiveAt implements netem.BoundaryPort: a Link upstream has already
// computed the arrival time (its own delay folded in), so the port just
// records the message for the barrier.
func (pt *Port) ReceiveAt(p *pkt.Packet, arrive sim.Time) {
	pt.src.send(arrive, pt.tgt, pt.dst, p)
}

// Receive implements netem.Receiver for non-Link upstreams (e.g. a
// Jitter element): the port adds its own latency.
func (pt *Port) Receive(p *pkt.Packet) {
	pt.src.send(pt.src.Eng.Now()+pt.latency, pt.tgt, pt.dst, p)
}

// Router fans packets out to one of several Ports by inspecting the
// packet — the hub partition's core switch. It implements
// netem.BoundaryPort so a Link can terminate directly on it and use the
// boundary fast path.
type Router struct {
	route func(p *pkt.Packet) *Port
}

// NewRouter builds a router around a routing function. route must
// return a non-nil port for every packet it is handed (panic inside it
// for unroutable packets — silent drops would break pool conservation).
func NewRouter(route func(p *pkt.Packet) *Port) *Router {
	return &Router{route: route}
}

// Receive implements netem.Receiver.
func (r *Router) Receive(p *pkt.Packet) { r.route(p).Receive(p) }

// ReceiveAt implements netem.BoundaryPort.
func (r *Router) ReceiveAt(p *pkt.Packet, arrive sim.Time) { r.route(p).ReceiveAt(p, arrive) }

// World is a set of partitions advancing in lock-step windows.
type World struct {
	parts  []*Part
	ports  []*Port
	shards int

	transferred int64
	scratch     []message

	running bool
}

// NewWorld returns an empty world. Add partitions and ports, wire the
// topology, then Run.
func NewWorld() *World { return &World{shards: 1} }

// AddPart creates a partition with a fresh engine seeded with seed and
// its own packet pool. Seeds should be derived from the experiment seed
// and the partition's stable identity (see MixSeed), never from the
// shard count.
func (w *World) AddPart(seed int64) *Part {
	pa := &Part{ID: len(w.parts), Eng: sim.NewEngine(seed), Pool: &pkt.Pool{}}
	w.parts = append(w.parts, pa)
	return pa
}

// AdoptPart wraps an existing engine as a partition using the shared
// global packet pool. It lets a legacy single-engine scenario run under
// the windowed protocol unchanged: a one-partition world with no ports
// executes exactly like Fabric.RunUntilDone on the adopted engine.
func (w *World) AdoptPart(eng *sim.Engine) *Part {
	pa := &Part{ID: len(w.parts), Eng: eng}
	w.parts = append(w.parts, pa)
	return pa
}

// Parts returns the number of partitions.
func (w *World) Parts() int { return len(w.parts) }

// SetShards sets how many worker goroutines drive the partitions
// (partition i runs on worker i mod shards). Values are clamped to
// [1, partitions]. The shard count affects scheduling only — never
// physics — so any value yields byte-identical results.
func (w *World) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	if len(w.parts) > 0 && n > len(w.parts) {
		n = len(w.parts)
	}
	w.shards = n
}

// Shards reports the effective worker count.
func (w *World) Shards() int {
	if w.shards > len(w.parts) && len(w.parts) > 0 {
		return len(w.parts)
	}
	return w.shards
}

// Lookahead returns the window bound: the minimum latency over all
// declared ports, or zero when the world has no cross-partition edges
// (windows then default to one second, purely as a check cadence).
func (w *World) Lookahead() sim.Time {
	var la sim.Time
	for _, pt := range w.ports {
		if la == 0 || pt.latency < la {
			la = pt.latency
		}
	}
	return la
}

// Transferred reports how many cross-partition messages have been
// drained at window barriers so far — the pool-conservation tests use
// it to prove hand-offs actually happened.
func (w *World) Transferred() int64 { return w.transferred }

// deliverMsg is the injected-event trampoline: a0 is the destination
// netem.Receiver, a1 the packet.
func deliverMsg(a0, a1 any) { a0.(netem.Receiver).Receive(a1.(*pkt.Packet)) }

// drain merges every partition's outbox in deterministic order and
// injects the messages into their destination engines. It runs
// single-threaded at the window barrier; end is the barrier time every
// engine has reached.
func (w *World) drain(end sim.Time) {
	msgs := w.scratch[:0]
	for _, pa := range w.parts {
		msgs = append(msgs, pa.outbox...)
		for i := range pa.outbox {
			pa.outbox[i] = message{} // drop packet refs
		}
		pa.outbox = pa.outbox[:0]
	}
	if len(msgs) == 0 {
		w.scratch = msgs
		return
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].arrive != msgs[j].arrive {
			return msgs[i].arrive < msgs[j].arrive
		}
		if msgs[i].src != msgs[j].src {
			return msgs[i].src < msgs[j].src
		}
		return msgs[i].seq < msgs[j].seq
	})
	for i := range msgs {
		m := &msgs[i]
		if m.arrive < end {
			panic(fmt.Sprintf("shard: lookahead violation: message from partition %d arrives at %v, before window bound %v",
				m.src, m.arrive, end))
		}
		pkt.Transfer(m.p, m.tgt.Pool)
		m.tgt.Eng.CallAt(m.arrive, deliverMsg, m.dst, m.p)
		w.transferred++
		*m = message{}
	}
	w.scratch = msgs[:0]
}

// Run advances every partition in lock-step windows until check reports
// true (evaluated at each barrier, before the window — matching
// Fabric.RunUntilDone's cadence) or the horizon passes. It returns the
// stop time. With ports declared, the window width is
// min(lookahead, 1s); without, it is one second, so a one-partition
// world reproduces the legacy single-engine run loop exactly.
func (w *World) Run(horizon sim.Time, check func() bool) sim.Time {
	if len(w.parts) == 0 {
		panic("shard: world has no partitions")
	}
	if w.running {
		panic("shard: Run re-entered")
	}
	w.running = true
	defer func() { w.running = false }()

	window := sim.Second
	if la := w.Lookahead(); la > 0 && la < window {
		window = la
	}

	shards := w.Shards()
	var (
		workCh []chan sim.Time
		wg     sync.WaitGroup
	)
	if shards > 1 {
		workCh = make([]chan sim.Time, shards)
		for i := range workCh {
			workCh[i] = make(chan sim.Time)
			go func(worker int, ch chan sim.Time) {
				for end := range ch {
					for p := worker; p < len(w.parts); p += shards {
						w.parts[p].Eng.RunUntil(end)
					}
					wg.Done()
				}
			}(i, workCh[i])
		}
		defer func() {
			for _, ch := range workCh {
				close(ch)
			}
		}()
	}

	now := w.parts[0].Eng.Now()
	for now < horizon {
		if check != nil && check() {
			break
		}
		end := now + window
		if end > horizon {
			end = horizon
		}
		if shards > 1 {
			wg.Add(shards)
			for _, ch := range workCh {
				ch <- end
			}
			wg.Wait()
		} else {
			for _, pa := range w.parts {
				pa.Eng.RunUntil(end)
			}
		}
		w.drain(end)
		now = end
	}
	return now
}

// MixSeed derives a partition's RNG seed from the experiment seed and
// the partition's stable identity (splitmix64 finalizer). Keying by
// partition ID — never by shard count — keeps random streams identical
// across shard configurations.
func MixSeed(seed int64, part int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(part+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
