package report

import (
	"math"
	"strings"
	"testing"
)

// TestJainIndex pins the index math, including the edge cases the
// fairness section leans on: empty → NaN (no allocations to judge),
// all-zero → 1.0 (vacuously fair), single → 1.0 (trivially fair).
func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, math.NaN()},
		{"single", []float64{7}, 1},
		{"single-zero", []float64{0}, 1},
		{"all-zero", []float64{0, 0, 0}, 1},
		{"equal", []float64{3, 3, 3, 3}, 1},
		{"one-starved", []float64{1, 0}, 0.5},
		{"two-to-one", []float64{2, 1}, 9.0 / 10},
		{"total-capture", []float64{0, 0, 0, 5}, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := JainIndex(tc.xs)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("JainIndex(%v) = %g, want NaN", tc.xs, got)
				}
				return
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("JainIndex(%v) = %g, want %g", tc.xs, got, tc.want)
			}
		})
	}
}

// TestComputeFairnessWeightNormalization: service proportional to the
// weights scores a perfect 1.0; equal service under unequal weights
// scores strictly lower.
func TestComputeFairnessWeightNormalization(t *testing.T) {
	proportional := []ClassShare{
		{Name: "interactive", Weight: 8, Bytes: 8e6},
		{Name: "bulk", Weight: 1, Bytes: 1e6},
	}
	f := ComputeFairness(proportional, 100, 100, 96e6, 10)
	if math.Abs(f.Jain-1) > 1e-12 {
		t.Fatalf("weight-proportional service: jain = %g, want 1", f.Jain)
	}
	if f.WorkConservation != 1 {
		t.Fatalf("work conservation = %g, want 1", f.WorkConservation)
	}

	equal := []ClassShare{
		{Name: "interactive", Weight: 8, Bytes: 4e6},
		{Name: "bulk", Weight: 1, Bytes: 4e6},
	}
	g := ComputeFairness(equal, 100, 100, 96e6, 10)
	if g.Jain >= 0.9 {
		t.Fatalf("equal service under 8:1 weights scored jain = %g, want < 0.9", g.Jain)
	}
}

// TestComputeFairnessDerivedFields checks share/Mbps/utilization math
// and the division-by-zero guards.
func TestComputeFairnessDerivedFields(t *testing.T) {
	f := ComputeFairness([]ClassShare{
		{Name: "a", Weight: 1, Bytes: 30e6},
		{Name: "b", Weight: 1, Bytes: 10e6},
	}, 7, 8, 96e6, 10)
	a, b := f.Classes[0], f.Classes[1]
	if math.Abs(a.Share-0.75) > 1e-12 || math.Abs(b.Share-0.25) > 1e-12 {
		t.Fatalf("shares %g/%g, want 0.75/0.25", a.Share, b.Share)
	}
	if math.Abs(a.Mbps-24) > 1e-9 { // 30 MB over 10 s = 24 Mbit/s
		t.Fatalf("Mbps = %g, want 24", a.Mbps)
	}
	if math.Abs(a.Utilization-0.25) > 1e-9 { // 24 of 96 Mbit/s
		t.Fatalf("utilization = %g, want 0.25", a.Utilization)
	}
	if math.Abs(f.WorkConservation-7.0/8) > 1e-12 {
		t.Fatalf("work conservation = %g, want 7/8", f.WorkConservation)
	}

	// Zero interval / zero rate: derived figures stay finite.
	z := ComputeFairness([]ClassShare{{Name: "a", Weight: 1, Bytes: 100}}, 0, 0, 0, 0)
	if z.Classes[0].Mbps != 0 || z.Classes[0].Utilization != 0 {
		t.Fatalf("zero-guard failed: %+v", z.Classes[0])
	}
	if z.WorkConservation != 1 {
		t.Fatalf("never-polled work conservation = %g, want vacuous 1", z.WorkConservation)
	}
}

// TestComputeFairnessEdgeCells pins the single-class and idle cells:
// one class is trivially fair; an idle cell (no bytes anywhere) is
// vacuously fair, not NaN or zero.
func TestComputeFairnessEdgeCells(t *testing.T) {
	single := ComputeFairness([]ClassShare{{Name: "only", Weight: 3, Bytes: 5e6}}, 10, 10, 96e6, 1)
	if single.Jain != 1 {
		t.Fatalf("single class jain = %g, want 1", single.Jain)
	}
	idle := ComputeFairness([]ClassShare{
		{Name: "a", Weight: 4, Bytes: 0},
		{Name: "b", Weight: 1, Bytes: 0},
	}, 0, 0, 96e6, 10)
	if idle.Jain != 1 {
		t.Fatalf("idle cell jain = %g, want vacuous 1", idle.Jain)
	}
	if idle.Classes[0].Share != 0 || idle.Classes[0].Utilization != 0 {
		t.Fatalf("idle cell derived fields: %+v", idle.Classes[0])
	}
}

// TestFairnessWriteText smoke-checks the rendered section.
func TestFairnessWriteText(t *testing.T) {
	f := ComputeFairness([]ClassShare{
		{Name: "interactive", Weight: 4, Bytes: 40e6},
		{Name: "bulk", Weight: 1, Bytes: 10e6},
	}, 50, 50, 96e6, 10)
	var sb strings.Builder
	f.WriteText(&sb, "  ")
	out := sb.String()
	for _, want := range []string{"jain=1.000", "work-conservation=1.000", "class interactive", "class bulk", "share=0.800"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered fairness missing %q:\n%s", want, out)
		}
	}
}
