package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bundler/internal/exp"
	"bundler/internal/perf"
	"bundler/internal/stats"
)

func benchFile(records ...perf.Record) perf.File {
	return perf.File{Note: "test", Current: records}
}

var opt10 = Options{NsPct: 10, AllocPct: 10}

// TestBenchGateSyntheticAllocRegression is the acceptance criterion for
// CI's bench-gate: a 20% allocs/op regression against the committed
// baseline must fail, while the unchanged file and sub-threshold noise
// must pass.
func TestBenchGateSyntheticAllocRegression(t *testing.T) {
	base := benchFile(
		perf.Record{Name: "BenchmarkFig09FCT", NsPerOp: 3.7e9, BytesPerOp: 7.8e7, AllocsPerOp: 821403},
		perf.Record{Name: "BenchmarkFig10CrossTraffic", NsPerOp: 5.0e9, BytesPerOp: 2.8e8, AllocsPerOp: 2701636},
	)

	if r := DiffBench(base, base, opt10); !r.OK || r.Compared != 2 {
		t.Fatalf("identical trajectories must pass: %+v", r)
	}

	regressed := benchFile(
		perf.Record{Name: "BenchmarkFig09FCT", NsPerOp: 3.7e9, BytesPerOp: 7.8e7, AllocsPerOp: 821403 * 1.2},
		base.Current[1],
	)
	r := DiffBench(base, regressed, opt10)
	if r.OK {
		t.Fatal("20% allocs/op regression passed the 10% gate")
	}
	if len(r.Findings) != 1 || r.Findings[0].Metric != "allocs/op" || r.Findings[0].Severity != "fail" {
		t.Fatalf("unexpected findings: %+v", r.Findings)
	}
	if d := r.Findings[0].DeltaPct; d == nil || math.Abs(*d-20) > 0.01 {
		t.Fatalf("delta not reported as +20%%: %+v", r.Findings[0])
	}

	noisy := benchFile(
		perf.Record{Name: "BenchmarkFig09FCT", NsPerOp: 3.7e9 * 1.08, BytesPerOp: 7.8e7, AllocsPerOp: 821403 * 1.05},
		base.Current[1],
	)
	if r := DiffBench(base, noisy, opt10); !r.OK {
		t.Fatalf("sub-threshold drift must pass: %+v", r.Findings)
	}
}

func TestBenchNsRegressionAndImprovement(t *testing.T) {
	base := benchFile(perf.Record{Name: "B", NsPerOp: 1e9, AllocsPerOp: 100})
	slow := benchFile(perf.Record{Name: "B", NsPerOp: 1.2e9, AllocsPerOp: 100})
	r := DiffBench(base, slow, opt10)
	if r.OK || r.Findings[0].Metric != "ns/op" {
		t.Fatalf("ns/op regression not gated: %+v", r)
	}
	fast := benchFile(perf.Record{Name: "B", NsPerOp: 0.5e9, AllocsPerOp: 100})
	r = DiffBench(base, fast, opt10)
	if !r.OK {
		t.Fatalf("improvement failed the gate: %+v", r.Findings)
	}
	if len(r.Findings) != 1 || r.Findings[0].Severity != "info" {
		t.Fatalf("improvement should surface as info: %+v", r.Findings)
	}
}

func TestBenchMissingAndAddedRecords(t *testing.T) {
	base := benchFile(
		perf.Record{Name: "A", NsPerOp: 1, AllocsPerOp: 1},
		perf.Record{Name: "B", NsPerOp: 1, AllocsPerOp: 1},
	)
	missing := benchFile(base.Current[0], perf.Record{Name: "C", NsPerOp: 1, AllocsPerOp: 1})
	r := DiffBench(base, missing, opt10)
	if r.OK {
		t.Fatal("lost benchmark coverage passed the gate")
	}
	var failCells, infoCells []string
	for _, f := range r.Findings {
		if f.Severity == "fail" {
			failCells = append(failCells, f.Cell)
		} else {
			infoCells = append(infoCells, f.Cell)
		}
	}
	if len(failCells) != 1 || failCells[0] != "B" || len(infoCells) != 1 || infoCells[0] != "C" {
		t.Fatalf("missing=B should fail, added=C should inform: %+v", r.Findings)
	}
}

// TestBenchRegressionFromZero: allocs/op going 0 -> nonzero has no
// percentage, but is the regression the alloc-free hot path exists to
// prevent.
func TestBenchRegressionFromZero(t *testing.T) {
	base := benchFile(perf.Record{Name: "B", NsPerOp: 1e9, AllocsPerOp: 0})
	r := DiffBench(base, benchFile(perf.Record{Name: "B", NsPerOp: 1e9, AllocsPerOp: 5}), opt10)
	if r.OK {
		t.Fatal("allocs regressed from zero and passed")
	}
}

// TestBenchNsPerPacketGate covers the scale-normalized gate: ns/packet
// drift beyond the threshold fails, per-packet figures vanishing fails
// (lost coverage), and old records without the figure — the pre-pooling
// baseline — are skipped rather than compared against zero.
func TestBenchNsPerPacketGate(t *testing.T) {
	opt := Options{NsPct: 10, AllocPct: 10, NsPktPct: 10}
	base := benchFile(perf.Record{Name: "B", NsPerOp: 1e9, AllocsPerOp: 100, NsPerPacket: 2000})

	slow := benchFile(perf.Record{Name: "B", NsPerOp: 1e9, AllocsPerOp: 100, NsPerPacket: 2500})
	r := DiffBench(base, slow, opt)
	if r.OK || r.Findings[0].Metric != "ns/pkt" {
		t.Fatalf("25%% ns/packet regression passed the 10%% gate: %+v", r.Findings)
	}

	lost := benchFile(perf.Record{Name: "B", NsPerOp: 1e9, AllocsPerOp: 100})
	if r := DiffBench(base, lost, opt); r.OK {
		t.Fatal("vanished per-packet accounting passed")
	}

	// The frozen baseline has no per-packet figures; current records
	// gaining them must not trip the gate.
	old := benchFile(perf.Record{Name: "B", NsPerOp: 1e9, AllocsPerOp: 100})
	if r := DiffBench(old, base, opt); !r.OK {
		t.Fatalf("per-packet figures appearing must pass: %+v", r.Findings)
	}
}

// TestBenchUserFlatnessGate covers the memory-per-emulated-user axis:
// flat or falling bytes/user passes, super-linear growth fails, and a
// single-point axis only informs (nothing to compare against).
func TestBenchUserFlatnessGate(t *testing.T) {
	mk := func(bpu10k, bpu100k float64) perf.File {
		return benchFile(
			perf.Record{Name: "BenchmarkMeshBg010kUsers", NsPerOp: 1e9, AllocsPerOp: 100,
				Users: 2e4, BytesPerUser: bpu10k},
			perf.Record{Name: "BenchmarkMeshBg100kUsers", NsPerOp: 1e9, AllocsPerOp: 100,
				Users: 2e5, BytesPerUser: bpu100k},
		)
	}

	falling := mk(4000, 420)
	r := DiffBench(falling, falling, opt10)
	if !r.OK {
		t.Fatalf("falling bytes/user failed the flatness gate: %+v", r.Findings)
	}
	var gateInfos int
	for _, f := range r.Findings {
		if f.Metric == "B/user" && f.Severity == "info" {
			gateInfos++
		}
	}
	if gateInfos != 1 {
		t.Fatalf("want one informational flatness finding, got %d: %+v", gateInfos, r.Findings)
	}

	flat := mk(4000, 4000*1.10) // within the 15% noise allowance
	if r := DiffBench(flat, flat, opt10); !r.OK {
		t.Fatalf("near-flat bytes/user failed the gate: %+v", r.Findings)
	}

	super := mk(4000, 4000*1.5)
	r = DiffBench(super, super, opt10)
	if r.OK {
		t.Fatal("super-linear bytes/user growth passed the flatness gate")
	}
	var fails []Finding
	for _, f := range r.Findings {
		if f.Severity == "fail" {
			fails = append(fails, f)
		}
	}
	if len(fails) != 1 || fails[0].Metric != "B/user" || !strings.Contains(fails[0].Detail, "super-linear") {
		t.Fatalf("unexpected failures: %+v", fails)
	}

	// The gate reads the new trajectory only: a baseline without user
	// figures must not exempt the regression.
	old := benchFile(
		perf.Record{Name: "BenchmarkMeshBg010kUsers", NsPerOp: 1e9, AllocsPerOp: 100},
		perf.Record{Name: "BenchmarkMeshBg100kUsers", NsPerOp: 1e9, AllocsPerOp: 100},
	)
	if r := DiffBench(old, super, opt10); r.OK {
		t.Fatal("super-linear growth passed because the baseline lacked user figures")
	}

	// A single-point axis informs instead of comparing.
	single := benchFile(perf.Record{Name: "BenchmarkMeshBg010kUsers", NsPerOp: 1e9,
		AllocsPerOp: 100, Users: 2e4, BytesPerUser: 4000})
	r = DiffBench(single, single, opt10)
	if !r.OK {
		t.Fatalf("single-point axis must pass: %+v", r.Findings)
	}
	if len(r.Findings) != 1 || r.Findings[0].Severity != "info" ||
		!strings.Contains(r.Findings[0].Detail, "single point") {
		t.Fatalf("single-point axis should inform: %+v", r.Findings)
	}
}

func TestUserAxisPrefix(t *testing.T) {
	for name, want := range map[string]string{
		"BenchmarkMeshBg010kUsers": "BenchmarkMeshBg",
		"BenchmarkMeshBg100kUsers": "BenchmarkMeshBg",
		"BenchmarkNoDigits":        "BenchmarkNoDigits",
	} {
		if got := userAxisPrefix(name); got != want {
			t.Errorf("userAxisPrefix(%q) = %q, want %q", name, got, want)
		}
	}
}

func cell(name string, seed int64, params exp.Params, metrics map[string]float64, report string) exp.Result {
	r := exp.Result{Experiment: name, Seed: seed, Params: params, Report: report}
	for _, k := range []string{"completed", "fct-p99", "nan-probe"} {
		if v, ok := metrics[k]; ok {
			r.AddMetric(k, v, "")
		}
	}
	return r
}

func TestResultsIdenticalOK(t *testing.T) {
	a := []exp.Result{
		cell("fct", 1, exp.Params{"rate": "24e6"}, map[string]float64{"completed": 300, "fct-p99": 81.5, "nan-probe": math.NaN()}, "tbl\n"),
		cell("fct", 2, exp.Params{"rate": "48e6"}, map[string]float64{"completed": 300, "fct-p99": 44.0}, "tbl2\n"),
	}
	r := DiffResults(a, a, Options{})
	if !r.OK || r.Compared != 2 || len(r.Findings) != 0 {
		t.Fatalf("identical results (including NaN==NaN) must pass: %+v", r)
	}
}

func TestResultsMetricDriftAndTolerance(t *testing.T) {
	old := []exp.Result{cell("fct", 1, nil, map[string]float64{"fct-p99": 100}, "p99=100\n")}
	drifted := []exp.Result{cell("fct", 1, nil, map[string]float64{"fct-p99": 100.5}, "p99=100.5\n")}

	if r := DiffResults(old, drifted, Options{}); r.OK {
		t.Fatal("exact mode admitted metric drift")
	}
	r := DiffResults(old, drifted, Options{MetricTol: 0.01})
	if !r.OK {
		t.Fatalf("0.5%% drift failed a 1%% tolerance: %+v", r.Findings)
	}
	// Within tolerance, the inevitable rendered-table drift downgrades
	// to info rather than failing.
	for _, f := range r.Findings {
		if f.Severity != "info" {
			t.Fatalf("tolerated drift produced a failure: %+v", f)
		}
	}
	if r := DiffResults(old, drifted, Options{MetricTol: 0.001}); r.OK {
		t.Fatal("0.5% drift passed a 0.1% tolerance")
	}
}

func TestResultsGoldenTableDrift(t *testing.T) {
	old := []exp.Result{cell("fig9", 1, nil, map[string]float64{"completed": 5}, "row A\nrow B\n")}
	changed := []exp.Result{cell("fig9", 1, nil, map[string]float64{"completed": 5}, "row A\nrow B'\n")}
	r := DiffResults(old, changed, Options{})
	if r.OK {
		t.Fatal("golden-table drift passed exact mode")
	}
	f := r.Findings[0]
	if f.Metric != "report" || !strings.Contains(f.Detail, "line 2") {
		t.Fatalf("drift not located: %+v", f)
	}
}

func TestResultsMissingCellAndNaNMismatch(t *testing.T) {
	old := []exp.Result{
		cell("fct", 1, exp.Params{"rate": "24e6"}, map[string]float64{"completed": 1}, ""),
		cell("fct", 1, exp.Params{"rate": "48e6"}, map[string]float64{"nan-probe": math.NaN()}, ""),
	}
	missing := []exp.Result{old[1]}
	if r := DiffResults(old, missing, Options{}); r.OK {
		t.Fatal("missing cell passed")
	}
	nanGone := []exp.Result{
		old[0],
		cell("fct", 1, exp.Params{"rate": "48e6"}, map[string]float64{"nan-probe": 3.0}, ""),
	}
	if r := DiffResults(old, nanGone, Options{}); r.OK {
		t.Fatal("NaN -> value mismatch passed")
	}
}

func TestResultsNewError(t *testing.T) {
	old := []exp.Result{cell("fct", 1, nil, map[string]float64{"completed": 1}, "")}
	broke := []exp.Result{{Experiment: "fct", Seed: 1, Err: "boom"}}
	r := DiffResults(old, broke, Options{})
	if r.OK || !strings.Contains(r.Findings[0].Detail, "boom") {
		t.Fatalf("newly-erroring cell must fail: %+v", r)
	}
}

func TestResultsSummaryDrift(t *testing.T) {
	mk := func(p99 float64) []exp.Result {
		r := exp.Result{Experiment: "fct", Seed: 1,
			Summaries: map[string]stats.Summary{"slowdown": {N: 10, Mean: 1, P50: 1, P99: p99}}}
		return []exp.Result{r}
	}
	if r := DiffResults(mk(4.0), mk(4.2), Options{}); r.OK {
		t.Fatal("summary drift passed exact mode")
	}
	if r := DiffResults(mk(4.0), mk(4.2), Options{MetricTol: 0.1}); !r.OK {
		t.Fatalf("5%% summary drift failed a 10%% tolerance: %+v", r.Findings)
	}
}

// TestCellIDNoDelimiterCollision mirrors the runstore key guarantee: a
// param value containing the ID's own delimiters must not make two
// distinct cells compare as one.
func TestCellIDNoDelimiterCollision(t *testing.T) {
	smuggled := exp.Result{Experiment: "fct", Seed: 1, Params: exp.Params{"a": "1 b=2"}}
	plain := exp.Result{Experiment: "fct", Seed: 1, Params: exp.Params{"a": "1", "b": "2"}}
	if cellID(smuggled) == cellID(plain) {
		t.Fatalf("distinct cells collided on %q", cellID(plain))
	}
	// Matching still works across files for the quoted form.
	r := DiffResults([]exp.Result{smuggled}, []exp.Result{smuggled}, Options{})
	if !r.OK || r.Compared != 1 {
		t.Fatalf("quoted cell failed to match itself: %+v", r)
	}
}

func TestDetectKind(t *testing.T) {
	if k, _ := DetectKind([]byte("  {\"note\":1}")); k != KindBench {
		t.Fatal("object not detected as bench file")
	}
	if k, _ := DetectKind([]byte("\n[ ]")); k != KindResults {
		t.Fatal("array not detected as results file")
	}
	if _, err := DetectKind([]byte("xyz")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DetectKind([]byte("  ")); err == nil {
		t.Fatal("empty file accepted")
	}
}

// TestWriters smoke-checks both renderers are well-formed.
func TestWriters(t *testing.T) {
	base := benchFile(perf.Record{Name: "B", NsPerOp: 1e9, AllocsPerOp: 100})
	r := DiffBench(base, benchFile(perf.Record{Name: "B", NsPerOp: 1.5e9, AllocsPerOp: 100}), opt10)
	var text, js bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "RESULT: FAIL") {
		t.Fatalf("text verdict missing:\n%s", text.String())
	}
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"ok": false`) {
		t.Fatalf("JSON verdict missing:\n%s", js.String())
	}
}
