package report

import (
	"fmt"
	"io"
	"math"
)

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over the
// allocations xs: 1.0 when all allocations are equal, approaching 1/n
// as one allocation dominates. Edge cases are pinned by tests: an empty
// vector has no defined fairness (NaN); an all-zero vector is vacuously
// fair (1.0 — nobody got anything, equally); a single allocation is
// trivially fair (1.0).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// ClassShare is one scheduler class's slice of the service. Callers
// fill Name, Weight, and Bytes; ComputeFairness derives the rest.
type ClassShare struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Bytes  int64   `json:"bytes"`
	// Mbps is the class's served throughput over the measured interval.
	Mbps float64 `json:"mbps"`
	// Share is the class's fraction of all served bytes.
	Share float64 `json:"share"`
	// Utilization is Mbps over the path bottleneck rate.
	Utilization float64 `json:"utilization"`
}

// Fairness is the scheduler-fairness section of a report: how evenly a
// scheduler divided the link among its declared classes, and whether it
// wasted service opportunities while backlogged.
type Fairness struct {
	// Jain is Jain's index over weight-normalized per-class throughputs
	// (bytes/weight): 1.0 means service tracked the configured weights
	// exactly, lower means some class was shortchanged relative to its
	// weight. Unweighted (all weights 1) this reduces to plain
	// throughput fairness.
	Jain float64 `json:"jain"`
	// WorkConservation is served/attempts at the dequeue boundary — 1.0
	// iff the scheduler never returned empty while a class was
	// backlogged (vacuously 1.0 if it was never polled while backlogged).
	WorkConservation float64      `json:"work_conservation"`
	Classes          []ClassShare `json:"classes"`
}

// ComputeFairness derives the fairness section from per-class served
// byte counts (classes, with Name/Weight/Bytes filled), the scheduler's
// work-conservation counters, the path bottleneck rate in bits/s, and
// the measured interval in seconds. A zero rate or interval leaves the
// affected derived figures at zero rather than Inf.
func ComputeFairness(classes []ClassShare, served, attempts int64, rateBps, seconds float64) Fairness {
	f := Fairness{WorkConservation: 1, Classes: classes}
	if attempts > 0 {
		f.WorkConservation = float64(served) / float64(attempts)
	}
	var totalBytes int64
	for _, c := range classes {
		totalBytes += c.Bytes
	}
	norm := make([]float64, len(classes))
	for i := range f.Classes {
		c := &f.Classes[i]
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		norm[i] = float64(c.Bytes) / w
		if totalBytes > 0 {
			c.Share = float64(c.Bytes) / float64(totalBytes)
		}
		if seconds > 0 {
			c.Mbps = float64(c.Bytes) * 8 / seconds / 1e6
		}
		if rateBps > 0 {
			c.Utilization = c.Mbps * 1e6 / rateBps
		}
	}
	f.Jain = JainIndex(norm)
	return f
}

// WriteText renders the fairness section in the report's fixed-width
// style, one class per line, each line prefixed by indent.
func (f Fairness) WriteText(w io.Writer, indent string) {
	fmt.Fprintf(w, "%sjain=%.3f work-conservation=%.3f\n", indent, f.Jain, f.WorkConservation)
	for _, c := range f.Classes {
		fmt.Fprintf(w, "%s  class %-12s w=%-5g %8.2f Mb/s  share=%.3f util=%.3f\n",
			indent, c.Name, c.Weight, c.Mbps, c.Share, c.Utilization)
	}
}
