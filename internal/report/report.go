// Package report is the regression-diff engine behind cmd/bundler-report:
// it compares two sweep result files (or a run against a committed
// baseline) cell by cell with metric tolerances and golden-table drift
// detection, and two benchmark trajectory files record by record with
// percentage thresholds on ns/op and allocs/op. CI's bench-gate and
// sweep jobs turn its verdict into a hard build gate; the same engine
// renders both human text and machine JSON.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"bundler/internal/exp"
	"bundler/internal/perf"
)

// Kind says which diff ran.
type Kind string

const (
	// KindBench compares perf trajectory files (BENCH_*.json).
	KindBench Kind = "bench"
	// KindResults compares sweep/run result files ([]exp.Result JSON).
	KindResults Kind = "results"
)

// Options are the comparison thresholds.
type Options struct {
	// MetricTol is the relative tolerance for results-mode metric and
	// summary comparisons (0 = exact). With a nonzero tolerance,
	// report-text drift downgrades from failure to information: the
	// rendered tables print the very values the tolerance admits.
	MetricTol float64
	// NsPct fails a benchmark whose ns/op regressed by more than this
	// percentage (default 10 in the CLI).
	NsPct float64
	// AllocPct fails a benchmark whose allocs/op regressed by more than
	// this percentage (default 10 in the CLI).
	AllocPct float64
	// NsPktPct fails a benchmark whose ns/packet regressed by more than
	// this percentage (default 10 in the CLI). Per-packet cost is the
	// scale-normalized gate: ns/op moves whenever a benchmark's workload
	// is re-scaled, ns/packet only when the simulator itself gets slower.
	// Records without per-packet figures (the pre-pooling baseline) are
	// skipped.
	NsPktPct float64
}

// Finding is one comparison outcome worth reporting.
type Finding struct {
	// Severity is "fail" (gates the build) or "info".
	Severity string `json:"severity"`
	// Cell names the compared unit: a benchmark name, or
	// "experiment seed=N k=v ..." for a results cell.
	Cell string `json:"cell"`
	// Metric is the compared quantity ("ns/op", "fct-p99", "report").
	Metric string `json:"metric,omitempty"`
	// Old and New are the compared values (absent for text drift).
	Old *float64 `json:"old,omitempty"`
	New *float64 `json:"new,omitempty"`
	// DeltaPct is the percentage change new vs old when defined.
	DeltaPct *float64 `json:"delta_pct,omitempty"`
	// Detail is the human explanation.
	Detail string `json:"detail"`
}

// Report is a full diff outcome. OK is false iff any finding failed.
type Report struct {
	Kind     Kind      `json:"kind"`
	Old      string    `json:"old"`
	New      string    `json:"new"`
	OK       bool      `json:"ok"`
	Compared int       `json:"compared"`
	Failures int       `json:"failures"`
	Findings []Finding `json:"findings"`
}

func (r *Report) add(f Finding) {
	r.Findings = append(r.Findings, f)
	if f.Severity == "fail" {
		r.Failures++
	}
}

func ptr(v float64) *float64 { return &v }

func pct(old, new float64) *float64 {
	if old == 0 {
		return nil
	}
	return ptr((new - old) / math.Abs(old) * 100)
}

// DetectKind sniffs a file's diff kind: a perf trajectory is a JSON
// object, a results file is a JSON array.
func DetectKind(data []byte) (Kind, error) {
	for _, c := range data {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return KindBench, nil
		case '[':
			return KindResults, nil
		default:
			return "", fmt.Errorf("report: unrecognized file (want a BENCH_*.json object or a results array, got %q...)", string(c))
		}
	}
	return "", fmt.Errorf("report: empty file")
}

// DiffFiles loads old and new, sniffs their kind (which must match),
// and runs the corresponding diff.
func DiffFiles(oldPath, newPath string, opt Options) (*Report, error) {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	oldKind, err := DetectKind(oldData)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, oldPath)
	}
	newKind, err := DetectKind(newData)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, newPath)
	}
	if oldKind != newKind {
		return nil, fmt.Errorf("report: cannot diff a %s file against a %s file", oldKind, newKind)
	}
	var r *Report
	switch oldKind {
	case KindBench:
		var of, nf perf.File
		if err := json.Unmarshal(oldData, &of); err != nil {
			return nil, fmt.Errorf("report: parse %s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newData, &nf); err != nil {
			return nil, fmt.Errorf("report: parse %s: %w", newPath, err)
		}
		r = DiffBench(of, nf, opt)
	case KindResults:
		var or, nr []exp.Result
		if err := json.Unmarshal(oldData, &or); err != nil {
			return nil, fmt.Errorf("report: parse %s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newData, &nr); err != nil {
			return nil, fmt.Errorf("report: parse %s: %w", newPath, err)
		}
		r = DiffResults(or, nr, opt)
	}
	r.Old, r.New = oldPath, newPath
	return r, nil
}

// DiffBench compares two benchmark trajectories' Current records by
// name: ns/op and allocs/op regressions beyond their thresholds fail;
// improvements beyond the same thresholds, bytes/op movement, and
// added benchmarks are informational; a benchmark missing from new
// fails (lost coverage reads as a pass otherwise).
func DiffBench(old, new perf.File, opt Options) *Report {
	r := &Report{Kind: KindBench, Findings: []Finding{}}
	newByName := map[string]perf.Record{}
	for _, rec := range new.Current {
		newByName[rec.Name] = rec
	}
	oldNames := make([]string, 0, len(old.Current))
	oldByName := map[string]perf.Record{}
	for _, rec := range old.Current {
		oldNames = append(oldNames, rec.Name)
		oldByName[rec.Name] = rec
	}
	sort.Strings(oldNames)
	for _, name := range oldNames {
		o := oldByName[name]
		n, ok := newByName[name]
		if !ok {
			r.add(Finding{Severity: "fail", Cell: name,
				Detail: "benchmark missing from new trajectory (lost coverage)"})
			continue
		}
		r.Compared++
		r.diffStat(name, "ns/op", o.NsPerOp, n.NsPerOp, opt.NsPct)
		r.diffStat(name, "allocs/op", o.AllocsPerOp, n.AllocsPerOp, opt.AllocPct)
		if o.NsPerPacket != 0 {
			if n.NsPerPacket == 0 {
				r.add(Finding{Severity: "fail", Cell: name, Metric: "ns/pkt",
					Old: ptr(o.NsPerPacket), New: ptr(0),
					Detail: "per-packet accounting missing from new trajectory (lost coverage)"})
			} else {
				r.diffStat(name, "ns/pkt", o.NsPerPacket, n.NsPerPacket, opt.NsPktPct)
			}
		}
		// bytes/op is informational: the gated quantities are the
		// issue-specified ns/op and allocs/op.
		if d := pct(o.BytesPerOp, n.BytesPerOp); d != nil && math.Abs(*d) > opt.AllocPct {
			r.add(Finding{Severity: "info", Cell: name, Metric: "B/op",
				Old: ptr(o.BytesPerOp), New: ptr(n.BytesPerOp), DeltaPct: d,
				Detail: fmt.Sprintf("bytes/op changed %+.1f%% (not gated)", *d)})
		}
	}
	newNames := make([]string, 0, len(newByName))
	for name := range newByName {
		if _, ok := oldByName[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		r.add(Finding{Severity: "info", Cell: name, Detail: "new benchmark (no baseline yet)"})
	}
	r.userFlatnessGate(new.Current)
	r.OK = r.Failures == 0
	return r
}

// userGrowthPct is how much bytes-per-emulated-user may grow from the
// smallest to the largest user count of an axis before the gate fails.
// Linear memory in the user count means the figure stays flat (0 %
// growth); the tolerance absorbs measurement noise in bytes/op, not a
// change in complexity class — a fluid model that regressed to
// per-user state shows up as ~10× growth, three orders past it.
const userGrowthPct = 15.0

// userFlatnessGate enforces the memory-per-emulated-user contract on
// the new trajectory: benchmarks carrying Users > 0 are grouped into an
// axis by name prefix (everything before the first digit), and within
// each axis bytes-per-user at the largest user count must not exceed
// bytes-per-user at the smallest by more than userGrowthPct. The gate
// reads only the new file — it guards a scaling property of the current
// tree, not a delta against the baseline — so old trajectories without
// user figures don't exempt a regression.
func (r *Report) userFlatnessGate(recs []perf.Record) {
	groups := map[string][]perf.Record{}
	for _, rec := range recs {
		if rec.Users <= 0 || rec.BytesPerUser <= 0 {
			continue
		}
		p := userAxisPrefix(rec.Name)
		groups[p] = append(groups[p], rec)
	}
	prefixes := make([]string, 0, len(groups))
	for p := range groups {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		g := groups[p]
		if len(g) < 2 {
			r.add(Finding{Severity: "info", Cell: g[0].Name, Metric: "B/user",
				Detail: "user axis has a single point; memory flatness not checkable"})
			continue
		}
		sort.Slice(g, func(i, j int) bool { return g[i].Users < g[j].Users })
		lo, hi := g[0], g[len(g)-1]
		r.Compared++
		d := *pct(lo.BytesPerUser, hi.BytesPerUser)
		cell := fmt.Sprintf("%s (%.0f -> %.0f users)", p, lo.Users, hi.Users)
		if d > userGrowthPct {
			r.add(Finding{Severity: "fail", Cell: cell, Metric: "B/user",
				Old: ptr(lo.BytesPerUser), New: ptr(hi.BytesPerUser), DeltaPct: ptr(d),
				Detail: fmt.Sprintf("bytes per emulated user grew %.1f -> %.1f (%+.1f%%, threshold %.0f%%): memory is super-linear in the user count",
					lo.BytesPerUser, hi.BytesPerUser, d, userGrowthPct)})
		} else {
			r.add(Finding{Severity: "info", Cell: cell, Metric: "B/user",
				Old: ptr(lo.BytesPerUser), New: ptr(hi.BytesPerUser), DeltaPct: ptr(d),
				Detail: fmt.Sprintf("bytes per emulated user flat-or-falling (%.1f -> %.1f, %+.1f%%)",
					lo.BytesPerUser, hi.BytesPerUser, d)})
		}
	}
}

// userAxisPrefix groups user-axis benchmark names: everything before
// the first digit ("BenchmarkMeshBg010kUsers" -> "BenchmarkMeshBg").
func userAxisPrefix(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] >= '0' && name[i] <= '9' {
			return name[:i]
		}
	}
	return name
}

// diffStat gates one per-op statistic with a percentage threshold.
func (r *Report) diffStat(name, metric string, old, new, threshold float64) {
	if old == 0 {
		if new != 0 {
			r.add(Finding{Severity: "fail", Cell: name, Metric: metric,
				Old: ptr(old), New: ptr(new),
				Detail: fmt.Sprintf("%s regressed from zero to %.0f", metric, new)})
		}
		return
	}
	d := *pct(old, new)
	switch {
	case d > threshold:
		r.add(Finding{Severity: "fail", Cell: name, Metric: metric,
			Old: ptr(old), New: ptr(new), DeltaPct: ptr(d),
			Detail: fmt.Sprintf("%s regressed %.0f -> %.0f (%+.1f%%, threshold %.0f%%)",
				metric, old, new, d, threshold)})
	case d < -threshold:
		r.add(Finding{Severity: "info", Cell: name, Metric: metric,
			Old: ptr(old), New: ptr(new), DeltaPct: ptr(d),
			Detail: fmt.Sprintf("%s improved %.0f -> %.0f (%+.1f%%) — consider re-committing the baseline",
				metric, old, new, d)})
	}
}

// cellID names a results cell: experiment, seed, and sorted params.
// Values containing the serialization's own delimiters are quoted, so
// two distinct cells can never collide on one ID (the same guarantee
// runstore.Key.Hash makes for store keys).
func cellID(res exp.Result) string {
	quote := func(s string) string {
		if strings.ContainsAny(s, " =\"\n\t") {
			return strconv.Quote(s)
		}
		return s
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d", quote(res.Experiment), res.Seed)
	keys := make([]string, 0, len(res.Params))
	for k := range res.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", quote(k), quote(res.Params[k]))
	}
	return b.String()
}

// DiffResults compares two result sets cell by cell (matched on
// experiment + seed + params). Metric and summary drift beyond
// MetricTol fails, as do cells or metrics missing from new, and cells
// that now error. Report-text drift ("golden-table drift") fails in
// exact mode (MetricTol == 0) and is informational otherwise — with a
// tolerance, the table prints the very values the tolerance admits.
func DiffResults(old, new []exp.Result, opt Options) *Report {
	r := &Report{Kind: KindResults, Findings: []Finding{}}
	newByID := map[string]exp.Result{}
	newOrder := make([]string, 0, len(new))
	for _, res := range new {
		id := cellID(res)
		newByID[id] = res
		newOrder = append(newOrder, id)
	}
	seen := map[string]bool{}
	for _, o := range old {
		id := cellID(o)
		seen[id] = true
		n, ok := newByID[id]
		if !ok {
			r.add(Finding{Severity: "fail", Cell: id, Detail: "cell missing from new run (lost coverage)"})
			continue
		}
		r.Compared++
		r.diffCell(id, o, n, opt)
	}
	for _, id := range newOrder {
		if !seen[id] {
			r.add(Finding{Severity: "info", Cell: id, Detail: "new cell (no baseline yet)"})
		}
	}
	r.OK = r.Failures == 0
	return r
}

func (r *Report) diffCell(id string, o, n exp.Result, opt Options) {
	if o.Err == "" && n.Err != "" {
		r.add(Finding{Severity: "fail", Cell: id, Detail: "cell now fails: " + n.Err})
		return
	}
	if o.Err != "" {
		if n.Err != o.Err {
			r.add(Finding{Severity: "info", Cell: id,
				Detail: fmt.Sprintf("error changed: %q -> %q", o.Err, n.Err)})
		}
		return
	}
	// Metrics by name, order-insensitively: insertion order is part of
	// the emitted bytes but not of the semantics.
	nVals := map[string]float64{}
	for _, m := range n.Metrics {
		nVals[m.Name] = m.Value
	}
	for _, m := range o.Metrics {
		nv, ok := nVals[m.Name]
		if !ok {
			r.add(Finding{Severity: "fail", Cell: id, Metric: m.Name,
				Detail: "metric missing from new run"})
			continue
		}
		r.diffValue(id, m.Name, m.Value, nv, opt.MetricTol)
	}
	oNames := map[string]bool{}
	for _, m := range o.Metrics {
		oNames[m.Name] = true
	}
	for _, m := range n.Metrics {
		if !oNames[m.Name] {
			r.add(Finding{Severity: "info", Cell: id, Metric: m.Name, Detail: "new metric (no baseline yet)"})
		}
	}
	// Summaries: N exactly, quantile fields within tolerance.
	for name, os := range o.Summaries {
		ns, ok := n.Summaries[name]
		if !ok {
			r.add(Finding{Severity: "fail", Cell: id, Metric: name, Detail: "summary missing from new run"})
			continue
		}
		if os.N != ns.N {
			r.add(Finding{Severity: "fail", Cell: id, Metric: name + ".n",
				Old: ptr(float64(os.N)), New: ptr(float64(ns.N)),
				Detail: fmt.Sprintf("summary count drifted %d -> %d", os.N, ns.N)})
		}
		for _, q := range [...]struct {
			suffix   string
			old, new float64
		}{
			{"mean", os.Mean, ns.Mean}, {"p10", os.P10, ns.P10}, {"p25", os.P25, ns.P25},
			{"p50", os.P50, ns.P50}, {"p75", os.P75, ns.P75}, {"p90", os.P90, ns.P90},
			{"p99", os.P99, ns.P99}, {"min", os.Min, ns.Min}, {"max", os.Max, ns.Max},
		} {
			r.diffValue(id, name+"."+q.suffix, q.old, q.new, opt.MetricTol)
		}
	}
	if o.Report != n.Report {
		sev := "fail"
		if opt.MetricTol > 0 {
			sev = "info"
		}
		r.add(Finding{Severity: sev, Cell: id, Metric: "report",
			Detail: "golden-table drift: " + firstDiffLine(o.Report, n.Report)})
	}
}

// diffValue compares one scalar with a relative tolerance. NaN equals
// NaN (an empty sample is a stable outcome); NaN vs a value fails.
func (r *Report) diffValue(id, metric string, old, new, tol float64) {
	oNaN, nNaN := math.IsNaN(old), math.IsNaN(new)
	if oNaN && nNaN {
		return
	}
	if oNaN != nNaN {
		r.add(Finding{Severity: "fail", Cell: id, Metric: metric,
			Detail: fmt.Sprintf("value drifted %v -> %v (NaN mismatch)", old, new)})
		return
	}
	if old == new {
		return
	}
	denom := math.Abs(old)
	if denom == 0 {
		denom = 1
	}
	rel := math.Abs(new-old) / denom
	if rel > tol {
		r.add(Finding{Severity: "fail", Cell: id, Metric: metric,
			Old: ptr(old), New: ptr(new), DeltaPct: pct(old, new),
			Detail: fmt.Sprintf("value drifted %g -> %g (rel %.2e, tolerance %.2e)", old, new, rel, tol)})
	}
}

// firstDiffLine locates the first line where two reports diverge.
func firstDiffLine(old, new string) string {
	ol := strings.Split(old, "\n")
	nl := strings.Split(new, "\n")
	for i := 0; i < len(ol) || i < len(nl); i++ {
		var o, n string
		if i < len(ol) {
			o = ol[i]
		}
		if i < len(nl) {
			n = nl[i]
		}
		if o != n {
			return fmt.Sprintf("line %d: %q -> %q", i+1, o, n)
		}
	}
	return "reports differ"
}

// WriteText renders the human report.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "bundler-report: %s diff  old=%s  new=%s\n", r.Kind, r.Old, r.New); err != nil {
		return err
	}
	for _, f := range r.Findings {
		tag := "info"
		if f.Severity == "fail" {
			tag = "FAIL"
		}
		// Name the metric next to the cell — a cell carries many metrics,
		// and "value drifted" alone doesn't say which one moved.
		name := f.Cell
		if f.Metric != "" {
			name += " " + f.Metric
		}
		if _, err := fmt.Fprintf(w, "  %s  %-40s %s\n", tag, name, f.Detail); err != nil {
			return err
		}
	}
	verdict := "OK"
	if !r.OK {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "RESULT: %s (%d compared, %d failures, %d findings)\n",
		verdict, r.Compared, r.Failures, len(r.Findings))
	return err
}

// WriteJSON renders the machine report (stable field order, indented).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(r)
}
