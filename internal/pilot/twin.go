package pilot

import (
	"fmt"

	"bundler/internal/bundle"
	"bundler/internal/clock"
	"bundler/internal/exp"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/tcp"
	"bundler/internal/workload"
)

// RunTwin runs the pilot's exact topology and workload on the simulator:
// the same Sendbox/Receivebox pair, bottleneck and reverse links, flow
// list, and sender-side FCT measurement — only the UDP hop is replaced
// by a direct hand-off. Its result carries the same cell identity
// (experiment, seed, params) as RunSend's, so bundler-report diffs the
// two within a tolerance. This is the cross-validation closing the
// sim-to-deployment gap: if the pilot and the twin diverge beyond
// real-clock jitter, one of them is wrong.
func RunTwin(cfg Config) (exp.Result, error) {
	cfg.fill()
	eng := sim.NewEngine(cfg.Seed)
	muxA, muxB := tcp.NewMux(), tcp.NewMux()

	// B side: reverse link feeds A's mux directly (the UDP hop in the
	// pilot), receivebox and pre-registered receivers behind the tap.
	reverse := netem.NewLink(eng, "reverse", reverseRate, cfg.RTT/2, qdisc.NewFIFO(reverseBuf), muxA)
	rb := bundle.NewReceivebox(eng, reverse, rbCtl, sbCtl, cfg.bundleConfig().InitialEpochN)
	muxB.Register(rbCtl, rb)
	flows := Flows(cfg)
	for _, f := range flows {
		muxB.Register(f.Dst, tcp.NewReceiver(eng, reverse, f.Dst, f.Src, f.ID, f.Size, nil))
	}
	ingress := netem.NewTap(rb.Observe, muxB)
	inboundB := netem.ReceiverFunc(func(p *pkt.Packet) {
		if p.Dst.Host == ctlHost {
			muxB.Receive(p)
			return
		}
		ingress.Receive(p)
	})

	// A side: senders → sendbox → bottleneck → B.
	bottleneck := netem.NewLink(eng, "bottleneck", cfg.Rate, cfg.RTT/2, qdisc.NewFIFO(cfg.BufBytes), inboundB)
	sb := bundle.NewSendbox(eng, cfg.bundleConfig(), bottleneck, sbCtl, rbCtl)
	muxA.Register(sbCtl, sb)

	rec := workload.NewRecorder(cfg.Rate, cfg.RTT)
	remaining := len(flows)
	for i := range flows {
		f := flows[i]
		clock.At(eng, f.At, func() {
			var snd *tcp.Sender
			snd = tcp.NewSender(eng, sb, f.Src, f.Dst, f.ID, f.Size, tcp.NewEndhostCC("cubic"), func(now clock.Time) {
				muxA.Unregister(f.Src)
				rec.Record(f.Size, now-snd.StartedAt)
				remaining--
			})
			muxA.Register(f.Src, snd)
			snd.Start()
		})
	}

	horizon := clock.Time(cfg.Horizon)
	for eng.Now() < horizon && remaining > 0 {
		eng.RunUntil(eng.Now() + 100*clock.Millisecond)
	}
	if remaining > 0 {
		return exp.Result{}, fmt.Errorf("pilot: twin horizon %v expired with %d/%d flows incomplete",
			cfg.Horizon, remaining, len(flows))
	}
	return buildResult(cfg, rec), nil
}
