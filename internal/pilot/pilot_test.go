package pilot

import (
	"net"
	"strings"
	"testing"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/exp"
	"bundler/internal/pkt"
	"bundler/internal/report"
)

// TestCodecRoundTrip: every field the emulated stack reads survives the
// wire, including control payloads and SACK blocks.
func TestCodecRoundTrip(t *testing.T) {
	cases := []*pkt.Packet{
		{IPID: 7, Src: pkt.Addr{Host: 65536, Port: 5000}, Dst: pkt.Addr{Host: 65537, Port: 80},
			Proto: pkt.ProtoTCP, Size: 1500, Seq: 1 << 40, Ack: 3, Flags: pkt.FlagACK, FlowID: 42,
			Retransmit: true, NSACK: 2,
			SACK: [4]pkt.SACKBlock{{Start: 10, End: 20}, {Start: 40, End: 90}}},
		{Proto: pkt.ProtoCtl, Dst: sbCtl, Size: bundle.CtlPacketSize,
			Payload: &bundle.CtlAck{Hash: 0xdeadbeef, BytesRcvd: 1 << 33}},
		{Proto: pkt.ProtoCtl, Dst: rbCtl, Size: bundle.CtlPacketSize,
			Payload: &bundle.CtlEpochUpdate{N: 128}},
		{Proto: pkt.ProtoUDP, Tunneled: true, TunnelSeq: 99, Size: 60},
	}
	var buf [maxWire]byte
	for i, want := range cases {
		b, err := marshal(want, buf[:])
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		got, err := unmarshal(b[1:])
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if got.IPID != want.IPID || got.Src != want.Src || got.Dst != want.Dst ||
			got.Proto != want.Proto || got.Size != want.Size || got.Seq != want.Seq ||
			got.Ack != want.Ack || got.Flags != want.Flags || got.FlowID != want.FlowID ||
			got.Retransmit != want.Retransmit || got.Tunneled != want.Tunneled ||
			got.TunnelSeq != want.TunnelSeq || got.NSACK != want.NSACK || got.SACK != want.SACK {
			t.Fatalf("case %d: round trip mangled header:\n got %+v\nwant %+v", i, got, want)
		}
		switch w := want.Payload.(type) {
		case *bundle.CtlAck:
			g, ok := got.Payload.(*bundle.CtlAck)
			if !ok || *g != *w {
				t.Fatalf("case %d: payload %+v, want %+v", i, got.Payload, w)
			}
		case *bundle.CtlEpochUpdate:
			g, ok := got.Payload.(*bundle.CtlEpochUpdate)
			if !ok || *g != *w {
				t.Fatalf("case %d: payload %+v, want %+v", i, got.Payload, w)
			}
		default:
			if got.Payload != nil {
				t.Fatalf("case %d: unexpected payload %+v", i, got.Payload)
			}
		}
		got.Payload = nil // struct payloads are not pool-reusable state
		pkt.Put(got)
	}
}

// TestCodecRejectsGarbage: truncated or corrupt datagrams error instead
// of panicking or leaking half-decoded packets.
func TestCodecRejectsGarbage(t *testing.T) {
	p := &pkt.Packet{Proto: pkt.ProtoTCP, Size: 1500, NSACK: 1, SACK: [4]pkt.SACKBlock{{Start: 1, End: 2}}}
	var buf [maxWire]byte
	b, err := marshal(p, buf[:])
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 5, len(b) - 2} {
		if _, err := unmarshal(b[1:min(1+n, len(b))]); err == nil {
			t.Fatalf("unmarshal of %d-byte truncation succeeded", n)
		}
	}
}

// TestFlowsDeterministic: the workload is a pure function of the seed —
// the property that lets two processes and the twin agree without
// coordination.
func TestFlowsDeterministic(t *testing.T) {
	cfg := Config{Seed: 5}
	a, b := Flows(cfg), Flows(cfg)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Flows(Config{Seed: 6})
	same := true
	for i := range a {
		if a[i].At != c[i].At || a[i].Size != c[i].Size {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestPilotMatchesSim is the cross-validation gate: two wall-clock
// domains exchanging real UDP datagrams over loopback must reproduce
// the simulated twin's FCT distribution within Tolerance (see its
// declaration for the justification of the band).
func TestPilotMatchesSim(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time pilot run (a few seconds of wall clock)")
	}
	cfg := Config{Seed: 1, Horizon: 90 * time.Second}

	connA, connB := loopbackPair(t)
	recvErr := make(chan error, 1)
	go func() {
		recvErr <- RunRecv(cfg, connB, connA.LocalAddr().(*net.UDPAddr))
	}()
	pilotRes, err := RunSend(cfg, connA, connB.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatalf("RunSend: %v", err)
	}
	if err := <-recvErr; err != nil {
		t.Fatalf("RunRecv: %v", err)
	}

	twinRes, err := RunTwin(cfg)
	if err != nil {
		t.Fatalf("RunTwin: %v", err)
	}

	if got, want := metric(t, pilotRes, "completed"), float64(cfg.bothRequests()); got != want {
		t.Fatalf("pilot completed %v flows, want %v", got, want)
	}
	if got, want := metric(t, pilotRes, "bytes"), metric(t, twinRes, "bytes"); got != want {
		t.Fatalf("pilot moved %v bytes, twin %v — workloads diverged", got, want)
	}

	// The same comparison CI runs via bundler-report.
	r := report.DiffResults([]exp.Result{twinRes}, []exp.Result{pilotRes},
		report.Options{MetricTol: Tolerance})
	if !r.OK {
		var buf strings.Builder
		r.WriteText(&buf)
		t.Fatalf("pilot vs sim beyond %.0f%% tolerance:\npilot: %+v\ntwin:  %+v\n%s",
			Tolerance*100, pilotRes.Metrics, twinRes.Metrics, buf.String())
	}
	t.Logf("pilot fct-p50=%.1fms slowdown-p50=%.2f | twin fct-p50=%.1fms slowdown-p50=%.2f",
		metric(t, pilotRes, "fct-p50"), metric(t, pilotRes, "slowdown-p50"),
		metric(t, twinRes, "fct-p50"), metric(t, twinRes, "slowdown-p50"))
}

func (c Config) bothRequests() int {
	c.fill()
	return c.Requests
}

func loopbackPair(t *testing.T) (a, b *net.UDPConn) {
	t.Helper()
	for i, conn := range []**net.UDPConn{&a, &b} {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		*conn = c
	}
	return a, b
}

func metric(t *testing.T, res exp.Result, name string) float64 {
	t.Helper()
	for _, m := range res.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("result has no metric %q (have %+v)", name, res.Metrics)
	return 0
}
