// Package pilot is the real-clock datapath: a Sendbox/Receivebox pair
// running on clock.Wall in two processes, exchanging real UDP datagrams
// over loopback. It is the deployment half of the sim-to-deployment
// cross-validation — the same bundle/tcp/netem/qdisc code the simulator
// drives, paced by a wall-clock token bucket, emitting the same report
// schema so bundler-report can diff emulation against simulation.
//
// The topology is the paper's dumbbell split at the two wide-area hops:
//
//	process A (send)                      process B (recv)
//	tcp.Senders → Sendbox → bottleneck ──UDP──▶ tap(Receivebox) → Mux
//	tcp.Mux ◀──────────────────────UDP── reverse ← tcp.Receivers
//
// The bottleneck link (rate, RTT/2, FIFO) and reverse link are emulated
// in-process on each side's wall clock — mahimahi-style — so the
// loopback socket only adds its real O(10µs) latency on top of the
// emulated propagation.
package pilot

import (
	"encoding/binary"
	"fmt"

	"bundler/internal/bundle"
	"bundler/internal/pkt"
)

// Datagram kinds. Every UDP datagram starts with one kind byte.
const (
	kindPacket = 0x01 // a serialized pkt.Packet
	kindDone   = 0x02 // sender-side workload finished; receiver may exit
)

// Payload kinds for the Packet.Payload field (Bundler control messages).
const (
	plNone        = 0
	plCtlAck      = 1
	plEpochUpdate = 2
)

// maxWire bounds a marshalled packet: kind + fixed header (62 bytes) +
// 4 SACK blocks (64) + largest payload (16).
const maxWire = 1 + 62 + 64 + 16

// marshal serializes p into buf (which must have maxWire capacity) and
// returns the used prefix. Only header/metadata fields travel — the
// emulated Size is carried as a field, not as padding bytes, because
// pacing happens on the emulated links, not the loopback socket.
func marshal(p *pkt.Packet, buf []byte) ([]byte, error) {
	b := buf[:0]
	b = append(b, kindPacket)
	b = binary.BigEndian.AppendUint16(b, p.IPID)
	b = binary.BigEndian.AppendUint32(b, p.Src.Host)
	b = binary.BigEndian.AppendUint16(b, p.Src.Port)
	b = binary.BigEndian.AppendUint32(b, p.Dst.Host)
	b = binary.BigEndian.AppendUint16(b, p.Dst.Port)
	b = append(b, byte(p.Proto))
	b = binary.BigEndian.AppendUint32(b, uint32(p.Size))
	b = binary.BigEndian.AppendUint64(b, uint64(p.Seq))
	b = binary.BigEndian.AppendUint64(b, uint64(p.Ack))
	b = append(b, byte(p.Flags))
	b = binary.BigEndian.AppendUint64(b, p.FlowID)
	b = append(b, bool2b(p.Retransmit), bool2b(p.Tunneled))
	b = binary.BigEndian.AppendUint64(b, p.TunnelSeq)
	b = append(b, p.NSACK)
	for i := 0; i < int(p.NSACK) && i < len(p.SACK); i++ {
		b = binary.BigEndian.AppendUint64(b, uint64(p.SACK[i].Start))
		b = binary.BigEndian.AppendUint64(b, uint64(p.SACK[i].End))
	}
	switch pl := p.Payload.(type) {
	case nil:
		b = append(b, plNone)
	case *bundle.CtlAck:
		b = append(b, plCtlAck)
		b = binary.BigEndian.AppendUint64(b, pl.Hash)
		b = binary.BigEndian.AppendUint64(b, uint64(pl.BytesRcvd))
	case *bundle.CtlEpochUpdate:
		b = append(b, plEpochUpdate)
		b = binary.BigEndian.AppendUint64(b, pl.N)
	default:
		return nil, fmt.Errorf("pilot: unmarshalable payload %T", p.Payload)
	}
	return b, nil
}

// unmarshal decodes a kindPacket datagram body (kind byte already
// stripped) into a fresh pooled packet.
func unmarshal(data []byte) (*pkt.Packet, error) {
	r := reader{b: data}
	p := pkt.Get()
	p.IPID = uint16(r.u16())
	p.Src.Host = r.u32()
	p.Src.Port = uint16(r.u16())
	p.Dst.Host = r.u32()
	p.Dst.Port = uint16(r.u16())
	p.Proto = pkt.Proto(r.u8())
	p.Size = int(r.u32())
	p.Seq = int64(r.u64())
	p.Ack = int64(r.u64())
	p.Flags = pkt.Flags(r.u8())
	p.FlowID = r.u64()
	p.Retransmit = r.u8() != 0
	p.Tunneled = r.u8() != 0
	p.TunnelSeq = r.u64()
	p.NSACK = r.u8()
	if int(p.NSACK) > len(p.SACK) {
		r.bad = true
	} else {
		for i := 0; i < int(p.NSACK); i++ {
			p.SACK[i].Start = int64(r.u64())
			p.SACK[i].End = int64(r.u64())
		}
	}
	switch r.u8() {
	case plNone:
	case plCtlAck:
		p.Payload = &bundle.CtlAck{Hash: r.u64(), BytesRcvd: int64(r.u64())}
	case plEpochUpdate:
		p.Payload = &bundle.CtlEpochUpdate{N: r.u64()}
	default:
		r.bad = true
	}
	if r.bad {
		pkt.Put(p)
		return nil, fmt.Errorf("pilot: malformed packet datagram (%d bytes)", len(data))
	}
	return p, nil
}

// reader is a tiny cursor that records truncation instead of panicking
// (a garbage datagram on the socket must not kill the pilot).
type reader struct {
	b   []byte
	bad bool
}

func (r *reader) take(n int) []byte {
	if r.bad || len(r.b) < n {
		r.bad = true
		return make([]byte, n)
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) u8() byte    { return r.take(1)[0] }
func (r *reader) u16() uint16 { return binary.BigEndian.Uint16(r.take(2)) }
func (r *reader) u32() uint32 { return binary.BigEndian.Uint32(r.take(4)) }
func (r *reader) u64() uint64 { return binary.BigEndian.Uint64(r.take(8)) }

func bool2b(v bool) byte {
	if v {
		return 1
	}
	return 0
}
