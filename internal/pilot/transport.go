package pilot

import (
	"net"

	"bundler/internal/clock"
	"bundler/internal/netem"
	"bundler/internal/pkt"
)

// transport bridges a wall clock's packet graph to a UDP socket. It is
// a netem.Receiver, so it terminates an emulated link chain: packets
// handed to Receive (on the clock goroutine) are marshalled, written to
// the peer, and released — the wire crossing is the pool-ownership
// boundary between the two processes' packet domains. A reader
// goroutine does the reverse: datagrams from the peer are decoded into
// fresh pooled packets and injected into the clock domain via
// CallAfter(0, ...), which serializes them with every other callback.
//
// Construction is two-phase: fill w/conn/peer, wire the rest of the
// graph, set deliver (and optionally onDone), then `go readLoop()` last
// — the goroutine start publishes all prior writes to the reader.
type transport struct {
	w    *clock.Wall
	conn *net.UDPConn
	peer *net.UDPAddr
	// deliver consumes inbound packets on the clock goroutine.
	deliver netem.Receiver
	// onDone runs (once, on the clock goroutine) when the peer signals
	// end of workload. nil ignores the signal.
	onDone   func()
	doneSeen bool
	wbuf     [maxWire]byte

	// sendErr records the first socket write failure (clock goroutine
	// only); the run loop surfaces it after shutdown.
	sendErr error
}

// Receive implements netem.Receiver on the clock goroutine.
func (t *transport) Receive(p *pkt.Packet) {
	b, err := marshal(p, t.wbuf[:])
	pkt.Put(p)
	if err == nil {
		_, err = t.conn.WriteToUDP(b, t.peer)
	}
	if err != nil && t.sendErr == nil {
		t.sendErr = err
	}
}

// SendDone signals end-of-workload to the peer. Datagrams can be lost,
// so callers repeat it; the receiver deduplicates.
func (t *transport) SendDone() {
	t.conn.WriteToUDP([]byte{kindDone}, t.peer)
}

// readLoop pumps the socket until it is closed. It runs off the clock
// goroutine and touches the clock only through the thread-safe
// scheduling API.
func (t *transport) readLoop() {
	buf := make([]byte, 2048)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed: shutdown
		}
		if n == 0 {
			continue
		}
		switch buf[0] {
		case kindDone:
			t.w.CallAfter(0, transportDone, t, nil)
		case kindPacket:
			p, err := unmarshal(buf[1:n])
			if err != nil {
				continue // drop garbage, exactly like a real NIC
			}
			t.w.CallAfter(0, transportDeliver, t, p)
		}
	}
}

func transportDeliver(a0, a1 any) {
	t, p := a0.(*transport), a1.(*pkt.Packet)
	t.deliver.Receive(p)
}

func transportDone(a0, _ any) {
	t := a0.(*transport)
	if t.doneSeen || t.onDone == nil {
		return
	}
	t.doneSeen = true
	t.onDone()
}
