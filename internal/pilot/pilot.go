package pilot

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/clock"
	"bundler/internal/exp"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/tcp"
	"bundler/internal/workload"
)

// Control-channel addresses, fixed on both sides (the pilot runs exactly
// one bundle). ctlHost routes Bundler control messages around the data
// tap, mirroring the scenario fabric's demux wiring.
const ctlHost = 1 << 30

var (
	sbCtl = pkt.Addr{Host: ctlHost, Port: 1}
	rbCtl = pkt.Addr{Host: ctlHost, Port: 2}
)

// hostBase is where per-flow endpoint addresses start.
const hostBase = 1 << 16

// reverseRate / reverseBuf describe the uncongested reverse path, same
// values as the simulator's scenario fabric.
const (
	reverseRate = 10e9
	reverseBuf  = 1 << 26
)

// warmup delays the first arrival past process start-up so both clock
// domains are settled; the simulated twin applies the identical offset,
// so it cancels out of every FCT.
const warmup = 200 * clock.Millisecond

// Tolerance is the declared pilot-vs-sim relative tolerance band, used
// by TestPilotMatchesSim and printed by `bundler-pilot -print-tol` so
// the CI bundler-report gate cannot drift from the tested value.
//
// Justification: the twin and the pilot share every deterministic input
// — workload, topology parameters, control algorithms — so divergence
// comes only from the real clock: timer-dispatch jitter (≲1 ms per
// event), loopback socket latency (tens of µs per hop), and goroutine
// scheduling delay under CI load. Against a 40 ms RTT and p50 FCTs of
// ~45-90 ms these shift individual FCTs by a few percent, but they also
// perturb the Sendbox control loop's sampling phase, which can move the
// p50/p90 of a 60-flow run by tens of percent run-to-run. 0.45 relative
// tolerance holds comfortably across seeds and loaded machines while
// still catching real integration regressions, which show up as ~2×
// drift (lost epoch accounting → rate collapse) or as incomplete flows
// — the latter caught exactly by the completed/bytes metrics, which
// must match to the byte.
const Tolerance = 0.45

// Config parameterizes one pilot run. The zero value plus fill() is the
// CI smoke configuration: a small dumbbell that completes in a few
// seconds of wall time.
type Config struct {
	Seed       int64
	Rate       float64    // bottleneck bits/s
	RTT        clock.Time // end-to-end propagation RTT
	BufBytes   int        // bottleneck buffer; 0 → 2 BDP
	Requests   int        // number of web-CDF transfers
	OfferedBps float64    // open-loop offered load
	Algorithm  string     // bundle inner-loop controller
	// Horizon bounds the real (or virtual) run time; expiring is an
	// error (flows stuck).
	Horizon time.Duration
}

func (c *Config) fill() {
	if c.Rate == 0 {
		c.Rate = 24e6
	}
	if c.RTT == 0 {
		c.RTT = 40 * clock.Millisecond
	}
	if c.BufBytes == 0 {
		c.BufBytes = 2 * int(c.Rate/8*c.RTT.Seconds())
	}
	if c.Requests == 0 {
		c.Requests = 60
	}
	if c.OfferedBps == 0 {
		c.OfferedBps = 16e6
	}
	if c.Algorithm == "" {
		c.Algorithm = "copa"
	}
	if c.Horizon == 0 {
		c.Horizon = 60 * time.Second
	}
}

func (c Config) bundleConfig() bundle.Config {
	return bundle.Config{Algorithm: c.Algorithm, DisableTelemetry: true}
}

// params is the cell identity bundler-report matches pilot and twin
// results on — it must be identical across RunSend and RunTwin.
func (c Config) params() exp.Params {
	return exp.Params{
		"algorithm":    c.Algorithm,
		"rate-mbps":    strconv.FormatFloat(c.Rate/1e6, 'g', -1, 64),
		"rtt-ms":       strconv.FormatFloat(c.RTT.Millis(), 'g', -1, 64),
		"offered-mbps": strconv.FormatFloat(c.OfferedBps/1e6, 'g', -1, 64),
		"requests":     strconv.Itoa(c.Requests),
	}
}

// FlowSpec is one precomputed transfer. The whole workload is derived
// from Config.Seed alone, so the sending process, the receiving process,
// and the simulated twin agree on every arrival time, size, address, and
// flow ID without exchanging a byte.
type FlowSpec struct {
	At       clock.Time
	Size     int64
	Src, Dst pkt.Addr
	ID       uint64
}

// Flows expands cfg into its deterministic workload: Poisson arrivals at
// the offered load over the paper's web-size CDF, like
// workload.Arrivals, but from a dedicated RNG (never the clock's — a
// wall clock's draw interleaving is not reproducible) and with gaps
// accumulated from nominal arrival times so the list is closed-form.
func Flows(cfg Config) []FlowSpec {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dist := workload.PaperWebCDF()
	lambda := cfg.OfferedBps / 8 / dist.Mean()
	specs := make([]FlowSpec, cfg.Requests)
	host := uint32(hostBase)
	at := warmup + clock.FromSeconds(rng.ExpFloat64()/lambda)
	for i := range specs {
		specs[i] = FlowSpec{
			At:   at,
			Size: dist.Sample(rng),
			Src:  pkt.Addr{Host: host, Port: 5000},
			Dst:  pkt.Addr{Host: host + 1, Port: 80},
			ID:   uint64(i + 1),
		}
		host += 2
		at += clock.FromSeconds(rng.ExpFloat64() / lambda)
	}
	return specs
}

// buildResult renders a recorder into the report schema shared by pilot
// and twin. Only distribution-robust metrics are emitted — no Summaries
// block: bundler-report compares summaries on exact counts and extreme
// quantiles (min/max/p99), which real-clock jitter would flake on, while
// completed/bytes are exact-matchable and the p50/p90 quantiles are
// stable within the declared tolerance.
func buildResult(cfg Config, rec *workload.Recorder) exp.Result {
	res := exp.Result{Experiment: "pilot-fct", Seed: cfg.Seed, Params: cfg.params()}
	res.AddMetric("completed", float64(rec.Completed), "requests")
	res.AddMetric("bytes", float64(rec.Bytes), "B")
	res.AddMetric("fct-p50", rec.FCTms.Quantile(0.5), "ms")
	res.AddMetric("slowdown-p50", rec.Slowdowns.Quantile(0.5), "")
	res.AddMetric("slowdown-p90", rec.Slowdowns.Quantile(0.9), "")
	return res
}

// RunSend is process A: endhost senders behind a Sendbox whose paced
// output drains through the emulated bottleneck link into the UDP
// socket. It blocks until every flow completes (returning the pilot's
// result) or the horizon expires (an error). conn is the local bound
// socket; peer is process B's address.
func RunSend(cfg Config, conn *net.UDPConn, peer *net.UDPAddr) (exp.Result, error) {
	cfg.fill()
	w := clock.NewWall(cfg.Seed)
	defer w.Close()

	muxA := tcp.NewMux()
	tr := &transport{w: w, conn: conn, peer: peer}
	bottleneck := netem.NewLink(w, "bottleneck", cfg.Rate, cfg.RTT/2, qdisc.NewFIFO(cfg.BufBytes), tr)
	sb := bundle.NewSendbox(w, cfg.bundleConfig(), bottleneck, sbCtl, rbCtl)
	muxA.Register(sbCtl, sb)

	flows := Flows(cfg)
	rec := workload.NewRecorder(cfg.Rate, cfg.RTT)
	remaining := len(flows)
	done := make(chan struct{})
	for i := range flows {
		f := flows[i]
		clock.At(w, f.At, func() {
			var snd *tcp.Sender
			snd = tcp.NewSender(w, sb, f.Src, f.Dst, f.ID, f.Size, tcp.NewEndhostCC("cubic"), func(now clock.Time) {
				muxA.Unregister(f.Src)
				rec.Record(f.Size, now-snd.StartedAt)
				remaining--
				if remaining == 0 {
					// Workload drained: tell B it can exit. The DONE
					// datagram is repeated in case the socket drops it.
					tr.SendDone()
					clock.After(w, 50*clock.Millisecond, tr.SendDone)
					clock.After(w, 100*clock.Millisecond, func() {
						tr.SendDone()
						close(done)
					})
				}
			})
			muxA.Register(f.Src, snd)
			snd.Start()
		})
	}
	// Everything is wired; open the inbound floodgate last so the reader
	// goroutine observes fully-initialized state.
	tr.deliver = muxA
	go tr.readLoop()

	// The horizon fallback runs on the pilot's own wall clock rather
	// than time.After: one time source for the whole datapath (and the
	// clockcheck analyzer holds this package to it).
	expired := make(chan struct{})
	clock.After(w, clock.Time(cfg.Horizon), func() { close(expired) })
	select {
	case <-done:
	case <-expired:
		w.Close()
		return exp.Result{}, fmt.Errorf("pilot: send horizon %v expired with %d/%d flows incomplete",
			cfg.Horizon, remaining, len(flows))
	}
	// Close stops the clock goroutine; after it returns, rec and sendErr
	// are safe to read from here.
	w.Close()
	if tr.sendErr != nil {
		return exp.Result{}, fmt.Errorf("pilot: socket send: %w", tr.sendErr)
	}
	return buildResult(cfg, rec), nil
}

// RunRecv is process B: the Receivebox tapping the inbound datagrams,
// endhost receivers ACKing through the emulated reverse link back into
// the socket. Receivers for the whole (deterministic) workload are
// registered up front — they are passive until data arrives. Blocks
// until A signals DONE or the horizon expires.
func RunRecv(cfg Config, conn *net.UDPConn, peer *net.UDPAddr) error {
	cfg.fill()
	// Seed differs from A's on purpose: nothing on the pilot path may
	// depend on the two processes drawing identical RNG streams.
	w := clock.NewWall(cfg.Seed + 1)
	defer w.Close()

	tr := &transport{w: w, conn: conn, peer: peer}
	muxB := tcp.NewMux()
	reverse := netem.NewLink(w, "reverse", reverseRate, cfg.RTT/2, qdisc.NewFIFO(reverseBuf), tr)
	rb := bundle.NewReceivebox(w, reverse, rbCtl, sbCtl, cfg.bundleConfig().InitialEpochN)
	muxB.Register(rbCtl, rb)
	for _, f := range Flows(cfg) {
		muxB.Register(f.Dst, tcp.NewReceiver(w, reverse, f.Dst, f.Src, f.ID, f.Size, nil))
	}
	ingress := netem.NewTap(rb.Observe, muxB)

	done := make(chan struct{})
	tr.deliver = netem.ReceiverFunc(func(p *pkt.Packet) {
		// Control messages go straight to the box — the data tap must not
		// observe them (same routing as the scenario fabric's demux).
		if p.Dst.Host == ctlHost {
			muxB.Receive(p)
			return
		}
		ingress.Receive(p)
	})
	tr.onDone = func() { close(done) }
	go tr.readLoop()

	expired := make(chan struct{})
	clock.After(w, clock.Time(cfg.Horizon), func() { close(expired) })
	select {
	case <-done:
	case <-expired:
		return fmt.Errorf("pilot: recv horizon %v expired without DONE", cfg.Horizon)
	}
	w.Close()
	if tr.sendErr != nil {
		return fmt.Errorf("pilot: socket send: %w", tr.sendErr)
	}
	return nil
}
