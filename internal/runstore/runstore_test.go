package runstore

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bundler/internal/exp"
	"bundler/internal/stats"
)

// TestKeyHashGolden pins the key serialization scheme: the same cell
// must hash identically across processes, machines, and builds, because
// resumed sweeps and CI jobs compute keys in different processes than
// the ones that stored them. If this test fails, the scheme changed —
// which silently invalidates every existing store — so the change must
// be deliberate (and keyScheme should be bumped with it).
func TestKeyHashGolden(t *testing.T) {
	k := Key{
		Experiment: "fct",
		Seed:       7,
		Params:     map[string]string{"rate": "24e6", "rtt": "20ms", "requests": "300"},
		Source:     "code:testfp",
	}
	const want = "a98e5c233db10c78e4606d08ed110753a3be0907f758a20247fd6264d42b5b0d"
	if got := k.Hash(); got != want {
		t.Fatalf("key hash changed: got %s want %s\n"+
			"(a deliberate scheme change must bump keyScheme and update this golden)", got, want)
	}
}

// TestKeyHashFieldOrderings verifies the hash is a pure function of key
// *content*: params built in any insertion order hash identically, and
// every semantic field participates.
func TestKeyHashFieldOrderings(t *testing.T) {
	base := Key{Experiment: "fct", Seed: 1,
		Params: map[string]string{"a": "1", "b": "2", "c": "3"}, Source: "code:x"}

	reordered := Key{Experiment: "fct", Seed: 1, Params: map[string]string{}, Source: "code:x"}
	for _, k := range []string{"c", "a", "b"} { // reverse-ish insertion order
		reordered.Params[k] = base.Params[k]
	}
	if base.Hash() != reordered.Hash() {
		t.Fatal("param insertion order changed the key hash")
	}

	mutations := map[string]Key{
		"experiment": {Experiment: "fig9", Seed: 1, Params: base.Params, Source: "code:x"},
		"seed":       {Experiment: "fct", Seed: 2, Params: base.Params, Source: "code:x"},
		"source":     {Experiment: "fct", Seed: 1, Params: base.Params, Source: "code:y"},
		"param val":  {Experiment: "fct", Seed: 1, Params: map[string]string{"a": "9", "b": "2", "c": "3"}, Source: "code:x"},
		"param key":  {Experiment: "fct", Seed: 1, Params: map[string]string{"a": "1", "b": "2", "d": "3"}, Source: "code:x"},
		"param gone": {Experiment: "fct", Seed: 1, Params: map[string]string{"a": "1", "b": "2"}, Source: "code:x"},
	}
	for what, k := range mutations {
		if k.Hash() == base.Hash() {
			t.Errorf("changing %s did not change the key hash", what)
		}
	}
}

// TestKeyHashNoDelimiterCollision guards the canonical serialization
// against value-smuggling: params whose names/values contain the
// serializer's own delimiters must not collide.
func TestKeyHashNoDelimiterCollision(t *testing.T) {
	a := Key{Experiment: "e", Params: map[string]string{"a": "1\nparam.\"b\"=\"2\""}, Source: "s"}
	b := Key{Experiment: "e", Params: map[string]string{"a": "1", "b": "2"}, Source: "s"}
	if a.Hash() == b.Hash() {
		t.Fatal("delimiter characters in a param value collided with a separate param")
	}
}

// fakeExp is a deterministic experiment with every Result feature the
// store must round-trip: NaN metrics, NaN summaries, artifacts.
type fakeExp struct {
	name string
	runs *int // counts Run invocations when non-nil
	fail bool
}

func (f fakeExp) Name() string { return f.name }
func (f fakeExp) Desc() string { return "store round-trip fixture" }
func (f fakeExp) Params() []exp.Param {
	return []exp.Param{{Name: "x", Default: "1"}, {Name: "y", Default: "2"}}
}
func (f fakeExp) Metadata() map[string]string { return map[string]string{"paper": "test"} }
func (f fakeExp) Run(seed int64, p exp.Params) (exp.Result, error) {
	if f.runs != nil {
		*f.runs++
	}
	if f.fail {
		return exp.Result{}, fmt.Errorf("deliberate failure")
	}
	var empty stats.Sample
	res := exp.Result{
		Experiment: f.name, Seed: seed, Params: p,
		Report:    fmt.Sprintf("seed=%d x=%s\ntable row\n", seed, p["x"]),
		Summaries: map[string]stats.Summary{"empty": empty.Summarize()},
		Artifacts: []exp.Artifact{{Name: "trace.csv", Data: "t,v\n0,1\n"}},
	}
	res.AddMetric("value", float64(seed)*1.5, "")
	res.AddMetric("nan-probe", math.NaN(), "ms")
	return res, nil
}

func grid(t *testing.T) exp.Grid {
	t.Helper()
	g, err := exp.ParseGrid("x=1,2;y=3,4;seed=1,2")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func emit(t *testing.T, results []exp.Result) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := exp.WriteJSON(&b, results); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestResumeByteIdentical is the acceptance criterion in miniature: a
// sweep resumed from a partially-populated store must emit bytes
// identical to an uninterrupted run, and a cache-warm re-run must
// execute zero cells.
func TestResumeByteIdentical(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := grid(t)

	var freshRuns int
	fresh, st, err := exp.SweepOpts(fakeExp{name: "rt", runs: &freshRuns}, g, exp.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != g.Size() || freshRuns != g.Size() {
		t.Fatalf("fresh sweep: executed %d of %d", st.Executed, g.Size())
	}
	want := emit(t, fresh)

	// "Interrupt" by pre-populating only half the cells.
	half := g.Points()[:g.Size()/2]
	for _, pt := range half {
		res, _ := fakeExp{name: "rt"}.Run(pt.Seed, pt.Params.Clone())
		s.Save(fakeExp{name: "rt"}, pt, res, time.Millisecond)
	}

	var resumedRuns int
	resumed, st2, err := exp.SweepOpts(fakeExp{name: "rt", runs: &resumedRuns}, g,
		exp.Options{Parallel: 4, Cache: s, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != len(half) || st2.Executed != g.Size()-len(half) {
		t.Fatalf("resume stats: %+v, want %d cached %d executed", st2, len(half), g.Size()-len(half))
	}
	if resumedRuns != g.Size()-len(half) {
		t.Fatalf("resume executed %d cells, want %d", resumedRuns, g.Size()-len(half))
	}
	if got := emit(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted run:\nfresh:\n%s\nresumed:\n%s", want, got)
	}

	// Cache-warm re-run: zero simulation cells.
	var warmRuns int
	warm, st3, err := exp.SweepOpts(fakeExp{name: "rt", runs: &warmRuns}, g,
		exp.Options{Parallel: 4, Cache: s, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Executed != 0 || st3.Cached != g.Size() || warmRuns != 0 {
		t.Fatalf("warm re-run simulated cells: %+v (%d Run calls)", st3, warmRuns)
	}
	if got := emit(t, warm); !bytes.Equal(got, want) {
		t.Fatal("cache-warm output differs from uninterrupted run")
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRoundTripArtifacts verifies artifact data — excluded from
// Result JSON — survives the manifest round trip.
func TestStoreRoundTripArtifacts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := fakeExp{name: "art"}
	pt := exp.Point{Seed: 3, Params: exp.Params{"x": "9"}}
	res, _ := e.Run(pt.Seed, pt.Params.Clone())
	s.Save(e, pt, res, time.Millisecond)
	got, ok := s.Load(e, pt)
	if !ok {
		t.Fatal("stored cell not found")
	}
	if len(got.Artifacts) != 1 || got.Artifacts[0].Data != "t,v\n0,1\n" {
		t.Fatalf("artifact data lost in round trip: %+v", got.Artifacts)
	}
	m, ok := s.Get(KeyFor(e, pt))
	if !ok {
		t.Fatal("manifest missing")
	}
	if m.Meta["paper"] != "test" || !strings.Contains(m.Meta["desc"], "fixture") {
		t.Fatalf("manifest metadata not recorded: %+v", m.Meta)
	}
	if m.DurationMS <= 0 {
		t.Fatalf("manifest duration not recorded: %v", m.DurationMS)
	}
}

// TestCorruptManifestIsMiss: a truncated or tampered cell must read as
// a cache miss (recompute), never as bad data.
func TestCorruptManifestIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := fakeExp{name: "corrupt"}
	pt := exp.Point{Seed: 1, Params: exp.Params{"x": "1"}}
	res, _ := e.Run(1, pt.Params.Clone())
	s.Save(e, pt, res, time.Millisecond)

	hash := KeyFor(e, pt).Hash()
	path := filepath.Join(dir, hash[:2], hash+".json")
	if err := os.WriteFile(path, []byte(`{"hash":"not-the-hash"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(e, pt); ok {
		t.Fatal("corrupt manifest served as a cache hit")
	}
}

// TestFailuresNotCached: error cells must not poison the store.
func TestFailuresNotCached(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := grid(t)
	_, st, err := exp.SweepOpts(fakeExp{name: "boom", fail: true}, g,
		exp.Options{Parallel: 2, Cache: s, Resume: true})
	if err == nil {
		t.Fatal("expected sweep error")
	}
	if st.Cached != 0 {
		t.Fatalf("failing sweep reported cached cells: %+v", st)
	}
	if n, _ := s.Len(); n != 0 {
		t.Fatalf("store holds %d cells after an all-failure sweep", n)
	}
}

// TestPrune evicts by manifest age.
func TestPrune(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := fakeExp{name: "prune"}
	old := exp.Point{Seed: 1, Params: exp.Params{"x": "1"}}
	res, _ := e.Run(1, old.Params.Clone())
	if err := s.Put(KeyFor(e, old), &Manifest{
		Created: time.Now().UTC().Add(-48 * time.Hour), Result: res,
	}); err != nil {
		t.Fatal(err)
	}
	fresh := exp.Point{Seed: 2, Params: exp.Params{"x": "2"}}
	res2, _ := e.Run(2, fresh.Params.Clone())
	s.Save(e, fresh, res2, time.Millisecond)

	removed, err := s.Prune(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("pruned %d cells, want 1", removed)
	}
	if _, ok := s.Load(e, old); ok {
		t.Fatal("stale cell survived pruning")
	}
	if _, ok := s.Load(e, fresh); !ok {
		t.Fatal("fresh cell evicted")
	}
}

// TestPruneEvictsOrphanedTempFiles: a kill between CreateTemp and
// Rename leaves a ".<hash>.tmp*" file; Prune must evict it by age even
// though no manifest reader ever touches it.
func TestPruneEvictsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(sub, ".abcdef.tmp12345")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(orphan, stale, stale); err != nil {
		t.Fatal(err)
	}
	// An unreadable-but-stale manifest must go too (mtime fallback).
	garbled := filepath.Join(sub, "abcdef.json")
	if err := os.WriteFile(garbled, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(garbled, stale, stale); err != nil {
		t.Fatal(err)
	}
	removed, err := s.Prune(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("pruned %d files, want 2 (orphan tmp + garbled manifest)", removed)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived pruning")
	}
	if _, err := os.Stat(garbled); !os.IsNotExist(err) {
		t.Fatal("garbled manifest survived pruning")
	}
}

// TestPruneCutoffInjectedClock pins the store's injected time source
// and checks the age-cutoff arithmetic exactly, without sleeping or
// touching the process clock: a cell strictly older than maxAge is
// evicted, a cell exactly at the cutoff survives.
func TestPruneCutoffInjectedClock(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	e := fakeExp{name: "prunecutoff"}

	older := exp.Point{Seed: 1, Params: exp.Params{"x": "old"}}
	res, _ := e.Run(1, older.Params.Clone())
	s.now = func() time.Time { return base }
	s.Save(e, older, res, time.Millisecond)

	edge := exp.Point{Seed: 2, Params: exp.Params{"x": "edge"}}
	res2, _ := e.Run(2, edge.Params.Clone())
	s.now = func() time.Time { return base.Add(time.Hour) }
	s.Save(e, edge, res2, time.Millisecond)

	// Save must stamp Created from the injected clock, not the wall.
	if m, ok := s.Get(KeyFor(e, edge)); !ok || !m.Created.Equal(base.Add(time.Hour)) {
		t.Fatalf("Created stamp not from injected clock: %+v", m)
	}

	// At base+25h with maxAge 24h the cutoff is base+1h: the first cell
	// (age 25h) goes, the second (exactly at the cutoff) stays.
	s.now = func() time.Time { return base.Add(25 * time.Hour) }
	removed, err := s.Prune(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("pruned %d cells, want 1", removed)
	}
	if _, ok := s.Load(e, older); ok {
		t.Fatal("cell older than maxAge survived")
	}
	if _, ok := s.Load(e, edge); !ok {
		t.Fatal("cell exactly at the cutoff was evicted")
	}
}

// TestFingerprintStable: within one process the fingerprint is constant
// and well-formed — it participates in every code-keyed run key.
func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a == "" || a != b {
		t.Fatalf("fingerprint unstable: %q vs %q", a, b)
	}
}

// TestFingerprintIsContentHash: under `go test` the executable is the
// test binary, so the non-override path must produce a plain 16-hex
// content digest — never a pid- or wall-time-derived value (which would
// disown the warm cache on every run).
func TestFingerprintIsContentHash(t *testing.T) {
	if os.Getenv("BUNDLER_FINGERPRINT") != "" {
		t.Skip("fingerprint overridden in the environment")
	}
	fp := Fingerprint()
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q is not a 16-hex content digest", fp)
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			t.Fatalf("fingerprint %q contains non-hex %q", fp, c)
		}
	}
}

// TestHashFile pins the digest the fingerprint chain is built on:
// content-determined, content-sensitive, and absent for unreadable
// paths.
func TestHashFile(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	if err := os.WriteFile(a, []byte("same bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("same bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	ha, ok := hashFile(a)
	if !ok || len(ha) != 16 {
		t.Fatalf("hashFile(a) = %q, %v", ha, ok)
	}
	hb, _ := hashFile(b)
	if ha != hb {
		t.Fatalf("identical content hashed differently: %q vs %q", ha, hb)
	}
	if err := os.WriteFile(b, []byte("other bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if hb2, _ := hashFile(b); hb2 == ha {
		t.Fatal("different content produced the same digest")
	}
	if _, ok := hashFile(filepath.Join(dir, "missing")); ok {
		t.Fatal("hashFile of a missing file reported success")
	}
}
