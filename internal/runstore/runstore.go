// Package runstore is the content-addressed, on-disk store of
// experiment results the sweep engine checkpoints into and resumes
// from. Every completed grid cell is written as a manifest — inputs,
// seed, execution time, metadata, and the full exp.Result — under a key
// that is a stable hash of (experiment name, point params, seed, source
// identity), where source identity is either a declarative config's
// canonical content hash (exp.SourceHasher, so a config edit
// invalidates exactly the cells it changes) or the running binary's
// fingerprint (so a rebuild invalidates code-defined experiments).
//
// The store is safe for concurrent writers (atomic rename per cell) and
// for interruption at any instant: a killed 1000-cell sweep keeps every
// completed cell, and the next `-resume` run loads them instead of
// re-simulating. Loaded cells are byte-identical to fresh ones once
// emitted — Metric and stats.Summary restore NaN from the null
// encoding, and artifact data is carried in the manifest even though
// exp.Result excludes it from plain JSON.
//
// Layout: <root>/<hh>/<hash>.json, one manifest per cell, where hh is
// the first two hex digits of the key hash. The default root is
// $BUNDLER_RUNSTORE, falling back to <user cache dir>/bundler/runstore.
// Eviction is age-based via Prune (the CLIs expose -store-prune); the
// store is only ever a cache, so `rm -rf` of the root is always safe.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"bundler/internal/exp"
)

// keyScheme versions the key serialization. Bumping it invalidates
// every stored cell — the escape hatch if the hashed inputs ever gain
// or change meaning.
const keyScheme = "bundler-runstore-key/v1"

// Key identifies one sweep cell: everything that determines its Result.
// Hash() is a pure function of the exported fields with a canonical
// serialization (sorted params, quoted values), so the same cell hashes
// identically across processes, field orderings, and map iteration
// orders.
type Key struct {
	// Experiment is the registry name the cell runs.
	Experiment string `json:"experiment"`
	// Seed is the cell's simulation seed.
	Seed int64 `json:"seed"`
	// Params are the point's explicitly-set parameters (defaults an
	// experiment fills in itself are covered by Source).
	Params map[string]string `json:"params,omitempty"`
	// Source is the experiment's content identity: "topo:<hex>" for a
	// declarative config (exp.SourceHasher), else "code:<fingerprint>"
	// for a compiled-in experiment.
	Source string `json:"source"`
}

// KeyFor derives the store key for one sweep point of e.
func KeyFor(e exp.Experiment, pt exp.Point) Key {
	source := ""
	if sh, ok := e.(exp.SourceHasher); ok {
		source = sh.SourceHash()
	}
	if source == "" {
		source = "code:" + Fingerprint()
	}
	return Key{Experiment: e.Name(), Seed: pt.Seed, Params: pt.Params, Source: source}
}

// Hash returns the key's content address: a SHA-256 hex digest of the
// canonical serialization. Pinned by TestKeyHashGolden — changing the
// serialization is a deliberate store-invalidating event.
func (k Key) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", keyScheme)
	fmt.Fprintf(h, "experiment=%q\n", k.Experiment)
	fmt.Fprintf(h, "seed=%d\n", k.Seed)
	fmt.Fprintf(h, "source=%q\n", k.Source)
	names := make([]string, 0, len(k.Params))
	for name := range k.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "param.%q=%q\n", name, k.Params[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Artifact carries an experiment artifact with its data — exp.Artifact
// excludes Data from JSON, but a cached cell must restore it.
type Artifact struct {
	Name string `json:"name"`
	Data string `json:"data"`
}

// Manifest is the per-cell record: the key (inputs), provenance, and
// the full result.
type Manifest struct {
	Key        Key               `json:"key"`
	Hash       string            `json:"hash"`
	Created    time.Time         `json:"created"`
	DurationMS float64           `json:"duration_ms"`
	Meta       map[string]string `json:"meta,omitempty"`
	Result     exp.Result        `json:"result"`
	Artifacts  []Artifact        `json:"artifacts,omitempty"`
}

// Store implements exp.Cache for the sweep engine.
var _ exp.Cache = (*Store)(nil)

// Store is a content-addressed directory of manifests.
type Store struct {
	root string

	// now is the store's injected time source: Created stamps in Save,
	// the age cutoff in Prune. Open wires time.Now; tests pin it to
	// make Prune's cutoff arithmetic checkable without sleeping.
	now func() time.Time

	mu      sync.Mutex
	saveErr error // first persist failure, surfaced via Err
}

// DefaultDir returns the store root the CLIs use when -store is given
// without a path: $BUNDLER_RUNSTORE, else <user cache dir>/bundler/
// runstore, else .bundler-runstore in the working directory.
func DefaultDir() string {
	if dir := os.Getenv("BUNDLER_RUNSTORE"); dir != "" {
		return dir
	}
	if cache, err := os.UserCacheDir(); err == nil {
		return filepath.Join(cache, "bundler", "runstore")
	}
	return ".bundler-runstore"
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	return &Store{root: dir, now: time.Now}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// Err reports the first persist failure since Open (nil if none): Save
// never fails a sweep, so the CLIs check Err afterwards to warn that
// checkpoints are incomplete.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveErr
}

func (s *Store) path(hash string) string {
	return filepath.Join(s.root, hash[:2], hash+".json")
}

// Get loads the manifest stored under key, reporting whether it exists.
// A corrupt or mismatched manifest reads as a miss — the store is a
// cache, and recomputing beats failing.
func (s *Store) Get(key Key) (*Manifest, bool) {
	hash := key.Hash()
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		return nil, false
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil || m.Hash != hash {
		return nil, false
	}
	return &m, true
}

// Put writes the manifest for key atomically (temp file + rename), so a
// concurrent reader never sees a partial cell and an interrupt never
// corrupts the store.
func (s *Store) Put(key Key, m *Manifest) error {
	m.Key = key
	m.Hash = key.Hash()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: encode %s: %w", m.Hash, err)
	}
	dir := filepath.Dir(s.path(m.Hash))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+m.Hash+".tmp*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: write %s: %w", m.Hash, errFirst(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.path(m.Hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

func errFirst(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Load implements exp.Cache: a hit returns the cached cell's Result
// with artifact data restored.
func (s *Store) Load(e exp.Experiment, pt exp.Point) (exp.Result, bool) {
	m, ok := s.Get(KeyFor(e, pt))
	if !ok {
		return exp.Result{}, false
	}
	res := m.Result
	if len(m.Artifacts) > 0 {
		res.Artifacts = make([]exp.Artifact, len(m.Artifacts))
		for i, a := range m.Artifacts {
			res.Artifacts[i] = exp.Artifact{Name: a.Name, Data: a.Data}
		}
	}
	return res, true
}

// Save implements exp.Cache: the completed cell is checkpointed with
// its key, execution time, and the experiment's metadata. Persist
// failures never fail the sweep; the first one is latched for Err.
func (s *Store) Save(e exp.Experiment, pt exp.Point, res exp.Result, dur time.Duration) {
	meta := map[string]string{"desc": e.Desc()}
	if md, ok := e.(exp.Metadater); ok {
		for k, v := range md.Metadata() {
			meta[k] = v
		}
	}
	m := &Manifest{
		Created:    s.now().UTC(),
		DurationMS: float64(dur.Nanoseconds()) / 1e6,
		Meta:       meta,
		Result:     res,
	}
	for _, a := range res.Artifacts {
		m.Artifacts = append(m.Artifacts, Artifact{Name: a.Name, Data: a.Data})
	}
	if err := s.Put(KeyFor(e, pt), m); err != nil {
		s.mu.Lock()
		if s.saveErr == nil {
			s.saveErr = err
		}
		s.mu.Unlock()
	}
}

// Prune removes manifests older than maxAge (by Created stamp, falling
// back to file mtime for unreadable or corrupt ones) plus any orphaned
// temp files an interrupted Put left behind, returning how many files
// were evicted. The CLIs expose it as -store-prune; the store is a pure
// cache, so pruning can never lose information that a re-run cannot
// recompute.
func (s *Store) Prune(maxAge time.Duration) (int, error) {
	cutoff := s.now().Add(-maxAge)
	removed := 0
	mtimeBefore := func(d os.DirEntry) bool {
		info, err := d.Info()
		return err == nil && info.ModTime().Before(cutoff)
	}
	err := filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		// Orphaned ".<hash>.tmp*" files (a kill between CreateTemp and
		// Rename) would otherwise accumulate forever: no extension, no
		// reader, evicted purely by age.
		isTmp := strings.Contains(d.Name(), ".tmp")
		if filepath.Ext(path) != ".json" && !isTmp {
			return nil
		}
		stale := isTmp && mtimeBefore(d)
		if !isTmp {
			if data, rerr := os.ReadFile(path); rerr == nil {
				var m Manifest
				if json.Unmarshal(data, &m) == nil && !m.Created.IsZero() {
					stale = m.Created.Before(cutoff)
				} else {
					stale = mtimeBefore(d)
				}
			} else {
				stale = mtimeBefore(d)
			}
		}
		if stale {
			if rerr := os.Remove(path); rerr == nil {
				removed++
			}
		}
		return nil
	})
	return removed, err
}

// Len counts the stored cells (test and tooling helper).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		n++
		return nil
	})
	return n, err
}

// --- code fingerprint ---

var (
	fpOnce sync.Once
	fpVal  string
)

// Fingerprint identifies the running binary's code: a SHA-256 digest of
// the executable file, truncated to 16 hex digits. Experiments without
// a SourceHash are keyed by it, so any rebuild conservatively
// invalidates their cached cells (the simulation's behavior lives in
// the code). $BUNDLER_FINGERPRINT overrides it — for dev loops that
// want a cache to survive recompiles, and for tests pinning keys.
//
// Every fallback is a content identity, never a wall-time one: a
// fingerprint that depended on when the process started would make a
// warm cache miss on every invocation (each run would disown the cells
// the previous one wrote). When os.Executable cannot be resolved the
// binary is re-tried via os.Args[0], and when no file can be hashed at
// all the identity degrades to a digest of the build metadata compiled
// into the binary (module version, dependency sums, VCS revision) —
// coarser than file content, but stable across runs of the same build
// and different across rebuilds with changed inputs.
func Fingerprint() string {
	fpOnce.Do(func() {
		if v := os.Getenv("BUNDLER_FINGERPRINT"); v != "" {
			fpVal = v
			return
		}
		if exe, err := os.Executable(); err == nil {
			if h, ok := hashFile(exe); ok {
				fpVal = h
				return
			}
		}
		if h, ok := hashFile(os.Args[0]); ok {
			fpVal = h
			return
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			sum := sha256.Sum256([]byte(bi.String()))
			fpVal = "buildinfo-" + hex.EncodeToString(sum[:])[:16]
			return
		}
		// No executable file, no build info: nothing content-like to
		// hash. A constant at least keeps the cache warm within one
		// build environment.
		fpVal = "unhashed"
	})
	return fpVal
}

// hashFile digests one file's content to the fingerprint form.
func hashFile(path string) (string, bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", false
	}
	return hex.EncodeToString(h.Sum(nil))[:16], true
}
