// Package netem is a deterministic packet-level network emulator: the
// repository's substitute for the paper's mahimahi testbed. It provides
// rate-limited links with configurable propagation delay and queueing
// discipline, pure-delay pipes, destination demultiplexers, passive taps
// (the hook the Bundler boxes use to observe traffic), and a hash-based
// multipath load balancer for the §5.2 / §7.6 experiments.
//
// Components implement Receiver and are wired explicitly into a forwarding
// graph; all behaviour unfolds on a shared clock.Clock — the simulator's
// virtual clock in experiments, a clock.Wall in the pilot datapath.
// Link rates are bits/second, delays are clock.Time, queue budgets are
// whatever the attached qdisc counts (bytes or packets).
package netem

import (
	"fmt"

	"bundler/internal/clock"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
)

// Receiver consumes packets. Links, boxes, endpoints, and taps all
// implement it.
type Receiver interface {
	Receive(p *pkt.Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *pkt.Packet)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(p *pkt.Packet) { f(p) }

// BoundaryPort is a Receiver that spans two event engines: the endpoint
// of a link whose far side lives in a different shard of a sharded
// simulation. A Link whose dst implements BoundaryPort skips its own
// propagation scheduling and instead hands the packet over with the
// precomputed arrival time (now + link delay); the port is responsible
// for delivering it at exactly that virtual time on the remote engine.
// The plain Receive method must remain usable too (it is the path taken
// when the element upstream of the port is not a Link — e.g. a Jitter),
// in which case the port adds its own configured latency.
type BoundaryPort interface {
	Receiver
	// ReceiveAt takes ownership of p for delivery on the remote shard at
	// virtual time arrive, which must be at or beyond the shard window's
	// lookahead bound.
	ReceiveAt(p *pkt.Packet, arrive clock.Time)
}

// Sink discards packets, counting them.
type Sink struct{ Count int }

// Receive implements Receiver.
func (s *Sink) Receive(p *pkt.Packet) {
	s.Count++
	pkt.Put(p)
}

// Link is a store-and-forward link: packets are queued in a qdisc, drained
// at the link rate (serialization), then delivered after the propagation
// delay. The rate is adjustable at runtime, which is exactly how the
// Bundler sendbox enforces its pacing rate (a token-bucket filter whose
// rate the control plane rewrites).
type Link struct {
	eng   clock.Clock
	name  string
	rate  float64 // bits per second
	delay clock.Time
	q     qdisc.Qdisc
	dst   Receiver

	// boundary caches dst's BoundaryPort implementation (nil for ordinary
	// receivers), asserted once at construction so the per-packet fast
	// path is a nil check, not an interface assertion.
	boundary BoundaryPort

	busy bool
	// txCarry accumulates the sub-nanosecond fraction of each packet's
	// serialization time. Truncating it per packet would run the link
	// faster than configured — at 3.7 Mbit/s the bias is ~0.4 ns/packet,
	// which over millions of packets delivers measurably more than the
	// configured rate and skews every throughput-accuracy claim.
	txCarry float64

	// Fluid coupling (see internal/fluid): fluidBps is the share of the
	// link's capacity currently consumed by fluid-modeled background
	// aggregates — packet serialization runs at rate−fluidBps — and
	// fluidBacklog is the aggregates' standing virtual queue in bytes,
	// which QueueDelay folds into the occupancy foreground control loops
	// observe. Both zero (the default) leaves every code path and every
	// float operation identical to a fluid-free link, which is what keeps
	// golden outputs byte-identical.
	fluidBps     float64
	fluidBacklog float64

	// Stats.
	delivered     int
	bytesSent     int64
	rejected      int
	onDequeue     func(p *pkt.Packet, qdelay clock.Time)
	onTransmitted func(p *pkt.Packet)
	onDelivery    func(p *pkt.Packet)
}

// MinRate floors SetRate so a paced link can never stall entirely.
const MinRate = 1e3 // 1 kbit/s

// NewLink builds a link. rate is in bits/second; delay is one-way
// propagation; q is the queueing discipline holding backlogged packets.
func NewLink(eng clock.Clock, name string, rate float64, delay clock.Time, q qdisc.Qdisc, dst Receiver) *Link {
	if rate < MinRate {
		panic(fmt.Sprintf("netem: link %s rate %.0f below minimum", name, rate))
	}
	if dst == nil {
		panic("netem: link needs a destination")
	}
	l := &Link{eng: eng, name: name, rate: rate, delay: delay, q: q, dst: dst}
	if bp, ok := dst.(BoundaryPort); ok {
		l.boundary = bp
	}
	return l
}

// Receive implements Receiver: enqueue and start transmitting if idle.
// A packet the qdisc refuses is dropped here (the link owns it once
// Receive is called).
func (l *Link) Receive(p *pkt.Packet) {
	p.EnqueuedAt = l.eng.Now()
	if !l.q.Enqueue(p) {
		l.rejected++
		pkt.Put(p)
		return
	}
	if !l.busy {
		l.transmitNext()
	}
}

// transmitNext dequeues and begins serializing one packet. The
// serialization and propagation legs are scheduled through the engine's
// pooled no-handle path with package-level callbacks, so the steady
// state forwards packets without allocating.
func (l *Link) transmitNext() {
	p := l.q.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	// Queue accounting invariant: a qdisc that miscounts goes negative
	// here first (it drains one packet at a time).
	if l.q.Bytes() < 0 || l.q.Len() < 0 {
		panic(fmt.Sprintf("netem: link %s qdisc accounting negative: %d pkts, %d bytes",
			l.name, l.q.Len(), l.q.Bytes()))
	}
	l.busy = true
	if l.onDequeue != nil {
		l.onDequeue(p, l.eng.Now()-p.EnqueuedAt)
	}
	ideal := float64(p.Size*8)/l.effRate()*float64(clock.Second) + l.txCarry
	tx := clock.Time(ideal)
	if tx < 1 {
		// Sub-nanosecond serialization rounds up to the clock tick; the
		// carry resets so the (conservative) excess is not paid back.
		tx = 1
		l.txCarry = 0
	} else {
		l.txCarry = ideal - float64(tx)
	}
	l.eng.CallAfter(tx, linkTransmitted, l, p)
}

// linkTransmitted runs when a packet finishes serializing.
func linkTransmitted(a0, a1 any) {
	l, p := a0.(*Link), a1.(*pkt.Packet)
	l.delivered++
	l.bytesSent += int64(p.Size)
	if l.onTransmitted != nil {
		l.onTransmitted(p)
	}
	if l.boundary != nil {
		// Shard-boundary hand-off: propagation happens on the remote
		// engine, so compute the arrival time here instead of scheduling
		// the delay locally. OnDelivery hooks do not fire on this path —
		// delivery is the remote shard's event, not this link's.
		arrive := l.eng.Now() + l.delay
		l.transmitNext()
		l.boundary.ReceiveAt(p, arrive)
		return
	}
	dst, delay := l.dst, l.delay
	if delay == 0 {
		if l.onDelivery != nil {
			l.onDelivery(p)
		}
		// Continue draining before delivering so the link never
		// re-enters itself via synchronous feedback loops.
		l.transmitNext()
		dst.Receive(p)
		return
	}
	l.eng.CallAfter(delay, linkDeliver, l, p)
	l.transmitNext()
}

// linkDeliver runs when a packet finishes propagating.
func linkDeliver(a0, a1 any) {
	l, p := a0.(*Link), a1.(*pkt.Packet)
	if l.onDelivery != nil {
		l.onDelivery(p)
	}
	l.dst.Receive(p)
}

// SetRate changes the drain rate, clamped to MinRate. The packet currently
// being serialized finishes at the old rate, matching a token bucket whose
// refill rate changed mid-packet.
func (l *Link) SetRate(bps float64) {
	if bps < MinRate {
		bps = MinRate
	}
	l.rate = bps
}

// Rate returns the configured drain rate in bits/second.
func (l *Link) Rate() float64 { return l.rate }

// effRate is the serialization rate foreground packets see: the
// configured rate minus the fluid aggregates' share, floored at MinRate.
// With no fluid load it returns l.rate itself — not a computed copy —
// so the fluid-free float math is bit-identical to the pre-fluid link.
func (l *Link) effRate() float64 {
	if l.fluidBps == 0 {
		return l.rate
	}
	r := l.rate - l.fluidBps
	if r < MinRate {
		r = MinRate
	}
	return r
}

// SetFluidLoad installs the background fluid share: bps of the link's
// capacity consumed by fluid aggregates (clamped to ≥ 0) and their
// standing virtual backlog in bytes. internal/fluid calls this once per
// ODE step; passing (0, 0) fully withdraws the fluid influence.
func (l *Link) SetFluidLoad(bps, backlogBytes float64) {
	if bps < 0 {
		bps = 0
	}
	if backlogBytes < 0 {
		backlogBytes = 0
	}
	l.fluidBps = bps
	l.fluidBacklog = backlogBytes
}

// FluidBps reports the capacity share currently consumed by fluid
// background load.
func (l *Link) FluidBps() float64 { return l.fluidBps }

// FluidBacklogBytes reports the fluid aggregates' standing virtual
// backlog.
func (l *Link) FluidBacklogBytes() float64 { return l.fluidBacklog }

// Delay returns the propagation delay.
func (l *Link) Delay() clock.Time { return l.delay }

// Queue exposes the link's qdisc (the sendbox reads its occupancy, and
// tests inspect drops).
func (l *Link) Queue() qdisc.Qdisc { return l.q }

// QueueDelay estimates the queueing delay a packet arriving now would
// experience: backlog divided by drain rate, rounded to the nearest tick
// (truncation would systematically under-report the backlog). Fluid
// background backlog queues at the full link rate alongside the packet
// backlog, so foreground control loops observe the occupancy the
// emulated users create. The fluid-free expression is untouched —
// byte-identical golden output depends on it.
func (l *Link) QueueDelay() clock.Time {
	if l.fluidBacklog != 0 {
		return clock.Time((float64(l.q.Bytes())+l.fluidBacklog)*8/l.rate*float64(clock.Second) + 0.5)
	}
	return clock.Time(float64(l.q.Bytes()*8)/l.rate*float64(clock.Second) + 0.5)
}

// Delivered reports packets fully serialized.
func (l *Link) Delivered() int { return l.delivered }

// BytesSent reports bytes fully serialized.
func (l *Link) BytesSent() int64 { return l.bytesSent }

// Rejected reports packets the qdisc refused at enqueue.
func (l *Link) Rejected() int { return l.rejected }

// OnDequeue registers a hook called as each packet leaves the queue, with
// its queueing delay. Used by experiments to trace where queues build.
func (l *Link) OnDequeue(fn func(p *pkt.Packet, qdelay clock.Time)) { l.onDequeue = fn }

// OnTransmitted registers a hook called the instant each packet finishes
// serializing (before propagation). The sendbox timestamps epoch
// boundaries here: a timestamp taken at dequeue would fold the packet's
// own serialization time — enormous at low pacing rates — into the
// measured RTT and read as phantom queueing.
func (l *Link) OnTransmitted(fn func(p *pkt.Packet)) { l.onTransmitted = fn }

// OnDelivery registers a hook called as each packet finishes the link
// (after propagation). Experiments use it to measure ground-truth receive
// rate at the bottleneck.
func (l *Link) OnDelivery(fn func(p *pkt.Packet)) { l.onDelivery = fn }

// RateStep is one point of a piecewise-constant rate schedule: at virtual
// time At (relative to when the schedule starts), the link's drain rate
// becomes Bps.
type RateStep struct {
	At  clock.Time
	Bps float64
}

// ScheduleRate drives a link's drain rate through a piecewise-constant
// trace — the emulated cellular / time-varying bottleneck. Steps must be
// sorted by At. With period > 0 the trace repeats every period (each
// step's At must then be < period); with period 0 it plays once. Rates
// below MinRate are clamped by SetRate, like any other rate change.
func ScheduleRate(eng clock.Clock, l *Link, steps []RateStep, period clock.Time) {
	if len(steps) == 0 {
		return
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].At <= steps[i-1].At {
			panic("netem: rate trace steps must be sorted by time")
		}
	}
	if period > 0 && steps[len(steps)-1].At >= period {
		panic("netem: rate trace step beyond the repeat period")
	}
	var cycle func(base clock.Time)
	cycle = func(base clock.Time) {
		for _, s := range steps {
			bps := s.Bps
			clock.At(eng, base+s.At, func() { l.SetRate(bps) })
		}
		if period > 0 {
			clock.At(eng, base+period, func() { cycle(base + period) })
		}
	}
	cycle(eng.Now())
}

// Pipe delivers packets after a fixed delay with no queueing or rate
// limit: an uncongested path segment.
type Pipe struct {
	eng   clock.Clock
	delay clock.Time
	dst   Receiver
}

// NewPipe builds a pure-delay element.
func NewPipe(eng clock.Clock, delay clock.Time, dst Receiver) *Pipe {
	return &Pipe{eng: eng, delay: delay, dst: dst}
}

// Receive implements Receiver.
func (pp *Pipe) Receive(p *pkt.Packet) {
	pp.eng.CallAfter(pp.delay, pipeDeliver, pp, p)
}

func pipeDeliver(a0, a1 any) {
	pp, p := a0.(*Pipe), a1.(*pkt.Packet)
	pp.dst.Receive(p)
}

// Demux routes packets to receivers by destination host.
type Demux struct {
	routes map[uint32]Receiver
	// Default receives packets with no route (nil drops them silently).
	Default Receiver
	dropped int
}

// NewDemux returns an empty destination-host demultiplexer.
func NewDemux() *Demux { return &Demux{routes: make(map[uint32]Receiver)} }

// Route installs dst as the receiver for packets addressed to host.
func (d *Demux) Route(host uint32, dst Receiver) { d.routes[host] = dst }

// Receive implements Receiver.
func (d *Demux) Receive(p *pkt.Packet) {
	if r, ok := d.routes[p.Dst.Host]; ok {
		r.Receive(p)
		return
	}
	if d.Default != nil {
		d.Default.Receive(p)
		return
	}
	d.dropped++
	pkt.Put(p)
}

// Dropped reports packets with no route.
func (d *Demux) Dropped() int { return d.dropped }

// Tap invokes a callback on every packet, then forwards it unmodified.
// The receivebox observes traffic exactly this way (libpcap in the
// prototype).
type Tap struct {
	fn   func(p *pkt.Packet)
	next Receiver
}

// NewTap builds a passive observation point.
func NewTap(fn func(p *pkt.Packet), next Receiver) *Tap {
	return &Tap{fn: fn, next: next}
}

// Receive implements Receiver.
func (t *Tap) Receive(p *pkt.Packet) {
	t.fn(p)
	t.next.Receive(p)
}

// Lossy drops each packet independently with the given probability —
// failure injection for resilience tests (e.g. Bundler's control channel
// losing congestion ACKs or epoch-size updates).
type Lossy struct {
	eng  clock.Clock
	prob float64
	dst  Receiver
	// Dropped counts discarded packets.
	Dropped int
	// Filter restricts dropping to matching packets (nil = all).
	Filter func(*pkt.Packet) bool
}

// NewLossy builds a Bernoulli-loss element using the engine's
// deterministic randomness.
func NewLossy(eng clock.Clock, prob float64, dst Receiver) *Lossy {
	if prob < 0 || prob > 1 {
		panic("netem: loss probability out of range")
	}
	return &Lossy{eng: eng, prob: prob, dst: dst}
}

// Receive implements Receiver.
func (l *Lossy) Receive(p *pkt.Packet) {
	if (l.Filter == nil || l.Filter(p)) && l.eng.Rand().Float64() < l.prob {
		l.Dropped++
		pkt.Put(p)
		return
	}
	l.dst.Receive(p)
}

// Jitter delays each packet by a uniform random amount in [0, Max) on top
// of the downstream path — reverse-path delay variation for measurement
// robustness tests. Note that jitter larger than the inter-packet spacing
// reorders packets, which Bundler's out-of-order heuristic will (by
// design) notice. An order-preserving variant (NewOrderedJitter) clamps
// each delivery to no earlier than the previous one, modeling delay
// variation on a FIFO in-path element — real queues jitter latency
// without reordering, and an emulated element that invents reordering
// falsely trips the §5.2 multipath detector.
type Jitter struct {
	eng     clock.Clock
	max     clock.Time
	dst     Receiver
	ordered bool
	lastDue clock.Time // latest scheduled delivery (ordered mode)
}

// NewJitter builds a uniform-jitter element that may reorder.
func NewJitter(eng clock.Clock, max clock.Time, dst Receiver) *Jitter {
	if max < 0 {
		panic("netem: negative jitter")
	}
	return &Jitter{eng: eng, max: max, dst: dst}
}

// NewOrderedJitter builds a uniform-jitter element that preserves arrival
// order: a packet drawn an earlier delivery time than an already-scheduled
// predecessor is held until the predecessor leaves (the engine dispatches
// equal timestamps FIFO). Per-packet draws consume the engine RNG exactly
// as NewJitter does, so swapping modes changes scheduling, not the random
// stream.
func NewOrderedJitter(eng clock.Clock, max clock.Time, dst Receiver) *Jitter {
	j := NewJitter(eng, max, dst)
	j.ordered = true
	return j
}

// Receive implements Receiver.
func (j *Jitter) Receive(p *pkt.Packet) {
	d := clock.Time(0)
	if j.max > 0 {
		d = clock.Time(j.eng.Rand().Int63n(int64(j.max)))
	}
	if j.ordered {
		due := j.eng.Now() + d
		if due < j.lastDue {
			due = j.lastDue
		}
		j.lastDue = due
		d = due - j.eng.Now()
	}
	j.eng.CallAfter(d, jitterDeliver, j, p)
}

func jitterDeliver(a0, a1 any) {
	j, p := a0.(*Jitter), a1.(*pkt.Packet)
	j.dst.Receive(p)
}

// BalanceMode selects how the load balancer spreads packets.
type BalanceMode int

// Load-balancing modes.
const (
	// BalanceFlowHash picks a path per flow (ECMP-style), the common case
	// the paper's Scamper study observed at 26 % of IP hops.
	BalanceFlowHash BalanceMode = iota
	// BalancePacketRandom sprays packets uniformly, the most adversarial
	// case for Bundler's measurements.
	BalancePacketRandom
)

// LoadBalancer splits traffic across parallel paths. Each path is the head
// of an independent chain (typically a Link with its own delay/queue) that
// eventually converges on the same downstream receiver.
type LoadBalancer struct {
	eng   clock.Clock
	paths []Receiver
	mode  BalanceMode
	sent  []int
}

// NewLoadBalancer builds a balancer over the given paths.
func NewLoadBalancer(eng clock.Clock, mode BalanceMode, paths ...Receiver) *LoadBalancer {
	if len(paths) == 0 {
		panic("netem: load balancer needs at least one path")
	}
	return &LoadBalancer{eng: eng, paths: paths, mode: mode, sent: make([]int, len(paths))}
}

// Receive implements Receiver.
func (lb *LoadBalancer) Receive(p *pkt.Packet) {
	var i int
	switch lb.mode {
	case BalancePacketRandom:
		i = lb.eng.Rand().Intn(len(lb.paths))
	default:
		i = int(pkt.FlowHash(p, 0x9E3779B97F4A7C15) % uint64(len(lb.paths)))
	}
	lb.sent[i]++
	lb.paths[i].Receive(p)
}

// SentPerPath reports how many packets took each path.
func (lb *LoadBalancer) SentPerPath() []int {
	out := make([]int, len(lb.sent))
	copy(out, lb.sent)
	return out
}
