package netem

import (
	"math"
	"testing"

	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
)

type recorder struct {
	eng  *sim.Engine
	pkts []*pkt.Packet
	at   []sim.Time
}

func (r *recorder) Receive(p *pkt.Packet) {
	r.pkts = append(r.pkts, p)
	r.at = append(r.at, r.eng.Now())
}

func newpkt(size int) *pkt.Packet {
	return &pkt.Packet{Size: size, Dst: pkt.Addr{Host: 9, Port: 80}}
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	// 12 Mbit/s: a 1500-byte packet serializes in exactly 1 ms.
	l := NewLink(eng, "l", 12e6, 10*sim.Millisecond, qdisc.NewFIFO(1<<20), rec)
	l.Receive(newpkt(1500))
	eng.Run()
	if len(rec.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(rec.pkts))
	}
	want := 11 * sim.Millisecond // 1 ms tx + 10 ms prop
	if rec.at[0] != want {
		t.Fatalf("delivered at %v, want %v", rec.at[0], want)
	}
}

func TestLinkBackToBackSpacing(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	l := NewLink(eng, "l", 12e6, 0, qdisc.NewFIFO(1<<20), rec)
	for i := 0; i < 3; i++ {
		l.Receive(newpkt(1500))
	}
	eng.Run()
	if len(rec.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(rec.pkts))
	}
	for i, at := range rec.at {
		want := sim.Time(i+1) * sim.Millisecond
		if at != want {
			t.Errorf("packet %d at %v, want %v", i, at, want)
		}
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	l := NewLink(eng, "l", 12e6, 0, qdisc.NewFIFO(3000), rec)
	for i := 0; i < 5; i++ {
		l.Receive(newpkt(1500))
	}
	eng.Run()
	// One serializing + two queued fit initially; as the serializer takes
	// packets out, space frees. The first packet dequeues immediately, so
	// acceptance is: p0 (dequeued at t=0), p1, p2 fill the 3000-byte
	// queue; p3, p4 dropped.
	if got := len(rec.pkts); got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
	if l.Rejected() != 2 {
		t.Fatalf("rejected %d, want 2", l.Rejected())
	}
}

func TestLinkSetRateTakesEffect(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	l := NewLink(eng, "l", 12e6, 0, qdisc.NewFIFO(1<<20), rec)
	l.Receive(newpkt(1500))
	eng.Run()
	l.SetRate(24e6)
	start := eng.Now()
	l.Receive(newpkt(1500))
	eng.Run()
	if got := rec.at[1] - start; got != 500*sim.Microsecond {
		t.Fatalf("after rate doubling, tx took %v, want 0.5ms", got)
	}
}

func TestLinkRateClampedToMin(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 1e6, 0, qdisc.NewFIFO(1<<20), &Sink{})
	l.SetRate(0)
	if l.Rate() != MinRate {
		t.Fatalf("rate = %v, want clamp to %v", l.Rate(), MinRate)
	}
}

func TestLinkQueueDelayEstimate(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, "l", 12e6, 0, qdisc.NewFIFO(1<<20), &Sink{})
	for i := 0; i < 13; i++ { // 1 serializing + 12 queued
		l.Receive(newpkt(1500))
	}
	// 12 packets * 1ms each = 12 ms.
	got := l.QueueDelay().Millis()
	if math.Abs(got-12) > 0.01 {
		t.Fatalf("queue delay = %.3fms, want 12ms", got)
	}
	eng.Run()
}

func TestLinkHooksFire(t *testing.T) {
	eng := sim.NewEngine(1)
	var deq, del int
	var lastQDelay sim.Time
	l := NewLink(eng, "l", 12e6, sim.Millisecond, qdisc.NewFIFO(1<<20), &Sink{})
	l.OnDequeue(func(p *pkt.Packet, qd sim.Time) { deq++; lastQDelay = qd })
	l.OnDelivery(func(p *pkt.Packet) { del++ })
	l.Receive(newpkt(1500))
	l.Receive(newpkt(1500))
	eng.Run()
	if deq != 2 || del != 2 {
		t.Fatalf("hooks fired deq=%d del=%d, want 2/2", deq, del)
	}
	if lastQDelay != sim.Millisecond {
		t.Fatalf("second packet queue delay %v, want 1ms", lastQDelay)
	}
	if l.Delivered() != 2 || l.BytesSent() != 3000 {
		t.Fatalf("counters delivered=%d bytes=%d", l.Delivered(), l.BytesSent())
	}
}

func TestPipeDelaysWithoutQueueing(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	p := NewPipe(eng, 5*sim.Millisecond, rec)
	// Two packets at the same instant both arrive 5 ms later: no
	// serialization.
	p.Receive(newpkt(1500))
	p.Receive(newpkt(1500))
	eng.Run()
	if len(rec.at) != 2 || rec.at[0] != 5*sim.Millisecond || rec.at[1] != 5*sim.Millisecond {
		t.Fatalf("pipe deliveries at %v, want both at 5ms", rec.at)
	}
}

func TestDemuxRoutesAndCountsDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	a, b := &recorder{eng: eng}, &recorder{eng: eng}
	d := NewDemux()
	d.Route(1, a)
	d.Route(2, b)
	p1 := newpkt(100)
	p1.Dst.Host = 1
	p2 := newpkt(100)
	p2.Dst.Host = 2
	p3 := newpkt(100)
	p3.Dst.Host = 3
	d.Receive(p1)
	d.Receive(p2)
	d.Receive(p3)
	if len(a.pkts) != 1 || len(b.pkts) != 1 {
		t.Fatal("routing failed")
	}
	if d.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", d.Dropped())
	}
}

func TestDemuxDefaultRoute(t *testing.T) {
	eng := sim.NewEngine(1)
	def := &recorder{eng: eng}
	d := NewDemux()
	d.Default = def
	d.Receive(newpkt(100))
	if len(def.pkts) != 1 {
		t.Fatal("default route unused")
	}
}

func TestTapObservesAndForwards(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	seen := 0
	tap := NewTap(func(p *pkt.Packet) { seen++ }, rec)
	tap.Receive(newpkt(100))
	if seen != 1 || len(rec.pkts) != 1 {
		t.Fatal("tap did not observe+forward")
	}
}

func TestLoadBalancerFlowHashIsSticky(t *testing.T) {
	eng := sim.NewEngine(1)
	recs := []*recorder{{eng: eng}, {eng: eng}, {eng: eng}, {eng: eng}}
	lb := NewLoadBalancer(eng, BalanceFlowHash, recs[0], recs[1], recs[2], recs[3])
	// All packets of one flow must take the same path.
	for i := 0; i < 50; i++ {
		p := newpkt(100)
		p.Src = pkt.Addr{Host: 1, Port: 1000}
		p.IPID = uint16(i)
		lb.Receive(p)
	}
	nonEmpty := 0
	for _, r := range recs {
		if len(r.pkts) > 0 {
			nonEmpty++
			if len(r.pkts) != 50 {
				t.Fatalf("flow split across paths: %d", len(r.pkts))
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("flow used %d paths, want 1", nonEmpty)
	}
}

func TestLoadBalancerSpreadsManyFlows(t *testing.T) {
	eng := sim.NewEngine(1)
	recs := []*recorder{{eng: eng}, {eng: eng}, {eng: eng}, {eng: eng}}
	lb := NewLoadBalancer(eng, BalanceFlowHash, recs[0], recs[1], recs[2], recs[3])
	for f := 0; f < 400; f++ {
		p := newpkt(100)
		p.Src = pkt.Addr{Host: 1, Port: uint16(f)}
		lb.Receive(p)
	}
	for i, n := range lb.SentPerPath() {
		if n < 50 || n > 150 {
			t.Fatalf("path %d got %d of 400 flows, want ≈100", i, n)
		}
	}
}

func TestLoadBalancerRandomMode(t *testing.T) {
	eng := sim.NewEngine(7)
	recs := []*recorder{{eng: eng}, {eng: eng}}
	lb := NewLoadBalancer(eng, BalancePacketRandom, recs[0], recs[1])
	p := pkt.Addr{Host: 1, Port: 1}
	for i := 0; i < 1000; i++ {
		pp := newpkt(100)
		pp.Src = p // same flow: random mode must still split it
		lb.Receive(pp)
	}
	per := lb.SentPerPath()
	if per[0] < 400 || per[0] > 600 {
		t.Fatalf("random split %v, want ≈500/500", per)
	}
}

// End-to-end conservation across a two-hop chain.
func TestChainConservation(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	l2 := NewLink(eng, "l2", 96e6, 10*sim.Millisecond, qdisc.NewFIFO(1<<20), rec)
	l1 := NewLink(eng, "l1", 100e6, 5*sim.Millisecond, qdisc.NewFIFO(1<<20), l2)
	const n = 500
	for i := 0; i < n; i++ {
		l1.Receive(newpkt(1500))
	}
	eng.Run()
	if len(rec.pkts) != n {
		t.Fatalf("delivered %d of %d through chain", len(rec.pkts), n)
	}
	// Delivery must be paced by the slower second hop: total time ≥ n
	// packets at 96 Mbit/s.
	minSpan := sim.Time(float64(n*1500*8) / 96e6 * float64(sim.Second))
	span := rec.at[n-1] - rec.at[0]
	if span < minSpan-sim.Millisecond {
		t.Fatalf("span %v shorter than bottleneck pacing %v", span, minSpan)
	}
}

func TestOnTransmittedFiresBeforePropagation(t *testing.T) {
	eng := sim.NewEngine(1)
	var txAt, deliverAt sim.Time
	rec := ReceiverFunc(func(p *pkt.Packet) { deliverAt = eng.Now() })
	l := NewLink(eng, "l", 12e6, 10*sim.Millisecond, qdisc.NewFIFO(1<<20), rec)
	l.OnTransmitted(func(p *pkt.Packet) { txAt = eng.Now() })
	l.Receive(newpkt(1500))
	eng.Run()
	if txAt != sim.Millisecond {
		t.Fatalf("OnTransmitted at %v, want end of serialization (1ms)", txAt)
	}
	if deliverAt != 11*sim.Millisecond {
		t.Fatalf("delivery at %v, want 11ms", deliverAt)
	}
}

func TestLossyFilterOnlyDropsMatches(t *testing.T) {
	eng := sim.NewEngine(3)
	sink := &Sink{}
	l := NewLossy(eng, 1.0, sink) // drop everything that matches
	l.Filter = func(p *pkt.Packet) bool { return p.Proto == pkt.ProtoCtl }
	l.Receive(&pkt.Packet{Proto: pkt.ProtoCtl, Size: 60})
	l.Receive(&pkt.Packet{Proto: pkt.ProtoTCP, Size: 1500})
	if l.Dropped != 1 || sink.Count != 1 {
		t.Fatalf("dropped=%d forwarded=%d, want 1/1", l.Dropped, sink.Count)
	}
}

// TestLinkRatePrecisionCarry pins the serialization-precision fix: each
// packet's tx time was truncated toward zero, so every fractional
// nanosecond was a free speedup and a long run delivered measurably
// early. With the carry, the cumulative schedule stays within one
// nanosecond of ideal at any odd rate.
func TestLinkRatePrecisionCarry(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	const rate = 3.7e6 // odd rate: 40-byte packets serialize in 86486.486... ns
	l := NewLink(eng, "l", rate, 0, qdisc.NewFIFO(1<<30), rec)
	const n = 20000
	const size = 40
	for i := 0; i < n; i++ {
		l.Receive(newpkt(size))
	}
	eng.Run()
	if len(rec.pkts) != n {
		t.Fatalf("delivered %d packets, want %d", len(rec.pkts), n)
	}
	ideal := float64(n) * float64(size*8) / rate * float64(sim.Second)
	got := float64(rec.at[n-1])
	// Never faster than configured: pre-fix the truncation bias finished
	// this run ~9.7 µs early; the carry keeps it within a microsecond.
	if got < ideal-1000 {
		t.Fatalf("link ran fast: finished %.0f ns before the configured rate allows (truncation bias)", ideal-got)
	}
	pktTime := float64(size*8) / rate * float64(sim.Second)
	if got > ideal+pktTime {
		t.Fatalf("link ran slow: finished %.0f ns late (> one packet-time)", got-ideal)
	}
}

// jitterRun pushes n packets through a Jitter element at the given
// spacing and reports the delivery order (by IPID) and the mean applied
// delay in milliseconds.
func jitterRun(ordered bool, n int, spacing, max sim.Time) (order []uint16, meanMs float64) {
	eng := sim.NewEngine(7)
	rec := &recorder{eng: eng}
	var j *Jitter
	if ordered {
		j = NewOrderedJitter(eng, max, rec)
	} else {
		j = NewJitter(eng, max, rec)
	}
	for i := 0; i < n; i++ {
		p := newpkt(100)
		p.IPID = uint16(i)
		eng.At(sim.Time(i)*spacing, func() {
			p.SentAt = eng.Now()
			j.Receive(p)
		})
	}
	eng.Run()
	var sum float64
	for i, p := range rec.pkts {
		order = append(order, p.IPID)
		sum += (rec.at[i] - p.SentAt).Millis()
	}
	return order, sum / float64(len(rec.pkts))
}

// TestJitterOrderedMode exercises the order-preserving jitter variant:
// under arrival spacing well below the jitter bound, the plain element
// reorders heavily (that is its documented, deliberate behavior), while
// the ordered element must deliver strictly in arrival order with a mean
// delay still close to the drawn max/2.
func TestJitterOrderedMode(t *testing.T) {
	const n = 2000
	const spacing = 5 * sim.Millisecond
	const max = 10 * sim.Millisecond

	plainOrder, plainMean := jitterRun(false, n, spacing, max)
	inversions := 0
	for i := 1; i < len(plainOrder); i++ {
		if plainOrder[i] < plainOrder[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("plain jitter produced no reordering; the ordered-mode comparison is vacuous")
	}

	orderedOrder, orderedMean := jitterRun(true, n, spacing, max)
	if len(orderedOrder) != n {
		t.Fatalf("ordered jitter delivered %d packets, want %d", len(orderedOrder), n)
	}
	for i := 1; i < len(orderedOrder); i++ {
		if orderedOrder[i] < orderedOrder[i-1] {
			t.Fatalf("ordered jitter reordered: packet %d delivered after %d", orderedOrder[i], orderedOrder[i-1])
		}
	}
	// Same RNG stream, same draws: the clamp may hold a packet for a
	// predecessor, but the mean applied delay must stay near the drawn
	// mean (max/2), not balloon into queueing.
	if plainMean < 4 || plainMean > 6 {
		t.Fatalf("plain jitter mean delay %.2f ms, want ≈5 ms", plainMean)
	}
	if orderedMean < plainMean || orderedMean > 1.35*plainMean {
		t.Fatalf("ordered jitter mean delay %.2f ms vs plain %.2f ms: clamping changed the delay distribution, not just the order", orderedMean, plainMean)
	}
}
