package netem

import (
	"testing"

	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
)

// boundaryRec records ReceiveAt calls — a stand-in for a shard port.
type boundaryRec struct {
	pkts []*pkt.Packet
	at   []sim.Time
}

func (b *boundaryRec) Receive(p *pkt.Packet) { b.ReceiveAt(p, -1) }
func (b *boundaryRec) ReceiveAt(p *pkt.Packet, arrive sim.Time) {
	b.pkts = append(b.pkts, p)
	b.at = append(b.at, arrive)
}

// TestLinkBoundaryFastPath checks a link terminating on a BoundaryPort
// hands packets over at transmission end with the propagation delay
// folded into the declared arrival time, instead of scheduling delivery
// locally: the delay belongs to the remote shard's clock.
func TestLinkBoundaryFastPath(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &boundaryRec{}
	// 12 Mbit/s: a 1500-byte packet serializes in exactly 1 ms.
	l := NewLink(eng, "l", 12e6, 10*sim.Millisecond, qdisc.NewFIFO(1<<20), rec)
	l.Receive(newpkt(1500))
	l.Receive(newpkt(1500))
	eng.Run()
	if len(rec.pkts) != 2 {
		t.Fatalf("handed off %d packets, want 2", len(rec.pkts))
	}
	// Hand-off happens at serialization end (1 ms, 2 ms); the declared
	// arrival adds the 10 ms propagation.
	if eng.Now() != 2*sim.Millisecond {
		t.Errorf("local engine advanced to %v, want 2ms (no local propagation events)", eng.Now())
	}
	for i, want := range []sim.Time{11 * sim.Millisecond, 12 * sim.Millisecond} {
		if rec.at[i] != want {
			t.Errorf("packet %d declared arrival %v, want %v", i, rec.at[i], want)
		}
	}
}

// TestLinkBoundarySkipsDeliveryHook pins the documented hook contract:
// OnDelivery does not fire on the boundary path (delivery is the remote
// shard's event), while OnTransmitted still does.
func TestLinkBoundarySkipsDeliveryHook(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &boundaryRec{}
	l := NewLink(eng, "l", 12e6, 5*sim.Millisecond, qdisc.NewFIFO(1<<20), rec)
	var transmitted, delivered int
	l.OnTransmitted(func(p *pkt.Packet) { transmitted++ })
	l.OnDelivery(func(p *pkt.Packet) { delivered++ })
	l.Receive(newpkt(1500))
	eng.Run()
	if transmitted != 1 {
		t.Errorf("OnTransmitted fired %d times, want 1", transmitted)
	}
	if delivered != 0 {
		t.Errorf("OnDelivery fired %d times on the boundary path, want 0", delivered)
	}
}

// TestLinkNonBoundaryUnchanged guards the ordinary path: a plain
// Receiver destination must still see scheduled delivery after
// serialization + propagation, with OnDelivery firing.
func TestLinkNonBoundaryUnchanged(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := &recorder{eng: eng}
	l := NewLink(eng, "l", 12e6, 10*sim.Millisecond, qdisc.NewFIFO(1<<20), rec)
	delivered := 0
	l.OnDelivery(func(p *pkt.Packet) { delivered++ })
	l.Receive(newpkt(1500))
	eng.Run()
	if len(rec.pkts) != 1 || rec.at[0] != 11*sim.Millisecond {
		t.Fatalf("delivery %v, want one packet at 11ms", rec.at)
	}
	if delivered != 1 {
		t.Errorf("OnDelivery fired %d times, want 1", delivered)
	}
}
