package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransformKnownDFT(t *testing.T) {
	// FFT of an impulse is flat.
	x := make([]complex128, 8)
	x[0] = 1
	Transform(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestTransformSinusoidPeaksAtItsBin(t *testing.T) {
	const n = 256
	x := make([]complex128, n)
	f := 16.0
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*f*float64(i)/n), 0)
	}
	Transform(x)
	best, bestMag := 0, 0.0
	for k := 1; k < n/2; k++ {
		if m := cmplx.Abs(x[k]); m > bestMag {
			best, bestMag = k, m
		}
	}
	if best != 16 {
		t.Fatalf("peak at bin %d, want 16", best)
	}
}

func TestTransformPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for length 6")
		}
	}()
	Transform(make([]complex128, 6))
}

// Property: Parseval's theorem holds: sum |x|^2 == (1/N) sum |X|^2.
func TestPropertyParseval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 128
		x := make([]complex128, n)
		energyTime := 0.0
		for i := range x {
			v := r.NormFloat64()
			x[i] = complex(v, 0)
			energyTime += v * v
		}
		Transform(x)
		energyFreq := 0.0
		for _, v := range x {
			energyFreq += real(v)*real(v) + imag(v)*imag(v)
		}
		energyFreq /= n
		return math.Abs(energyTime-energyFreq) < 1e-6*math.Max(1, energyTime)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity of the transform.
func TestPropertyLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n = 64
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(r.NormFloat64(), r.NormFloat64())
		b[i] = complex(r.NormFloat64(), r.NormFloat64())
		sum[i] = a[i] + b[i]
	}
	Transform(a)
	Transform(b)
	Transform(sum)
	for k := 0; k < n; k++ {
		if cmplx.Abs(sum[k]-(a[k]+b[k])) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", k)
		}
	}
}

func TestPowerSpectrumDetectsPulseFrequency(t *testing.T) {
	// 512 samples at 100 Hz; 5 Hz sinusoid (the Nimbus pulse frequency)
	// buried in noise must dominate the 5 Hz bin region.
	const n, rate, f = 512, 100.0, 5.0
	r := rand.New(rand.NewSource(3))
	samples := make([]float64, n)
	for i := range samples {
		tt := float64(i) / rate
		samples[i] = 3*math.Sin(2*math.Pi*f*tt) + 0.3*r.NormFloat64() + 10
	}
	spec := PowerSpectrum(samples)
	peak := BinOf(f, rate, n)
	for k := 1; k < len(spec); k++ {
		if k >= peak-1 && k <= peak+1 {
			continue
		}
		if spec[k] > spec[peak] {
			t.Fatalf("bin %d power %.3f exceeds pulse bin %d power %.3f", k, spec[k], peak, spec[peak])
		}
	}
}

func TestPowerSpectrumRemovesDC(t *testing.T) {
	samples := make([]float64, 64)
	for i := range samples {
		samples[i] = 42 // pure DC
	}
	spec := PowerSpectrum(samples)
	for k, v := range spec {
		if v > 1e-18 {
			t.Fatalf("bin %d = %g for constant input, want ~0", k, v)
		}
	}
}

func TestBinOfBounds(t *testing.T) {
	if BinOf(5, 100, 512) != 26 { // 5*512/100 = 25.6 -> 26
		t.Fatalf("BinOf(5,100,512) = %d, want 26", BinOf(5, 100, 512))
	}
	if BinOf(-3, 100, 512) != 0 {
		t.Fatal("negative freq not clamped")
	}
	if BinOf(1e9, 100, 512) != 256 {
		t.Fatal("super-Nyquist freq not clamped")
	}
}
