// Package fft provides a small radix-2 FFT used by the Nimbus
// cross-traffic elasticity detector (§5.1 of the paper): the detector
// superimposes sinusoidal pulses on the bundle's sending rate and looks
// for that frequency in the cross traffic's estimated rate.
package fft

import "math"

// Transform computes the in-place decimation-in-time FFT of x, whose
// length must be a power of two. It returns x for convenience.
func Transform(x []complex128) []complex128 {
	n := len(x)
	if n&(n-1) != 0 || n == 0 {
		panic("fft: length must be a positive power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return x
}

// HannWindow applies a Hann window to samples in place, reducing spectral
// leakage before transforming.
func HannWindow(x []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	for i := range x {
		x[i] *= 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
}

// PowerSpectrum returns the one-sided power spectrum of the real samples,
// after removing the mean (so the DC bin does not swamp everything). The
// result has len(samples)/2+1 bins; bin k corresponds to frequency
// k*sampleRate/len(samples).
func PowerSpectrum(samples []float64) []float64 {
	n := len(samples)
	if n&(n-1) != 0 || n == 0 {
		panic("fft: sample count must be a positive power of two")
	}
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(n)
	buf := make([]float64, n)
	for i, v := range samples {
		buf[i] = v - mean
	}
	HannWindow(buf)
	x := make([]complex128, n)
	for i, v := range buf {
		x[i] = complex(v, 0)
	}
	Transform(x)
	out := make([]float64, n/2+1)
	for k := range out {
		re, im := real(x[k]), imag(x[k])
		out[k] = (re*re + im*im) / float64(n)
	}
	return out
}

// BinOf returns the spectrum bin closest to freq for a spectrum computed
// over n samples taken at sampleRate Hz.
func BinOf(freq, sampleRate float64, n int) int {
	b := int(math.Round(freq * float64(n) / sampleRate))
	if b < 0 {
		b = 0
	}
	if b > n/2 {
		b = n / 2
	}
	return b
}
