package udpapp

import (
	"math"
	"testing"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/tcp"
)

func TestPingMeasuresPathRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	mux := tcp.NewMux()
	fwd := netem.NewLink(eng, "fwd", 96e6, 25*sim.Millisecond, qdisc.NewFIFO(1<<20), mux)
	rev := netem.NewLink(eng, "rev", 96e6, 25*sim.Millisecond, qdisc.NewFIFO(1<<20), mux)
	ca := pkt.Addr{Host: 1, Port: 100}
	sa := pkt.Addr{Host: 2, Port: 200}
	client := NewPingClient(eng, fwd, ca, sa, 1)
	server := NewPingServer(eng, rev, sa)
	mux.Register(ca, client)
	mux.Register(sa, server)
	client.Start()
	eng.RunUntil(5 * sim.Second)
	if client.RTTs.N() < 50 {
		t.Fatalf("only %d round trips in 5s", client.RTTs.N())
	}
	// Base RTT ≈ 50 ms propagation + negligible serialization.
	med := client.RTTs.Median()
	if math.Abs(med-50) > 1 {
		t.Fatalf("median RTT %.2fms, want ≈ 50ms", med)
	}
	if server.Served != client.RTTs.N() && server.Served != client.RTTs.N()+1 {
		t.Fatalf("served %d, client completed %d", server.Served, client.RTTs.N())
	}
}

func TestPingSeesQueueingDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	mux := tcp.NewMux()
	fwd := netem.NewLink(eng, "fwd", 12e6, 10*sim.Millisecond, qdisc.NewFIFO(1<<22), mux)
	rev := netem.NewLink(eng, "rev", 1e9, 10*sim.Millisecond, qdisc.NewFIFO(1<<22), mux)
	ca := pkt.Addr{Host: 1, Port: 100}
	sa := pkt.Addr{Host: 2, Port: 200}
	client := NewPingClient(eng, fwd, ca, sa, 1)
	server := NewPingServer(eng, rev, sa)
	mux.Register(ca, client)
	mux.Register(sa, server)
	// Overloading cross traffic through the same queue: a deterministic
	// 13 Mbit/s offered load on a 12 Mbit/s link builds a standing queue.
	cbr := NewCBRStream(eng, fwd, pkt.Addr{Host: 3, Port: 1}, pkt.Addr{Host: 4, Port: 1}, 2, 13e6, pkt.MTU)
	mux.Register(pkt.Addr{Host: 4, Port: 1}, &netem.Sink{})
	client.Start()
	cbr.Start()
	eng.RunUntil(10 * sim.Second)
	med := client.RTTs.Median()
	if med < 30 {
		t.Fatalf("median RTT %.2fms does not reflect queueing (base 20ms)", med)
	}
	cbr.Stop()
}

func TestCBRRateAccuracy(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &netem.Sink{}
	cbr := NewCBRStream(eng, sink, pkt.Addr{Host: 1}, pkt.Addr{Host: 2}, 1, 12e6, pkt.MTU)
	cbr.Start()
	eng.RunUntil(10 * sim.Second)
	cbr.Stop()
	// 12 Mbit/s / (1500*8 bits) = 1000 packets/s.
	want := 10000
	if sink.Count < want-10 || sink.Count > want+10 {
		t.Fatalf("CBR delivered %d packets in 10s, want ≈ %d", sink.Count, want)
	}
	eng.RunUntil(11 * sim.Second)
	if sink.Count > want+10 {
		t.Fatal("CBR kept sending after Stop")
	}
}

func TestPingIgnoresForeignProtocols(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewPingClient(eng, &netem.Sink{}, pkt.Addr{Host: 1}, pkt.Addr{Host: 2}, 1)
	c.Start()
	c.Receive(&pkt.Packet{Proto: pkt.ProtoTCP})
	if c.RTTs.N() != 0 {
		t.Fatal("TCP packet recorded as ping response")
	}
}
