// Package udpapp provides the UDP workloads the paper's real-path
// evaluation (§8) uses: closed-loop request/response pairs whose RTTs
// measure scheduling latency, and a paced constant-bit-rate stream that
// models application-limited (non-buffer-filling) traffic such as video.
package udpapp

import (
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/sim"
	"bundler/internal/stats"
)

// RequestSize is the paper's §8 probe size: 40-byte UDP request/response.
const RequestSize = 40

// PingClient issues closed-loop request/response probes: a new request is
// sent as soon as the previous response arrives. It implements
// netem.Receiver for responses.
type PingClient struct {
	eng    *sim.Engine
	out    netem.Receiver
	addr   pkt.Addr
	server pkt.Addr
	flowID uint64

	ipid    uint16
	lastReq sim.Time
	waiting bool

	// RTTs collects request-response round-trip times in milliseconds.
	RTTs stats.Sample
	// Series records each sample against virtual time for timeline plots.
	Series stats.TimeSeries
}

// NewPingClient builds a closed-loop probe client targeting server.
func NewPingClient(eng *sim.Engine, out netem.Receiver, addr, server pkt.Addr, flowID uint64) *PingClient {
	return &PingClient{eng: eng, out: out, addr: addr, server: server, flowID: flowID}
}

// Start sends the first request.
func (c *PingClient) Start() { c.sendRequest() }

func (c *PingClient) sendRequest() {
	c.ipid++
	c.lastReq = c.eng.Now()
	c.waiting = true
	c.out.Receive(&pkt.Packet{
		IPID:   c.ipid,
		Src:    c.addr,
		Dst:    c.server,
		Proto:  pkt.ProtoUDP,
		Size:   RequestSize + pkt.HeaderBytes,
		FlowID: c.flowID,
		SentAt: c.lastReq,
	})
}

// Receive implements netem.Receiver: a response completes the loop.
func (c *PingClient) Receive(p *pkt.Packet) {
	if !c.waiting || p.Proto != pkt.ProtoUDP {
		return
	}
	c.waiting = false
	rtt := (c.eng.Now() - c.lastReq).Millis()
	c.RTTs.Add(rtt)
	c.Series.Add(c.eng.Now(), rtt)
	c.sendRequest()
}

// PingServer echoes each request back to its source. It implements
// netem.Receiver.
type PingServer struct {
	eng  *sim.Engine
	out  netem.Receiver
	addr pkt.Addr
	ipid uint16

	// Served counts completed responses.
	Served int
}

// NewPingServer builds an echo server at addr whose responses leave via
// out.
func NewPingServer(eng *sim.Engine, out netem.Receiver, addr pkt.Addr) *PingServer {
	return &PingServer{eng: eng, out: out, addr: addr}
}

// Receive implements netem.Receiver.
func (s *PingServer) Receive(p *pkt.Packet) {
	if p.Proto != pkt.ProtoUDP {
		return
	}
	s.ipid++
	s.Served++
	s.out.Receive(&pkt.Packet{
		IPID:   s.ipid,
		Src:    s.addr,
		Dst:    p.Src,
		Proto:  pkt.ProtoUDP,
		Size:   RequestSize + pkt.HeaderBytes,
		FlowID: p.FlowID,
		SentAt: s.eng.Now(),
	})
}

// CBRStream emits fixed-size UDP packets at a constant bit rate: an
// application-limited source that never fills buffers, the "paced video
// stream" class of cross traffic from §3.
type CBRStream struct {
	eng     *sim.Engine
	out     netem.Receiver
	src     pkt.Addr
	dst     pkt.Addr
	flowID  uint64
	rate    float64 // bits per second
	pktSize int
	ipid    uint16
	ticker  *sim.Ticker

	// Sent counts emitted packets.
	Sent int
}

// NewCBRStream builds a constant-bit-rate source. pktSize is the wire size
// per packet.
func NewCBRStream(eng *sim.Engine, out netem.Receiver, src, dst pkt.Addr, flowID uint64, rateBps float64, pktSize int) *CBRStream {
	if rateBps <= 0 || pktSize <= 0 {
		panic("udpapp: CBR rate and packet size must be positive")
	}
	return &CBRStream{eng: eng, out: out, src: src, dst: dst, flowID: flowID, rate: rateBps, pktSize: pktSize}
}

// Start begins emission; Stop ends it.
func (c *CBRStream) Start() {
	interval := sim.Time(float64(c.pktSize*8) / c.rate * float64(sim.Second))
	if interval < 1 {
		interval = 1
	}
	c.ticker = sim.Tick(c.eng, interval, c.emit)
}

// Stop halts the stream.
func (c *CBRStream) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

func (c *CBRStream) emit() {
	c.ipid++
	c.Sent++
	c.out.Receive(&pkt.Packet{
		IPID:   c.ipid,
		Src:    c.src,
		Dst:    c.dst,
		Proto:  pkt.ProtoUDP,
		Size:   c.pktSize,
		FlowID: c.flowID,
		SentAt: c.eng.Now(),
	})
}
