// Package udpapp provides the UDP workloads the paper's real-path
// evaluation (§8) uses: closed-loop request/response pairs whose RTTs
// measure scheduling latency, and a paced constant-bit-rate stream that
// models application-limited (non-buffer-filling) traffic such as video.
package udpapp

import (
	"bundler/internal/clock"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/stats"
)

// RequestSize is the paper's §8 probe size: 40-byte UDP request/response.
const RequestSize = 40

// PingClient issues closed-loop request/response probes: a new request is
// sent as soon as the previous response arrives. It implements
// netem.Receiver for responses.
type PingClient struct {
	eng    clock.Clock
	out    netem.Receiver
	addr   pkt.Addr
	server pkt.Addr
	flowID uint64

	ipid    uint16
	lastReq clock.Time
	waiting bool
	pool    *pkt.Pool

	// RTTs collects request-response round-trip times in milliseconds.
	RTTs stats.Sample
	// Series records each sample against virtual time for timeline plots.
	Series stats.TimeSeries
}

// NewPingClient builds a closed-loop probe client targeting server.
func NewPingClient(eng clock.Clock, out netem.Receiver, addr, server pkt.Addr, flowID uint64) *PingClient {
	return &PingClient{eng: eng, out: out, addr: addr, server: server, flowID: flowID}
}

// SetPool makes the client mint requests from a partition-local pool
// (nil keeps the shared global pool). Call before Start.
func (c *PingClient) SetPool(pl *pkt.Pool) { c.pool = pl }

// Start sends the first request.
func (c *PingClient) Start() { c.sendRequest() }

func (c *PingClient) sendRequest() {
	c.ipid++
	c.lastReq = c.eng.Now()
	c.waiting = true
	p := c.pool.Get()
	p.IPID = c.ipid
	p.Src = c.addr
	p.Dst = c.server
	p.Proto = pkt.ProtoUDP
	p.Size = RequestSize + pkt.HeaderBytes
	p.FlowID = c.flowID
	p.SentAt = c.lastReq
	c.out.Receive(p)
}

// Receive implements netem.Receiver: a response completes the loop.
// The response packet is consumed and released.
func (c *PingClient) Receive(p *pkt.Packet) {
	proto := p.Proto
	pkt.Put(p)
	if !c.waiting || proto != pkt.ProtoUDP {
		return
	}
	c.waiting = false
	rtt := (c.eng.Now() - c.lastReq).Millis()
	c.RTTs.Add(rtt)
	c.Series.Add(c.eng.Now(), rtt)
	c.sendRequest()
}

// PingServer echoes each request back to its source. It implements
// netem.Receiver.
type PingServer struct {
	eng  clock.Clock
	out  netem.Receiver
	addr pkt.Addr
	ipid uint16
	pool *pkt.Pool

	// Served counts completed responses.
	Served int
}

// NewPingServer builds an echo server at addr whose responses leave via
// out.
func NewPingServer(eng clock.Clock, out netem.Receiver, addr pkt.Addr) *PingServer {
	return &PingServer{eng: eng, out: out, addr: addr}
}

// SetPool makes the server mint responses from a partition-local pool
// (nil keeps the shared global pool).
func (s *PingServer) SetPool(pl *pkt.Pool) { s.pool = pl }

// Receive implements netem.Receiver. The request is consumed and
// released; the response is a fresh pooled packet.
func (s *PingServer) Receive(p *pkt.Packet) {
	if p.Proto != pkt.ProtoUDP {
		pkt.Put(p)
		return
	}
	s.ipid++
	s.Served++
	resp := s.pool.Get()
	resp.IPID = s.ipid
	resp.Src = s.addr
	resp.Dst = p.Src
	resp.Proto = pkt.ProtoUDP
	resp.Size = RequestSize + pkt.HeaderBytes
	resp.FlowID = p.FlowID
	resp.SentAt = s.eng.Now()
	pkt.Put(p)
	s.out.Receive(resp)
}

// CBRStream emits fixed-size UDP packets at a constant bit rate: an
// application-limited source that never fills buffers, the "paced video
// stream" class of cross traffic from §3.
type CBRStream struct {
	eng     clock.Clock
	out     netem.Receiver
	src     pkt.Addr
	dst     pkt.Addr
	flowID  uint64
	rate    float64 // bits per second
	pktSize int
	ipid    uint16
	ticker  clock.Ticker
	pool    *pkt.Pool

	// Sent counts emitted packets.
	Sent int
}

// NewCBRStream builds a constant-bit-rate source. pktSize is the wire size
// per packet.
func NewCBRStream(eng clock.Clock, out netem.Receiver, src, dst pkt.Addr, flowID uint64, rateBps float64, pktSize int) *CBRStream {
	if rateBps <= 0 || pktSize <= 0 {
		panic("udpapp: CBR rate and packet size must be positive")
	}
	return &CBRStream{eng: eng, out: out, src: src, dst: dst, flowID: flowID, rate: rateBps, pktSize: pktSize}
}

// SetPool makes the stream mint packets from a partition-local pool
// (nil keeps the shared global pool). Call before Start.
func (c *CBRStream) SetPool(pl *pkt.Pool) { c.pool = pl }

// Start begins emission; Stop ends it.
func (c *CBRStream) Start() {
	interval := clock.Time(float64(c.pktSize*8) / c.rate * float64(clock.Second))
	if interval < 1 {
		interval = 1
	}
	c.ticker = c.eng.Tick(interval, c.emit)
}

// Stop halts the stream.
func (c *CBRStream) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

func (c *CBRStream) emit() {
	c.ipid++
	c.Sent++
	p := c.pool.Get()
	p.IPID = c.ipid
	p.Src = c.src
	p.Dst = c.dst
	p.Proto = pkt.ProtoUDP
	p.Size = c.pktSize
	p.FlowID = c.flowID
	p.SentAt = c.eng.Now()
	c.out.Receive(p)
}
