package bundle

import (
	"testing"

	"bundler/internal/ccalg"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/tcp"
)

// topo is a two-site dumbbell with an optional Bundler pair:
//
//	senders -> [sendbox] -> bottleneck -> demux -> [tap recvbox] -> muxB -> receivers
//	receivers' ACKs + recvbox ctl ACKs -> reverse link -> muxA -> senders/sendbox
type topo struct {
	eng        *sim.Engine
	muxA       *tcp.Mux
	muxB       *tcp.Mux
	demux      *netem.Demux
	bottleneck *netem.Link
	reverse    *netem.Link
	sb         *Sendbox
	rb         *Receivebox
	siteEgress netem.Receiver // where site-A hosts send (sendbox or bottleneck)
	nextFlow   uint64
}

const (
	ctlHostSend = 10
	ctlHostRecv = 20
)

func newTopo(t *testing.T, withBundler bool, rate float64, rtt sim.Time, bufBytes int, cfg Config) *topo {
	t.Helper()
	eng := sim.NewEngine(1)
	tp := &topo{eng: eng, muxA: tcp.NewMux(), muxB: tcp.NewMux()}
	tp.demux = netem.NewDemux()
	tp.bottleneck = netem.NewLink(eng, "bottleneck", rate, rtt/2, qdisc.NewFIFO(bufBytes), tp.demux)
	tp.reverse = netem.NewLink(eng, "reverse", 1e9, rtt/2, qdisc.NewFIFO(1<<24), tp.muxA)

	sbCtl := pkt.Addr{Host: ctlHostSend, Port: 1}
	rbCtl := pkt.Addr{Host: ctlHostRecv, Port: 1}
	if withBundler {
		tp.sb = NewSendbox(eng, cfg, tp.bottleneck, sbCtl, rbCtl)
		tp.rb = NewReceivebox(eng, tp.reverse, rbCtl, sbCtl, cfg.InitialEpochN)
		tp.muxA.Register(sbCtl, tp.sb)
		tp.muxB.Register(rbCtl, tp.rb)
		tp.demux.Default = netem.NewTap(tp.rb.Observe, tp.muxB)
		tp.siteEgress = tp.sb
	} else {
		tp.demux.Default = tp.muxB
		tp.siteEgress = tp.bottleneck
	}
	return tp
}

// addFlow adds a bundled TCP flow from site A to site B.
func (tp *topo) addFlow(size int64, cc tcp.Congestion) (*tcp.Sender, *tcp.Receiver) {
	tp.nextFlow++
	id := tp.nextFlow
	sa := pkt.Addr{Host: uint32(1000 + id), Port: 5000}
	ra := pkt.Addr{Host: uint32(2000 + id), Port: 80}
	s := tcp.NewSender(tp.eng, tp.siteEgress, sa, ra, id, size, cc, nil)
	r := tcp.NewReceiver(tp.eng, tp.reverse, ra, sa, id, size, nil)
	tp.muxA.Register(sa, s)
	tp.muxB.Register(ra, r)
	return s, r
}

// addCrossFlow adds an un-bundled flow sharing the bottleneck but not
// traversing the Bundler boxes.
func (tp *topo) addCrossFlow(size int64, cc tcp.Congestion) (*tcp.Sender, *tcp.Receiver) {
	tp.nextFlow++
	id := tp.nextFlow
	sa := pkt.Addr{Host: uint32(3000 + id), Port: 5000}
	ra := pkt.Addr{Host: uint32(4000 + id), Port: 80}
	s := tcp.NewSender(tp.eng, tp.bottleneck, sa, ra, id, size, cc, nil)
	r := tcp.NewReceiver(tp.eng, tp.reverse, ra, sa, id, size, nil)
	tp.muxA.Register(sa, s)
	// Route cross destinations around the receivebox tap.
	tp.demux.Route(ra.Host, r)
	tp.muxB.Register(ra, r) // unused but keeps addressing uniform
	return s, r
}

func TestEpochMeasurementPipeline(t *testing.T) {
	tp := newTopo(t, true, 96e6, 50*sim.Millisecond, 1<<22, Config{})
	s, _ := tp.addFlow(1<<40, tcp.NewCubic()) // backlogged
	s.Start()
	tp.eng.RunUntil(10 * sim.Second)
	if tp.rb.AcksSent == 0 {
		t.Fatal("receivebox sent no congestion ACKs")
	}
	if tp.sb.AcksMatched == 0 {
		t.Fatal("sendbox matched no congestion ACKs")
	}
	if tp.sb.MinRTT() < 50*sim.Millisecond || tp.sb.MinRTT() > 60*sim.Millisecond {
		t.Fatalf("inner-loop minRTT = %v, want ≈ 50ms", tp.sb.MinRTT())
	}
	n := tp.sb.EpochN()
	if n&(n-1) != 0 {
		t.Fatalf("epoch size %d not a power of two", n)
	}
	if tp.rb.EpochUpdates == 0 {
		t.Fatal("receivebox never received an epoch-size update")
	}
	if tp.rb.EpochN() != n {
		t.Fatalf("epoch sizes diverged: sendbox %d receivebox %d", n, tp.rb.EpochN())
	}
	m, ok := tp.sb.Measurement()
	if !ok {
		t.Fatal("no windowed measurement")
	}
	if m.RecvRate < 0.5*96e6 || m.RecvRate > 1.2*96e6 {
		t.Fatalf("recv rate estimate %.1f Mbit/s, want ≈ 96", m.RecvRate/1e6)
	}
}

// TestQueueShift reproduces the paper's central mechanism (Figure 2): with
// Bundler, the queue that would build at the bottleneck moves to the
// sendbox, without sacrificing throughput.
func TestQueueShift(t *testing.T) {
	const rate, dur = 96e6, 30
	rtt := 50 * sim.Millisecond
	buf := 2 * int(rate/8*rtt.Seconds()) // 2 BDP droptail, the bufferbloat case

	// Status quo: Cubic fills the bottleneck buffer.
	base := newTopo(t, false, rate, rtt, buf, Config{})
	bs, _ := base.addFlow(1<<40, tcp.NewCubic())
	bs.Start()
	var baseQ, baseSamples float64
	sim.Tick(base.eng, 100*sim.Millisecond, func() {
		baseQ += base.bottleneck.QueueDelay().Seconds()
		baseSamples++
	})
	base.eng.RunUntil(dur * sim.Second)
	baseQMean := baseQ / baseSamples * 1000 // ms

	// With Bundler.
	bt := newTopo(t, true, rate, rtt, buf, Config{})
	ws, _ := bt.addFlow(1<<40, tcp.NewCubic())
	ws.Start()
	var bq, sbq, samples float64
	sim.Tick(bt.eng, 100*sim.Millisecond, func() {
		if bt.eng.Now() < 5*sim.Second {
			return // skip convergence
		}
		bq += bt.bottleneck.QueueDelay().Seconds()
		sbq += bt.sb.QueueDelay().Seconds()
		samples++
	})
	bt.eng.RunUntil(dur * sim.Second)
	bqMean := bq / samples * 1000
	sbqMean := sbq / samples * 1000

	if baseQMean < 20 {
		t.Fatalf("status quo bottleneck queue %.1fms; expected bufferbloat ≥ 20ms", baseQMean)
	}
	if bqMean > baseQMean/2 {
		t.Fatalf("bundler bottleneck queue %.1fms vs status quo %.1fms; queue did not shrink", bqMean, baseQMean)
	}
	if sbqMean < bqMean {
		t.Fatalf("sendbox queue %.1fms < bottleneck queue %.1fms; queue did not shift", sbqMean, bqMean)
	}
	// Throughput preserved: bundled flow moved comparable bytes.
	if ws.Acked() < int64(0.8*float64(bs.Acked())) {
		t.Fatalf("bundler throughput %.1f Mbit/s vs status quo %.1f; lost too much",
			float64(ws.Acked())*8/dur/1e6, float64(bs.Acked())*8/dur/1e6)
	}
	if bt.sb.Mode() != ModeDelayControl {
		t.Fatalf("mode = %v with no cross traffic, want delay-control", bt.sb.Mode())
	}
}

func TestRTTEstimateAccuracy(t *testing.T) {
	tp := newTopo(t, true, 48e6, 50*sim.Millisecond, 1<<22, Config{})
	s, _ := tp.addFlow(1<<40, tcp.NewCubic())
	s.Start()
	// Ground truth: base RTT + bottleneck queueing delay sampled over
	// time; compare the median estimate against the median truth.
	var truth []float64
	sim.Tick(tp.eng, 10*sim.Millisecond, func() {
		if tp.eng.Now() > 5*sim.Second {
			truth = append(truth, 50+tp.bottleneck.QueueDelay().Millis())
		}
	})
	tp.eng.RunUntil(30 * sim.Second)
	if len(truth) == 0 || tp.sb.RTTEstimates.N() == 0 {
		t.Fatal("no samples")
	}
	var sum float64
	for _, v := range truth {
		sum += v
	}
	truthMean := sum / float64(len(truth))
	estMean := tp.sb.RTTEstimates.MeanOver(5*sim.Second, 30*sim.Second)
	diff := estMean - truthMean
	if diff < -3 || diff > 3 {
		t.Fatalf("RTT estimate mean %.2fms vs truth %.2fms; |diff| > 3ms", estMean, truthMean)
	}
}

// TestEpochSubsetResilience verifies the power-of-two property from §4.5:
// when the receivebox holds a smaller (stale) epoch size, its ACKs are a
// superset and the sendbox simply ignores the extras.
func TestEpochSubsetResilience(t *testing.T) {
	cfg := Config{InitialEpochN: 64}
	tp := newTopo(t, true, 96e6, 50*sim.Millisecond, 1<<22, cfg)
	// Force the receivebox to a smaller epoch (superset sampling) and cut
	// off epoch updates by pre-seeding: recreate receivebox with N=8.
	tp.rb.epochN = 8
	s, _ := tp.addFlow(30_000_000, tcp.NewCubic())
	s.Start()
	tp.eng.RunUntil(5 * sim.Second)
	if tp.sb.AcksMatched == 0 {
		t.Fatal("no matched ACKs despite superset sampling")
	}
	if tp.sb.AcksSpurious == 0 {
		t.Fatal("superset sampling should produce spurious ACKs that are ignored")
	}
}

func TestMultipathImbalanceDisables(t *testing.T) {
	// Build a bundler topology whose bottleneck is four load-balanced
	// paths with very different delays.
	eng := sim.NewEngine(1)
	muxA, muxB := tcp.NewMux(), tcp.NewMux()
	demux := netem.NewDemux()
	reverse := netem.NewLink(eng, "reverse", 1e9, 5*sim.Millisecond, qdisc.NewFIFO(1<<24), muxA)
	sbCtl := pkt.Addr{Host: ctlHostSend, Port: 1}
	rbCtl := pkt.Addr{Host: ctlHostRecv, Port: 1}
	rb := NewReceivebox(eng, reverse, rbCtl, sbCtl, 16)
	demux.Default = netem.NewTap(rb.Observe, muxB)
	var paths []netem.Receiver
	for i := 0; i < 4; i++ {
		delay := sim.Time(i*60+5) * sim.Millisecond
		paths = append(paths, netem.NewLink(eng, "path", 24e6, delay, qdisc.NewFIFO(1<<22), demux))
	}
	lb := netem.NewLoadBalancer(eng, netem.BalanceFlowHash, paths...)
	sb := NewSendbox(eng, Config{}, lb, sbCtl, rbCtl)
	muxA.Register(sbCtl, sb)
	muxB.Register(rbCtl, rb)
	// Many small flows so the load balancer sprays across paths.
	for i := 0; i < 40; i++ {
		id := uint64(i + 1)
		sa := pkt.Addr{Host: uint32(1000 + i), Port: 5000}
		ra := pkt.Addr{Host: uint32(2000 + i), Port: 80}
		s := tcp.NewSender(eng, sb, sa, ra, id, 20_000_000, tcp.NewCubic(), nil)
		r := tcp.NewReceiver(eng, reverse, ra, sa, id, 20_000_000, nil)
		muxA.Register(sa, s)
		muxB.Register(ra, r)
		s.Start()
	}
	eng.RunUntil(30 * sim.Second)
	if frac := sb.OOOFraction(); frac < 0.05 {
		t.Fatalf("OOO fraction %.3f on 4 imbalanced paths, want > 5%%", frac)
	}
	if sb.Mode() != ModeDisabled {
		t.Fatalf("mode = %v, want disabled under multipath imbalance", sb.Mode())
	}
}

func TestSinglePathLowOOO(t *testing.T) {
	tp := newTopo(t, true, 48e6, 50*sim.Millisecond, 1<<22, Config{})
	for i := 0; i < 10; i++ {
		s, _ := tp.addFlow(10_000_000, tcp.NewCubic())
		s.Start()
	}
	tp.eng.RunUntil(20 * sim.Second)
	if frac := tp.sb.OOOFraction(); frac > 0.01 {
		t.Fatalf("OOO fraction %.4f on a single path, want ≤ 1%%", frac)
	}
	if tp.sb.Mode() == ModeDisabled {
		t.Fatal("disabled on a single path")
	}
}

// TestElasticCrossTrafficTriggersPassThrough reproduces the Fig 10 mode
// switching: a backlogged loss-based cross flow must flip the sendbox to
// pass-through; its departure must restore delay control.
func TestElasticCrossTrafficTriggersPassThrough(t *testing.T) {
	rate := 96e6
	rtt := 50 * sim.Millisecond
	buf := 2 * int(rate/8*rtt.Seconds())
	tp := newTopo(t, true, rate, rtt, buf, Config{})
	s, _ := tp.addFlow(1<<40, tcp.NewCubic())
	s.Start()
	tp.eng.RunUntil(20 * sim.Second)
	if tp.sb.Mode() != ModeDelayControl {
		t.Fatalf("mode = %v before cross traffic", tp.sb.Mode())
	}
	// Backlogged elastic cross flow arrives. Mode can flap at phase
	// boundaries (the cross flow's share shrinks once we compete), so
	// assert on time spent in pass-through rather than an instant.
	cs, _ := tp.addCrossFlow(1<<40, tcp.NewCubic())
	cs.Start()
	passTicks, ticks := 0, 0
	sim.Tick(tp.eng, 100*sim.Millisecond, func() {
		if tp.eng.Now() < 30*sim.Second {
			return
		}
		ticks++
		if tp.sb.Mode() == ModePassThrough {
			passTicks++
		}
	})
	tp.eng.RunUntil(50 * sim.Second)
	if frac := float64(passTicks) / float64(ticks); frac < 0.3 {
		t.Fatalf("spent %.0f%% of the cross-traffic phase in pass-through, want ≥ 30%%", frac*100)
	}
	// Bundle must get a fair share: cross flow should not starve it.
	ackedBefore := s.Acked()
	tp.eng.RunUntil(70 * sim.Second)
	bundleRate := float64(s.Acked()-ackedBefore) * 8 / 20
	if bundleRate < 0.2*rate {
		t.Fatalf("bundle got %.1f Mbit/s of %.0f in pass-through, want ≥ 20%%", bundleRate/1e6, rate/1e6)
	}
}

func TestModeStringAndDefaults(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeDelayControl: "delay-control",
		ModePassThrough:  "pass-through",
		ModeDisabled:     "disabled",
		Mode(99):         "unknown",
	} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
	var cfg Config
	cfg.fillDefaults()
	if cfg.Algorithm != "copa" || cfg.InitialEpochN != 16 || !*cfg.EnablePulses {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestFloorPow2(t *testing.T) {
	cases := map[float64]uint64{0.3: 1, 1: 1, 2: 2, 3: 2, 64: 64, 100: 64, 1e9: 1 << 20}
	for in, want := range cases {
		if got := floorPow2(in); got != want {
			t.Fatalf("floorPow2(%v) = %d, want %d", in, got, want)
		}
	}
}

func TestCrossTrafficEstimateThroughBoxes(t *testing.T) {
	// With an un-bundled CBR-ish cross load of ~half the link, the
	// sendbox's cross-traffic estimate should be meaningfully positive.
	rate := 48e6
	rtt := 50 * sim.Millisecond
	tp := newTopo(t, true, rate, rtt, 1<<22, Config{})
	s, _ := tp.addFlow(1<<40, tcp.NewCubic())
	s.Start()
	// Cross: a steady churn of mid-sized flows offering ≈ 19 Mbit/s of the
	// 48 Mbit/s link.
	var spawn func()
	spawn = func() {
		cs, _ := tp.addCrossFlow(1_200_000, tcp.NewCubic())
		cs.Start()
		tp.eng.After(time500ms, spawn)
	}
	spawn()
	// The instantaneous estimate swings with the cross flows' churn;
	// average it over the run.
	var sum float64
	var samples int
	sim.Tick(tp.eng, 100*sim.Millisecond, func() {
		if tp.eng.Now() < 5*sim.Second {
			return
		}
		if m, ok := tp.sb.Measurement(); ok {
			sum += ccalg.CrossTrafficRate(m)
			samples++
		}
	})
	tp.eng.RunUntil(30 * sim.Second)
	if samples == 0 {
		t.Fatal("no measurements")
	}
	if mean := sum / float64(samples); mean < 2e6 {
		t.Fatalf("mean cross-traffic estimate %.1f Mbit/s, want noticeable (> 2)", mean/1e6)
	}
}

const time500ms = 500 * sim.Millisecond
