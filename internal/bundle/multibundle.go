package bundle

import (
	"bundler/internal/netem"
	"bundler/internal/pkt"
)

// BundleClassifier maps an egress packet to the index of the bundle (and
// thus the sendbox-receivebox pair) that carries it — in practice the
// destination site's prefix.
type BundleClassifier func(*pkt.Packet) int

// MultiSendbox is one physical source-site box serving several bundles
// (§9: "a given sendbox will see traffic from multiple bundles"). Each
// bundle keeps its own inner loop, queue, and pacing rate — per-site
// fairness, as §9's rate-allocation discussion requires — and the
// classifier steers each packet to its bundle. Control traffic returning
// from any of the receiveboxes is forwarded to every member box; each
// consumes only messages addressed to it.
type MultiSendbox struct {
	boxes    []*Sendbox
	classify BundleClassifier
	// Misrouted counts packets the classifier mapped out of range.
	Misrouted int
}

// NewMultiSendbox groups the given per-bundle sendboxes behind one
// classifier. classify must return an index in [0, len(boxes)); anything
// else falls back to bundle 0 and is counted.
func NewMultiSendbox(classify BundleClassifier, boxes ...*Sendbox) *MultiSendbox {
	if len(boxes) == 0 {
		panic("bundle: MultiSendbox needs at least one sendbox")
	}
	if classify == nil {
		panic("bundle: MultiSendbox needs a classifier")
	}
	return &MultiSendbox{boxes: boxes, classify: classify}
}

// Receive implements netem.Receiver.
func (m *MultiSendbox) Receive(p *pkt.Packet) {
	if p.Proto == pkt.ProtoCtl {
		for _, b := range m.boxes {
			if p.Dst == b.ctlAddr {
				b.Receive(p)
				return
			}
		}
		// Not ours: drop silently (mirrors a host discarding a stray
		// datagram).
		pkt.Put(p)
		return
	}
	i := m.classify(p)
	if i < 0 || i >= len(m.boxes) {
		m.Misrouted++
		i = 0
	}
	m.boxes[i].Receive(p)
}

// Box returns the i-th member sendbox.
func (m *MultiSendbox) Box(i int) *Sendbox { return m.boxes[i] }

// Stop halts every member's control loop.
func (m *MultiSendbox) Stop() {
	for _, b := range m.boxes {
		b.Stop()
	}
}

var _ netem.Receiver = (*MultiSendbox)(nil)
