package bundle

import (
	"testing"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/sim"
	"bundler/internal/tcp"
	"bundler/internal/udpapp"
)

func TestTunnelModeMeasurementPipeline(t *testing.T) {
	tp := newTopo(t, true, 96e6, 50*sim.Millisecond, 1<<22, Config{TunnelMode: true})
	s, r := tp.addFlow(40_000_000, tcp.NewCubic())
	s.Start()
	tp.eng.RunUntil(10 * sim.Second)
	if !s.Done() || !r.Done() {
		t.Fatal("tunnelled transfer incomplete")
	}
	if tp.sb.AcksMatched < 50 {
		t.Fatalf("only %d matched ACKs in tunnel mode", tp.sb.AcksMatched)
	}
	// Explicit markers are unique: no spurious matches at all.
	if tp.sb.AcksSpurious != 0 {
		t.Fatalf("%d spurious ACKs with explicit markers", tp.sb.AcksSpurious)
	}
	if tp.sb.MinRTT() < 50*sim.Millisecond || tp.sb.MinRTT() > 60*sim.Millisecond {
		t.Fatalf("minRTT = %v, want ≈ 50ms", tp.sb.MinRTT())
	}
}

func TestTunnelModeDecapsulatesBeforeDelivery(t *testing.T) {
	// The TCP receiver computes payload from p.Size; if the receivebox
	// failed to strip the encapsulation, reassembly would corrupt. A
	// completed transfer of the exact size proves decapsulation.
	tp := newTopo(t, true, 48e6, 40*sim.Millisecond, 1<<22, Config{TunnelMode: true})
	s, r := tp.addFlow(5_000_000, tcp.NewCubic())
	s.Start()
	tp.eng.RunUntil(10 * sim.Second)
	if !r.Done() {
		t.Fatal("receiver incomplete: encapsulation leaked into payload accounting")
	}
	_ = s
}

// TestTunnelModeWorksWithoutIPIDEntropy is the IPv6 story: hash-based
// sampling needs per-packet header entropy (the IPv4 ID field); with
// constant headers every packet of a flow hashes identically and sampling
// degenerates. Tunnel mode is immune.
func TestTunnelModeWorksWithoutIPIDEntropy(t *testing.T) {
	for _, tunnel := range []bool{false, true} {
		tp := newTopo(t, true, 48e6, 40*sim.Millisecond, 1<<22, Config{TunnelMode: tunnel})
		stripped := 0
		// Interpose a tap that zeroes IPIDs before the sendbox, emulating
		// a header with no per-packet entropy.
		site := tp.siteEgress
		tp.siteEgress = netem.ReceiverFunc(func(p *pkt.Packet) {
			p.IPID = 0
			stripped++
			site.Receive(p)
		})
		s, _ := tp.addFlow(1<<40, tcp.NewCubic())
		s.Start()
		tp.eng.RunUntil(8 * sim.Second)
		if stripped == 0 {
			t.Fatal("IPID zeroing tap never ran")
		}
		if tunnel && tp.sb.AcksMatched < 50 {
			t.Fatalf("tunnel mode: %d matched ACKs without IPID entropy, want plenty", tp.sb.AcksMatched)
		}
		if !tunnel {
			// Hash mode degenerates: a flow with constant headers is
			// either sampled on every packet or never. Either way the
			// epoch spacing no longer tracks N, which is the failure
			// tunnel mode exists to avoid. Log for visibility.
			t.Logf("hash mode without entropy: %d matched ACKs", tp.sb.AcksMatched)
		}
	}
}

// TestProtocolAgnosticBundle exercises §4.4's core claim: out-of-band
// feedback makes Bundler indifferent to the transport. A bundle carrying
// TCP bulk, a paced UDP stream, and closed-loop UDP request/response
// probes measures and schedules all of it.
func TestProtocolAgnosticBundle(t *testing.T) {
	tp := newTopo(t, true, 48e6, 50*sim.Millisecond, 1<<22, Config{})
	bulk, _ := tp.addFlow(1<<40, tcp.NewCubic())
	bulk.Start()

	// A paced UDP stream (application-limited) into the bundle.
	cbrDst := pkt.Addr{Host: 7001, Port: 9}
	sink := &netem.Sink{}
	tp.muxB.Register(cbrDst, sink)
	cbr := udpapp.NewCBRStream(tp.eng, tp.siteEgress, pkt.Addr{Host: 7000, Port: 9}, cbrDst, 900, 5e6, pkt.MTU)
	cbr.Start()
	defer cbr.Stop()

	// Closed-loop UDP probes into the bundle.
	pingSrc := pkt.Addr{Host: 7002, Port: 9}
	pingDst := pkt.Addr{Host: 7003, Port: 9}
	client := udpapp.NewPingClient(tp.eng, tp.siteEgress, pingSrc, pingDst, 901)
	server := udpapp.NewPingServer(tp.eng, tp.reverse, pingDst)
	tp.muxA.Register(pingSrc, client)
	tp.muxB.Register(pingDst, server)
	client.Start()

	tp.eng.RunUntil(20 * sim.Second)
	if tp.sb.AcksMatched < 100 {
		t.Fatalf("measurement starved with mixed protocols: %d", tp.sb.AcksMatched)
	}
	if sink.Count < 1000 {
		t.Fatalf("UDP stream delivered only %d packets", sink.Count)
	}
	if client.RTTs.N() < 50 {
		t.Fatalf("only %d probe round trips", client.RTTs.N())
	}
	// SFQ at the sendbox isolates the probes from the TCP bulk: their
	// RTTs stay near the base despite the backlogged flow.
	if med := client.RTTs.Median(); med > 75 {
		t.Fatalf("probe median RTT %.1fms behind TCP bulk, want < 75ms (SFQ isolation)", med)
	}
	// Throughput still near capacity with the mixed bundle.
	gput := float64(bulk.Acked())*8/20 + 5e6
	if gput < 0.7*48e6 {
		t.Fatalf("mixed-bundle goodput %.1f Mbit/s", gput/1e6)
	}
}
