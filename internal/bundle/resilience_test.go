package bundle

import (
	"testing"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/tcp"
)

// lossyTopo is the standard test topology with Bernoulli loss injected on
// the Bundler control channel (congestion ACKs and/or epoch updates),
// exercising the §4.5 robustness claims: a lost boundary's rates are
// simply computed over a longer epoch, and power-of-two epoch sizes keep
// sendbox/receivebox samples comparable across lost updates.
func lossyTopo(t *testing.T, ackLoss, updateLoss float64) (*topo, *netem.Lossy, *netem.Lossy) {
	t.Helper()
	eng := sim.NewEngine(5)
	tp := &topo{eng: eng, muxA: tcp.NewMux(), muxB: tcp.NewMux()}
	tp.demux = netem.NewDemux()
	rate, rtt := 96e6, 50*sim.Millisecond
	buf := 2 * int(rate/8*rtt.Seconds())
	tp.bottleneck = netem.NewLink(eng, "bottleneck", rate, rtt/2, qdisc.NewFIFO(buf), tp.demux)
	tp.reverse = netem.NewLink(eng, "reverse", 1e9, rtt/2, qdisc.NewFIFO(1<<24), tp.muxA)

	sbCtl := pkt.Addr{Host: ctlHostSend, Port: 1}
	rbCtl := pkt.Addr{Host: ctlHostRecv, Port: 1}

	// Congestion ACKs leave the receivebox through a lossy element.
	ackDrop := netem.NewLossy(eng, ackLoss, tp.reverse)
	ackDrop.Filter = func(p *pkt.Packet) bool { return p.Proto == pkt.ProtoCtl }
	tp.rb = NewReceivebox(eng, ackDrop, rbCtl, sbCtl, 16)

	// Epoch updates leave the sendbox through another lossy element.
	updateDrop := netem.NewLossy(eng, updateLoss, tp.bottleneck)
	updateDrop.Filter = func(p *pkt.Packet) bool { return p.Proto == pkt.ProtoCtl }
	tp.sb = NewSendbox(eng, Config{}, updateDrop, sbCtl, rbCtl)
	// Rewire the pacer target: data goes through updateDrop too, but the
	// filter exempts it.
	tp.muxA.Register(sbCtl, tp.sb)
	tp.muxB.Register(rbCtl, tp.rb)
	tp.demux.Default = netem.NewTap(tp.rb.Observe, tp.muxB)
	tp.siteEgress = tp.sb
	return tp, ackDrop, updateDrop
}

func TestSurvivesCongestionACKLoss(t *testing.T) {
	tp, ackDrop, _ := lossyTopo(t, 0.10, 0)
	s, _ := tp.addFlow(1<<40, tcp.NewCubic())
	s.Start()
	tp.eng.RunUntil(20 * sim.Second)
	if ackDrop.Dropped == 0 {
		t.Fatal("loss element never fired; test is vacuous")
	}
	if tp.sb.AcksMatched < 100 {
		t.Fatalf("only %d matched ACKs under 10%% ctl loss", tp.sb.AcksMatched)
	}
	// The control loop keeps the bundle near capacity despite losing a
	// tenth of its feedback.
	gput := float64(s.Acked()) * 8 / 20
	if gput < 0.7*96e6 {
		t.Fatalf("goodput %.1f Mbit/s under ACK loss, want ≥ 70%% of 96", gput/1e6)
	}
	if tp.sb.Mode() != ModeDelayControl {
		t.Fatalf("mode = %v, want delay-control", tp.sb.Mode())
	}
	// Lost boundary ACKs must not be misread as reordering.
	if frac := tp.sb.OOOFraction(); frac > 0.02 {
		t.Fatalf("OOO fraction %.3f under pure loss, want ≈ 0", frac)
	}
}

func TestSurvivesEpochUpdateLoss(t *testing.T) {
	// Drop ALL epoch-size updates: the receivebox stays at its initial
	// power-of-two epoch forever. Sub/superset sampling keeps the
	// measurement loop alive (§4.5).
	tp, _, updateDrop := lossyTopo(t, 0, 1.0)
	s, _ := tp.addFlow(1<<40, tcp.NewCubic())
	s.Start()
	tp.eng.RunUntil(20 * sim.Second)
	if updateDrop.Dropped == 0 {
		t.Fatal("no epoch updates were sent/dropped; test is vacuous")
	}
	if tp.rb.EpochUpdates != 0 {
		t.Fatal("an epoch update got through the 100% loss element")
	}
	if tp.rb.EpochN() != 16 {
		t.Fatalf("receivebox epoch changed to %d despite total update loss", tp.rb.EpochN())
	}
	if tp.sb.AcksMatched < 100 {
		t.Fatalf("only %d matched ACKs with a stale receivebox epoch", tp.sb.AcksMatched)
	}
	gput := float64(s.Acked()) * 8 / 20
	if gput < 0.7*96e6 {
		t.Fatalf("goodput %.1f Mbit/s with stale epochs, want ≥ 70%% of 96", gput/1e6)
	}
}

func TestExactEpochSizingDegradesUnderUpdateLoss(t *testing.T) {
	// The ablation knob: without power-of-two rounding, a stale
	// receivebox epoch samples a set with almost no overlap, so most
	// congestion ACKs are spurious. This is the failure mode the paper's
	// rounding rule exists to prevent.
	eng := sim.NewEngine(5)
	tp := &topo{eng: eng, muxA: tcp.NewMux(), muxB: tcp.NewMux()}
	tp.demux = netem.NewDemux()
	rate, rtt := 96e6, 50*sim.Millisecond
	tp.bottleneck = netem.NewLink(eng, "bottleneck", rate, rtt/2, qdisc.NewFIFO(2*int(rate/8*rtt.Seconds())), tp.demux)
	tp.reverse = netem.NewLink(eng, "reverse", 1e9, rtt/2, qdisc.NewFIFO(1<<24), tp.muxA)
	sbCtl := pkt.Addr{Host: ctlHostSend, Port: 1}
	rbCtl := pkt.Addr{Host: ctlHostRecv, Port: 1}
	tp.rb = NewReceivebox(eng, tp.reverse, rbCtl, sbCtl, 17) // deliberately co-prime-ish
	drop := netem.NewLossy(eng, 1.0, tp.bottleneck)
	drop.Filter = func(p *pkt.Packet) bool { return p.Proto == pkt.ProtoCtl }
	tp.sb = NewSendbox(eng, Config{ExactEpochSize: true, InitialEpochN: 16}, drop, sbCtl, rbCtl)
	tp.muxA.Register(sbCtl, tp.sb)
	tp.muxB.Register(rbCtl, tp.rb)
	tp.demux.Default = netem.NewTap(tp.rb.Observe, tp.muxB)
	tp.siteEgress = tp.sb
	s, _ := tp.addFlow(1<<40, tcp.NewCubic())
	s.Start()
	tp.eng.RunUntil(20 * sim.Second)
	matched, spurious := tp.sb.AcksMatched, tp.sb.AcksSpurious
	if matched+spurious == 0 {
		t.Fatal("no ACK traffic at all")
	}
	if frac := float64(matched) / float64(matched+spurious); frac > 0.5 {
		t.Fatalf("matched fraction %.2f with incomparable epochs; expected degradation", frac)
	}
}

func TestLossyElementBernoulli(t *testing.T) {
	eng := sim.NewEngine(11)
	sink := &netem.Sink{}
	l := netem.NewLossy(eng, 0.25, sink)
	const n = 20000
	for i := 0; i < n; i++ {
		l.Receive(&pkt.Packet{Size: 100})
	}
	got := float64(l.Dropped) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("loss rate %.3f, want ≈ 0.25", got)
	}
	if sink.Count+l.Dropped != n {
		t.Fatal("packets vanished")
	}
}

// TestSurvivesReversePathJitter injects ±2 ms of uniform delay variation
// on the control channel: windowed measurement (§4.5) must absorb it
// without tripping the multipath heuristic or losing rate control.
func TestSurvivesReversePathJitter(t *testing.T) {
	eng := sim.NewEngine(6)
	tp := &topo{eng: eng, muxA: tcp.NewMux(), muxB: tcp.NewMux()}
	tp.demux = netem.NewDemux()
	rate, rtt := 96e6, 50*sim.Millisecond
	tp.bottleneck = netem.NewLink(eng, "bottleneck", rate, rtt/2,
		qdisc.NewFIFO(2*int(rate/8*rtt.Seconds())), tp.demux)
	tp.reverse = netem.NewLink(eng, "reverse", 1e9, rtt/2, qdisc.NewFIFO(1<<24), tp.muxA)
	sbCtl := pkt.Addr{Host: ctlHostSend, Port: 1}
	rbCtl := pkt.Addr{Host: ctlHostRecv, Port: 1}
	jitter := netem.NewJitter(eng, 2*sim.Millisecond, tp.reverse)
	tp.rb = NewReceivebox(eng, jitter, rbCtl, sbCtl, 16)
	tp.sb = NewSendbox(eng, Config{}, tp.bottleneck, sbCtl, rbCtl)
	tp.muxA.Register(sbCtl, tp.sb)
	tp.muxB.Register(rbCtl, tp.rb)
	tp.demux.Default = netem.NewTap(tp.rb.Observe, tp.muxB)
	tp.siteEgress = tp.sb

	s, _ := tp.addFlow(1<<40, tcp.NewCubic())
	s.Start()
	tp.eng.RunUntil(20 * sim.Second)
	if tp.sb.Mode() == ModeDisabled {
		t.Fatalf("2ms control jitter tripped the multipath heuristic (ooo=%.3f)", tp.sb.OOOFraction())
	}
	gput := float64(s.Acked()) * 8 / 20
	if gput < 0.7*96e6 {
		t.Fatalf("goodput %.1f Mbit/s under control jitter", gput/1e6)
	}
	// Jitter biases the capacity estimate slightly upward (compressed ACK
	// gaps read as extra rate), which a delay controller converts into a
	// modest standing queue — bounded, not runaway.
	est := tp.sb.RTTEstimates.MeanOver(5*sim.Second, 20*sim.Second)
	if est < 48 || est > 75 {
		t.Fatalf("RTT estimate mean %.1fms under jitter, want bounded (<75ms)", est)
	}
}
