package bundle

import (
	"testing"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/tcp"
)

// TestMultiSendboxTwoBundles builds one physical box carrying two bundles
// to two destination sites over a shared bottleneck (§9). Each bundle's
// inner loop must operate independently, and both should see their queues
// controlled.
func TestMultiSendboxTwoBundles(t *testing.T) {
	eng := sim.NewEngine(1)
	muxA := tcp.NewMux()
	demux := netem.NewDemux()
	const rate, rtt = 96e6, 50 * sim.Millisecond
	bottleneck := netem.NewLink(eng, "bottleneck", rate, rtt/2,
		qdisc.NewFIFO(2*int(rate/8*rtt.Seconds())), demux)
	reverse := netem.NewLink(eng, "reverse", 10e9, rtt/2, qdisc.NewFIFO(1<<26), muxA)

	// Two bundles: destination hosts < 5000 go to site B1, others to B2.
	mkPair := func(id uint32) (*Sendbox, *Receivebox, *tcp.Mux) {
		sbCtl := pkt.Addr{Host: 1<<30 + id, Port: 1}
		rbCtl := pkt.Addr{Host: 1<<30 + id, Port: 2}
		sb := NewSendbox(eng, Config{}, bottleneck, sbCtl, rbCtl)
		rb := NewReceivebox(eng, reverse, rbCtl, sbCtl, 0)
		muxB := tcp.NewMux()
		muxB.Register(rbCtl, rb)
		demux.Route(rbCtl.Host, muxB)
		muxA.Register(sbCtl, sb)
		return sb, rb, muxB
	}
	sb1, rb1, muxB1 := mkPair(1)
	sb2, rb2, muxB2 := mkPair(2)
	demux.Default = netem.ReceiverFunc(func(p *pkt.Packet) {
		if p.Dst.Host < 5000 {
			rb1.Observe(p)
			muxB1.Receive(p)
		} else {
			rb2.Observe(p)
			muxB2.Receive(p)
		}
	})

	multi := NewMultiSendbox(func(p *pkt.Packet) int {
		if p.Dst.Host < 5000 {
			return 0
		}
		return 1
	}, sb1, sb2)

	addFlow := func(src, dst uint32, mux *tcp.Mux) *tcp.Sender {
		sa := pkt.Addr{Host: src, Port: 5000}
		da := pkt.Addr{Host: dst, Port: 80}
		id := uint64(dst)
		s := tcp.NewSender(eng, multi, sa, da, id, 1<<40, tcp.NewCubic(), nil)
		r := tcp.NewReceiver(eng, reverse, da, sa, id, 1<<40, nil)
		muxA.Register(sa, s)
		mux.Register(da, r)
		s.Start()
		return s
	}
	var b1Flows, b2Flows []*tcp.Sender
	for i := uint32(0); i < 4; i++ {
		b1Flows = append(b1Flows, addFlow(1000+i, 2000+i, muxB1))
		b2Flows = append(b2Flows, addFlow(6000+i, 7000+i, muxB2))
	}

	eng.RunUntil(20 * sim.Second)
	multi.Stop()

	if sb1.AcksMatched < 100 || sb2.AcksMatched < 100 {
		t.Fatalf("inner loops starved: %d / %d matched ACKs", sb1.AcksMatched, sb2.AcksMatched)
	}
	if multi.Misrouted != 0 {
		t.Fatalf("%d misrouted packets", multi.Misrouted)
	}
	var tput1, tput2 float64
	for _, s := range b1Flows {
		tput1 += float64(s.Acked()) * 8 / 20 / 1e6
	}
	for _, s := range b2Flows {
		tput2 += float64(s.Acked()) * 8 / 20 / 1e6
	}
	if tput1+tput2 < 0.7*96 {
		t.Fatalf("aggregate %.1f Mbit/s across two bundles, want ≥ 70%% of 96", tput1+tput2)
	}
	// Per-site fairness (§9): neither bundle starves.
	if tput1 < 0.25*(tput1+tput2) || tput2 < 0.25*(tput1+tput2) {
		t.Fatalf("unfair split: %.1f / %.1f Mbit/s", tput1, tput2)
	}
	if multi.Box(0) != sb1 || multi.Box(1) != sb2 {
		t.Fatal("Box accessor wrong")
	}
}

func TestMultiSendboxValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty box list")
		}
	}()
	NewMultiSendbox(func(*pkt.Packet) int { return 0 })
}
