// Package bundle implements the paper's contribution: the Bundler
// middlebox pair. A Sendbox at the source site paces and schedules the
// site's egress traffic at a rate computed by an inner congestion-control
// loop; a Receivebox at the destination site observes arriving traffic and
// returns out-of-band congestion ACKs. Rate-limiting the bundle at the
// delay-controlled rate moves the bottleneck queue from the network into
// the sendbox, where the operator's scheduling policy (SFQ, FQ-CoDel,
// priorities, ...) can act on it.
//
// The measurement machinery follows §4.5: both boxes hash each packet's
// header subset with FNV-1a; packets whose hash is ≡ 0 modulo the epoch
// size are epoch boundaries. The receivebox sends a congestion ACK
// carrying the boundary's hash and the bundle's cumulative received bytes;
// the sendbox matches it against recorded send state to compute RTT, send
// rate, and receive rate, averaged over a sliding window of about one RTT.
// The epoch size adapts to ¼·minRTT·send_rate and is rounded down to a
// power of two so stale receivebox epochs stay strict sub/supersets.
//
// All rates (pacing, measured send/receive) are bits/second; byte counts
// are int64 bytes; every timer and timestamp is clock.Time.
package bundle

import (
	"math"

	"bundler/internal/ccalg"
	"bundler/internal/clock"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/stats"
)

// CtlAck is the congestion ACK the receivebox returns for each epoch
// boundary packet it observes (§4.5): the boundary's hash and the running
// count of bundle bytes received.
type CtlAck struct {
	Hash      uint64
	BytesRcvd int64
}

// CtlEpochUpdate tells the receivebox the new epoch size (§4.5).
type CtlEpochUpdate struct {
	N uint64
}

// CtlPacketSize is the on-wire size of a control message (a small UDP
// datagram in the prototype).
const CtlPacketSize = 60

// Mode is the sendbox's operating mode (§5).
type Mode int

// Sendbox modes.
const (
	// ModeDelayControl is normal operation: the inner loop's delay-based
	// rate moves the bottleneck queue into the sendbox.
	ModeDelayControl Mode = iota
	// ModePassThrough engages when buffer-filling cross traffic is
	// detected: traffic passes at a PI-controlled rate that holds a small
	// standing sendbox queue (the Nimbus up-pulse budget, §5.1).
	ModePassThrough
	// ModeDisabled engages when imbalanced multipath is detected (§5.2):
	// rate control is released entirely, reverting to the status quo.
	ModeDisabled
)

func (m Mode) String() string {
	switch m {
	case ModeDelayControl:
		return "delay-control"
	case ModePassThrough:
		return "pass-through"
	case ModeDisabled:
		return "disabled"
	}
	return "unknown"
}

// Config parameterizes a Sendbox.
type Config struct {
	// Algorithm names the inner-loop controller: "copa" (default),
	// "basicdelay", or "bbr".
	Algorithm string
	// Scheduler is the qdisc applied to the bundle's queue at the
	// sendbox. Defaults to SFQ with 1024 buckets and a 4096-packet cap.
	Scheduler qdisc.Qdisc
	// EnablePulses turns on the Nimbus pulses + elasticity detector.
	// Default true (the paper always runs Copa with Nimbus detection).
	EnablePulses *bool
	// EnableMultipathDetection turns on the §5.2 out-of-order heuristic.
	// Default true.
	EnableMultipathDetection *bool
	// InitialEpochN is the initial epoch size in packets (power of two).
	InitialEpochN uint64
	// InitialRate seeds the pacer before the first measurement.
	InitialRate float64
	// ControlInterval is the CCP invocation cadence (§6.2). Default 10 ms.
	ControlInterval clock.Time
	// OOOThreshold is the out-of-order fraction above which multipath
	// imbalance is declared (§7.6 determines 5 %).
	OOOThreshold float64
	// ExactEpochSize disables the power-of-two rounding of N (§4.5) for
	// the ablation benchmark: without rounding, a delayed or lost
	// epoch-size update leaves the two boxes sampling incomparable sets.
	ExactEpochSize bool
	// MeasurementWindowRTTs scales the sliding measurement window
	// (default 1 RTT per §4.5); the ablation benchmark compares against
	// single-epoch operation (a small fraction).
	MeasurementWindowRTTs float64
	// TunnelMode switches epoch identification from header hashing to an
	// explicit encapsulation header (§4.5's IPv6-capable alternative):
	// the sendbox wraps every packet (+TunnelOverhead bytes on the wire),
	// marks exactly every N-th with a unique sequence number, and the
	// receivebox echoes markers instead of hashing. Deterministic
	// spacing, no hash collisions, no IP-ID dependence — at the cost of
	// per-packet overhead and the loss of transparent fail-open.
	TunnelMode bool
	// DisableTelemetry stops the box from recording its trace series
	// (RTTEstimates, RateEstimates, ModeTrace, RateTrace, QueueTrace).
	// The traces grow by a few points per control tick for the whole
	// run; scenarios that never read them — the N-site mesh runs
	// thousands of boxes and reports only flow-level summaries — avoid
	// O(ticks × boxes) retained memory by opting out. Recording only:
	// control decisions are identical either way.
	DisableTelemetry bool
}

func (c *Config) fillDefaults() {
	if c.Algorithm == "" {
		c.Algorithm = "copa"
	}
	if c.Scheduler == nil {
		// Linux SFQ defaults to a 127-packet limit; the prototype's TBF
		// inner qdisc is similarly shallow. A modestly larger default
		// keeps per-flow scheduling headroom without inflating endhost
		// RTTs by hundreds of milliseconds.
		c.Scheduler = qdisc.NewSFQ(1024, 1000)
	}
	if c.EnablePulses == nil {
		t := true
		c.EnablePulses = &t
	}
	if c.EnableMultipathDetection == nil {
		t := true
		c.EnableMultipathDetection = &t
	}
	if c.InitialEpochN == 0 {
		c.InitialEpochN = 16
	}
	if c.InitialRate == 0 {
		c.InitialRate = 10e6
	}
	if c.ControlInterval == 0 {
		c.ControlInterval = 10 * clock.Millisecond
	}
	if c.OOOThreshold == 0 {
		c.OOOThreshold = 0.05
	}
	if c.MeasurementWindowRTTs == 0 {
		c.MeasurementWindowRTTs = 1
	}
}

// boundary is the sendbox's record of one epoch boundary packet.
// Records are recycled through a per-sendbox free list (newBoundary /
// freeBoundary): one is retired every time a congestion ACK matches, an
// entry goes stale, or the table overflows.
type boundary struct {
	hash      uint64
	seq       uint64 // dequeue order
	tsent     clock.Time
	bytesSent int64
}

// epochMeasurement is one matched (boundary, congestion-ACK) sample.
type epochMeasurement struct {
	at       clock.Time
	rtt      clock.Time
	sendRate float64
	recvRate float64
}

// ackPoint is one congestion-ACK arrival, kept for multi-epoch rate
// computation.
type ackPoint struct {
	at    clock.Time
	bytes int64
}

// oooWindowSize is the sliding window (in congestion ACKs) over which the
// out-of-order fraction is computed.
const oooWindowSize = 256

// Sendbox is the source-site Bundler box. It implements netem.Receiver:
// feed it the site's egress packets (and the receivebox's control
// messages returning on the reverse path).
type Sendbox struct {
	eng        clock.Clock
	cfg        Config
	link       *netem.Link
	downstream netem.Receiver
	ctlAddr    pkt.Addr
	peerCtl    pkt.Addr

	// Inner loop.
	alg      ccalg.Alg
	pulser   *ccalg.Pulser
	detector *ccalg.Detector
	pi       *ccalg.PIController
	mode     Mode

	// Epoch/measurement state.
	epochN        uint64
	boundaries    map[uint64]*boundary
	boundaryOrder []uint64
	seqCounter    uint64
	maxAckedSeq   uint64
	bytesDequeued int64
	pktsDequeued  int64
	bytesIn       int64
	lastBytesIn   int64
	arrivalEwma   float64 // smoothed bundle arrival rate, bits/s

	lastAcked      *boundary
	lastAckArrival clock.Time
	lastBytesRcvd  int64
	ackHistory     []ackPoint // recent ACK arrivals for multi-epoch rates

	window     []epochMeasurement
	minRTT     clock.Time
	latestRTT  clock.Time
	muFilter   muMaxFilter
	muSmooth   float64
	lastEpochZ float64

	oooRing  [oooWindowSize]bool
	oooNext  int
	oooCount int
	oooTotal int

	elasticVotes  []bool
	lastDetectAt  clock.Time
	modeChangedAt clock.Time
	dqEwma        float64 // smoothed in-network queueing delay, seconds
	xcEwma        float64 // smoothed cross-traffic estimate, bits/s
	starvedSince  clock.Time
	ipid          uint16
	ticker        clock.Ticker
	bFree         []*boundary // boundary record free list
	pool          *pkt.Pool

	// OnEpochSample, when set, observes every matched epoch measurement
	// (the Figure 5/6 microbenchmark pairs these against per-packet
	// ground truth recorded at the emulated bottleneck).
	OnEpochSample func(hash uint64, rtt clock.Time, at clock.Time)

	// Telemetry for experiments.
	RTTEstimates  stats.TimeSeries // milliseconds
	RateEstimates stats.TimeSeries // receive rate, Mbit/s
	ModeTrace     stats.TimeSeries // Mode as float
	RateTrace     stats.TimeSeries // applied pacing rate, Mbit/s
	QueueTrace    stats.TimeSeries // sendbox queue delay, ms
	AcksMatched   int
	AcksSpurious  int
}

// NewSendbox builds the source-site box. Packets it forwards are paced
// through cfg.Scheduler and handed to downstream (the first hop of the WAN
// path). ctlAddr is this box's control-plane address (congestion ACKs are
// sent to it); peerCtl is the receivebox's control address for epoch-size
// updates.
func NewSendbox(eng clock.Clock, cfg Config, downstream netem.Receiver, ctlAddr, peerCtl pkt.Addr) *Sendbox {
	cfg.fillDefaults()
	s := &Sendbox{
		eng:        eng,
		cfg:        cfg,
		downstream: downstream,
		ctlAddr:    ctlAddr,
		peerCtl:    peerCtl,
		alg:        ccalg.New(cfg.Algorithm),
		pulser:     ccalg.NewPulser(),
		pi:         ccalg.NewPIController(),
		epochN:     cfg.InitialEpochN,
		boundaries: make(map[uint64]*boundary),
	}
	s.detector = ccalg.NewDetector(s.pulser.Frequency(), 1/cfg.ControlInterval.Seconds())
	// The pacer is a link whose qdisc is the operator's scheduler; its
	// rate is rewritten by the control loop, exactly like the patched TBF
	// in the prototype (§6.1).
	s.link = netem.NewLink(eng, "sendbox-pacer", cfg.InitialRate, 0, cfg.Scheduler, downstream)
	s.link.OnTransmitted(s.onTransmitted)
	s.ticker = eng.Tick(cfg.ControlInterval, s.controlTick)
	return s
}

// SetPool makes the box mint control packets from a partition-local
// pool (nil keeps the shared global pool).
func (s *Sendbox) SetPool(pl *pkt.Pool) { s.pool = pl }

// Receive implements netem.Receiver. Control messages addressed to the
// box are consumed (and released); everything else enters the bundle's
// paced queue.
func (s *Sendbox) Receive(p *pkt.Packet) {
	if p.Proto == pkt.ProtoCtl && p.Dst == s.ctlAddr {
		if ack, ok := p.Payload.(*CtlAck); ok {
			s.onCtlAck(ack)
		}
		pkt.Put(p)
		return
	}
	s.bytesIn += int64(p.Size)
	if s.cfg.TunnelMode {
		p.Tunneled = true
		p.TunnelSeq = 0
		p.Size += pkt.TunnelOverhead
	}
	s.link.Receive(p)
}

// onTransmitted runs as each packet finishes serializing out of the
// sendbox: this is where epoch boundaries are recorded, because tsent must
// exclude both the sendbox's queueing delay and the packet's own
// serialization time (which balloons at low pacing rates and would read as
// phantom network queueing).
func (s *Sendbox) onTransmitted(p *pkt.Packet) {
	if p.Proto == pkt.ProtoCtl {
		return
	}
	s.bytesDequeued += int64(p.Size)
	s.pktsDequeued++
	var h uint64
	if s.cfg.TunnelMode {
		// Deterministic marking: exactly every N-th packet, identified by
		// a unique sequence number carried in the encapsulation header.
		if uint64(s.pktsDequeued)%s.epochN != 0 {
			return
		}
		s.seqCounter++
		h = s.seqCounter
		p.TunnelSeq = h
	} else {
		h = pkt.EpochHash(p)
		if h%s.epochN != 0 {
			return
		}
		s.seqCounter++
	}
	s.evictStaleBoundaries()
	if _, dup := s.boundaries[h]; !dup {
		b := s.newBoundary()
		*b = boundary{hash: h, seq: s.seqCounter, tsent: s.eng.Now(), bytesSent: s.bytesDequeued}
		s.boundaries[h] = b
		s.boundaryOrder = append(s.boundaryOrder, h)
		// Bound state: Bundler keeps no per-flow state, and its boundary
		// table is bounded too.
		if len(s.boundaryOrder) > 4096 {
			old := s.boundaryOrder[0]
			s.boundaryOrder = s.boundaryOrder[1:]
			if ob, ok := s.boundaries[old]; ok {
				delete(s.boundaries, old)
				s.freeBoundary(ob)
			}
		}
	}
}

func (s *Sendbox) newBoundary() *boundary {
	if n := len(s.bFree); n > 0 {
		b := s.bFree[n-1]
		s.bFree = s.bFree[:n-1]
		return b
	}
	return new(boundary)
}

func (s *Sendbox) freeBoundary(b *boundary) {
	s.bFree = append(s.bFree, b)
}

// evictStaleBoundaries drops records whose congestion ACK can no longer
// plausibly arrive. Staleness matters beyond memory: the IP ID field wraps
// every 2^16 packets per flow, so a record that lingers past the wrap
// period (≈8 s for one flow at 96 Mbit/s) can be matched by a *different*
// packet's ACK, yielding a garbage RTT and a phantom reordering signal.
func (s *Sendbox) evictStaleBoundaries() {
	maxAge := 8 * s.latestRTT
	if maxAge < clock.Second {
		maxAge = clock.Second
	}
	cutoff := s.eng.Now() - maxAge
	for len(s.boundaryOrder) > 0 {
		h := s.boundaryOrder[0]
		b, ok := s.boundaries[h]
		if ok && b.tsent >= cutoff {
			break
		}
		s.boundaryOrder = s.boundaryOrder[1:]
		if ok {
			delete(s.boundaries, h)
			s.freeBoundary(b)
		}
	}
}

// onCtlAck matches a congestion ACK against recorded boundaries and
// produces one epoch measurement (Figure 4).
func (s *Sendbox) onCtlAck(ack *CtlAck) {
	now := s.eng.Now()
	b, ok := s.boundaries[ack.Hash]
	if !ok {
		// Receivebox sampled a superset (stale, smaller epoch size) or
		// the record aged out: ignore, per §4.5.
		s.AcksSpurious++
		return
	}
	delete(s.boundaries, ack.Hash)
	s.AcksMatched++

	// Out-of-order tracking (§5.2): congestion ACKs should arrive in the
	// order their boundaries were sent.
	ooo := b.seq < s.maxAckedSeq
	if !ooo {
		s.maxAckedSeq = b.seq
	}
	s.recordOOO(ooo)

	rtt := now - b.tsent
	if s.minRTT == 0 || rtt < s.minRTT {
		s.minRTT = rtt
	}
	s.latestRTT = rtt
	if !s.cfg.DisableTelemetry {
		s.RTTEstimates.Add(now, rtt.Millis())
	}
	if s.OnEpochSample != nil {
		s.OnEpochSample(ack.Hash, rtt, now)
	}

	if s.lastAcked != nil && b.seq > s.lastAcked.seq &&
		b.tsent > s.lastAcked.tsent && now > s.lastAckArrival {
		sendRate := float64(b.bytesSent-s.lastAcked.bytesSent) * 8 / (b.tsent - s.lastAcked.tsent).Seconds()
		recvRate := float64(ack.BytesRcvd-s.lastBytesRcvd) * 8 / (now - s.lastAckArrival).Seconds()
		if recvRate >= 0 && sendRate >= 0 {
			s.window = append(s.window, epochMeasurement{at: now, rtt: rtt, sendRate: sendRate, recvRate: recvRate})
			if !s.cfg.DisableTelemetry {
				s.RateEstimates.Add(now, recvRate/1e6)
			}
			// Capacity samples span several epochs: a single inter-ACK
			// gap is at the mercy of reverse-path jitter (a compressed
			// gap reads as a rate far above the line rate, and a
			// max-filter would lock onto it).
			s.ackHistory = append(s.ackHistory, ackPoint{at: now, bytes: ack.BytesRcvd})
			if len(s.ackHistory) > 8 {
				s.ackHistory = s.ackHistory[1:]
			}
			if n := len(s.ackHistory); n >= 5 {
				first, last := s.ackHistory[0], s.ackHistory[n-1]
				if last.at > first.at {
					muSample := float64(last.bytes-first.bytes) * 8 / (last.at - first.at).Seconds()
					s.muFilter.update(now, muSample, 10*clock.Second)
				}
			}
			// Instantaneous cross-traffic estimate from this epoch pair.
			// The detector needs per-epoch resolution: averaging over an
			// RTT window would smear the 5 Hz pulse response whenever
			// buffer-filling cross traffic inflates the RTT beyond the
			// pulse period.
			s.lastEpochZ = ccalg.CrossTrafficRate(ccalg.Measurement{
				RTT: rtt, MinRTT: s.minRTT,
				SendRate: sendRate, RecvRate: recvRate, Mu: s.mu(),
			})
		}
	}
	if s.lastAcked == nil || b.seq > s.lastAcked.seq {
		if s.lastAcked != nil {
			s.freeBoundary(s.lastAcked)
		}
		s.lastAcked = b
		s.lastAckArrival = now
		s.lastBytesRcvd = ack.BytesRcvd
	} else {
		s.freeBoundary(b)
	}

	s.maybeUpdateEpochSize()
}

func (s *Sendbox) recordOOO(ooo bool) {
	if s.oooTotal >= oooWindowSize {
		if s.oooRing[s.oooNext] {
			s.oooCount--
		}
	} else {
		s.oooTotal++
	}
	s.oooRing[s.oooNext] = ooo
	if ooo {
		s.oooCount++
	}
	s.oooNext = (s.oooNext + 1) % oooWindowSize
}

// OOOFraction reports the out-of-order fraction over the recent window.
func (s *Sendbox) OOOFraction() float64 {
	if s.oooTotal == 0 {
		return 0
	}
	return float64(s.oooCount) / float64(s.oooTotal)
}

// maybeUpdateEpochSize recomputes N = ¼·minRTT·send_rate (in packets),
// rounded down to a power of two, and notifies the receivebox on change.
func (s *Sendbox) maybeUpdateEpochSize() {
	if s.minRTT == 0 || s.pktsDequeued == 0 {
		return
	}
	m, ok := s.currentMeasurement()
	if !ok || m.SendRate <= 0 {
		return
	}
	avgPkt := float64(s.bytesDequeued) / float64(s.pktsDequeued)
	pps := m.SendRate / 8 / avgPkt
	target := 0.25 * s.minRTT.Seconds() * pps
	var n uint64
	if s.cfg.ExactEpochSize {
		// Ablation: no rounding. Sub/superset resilience across
		// epoch-size updates is lost.
		n = uint64(target)
		if n < 1 {
			n = 1
		}
	} else {
		n = floorPow2(target)
	}
	if n == s.epochN {
		return
	}
	s.epochN = n
	s.sendEpochUpdate(n)
}

// sendEpochUpdate ships the new epoch size out-of-band. Control-plane
// messages bypass the bundle's own pacer (they originate from the box, not
// from bundled traffic) and enter the WAN path directly.
func (s *Sendbox) sendEpochUpdate(n uint64) {
	s.ipid++
	p := s.pool.Get()
	p.IPID = s.ipid
	p.Src = s.ctlAddr
	p.Dst = s.peerCtl
	p.Proto = pkt.ProtoCtl
	p.Size = CtlPacketSize
	p.Payload = &CtlEpochUpdate{N: n}
	p.SentAt = s.eng.Now()
	s.downstream.Receive(p)
}

func floorPow2(x float64) uint64 {
	if x < 1 {
		return 1
	}
	n := uint64(1)
	for n*2 <= uint64(x) && n < 1<<20 {
		n *= 2
	}
	return n
}

// currentMeasurement averages the epoch window spanning the last RTT.
func (s *Sendbox) currentMeasurement() (ccalg.Measurement, bool) {
	now := s.eng.Now()
	horizon := clock.Time(float64(s.latestRTT) * s.cfg.MeasurementWindowRTTs)
	if floor := clock.Time(float64(50*clock.Millisecond) * s.cfg.MeasurementWindowRTTs); horizon < floor {
		horizon = floor
	}
	if horizon < 10*clock.Millisecond {
		horizon = 10 * clock.Millisecond
	}
	cutoff := now - horizon
	keep := s.window[:0]
	for _, e := range s.window {
		if e.at >= cutoff {
			keep = append(keep, e)
		}
	}
	s.window = keep
	if len(s.window) == 0 {
		return ccalg.Measurement{}, false
	}
	var m ccalg.Measurement
	var rttSum clock.Time
	for _, e := range s.window {
		rttSum += e.rtt
		m.SendRate += e.sendRate
		m.RecvRate += e.recvRate
	}
	n := float64(len(s.window))
	m.RTT = rttSum / clock.Time(len(s.window))
	m.SendRate /= n
	m.RecvRate /= n
	m.MinRTT = s.minRTT
	m.Mu = s.mu()
	m.LatestRTT = s.window[len(s.window)-1].rtt
	return m, true
}

// controlTick is the 10 ms CCP invocation (§6.2): feed the algorithm the
// windowed measurement, run detection, and set the pacing rate.
func (s *Sendbox) controlTick() {
	now := s.eng.Now()
	s.decayMu()
	m, ok := s.currentMeasurement()
	if ok {
		s.alg.OnMeasurement(m, now)
		// Smoothed congestion state for the mode machine (~1 s constant).
		dq := (m.RTT - s.minRTT).Seconds()
		if dq < 0 {
			dq = 0
		}
		s.dqEwma = 0.99*s.dqEwma + 0.01*dq
		s.xcEwma = 0.99*s.xcEwma + 0.01*ccalg.CrossTrafficRate(m)
	}
	if *s.cfg.EnablePulses && s.AcksMatched > 0 {
		// Zero-order hold of the most recent per-epoch estimate.
		s.detector.AddSample(s.lastEpochZ)
	}
	s.updateMode(ok, now)

	// Smoothed bundle arrival rate (the endhosts' aggregate demand).
	in := float64(s.bytesIn-s.lastBytesIn) * 8 / s.cfg.ControlInterval.Seconds()
	s.lastBytesIn = s.bytesIn
	s.arrivalEwma = 0.95*s.arrivalEwma + 0.05*in

	var rate float64
	switch s.mode {
	case ModeDelayControl:
		rate = s.alg.Rate(now)
		// Delay controllers back off against any queue, including ones
		// they did not create (short cross-traffic bursts that vanish on
		// their own). Floor the rate at a fraction of the endhosts'
		// demand so a transient foreign queue cannot starve the bundle.
		if floor := 0.3 * s.arrivalEwma; rate < floor {
			rate = floor
		}
	case ModePassThrough:
		rate = s.pi.Update(s.QueueDelay(), s.mu(), now)
		// "Let the traffic pass": the PI may throttle to build its 10 ms
		// pulse budget, but never much below the endhosts' demand — a
		// queue target must not become a choke point when arrivals dip.
		if floor := 0.8 * s.arrivalEwma; rate < floor {
			rate = floor
		}
	case ModeDisabled:
		rate = 1e11 // effectively unlimited: status quo
	}
	if s.mode != ModeDisabled && *s.cfg.EnablePulses && s.pulsesActive() {
		rate += s.pulser.Offset(now, s.mu())
	}
	// Floor the pacing rate: a bundle must always retain enough rate to
	// keep the measurement loop alive (one packet per few RTTs would
	// stall recovery entirely).
	if floor := 0.02 * s.mu(); rate < floor {
		rate = floor
	}
	if rate < 100e3 {
		rate = 100e3
	}
	s.link.SetRate(rate)
	if !s.cfg.DisableTelemetry {
		s.RateTrace.Add(now, s.link.Rate()/1e6)
		s.ModeTrace.Add(now, float64(s.mode))
		s.QueueTrace.Add(now, s.QueueDelay().Millis())
	}
}

// pulsesActive decides whether the Nimbus pulses are worth their
// utilization cost right now. Pulses exist to classify cross traffic; with
// a negligible cross-traffic share there is nothing to classify, and every
// down-pulse idles the bottleneck (the delay controller holds almost no
// standing queue to absorb it). In pass-through mode pulses always run —
// detecting the buffer-filler's departure is the whole point of the
// maintained 10 ms queue (§5.1).
func (s *Sendbox) pulsesActive() bool {
	if s.mode == ModePassThrough {
		return true
	}
	return s.detector.WindowMean() >= 0.05*s.mu()
}

// mu returns the capacity estimate: the windowed max of measured receive
// rates, floored by a slowly decaying envelope. The envelope matters when
// the bundle itself is the only load: a throttled bundle measures only its
// own (reduced) receive rate, and a bare max-filter would let the capacity
// estimate chase it downward — a self-reinforcing collapse.
func (s *Sendbox) mu() float64 {
	mu := s.muFilter.get()
	if s.muSmooth > mu {
		mu = s.muSmooth
	}
	if mu <= 0 {
		mu = s.cfg.InitialRate
	}
	return mu
}

// decayMu advances the envelope once per control tick (≈5 %/second).
func (s *Sendbox) decayMu() {
	if v := s.muFilter.get(); v > s.muSmooth {
		s.muSmooth = v
	} else {
		s.muSmooth *= 0.9995
	}
}

// updateMode runs the §5 state machine: multipath imbalance dominates;
// otherwise elasticity votes flip between delay control and pass-through.
func (s *Sendbox) updateMode(haveMeas bool, now clock.Time) {
	if *s.cfg.EnableMultipathDetection && s.oooTotal >= 32 {
		frac := s.OOOFraction()
		if s.mode != ModeDisabled && frac > s.cfg.OOOThreshold {
			s.setMode(ModeDisabled, now)
			return
		}
		if s.mode == ModeDisabled {
			if frac < s.cfg.OOOThreshold/4 && now-s.modeChangedAt > 5*clock.Second {
				s.setMode(ModeDelayControl, now)
			}
			return
		}
	} else if s.mode == ModeDisabled {
		return
	}

	if !*s.cfg.EnablePulses || !haveMeas {
		return
	}
	// Starvation fallback: when the delay controller is pinned at its
	// floor while cross traffic owns the bottleneck (huge standing queue,
	// dominant cross share), classification details no longer matter —
	// competing via the endhost loops is the only sensible action. This
	// is the paper's §3 litmus test applied directly.
	if s.mode == ModeDelayControl {
		mu := s.mu()
		starved := s.link.Rate() <= 0.1*mu && s.xcEwma >= 0.5*mu &&
			s.dqEwma > 4*s.pi.Target.Seconds()
		if !starved {
			s.starvedSince = 0
		} else {
			if s.starvedSince == 0 {
				s.starvedSince = now
			}
			if now-s.starvedSince > 2*clock.Second {
				s.pi.Reset(s.link.Rate(), now)
				s.setMode(ModePassThrough, now)
				return
			}
		}
	}
	// Evaluate elasticity every 100 ms.
	if now-s.lastDetectAt < 100*clock.Millisecond || !s.detector.Ready() {
		return
	}
	s.lastDetectAt = now
	gate := 0.2
	if s.mode == ModePassThrough {
		// Asymmetric gate: while competing fairly, the cross traffic's
		// share shrinks; requiring the full entry magnitude to *stay*
		// would flap between modes.
		gate = 0.05
	}
	elastic := s.detector.ElasticGated(s.mu(), gate)
	s.elasticVotes = append(s.elasticVotes, elastic)
	if len(s.elasticVotes) > 20 {
		s.elasticVotes = s.elasticVotes[1:]
	}
	recent := s.elasticVotes
	if len(recent) > 5 {
		recent = recent[len(recent)-5:]
	}
	yes := 0
	for _, v := range recent {
		if v {
			yes++
		}
	}
	switch s.mode {
	case ModeDelayControl:
		if yes >= 3 {
			s.pi.Reset(s.link.Rate(), now)
			s.setMode(ModePassThrough, now)
		}
	case ModePassThrough:
		all := 0
		for _, v := range s.elasticVotes {
			if v {
				all++
			}
		}
		// Re-engage once two seconds of votes come back clean AND it is
		// safe to do so (§3's litmus test): either the in-network queue
		// has calmed, or whatever queue remains is mostly self-inflicted
		// (the cross traffic's share is modest), in which case delay
		// control is exactly the tool to remove it. Exiting while a
		// buffer-filler still owns the queue would immediately
		// re-collapse the delay controller.
		queueCalm := s.dqEwma < math.Max(0.25*s.minRTT.Seconds(), 0.005)
		selfInflicted := s.xcEwma < 0.3*s.mu()
		if len(s.elasticVotes) >= 20 && all == 0 && (queueCalm || selfInflicted) &&
			now-s.modeChangedAt > 2*clock.Second {
			s.setMode(ModeDelayControl, now)
		}
	}
}

func (s *Sendbox) setMode(m Mode, now clock.Time) {
	s.mode = m
	s.modeChangedAt = now
	s.elasticVotes = s.elasticVotes[:0]
}

// Mode reports the current operating mode.
func (s *Sendbox) Mode() Mode { return s.mode }

// QueueDelay reports the sendbox queue's drain time at the capacity
// estimate.
func (s *Sendbox) QueueDelay() clock.Time {
	mu := s.mu()
	return clock.Time(float64(s.link.Queue().Bytes()*8) / mu * float64(clock.Second))
}

// QueueBytes reports the sendbox queue occupancy.
func (s *Sendbox) QueueBytes() int { return s.link.Queue().Bytes() }

// CurrentRate reports the applied pacing rate in bits/s.
func (s *Sendbox) CurrentRate() float64 { return s.link.Rate() }

// EpochN reports the current epoch size in packets.
func (s *Sendbox) EpochN() uint64 { return s.epochN }

// MinRTT reports the minimum RTT the inner loop has observed.
func (s *Sendbox) MinRTT() clock.Time { return s.minRTT }

// Measurement exposes the current windowed measurement for tests and
// experiment harnesses.
func (s *Sendbox) Measurement() (ccalg.Measurement, bool) { return s.currentMeasurement() }

// Stop halts the control loop (end of experiment).
func (s *Sendbox) Stop() { s.ticker.Stop() }

// muMaxFilter is a time-windowed maximum for the capacity estimate.
type muMaxFilter struct {
	samples []muSample
}

type muSample struct {
	at clock.Time
	v  float64
}

func (m *muMaxFilter) update(now clock.Time, v float64, window clock.Time) {
	cut := 0
	for cut < len(m.samples) && now-m.samples[cut].at > window {
		cut++
	}
	m.samples = m.samples[cut:]
	for len(m.samples) > 0 && m.samples[len(m.samples)-1].v <= v {
		m.samples = m.samples[:len(m.samples)-1]
	}
	m.samples = append(m.samples, muSample{now, v})
}

func (m *muMaxFilter) get() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	return m.samples[0].v
}

// Receivebox is the destination-site box: a passive tap plus a
// control-message endpoint. Wire Observe into a netem.Tap on the site's
// ingress, register Receive at the site mux under the box's control
// address, and point out at the reverse path toward the sendbox.
type Receivebox struct {
	eng     clock.Clock
	out     netem.Receiver
	addr    pkt.Addr
	peerCtl pkt.Addr

	epochN    uint64
	bytesRcvd int64
	pktsRcvd  int64
	ipid      uint16
	pool      *pkt.Pool

	// AcksSent counts congestion ACKs emitted.
	AcksSent int
	// EpochUpdates counts epoch-size changes applied.
	EpochUpdates int
}

// NewReceivebox builds the destination-site box. out carries congestion
// ACKs back toward the sendbox (they are addressed to peerCtl).
func NewReceivebox(eng clock.Clock, out netem.Receiver, addr, peerCtl pkt.Addr, initialEpochN uint64) *Receivebox {
	if initialEpochN == 0 {
		initialEpochN = 16
	}
	return &Receivebox{eng: eng, out: out, addr: addr, peerCtl: peerCtl, epochN: initialEpochN}
}

// SetPool makes the box mint congestion ACKs from a partition-local
// pool (nil keeps the shared global pool).
func (r *Receivebox) SetPool(pl *pkt.Pool) { r.pool = pl }

// Observe is the datapath tap: count bundle bytes and emit a congestion
// ACK for each epoch boundary. Control packets are not bundle traffic and
// are skipped. Tunnel-mode packets are decapsulated here (the receivebox
// strips the outer header before the packet enters the site), and their
// explicit markers replace hash sampling.
func (r *Receivebox) Observe(p *pkt.Packet) {
	if p.Proto == pkt.ProtoCtl {
		return
	}
	r.bytesRcvd += int64(p.Size)
	r.pktsRcvd++
	var marker uint64
	if p.Tunneled {
		marker = p.TunnelSeq
		p.Tunneled = false
		p.TunnelSeq = 0
		p.Size -= pkt.TunnelOverhead
		if marker == 0 {
			return
		}
	} else {
		h := pkt.EpochHash(p)
		if h%r.epochN != 0 {
			return
		}
		marker = h
	}
	r.ipid++
	r.AcksSent++
	ack := r.pool.Get()
	ack.IPID = r.ipid
	ack.Src = r.addr
	ack.Dst = r.peerCtl
	ack.Proto = pkt.ProtoCtl
	ack.Size = CtlPacketSize
	ack.Payload = &CtlAck{Hash: marker, BytesRcvd: r.bytesRcvd}
	ack.SentAt = r.eng.Now()
	r.out.Receive(ack)
}

// Receive implements netem.Receiver for the control channel (epoch-size
// updates from the sendbox). The message is consumed and released.
func (r *Receivebox) Receive(p *pkt.Packet) {
	if p.Proto != pkt.ProtoCtl || p.Dst != r.addr {
		pkt.Put(p)
		return
	}
	if up, ok := p.Payload.(*CtlEpochUpdate); ok && up.N > 0 {
		r.epochN = up.N
		r.EpochUpdates++
	}
	pkt.Put(p)
}

// EpochN reports the receivebox's current epoch size.
func (r *Receivebox) EpochN() uint64 { return r.epochN }

// BytesReceived reports cumulative bundle bytes observed.
func (r *Receivebox) BytesReceived() int64 { return r.bytesRcvd }
