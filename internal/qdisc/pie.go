package qdisc

import (
	"bundler/internal/clock"
	"bundler/internal/pkt"
)

// PIE implements the Proportional-Integral-controller-Enhanced AQM (Pan et
// al., [39] in the paper): a drop probability updated periodically from
// the estimated queueing delay and its trend, targeting a configured
// latency without per-packet timestamps.
type PIE struct {
	eng clock.Clock

	q     []*pkt.Packet
	head  int
	bytes int
	limit int
	drops int

	target     clock.Time
	alpha      float64 // per (delay error in s)
	beta       float64 // per (delay delta in s)
	dropProb   float64
	lastQDelay clock.Time
	drainRate  float64 // bytes/s EWMA, estimated from dequeues

	// Departure-rate measurement window. winValid is an explicit "a
	// window is open" flag — sim-time 0 is a valid instant, so it cannot
	// double as an uninitialized sentinel — and the window is abandoned
	// whenever the queue empties, so a measurement never spans an idle
	// gap (which would divide real departures by idle wall-time and
	// collapse the drain-rate EWMA).
	winStart clock.Time
	winBytes int
	winValid bool

	ticker clock.Ticker
}

// NewPIE builds a PIE queue with the RFC 8033 defaults: 15 ms target,
// 15 ms update interval, α = 0.125, β = 1.25. Random drop decisions draw
// from the clock's RNG (eng.Rand()), so simulated runs stay reproducible.
func NewPIE(eng clock.Clock, limitPackets int) *PIE {
	if limitPackets <= 0 {
		panic("qdisc: PIE limit must be positive")
	}
	p := &PIE{
		eng: eng, limit: limitPackets,
		target: 15 * clock.Millisecond, alpha: 0.125, beta: 1.25,
	}
	p.ticker = eng.Tick(15*clock.Millisecond, p.update)
	return p
}

// Stop cancels the periodic probability update.
func (p *PIE) Stop() { p.ticker.Stop() }

// qdelay estimates current queueing delay via Little's law from the
// departure-rate estimate.
func (p *PIE) qdelay() clock.Time {
	if p.drainRate <= 0 {
		if p.Len() == 0 {
			return 0
		}
		return p.target // no estimate yet: assume at target
	}
	return clock.FromSeconds(float64(p.bytes) / p.drainRate)
}

func (p *PIE) update() {
	qd := p.qdelay()
	p.dropProb += p.alpha*(qd-p.target).Seconds() + p.beta*(qd-p.lastQDelay).Seconds()
	if p.dropProb < 0 {
		p.dropProb = 0
	}
	if p.dropProb > 1 {
		p.dropProb = 1
	}
	// Decay when idle.
	if qd == 0 && p.lastQDelay == 0 {
		p.dropProb *= 0.98
	}
	p.lastQDelay = qd
}

// Enqueue implements Qdisc with PIE's probabilistic early drop.
func (p *PIE) Enqueue(pk *pkt.Packet) bool {
	if p.Len() >= p.limit {
		p.drops++
		return false
	}
	// Don't early-drop when nearly empty (burst allowance).
	if p.bytes > 2*pkt.MTU && p.eng.Rand().Float64() < p.dropProb {
		p.drops++
		return false
	}
	p.q = append(p.q, pk)
	p.bytes += pk.Size
	return true
}

// Dequeue implements Qdisc and feeds the departure-rate estimator.
func (p *PIE) Dequeue() *pkt.Packet {
	if p.head == len(p.q) {
		return nil
	}
	out := p.q[p.head]
	p.q[p.head] = nil
	p.head++
	p.bytes -= out.Size
	if p.head == len(p.q) {
		p.q = p.q[:0]
		p.head = 0
	} else if p.head > 64 && p.head*2 >= len(p.q) {
		p.q = append(p.q[:0], p.q[p.head:]...)
		p.head = 0
	}
	// Departure-rate EWMA over 100 ms busy-period measurement windows.
	now := p.eng.Now()
	if !p.winValid {
		p.winStart = now
		p.winBytes = 0
		p.winValid = true
	}
	p.winBytes += out.Size
	if dt := now - p.winStart; dt >= 100*clock.Millisecond {
		rate := float64(p.winBytes) / dt.Seconds()
		if p.drainRate == 0 {
			p.drainRate = rate
		} else {
			p.drainRate = 0.9*p.drainRate + 0.1*rate
		}
		p.winStart = now
		p.winBytes = 0
	}
	if p.Len() == 0 {
		// Queue drained: close the window so the next busy period starts
		// fresh instead of averaging departures over the idle gap.
		p.winValid = false
	}
	return out
}

// Len implements Qdisc.
func (p *PIE) Len() int { return len(p.q) - p.head }

// Bytes implements Qdisc.
func (p *PIE) Bytes() int { return p.bytes }

// Drops implements Qdisc.
func (p *PIE) Drops() int { return p.drops }
