package qdisc

import (
	"math"

	"bundler/internal/clock"
	"bundler/internal/pkt"
)

// FQCoDel implements the FQ-CoDel queue discipline (RFC 8290): per-flow
// queues served by deficit round robin with new-flow priority, each flow
// policed by the CoDel AQM (target 5 ms, interval 100 ms). The paper
// evaluates it as an alternative sendbox policy in §7.2, reporting ~97 %
// lower median end-to-end RTTs.
type FQCoDel struct {
	eng      clock.Clock
	flows    []fqFlow
	newFlows []int
	oldFlows []int
	quantum  int
	limit    int
	count    int
	bytes    int
	drops    int
	target   clock.Time
	interval clock.Time
}

type fqFlow struct {
	q       []*pkt.Packet
	head    int
	bytes   int
	deficit int
	state   fqFlowState
	codel   codelState
}

type fqFlowState uint8

const (
	fqIdle fqFlowState = iota
	fqNew
	fqOld
)

type codelState struct {
	firstAboveTime clock.Time
	dropNext       clock.Time
	dropCount      int
	lastDropCount  int
	dropping       bool
}

// NewFQCoDel returns an FQ-CoDel instance with RFC 8290 defaults.
func NewFQCoDel(eng clock.Clock, nflows, limitPackets int) *FQCoDel {
	if nflows <= 0 || limitPackets <= 0 {
		panic("qdisc: FQCoDel sizes must be positive")
	}
	return &FQCoDel{
		eng:      eng,
		flows:    make([]fqFlow, nflows),
		quantum:  pkt.MTU,
		limit:    limitPackets,
		target:   5 * clock.Millisecond,
		interval: 100 * clock.Millisecond,
	}
}

// Enqueue implements Qdisc.
func (f *FQCoDel) Enqueue(p *pkt.Packet) bool {
	if f.count >= f.limit {
		// RFC 8290 drops from the fattest flow on overflow; rejecting the
		// arrival is the common simplification when it maps to that flow.
		fi := f.fattest()
		f.drops++
		if fi < 0 || fi == f.flowOf(p) {
			return false
		}
		f.dropHead(fi)
	}
	fi := f.flowOf(p)
	fl := &f.flows[fi]
	p.EnqueuedAt = f.eng.Now()
	fl.q = append(fl.q, p)
	fl.bytes += p.Size
	f.count++
	f.bytes += p.Size
	if fl.state == fqIdle {
		fl.state = fqNew
		fl.deficit = f.quantum
		f.newFlows = append(f.newFlows, fi)
	}
	return true
}

func (f *FQCoDel) flowOf(p *pkt.Packet) int {
	return int(pkt.FlowHash(p, 0) % uint64(len(f.flows)))
}

func (f *FQCoDel) fattest() int {
	best, bestBytes := -1, 0
	scan := func(list []int) {
		for _, fi := range list {
			if b := f.flows[fi].bytes; b > bestBytes {
				best, bestBytes = fi, b
			}
		}
	}
	scan(f.newFlows)
	scan(f.oldFlows)
	return best
}

func (fl *fqFlow) len() int { return len(fl.q) - fl.head }

func (fl *fqFlow) pop() *pkt.Packet {
	p := fl.q[fl.head]
	fl.q[fl.head] = nil
	fl.head++
	fl.bytes -= p.Size
	if fl.head == len(fl.q) {
		fl.q = fl.q[:0]
		fl.head = 0
	}
	return p
}

func (f *FQCoDel) dropHead(fi int) {
	fl := &f.flows[fi]
	p := fl.pop()
	f.count--
	f.bytes -= p.Size
	pkt.Put(p) // internal drop: the queue owned it
}

// Dequeue implements Qdisc: serve new flows first, then old flows, running
// each head packet through CoDel.
func (f *FQCoDel) Dequeue() *pkt.Packet {
	for {
		var list *[]int
		if len(f.newFlows) > 0 {
			list = &f.newFlows
		} else if len(f.oldFlows) > 0 {
			list = &f.oldFlows
		} else {
			return nil
		}
		fi := (*list)[0]
		fl := &f.flows[fi]
		if fl.deficit <= 0 {
			fl.deficit += f.quantum
			// Rotate to the back of old flows.
			*list = (*list)[1:]
			fl.state = fqOld
			f.oldFlows = append(f.oldFlows, fi)
			continue
		}
		p := f.codelDequeue(fl)
		if p == nil {
			// Flow went empty: a new flow leaves the lists entirely; an
			// old flow is removed (RFC 8290 would keep it briefly, a
			// detail that does not affect scheduling order here).
			*list = (*list)[1:]
			fl.state = fqIdle
			continue
		}
		fl.deficit -= p.Size
		f.count--
		f.bytes -= p.Size
		return p
	}
}

// codelDequeue runs the CoDel state machine for one flow, returning the
// next packet to forward (dropping sojourn-time violators), or nil if the
// flow has no packets left.
func (f *FQCoDel) codelDequeue(fl *fqFlow) *pkt.Packet {
	now := f.eng.Now()
	c := &fl.codel
	p, ok := f.codelShouldDrop(fl, now)
	if !ok { // queue empty
		c.dropping = false
		return nil
	}
	if c.dropping {
		if p == nil {
			c.dropping = false
			return fl.headPacketPop(f)
		}
		for now >= c.dropNext && c.dropping {
			f.dropPacket(fl)
			c.dropCount++
			p, ok = f.codelShouldDrop(fl, now)
			if !ok {
				c.dropping = false
				return nil
			}
			if p == nil {
				c.dropping = false
				return fl.headPacketPop(f)
			}
			c.dropNext = controlLaw(c.dropNext, f.interval, c.dropCount)
		}
		return fl.headPacketPop(f)
	}
	if p != nil && (now-c.dropNext < f.interval || now-c.firstAboveTime >= f.interval) {
		// Enter dropping state.
		f.dropPacket(fl)
		c.dropping = true
		if now-c.dropNext < f.interval {
			c.dropCount = max(c.dropCount-c.lastDropCount, 1)
		} else {
			c.dropCount = 1
		}
		c.dropNext = controlLaw(now, f.interval, c.dropCount)
		c.lastDropCount = c.dropCount
		np, ok := f.codelShouldDrop(fl, now)
		if !ok {
			c.dropping = false
			return nil
		}
		_ = np
		return fl.headPacketPop(f)
	}
	return fl.headPacketPop(f)
}

// headPacketPop pops the flow's head packet (caller adjusts aggregate
// counters).
func (fl *fqFlow) headPacketPop(f *FQCoDel) *pkt.Packet {
	if fl.len() == 0 {
		return nil
	}
	return fl.pop()
}

// dropPacket drops the flow head and updates aggregate counters.
func (f *FQCoDel) dropPacket(fl *fqFlow) {
	p := fl.pop()
	f.count--
	f.bytes -= p.Size
	f.drops++
	pkt.Put(p) // internal drop: the queue owned it
}

// codelShouldDrop evaluates the head packet's sojourn time. It returns
// (head, true) when the head is above target long enough to be a drop
// candidate, (nil, true) when below target, and (nil, false) when empty.
func (f *FQCoDel) codelShouldDrop(fl *fqFlow, now clock.Time) (*pkt.Packet, bool) {
	if fl.len() == 0 {
		fl.codel.firstAboveTime = 0
		return nil, false
	}
	head := fl.q[fl.head]
	sojourn := now - head.EnqueuedAt
	if sojourn < f.target || fl.bytes <= pkt.MTU {
		fl.codel.firstAboveTime = 0
		return nil, true
	}
	if fl.codel.firstAboveTime == 0 {
		fl.codel.firstAboveTime = now + f.interval
		return nil, true
	}
	if now < fl.codel.firstAboveTime {
		return nil, true
	}
	return head, true
}

func controlLaw(t, interval clock.Time, count int) clock.Time {
	return t + clock.Time(float64(interval)/math.Sqrt(float64(count)))
}

// Len implements Qdisc.
func (f *FQCoDel) Len() int { return f.count }

// Bytes implements Qdisc.
func (f *FQCoDel) Bytes() int { return f.bytes }

// Drops implements Qdisc.
func (f *FQCoDel) Drops() int { return f.drops }
