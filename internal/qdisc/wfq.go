package qdisc

import "bundler/internal/pkt"

// Class describes one scheduler traffic class: the packets whose
// destination port matches Port, weighted Weight in WFQ's service
// shares. Strict priority (SP) and the Meter wrapper reuse the same
// declaration; SP ignores the weight and serves classes in slice order.
type Class struct {
	Name   string
	Port   uint16
	Weight float64
}

// ClassifierByPort maps a packet to the index of the class whose Port
// matches its destination port; unmatched packets fall to the last
// class (the lowest WFQ weight / SP priority by convention).
func ClassifierByPort(classes []Class) Classifier {
	byPort := make(map[uint16]int, len(classes))
	for i, c := range classes {
		byPort[c.Port] = i
	}
	last := len(classes) - 1
	return func(p *pkt.Packet) int {
		if i, ok := byPort[p.Dst.Port]; ok {
			return i
		}
		return last
	}
}

// WFQ is weighted fair queueing over a fixed class set, using
// self-clocked virtual finish times (SCFQ, Golestani '94): an arriving
// packet is stamped finish = max(V, class's last finish) + size/weight,
// where V is the finish tag of the packet most recently dequeued, and
// dequeue serves the earliest finish tag. Long-run throughput shares
// converge to the configured weights whenever the classes stay
// backlogged — the §7.2 "flexible queueing policies" family extended
// from strict priority to proportional shares.
type WFQ struct {
	classes  []wfqClass
	classify Classifier
	limit    int // total packets
	count    int
	bytes    int
	drops    int
	vtime    float64 // finish tag of the last dequeued packet
}

type wfqClass struct {
	weight  float64
	q       []*pkt.Packet
	fin     []float64 // finish tags, parallel to q
	head    int
	bytes   int
	lastFin float64
}

// NewWFQ builds a WFQ scheduler holding at most limitPackets across all
// classes. Every class weight must be positive; classify must map
// packets to a class index (out-of-range results clamp to the last
// class). It panics on invalid construction; user-supplied specs are
// validated by scenario.ParseScheduler and the topo compiler first.
func NewWFQ(limitPackets int, classes []Class, classify Classifier) *WFQ {
	if limitPackets <= 0 {
		panic("qdisc: WFQ limit must be positive")
	}
	if len(classes) == 0 {
		panic("qdisc: WFQ needs at least one class")
	}
	w := &WFQ{classes: make([]wfqClass, len(classes)), classify: classify, limit: limitPackets}
	for i, c := range classes {
		if c.Weight <= 0 {
			panic("qdisc: WFQ class weight must be positive")
		}
		w.classes[i].weight = c.Weight
	}
	return w
}

func (w *WFQ) clampClass(p *pkt.Packet) int {
	i := w.classify(p)
	if i < 0 || i >= len(w.classes) {
		i = len(w.classes) - 1
	}
	return i
}

// Enqueue implements Qdisc; overflow drops from the class holding the
// most bytes (the SFQ/DRR drop-from-fattest rule), rejecting the
// arrival itself when its own class is the fattest.
func (w *WFQ) Enqueue(p *pkt.Packet) bool {
	idx := w.clampClass(p)
	if w.count >= w.limit {
		w.drops++
		fat := w.fattest()
		if fat == idx {
			return false
		}
		w.dropHead(fat)
	}
	cl := &w.classes[idx]
	start := w.vtime
	if cl.lastFin > start {
		start = cl.lastFin
	}
	fin := start + float64(p.Size)/cl.weight
	cl.lastFin = fin
	cl.q = append(cl.q, p)
	cl.fin = append(cl.fin, fin)
	cl.bytes += p.Size
	w.count++
	w.bytes += p.Size
	return true
}

func (w *WFQ) fattest() int {
	best, bestBytes := 0, -1
	for i := range w.classes {
		if w.classes[i].bytes > bestBytes {
			best, bestBytes = i, w.classes[i].bytes
		}
	}
	return best
}

func (cl *wfqClass) len() int { return len(cl.q) - cl.head }

func (cl *wfqClass) pop() *pkt.Packet {
	p := cl.q[cl.head]
	cl.q[cl.head] = nil
	cl.head++
	cl.bytes -= p.Size
	if cl.head == len(cl.q) {
		cl.q = cl.q[:0]
		cl.fin = cl.fin[:0]
		cl.head = 0
	}
	return p
}

func (w *WFQ) dropHead(idx int) {
	p := w.classes[idx].pop()
	w.count--
	w.bytes -= p.Size
	pkt.Put(p) // internal drop: the queue owned it
}

// Dequeue implements Qdisc: the backlogged class with the earliest head
// finish tag wins (first declared breaks ties deterministically).
func (w *WFQ) Dequeue() *pkt.Packet {
	best := -1
	bestFin := 0.0
	for i := range w.classes {
		cl := &w.classes[i]
		if cl.len() == 0 {
			continue
		}
		if fin := cl.fin[cl.head]; best < 0 || fin < bestFin {
			best, bestFin = i, fin
		}
	}
	if best < 0 {
		return nil
	}
	p := w.classes[best].pop()
	w.vtime = bestFin
	w.count--
	w.bytes -= p.Size
	if w.count == 0 {
		// Idle reset keeps the virtual clock small over long runs, so tag
		// arithmetic never loses float precision.
		w.vtime = 0
		for i := range w.classes {
			w.classes[i].lastFin = 0
		}
	}
	return p
}

// Len implements Qdisc.
func (w *WFQ) Len() int { return w.count }

// Bytes implements Qdisc.
func (w *WFQ) Bytes() int { return w.bytes }

// Drops implements Qdisc.
func (w *WFQ) Drops() int { return w.drops }
