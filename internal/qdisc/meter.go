package qdisc

import "bundler/internal/pkt"

// ClassStat accumulates one class's served totals at a Meter.
type ClassStat struct {
	Class   Class
	Packets int64
	Bytes   int64
}

// Meter wraps any Qdisc with per-class service accounting and the
// work-conservation counters the fairness report is built from. Because
// it wraps rather than extends, every scheduler mode — FIFO included —
// yields the same per-class throughput and utilization figures, so a
// fifo/sp/wfq sweep compares like with like. Served packets are
// attributed by destination port against the declared classes;
// unmatched traffic lands in a trailing "other" bucket.
//
// Work conservation is measured at the dequeue boundary: an attempt is
// a Dequeue call made while the inner queue was non-empty, and it is
// served if the call returned a packet. A work-conserving scheduler
// keeps the ratio at exactly 1.0 whenever any class is backlogged.
type Meter struct {
	inner    Qdisc
	stats    []ClassStat // one per class, plus the trailing "other" bucket
	byPort   map[uint16]int
	attempts int64
	served   int64
}

// NewMeter wraps inner with per-class accounting for classes.
func NewMeter(inner Qdisc, classes []Class) *Meter {
	m := &Meter{
		inner:  inner,
		stats:  make([]ClassStat, len(classes)+1),
		byPort: make(map[uint16]int, len(classes)),
	}
	for i, c := range classes {
		m.stats[i].Class = c
		m.byPort[c.Port] = i
	}
	m.stats[len(classes)].Class = Class{Name: "other"}
	return m
}

// Enqueue implements Qdisc.
func (m *Meter) Enqueue(p *pkt.Packet) bool { return m.inner.Enqueue(p) }

// Dequeue implements Qdisc, attributing each served packet to its class.
func (m *Meter) Dequeue() *pkt.Packet {
	backlogged := m.inner.Len() > 0
	p := m.inner.Dequeue()
	if backlogged {
		m.attempts++
		if p != nil {
			m.served++
		}
	}
	if p != nil {
		i, ok := m.byPort[p.Dst.Port]
		if !ok {
			i = len(m.stats) - 1
		}
		m.stats[i].Packets++
		m.stats[i].Bytes += int64(p.Size)
	}
	return p
}

// Len implements Qdisc.
func (m *Meter) Len() int { return m.inner.Len() }

// Bytes implements Qdisc.
func (m *Meter) Bytes() int { return m.inner.Bytes() }

// Drops implements Qdisc.
func (m *Meter) Drops() int { return m.inner.Drops() }

// Stats returns the per-class service totals: one entry per declared
// class in declaration order, plus the "other" bucket only if unmatched
// traffic was actually served.
func (m *Meter) Stats() []ClassStat {
	n := len(m.stats) - 1
	out := make([]ClassStat, n, n+1)
	copy(out, m.stats[:n])
	if m.stats[n].Packets > 0 {
		out = append(out, m.stats[n])
	}
	return out
}

// Attempts reports Dequeue calls made while the queue was backlogged.
func (m *Meter) Attempts() int64 { return m.attempts }

// Served reports backlogged Dequeue calls that returned a packet.
func (m *Meter) Served() int64 { return m.served }

// WorkConservation reports served/attempts — 1.0 (vacuously) when the
// queue was never polled while backlogged.
func (m *Meter) WorkConservation() float64 {
	if m.attempts == 0 {
		return 1
	}
	return float64(m.served) / float64(m.attempts)
}
