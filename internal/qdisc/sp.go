package qdisc

import "bundler/internal/pkt"

// SP is class-based strict priority: classes are served in declaration
// order (index 0 first), and a lower class is never dequeued while a
// higher one is backlogged. It differs from Prio in two ways that make
// it a scheduler mode rather than a filter: the class set is shared
// with WFQ/Meter (one declaration drives all three), and the packet
// budget is shared across classes with priority push-out — a full queue
// admits a higher-priority arrival by evicting from the
// lowest-priority backlogged class, so bulk traffic can never starve
// interactive traffic of buffer space.
type SP struct {
	classes  []spClass
	classify Classifier
	limit    int // total packets
	count    int
	bytes    int
	drops    int
}

type spClass struct {
	q     []*pkt.Packet
	head  int
	bytes int
}

// NewSP builds a strict-priority scheduler holding at most limitPackets
// across all classes, served in the order of classes (weights are
// ignored). classify must map packets to a class index (out-of-range
// results clamp to the last, lowest-priority class).
func NewSP(limitPackets int, classes []Class, classify Classifier) *SP {
	if limitPackets <= 0 {
		panic("qdisc: SP limit must be positive")
	}
	if len(classes) == 0 {
		panic("qdisc: SP needs at least one class")
	}
	return &SP{classes: make([]spClass, len(classes)), classify: classify, limit: limitPackets}
}

// Enqueue implements Qdisc. When full, the arrival is admitted only if
// some strictly lower-priority class is backlogged to evict from;
// otherwise the arrival itself is the lowest-priority packet present
// and is dropped.
func (s *SP) Enqueue(p *pkt.Packet) bool {
	idx := s.classify(p)
	if idx < 0 || idx >= len(s.classes) {
		idx = len(s.classes) - 1
	}
	if s.count >= s.limit {
		s.drops++
		victim := s.lowestBacklogged()
		if victim <= idx {
			return false
		}
		s.dropHead(victim)
	}
	cl := &s.classes[idx]
	cl.q = append(cl.q, p)
	cl.bytes += p.Size
	s.count++
	s.bytes += p.Size
	return true
}

func (s *SP) lowestBacklogged() int {
	for i := len(s.classes) - 1; i >= 0; i-- {
		if s.classes[i].len() > 0 {
			return i
		}
	}
	return -1
}

func (cl *spClass) len() int { return len(cl.q) - cl.head }

func (cl *spClass) pop() *pkt.Packet {
	p := cl.q[cl.head]
	cl.q[cl.head] = nil
	cl.head++
	cl.bytes -= p.Size
	if cl.head == len(cl.q) {
		cl.q = cl.q[:0]
		cl.head = 0
	}
	return p
}

func (s *SP) dropHead(idx int) {
	p := s.classes[idx].pop()
	s.count--
	s.bytes -= p.Size
	pkt.Put(p) // internal drop: the queue owned it
}

// Dequeue implements Qdisc: the highest-priority backlogged class wins.
func (s *SP) Dequeue() *pkt.Packet {
	for i := range s.classes {
		if s.classes[i].len() > 0 {
			p := s.classes[i].pop()
			s.count--
			s.bytes -= p.Size
			return p
		}
	}
	return nil
}

// Len implements Qdisc.
func (s *SP) Len() int { return s.count }

// Bytes implements Qdisc.
func (s *SP) Bytes() int { return s.bytes }

// Drops implements Qdisc.
func (s *SP) Drops() int { return s.drops }
