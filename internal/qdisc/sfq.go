package qdisc

import "bundler/internal/pkt"

// SFQ implements Stochastic Fairness Queueing (McKenney, INFOCOM 1990),
// the sendbox's default scheduling policy in the paper's evaluation. Flows
// are hashed into a fixed number of buckets; active buckets are served
// round-robin, one quantum of bytes per turn (deficit round robin, as the
// Linux implementation effectively provides with its allotments).
type SFQ struct {
	// groups is the hash-indexed slot table, two-level so an SFQ's
	// footprint is proportional to the flows it has actually seen, not
	// to the table size: bucket index bi lives at
	// groups[bi>>sfqGroupShift][bi&sfqGroupMask], and both the 16-slot
	// group and the bucket struct are allocated on first use. Scenarios
	// with thousands of mostly-narrow SFQs (the N-site mesh: one per
	// ordered site pair) would otherwise pay the full table in zeroed,
	// GC-scanned memory each — quadratic in site count.
	groups []*sfqGroup
	// spare is the retired group table from the last re-key, kept so
	// periodic perturbation swaps between two tables (reusing their
	// groups, bucket structs, and packet slices) instead of allocating
	// on every re-key.
	spare    []*sfqGroup
	nbuckets int
	active   []int // round-robin list of non-empty bucket indices
	cursor   int
	quantum  int
	perturb  uint64
	limit    int // total packet cap
	count    int
	bytes    int
	drops    int
}

const (
	sfqGroupShift = 4
	sfqGroupMask  = 1<<sfqGroupShift - 1
)

type sfqGroup [1 << sfqGroupShift]*sfqBucket

type sfqBucket struct {
	q       []*pkt.Packet
	head    int
	bytes   int
	deficit int
	active  bool
}

// NewSFQ returns an SFQ with the given bucket count (power of two
// recommended), total packet limit, and per-turn quantum of one MTU.
func NewSFQ(nbuckets, limitPackets int) *SFQ {
	if nbuckets <= 0 || limitPackets <= 0 {
		panic("qdisc: SFQ sizes must be positive")
	}
	return &SFQ{
		groups:   make([]*sfqGroup, (nbuckets+sfqGroupMask)>>sfqGroupShift),
		nbuckets: nbuckets,
		quantum:  pkt.MTU,
		limit:    limitPackets,
	}
}

// bucketAt returns the bucket at slot bi, or nil if it has never held a
// packet.
func (s *SFQ) bucketAt(bi int) *sfqBucket {
	g := s.groups[bi>>sfqGroupShift]
	if g == nil {
		return nil
	}
	return g[bi&sfqGroupMask]
}

// SetPerturbation re-keys the flow hash, as Linux SFQ does periodically to
// break unlucky collisions. Packets already queued are rehashed into the
// buckets the new key selects: left under the old key, a flow caught
// mid-queue would occupy two round-robin buckets at once and dequeue
// interleaved — in-bundle reordering, which Bundler must never introduce
// (its own §5.2 heuristic reads reordering as a multipath signal).
// Re-keying resets the round-robin cursor and per-bucket deficits; byte
// and packet counts are preserved exactly.
func (s *SFQ) SetPerturbation(p uint64) {
	if p == s.perturb {
		return
	}
	s.perturb = p
	if s.count == 0 {
		return
	}
	old := s.groups
	if s.spare == nil {
		s.spare = make([]*sfqGroup, len(old))
	}
	s.groups = s.spare
	s.active = s.active[:0]
	s.cursor = 0
	s.count, s.bytes = 0, 0
	// Drain the old table in slot order (the order the flat table used),
	// so the rehash admits packets in exactly the legacy sequence.
	for gi := range old {
		g := old[gi]
		if g == nil {
			continue
		}
		for si := range g {
			b := g[si]
			if b == nil {
				continue
			}
			for i := b.head; i < len(b.q); i++ {
				s.push(s.bucketOf(b.q[i]), b.q[i])
			}
		}
	}
	// Retire the old table as the next re-key's spare: clear packet
	// references (a retained pointer would pin pooled packets) and reset
	// per-bucket state so the table comes back clean.
	for gi := range old {
		g := old[gi]
		if g == nil {
			continue
		}
		for si := range g {
			b := g[si]
			if b == nil {
				continue
			}
			for i := range b.q {
				b.q[i] = nil
			}
			*b = sfqBucket{q: b.q[:0]}
		}
	}
	s.spare = old
}

func (s *SFQ) bucketOf(p *pkt.Packet) int {
	return int(pkt.FlowHash(p, s.perturb) % uint64(s.nbuckets))
}

// Enqueue implements Qdisc. When the total limit is exceeded it drops a
// packet from the longest bucket (SFQ's drop-from-fattest policy); the
// arriving packet is only rejected if it belongs to that same bucket.
func (s *SFQ) Enqueue(p *pkt.Packet) bool {
	bi := s.bucketOf(p)
	if s.count >= s.limit {
		fattest := s.fattestBucket()
		s.drops++
		if fattest == bi || fattest < 0 {
			return false
		}
		s.dropHead(fattest)
	}
	s.push(bi, p)
	return true
}

// push appends p to bucket bi (the one the current key selects),
// maintaining byte, packet, and active-list accounting. It is the common
// tail of Enqueue and of the SetPerturbation rehash (whose packets were
// already admitted, so no limit check belongs here).
func (s *SFQ) push(bi int, p *pkt.Packet) {
	g := s.groups[bi>>sfqGroupShift]
	if g == nil {
		g = &sfqGroup{}
		s.groups[bi>>sfqGroupShift] = g
	}
	b := g[bi&sfqGroupMask]
	if b == nil {
		b = &sfqBucket{}
		g[bi&sfqGroupMask] = b
	}
	b.q = append(b.q, p)
	b.bytes += p.Size
	s.count++
	s.bytes += p.Size
	if !b.active {
		b.active = true
		b.deficit = s.quantum
		s.active = append(s.active, bi)
	}
}

func (s *SFQ) fattestBucket() int {
	best, bestLen := -1, 0
	for _, bi := range s.active {
		// Buckets on the active list are always allocated (push put them
		// there).
		if l := s.bucketAt(bi).len(); l > bestLen {
			best, bestLen = bi, l
		}
	}
	return best
}

func (b *sfqBucket) len() int { return len(b.q) - b.head }

func (b *sfqBucket) pop() *pkt.Packet {
	p := b.q[b.head]
	b.q[b.head] = nil
	b.head++
	b.bytes -= p.Size
	if b.head == len(b.q) {
		b.q = b.q[:0]
		b.head = 0
	} else if b.head > 64 && b.head*2 >= len(b.q) {
		b.q = append(b.q[:0], b.q[b.head:]...)
		b.head = 0
	}
	return p
}

func (s *SFQ) dropHead(bi int) {
	b := s.bucketAt(bi)
	p := b.pop()
	s.count--
	s.bytes -= p.Size
	// The bucket stays in the active list; Dequeue removes it when empty.
	pkt.Put(p) // the queue owned it; an internal drop is its end of life
}

// Dequeue implements Qdisc using deficit round robin over active buckets.
func (s *SFQ) Dequeue() *pkt.Packet {
	for len(s.active) > 0 {
		if s.cursor >= len(s.active) {
			s.cursor = 0
		}
		bi := s.active[s.cursor]
		b := s.bucketAt(bi)
		if b.len() == 0 {
			b.active = false
			s.active = append(s.active[:s.cursor], s.active[s.cursor+1:]...)
			continue
		}
		head := b.q[b.head]
		if head.Size > b.deficit {
			b.deficit += s.quantum
			s.cursor++
			continue
		}
		p := b.pop()
		b.deficit -= p.Size
		s.count--
		s.bytes -= p.Size
		if b.len() == 0 {
			b.active = false
			s.active = append(s.active[:s.cursor], s.active[s.cursor+1:]...)
		}
		return p
	}
	return nil
}

// Len implements Qdisc.
func (s *SFQ) Len() int { return s.count }

// Bytes implements Qdisc.
func (s *SFQ) Bytes() int { return s.bytes }

// Drops implements Qdisc.
func (s *SFQ) Drops() int { return s.drops }
