// Package qdisc implements the packet schedulers Bundler enforces at the
// sendbox (§4.2's "flexible queueing policies", evaluated in §7.2) and
// that the emulated bottleneck uses: droptail FIFO, Stochastic Fairness
// Queueing (SFQ), FQ-CoDel, and strict priority.
//
// The interface mirrors the Linux qdisc contract the paper's prototype
// patches into tc: enqueue (possibly dropping), dequeue, and occupancy
// introspection. Queues that make time-based decisions (CoDel) receive the
// simulation engine at construction. Capacity limits are bytes for FIFO,
// RED, and Prio, packets for the flow-queueing disciplines — each
// constructor documents which.
package qdisc

import "bundler/internal/pkt"

// Qdisc is a packet queue with a scheduling discipline.
type Qdisc interface {
	// Enqueue accepts p or drops it, reporting whether it was accepted.
	Enqueue(p *pkt.Packet) bool
	// Dequeue removes and returns the next packet to send, or nil when the
	// queue is empty.
	Dequeue() *pkt.Packet
	// Len reports queued packets.
	Len() int
	// Bytes reports queued bytes.
	Bytes() int
	// Drops reports the cumulative count of dropped packets.
	Drops() int
}

// FIFO is a droptail queue bounded in bytes.
type FIFO struct {
	limit int // bytes
	q     []*pkt.Packet
	head  int
	bytes int
	drops int
}

// NewFIFO returns a droptail FIFO that holds at most limitBytes.
func NewFIFO(limitBytes int) *FIFO {
	if limitBytes <= 0 {
		panic("qdisc: FIFO limit must be positive")
	}
	return &FIFO{limit: limitBytes}
}

// Enqueue implements Qdisc.
func (f *FIFO) Enqueue(p *pkt.Packet) bool {
	if f.bytes+p.Size > f.limit {
		f.drops++
		return false
	}
	f.q = append(f.q, p)
	f.bytes += p.Size
	return true
}

// Dequeue implements Qdisc.
func (f *FIFO) Dequeue() *pkt.Packet {
	if f.head == len(f.q) {
		return nil
	}
	p := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	f.bytes -= p.Size
	// Compact once the dead prefix dominates, to bound memory.
	if f.head > 64 && f.head*2 >= len(f.q) {
		f.q = append(f.q[:0], f.q[f.head:]...)
		f.head = 0
	}
	return p
}

// Len implements Qdisc.
func (f *FIFO) Len() int { return len(f.q) - f.head }

// Bytes implements Qdisc.
func (f *FIFO) Bytes() int { return f.bytes }

// Drops implements Qdisc.
func (f *FIFO) Drops() int { return f.drops }

// Limit reports the byte limit.
func (f *FIFO) Limit() int { return f.limit }
