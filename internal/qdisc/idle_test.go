package qdisc

import (
	"testing"

	"bundler/internal/pkt"
	"bundler/internal/sim"
)

// TestREDIdleDecayRegression pins the idle-period EWMA fix: before it,
// avg was only touched on enqueue, so an average pumped up by a long
// overload episode survived any amount of idle time unchanged and the
// first packets of the next burst were force-dropped (avg ≥ maxTh) on an
// empty queue. Post-fix, the Floyd–Jacobson idle correction decays avg
// by the number of transmission slots the queue sat empty, and the burst
// passes untouched.
func TestREDIdleDecayRegression(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRED(eng, 100*pkt.MTU)

	// Fill the queue to its hard limit...
	for r.Enqueue(mkpkt(0, pkt.MTU)) {
	}
	// ...then keep offering at full occupancy until the EWMA converges
	// near the limit, far above maxTh = 3/4·limit (rejected arrivals
	// still update avg).
	for i := 0; i < 3000; i++ {
		r.Enqueue(mkpkt(0, pkt.MTU))
	}
	if r.avg < float64(r.maxTh) {
		t.Fatalf("setup: avg %.0f did not reach maxTh %d", r.avg, r.maxTh)
	}

	// Drain back-to-back at 1 ms per packet, teaching the service-time
	// estimate, until the queue sits empty.
	for r.Len() > 0 {
		eng.RunUntil(eng.Now() + sim.Millisecond)
		r.Dequeue()
	}

	// Idle for 3 s ≈ 3000 transmission slots: (1-w)^3000 ≈ 0.0025, so
	// the average must land far below minTh.
	eng.RunUntil(eng.Now() + 3*sim.Second)

	// The first packets of a fresh burst into an EMPTY queue must not be
	// early-dropped.
	dropsBefore := r.Drops()
	for i := 0; i < 10; i++ {
		if !r.Enqueue(mkpkt(0, pkt.MTU)) {
			t.Fatalf("burst packet %d dropped after 3s idle (avg=%.0f, minTh=%d): stale EWMA survived the idle period", i, r.avg, r.minTh)
		}
	}
	if r.Drops() != dropsBefore {
		t.Fatalf("%d spurious drops on post-idle burst", r.Drops()-dropsBefore)
	}
	if r.avg > float64(r.minTh) {
		t.Fatalf("avg %.0f still above minTh %d after 3s idle", r.avg, r.minTh)
	}
}

// TestPIEIdleWindowRegression pins the departure-rate fix: before it,
// the 100 ms measurement window was anchored at the last window close
// and never reset when the queue drained, so the first dequeue of a new
// busy period measured (a few leftover bytes) / (the whole idle gap) and
// fed a near-zero sample into the drain-rate EWMA — collapsing the rate
// and inflating qdelay right after idle. Post-fix the window is
// abandoned on queue-empty, so idle time never enters a measurement.
func TestPIEIdleWindowRegression(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPIE(eng, 10000)
	defer p.Stop()

	// Busy period: 300 packets drained at 1 ms per MTU ⇒ 1.5 MB/s.
	for i := 0; i < 300; i++ {
		p.Enqueue(mkpkt(0, pkt.MTU))
	}
	for p.Len() > 0 {
		eng.RunUntil(eng.Now() + sim.Millisecond)
		p.Dequeue()
	}
	drBefore := p.drainRate
	if drBefore < 1.4e6 || drBefore > 1.6e6 {
		t.Fatalf("setup: drain rate %.0f B/s, want ≈1.5e6", drBefore)
	}

	// Idle 10 s, then a single enqueue/dequeue. The lone departure must
	// not be averaged over the idle gap.
	eng.RunUntil(eng.Now() + 10*sim.Second)
	p.Enqueue(mkpkt(0, pkt.MTU))
	p.Dequeue()

	if p.drainRate < 0.99*drBefore {
		t.Fatalf("drain rate collapsed across idle: %.0f → %.0f B/s (idle time entered the measurement window)", drBefore, p.drainRate)
	}
}

// TestPIETimeZeroWindowRegression pins the sim-time-0 sentinel fix:
// before it, lastDeq == 0 meant "uninitialized", so departures at t = 0
// never opened a measurement window and their bytes leaked into the
// first real window — roughly doubling the estimated drain rate here.
// winValid makes t = 0 a first-class window start.
func TestPIETimeZeroWindowRegression(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPIE(eng, 10000)
	defer p.Stop()

	// A 100-packet burst served instantaneously at t = 0, then empty.
	for i := 0; i < 100; i++ {
		p.Enqueue(mkpkt(0, pkt.MTU))
	}
	for p.Dequeue() != nil {
	}

	// A steady busy period at 1.5 MB/s starting at t = 500 ms.
	eng.RunUntil(500 * sim.Millisecond)
	for i := 0; i < 150; i++ {
		p.Enqueue(mkpkt(0, pkt.MTU))
	}
	for i := 0; i < 101; i++ {
		p.Dequeue()
		eng.RunUntil(eng.Now() + sim.Millisecond)
	}

	if p.drainRate < 1e6 || p.drainRate > 2e6 {
		t.Fatalf("drain rate %.0f B/s, want ≈1.5e6: the t=0 burst's bytes were mis-attributed to a later window", p.drainRate)
	}
}

// TestAQMIdleBurstNoSpuriousDrops is the table-driven idle-transition
// suite: every AQM is pressurized into its dropping regime, fully
// drained, left idle for 5 s, and then offered a small burst. The burst
// must pass with zero drops — an AQM whose control state (EWMA average,
// drain-rate window, sojourn clock, drop probability) survives the idle
// period stale will punish exactly these packets.
func TestAQMIdleBurstNoSpuriousDrops(t *testing.T) {
	cases := []struct {
		name  string
		build func(eng *sim.Engine) Qdisc
	}{
		{"codel", func(eng *sim.Engine) Qdisc { return NewCoDel(eng, 400) }},
		{"fqcodel", func(eng *sim.Engine) Qdisc { return NewFQCoDel(eng, 64, 400) }},
		{"red", func(eng *sim.Engine) Qdisc { return NewRED(eng, 200*pkt.MTU) }},
		{"pie", func(eng *sim.Engine) Qdisc { return NewPIE(eng, 400) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			q := tc.build(eng)
			if s, ok := q.(interface{ Stop() }); ok {
				defer s.Stop()
			}

			// Pressurize: a standing queue of ~160 MTU drained at
			// 3 MB/s (one packet per 500 µs) holds ~80 ms of delay —
			// deep in every AQM's dropping regime.
			for i := 0; i < 3000; i++ {
				eng.RunUntil(eng.Now() + 500*sim.Microsecond)
				q.Enqueue(mkpkt(i%5, pkt.MTU))
				if q.Len() > 160 {
					q.Dequeue()
				}
			}
			if q.Drops() == 0 {
				t.Fatal("setup: AQM never dropped under sustained 80ms queues")
			}

			// Drain completely, then idle.
			for q.Dequeue() != nil {
				eng.RunUntil(eng.Now() + sim.Millisecond)
			}
			eng.RunUntil(eng.Now() + 5*sim.Second)

			// A fresh 10-packet burst into the long-empty queue must be
			// accepted and delivered without a single drop.
			dropsBefore := q.Drops()
			for i := 0; i < 10; i++ {
				if !q.Enqueue(mkpkt(i%5, pkt.MTU)) {
					t.Fatalf("burst packet %d rejected after 5s idle", i)
				}
			}
			got := 0
			for i := 0; i < 10; i++ {
				eng.RunUntil(eng.Now() + sim.Millisecond)
				if q.Dequeue() != nil {
					got++
				}
			}
			if d := q.Drops() - dropsBefore; d != 0 {
				t.Fatalf("%d spurious drops on the post-idle burst", d)
			}
			if got != 10 {
				t.Fatalf("only %d of 10 burst packets delivered", got)
			}
		})
	}
}
