package qdisc

import (
	"testing"

	"bundler/internal/pkt"
)

// FuzzSFQ drives the sendbox's default scheduler with an arbitrary
// enqueue/dequeue interleaving over adversarial flow IDs and sizes, and
// checks the accounting invariants the link relies on:
//
//   - Len and Bytes never go negative;
//   - packet conservation: every accepted packet is eventually either
//     dequeued or dropped from the fattest bucket, never duplicated or
//     lost (accepted == dequeued + internal drops + still queued);
//   - draining the queue empties it exactly (Len == 0 implies Bytes == 0).
//
// Each op byte either dequeues (high bit) or enqueues a packet whose
// flow and size derive from the byte, so the corpus explores collisions
// within SFQ's bucket array as well as the drop-from-fattest path.
func FuzzSFQ(f *testing.F) {
	f.Add(3, 16, []byte{0x01, 0x02, 0x81, 0x03, 0xFF, 0x04})
	f.Add(1, 1, []byte{0x00, 0x00, 0x80, 0x00})
	f.Add(8, 4, []byte{0x10, 0x11, 0x12, 0x13, 0x90, 0x91, 0x14, 0x15, 0x16})
	f.Fuzz(func(t *testing.T, nbuckets, limit int, ops []byte) {
		if nbuckets <= 0 || nbuckets > 1024 || limit <= 0 || limit > 4096 {
			t.Skip()
		}
		q := NewSFQ(nbuckets, limit)
		accepted, dequeued, rejected := 0, 0, 0

		check := func(when string) {
			if q.Len() < 0 || q.Bytes() < 0 {
				t.Fatalf("%s: negative accounting: %d pkts, %d bytes", when, q.Len(), q.Bytes())
			}
			if q.Len() == 0 && q.Bytes() != 0 {
				t.Fatalf("%s: empty queue holds %d bytes", when, q.Bytes())
			}
			internalDrops := q.Drops() - rejected
			if accepted != dequeued+internalDrops+q.Len() {
				t.Fatalf("%s: conservation broken: accepted %d != dequeued %d + dropped %d + queued %d",
					when, accepted, dequeued, internalDrops, q.Len())
			}
		}

		for _, op := range ops {
			if op&0x80 != 0 {
				if q.Dequeue() != nil {
					dequeued++
				}
			} else {
				p := &pkt.Packet{
					Src:   pkt.Addr{Host: uint32(op) * 2654435761, Port: uint16(op)},
					Dst:   pkt.Addr{Host: uint32(op>>3) + 7, Port: 80},
					Proto: pkt.ProtoTCP,
					Size:  40 + int(op&0x7F)*12, // 40..1564 bytes
				}
				if q.Enqueue(p) {
					accepted++
				} else {
					rejected++
				}
			}
			check("mid-run")
		}

		// Drain completely: everything still queued must come out.
		for q.Dequeue() != nil {
			dequeued++
			check("drain")
		}
		if q.Len() != 0 || q.Bytes() != 0 {
			t.Fatalf("drained queue not empty: %d pkts, %d bytes", q.Len(), q.Bytes())
		}
		check("end")
	})
}
