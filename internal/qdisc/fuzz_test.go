package qdisc

import (
	"testing"

	"bundler/internal/pkt"
	"bundler/internal/sim"
)

// FuzzSFQ drives the sendbox's default scheduler with an arbitrary
// enqueue/dequeue interleaving over adversarial flow IDs and sizes, and
// checks the accounting invariants the link relies on:
//
//   - Len and Bytes never go negative;
//   - packet conservation: every accepted packet is eventually either
//     dequeued or dropped from the fattest bucket, never duplicated or
//     lost (accepted == dequeued + internal drops + still queued);
//   - draining the queue empties it exactly (Len == 0 implies Bytes == 0).
//
// Each op byte either dequeues (high bit) or enqueues a packet whose
// flow and size derive from the byte, so the corpus explores collisions
// within SFQ's bucket array as well as the drop-from-fattest path.
func FuzzSFQ(f *testing.F) {
	f.Add(3, 16, []byte{0x01, 0x02, 0x81, 0x03, 0xFF, 0x04})
	f.Add(1, 1, []byte{0x00, 0x00, 0x80, 0x00})
	f.Add(8, 4, []byte{0x10, 0x11, 0x12, 0x13, 0x90, 0x91, 0x14, 0x15, 0x16})
	f.Fuzz(func(t *testing.T, nbuckets, limit int, ops []byte) {
		if nbuckets <= 0 || nbuckets > 1024 || limit <= 0 || limit > 4096 {
			t.Skip()
		}
		q := NewSFQ(nbuckets, limit)
		accepted, dequeued, rejected := 0, 0, 0

		check := func(when string) {
			if q.Len() < 0 || q.Bytes() < 0 {
				t.Fatalf("%s: negative accounting: %d pkts, %d bytes", when, q.Len(), q.Bytes())
			}
			if q.Len() == 0 && q.Bytes() != 0 {
				t.Fatalf("%s: empty queue holds %d bytes", when, q.Bytes())
			}
			internalDrops := q.Drops() - rejected
			if accepted != dequeued+internalDrops+q.Len() {
				t.Fatalf("%s: conservation broken: accepted %d != dequeued %d + dropped %d + queued %d",
					when, accepted, dequeued, internalDrops, q.Len())
			}
		}

		for _, op := range ops {
			if op&0x80 != 0 {
				if q.Dequeue() != nil {
					dequeued++
				}
			} else {
				p := &pkt.Packet{
					Src:   pkt.Addr{Host: uint32(op) * 2654435761, Port: uint16(op)},
					Dst:   pkt.Addr{Host: uint32(op>>3) + 7, Port: 80},
					Proto: pkt.ProtoTCP,
					Size:  40 + int(op&0x7F)*12, // 40..1564 bytes
				}
				if q.Enqueue(p) {
					accepted++
				} else {
					rejected++
				}
			}
			check("mid-run")
		}

		// Drain completely: everything still queued must come out.
		for q.Dequeue() != nil {
			dequeued++
			check("drain")
		}
		if q.Len() != 0 || q.Bytes() != 0 {
			t.Fatalf("drained queue not empty: %d pkts, %d bytes", q.Len(), q.Bytes())
		}
		check("end")
	})
}

// FuzzQdiscAccounting drives each time-aware AQM (CoDel, FQ-CoDel, RED,
// PIE) plus the class schedulers (WFQ, SP — wrapped in a Meter, so the
// wrapper's pass-through accounting is fuzzed for free) through
// arbitrary enqueue/dequeue/idle-advance sequences and checks the
// byte-accounting invariants the link and the fluid coupling rely on:
//
//   - Bytes() always equals the sum of queued packet sizes (every packet
//     in one fuzz run has the same size, so the sum is Len()·size — the
//     one formulation that stays checkable when CoDel and FQ-CoDel drop
//     packets internally at dequeue time, where the dropped bytes are
//     otherwise unobservable from outside);
//   - Len() and Bytes() never go negative;
//   - conservation: accepted == dequeued + internal drops + still queued;
//   - WFQ and SP are work-conserving: every Dequeue issued while any
//     class was backlogged returns a packet, so the metered
//     work-conservation ratio is exactly 1.0 at the end of every run.
//
// Op bytes: 0x00–0x7F enqueue (flow = op % 8), 0x80–0xBF dequeue,
// 0xC0–0xFF advance virtual time by 1–64 ms (the idle axis — exactly the
// regime the RED EWMA and PIE drain-window fixes patrol).
func FuzzQdiscAccounting(f *testing.F) {
	f.Add(uint8(0), uint8(100), []byte{0x01, 0x02, 0xC5, 0x81, 0x03, 0xFF, 0x84})
	f.Add(uint8(1), uint8(255), []byte{0x10, 0x11, 0xFF, 0xFF, 0x90, 0x12, 0xC0, 0x91})
	f.Add(uint8(2), uint8(10), []byte{0x00, 0x00, 0x00, 0xD0, 0x80, 0x80, 0x80})
	f.Add(uint8(3), uint8(60), []byte{0x20, 0xC1, 0x20, 0xC1, 0xA0, 0xC1, 0x20, 0xA0})
	f.Add(uint8(4), uint8(120), []byte{0x01, 0x02, 0x03, 0x81, 0x04, 0x05, 0x82, 0x83})
	f.Add(uint8(5), uint8(200), []byte{0x07, 0x06, 0x05, 0x80, 0x04, 0xFF, 0x81, 0x82})
	f.Fuzz(func(t *testing.T, which, sizeSeed uint8, ops []byte) {
		size := 40 + int(sizeSeed)*5 // 40..1315 bytes, uniform per run
		eng := sim.NewEngine(7)
		// The schedulers key classes off the fuzz packets' source ports
		// (1000 + flow, flow in 0..7), so three classes see collisions.
		classes := []Class{
			{Name: "a", Port: 8000, Weight: 4},
			{Name: "b", Port: 8001, Weight: 2},
			{Name: "c", Port: 8002, Weight: 1},
		}
		byFlow := func(p *pkt.Packet) int { return int(p.Src.Port) % len(classes) }
		var q Qdisc
		var meter *Meter
		switch which % 6 {
		case 0:
			q = NewCoDel(eng, 128)
		case 1:
			q = NewFQCoDel(eng, 16, 128)
		case 2:
			q = NewRED(eng, 128*pkt.MTU)
		case 3:
			p := NewPIE(eng, 128)
			defer p.Stop()
			q = p
		case 4:
			meter = NewMeter(NewWFQ(128, classes, byFlow), classes)
			q = meter
		case 5:
			meter = NewMeter(NewSP(128, classes, byFlow), classes)
			q = meter
		}
		accepted, dequeued, rejected := 0, 0, 0

		check := func(when string) {
			if q.Len() < 0 || q.Bytes() < 0 {
				t.Fatalf("%s: negative accounting: %d pkts, %d bytes", when, q.Len(), q.Bytes())
			}
			if q.Bytes() != q.Len()*size {
				t.Fatalf("%s: bytes %d != %d packets × %d bytes", when, q.Bytes(), q.Len(), size)
			}
			internalDrops := q.Drops() - rejected
			if internalDrops < 0 {
				t.Fatalf("%s: drop counter %d below the %d rejected arrivals", when, q.Drops(), rejected)
			}
			if accepted != dequeued+internalDrops+q.Len() {
				t.Fatalf("%s: conservation broken: accepted %d != dequeued %d + dropped %d + queued %d",
					when, accepted, dequeued, internalDrops, q.Len())
			}
		}

		for _, op := range ops {
			switch {
			case op >= 0xC0: // idle-advance
				eng.RunUntil(eng.Now() + sim.Time(int(op&0x3F)+1)*sim.Millisecond)
			case op >= 0x80: // dequeue
				if q.Dequeue() != nil {
					dequeued++
				}
			default: // enqueue
				if q.Enqueue(mkpkt(int(op)%8, size)) {
					accepted++
				} else {
					rejected++
				}
			}
			check("mid-run")
		}

		for q.Dequeue() != nil {
			dequeued++
			check("drain")
		}
		if q.Len() != 0 || q.Bytes() != 0 {
			t.Fatalf("drained queue not empty: %d pkts, %d bytes", q.Len(), q.Bytes())
		}
		check("end")
		if meter != nil && meter.WorkConservation() != 1.0 {
			t.Fatalf("scheduler not work-conserving: served %d of %d backlogged dequeues",
				meter.Served(), meter.Attempts())
		}
	})
}
