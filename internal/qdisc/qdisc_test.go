package qdisc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bundler/internal/pkt"
	"bundler/internal/sim"
)

func mkpkt(flow int, size int) *pkt.Packet {
	return &pkt.Packet{
		Src:   pkt.Addr{Host: 1, Port: uint16(1000 + flow)},
		Dst:   pkt.Addr{Host: 2, Port: 80},
		Proto: pkt.ProtoTCP,
		Size:  size,
	}
}

// TestSFQRekeyPreservesFlowOrder catches the re-key reordering bug:
// SetPerturbation changes the flow-hash keying, and packets already
// queued under the old key must be rehashed into their new buckets. Left
// in place, one flow's packets would sit in two round-robin buckets at
// once and dequeue interleaved — in-bundle reordering, which Bundler's
// design promises not to introduce (§5.2 even treats reordering as a
// multipath-imbalance signal).
func TestSFQRekeyPreservesFlowOrder(t *testing.T) {
	const nb = 8
	s := NewSFQ(nb, 100)
	flow := func(seq int64) *pkt.Packet {
		p := mkpkt(1, 1000)
		p.Seq = seq
		return p
	}
	// Find a perturbation that actually moves the flow's bucket.
	sample := mkpkt(1, 1000)
	base := pkt.FlowHash(sample, 0) % nb
	var perturb uint64
	for p := uint64(1); ; p++ {
		if pkt.FlowHash(sample, p)%nb != base {
			perturb = p
			break
		}
	}
	for seq := int64(0); seq < 3; seq++ {
		if !s.Enqueue(flow(seq)) {
			t.Fatalf("enqueue %d rejected", seq)
		}
	}
	s.SetPerturbation(perturb)
	if s.Len() != 3 || s.Bytes() != 3000 {
		t.Fatalf("re-key broke accounting: %d pkts, %d bytes", s.Len(), s.Bytes())
	}
	for seq := int64(3); seq < 6; seq++ {
		if !s.Enqueue(flow(seq)) {
			t.Fatalf("enqueue %d rejected", seq)
		}
	}
	var got []int64
	for p := s.Dequeue(); p != nil; p = s.Dequeue() {
		got = append(got, p.Seq)
	}
	if len(got) != 6 {
		t.Fatalf("dequeued %d packets, want 6", len(got))
	}
	for i, seq := range got {
		if seq != int64(i) {
			t.Fatalf("intra-flow order violated after re-key: got %v", got)
		}
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("drained queue reports %d pkts, %d bytes", s.Len(), s.Bytes())
	}
}

func TestFIFOOrderAndAccounting(t *testing.T) {
	f := NewFIFO(10000)
	for i := 0; i < 5; i++ {
		p := mkpkt(i, 1000)
		p.IPID = uint16(i)
		if !f.Enqueue(p) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if f.Len() != 5 || f.Bytes() != 5000 {
		t.Fatalf("len=%d bytes=%d, want 5/5000", f.Len(), f.Bytes())
	}
	for i := 0; i < 5; i++ {
		p := f.Dequeue()
		if p == nil || p.IPID != uint16(i) {
			t.Fatalf("dequeue %d: got %+v", i, p)
		}
	}
	if f.Dequeue() != nil {
		t.Fatal("dequeue from empty FIFO returned packet")
	}
	if f.Len() != 0 || f.Bytes() != 0 {
		t.Fatal("non-zero occupancy after drain")
	}
}

func TestFIFODropTail(t *testing.T) {
	f := NewFIFO(2500)
	if !f.Enqueue(mkpkt(0, 1500)) || !f.Enqueue(mkpkt(0, 1000)) {
		t.Fatal("in-limit enqueues rejected")
	}
	if f.Enqueue(mkpkt(0, 1)) {
		t.Fatal("over-limit enqueue accepted")
	}
	if f.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", f.Drops())
	}
}

func TestFIFOCompaction(t *testing.T) {
	f := NewFIFO(1 << 20)
	// Interleave enough enqueue/dequeue to trigger compaction.
	for i := 0; i < 1000; i++ {
		f.Enqueue(mkpkt(0, 100))
		f.Enqueue(mkpkt(0, 100))
		if f.Dequeue() == nil {
			t.Fatal("unexpected empty")
		}
	}
	if f.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", f.Len())
	}
	for i := 0; i < 1000; i++ {
		if f.Dequeue() == nil {
			t.Fatalf("drain stalled at %d", i)
		}
	}
}

func TestSFQFairnessTwoFlows(t *testing.T) {
	s := NewSFQ(1024, 10000)
	// Flow A has 100 packets queued, flow B has 10; with round robin both
	// should be served in alternation, so the first 20 dequeues contain
	// ~10 of each.
	for i := 0; i < 100; i++ {
		s.Enqueue(mkpkt(1, pkt.MTU))
	}
	for i := 0; i < 10; i++ {
		s.Enqueue(mkpkt(2, pkt.MTU))
	}
	counts := map[uint16]int{}
	for i := 0; i < 20; i++ {
		p := s.Dequeue()
		if p == nil {
			t.Fatal("unexpected empty")
		}
		counts[p.Src.Port]++
	}
	if counts[1002] < 9 {
		t.Fatalf("flow B got %d of first 20 slots, want ≈10 (counts=%v)", counts[1002], counts)
	}
}

func TestSFQDropsFromFattestFlow(t *testing.T) {
	s := NewSFQ(1024, 10)
	for i := 0; i < 9; i++ {
		s.Enqueue(mkpkt(1, pkt.MTU)) // fat flow
	}
	s.Enqueue(mkpkt(2, pkt.MTU)) // thin flow; queue now full
	if !s.Enqueue(mkpkt(2, pkt.MTU)) {
		t.Fatal("thin flow's packet rejected; should displace fat flow")
	}
	if s.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", s.Drops())
	}
	// Count survivors per flow.
	counts := map[uint16]int{}
	for p := s.Dequeue(); p != nil; p = s.Dequeue() {
		counts[p.Src.Port]++
	}
	if counts[1001] != 8 || counts[1002] != 2 {
		t.Fatalf("survivors = %v, want fat=8 thin=2", counts)
	}
}

func TestSFQManyFlowsEqualShare(t *testing.T) {
	s := NewSFQ(1024, 100000)
	const flows, per = 20, 50
	for f := 0; f < flows; f++ {
		for i := 0; i < per; i++ {
			s.Enqueue(mkpkt(f, pkt.MTU))
		}
	}
	// After flows*k dequeues, each flow should have lost ≈k packets.
	counts := map[uint16]int{}
	for i := 0; i < flows*10; i++ {
		p := s.Dequeue()
		counts[p.Src.Port]++
	}
	for port, c := range counts {
		if c < 8 || c > 12 {
			t.Fatalf("flow %d served %d of %d rounds, want ≈10", port, c, 10)
		}
	}
}

func TestSFQDrainsCompletely(t *testing.T) {
	s := NewSFQ(16, 1000)
	total := 0
	for f := 0; f < 40; f++ { // more flows than buckets: collisions happen
		for i := 0; i < 5; i++ {
			if s.Enqueue(mkpkt(f, 500)) {
				total++
			}
		}
	}
	got := 0
	for p := s.Dequeue(); p != nil; p = s.Dequeue() {
		got++
	}
	if got != total {
		t.Fatalf("drained %d, enqueued %d", got, total)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatal("non-zero occupancy after drain")
	}
}

func TestPrioStrictOrdering(t *testing.T) {
	classify := func(p *pkt.Packet) int {
		if p.Dst.Port == 443 {
			return 0
		}
		return 1
	}
	pr := NewPrio(2, 1<<20, classify)
	low := mkpkt(1, 1000)
	pr.Enqueue(low)
	hi := mkpkt(2, 1000)
	hi.Dst.Port = 443
	pr.Enqueue(hi)
	if p := pr.Dequeue(); p != hi {
		t.Fatal("high-priority packet not served first")
	}
	if p := pr.Dequeue(); p != low {
		t.Fatal("low-priority packet lost")
	}
}

func TestPrioClampsOutOfRangeBand(t *testing.T) {
	pr := NewPrio(2, 1<<20, func(*pkt.Packet) int { return 99 })
	if !pr.Enqueue(mkpkt(0, 100)) {
		t.Fatal("clamped enqueue rejected")
	}
	if pr.Dequeue() == nil {
		t.Fatal("packet vanished")
	}
}

func TestFQCoDelBasicFairness(t *testing.T) {
	eng := sim.NewEngine(1)
	q := NewFQCoDel(eng, 1024, 10000)
	for i := 0; i < 50; i++ {
		q.Enqueue(mkpkt(1, pkt.MTU))
	}
	for i := 0; i < 5; i++ {
		q.Enqueue(mkpkt(2, pkt.MTU))
	}
	counts := map[uint16]int{}
	for i := 0; i < 10; i++ {
		p := q.Dequeue()
		if p == nil {
			t.Fatal("unexpected empty")
		}
		counts[p.Src.Port]++
	}
	if counts[1002] < 4 {
		t.Fatalf("flow B got %d of first 10 slots, want ≈5 (%v)", counts[1002], counts)
	}
}

func TestFQCoDelDropsPersistentlyLatePackets(t *testing.T) {
	eng := sim.NewEngine(1)
	q := NewFQCoDel(eng, 64, 100000)
	// Fill one flow, then advance time far beyond target+interval so the
	// sojourn times violate CoDel, and drain slowly.
	for i := 0; i < 200; i++ {
		q.Enqueue(mkpkt(1, pkt.MTU))
	}
	drained := 0
	for step := 0; step < 200; step++ {
		eng.RunUntil(eng.Now() + 20*sim.Millisecond)
		if p := q.Dequeue(); p != nil {
			drained++
		}
	}
	if q.Drops() == 0 {
		t.Fatal("CoDel never dropped despite persistent >5ms sojourn times")
	}
	if drained == 0 {
		t.Fatal("CoDel starved the flow entirely")
	}
}

func TestFQCoDelNoDropsWhenFast(t *testing.T) {
	eng := sim.NewEngine(1)
	q := NewFQCoDel(eng, 64, 100000)
	// Immediate drain: sojourn ≈ 0, CoDel must not drop.
	for i := 0; i < 1000; i++ {
		q.Enqueue(mkpkt(i%4, pkt.MTU))
		if q.Dequeue() == nil {
			t.Fatal("unexpected empty")
		}
	}
	if q.Drops() != 0 {
		t.Fatalf("drops = %d, want 0 for an unloaded queue", q.Drops())
	}
}

// Property: for every qdisc, conservation holds: enqueued-accepted =
// dequeued + still-queued + AQM drops (CoDel drops after acceptance).
func TestPropertyConservation(t *testing.T) {
	builders := map[string]func() Qdisc{
		"fifo": func() Qdisc { return NewFIFO(50 * pkt.MTU) },
		"sfq":  func() Qdisc { return NewSFQ(64, 50) },
		"prio": func() Qdisc {
			return NewPrio(3, 50*pkt.MTU, func(p *pkt.Packet) int { return int(p.Src.Port) % 3 })
		},
		"fqcodel": func() Qdisc { return NewFQCoDel(sim.NewEngine(1), 64, 50) },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint8) bool {
				q := build()
				accepted, dequeued := 0, 0
				for i, op := range ops {
					if op%3 != 0 { // 2/3 enqueue
						if q.Enqueue(mkpkt(i%7, 100+int(op))) {
							accepted++
						}
					} else {
						if q.Dequeue() != nil {
							dequeued++
						}
					}
				}
				drainedAfterAccept := q.Drops()
				// FIFO/Prio/SFQ count pre-acceptance drops too; recompute:
				// conservation must hold as accepted = dequeued + len + aqmDrops
				// where aqmDrops ≤ Drops().
				rest := 0
				for q.Dequeue() != nil {
					rest++
				}
				return accepted >= dequeued+rest && accepted <= dequeued+rest+drainedAfterAccept
			}
			cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
