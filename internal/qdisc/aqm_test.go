package qdisc

import (
	"testing"

	"bundler/internal/pkt"
	"bundler/internal/sim"
)

func TestCoDelPassesUnloadedTraffic(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCoDel(eng, 1000)
	for i := 0; i < 500; i++ {
		if !c.Enqueue(mkpkt(i%3, pkt.MTU)) {
			t.Fatal("enqueue rejected under limit")
		}
		if c.Dequeue() == nil {
			t.Fatal("immediate dequeue failed")
		}
	}
	if c.Drops() != 0 {
		t.Fatalf("CoDel dropped %d packets with zero sojourn time", c.Drops())
	}
}

func TestCoDelDropsPersistentQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCoDel(eng, 10000)
	for i := 0; i < 500; i++ {
		c.Enqueue(mkpkt(0, pkt.MTU))
	}
	drained := 0
	for i := 0; i < 400; i++ {
		eng.RunUntil(eng.Now() + 20*sim.Millisecond)
		if c.Dequeue() != nil {
			drained++
		}
		// Keep the queue pressurized.
		c.Enqueue(mkpkt(0, pkt.MTU))
	}
	if c.Drops() == 0 {
		t.Fatal("CoDel never dropped despite persistent 5ms+ sojourn")
	}
	if drained == 0 {
		t.Fatal("CoDel starved the queue")
	}
}

func TestCoDelHardLimit(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCoDel(eng, 5)
	for i := 0; i < 10; i++ {
		c.Enqueue(mkpkt(0, 100))
	}
	if c.Len() != 5 || c.Drops() != 5 {
		t.Fatalf("len=%d drops=%d, want 5/5", c.Len(), c.Drops())
	}
}

func TestREDNoDropsBelowMinThreshold(t *testing.T) {
	r := NewRED(sim.NewEngine(1), 100*pkt.MTU)
	// Keep occupancy well below limit/4.
	for i := 0; i < 2000; i++ {
		if !r.Enqueue(mkpkt(0, pkt.MTU)) {
			t.Fatal("drop below min threshold")
		}
		r.Dequeue()
	}
	if r.Drops() != 0 {
		t.Fatalf("drops = %d below min threshold", r.Drops())
	}
}

func TestREDEarlyDropsBetweenThresholds(t *testing.T) {
	r := NewRED(sim.NewEngine(2), 100*pkt.MTU)
	// Hold occupancy around half the limit so the EWMA settles between
	// the thresholds.
	accepted, offered := 0, 0
	for i := 0; i < 5000; i++ {
		offered++
		if r.Enqueue(mkpkt(0, pkt.MTU)) {
			accepted++
		}
		if r.Len() > 50 {
			r.Dequeue()
		}
	}
	if r.Drops() == 0 {
		t.Fatal("no early drops with standing queue between thresholds")
	}
	if accepted == 0 {
		t.Fatal("RED dropped everything")
	}
}

func TestREDFullQueueAlwaysDrops(t *testing.T) {
	r := NewRED(sim.NewEngine(3), 10*pkt.MTU)
	for i := 0; i < 20; i++ {
		r.Enqueue(mkpkt(0, pkt.MTU))
	}
	if r.Bytes() > 10*pkt.MTU {
		t.Fatal("hard limit exceeded")
	}
}

func TestDRRFairnessAcrossFlows(t *testing.T) {
	d := NewDRR(10000)
	for i := 0; i < 90; i++ {
		d.Enqueue(mkpkt(1, pkt.MTU))
	}
	for i := 0; i < 10; i++ {
		d.Enqueue(mkpkt(2, pkt.MTU))
	}
	counts := map[uint16]int{}
	for i := 0; i < 20; i++ {
		p := d.Dequeue()
		counts[p.Src.Port]++
	}
	if counts[1002] < 9 {
		t.Fatalf("thin flow got %d of first 20 slots, want ≈10 (%v)", counts[1002], counts)
	}
}

func TestDRRUnequalPacketSizesStillFairInBytes(t *testing.T) {
	d := NewDRR(10000)
	// Flow 1 sends 1500-byte packets, flow 2 sends 300-byte packets; byte
	// fairness means flow 2 gets ~5 packets per flow-1 packet.
	for i := 0; i < 100; i++ {
		d.Enqueue(mkpkt(1, 1500))
	}
	for i := 0; i < 500; i++ {
		d.Enqueue(mkpkt(2, 300))
	}
	bytes := map[uint16]int{}
	for i := 0; i < 120; i++ {
		p := d.Dequeue()
		bytes[p.Src.Port] += p.Size
	}
	ratio := float64(bytes[1001]) / float64(bytes[1002])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("byte split %v (ratio %.2f), want ≈ equal", bytes, ratio)
	}
}

func TestDRRDrainsAndCleansUp(t *testing.T) {
	d := NewDRR(1000)
	for f := 0; f < 30; f++ {
		for i := 0; i < 5; i++ {
			d.Enqueue(mkpkt(f, 500))
		}
	}
	n := 0
	for d.Dequeue() != nil {
		n++
	}
	if n != 150 {
		t.Fatalf("drained %d of 150", n)
	}
	if len(d.flows) != 0 {
		t.Fatalf("%d stale flow entries after drain", len(d.flows))
	}
}

func TestDRROverflowDropsFromFattest(t *testing.T) {
	d := NewDRR(10)
	for i := 0; i < 9; i++ {
		d.Enqueue(mkpkt(1, pkt.MTU))
	}
	d.Enqueue(mkpkt(2, pkt.MTU))
	if !d.Enqueue(mkpkt(2, pkt.MTU)) {
		t.Fatal("thin flow displaced instead of fat flow")
	}
	counts := map[uint16]int{}
	for p := d.Dequeue(); p != nil; p = d.Dequeue() {
		counts[p.Src.Port]++
	}
	if counts[1001] != 8 || counts[1002] != 2 {
		t.Fatalf("survivors %v, want fat=8 thin=2", counts)
	}
}

func TestPIEKeepsDelayNearTarget(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPIE(eng, 10000)
	defer p.Stop()
	// Overload: 1.2x the drain rate; PIE should hold the queue near its
	// 15 ms target rather than letting it grow to the limit.
	drainEvery := sim.Time(float64(pkt.MTU*8) / 96e6 * float64(sim.Second))
	sim.Tick(eng, drainEvery, func() { p.Dequeue() })
	arriveEvery := sim.Time(float64(drainEvery) / 1.2)
	i := 0
	sim.Tick(eng, arriveEvery, func() {
		i++
		p.Enqueue(mkpkt(0, pkt.MTU))
	})
	eng.RunUntil(20 * sim.Second)
	// Queue delay at drain rate 96 Mbit/s.
	qd := float64(p.Bytes()*8) / 96e6 * 1000
	if qd > 60 {
		t.Fatalf("PIE standing queue %.1fms, want near 15ms target", qd)
	}
	if p.Drops() == 0 {
		t.Fatal("PIE never dropped under overload")
	}
}

func TestPIENoDropsWhenIdle(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPIE(eng, 100)
	defer p.Stop()
	for i := 0; i < 500; i++ {
		eng.RunUntil(eng.Now() + sim.Millisecond)
		p.Enqueue(mkpkt(0, pkt.MTU))
		if p.Dequeue() == nil {
			t.Fatal("unexpected empty")
		}
	}
	if p.Drops() != 0 {
		t.Fatalf("PIE dropped %d packets on an unloaded queue", p.Drops())
	}
}

// All new qdiscs satisfy the interface and conserve packets.
func TestAQMConservation(t *testing.T) {
	eng := sim.NewEngine(9)
	builders := map[string]func() Qdisc{
		"codel": func() Qdisc { return NewCoDel(eng, 60) },
		"red":   func() Qdisc { return NewRED(eng, 60*pkt.MTU) },
		"drr":   func() Qdisc { return NewDRR(60) },
	}
	for name, build := range builders {
		q := build()
		accepted := 0
		for i := 0; i < 500; i++ {
			if q.Enqueue(mkpkt(i%5, 100+i%700)) {
				accepted++
			}
			if i%3 == 0 {
				if q.Dequeue() != nil {
					accepted--
				}
			}
		}
		for q.Dequeue() != nil {
			accepted--
		}
		// CoDel can drop post-acceptance; accepted must not go negative
		// and must equal post-acceptance drops for the others.
		if accepted < 0 {
			t.Fatalf("%s: dequeued more than accepted", name)
		}
	}
}
