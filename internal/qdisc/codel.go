package qdisc

import (
	"bundler/internal/clock"
	"bundler/internal/pkt"
)

// CoDel is the standalone Controlled-Delay AQM (Nichols & Jacobson, [38]
// in the paper): a single FIFO whose head packets are dropped when their
// sojourn time persistently exceeds the target. FQCoDel composes this
// logic per flow; the standalone variant is useful as a bottleneck AQM and
// as a sendbox policy that bounds delay without per-flow state.
type CoDel struct {
	eng      clock.Clock
	q        []*pkt.Packet
	head     int
	bytes    int
	limit    int // packets
	drops    int
	target   clock.Time
	interval clock.Time
	st       codelState
}

// NewCoDel returns a CoDel queue with RFC 8289 defaults (5 ms target,
// 100 ms interval) and a droptail packet limit as a backstop.
func NewCoDel(eng clock.Clock, limitPackets int) *CoDel {
	if limitPackets <= 0 {
		panic("qdisc: CoDel limit must be positive")
	}
	return &CoDel{
		eng:      eng,
		limit:    limitPackets,
		target:   5 * clock.Millisecond,
		interval: 100 * clock.Millisecond,
	}
}

// Enqueue implements Qdisc.
func (c *CoDel) Enqueue(p *pkt.Packet) bool {
	if c.Len() >= c.limit {
		c.drops++
		return false
	}
	p.EnqueuedAt = c.eng.Now()
	c.q = append(c.q, p)
	c.bytes += p.Size
	return true
}

func (c *CoDel) pop() *pkt.Packet {
	if c.head == len(c.q) {
		return nil
	}
	p := c.q[c.head]
	c.q[c.head] = nil
	c.head++
	c.bytes -= p.Size
	if c.head == len(c.q) {
		c.q = c.q[:0]
		c.head = 0
	} else if c.head > 64 && c.head*2 >= len(c.q) {
		c.q = append(c.q[:0], c.q[c.head:]...)
		c.head = 0
	}
	return p
}

func (c *CoDel) peek() *pkt.Packet {
	if c.head == len(c.q) {
		return nil
	}
	return c.q[c.head]
}

// shouldDrop evaluates the head's sojourn time against the CoDel state
// machine. It returns (candidate, queueNonEmpty).
func (c *CoDel) shouldDrop(now clock.Time) (bool, bool) {
	head := c.peek()
	if head == nil {
		c.st.firstAboveTime = 0
		return false, false
	}
	sojourn := now - head.EnqueuedAt
	if sojourn < c.target || c.bytes <= pkt.MTU {
		c.st.firstAboveTime = 0
		return false, true
	}
	if c.st.firstAboveTime == 0 {
		c.st.firstAboveTime = now + c.interval
		return false, true
	}
	return now >= c.st.firstAboveTime, true
}

// Dequeue implements Qdisc, running the CoDel control law.
func (c *CoDel) Dequeue() *pkt.Packet {
	now := c.eng.Now()
	drop, nonEmpty := c.shouldDrop(now)
	if !nonEmpty {
		c.st.dropping = false
		return nil
	}
	if c.st.dropping {
		if !drop {
			c.st.dropping = false
			return c.pop()
		}
		for now >= c.st.dropNext && c.st.dropping {
			pkt.Put(c.pop()) // internal drop: the queue owned it
			c.drops++
			c.st.dropCount++
			drop, nonEmpty = c.shouldDrop(now)
			if !nonEmpty {
				c.st.dropping = false
				return nil
			}
			if !drop {
				c.st.dropping = false
				return c.pop()
			}
			c.st.dropNext = controlLaw(c.st.dropNext, c.interval, c.st.dropCount)
		}
		return c.pop()
	}
	if drop && (now-c.st.dropNext < c.interval || now-c.st.firstAboveTime >= c.interval) {
		pkt.Put(c.pop()) // internal drop: the queue owned it
		c.drops++
		c.st.dropping = true
		if now-c.st.dropNext < c.interval {
			c.st.dropCount = max(c.st.dropCount-c.st.lastDropCount, 1)
		} else {
			c.st.dropCount = 1
		}
		c.st.dropNext = controlLaw(now, c.interval, c.st.dropCount)
		c.st.lastDropCount = c.st.dropCount
	}
	return c.pop()
}

// Len implements Qdisc.
func (c *CoDel) Len() int { return len(c.q) - c.head }

// Bytes implements Qdisc.
func (c *CoDel) Bytes() int { return c.bytes }

// Drops implements Qdisc.
func (c *CoDel) Drops() int { return c.drops }
