package qdisc

import "bundler/internal/pkt"

// Classifier maps a packet to a priority band; band 0 is served first.
type Classifier func(*pkt.Packet) int

// Prio is a strict-priority scheduler over per-band FIFOs. The paper uses
// it in §7.2 to give one traffic class absolute precedence over another
// (~65 % lower median FCT for the favored class).
type Prio struct {
	bands    []*FIFO
	classify Classifier
	drops    int
}

// NewPrio builds a strict-priority qdisc with nbands droptail bands of
// limitBytes each. classify must return a band in [0, nbands); out-of-range
// results are clamped to the lowest priority.
func NewPrio(nbands, limitBytes int, classify Classifier) *Prio {
	if nbands <= 0 {
		panic("qdisc: Prio needs at least one band")
	}
	p := &Prio{bands: make([]*FIFO, nbands), classify: classify}
	for i := range p.bands {
		p.bands[i] = NewFIFO(limitBytes)
	}
	return p
}

// Enqueue implements Qdisc.
func (pr *Prio) Enqueue(p *pkt.Packet) bool {
	b := pr.classify(p)
	if b < 0 || b >= len(pr.bands) {
		b = len(pr.bands) - 1
	}
	ok := pr.bands[b].Enqueue(p)
	if !ok {
		pr.drops++
	}
	return ok
}

// Dequeue implements Qdisc: highest-priority non-empty band wins.
func (pr *Prio) Dequeue() *pkt.Packet {
	for _, b := range pr.bands {
		if p := b.Dequeue(); p != nil {
			return p
		}
	}
	return nil
}

// Len implements Qdisc.
func (pr *Prio) Len() int {
	n := 0
	for _, b := range pr.bands {
		n += b.Len()
	}
	return n
}

// Bytes implements Qdisc.
func (pr *Prio) Bytes() int {
	n := 0
	for _, b := range pr.bands {
		n += b.Bytes()
	}
	return n
}

// Drops implements Qdisc.
func (pr *Prio) Drops() int { return pr.drops }
