package qdisc

import (
	"math/rand"

	"bundler/internal/pkt"
)

// RED implements Random Early Detection (Floyd & Jacobson, [18] in the
// paper): arriving packets are dropped with a probability that grows
// linearly as the EWMA of the queue size moves between two thresholds,
// signalling endhost loops before the buffer overflows.
type RED struct {
	rng *rand.Rand

	q     []*pkt.Packet
	head  int
	bytes int
	limit int // bytes, hard cap
	drops int

	// Parameters, in bytes (classic RED operates on average queue size).
	minTh, maxTh int
	maxP         float64
	weight       float64

	avg   float64
	count int // packets since last drop, for the uniform-drop correction
}

// NewRED builds a RED queue over a hard byte limit, with the classic
// thresholds min=limit/4, max=3·limit/4, maxP=0.1 and EWMA weight 0.002.
// The rng must be the simulation's deterministic source.
func NewRED(rng *rand.Rand, limitBytes int) *RED {
	if limitBytes <= 0 {
		panic("qdisc: RED limit must be positive")
	}
	return &RED{
		rng:    rng,
		limit:  limitBytes,
		minTh:  limitBytes / 4,
		maxTh:  limitBytes * 3 / 4,
		maxP:   0.1,
		weight: 0.002,
		count:  -1,
	}
}

// Enqueue implements Qdisc with the RED early-drop decision.
func (r *RED) Enqueue(p *pkt.Packet) bool {
	r.avg = (1-r.weight)*r.avg + r.weight*float64(r.bytes)
	switch {
	case r.bytes+p.Size > r.limit:
		r.drops++
		r.count = 0
		return false
	case r.avg >= float64(r.maxTh):
		r.drops++
		r.count = 0
		return false
	case r.avg > float64(r.minTh):
		r.count++
		pb := r.maxP * (r.avg - float64(r.minTh)) / float64(r.maxTh-r.minTh)
		pa := pb / (1 - float64(r.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if r.rng.Float64() < pa {
			r.drops++
			r.count = 0
			return false
		}
	default:
		r.count = -1
	}
	r.q = append(r.q, p)
	r.bytes += p.Size
	return true
}

// Dequeue implements Qdisc.
func (r *RED) Dequeue() *pkt.Packet {
	if r.head == len(r.q) {
		return nil
	}
	p := r.q[r.head]
	r.q[r.head] = nil
	r.head++
	r.bytes -= p.Size
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
	} else if r.head > 64 && r.head*2 >= len(r.q) {
		r.q = append(r.q[:0], r.q[r.head:]...)
		r.head = 0
	}
	return p
}

// Len implements Qdisc.
func (r *RED) Len() int { return len(r.q) - r.head }

// Bytes implements Qdisc.
func (r *RED) Bytes() int { return r.bytes }

// Drops implements Qdisc.
func (r *RED) Drops() int { return r.drops }
