package qdisc

import (
	"math"

	"bundler/internal/clock"
	"bundler/internal/pkt"
)

// redFallbackTx is the transmission-slot estimate used for the idle-time
// correction before any back-to-back dequeue spacing has been observed
// (one MTU at ~12 Mbit/s). It only matters for the very first idle
// period; afterwards the measured service-time EWMA takes over.
const redFallbackTx = clock.Millisecond

// RED implements Random Early Detection (Floyd & Jacobson, [18] in the
// paper): arriving packets are dropped with a probability that grows
// linearly as the EWMA of the queue size moves between two thresholds,
// signalling endhost loops before the buffer overflows.
type RED struct {
	eng clock.Clock

	q     []*pkt.Packet
	head  int
	bytes int
	limit int // bytes, hard cap
	drops int

	// Parameters, in bytes (classic RED operates on average queue size).
	minTh, maxTh int
	maxP         float64
	weight       float64

	avg   float64
	count int // packets since last drop, for the uniform-drop correction

	// Idle-period correction state (the Floyd–Jacobson "m" term): when
	// the queue has sat empty, avg decays as if m small packets had been
	// transmitted into an empty queue, where m = idle time / estimated
	// transmission slot. Without this, avg is only touched on enqueue and
	// a stale high average early-drops the first packets of a new burst.
	emptySince clock.Time // when the queue last became empty
	emptyValid bool       // emptySince is meaningful (queue currently idle)
	txEst      clock.Time // EWMA of back-to-back dequeue spacing (service time)
	lastDeqAt  clock.Time
	busyTail   bool // queue was non-empty after the previous dequeue
}

// NewRED builds a RED queue over a hard byte limit, with the classic
// thresholds min=limit/4, max=3·limit/4, maxP=0.1 and EWMA weight 0.002.
// The clock supplies time for the idle-period average decay and the RNG
// for the drop decisions (deterministic on the simulator).
func NewRED(eng clock.Clock, limitBytes int) *RED {
	if limitBytes <= 0 {
		panic("qdisc: RED limit must be positive")
	}
	return &RED{
		eng:    eng,
		limit:  limitBytes,
		minTh:  limitBytes / 4,
		maxTh:  limitBytes * 3 / 4,
		maxP:   0.1,
		weight: 0.002,
		count:  -1,
	}
}

// Enqueue implements Qdisc with the RED early-drop decision.
func (r *RED) Enqueue(p *pkt.Packet) bool {
	if r.emptyValid {
		// First arrival after an idle period: decay the average by the
		// number of transmission slots the queue sat empty,
		// avg ← avg·(1−w)^m (Floyd & Jacobson §4, the q_time term).
		tx := r.txEst
		if tx <= 0 {
			tx = redFallbackTx
		}
		if idle := r.eng.Now() - r.emptySince; idle > 0 {
			m := float64(idle) / float64(tx)
			r.avg *= math.Pow(1-r.weight, m)
		}
		// The idle span up to now is consumed either way; if this packet
		// is rejected the queue stays empty and the clock restarts here.
		r.emptySince = r.eng.Now()
	}
	r.avg = (1-r.weight)*r.avg + r.weight*float64(r.bytes)
	switch {
	case r.bytes+p.Size > r.limit:
		r.drops++
		r.count = 0
		return false
	case r.avg >= float64(r.maxTh):
		r.drops++
		r.count = 0
		return false
	case r.avg > float64(r.minTh):
		r.count++
		pb := r.maxP * (r.avg - float64(r.minTh)) / float64(r.maxTh-r.minTh)
		pa := pb / (1 - float64(r.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if r.eng.Rand().Float64() < pa {
			r.drops++
			r.count = 0
			return false
		}
	default:
		r.count = -1
	}
	r.q = append(r.q, p)
	r.bytes += p.Size
	r.emptyValid = false
	return true
}

// Dequeue implements Qdisc and feeds the service-time estimate the
// idle-period correction scales by.
func (r *RED) Dequeue() *pkt.Packet {
	if r.head == len(r.q) {
		return nil
	}
	p := r.q[r.head]
	r.q[r.head] = nil
	r.head++
	r.bytes -= p.Size
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
	} else if r.head > 64 && r.head*2 >= len(r.q) {
		r.q = append(r.q[:0], r.q[r.head:]...)
		r.head = 0
	}
	now := r.eng.Now()
	// Back-to-back dequeues (the queue stayed busy in between) are
	// spaced by one link transmission slot — the unit idle time is
	// measured in.
	if r.busyTail && now > r.lastDeqAt {
		gap := now - r.lastDeqAt
		if r.txEst == 0 {
			r.txEst = gap
		} else {
			r.txEst = (3*r.txEst + gap) / 4
		}
	}
	r.lastDeqAt = now
	r.busyTail = r.Len() > 0
	if r.Len() == 0 {
		r.emptySince = now
		r.emptyValid = true
	}
	return p
}

// Len implements Qdisc.
func (r *RED) Len() int { return len(r.q) - r.head }

// Bytes implements Qdisc.
func (r *RED) Bytes() int { return r.bytes }

// Drops implements Qdisc.
func (r *RED) Drops() int { return r.drops }
