package qdisc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"bundler/internal/pkt"
)

// classpkt builds a packet whose destination port selects class i under
// ClassifierByPort with ports 8000+i.
func classpkt(class, size int) *pkt.Packet {
	return &pkt.Packet{
		Src:   pkt.Addr{Host: 1, Port: 9999},
		Dst:   pkt.Addr{Host: 2, Port: uint16(8000 + class)},
		Proto: pkt.ProtoTCP,
		Size:  size,
	}
}

func mkClasses(weights []float64) []Class {
	classes := make([]Class, len(weights))
	for i, w := range weights {
		classes[i] = Class{Name: fmt.Sprintf("c%d", i), Port: uint16(8000 + i), Weight: w}
	}
	return classes
}

// TestWFQSharesMatchWeights is the tentpole property: with every class
// kept backlogged, long-run per-class byte shares converge to the
// configured weights within 5% — across weight mixes and packet-size
// mixes (unequal sizes are exactly where a round-robin approximation
// would drift, since SCFQ charges virtual time by bytes/weight).
func TestWFQSharesMatchWeights(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		sizes   []int // per-class packet size
	}{
		{"equal-1to1", []float64{1, 1}, []int{1500, 1500}},
		{"4to1", []float64{4, 1}, []int{1500, 1500}},
		{"8to1-small-favored", []float64{8, 1}, []int{256, 1500}},
		{"8to2to1-mixed-sizes", []float64{8, 2, 1}, []int{1500, 300, 900}},
		{"fractional-weights", []float64{2.5, 1.5, 1}, []int{1200, 1200, 64}},
		{"heavy-tail-4way", []float64{16, 4, 2, 1}, []int{1500, 1000, 500, 100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			classes := mkClasses(tc.weights)
			q := NewWFQ(16*len(classes), classes, ClassifierByPort(classes))

			served := make([]int64, len(classes))
			var total int64
			// Keep every class topped up to 8 queued packets, dequeue one
			// per round: all classes stay backlogged throughout.
			queued := make([]int, len(classes))
			for total < 4<<20 {
				for i := range classes {
					for queued[i] < 8 {
						if !q.Enqueue(classpkt(i, tc.sizes[i])) {
							t.Fatalf("enqueue rejected below the limit")
						}
						queued[i]++
					}
				}
				p := q.Dequeue()
				if p == nil {
					t.Fatalf("backlogged WFQ returned nil")
				}
				i := int(p.Dst.Port) - 8000
				queued[i]--
				served[i] += int64(p.Size)
				total += int64(p.Size)
			}

			var wsum float64
			for _, w := range tc.weights {
				wsum += w
			}
			for i, w := range tc.weights {
				got := float64(served[i]) / float64(total)
				want := w / wsum
				if rel := math.Abs(got-want) / want; rel > 0.05 {
					t.Errorf("class %d share %.4f, want %.4f (weight %g/%g): off by %.1f%%",
						i, got, want, w, wsum, rel*100)
				}
			}
		})
	}
}

// TestWFQIdleClassGetsNoDebt pins the SCFQ restart rule: a class that
// idles must not bank virtual time. After class 1 serves alone for a
// while, a newly arriving class-0 packet competes from the current
// virtual time, not from zero — it may not monopolize the link to "pay
// back" its idle period.
func TestWFQIdleClassGetsNoDebt(t *testing.T) {
	classes := mkClasses([]float64{1, 1})
	q := NewWFQ(64, classes, ClassifierByPort(classes))

	// Class 1 runs alone: enqueue+dequeue 100 packets.
	for i := 0; i < 100; i++ {
		q.Enqueue(classpkt(1, 1500))
		if p := q.Dequeue(); p == nil || p.Dst.Port != 8001 {
			t.Fatal("warmup dequeue wrong")
		}
	}
	// Now both become backlogged; equal weights must serve ~1:1 from here.
	served := [2]int{}
	queued := [2]int{}
	for n := 0; n < 2000; n++ {
		for i := 0; i < 2; i++ {
			for queued[i] < 4 {
				q.Enqueue(classpkt(i, 1500))
				queued[i]++
			}
		}
		p := q.Dequeue()
		i := int(p.Dst.Port) - 8000
		queued[i]--
		served[i]++
	}
	if diff := math.Abs(float64(served[0]-served[1])) / 2000; diff > 0.05 {
		t.Fatalf("post-idle shares skewed: %v", served)
	}
}

// TestWFQDropFromFattest checks overflow policy: the class holding the
// most bytes loses its head; an arrival from the fattest class itself
// is rejected instead.
func TestWFQDropFromFattest(t *testing.T) {
	classes := mkClasses([]float64{1, 1})
	q := NewWFQ(4, classes, ClassifierByPort(classes))
	for i := 0; i < 3; i++ {
		q.Enqueue(classpkt(0, 1500))
	}
	q.Enqueue(classpkt(1, 100))
	// Full. A class-1 arrival evicts from class 0 (the fattest).
	if !q.Enqueue(classpkt(1, 100)) {
		t.Fatal("push-out arrival rejected")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops())
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d, want 4", q.Len())
	}
	// A class-0 arrival is itself from the fattest class: rejected.
	if q.Enqueue(classpkt(0, 1500)) {
		t.Fatal("arrival from fattest class accepted over its own queue")
	}
	if q.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", q.Drops())
	}
}

// TestSPNeverServesLowerWhileHigherBacklogged is the SP property test:
// across a randomized enqueue/dequeue interleaving over mixed packet
// sizes, every dequeued packet's class has no backlogged class of
// higher priority (lower index) at that instant.
func TestSPNeverServesLowerWhileHigherBacklogged(t *testing.T) {
	for _, nclasses := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("%dclasses", nclasses), func(t *testing.T) {
			classes := mkClasses(make([]float64, nclasses))
			for i := range classes {
				classes[i].Weight = 1
			}
			q := NewSP(64, classes, ClassifierByPort(classes))
			rng := rand.New(rand.NewSource(int64(42 + nclasses)))
			queued := make([]int, nclasses)
			for op := 0; op < 20000; op++ {
				if rng.Intn(3) > 0 { // enqueue-biased: exercises push-out
					c := rng.Intn(nclasses)
					size := 64 + rng.Intn(1437)
					before := queued[c]
					if q.Enqueue(classpkt(c, size)) {
						queued[c] = before + 1
						// Push-out may have evicted a lower-priority head.
						if q.Len() < sum(queued) {
							for v := nclasses - 1; v >= 0; v-- {
								if v != c && queued[v] > 0 {
									queued[v]--
									break
								}
							}
						}
					}
				} else {
					p := q.Dequeue()
					if p == nil {
						if q.Len() != 0 {
							t.Fatal("nil dequeue from backlogged SP")
						}
						continue
					}
					c := int(p.Dst.Port) - 8000
					for higher := 0; higher < c; higher++ {
						if queued[higher] > 0 {
							t.Fatalf("served class %d while class %d held %d packets",
								c, higher, queued[higher])
						}
					}
					queued[c]--
				}
				if q.Len() != sum(queued) {
					t.Fatalf("shadow count drift: q.Len()=%d, shadow=%d", q.Len(), sum(queued))
				}
			}
		})
	}
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// TestSPPushOut pins the shared-buffer rule: a full queue admits a
// higher-priority arrival by evicting from the lowest backlogged class,
// and rejects an arrival that is itself lowest-priority.
func TestSPPushOut(t *testing.T) {
	classes := mkClasses([]float64{1, 1, 1})
	q := NewSP(4, classes, ClassifierByPort(classes))
	for i := 0; i < 4; i++ {
		q.Enqueue(classpkt(2, 1000))
	}
	if !q.Enqueue(classpkt(0, 1000)) {
		t.Fatal("high-priority arrival rejected despite evictable bulk")
	}
	if q.Drops() != 1 || q.Len() != 4 {
		t.Fatalf("after push-out: drops=%d len=%d, want 1/4", q.Drops(), q.Len())
	}
	if q.Enqueue(classpkt(2, 1000)) {
		t.Fatal("lowest-priority arrival accepted into a full queue")
	}
	// The high packet must come out first.
	if p := q.Dequeue(); p.Dst.Port != 8000 {
		t.Fatalf("dequeued port %d, want 8000", p.Dst.Port)
	}
}

// TestMeterAttribution checks the per-class accounting and the
// work-conservation counters on a metered FIFO — the wrapper is what
// gives FIFO cells a fairness section at all.
func TestMeterAttribution(t *testing.T) {
	classes := mkClasses([]float64{4, 1})
	m := NewMeter(NewFIFO(1<<20), classes)

	// Idle dequeue: no attempt recorded.
	if m.Dequeue() != nil {
		t.Fatal("empty meter returned a packet")
	}
	if m.Attempts() != 0 || m.WorkConservation() != 1 {
		t.Fatalf("idle poll counted: attempts=%d wc=%g", m.Attempts(), m.WorkConservation())
	}

	m.Enqueue(classpkt(0, 1000))
	m.Enqueue(classpkt(1, 500))
	m.Enqueue(&pkt.Packet{Dst: pkt.Addr{Host: 2, Port: 443}, Size: 200}) // unmatched
	for m.Dequeue() != nil {
	}
	if m.Attempts() != 3 || m.Served() != 3 || m.WorkConservation() != 1 {
		t.Fatalf("conservation counters: attempts=%d served=%d", m.Attempts(), m.Served())
	}
	st := m.Stats()
	if len(st) != 3 {
		t.Fatalf("stats entries = %d, want 2 classes + other", len(st))
	}
	if st[0].Bytes != 1000 || st[0].Packets != 1 {
		t.Fatalf("class 0 stat %+v", st[0])
	}
	if st[1].Bytes != 500 {
		t.Fatalf("class 1 stat %+v", st[1])
	}
	if st[2].Class.Name != "other" || st[2].Bytes != 200 {
		t.Fatalf("other stat %+v", st[2])
	}

	// With no unmatched traffic the "other" bucket stays hidden.
	m2 := NewMeter(NewFIFO(1<<20), classes)
	m2.Enqueue(classpkt(0, 100))
	m2.Dequeue()
	if got := m2.Stats(); len(got) != 2 {
		t.Fatalf("stats entries = %d, want 2 (no other traffic)", len(got))
	}
}
