package qdisc

import "bundler/internal/pkt"

// DRR implements Deficit Round Robin (Shreedhar & Varghese, [46] in the
// paper): per-flow queues served round-robin with a byte quantum,
// approximating fair queueing in O(1) per packet. Compared to SFQ it keys
// flows exactly (no stochastic bucket collisions) at the cost of a map.
type DRR struct {
	flows   map[uint64]*drrFlow
	active  []uint64
	cursor  int
	quantum int
	limit   int // total packets
	count   int
	bytes   int
	drops   int
}

type drrFlow struct {
	q       []*pkt.Packet
	head    int
	bytes   int
	deficit int
	active  bool
}

// NewDRR builds a DRR scheduler with a one-MTU quantum.
func NewDRR(limitPackets int) *DRR {
	if limitPackets <= 0 {
		panic("qdisc: DRR limit must be positive")
	}
	return &DRR{flows: make(map[uint64]*drrFlow), quantum: pkt.MTU, limit: limitPackets}
}

func (d *DRR) keyOf(p *pkt.Packet) uint64 { return pkt.FlowHash(p, 0) }

// Enqueue implements Qdisc; overflow drops from the longest flow.
func (d *DRR) Enqueue(p *pkt.Packet) bool {
	key := d.keyOf(p)
	if d.count >= d.limit {
		d.drops++
		fat := d.fattest()
		if fat == key || fat == 0 {
			return false
		}
		d.dropHead(fat)
	}
	f := d.flows[key]
	if f == nil {
		f = &drrFlow{}
		d.flows[key] = f
	}
	f.q = append(f.q, p)
	f.bytes += p.Size
	d.count++
	d.bytes += p.Size
	if !f.active {
		f.active = true
		f.deficit = d.quantum
		d.active = append(d.active, key)
	}
	return true
}

func (d *DRR) fattest() uint64 {
	var best uint64
	bestBytes := 0
	for _, k := range d.active {
		if f := d.flows[k]; f.bytes > bestBytes {
			best, bestBytes = k, f.bytes
		}
	}
	return best
}

func (f *drrFlow) len() int { return len(f.q) - f.head }

func (f *drrFlow) pop() *pkt.Packet {
	p := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	f.bytes -= p.Size
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	return p
}

func (d *DRR) dropHead(key uint64) {
	f := d.flows[key]
	p := f.pop()
	d.count--
	d.bytes -= p.Size
	pkt.Put(p) // internal drop: the queue owned it
}

// Dequeue implements Qdisc.
func (d *DRR) Dequeue() *pkt.Packet {
	for len(d.active) > 0 {
		if d.cursor >= len(d.active) {
			d.cursor = 0
		}
		key := d.active[d.cursor]
		f := d.flows[key]
		if f.len() == 0 {
			f.active = false
			delete(d.flows, key)
			d.active = append(d.active[:d.cursor], d.active[d.cursor+1:]...)
			continue
		}
		if f.q[f.head].Size > f.deficit {
			f.deficit += d.quantum
			d.cursor++
			continue
		}
		p := f.pop()
		f.deficit -= p.Size
		d.count--
		d.bytes -= p.Size
		if f.len() == 0 {
			f.active = false
			delete(d.flows, key)
			d.active = append(d.active[:d.cursor], d.active[d.cursor+1:]...)
		}
		return p
	}
	return nil
}

// Len implements Qdisc.
func (d *DRR) Len() int { return d.count }

// Bytes implements Qdisc.
func (d *DRR) Bytes() int { return d.bytes }

// Drops implements Qdisc.
func (d *DRR) Drops() int { return d.drops }
