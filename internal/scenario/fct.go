package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/exp"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/sim/shard"
	"bundler/internal/stats"
	"bundler/internal/tcp"
	"bundler/internal/workload"
)

// FCTOptions parameterizes one flow-completion-time run (the §7.1 setup).
type FCTOptions struct {
	Seed       int64
	LinkRate   float64  // default 96 Mbit/s
	RTT        sim.Time // default 50 ms
	Requests   int      // default 5000
	OfferedBps float64  // default 84 Mbit/s
	// Mode is "statusquo", "bundler", or "innetwork" (fair queueing at the
	// emulated bottleneck, the undeployable upper bound).
	Mode string
	// InnerAlg names the sendbox algorithm ("copa" default).
	InnerAlg string
	// Scheduler names the sendbox qdisc (see SchedulerByName).
	Scheduler string
	// EndhostCC names the endhost algorithm ("cubic" default).
	EndhostCC string
	// FixedCwnd pins endhost windows (the §7.5 proxy emulation).
	FixedCwnd int
	// SendboxQueuePackets overrides the sendbox scheduler depth.
	SendboxQueuePackets int
	// TunnelMode switches epoch identification to the §4.5 encapsulation
	// variant.
	TunnelMode bool
	// Horizon bounds the run.
	Horizon sim.Time
	// Shards ≥ 1 drives the run through the sharded-world protocol
	// (internal/sim/shard) instead of the legacy Fabric.RunUntilDone
	// loop. The dumbbell is a single partition, so any value clamps to
	// one worker and the output is byte-identical to the legacy path —
	// this exists so the determinism tests can pin exactly that.
	Shards int
}

func (o *FCTOptions) fill() {
	if o.LinkRate == 0 {
		o.LinkRate = 96e6
	}
	if o.RTT == 0 {
		o.RTT = 50 * sim.Millisecond
	}
	if o.Requests == 0 {
		o.Requests = 5000
	}
	if o.OfferedBps == 0 {
		o.OfferedBps = 84e6
	}
	if o.Mode == "" {
		o.Mode = "bundler"
	}
	if o.Horizon == 0 {
		o.Horizon = 10 * sim.Time(o.Requests) * sim.Millisecond // ≈ load-scaled
		if o.Horizon < 120*sim.Second {
			o.Horizon = 120 * sim.Second
		}
	}
}

// RunFCT executes one FCT scenario and returns the workload recorder.
func RunFCT(o FCTOptions) *workload.Recorder {
	o.fill()
	cfg := NetConfig{Seed: o.Seed, LinkRate: o.LinkRate, RTT: o.RTT}
	switch o.Mode {
	case "statusquo", "bundler":
	case "innetwork":
		// Fair queueing at the bottleneck itself: the paper's emulated
		// upper bound (a 171-line mahimahi patch in the original).
		cfg.fill()
		cfg.Bottleneck = qdisc.NewSFQ(1024, cfg.BufBytes/pkt.MTU)
	default:
		panic("scenario: unknown mode " + o.Mode)
	}
	n := NewNet(cfg)

	var site *Site
	if o.Mode == "bundler" {
		bcfg := &bundle.Config{Algorithm: o.InnerAlg, TunnelMode: o.TunnelMode}
		depth := o.SendboxQueuePackets
		if depth == 0 {
			depth = 1000
		}
		bcfg.Scheduler = SchedulerByName(n.Eng, o.Scheduler, depth)
		site = n.AddSite(bcfg)
	} else {
		site = n.AddSite(nil)
	}

	rec := site.RunOpenLoop(Traffic{
		OfferedBps:    o.OfferedBps,
		Requests:      o.Requests,
		CC:            o.EndhostCC,
		FixedCwndSegs: o.FixedCwnd,
	})
	check := func() bool { return rec.Completed >= o.Requests }
	if o.Shards >= 1 {
		// Windowed protocol over the same engine: a one-partition world
		// with no ports steps in the same one-second windows with the
		// same check-first cadence as RunUntilDone, so this path is
		// byte-identical to the legacy one below.
		w := shard.NewWorld()
		w.AdoptPart(n.Eng)
		w.SetShards(o.Shards)
		w.Run(o.Horizon, check)
	} else {
		n.RunUntilDone(o.Horizon, check)
	}
	if site.SB != nil {
		site.SB.Stop()
	}
	return rec
}

// Fig9Result is one row of the Figure 9 comparison.
type Fig9Result struct {
	Label   string
	Rec     *workload.Recorder
	Median  float64
	P99     float64
	ByClass [3]float64 // median slowdown per size class
}

// RunFig9 reproduces Figure 9: status quo vs Bundler+SFQ vs In-Network FQ
// vs Bundler+FIFO on the §7.1 web workload.
func RunFig9(seed int64, requests int) []Fig9Result {
	return runFig9(seed, requests, 0)
}

func runFig9(seed int64, requests, shards int) []Fig9Result {
	configs := []struct{ label, mode, sched string }{
		{"Status Quo", "statusquo", ""},
		{"Bundler (SFQ)", "bundler", "sfq"},
		{"In-Network FQ", "innetwork", ""},
		{"Bundler (FIFO)", "bundler", "fifo"},
	}
	var out []Fig9Result
	for _, c := range configs {
		rec := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: c.mode, Scheduler: c.sched, Shards: shards})
		out = append(out, SummarizeFCT(c.label, rec))
	}
	return out
}

// SummarizeFCT condenses a recorder into one row of the shared
// FCT-comparison table.
func SummarizeFCT(label string, rec *workload.Recorder) Fig9Result {
	r := Fig9Result{Label: label, Rec: rec, Median: rec.Slowdowns.Median(), P99: rec.Slowdowns.Quantile(0.99)}
	for i := range rec.ByClass {
		r.ByClass[i] = rec.ByClass[i].Median()
	}
	return r
}

// RunFig14 reproduces Figure 14: the inner-loop algorithm comparison
// (Copa vs BasicDelay vs BBR) plus the status-quo baseline.
func RunFig14(seed int64, requests int) []Fig9Result {
	var out []Fig9Result
	out = append(out, SummarizeFCT("Status Quo",
		RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "statusquo"})))
	for _, alg := range []string{"copa", "basicdelay", "bbr"} {
		rec := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "bundler", InnerAlg: alg})
		out = append(out, SummarizeFCT("Bundler ("+alg+")", rec))
	}
	return out
}

// RunSec74 reproduces the §7.4 endhost-CC result: Bundler's benefit
// persists when endhosts run Reno or BBR instead of Cubic.
func RunSec74(seed int64, requests int) map[string][2]Fig9Result {
	out := make(map[string][2]Fig9Result)
	for _, cc := range []string{"cubic", "reno", "bbr"} {
		sq := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "statusquo", EndhostCC: cc})
		bd := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "bundler", EndhostCC: cc})
		out[cc] = [2]Fig9Result{SummarizeFCT("Status Quo", sq), SummarizeFCT("Bundler", bd)}
	}
	return out
}

// RunFig15 reproduces Figure 15: the idealized TCP proxy (fixed 450-packet
// endhost windows, deeper sendbox buffer) against normal Bundler.
func RunFig15(seed int64, requests int) []Fig9Result {
	normal := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "bundler"})
	proxy := RunFCT(FCTOptions{
		Seed: seed, Requests: requests, Mode: "bundler",
		FixedCwnd: 450, SendboxQueuePackets: 8192,
	})
	return []Fig9Result{
		SummarizeFCT("Bundler", normal),
		SummarizeFCT("Bundler + Proxy", proxy),
	}
}

// Fig13Result reports one bundle's outcome in the competing-bundles
// experiment.
type Fig13Result struct {
	Label   string
	Medians []float64 // median slowdown per bundle
}

// RunFig13 reproduces Figure 13: two bundles sharing the bottleneck at 1:1
// and 2:1 offered-load splits, against the status-quo baseline at the same
// aggregate 84 Mbit/s.
func RunFig13(seed int64, requests int) []Fig13Result {
	splits := []struct {
		label  string
		shares []float64
	}{
		{"Status Quo (aggregate)", nil},
		{"1:1", []float64{0.5, 0.5}},
		{"2:1", []float64{2.0 / 3, 1.0 / 3}},
	}
	var out []Fig13Result
	for _, sp := range splits {
		if sp.shares == nil {
			rec := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "statusquo"})
			out = append(out, Fig13Result{Label: sp.label, Medians: []float64{rec.Slowdowns.Median()}})
			continue
		}
		n := NewNet(NetConfig{Seed: seed})
		var recs []*workload.Recorder
		for _, share := range sp.shares {
			site := n.AddSite(DefaultBundleConfig())
			recs = append(recs, site.RunOpenLoop(Traffic{
				OfferedBps: 84e6 * share,
				Requests:   int(float64(requests) * share),
			}))
		}
		n.RunUntilDone(600*sim.Second, func() bool {
			for i, r := range recs {
				if r.Completed < int(float64(requests)*sp.shares[i]) {
					return false
				}
			}
			return true
		})
		res := Fig13Result{Label: sp.label}
		for _, r := range recs {
			res.Medians = append(res.Medians, r.Slowdowns.Median())
		}
		out = append(out, res)
	}
	return out
}

// Fig11Point is one x-position of the short-flow cross-traffic sweep.
type Fig11Point struct {
	CrossBps float64
	Median   map[string]float64 // config label -> median slowdown of bundle flows
}

// RunFig11 reproduces Figure 11: the bundle offers a fixed 48 Mbit/s while
// un-bundled short-flow cross traffic sweeps from 6 to 42 Mbit/s.
func RunFig11(seed int64, requestsPerPoint int) []Fig11Point {
	var out []Fig11Point
	for cross := 6e6; cross <= 42e6; cross += 12e6 {
		point := Fig11Point{CrossBps: cross, Median: map[string]float64{}}
		for _, mode := range []struct{ label, m, alg string }{
			{"statusquo", "statusquo", ""},
			{"bundler-copa", "bundler", "copa"},
			{"bundler-nimbus", "bundler", "basicdelay"},
		} {
			n := NewNet(NetConfig{Seed: seed})
			var site *Site
			if mode.m == "bundler" {
				site = n.AddSite(&bundle.Config{Algorithm: mode.alg})
			} else {
				site = n.AddSite(nil)
			}
			crossSite := n.AddSite(nil)
			rec := site.RunOpenLoop(Traffic{OfferedBps: 48e6, Requests: requestsPerPoint,
				Warmup: 5 * sim.Second})
			// Scale the cross generator's request count to its offered
			// load so both workloads span the same virtual time (the
			// point measures competition, not a tail of unopposed cross
			// traffic).
			crossReqs := int(float64(requestsPerPoint) * cross / 48e6)
			if crossReqs < 100 {
				crossReqs = 100
			}
			crossRec := crossSite.RunOpenLoop(Traffic{OfferedBps: cross, Requests: crossReqs})
			n.RunUntilDone(600*sim.Second, func() bool {
				return rec.Completed >= requestsPerPoint && crossRec.Completed >= crossReqs
			})
			if site.SB != nil {
				site.SB.Stop()
			}
			point.Median[mode.label] = rec.Slowdowns.Median()
		}
		out = append(out, point)
	}
	return out
}

// Fig12Point reports bundle throughput against N persistent elastic cross
// flows.
type Fig12Point struct {
	CrossFlows int
	Throughput map[string]float64 // config label -> bundle Mbit/s
}

// RunFig12 reproduces Figure 12: 20 backlogged bundled flows compete with
// a varying number of persistent elastic (Cubic) cross flows. Throughput
// is measured after a warmup (detection and mode convergence take several
// seconds).
func RunFig12(seed int64) []Fig12Point {
	const warmup = 20 * sim.Second
	const dur = 80 * sim.Second
	var out []Fig12Point
	for _, crossN := range []int{10, 30, 50} {
		point := Fig12Point{CrossFlows: crossN, Throughput: map[string]float64{}}
		for _, mode := range []struct {
			label string
			alg   string // "" = status quo
		}{
			{"statusquo", ""},
			{"bundler-copa", "copa"},
			{"bundler-nimbus", "basicdelay"},
		} {
			n := NewNet(NetConfig{Seed: seed})
			var site *Site
			if mode.alg != "" {
				site = n.AddSite(&bundle.Config{Algorithm: mode.alg})
			} else {
				site = n.AddSite(nil)
			}
			crossSite := n.AddSite(nil)
			var bundleSenders []*tcp.Sender
			for i := 0; i < 20; i++ {
				bundleSenders = append(bundleSenders, site.AddFlow(1<<40, tcp.NewCubic(), nil))
			}
			for i := 0; i < crossN; i++ {
				crossSite.AddFlow(1<<40, tcp.NewCubic(), nil)
			}
			n.Eng.RunUntil(warmup)
			var at20 int64
			for _, s := range bundleSenders {
				at20 += s.Acked()
			}
			n.Eng.RunUntil(dur)
			var acked int64
			for _, s := range bundleSenders {
				acked += s.Acked()
			}
			if site.SB != nil {
				site.SB.Stop()
			}
			point.Throughput[mode.label] = float64(acked-at20) * 8 / (dur - warmup).Seconds() / 1e6
		}
		out = append(out, point)
	}
	return out
}

// SchedulerByName builds a sendbox scheduler with an explicit depth in
// packets: "sfq" (default), "fifo", "fqcodel", "codel", "red", "drr",
// "pie", "prio:<port>" giving strict priority to destination port
// <port>, "sp:<port>[/<port>...]" for class-based strict priority over
// destination ports (first listed = highest), or
// "wfq:<port>=<weight>[/<port>=<weight>...]" for weighted fair queueing
// (classes are "/"-separated so a spec survives a sweep grid, whose
// axis values split on commas). It panics on an unknown name; code
// paths fed by user-supplied config files use ParseScheduler instead.
func SchedulerByName(eng *sim.Engine, name string, packets int) qdisc.Qdisc {
	q, err := ParseScheduler(eng, name, packets)
	if err != nil {
		panic("scenario: " + err.Error())
	}
	return q
}

// ParseScheduler is SchedulerByName returning an error instead of
// panicking — the entry point for internal/topo's declarative configs,
// where a bad qdisc name is user input, not a programming error.
func ParseScheduler(eng *sim.Engine, name string, packets int) (qdisc.Qdisc, error) {
	switch {
	case name == "" || name == "sfq":
		return qdisc.NewSFQ(1024, packets), nil
	case name == "fifo":
		return qdisc.NewFIFO(packets * pkt.MTU), nil
	case name == "fqcodel":
		return qdisc.NewFQCoDel(eng, 1024, packets), nil
	case name == "codel":
		return qdisc.NewCoDel(eng, packets), nil
	case name == "red":
		return qdisc.NewRED(eng, packets*pkt.MTU), nil
	case name == "drr":
		return qdisc.NewDRR(packets), nil
	case name == "pie":
		return qdisc.NewPIE(eng, packets), nil
	case len(name) > 5 && name[:5] == "prio:":
		var port int
		if _, err := fmt.Sscanf(name[5:], "%d", &port); err != nil || port < 0 || port > 65535 {
			return nil, fmt.Errorf("bad prio port in scheduler %q (want 0-65535)", name)
		}
		return qdisc.NewPrio(2, packets/2*pkt.MTU, func(p *pkt.Packet) int {
			if int(p.Dst.Port) == port {
				return 0
			}
			return 1
		}), nil
	case name == "wfq" || name == "sp":
		// Bare mode names resolve only where a class set is in scope: the
		// topo compiler substitutes its declared classes before reaching
		// here, so seeing one means no classes were declared.
		return nil, fmt.Errorf("scheduler %q needs classes: declare a classes section in the config, or spell out %s", name, specSyntax(name))
	case strings.HasPrefix(name, "wfq:"):
		classes, err := parseClassSpec(name[len("wfq:"):], true)
		if err != nil {
			return nil, fmt.Errorf("scheduler %q: %w", name, err)
		}
		return qdisc.NewWFQ(packets, classes, qdisc.ClassifierByPort(classes)), nil
	case strings.HasPrefix(name, "sp:"):
		classes, err := parseClassSpec(name[len("sp:"):], false)
		if err != nil {
			return nil, fmt.Errorf("scheduler %q: %w", name, err)
		}
		return qdisc.NewSP(packets, classes, qdisc.ClassifierByPort(classes)), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (want sfq, fifo, fqcodel, codel, red, drr, pie, prio:<port>, sp:<port>/..., or wfq:<port>=<weight>/...)", name)
	}
}

func specSyntax(mode string) string {
	if mode == "wfq" {
		return "wfq:<port>=<weight>[/<port>=<weight>...]"
	}
	return "sp:<port>[/<port>...]"
}

// parseClassSpec parses the inline class grammar shared by the sp: and
// wfq: scheduler specs: "/"-separated destination ports, each optionally
// weighted as <port>=<weight> when weighted is true. The separator is
// "/" rather than "," so a full spec survives as one sweep-grid axis
// value (exp.ParseGrid splits values on commas). Classes are named
// "p<port>"; packets matching no class fall to the last listed one.
func parseClassSpec(spec string, weighted bool) ([]qdisc.Class, error) {
	if spec == "" {
		return nil, fmt.Errorf("empty class list")
	}
	seen := make(map[int]bool)
	var classes []qdisc.Class
	for _, tok := range strings.Split(spec, "/") {
		portStr, weightStr, hasWeight := strings.Cut(tok, "=")
		if hasWeight && !weighted {
			return nil, fmt.Errorf("class %q carries a weight, but strict priority takes no weights (weights are a wfq-mode feature)", tok)
		}
		port, err := strconv.Atoi(portStr)
		if err != nil || port < 1 || port > 65535 {
			return nil, fmt.Errorf("bad class port %q (want 1-65535)", portStr)
		}
		if seen[port] {
			return nil, fmt.Errorf("duplicate class port %d", port)
		}
		seen[port] = true
		weight := 1.0
		if hasWeight {
			weight, err = strconv.ParseFloat(weightStr, 64)
			if err != nil || math.IsNaN(weight) || math.IsInf(weight, 0) || weight <= 0 {
				return nil, fmt.Errorf("bad weight %q for port %d (want a positive, finite number)", weightStr, port)
			}
		}
		classes = append(classes, qdisc.Class{Name: "p" + portStr, Port: uint16(port), Weight: weight})
	}
	return classes, nil
}

// --- experiment adapters ---

// fctExp is the single-point FCT run: the unit of work the sweep engine
// fans out, and what cmd/bundler-sim exposes interactively. Registered
// hidden — it is looked up or swept, not part of "all".
type fctExp struct{}

func (fctExp) Name() string { return "fct" }
func (fctExp) Desc() string {
	return "single-point FCT run (the §7.1 setup): rate × RTT × load × scheduler × CC"
}

func (fctExp) Params() []exp.Param {
	return []exp.Param{
		{Name: "mode", Default: "bundler", Help: `"statusquo", "bundler", or "innetwork"`},
		{Name: "alg", Default: "copa", Help: `inner-loop algorithm: "copa", "basicdelay", "bbr"`},
		{Name: "sched", Default: "sfq", Help: `sendbox scheduler: "sfq", "fifo", "fqcodel", "prio:<port>", "sp:<p1>/<p2>", "wfq:<p1>=<w1>/<p2>=<w2>", ...`},
		{Name: "endhost", Default: "cubic", Help: `endhost congestion control: "cubic", "reno", "bbr"`},
		{Name: "rate", Default: "96e6", Help: "bottleneck rate, bits/s"},
		{Name: "rtt", Default: "50ms", Help: "path round-trip propagation delay"},
		{Name: "load", Default: "84e6", Help: "offered load, bits/s"},
		{Name: "loadfrac", Default: "", Help: "offered load as a fraction of rate (overrides load)"},
		{Name: "requests", Default: "10000", Help: "number of requests to complete"},
		{Name: "tunnel", Default: "false", Help: "encapsulation-based epoch marking (§4.5 tunnel mode)"},
		{Name: "shards", Default: "0", Help: "0 = legacy run loop; ≥1 = windowed sharded-world protocol (byte-identical output)"},
	}
}

// Metadata implements exp.Metadater: run-store manifests for swept fct
// cells record which part of the paper the cell reproduces.
func (fctExp) Metadata() map[string]string {
	return map[string]string{"paper": "§7.1", "figure": "9 (single point)"}
}

func (fctExp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	var (
		mode     = b.String("mode", "bundler")
		alg      = b.String("alg", "copa")
		sched    = b.String("sched", "sfq")
		endhost  = b.String("endhost", "cubic")
		rate     = b.Float("rate", 96e6)
		rtt      = b.Duration("rtt", 50*time.Millisecond)
		load     = b.Float("load", 84e6)
		loadfrac = b.Float("loadfrac", 0)
		requests = b.Int("requests", 10000)
		tunnel   = b.Bool("tunnel", false)
		shards   = b.Int("shards", 0)
	)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	if loadfrac > 0 {
		load = loadfrac * rate
	}
	if shards < 0 {
		return exp.Result{}, fmt.Errorf("scenario: fct shards must be non-negative")
	}
	rec := RunFCT(FCTOptions{
		Seed:       seed,
		LinkRate:   rate,
		RTT:        sim.FromSeconds(rtt.Seconds()),
		Requests:   requests,
		OfferedBps: load,
		Mode:       mode,
		InnerAlg:   alg,
		Scheduler:  sched,
		EndhostCC:  endhost,
		TunnelMode: tunnel,
		Shards:     shards,
	})

	s := rec.Slowdowns.Summarize()
	var w strings.Builder
	fmt.Fprintf(&w, "mode=%s alg=%s sched=%s endhost=%s rate=%.0fMbps rtt=%s load=%.0fMbps\n",
		mode, alg, sched, endhost, rate/1e6, rtt, load/1e6)
	fmt.Fprintf(&w, "completed %d requests, %.1f MB total\n", rec.Completed, float64(rec.Bytes)/1e6)
	fmt.Fprintf(&w, "slowdown: p10=%.2f p50=%.2f p90=%.2f p99=%.2f mean=%.2f\n",
		s.P10, s.P50, s.P90, s.P99, s.Mean)
	for c := workload.ClassSmall; c <= workload.ClassLarge; c++ {
		cs := rec.ByClass[c].Summarize()
		fmt.Fprintf(&w, "  %-12s n=%-6d p50=%.2f p90=%.2f p99=%.2f\n", c, cs.N, cs.P50, cs.P90, cs.P99)
	}
	fmt.Fprintf(&w, "FCT: p50=%.1fms p99=%.1fms\n", rec.FCTms.Quantile(0.5), rec.FCTms.Quantile(0.99))

	res := exp.Result{Experiment: "fct", Seed: seed, Params: p, Report: w.String(),
		Summaries: map[string]stats.Summary{"slowdown": s}}
	res.AddMetric("completed", float64(rec.Completed), "requests")
	res.AddMetric("bytes", float64(rec.Bytes), "B")
	res.AddMetric("fct-p50", rec.FCTms.Quantile(0.5), "ms")
	res.AddMetric("fct-p99", rec.FCTms.Quantile(0.99), "ms")
	return res, nil
}

// fig9Exp is the headline comparison (Figure 9).
type fig9Exp struct{}

func (fig9Exp) Name() string { return "fig9" }
func (fig9Exp) Desc() string {
	return "Figure 9: FCT slowdowns — status quo vs Bundler (SFQ/FIFO) vs in-network FQ"
}
func (fig9Exp) Params() []exp.Param {
	return []exp.Param{
		requestsParam("15000"),
		{Name: "shards", Default: "0", Help: "0 = legacy run loop; ≥1 = windowed sharded-world protocol (byte-identical output)"},
	}
}

// Metadata implements exp.Metadater for run-store manifests.
func (fig9Exp) Metadata() map[string]string {
	return map[string]string{"paper": "§7.1", "figure": "9"}
}

func (fig9Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	requests := b.Int("requests", 15000)
	shards := b.Int("shards", 0)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	if shards < 0 {
		return exp.Result{}, fmt.Errorf("scenario: fig9 shards must be non-negative")
	}
	rows := runFig9(seed, requests, shards)
	var w strings.Builder
	ReportHeader(&w, fmt.Sprintf("Figure 9: FCT slowdowns (%d requests; paper: 1M, medians 1.76 → 1.26)", requests))
	WriteFCTRows(&w, rows)
	res := exp.Result{Experiment: "fig9", Seed: seed, Params: p, Report: w.String()}
	AddFCTRowMetrics(&res, rows)
	return res, nil
}

// fig11Exp sweeps short-flow cross traffic (Figure 11).
type fig11Exp struct{}

func (fig11Exp) Name() string { return "fig11" }
func (fig11Exp) Desc() string {
	return "Figure 11: short-flow cross traffic sweep against a fixed 48 Mbit/s bundle"
}
func (fig11Exp) Params() []exp.Param { return []exp.Param{requestsParam("15000")} }

func (fig11Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	requests := b.Int("requests", 15000)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	points := RunFig11(seed, requests/2)
	var w strings.Builder
	ReportHeader(&w, "Figure 11: short-flow cross traffic sweep (bundle fixed at 48 Mbit/s)")
	fmt.Fprintf(&w, "%-12s %12s %14s %16s\n", "cross Mb/s", "status quo", "bundler-copa", "bundler-nimbus")
	res := exp.Result{Experiment: "fig11", Seed: seed, Params: p}
	for _, pt := range points {
		fmt.Fprintf(&w, "%-12.0f %12.2f %14.2f %16.2f\n",
			pt.CrossBps/1e6, pt.Median["statusquo"], pt.Median["bundler-copa"], pt.Median["bundler-nimbus"])
		prefix := fmt.Sprintf("cross%.0fM/", pt.CrossBps/1e6)
		for _, label := range []string{"statusquo", "bundler-copa", "bundler-nimbus"} {
			res.AddMetric(prefix+label+"/median-slowdown", pt.Median[label], "")
		}
	}
	res.Report = w.String()
	return res, nil
}

// fig12Exp measures persistent elastic cross flows (Figure 12).
type fig12Exp struct{}

func (fig12Exp) Name() string { return "fig12" }
func (fig12Exp) Desc() string {
	return "Figure 12: bundle throughput against persistent elastic (Cubic) cross flows"
}
func (fig12Exp) Params() []exp.Param { return nil }

func (fig12Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	points := RunFig12(seed)
	var w strings.Builder
	ReportHeader(&w, "Figure 12: persistent elastic cross flows (paper: 12-22% bundle throughput loss)")
	fmt.Fprintf(&w, "%-12s %12s %14s %16s\n", "cross flows", "status quo", "bundler-copa", "bundler-nimbus")
	res := exp.Result{Experiment: "fig12", Seed: seed, Params: p}
	for _, pt := range points {
		fmt.Fprintf(&w, "%-12d %9.1f Mb/s %11.1f Mb/s %13.1f Mb/s\n",
			pt.CrossFlows, pt.Throughput["statusquo"], pt.Throughput["bundler-copa"], pt.Throughput["bundler-nimbus"])
		prefix := fmt.Sprintf("cross%d/", pt.CrossFlows)
		for _, label := range []string{"statusquo", "bundler-copa", "bundler-nimbus"} {
			res.AddMetric(prefix+label+"/Mbps", pt.Throughput[label], "Mbps")
		}
	}
	res.Report = w.String()
	return res, nil
}

// fig13Exp runs competing bundles (Figure 13).
type fig13Exp struct{}

func (fig13Exp) Name() string { return "fig13" }
func (fig13Exp) Desc() string {
	return "Figure 13: two bundles sharing the bottleneck at 1:1 and 2:1 load splits"
}
func (fig13Exp) Params() []exp.Param { return []exp.Param{requestsParam("15000")} }

func (fig13Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	requests := b.Int("requests", 15000)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	rows := RunFig13(seed, requests)
	var w strings.Builder
	ReportHeader(&w, "Figure 13: competing bundles (aggregate 84 Mbit/s)")
	res := exp.Result{Experiment: "fig13", Seed: seed, Params: p}
	for _, r := range rows {
		var parts []string
		for i, m := range r.Medians {
			parts = append(parts, fmt.Sprintf("bundle%d p50=%.2f", i+1, m))
			res.AddMetric(strings.ReplaceAll(r.Label, " ", "_")+fmt.Sprintf("/bundle%d-median", i+1), m, "")
		}
		fmt.Fprintf(&w, "%-24s %s\n", r.Label, strings.Join(parts, "  "))
	}
	res.Report = w.String()
	return res, nil
}

// fig14Exp compares inner-loop algorithms (Figure 14).
type fig14Exp struct{}

func (fig14Exp) Name() string { return "fig14" }
func (fig14Exp) Desc() string {
	return "Figure 14: inner-loop congestion control comparison (Copa vs BasicDelay vs BBR)"
}
func (fig14Exp) Params() []exp.Param { return []exp.Param{requestsParam("15000")} }

func (fig14Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	requests := b.Int("requests", 15000)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	rows := RunFig14(seed, requests)
	var w strings.Builder
	ReportHeader(&w, "Figure 14: inner-loop congestion control comparison")
	WriteFCTRows(&w, rows)
	res := exp.Result{Experiment: "fig14", Seed: seed, Params: p, Report: w.String()}
	AddFCTRowMetrics(&res, rows)
	return res, nil
}

// fig15Exp runs the idealized TCP proxy comparison (Figure 15).
type fig15Exp struct{}

func (fig15Exp) Name() string { return "fig15" }
func (fig15Exp) Desc() string {
	return "Figure 15: idealized TCP proxy (fixed endhost windows) vs normal Bundler"
}
func (fig15Exp) Params() []exp.Param { return []exp.Param{requestsParam("15000")} }

func (fig15Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	requests := b.Int("requests", 15000)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	rows := RunFig15(seed, requests)
	var w strings.Builder
	ReportHeader(&w, "Figure 15: idealized TCP proxy (fixed 450-packet endhost windows)")
	WriteFCTRows(&w, rows)
	res := exp.Result{Experiment: "fig15", Seed: seed, Params: p, Report: w.String()}
	AddFCTRowMetrics(&res, rows)
	return res, nil
}

// sec74Exp varies the endhost congestion control (§7.4).
type sec74Exp struct{}

func (sec74Exp) Name() string { return "sec74" }
func (sec74Exp) Desc() string {
	return "§7.4: Bundler's benefit with Cubic, Reno, and BBR endhosts"
}
func (sec74Exp) Params() []exp.Param { return []exp.Param{requestsParam("15000")} }

func (sec74Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	requests := b.Int("requests", 15000)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	pairs := RunSec74(seed, requests)
	var ccs []string
	for cc := range pairs {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	var w strings.Builder
	ReportHeader(&w, "§7.4: endhost congestion control")
	res := exp.Result{Experiment: "sec74", Seed: seed, Params: p}
	for _, cc := range ccs {
		pair := pairs[cc]
		fmt.Fprintf(&w, "endhost %-6s status quo p50=%.2f | bundler p50=%.2f (%.0f%% lower)\n",
			cc, pair[0].Median, pair[1].Median, (1-pair[1].Median/pair[0].Median)*100)
		res.AddMetric(cc+"/statusquo-median", pair[0].Median, "")
		res.AddMetric(cc+"/bundler-median", pair[1].Median, "")
	}
	res.Report = w.String()
	return res, nil
}
