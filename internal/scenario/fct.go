package scenario

import (
	"fmt"

	"bundler/internal/bundle"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/tcp"
	"bundler/internal/workload"
)

// FCTOptions parameterizes one flow-completion-time run (the §7.1 setup).
type FCTOptions struct {
	Seed       int64
	LinkRate   float64  // default 96 Mbit/s
	RTT        sim.Time // default 50 ms
	Requests   int      // default 5000
	OfferedBps float64  // default 84 Mbit/s
	// Mode is "statusquo", "bundler", or "innetwork" (fair queueing at the
	// emulated bottleneck, the undeployable upper bound).
	Mode string
	// InnerAlg names the sendbox algorithm ("copa" default).
	InnerAlg string
	// Scheduler names the sendbox qdisc (see SchedulerByName).
	Scheduler string
	// EndhostCC names the endhost algorithm ("cubic" default).
	EndhostCC string
	// FixedCwnd pins endhost windows (the §7.5 proxy emulation).
	FixedCwnd int
	// SendboxQueuePackets overrides the sendbox scheduler depth.
	SendboxQueuePackets int
	// TunnelMode switches epoch identification to the §4.5 encapsulation
	// variant.
	TunnelMode bool
	// Horizon bounds the run.
	Horizon sim.Time
}

func (o *FCTOptions) fill() {
	if o.LinkRate == 0 {
		o.LinkRate = 96e6
	}
	if o.RTT == 0 {
		o.RTT = 50 * sim.Millisecond
	}
	if o.Requests == 0 {
		o.Requests = 5000
	}
	if o.OfferedBps == 0 {
		o.OfferedBps = 84e6
	}
	if o.Mode == "" {
		o.Mode = "bundler"
	}
	if o.Horizon == 0 {
		o.Horizon = 10 * sim.Time(o.Requests) * sim.Millisecond // ≈ load-scaled
		if o.Horizon < 120*sim.Second {
			o.Horizon = 120 * sim.Second
		}
	}
}

// RunFCT executes one FCT scenario and returns the workload recorder.
func RunFCT(o FCTOptions) *workload.Recorder {
	o.fill()
	cfg := NetConfig{Seed: o.Seed, LinkRate: o.LinkRate, RTT: o.RTT}
	switch o.Mode {
	case "statusquo", "bundler":
	case "innetwork":
		// Fair queueing at the bottleneck itself: the paper's emulated
		// upper bound (a 171-line mahimahi patch in the original).
		cfg.fill()
		cfg.Bottleneck = qdisc.NewSFQ(1024, cfg.BufBytes/pkt.MTU)
	default:
		panic("scenario: unknown mode " + o.Mode)
	}
	n := NewNet(cfg)

	var site *Site
	if o.Mode == "bundler" {
		bcfg := &bundle.Config{Algorithm: o.InnerAlg, TunnelMode: o.TunnelMode}
		depth := o.SendboxQueuePackets
		if depth == 0 {
			depth = 1000
		}
		bcfg.Scheduler = SchedulerByName(n.Eng, o.Scheduler, depth)
		site = n.AddSite(bcfg)
	} else {
		site = n.AddSite(nil)
	}

	rec := site.RunOpenLoop(Traffic{
		OfferedBps:    o.OfferedBps,
		Requests:      o.Requests,
		CC:            o.EndhostCC,
		FixedCwndSegs: o.FixedCwnd,
	})
	n.RunUntilDone(o.Horizon, func() bool { return rec.Completed >= o.Requests })
	if site.SB != nil {
		site.SB.Stop()
	}
	return rec
}

// Fig9Result is one row of the Figure 9 comparison.
type Fig9Result struct {
	Label   string
	Rec     *workload.Recorder
	Median  float64
	P99     float64
	ByClass [3]float64 // median slowdown per size class
}

// RunFig9 reproduces Figure 9: status quo vs Bundler+SFQ vs In-Network FQ
// vs Bundler+FIFO on the §7.1 web workload.
func RunFig9(seed int64, requests int) []Fig9Result {
	configs := []struct{ label, mode, sched string }{
		{"Status Quo", "statusquo", ""},
		{"Bundler (SFQ)", "bundler", "sfq"},
		{"In-Network FQ", "innetwork", ""},
		{"Bundler (FIFO)", "bundler", "fifo"},
	}
	var out []Fig9Result
	for _, c := range configs {
		rec := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: c.mode, Scheduler: c.sched})
		out = append(out, summarizeFig9(c.label, rec))
	}
	return out
}

func summarizeFig9(label string, rec *workload.Recorder) Fig9Result {
	r := Fig9Result{Label: label, Rec: rec, Median: rec.Slowdowns.Median(), P99: rec.Slowdowns.Quantile(0.99)}
	for i := range rec.ByClass {
		r.ByClass[i] = rec.ByClass[i].Median()
	}
	return r
}

// RunFig14 reproduces Figure 14: the inner-loop algorithm comparison
// (Copa vs BasicDelay vs BBR) plus the status-quo baseline.
func RunFig14(seed int64, requests int) []Fig9Result {
	var out []Fig9Result
	out = append(out, summarizeFig9("Status Quo",
		RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "statusquo"})))
	for _, alg := range []string{"copa", "basicdelay", "bbr"} {
		rec := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "bundler", InnerAlg: alg})
		out = append(out, summarizeFig9("Bundler ("+alg+")", rec))
	}
	return out
}

// RunSec74 reproduces the §7.4 endhost-CC result: Bundler's benefit
// persists when endhosts run Reno or BBR instead of Cubic.
func RunSec74(seed int64, requests int) map[string][2]Fig9Result {
	out := make(map[string][2]Fig9Result)
	for _, cc := range []string{"cubic", "reno", "bbr"} {
		sq := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "statusquo", EndhostCC: cc})
		bd := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "bundler", EndhostCC: cc})
		out[cc] = [2]Fig9Result{summarizeFig9("Status Quo", sq), summarizeFig9("Bundler", bd)}
	}
	return out
}

// RunFig15 reproduces Figure 15: the idealized TCP proxy (fixed 450-packet
// endhost windows, deeper sendbox buffer) against normal Bundler.
func RunFig15(seed int64, requests int) []Fig9Result {
	normal := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "bundler"})
	proxy := RunFCT(FCTOptions{
		Seed: seed, Requests: requests, Mode: "bundler",
		FixedCwnd: 450, SendboxQueuePackets: 8192,
	})
	return []Fig9Result{
		summarizeFig9("Bundler", normal),
		summarizeFig9("Bundler + Proxy", proxy),
	}
}

// Fig13Result reports one bundle's outcome in the competing-bundles
// experiment.
type Fig13Result struct {
	Label   string
	Medians []float64 // median slowdown per bundle
}

// RunFig13 reproduces Figure 13: two bundles sharing the bottleneck at 1:1
// and 2:1 offered-load splits, against the status-quo baseline at the same
// aggregate 84 Mbit/s.
func RunFig13(seed int64, requests int) []Fig13Result {
	splits := []struct {
		label  string
		shares []float64
	}{
		{"Status Quo (aggregate)", nil},
		{"1:1", []float64{0.5, 0.5}},
		{"2:1", []float64{2.0 / 3, 1.0 / 3}},
	}
	var out []Fig13Result
	for _, sp := range splits {
		if sp.shares == nil {
			rec := RunFCT(FCTOptions{Seed: seed, Requests: requests, Mode: "statusquo"})
			out = append(out, Fig13Result{Label: sp.label, Medians: []float64{rec.Slowdowns.Median()}})
			continue
		}
		n := NewNet(NetConfig{Seed: seed})
		var recs []*workload.Recorder
		for _, share := range sp.shares {
			site := n.AddSite(DefaultBundleConfig())
			recs = append(recs, site.RunOpenLoop(Traffic{
				OfferedBps: 84e6 * share,
				Requests:   int(float64(requests) * share),
			}))
		}
		n.RunUntilDone(600*sim.Second, func() bool {
			for i, r := range recs {
				if r.Completed < int(float64(requests)*sp.shares[i]) {
					return false
				}
			}
			return true
		})
		res := Fig13Result{Label: sp.label}
		for _, r := range recs {
			res.Medians = append(res.Medians, r.Slowdowns.Median())
		}
		out = append(out, res)
	}
	return out
}

// Fig11Point is one x-position of the short-flow cross-traffic sweep.
type Fig11Point struct {
	CrossBps float64
	Median   map[string]float64 // config label -> median slowdown of bundle flows
}

// RunFig11 reproduces Figure 11: the bundle offers a fixed 48 Mbit/s while
// un-bundled short-flow cross traffic sweeps from 6 to 42 Mbit/s.
func RunFig11(seed int64, requestsPerPoint int) []Fig11Point {
	var out []Fig11Point
	for cross := 6e6; cross <= 42e6; cross += 12e6 {
		point := Fig11Point{CrossBps: cross, Median: map[string]float64{}}
		for _, mode := range []struct{ label, m, alg string }{
			{"statusquo", "statusquo", ""},
			{"bundler-copa", "bundler", "copa"},
			{"bundler-nimbus", "bundler", "basicdelay"},
		} {
			n := NewNet(NetConfig{Seed: seed})
			var site *Site
			if mode.m == "bundler" {
				site = n.AddSite(&bundle.Config{Algorithm: mode.alg})
			} else {
				site = n.AddSite(nil)
			}
			crossSite := n.AddSite(nil)
			rec := site.RunOpenLoop(Traffic{OfferedBps: 48e6, Requests: requestsPerPoint,
				Warmup: 5 * sim.Second})
			// Scale the cross generator's request count to its offered
			// load so both workloads span the same virtual time (the
			// point measures competition, not a tail of unopposed cross
			// traffic).
			crossReqs := int(float64(requestsPerPoint) * cross / 48e6)
			if crossReqs < 100 {
				crossReqs = 100
			}
			crossRec := crossSite.RunOpenLoop(Traffic{OfferedBps: cross, Requests: crossReqs})
			n.RunUntilDone(600*sim.Second, func() bool {
				return rec.Completed >= requestsPerPoint && crossRec.Completed >= crossReqs
			})
			if site.SB != nil {
				site.SB.Stop()
			}
			point.Median[mode.label] = rec.Slowdowns.Median()
		}
		out = append(out, point)
	}
	return out
}

// Fig12Point reports bundle throughput against N persistent elastic cross
// flows.
type Fig12Point struct {
	CrossFlows int
	Throughput map[string]float64 // config label -> bundle Mbit/s
}

// RunFig12 reproduces Figure 12: 20 backlogged bundled flows compete with
// a varying number of persistent elastic (Cubic) cross flows. Throughput
// is measured after a warmup (detection and mode convergence take several
// seconds).
func RunFig12(seed int64) []Fig12Point {
	const warmup = 20 * sim.Second
	const dur = 80 * sim.Second
	var out []Fig12Point
	for _, crossN := range []int{10, 30, 50} {
		point := Fig12Point{CrossFlows: crossN, Throughput: map[string]float64{}}
		for _, mode := range []struct {
			label string
			alg   string // "" = status quo
		}{
			{"statusquo", ""},
			{"bundler-copa", "copa"},
			{"bundler-nimbus", "basicdelay"},
		} {
			n := NewNet(NetConfig{Seed: seed})
			var site *Site
			if mode.alg != "" {
				site = n.AddSite(&bundle.Config{Algorithm: mode.alg})
			} else {
				site = n.AddSite(nil)
			}
			crossSite := n.AddSite(nil)
			var bundleSenders []*tcp.Sender
			for i := 0; i < 20; i++ {
				bundleSenders = append(bundleSenders, site.AddFlow(1<<40, tcp.NewCubic(), nil))
			}
			for i := 0; i < crossN; i++ {
				crossSite.AddFlow(1<<40, tcp.NewCubic(), nil)
			}
			n.Eng.RunUntil(warmup)
			var at20 int64
			for _, s := range bundleSenders {
				at20 += s.Acked()
			}
			n.Eng.RunUntil(dur)
			var acked int64
			for _, s := range bundleSenders {
				acked += s.Acked()
			}
			if site.SB != nil {
				site.SB.Stop()
			}
			point.Throughput[mode.label] = float64(acked-at20) * 8 / (dur - warmup).Seconds() / 1e6
		}
		out = append(out, point)
	}
	return out
}

// SchedulerByName builds a sendbox scheduler with an explicit depth in
// packets: "sfq" (default), "fifo", "fqcodel", "codel", "red", "drr",
// "pie", or "prio:<port>" giving strict priority to destination port
// <port>.
func SchedulerByName(eng *sim.Engine, name string, packets int) qdisc.Qdisc {
	switch {
	case name == "" || name == "sfq":
		return qdisc.NewSFQ(1024, packets)
	case name == "fifo":
		return qdisc.NewFIFO(packets * pkt.MTU)
	case name == "fqcodel":
		return qdisc.NewFQCoDel(eng, 1024, packets)
	case name == "codel":
		return qdisc.NewCoDel(eng, packets)
	case name == "red":
		return qdisc.NewRED(eng.Rand(), packets*pkt.MTU)
	case name == "drr":
		return qdisc.NewDRR(packets)
	case name == "pie":
		return qdisc.NewPIE(eng, eng.Rand(), packets)
	case len(name) > 5 && name[:5] == "prio:":
		var port int
		if _, err := fmt.Sscanf(name[5:], "%d", &port); err != nil {
			panic("scenario: bad prio port in " + name)
		}
		return qdisc.NewPrio(2, packets/2*pkt.MTU, func(p *pkt.Packet) int {
			if int(p.Dst.Port) == port {
				return 0
			}
			return 1
		})
	default:
		panic("scenario: unknown scheduler " + name)
	}
}
