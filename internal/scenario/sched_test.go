package scenario

import (
	"strings"
	"testing"

	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
)

// TestParseSchedulerSpecs pins the inline sp:/wfq: class-spec grammar —
// every malformed spec a config or -sched flag can carry must come back
// as an error naming the problem, and well-formed specs must build the
// scheduler they name. The "/" separator (not ",") is load-bearing: a
// spec must survive as a single sweep-grid axis value.
func TestParseSchedulerSpecs(t *testing.T) {
	eng := sim.NewEngine(1)
	good := []struct {
		name string
		spec string
	}{
		{"sp two ports", "sp:8443/80"},
		{"sp one port", "sp:53"},
		{"wfq weighted", "wfq:8443=8/80=1"},
		{"wfq default weight", "wfq:8443/80"},
		{"wfq fractional weight", "wfq:8443=2.5/80=1"},
	}
	for _, tc := range good {
		t.Run(tc.name, func(t *testing.T) {
			q, err := ParseScheduler(eng, tc.spec, 100)
			if err != nil {
				t.Fatalf("ParseScheduler(%q): %v", tc.spec, err)
			}
			if q == nil {
				t.Fatalf("ParseScheduler(%q) returned nil qdisc", tc.spec)
			}
		})
	}

	bad := []struct {
		name string
		spec string
		want string // error substring
	}{
		{"bare wfq", "wfq", "needs classes"},
		{"bare sp", "sp", "needs classes"},
		{"sp empty list", "sp:", "empty class list"},
		{"wfq empty list", "wfq:", "empty class list"},
		{"weights on sp", "sp:8443=4/80", "takes no weights"},
		{"bad port", "wfq:notaport=1", "bad class port"},
		{"port zero", "sp:0/80", "bad class port"},
		{"port too big", "sp:70000", "bad class port"},
		{"duplicate port", "wfq:80=4/80=1", "duplicate class port"},
		{"negative weight", "wfq:8443=-2/80=1", "bad weight"},
		{"zero weight", "wfq:8443=0/80=1", "bad weight"},
		{"nan weight", "wfq:8443=NaN/80=1", "bad weight"},
		{"inf weight", "wfq:8443=+Inf/80=1", "bad weight"},
		{"garbage weight", "wfq:8443=heavy/80=1", "bad weight"},
		{"unknown name", "hfsc", "unknown scheduler"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseScheduler(eng, tc.spec, 100); err == nil {
				t.Fatalf("ParseScheduler(%q) accepted a bad spec", tc.spec)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseScheduler(%q) error %q does not mention %q", tc.spec, err, tc.want)
			}
		})
	}
}

// TestParseSchedulerSpecSemantics: a built sp: spec actually prioritizes
// its first port, and a wfq: spec routes unmatched traffic to the last
// class rather than dropping or misclassifying it.
func TestParseSchedulerSpecSemantics(t *testing.T) {
	eng := sim.NewEngine(1)
	mk := func(port uint16, size int) *pkt.Packet {
		return &pkt.Packet{Dst: pkt.Addr{Host: 2, Port: port}, Proto: pkt.ProtoTCP, Size: size}
	}

	sp, err := ParseScheduler(eng, "sp:8443/80", 100)
	if err != nil {
		t.Fatal(err)
	}
	sp.Enqueue(mk(80, 100))
	sp.Enqueue(mk(8443, 100))
	if p := sp.Dequeue(); p.Dst.Port != 8443 {
		t.Fatalf("sp served port %d first, want 8443", p.Dst.Port)
	}

	wq, err := ParseScheduler(eng, "wfq:8443=8/80=1", 100)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := wq.(*qdisc.WFQ)
	if !ok {
		t.Fatalf("wfq spec built %T", wq)
	}
	// Unmatched port 443 lands in the last class ("p80"): it must still
	// be queued and come back out.
	w.Enqueue(mk(443, 100))
	if w.Len() != 1 {
		t.Fatal("unmatched packet not queued")
	}
	if p := w.Dequeue(); p == nil || p.Dst.Port != 443 {
		t.Fatal("unmatched packet lost")
	}
}
