package scenario_test

import (
	"encoding/json"
	"runtime"
	"testing"

	"bundler/internal/exp"
	"bundler/internal/pkt"
	"bundler/internal/scenario"
	"bundler/internal/sim"
)

// runNormalized executes a registered experiment and returns its result
// as JSON with Params stripped: the shards knob legitimately differs
// between the runs under comparison, and the whole point is that nothing
// else may.
func runNormalized(t *testing.T, name string, seed int64, p exp.Params) []byte {
	t.Helper()
	e, ok := exp.Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := e.Run(seed, p)
	if err != nil {
		t.Fatalf("%s %v: %v", name, p, err)
	}
	res.Params = nil
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardDeterminism is the sharded engine's hard gate: shards=N must
// be byte-identical to shards=1 — metrics, summaries, report text, every
// NaN — on both mesh modes, and the windowed world protocol (shards≥1)
// must be byte-identical to the legacy run loop (shards=0) on the
// single-engine fig9/fct scenarios. CI runs this under -race, so the
// multi-worker runs also prove the partition isolation claims.
func TestShardDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		exp    string
		params exp.Params
		shards []string
	}{
		{"mesh hub", "mesh",
			exp.Params{"sites": "4", "requests": "10", "perturb": "300ms", "jitter": "1ms"},
			[]string{"1", "8"}},
		{"mesh pairwise", "mesh",
			exp.Params{"sites": "4", "mode": "pairwise", "requests": "10", "perturb": "300ms"},
			[]string{"1", "8"}},
		{"fig9", "fig9", exp.Params{"requests": "400"}, []string{"0", "1", "8"}},
		{"fct", "fct", exp.Params{"requests": "400"}, []string{"0", "1", "8"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.params.Clone()
			base["shards"] = tc.shards[0]
			want := runNormalized(t, tc.exp, 1, base)
			for _, s := range tc.shards[1:] {
				p := tc.params.Clone()
				p["shards"] = s
				got := runNormalized(t, tc.exp, 1, p)
				if string(got) != string(want) {
					t.Fatalf("shards=%s output diverges from shards=%s:\n got: %s\nwant: %s",
						s, tc.shards[0], got, want)
				}
			}
		})
	}
}

// TestMeshPoolHandoffConservation proves the cross-partition pool
// hand-off actually happens on a hub mesh and conserves packets: every
// partition pool must satisfy Gets + TransferredIn ≥ Puts +
// TransferredOut (the slack is end-of-run in-flight state), hand-offs
// must flow in both directions through the core, and the global live
// count must stay bounded as in the invariant tests.
func TestMeshPoolHandoffConservation(t *testing.T) {
	liveBefore := pkt.Live()
	m := scenario.NewMesh(scenario.MeshOptions{
		Seed: 1, Sites: 4, Bundled: true, Requests: 20,
		PerturbPeriod: 300 * sim.Millisecond, Shards: 8,
	})
	m.Run()

	if m.World.Transferred() == 0 {
		t.Fatal("hub mesh ran without a single cross-partition hand-off")
	}
	var totalIn, totalOut int64
	for i, fab := range m.Fabs {
		s, in, out := fab.Pool.Stats()
		if s.Gets == 0 {
			t.Errorf("site %d pool minted no packets", i)
		}
		if out == 0 || in == 0 {
			t.Errorf("site %d pool never exchanged packets across the boundary (in %d, out %d)", i, in, out)
		}
		if live := s.Gets + in - s.Puts - out; live < 0 {
			t.Errorf("site %d pool conservation violated: gets %d + in %d < puts %d + out %d",
				i, s.Gets, in, s.Puts, out)
		}
		totalIn += in
		totalOut += out
	}
	// Site pools and the core pool are the only parties to hand-offs, so
	// the site totals must not exceed the barrier count on either side.
	if totalIn > m.World.Transferred() || totalOut > m.World.Transferred() {
		t.Errorf("site pools saw %d in / %d out, more than the %d barrier transfers",
			totalIn, totalOut, m.World.Transferred())
	}
	delta := pkt.Live() - liveBefore
	if delta < 0 || delta > 200_000 {
		t.Errorf("global live packet delta %d outside [0, 200000]", delta)
	}
}

// budgetProbe is a stub experiment that records the shard budget and the
// effective shard count a freshly built mesh would get, as observed from
// inside a sweep worker.
type budgetProbe struct {
	budgets chan int
	shards  chan int
}

func (budgetProbe) Name() string        { return "budget-probe" }
func (budgetProbe) Desc() string        { return "records ShardBudget inside sweep workers" }
func (budgetProbe) Params() []exp.Param { return nil }

func (b budgetProbe) Run(seed int64, p exp.Params) (exp.Result, error) {
	b.budgets <- exp.ShardBudget()
	m := scenario.NewMesh(scenario.MeshOptions{Seed: seed, Sites: 2, Requests: 1})
	b.shards <- m.Shards()
	return exp.Result{Experiment: "budget-probe", Seed: seed}, nil
}

// TestShardBudgetUnderSweep pins the oversubscription fix: a scenario
// auto-sizing its shards (shards=0) inside a sweep must divide
// GOMAXPROCS by the active worker count, so workers × shards never
// oversubscribes the machine. The combined case — sweep parallelism AND
// shard parallelism at once — is exactly what used to oversubscribe.
func TestShardBudgetUnderSweep(t *testing.T) {
	if got := exp.ShardBudget(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("outside any sweep ShardBudget() = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	const workers = 3
	probe := budgetProbe{budgets: make(chan int, workers), shards: make(chan int, workers)}
	g := exp.Grid{Seeds: []int64{1, 2, 3}}
	if _, err := exp.Sweep(probe, g, workers, nil); err != nil {
		t.Fatal(err)
	}
	close(probe.budgets)
	close(probe.shards)
	wantBudget := runtime.GOMAXPROCS(0) / workers
	if wantBudget < 1 {
		wantBudget = 1
	}
	for b := range probe.budgets {
		if b != wantBudget {
			t.Errorf("inside %d-worker sweep ShardBudget() = %d, want %d", workers, b, wantBudget)
		}
	}
	// A 2-site hub mesh has 3 partitions; the effective shard count is
	// the budget clamped to that.
	wantShards := wantBudget
	if wantShards > 3 {
		wantShards = 3
	}
	for s := range probe.shards {
		if s != wantShards {
			t.Errorf("auto-sharded mesh inside sweep uses %d shards, want %d", s, wantShards)
		}
	}
}
