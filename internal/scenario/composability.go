package scenario

import (
	"fmt"
	"strings"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/exp"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/tcp"
)

// HierarchicalResult summarizes the §9 composability experiment: two
// departments (sub-sites), each running its own Bundler pair, nested
// inside a parent institute's Bundler pair.
type HierarchicalResult struct {
	// Matched congestion ACKs per control loop: proof each loop operates.
	ParentMatched, SubAMatched, SubBMatched int
	// Per-department goodput, Mbit/s.
	SubAMbps, SubBMbps float64
	// Mean bottleneck queueing delay, ms (should stay small: the parent
	// loop shifts it to the parent sendbox).
	BottleneckQueueMs float64
	// Parent and department sendbox queue means, ms.
	ParentQueueMs, SubAQueueMs float64
}

// RunHierarchical builds the nested topology the paper's §9 sketches:
//
//	dept-A hosts ─► subbox-A ─┐
//	                          ├─► parentbox ─► bottleneck ─► parent tap ─► sub taps ─► hosts
//	dept-B hosts ─► subbox-B ─┘
//
// Each department bundles its traffic to its counterpart department; the
// institute bundles the aggregate. All three inner loops run concurrently;
// the parent's delay control shifts the in-network queue to the parent
// sendbox, and each department schedules within its own sub-bundle.
func RunHierarchical(seed int64, dur sim.Time) HierarchicalResult {
	eng := sim.NewEngine(seed)
	muxA, muxB := tcp.NewMux(), tcp.NewMux()
	const rate, rtt = 96e6, 50 * sim.Millisecond
	demux := netem.NewDemux()
	bottleneck := netem.NewLink(eng, "bottleneck", rate, rtt/2,
		qdisc.NewFIFO(2*int(rate/8*rtt.Seconds())), demux)
	reverse := netem.NewLink(eng, "reverse", 10e9, rtt/2, qdisc.NewFIFO(1<<26), muxA)

	ctl := func(host uint32, port uint16) pkt.Addr { return pkt.Addr{Host: host, Port: port} }

	// Parent pair.
	parentSB := bundle.NewSendbox(eng, bundle.Config{}, bottleneck, ctl(1<<30, 1), ctl(1<<30, 2))
	parentRB := bundle.NewReceivebox(eng, reverse, ctl(1<<30, 2), ctl(1<<30, 1), 0)
	muxA.Register(ctl(1<<30, 1), parentSB)
	muxB.Register(ctl(1<<30, 2), parentRB)

	// Department pairs: their sendboxes feed the parent sendbox; their
	// receiveboxes tap behind the parent's tap.
	subASB := bundle.NewSendbox(eng, bundle.Config{}, parentSB, ctl(1<<30+1, 1), ctl(1<<30+1, 2))
	subARB := bundle.NewReceivebox(eng, reverse, ctl(1<<30+1, 2), ctl(1<<30+1, 1), 0)
	subBSB := bundle.NewSendbox(eng, bundle.Config{}, parentSB, ctl(1<<30+2, 1), ctl(1<<30+2, 2))
	subBRB := bundle.NewReceivebox(eng, reverse, ctl(1<<30+2, 2), ctl(1<<30+2, 1), 0)
	muxA.Register(ctl(1<<30+1, 1), subASB)
	muxA.Register(ctl(1<<30+2, 1), subBSB)
	muxB.Register(ctl(1<<30+1, 2), subARB)
	muxB.Register(ctl(1<<30+2, 2), subBRB)

	// Destination-side tap chain: parent observes everything, then the
	// right department's receivebox observes its own half.
	subATap := netem.NewTap(subARB.Observe, muxB)
	subBTap := netem.NewTap(subBRB.Observe, muxB)
	// Department membership by destination host parity.
	deptMux := netem.ReceiverFunc(func(p *pkt.Packet) {
		if p.Dst.Host%2 == 0 {
			subATap.Receive(p)
		} else {
			subBTap.Receive(p)
		}
	})
	demux.Default = netem.NewTap(parentRB.Observe, deptMux)
	// Control addresses must bypass the parity split.
	for _, a := range []pkt.Addr{ctl(1<<30, 2), ctl(1<<30+1, 2), ctl(1<<30+2, 2)} {
		demux.Route(a.Host, muxB)
	}

	// Backlogged flows per department (even dst hosts = dept A).
	var next uint32 = 1 << 16
	addFlow := func(sb *bundle.Sendbox, even bool) *tcp.Sender {
		src := pkt.Addr{Host: next, Port: 5000}
		next++
		dst := pkt.Addr{Host: next, Port: 80}
		next++
		if even != (dst.Host%2 == 0) {
			dst.Host++
			next++
		}
		flowID := uint64(dst.Host)
		s := tcp.NewSender(eng, sb, src, dst, flowID, 1<<40, tcp.NewCubic(), nil)
		r := tcp.NewReceiver(eng, reverse, dst, src, flowID, 1<<40, nil)
		muxA.Register(src, s)
		muxB.Register(dst, r)
		s.Start()
		return s
	}
	var aFlows, bFlows []*tcp.Sender
	for i := 0; i < 5; i++ {
		aFlows = append(aFlows, addFlow(subASB, true))
		bFlows = append(bFlows, addFlow(subBSB, false))
	}

	var bnQ, pQ, aQ float64
	var samples int
	sim.Tick(eng, 100*sim.Millisecond, func() {
		if eng.Now() < 5*sim.Second {
			return
		}
		bnQ += bottleneck.QueueDelay().Millis()
		pQ += parentSB.QueueDelay().Millis()
		aQ += subASB.QueueDelay().Millis()
		samples++
	})
	eng.RunUntil(dur)
	parentSB.Stop()
	subASB.Stop()
	subBSB.Stop()

	var res HierarchicalResult
	res.ParentMatched = parentSB.AcksMatched
	res.SubAMatched = subASB.AcksMatched
	res.SubBMatched = subBSB.AcksMatched
	for _, s := range aFlows {
		res.SubAMbps += float64(s.Acked()) * 8 / dur.Seconds() / 1e6
	}
	for _, s := range bFlows {
		res.SubBMbps += float64(s.Acked()) * 8 / dur.Seconds() / 1e6
	}
	if samples > 0 {
		res.BottleneckQueueMs = bnQ / float64(samples)
		res.ParentQueueMs = pQ / float64(samples)
		res.SubAQueueMs = aQ / float64(samples)
	}
	return res
}

// --- experiment adapter ---

// hierExp is the §9 composability experiment: nested Bundler pairs. The
// seed CLI never exposed it; the registry makes it runnable for free.
type hierExp struct{}

func (hierExp) Name() string { return "hier" }
func (hierExp) Desc() string {
	return "§9: hierarchical bundles — two department pairs nested in an institute pair"
}
func (hierExp) Params() []exp.Param {
	return []exp.Param{{Name: "dur", Default: "30s", Help: "run duration (virtual time)"}}
}

func (hierExp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	dur := sim.FromSeconds(b.Duration("dur", 30*time.Second).Seconds())
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	res := RunHierarchical(seed, dur)
	var w strings.Builder
	ReportHeader(&w, "§9: hierarchical bundles (two departments nested in an institute)")
	fmt.Fprintf(&w, "matched congestion ACKs: parent=%d dept-A=%d dept-B=%d\n",
		res.ParentMatched, res.SubAMatched, res.SubBMatched)
	fmt.Fprintf(&w, "goodput: dept-A %.1f Mb/s, dept-B %.1f Mb/s\n", res.SubAMbps, res.SubBMbps)
	fmt.Fprintf(&w, "queues: bottleneck %.1f ms, parent sendbox %.1f ms, dept-A sendbox %.1f ms\n",
		res.BottleneckQueueMs, res.ParentQueueMs, res.SubAQueueMs)
	out := exp.Result{Experiment: "hier", Seed: seed, Params: p, Report: w.String()}
	out.AddMetric("parent-matched", float64(res.ParentMatched), "acks")
	out.AddMetric("deptA-Mbps", res.SubAMbps, "Mbps")
	out.AddMetric("deptB-Mbps", res.SubBMbps, "Mbps")
	out.AddMetric("bottleneck-queue", res.BottleneckQueueMs, "ms")
	out.AddMetric("parent-queue", res.ParentQueueMs, "ms")
	return out, nil
}
