package scenario

import (
	"fmt"
	"io"
	"strings"

	"bundler/internal/exp"
)

// This file fixes the canonical experiment ordering in one place: the
// registry preserves registration order, and both CLIs derive their
// experiment lists, help text, and "all"-mode sequence from it. The
// adapters themselves live next to the Run* entry points they wrap
// (fct.go, timeline.go, ...). Registering here — rather than in per-file
// init functions — keeps the ordering explicit instead of depending on
// Go's file-name init sequence.
func init() {
	exp.Register(fig2Exp{})
	exp.Register(fig56Exp{})
	exp.RegisterAlias("fig5", "fig56")
	exp.RegisterAlias("fig6", "fig56")
	exp.Register(fig7Exp{})
	exp.Register(fig9Exp{})
	exp.Register(fig10Exp{})
	exp.Register(fig11Exp{})
	exp.Register(fig12Exp{})
	exp.Register(fig13Exp{})
	exp.Register(fig14Exp{})
	exp.Register(fig15Exp{})
	exp.Register(fig16Exp{})
	exp.Register(sec72Exp{})
	exp.Register(sec74Exp{})
	exp.Register(sec76Exp{})
	exp.Register(policiesExp{})
	exp.Register(hierExp{})
	exp.Register(meshExp{})
	exp.RegisterHidden(fctExp{})
}

// ReportHeader writes the banner every experiment report opens with.
func ReportHeader(w io.Writer, s string) {
	fmt.Fprintf(w, "\n=== %s ===\n", s)
}

// WriteFCTRows renders the shared slowdown table of the FCT-comparison
// figures (9, 14, 15) and of internal/topo's "fct"-style config reports.
func WriteFCTRows(w io.Writer, rows []Fig9Result) {
	fmt.Fprintf(w, "%-22s %8s %8s | median slowdown by size: %-10s %-12s %-10s\n",
		"", "p50", "p99", "≤10KB", "10KB-1MB", ">1MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8.2f %8.2f | %26.2f %-12.2f %-10.2f\n",
			r.Label, r.Median, r.P99, r.ByClass[0], r.ByClass[1], r.ByClass[2])
	}
}

// AddFCTRowMetrics records the headline numbers of an FCT-comparison
// table as Result metrics.
func AddFCTRowMetrics(res *exp.Result, rows []Fig9Result) {
	for _, r := range rows {
		label := strings.ReplaceAll(r.Label, " ", "_")
		res.AddMetric(label+"/median-slowdown", r.Median, "")
		res.AddMetric(label+"/p99-slowdown", r.P99, "")
	}
}

// requestsParam is the shared declaration for experiments scaled by the
// CLI-level -requests knob.
func requestsParam(def string) exp.Param {
	return exp.Param{Name: "requests", Default: def,
		Help: "requests per FCT experiment (paper: 1,000,000)"}
}

// artifactsParam is the shared declaration for experiments that can
// render CSV trace artifacts; the CLI sets it when -dump is given so
// runs without a dump directory skip the serialization entirely.
func artifactsParam() exp.Param {
	return exp.Param{Name: "artifacts", Default: "false",
		Help: "render CSV trace artifacts (set by bundler-bench -dump)"}
}
