package scenario

import (
	"fmt"
	"strings"
	"time"

	"bundler/internal/exp"
	"bundler/internal/sim"
	"bundler/internal/stats"
	"bundler/internal/tcp"
	"bundler/internal/udpapp"
)

// WANPath is one emulated wide-area path from the sender datacenter to a
// remote region (§8's GCP Iowa → {Belgium, Frankfurt, Oregon, South
// Carolina, Tokyo} over the public Internet).
type WANPath struct {
	Name    string
	BaseRTT sim.Time
	// RateBps is the non-edge bottleneck (the paper suspects a cloud
	// egress rate limiter or an on-path ISP).
	RateBps float64
}

// DefaultWANPaths approximates the five §8 deployments. Rates are scaled
// down from the 2–4 Gbit/s testbed so the sweep runs quickly; the
// queueing behaviour is rate-independent.
func DefaultWANPaths() []WANPath {
	return []WANPath{
		{"belgium", 102 * sim.Millisecond, 200e6},
		{"frankfurt", 106 * sim.Millisecond, 200e6},
		{"oregon", 36 * sim.Millisecond, 200e6},
		{"s-carolina", 30 * sim.Millisecond, 200e6},
		{"tokyo", 140 * sim.Millisecond, 200e6},
	}
}

// WANPathResult summarizes one bundle in the §8 experiment.
type WANPathResult struct {
	Name string
	// Milliseconds, medians over the 10 request/response loops.
	BaseRTT, StatusQuoRTT, BundlerRTT float64
	// P90 latencies for the same three configurations.
	BaseP90, StatusQuoP90, BundlerP90 float64
	// Backlogged-transfer throughput (Mbit/s) with and without Bundler;
	// the paper reports Bundler within 1 % of status quo.
	StatusQuoMbps, BundlerMbps float64
}

// RunFig16 reproduces the §8 real-path experiment in emulation. Per path:
// (i) base RTT from 10 closed-loop 40-byte UDP request/response pairs on
// an idle path; (ii) the same probes competing with 20 backlogged flows,
// without Bundler; (iii) with Bundler (SFQ). Bundler should restore
// request-response RTTs to near the base while preserving bulk throughput.
func RunFig16(seed int64, dur sim.Time) []WANPathResult {
	var out []WANPathResult
	for _, p := range DefaultWANPaths() {
		res := WANPathResult{Name: p.Name}

		runCase := func(withBundler, withLoad bool) (med, p90, mbps float64) {
			n := NewNet(NetConfig{Seed: seed, LinkRate: p.RateBps, RTT: p.BaseRTT,
				BufBytes: int(p.RateBps / 8 * 0.1)}) // ~100 ms of buffer in the middle
			var site *Site
			if withBundler {
				cfg := DefaultBundleConfig()
				// Twenty backlogged Cubic flows need more sendbox queue
				// than the web-workload default, or their synchronized
				// drops starve the pacer between recovery rounds.
				cfg.Scheduler = SchedulerByName(n.Eng, "sfq", 4000)
				site = n.AddSite(cfg)
			} else {
				site = n.AddSite(nil)
			}
			var pings []*udpapp.PingClient
			for i := 0; i < 10; i++ {
				pings = append(pings, site.AddPing())
			}
			var bulk []*tcp.Sender
			if withLoad {
				for i := 0; i < 20; i++ {
					bulk = append(bulk, site.AddFlow(1<<40, tcp.NewCubic(), nil))
				}
			}
			// Measure after convergence: both probes and throughput use
			// the window past dur/4.
			n.Eng.RunUntil(dur / 4)
			var ackedWarm int64
			for _, b := range bulk {
				ackedWarm += b.Acked()
			}
			n.Eng.RunUntil(dur)
			if site.SB != nil {
				site.SB.Stop()
			}
			var all stats.Sample
			for _, pc := range pings {
				for i, at := range pc.Series.T {
					if at > dur/4 {
						all.Add(pc.Series.V[i])
					}
				}
			}
			var acked int64
			for _, b := range bulk {
				acked += b.Acked()
			}
			mbps = float64(acked-ackedWarm) * 8 / (dur - dur/4).Seconds() / 1e6
			return all.Median(), all.Quantile(0.9), mbps
		}

		res.BaseRTT, res.BaseP90, _ = runCase(false, false)
		res.StatusQuoRTT, res.StatusQuoP90, res.StatusQuoMbps = runCase(false, true)
		res.BundlerRTT, res.BundlerP90, res.BundlerMbps = runCase(true, true)
		out = append(out, res)
	}
	return out
}

// --- experiment adapter ---

// fig16Exp emulates the §8 wide-area deployments.
type fig16Exp struct{}

func (fig16Exp) Name() string { return "fig16" }
func (fig16Exp) Desc() string {
	return "Figure 16: emulated wide-area paths — probe RTTs and bulk throughput"
}
func (fig16Exp) Params() []exp.Param {
	return []exp.Param{{Name: "dur", Default: "15s", Help: "virtual time per path and configuration"}}
}

func (fig16Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	dur := sim.FromSeconds(b.Duration("dur", 15*time.Second).Seconds())
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	rows := RunFig16(seed, dur)
	var w strings.Builder
	ReportHeader(&w, "Figure 16: emulated wide-area paths (paper: 57% lower latencies, throughput within 1%)")
	fmt.Fprintf(&w, "%-12s %10s %12s %10s | %14s %12s\n",
		"path", "base ms", "statusquo ms", "bundler ms", "statusquo Mb/s", "bundler Mb/s")
	out := exp.Result{Experiment: "fig16", Seed: seed, Params: p}
	for _, r := range rows {
		fmt.Fprintf(&w, "%-12s %10.1f %12.1f %10.1f | %14.0f %12.0f\n",
			r.Name, r.BaseRTT, r.StatusQuoRTT, r.BundlerRTT, r.StatusQuoMbps, r.BundlerMbps)
		out.AddMetric(r.Name+"/statusquo-rtt", r.StatusQuoRTT, "ms")
		out.AddMetric(r.Name+"/bundler-rtt", r.BundlerRTT, "ms")
		out.AddMetric(r.Name+"/statusquo-Mbps", r.StatusQuoMbps, "Mbps")
		out.AddMetric(r.Name+"/bundler-Mbps", r.BundlerMbps, "Mbps")
	}
	out.Report = w.String()
	return out, nil
}
