package scenario

import (
	"fmt"
	"strings"
	"time"

	"bundler/internal/exp"
	"bundler/internal/sim"
	"bundler/internal/stats"
	"bundler/internal/tcp"
	"bundler/internal/trace"
	"bundler/internal/workload"
)

// QueueShiftResult holds the Figure 2 traces: where queueing delay lives
// over time, with and without Bundler.
type QueueShiftResult struct {
	// StatusQuoBottleneck is the bottleneck queueing delay (ms) without
	// Bundler.
	StatusQuoBottleneck stats.TimeSeries
	// StatusQuoEdge is the (empty) edge queue without Bundler.
	StatusQuoEdge stats.TimeSeries
	// BundlerBottleneck is the bottleneck queueing delay with Bundler.
	BundlerBottleneck stats.TimeSeries
	// BundlerSendbox is the sendbox queueing delay with Bundler.
	BundlerSendbox stats.TimeSeries
	// Throughputs in Mbit/s over the run.
	StatusQuoThroughput, BundlerThroughput float64
}

// RunQueueShift reproduces Figure 2: a single long-running flow, measured
// with and without Bundler. The queue moves from the bottleneck to the
// sendbox; throughput is preserved.
func RunQueueShift(seed int64, dur sim.Time) QueueShiftResult {
	var res QueueShiftResult
	run := func(withBundler bool, bn, edge *stats.TimeSeries) float64 {
		n := NewNet(NetConfig{Seed: seed})
		var site *Site
		if withBundler {
			site = n.AddSite(DefaultBundleConfig())
		} else {
			site = n.AddSite(nil)
		}
		snd := site.AddFlow(1<<40, tcp.NewCubic(), nil)
		sim.Tick(n.Eng, 100*sim.Millisecond, func() {
			bn.Add(n.Eng.Now(), n.Bottleneck.QueueDelay().Millis())
			if site.SB != nil {
				edge.Add(n.Eng.Now(), site.SB.QueueDelay().Millis())
			} else {
				edge.Add(n.Eng.Now(), 0)
			}
		})
		n.Eng.RunUntil(dur)
		if site.SB != nil {
			site.SB.Stop()
		}
		return float64(snd.Acked()) * 8 / dur.Seconds() / 1e6
	}
	res.StatusQuoThroughput = run(false, &res.StatusQuoBottleneck, &res.StatusQuoEdge)
	res.BundlerThroughput = run(true, &res.BundlerBottleneck, &res.BundlerSendbox)
	return res
}

// Fig10Phase summarizes one third of the Figure 10 timeline.
type Fig10Phase struct {
	Label string
	// ShortFlowSlowdowns of bundle flows completing in this phase.
	ShortFlowSlowdowns stats.Summary
	// BundleMbps and CrossMbps are mean throughputs over the phase.
	BundleMbps, CrossMbps float64
	// MeanQueueMs is the mean in-network queueing delay.
	MeanQueueMs float64
	// PassThroughFrac is the fraction of the phase the sendbox spent in
	// pass-through (buffer-filling cross traffic) mode.
	PassThroughFrac float64
}

// Fig10Result is the full timeline plus phase summaries.
type Fig10Result struct {
	BundleTput stats.TimeSeries // Mbit/s, 100 ms bins
	CrossTput  stats.TimeSeries
	QueueMs    stats.TimeSeries
	Mode       stats.TimeSeries
	Phases     [3]Fig10Phase
}

// RunFig10 reproduces Figure 10: 0–60 s no cross traffic, 60–120 s a
// buffer-filling (backlogged Cubic) cross flow, 120–180 s non-buffer-
// filling (web-like) cross traffic. Bundler must detect the buffer-filler,
// revert to pass-through, and re-engage afterward.
func RunFig10(seed int64) Fig10Result {
	const phaseDur = 60 * sim.Second
	n := NewNet(NetConfig{Seed: seed})
	site := n.AddSite(DefaultBundleConfig())
	crossSite := n.AddSite(nil)

	// Continuous bundle web traffic for the whole 180 s at the §7.1 load.
	recs := [3]*workload.Recorder{}
	for i := range recs {
		recs[i] = workload.NewRecorder(n.Cfg.LinkRate, n.Cfg.RTT)
	}
	phaseOf := func(t sim.Time) int {
		p := int(t / phaseDur)
		if p > 2 {
			p = 2
		}
		return p
	}
	workload.Arrivals(n.Eng, workload.PaperWebCDF(), 84e6, 1<<30, func(size int64) {
		if n.Eng.Now() >= 3*phaseDur {
			return
		}
		site.AddFlow(size, tcp.NewCubic(), func(sz int64, fct sim.Time) {
			if workload.ClassOf(sz) == workload.ClassSmall {
				recs[phaseOf(n.Eng.Now())].Record(sz, fct)
			}
		})
	})

	// Phase 2: a buffer-filling cross flow from 60 s to 120 s.
	var crossSender *tcp.Sender
	n.Eng.At(phaseDur, func() {
		crossSender = crossSite.AddFlow(1<<40, tcp.NewCubic(), nil)
	})
	n.Eng.At(2*phaseDur, func() { crossSender.Abort() })
	// Phase 3: non-buffer-filling web cross traffic at a quarter of the
	// link (the paper does not state the phase-3 offered load; a modest
	// one keeps the total near capacity rather than deep overload).
	n.Eng.At(2*phaseDur, func() {
		workload.Arrivals(n.Eng, workload.PaperWebCDF(), 24e6, 1<<30, func(size int64) {
			if n.Eng.Now() >= 3*phaseDur {
				return
			}
			crossSite.AddFlow(size, tcp.NewCubic(), nil)
		})
	})

	var res Fig10Result
	var lastBundleBytes, lastCrossBytes int64
	var passTicks, totalTicks [3]int
	sim.Tick(n.Eng, 100*sim.Millisecond, func() {
		now := n.Eng.Now()
		p := phaseOf(now)
		bb := site.RB.BytesReceived()
		res.BundleTput.Add(now, float64(bb-lastBundleBytes)*8/0.1/1e6)
		lastBundleBytes = bb
		cb := n.Bottleneck.BytesSent() - bb
		res.CrossTput.Add(now, float64(cb-lastCrossBytes)*8/0.1/1e6)
		lastCrossBytes = cb
		res.QueueMs.Add(now, n.Bottleneck.QueueDelay().Millis())
		res.Mode.Add(now, float64(site.SB.Mode()))
		totalTicks[p]++
		if site.SB.Mode() != 0 {
			passTicks[p]++
		}
	})
	n.Eng.RunUntil(3 * phaseDur)
	site.SB.Stop()

	labels := [3]string{"no cross traffic", "buffer-filling cross", "non-buffer-filling cross"}
	for i := 0; i < 3; i++ {
		from, to := sim.Time(i)*phaseDur, sim.Time(i+1)*phaseDur
		res.Phases[i] = Fig10Phase{
			Label:              labels[i],
			ShortFlowSlowdowns: recs[i].Slowdowns.Summarize(),
			BundleMbps:         res.BundleTput.MeanOver(from, to),
			CrossMbps:          res.CrossTput.MeanOver(from, to),
			MeanQueueMs:        res.QueueMs.MeanOver(from, to),
			PassThroughFrac:    float64(passTicks[i]) / float64(max(totalTicks[i], 1)),
		}
	}
	return res
}

// --- experiment adapters ---

// fig2Exp shows the queue moving from the bottleneck to the sendbox.
type fig2Exp struct{}

func (fig2Exp) Name() string { return "fig2" }
func (fig2Exp) Desc() string {
	return "Figure 2: queue shifting — delay moves from the bottleneck to the sendbox"
}
func (fig2Exp) Params() []exp.Param {
	return []exp.Param{
		{Name: "dur", Default: "30s", Help: "run duration (virtual time)"},
		artifactsParam(),
	}
}

func (fig2Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	dur := sim.FromSeconds(b.Duration("dur", 30*time.Second).Seconds())
	artifacts := b.Bool("artifacts", false)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	res := RunQueueShift(seed, dur)
	sqBn := res.StatusQuoBottleneck.MeanOver(dur/6, dur)
	sqEdge := res.StatusQuoEdge.MeanOver(dur/6, dur)
	bdBn := res.BundlerBottleneck.MeanOver(dur/6, dur)
	bdEdge := res.BundlerSendbox.MeanOver(dur/6, dur)

	var w strings.Builder
	ReportHeader(&w, "Figure 2: queue shifting (single flow, 96 Mbit/s, 50 ms RTT)")
	fmt.Fprintf(&w, "%-28s %-22s %-20s\n", "", "bottleneck queue (ms)", "edge/sendbox queue (ms)")
	fmt.Fprintf(&w, "%-28s %-22.1f %-20.1f\n", "Status Quo", sqBn, sqEdge)
	fmt.Fprintf(&w, "%-28s %-22.1f %-20.1f\n", "With Bundler", bdBn, bdEdge)
	fmt.Fprintf(&w, "throughput: status quo %.1f Mbit/s, bundler %.1f Mbit/s\n",
		res.StatusQuoThroughput, res.BundlerThroughput)

	out := exp.Result{Experiment: "fig2", Seed: seed, Params: p, Report: w.String()}
	out.AddMetric("statusquo/bottleneck-queue", sqBn, "ms")
	out.AddMetric("bundler/bottleneck-queue", bdBn, "ms")
	out.AddMetric("bundler/sendbox-queue", bdEdge, "ms")
	out.AddMetric("statusquo/throughput", res.StatusQuoThroughput, "Mbps")
	out.AddMetric("bundler/throughput", res.BundlerThroughput, "Mbps")

	if artifacts {
		var csv strings.Builder
		if err := trace.WriteTimeSeries(&csv,
			[]string{"statusquo_bottleneck_ms", "bundler_bottleneck_ms", "bundler_sendbox_ms"},
			[]*stats.TimeSeries{&res.StatusQuoBottleneck, &res.BundlerBottleneck, &res.BundlerSendbox}); err != nil {
			return exp.Result{}, err
		}
		out.Artifacts = append(out.Artifacts, exp.Artifact{Name: "fig2_queues.csv", Data: csv.String()})
	}
	return out, nil
}

// fig10Exp runs the time-varying cross-traffic timeline.
type fig10Exp struct{}

func (fig10Exp) Name() string { return "fig10" }
func (fig10Exp) Desc() string {
	return "Figure 10: reaction to buffer-filling and web-like cross traffic over time"
}
func (fig10Exp) Params() []exp.Param { return []exp.Param{artifactsParam()} }

func (fig10Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	artifacts := b.Bool("artifacts", false)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	res := RunFig10(seed)
	var w strings.Builder
	ReportHeader(&w, "Figure 10: time-varying cross traffic (3 × 60 s phases)")
	fmt.Fprintf(&w, "%-28s %12s %12s %10s %12s %14s\n",
		"phase", "bundle Mb/s", "cross Mb/s", "queue ms", "pass-through", "short-flow p50")
	out := exp.Result{Experiment: "fig10", Seed: seed, Params: p}
	for _, ph := range res.Phases {
		fmt.Fprintf(&w, "%-28s %12.1f %12.1f %10.1f %11.0f%% %14.2f\n",
			ph.Label, ph.BundleMbps, ph.CrossMbps, ph.MeanQueueMs, ph.PassThroughFrac*100, ph.ShortFlowSlowdowns.P50)
		prefix := strings.ReplaceAll(ph.Label, " ", "_") + "/"
		out.AddMetric(prefix+"bundle", ph.BundleMbps, "Mbps")
		out.AddMetric(prefix+"cross", ph.CrossMbps, "Mbps")
		out.AddMetric(prefix+"queue", ph.MeanQueueMs, "ms")
		out.AddMetric(prefix+"passthrough-frac", ph.PassThroughFrac, "")
		out.AddMetric(prefix+"short-p50-slowdown", ph.ShortFlowSlowdowns.P50, "")
	}
	out.Report = w.String()

	if artifacts {
		var csv strings.Builder
		if err := trace.WriteTimeSeries(&csv,
			[]string{"bundle_mbps", "cross_mbps", "queue_ms", "mode"},
			[]*stats.TimeSeries{&res.BundleTput, &res.CrossTput, &res.QueueMs, &res.Mode}); err != nil {
			return exp.Result{}, err
		}
		out.Artifacts = append(out.Artifacts, exp.Artifact{Name: "fig10_timeline.csv", Data: csv.String()})
	}
	return out, nil
}
