package scenario_test

import (
	"math"
	"testing"

	"bundler/internal/scenario"
	"bundler/internal/sim"
)

// TestMeshEmulatedUsersComplete is the scale acceptance check: a mesh
// carrying 10⁵ emulated background users per site still completes its
// foreground workload (at the load the headroom guarantees), the
// background aggregates actually saturate their access links, and every
// recorder runs in bounded sketch mode.
func TestMeshEmulatedUsersComplete(t *testing.T) {
	opt := scenario.MeshOptions{
		Seed:           1,
		Sites:          2,
		Mode:           "pairwise",
		Requests:       30,
		BgUsersPerSite: 100000,
	}
	m := scenario.NewMesh(opt)
	stop := m.Run()

	want := opt.Sites * (opt.Sites - 1) * opt.Requests
	agg := m.Aggregate()
	if agg.Completed < want {
		t.Fatalf("completed %d/%d foreground requests by %v: background users starved the packet path",
			agg.Completed, want, stop)
	}
	if !agg.Slowdowns.Sketched() {
		t.Error("emulated-user mesh did not switch its recorders to sketch mode")
	}
	for _, pr := range m.Pairs {
		if !pr.Rec.Slowdowns.Sketched() {
			t.Fatalf("pair s%d->s%d recorder is not sketched", pr.Src, pr.Dst)
		}
	}

	// Each site's aggregate should have pushed roughly its fluid share
	// (access rate minus foreground headroom and the foreground's own
	// throughput) for the whole run.
	if len(m.Fluids) != opt.Sites {
		t.Fatalf("%d fluid aggregates, want one per site (%d)", len(m.Fluids), opt.Sites)
	}
	secs := stop.Seconds()
	perSite := m.BgDeliveredBytes() * 8 / float64(opt.Sites) / secs
	share := 96e6 * 0.9 // below (1-headroom) to leave room for the foreground's cut
	if perSite < 0.5*share {
		t.Errorf("background goodput %.1f Mbit/s per site, want ≥ %.1f (the aggregates are not loading the links)",
			perSite/1e6, 0.5*share/1e6)
	}
	if m.BgLostBytes() == 0 {
		t.Error("background AIMD never saw loss: the virtual buffers are not the bottleneck")
	}
}

// TestMeshSketchMatchesExact runs the identical mesh twice — exact
// recorders vs sketched ones — and requires every reported quantile to
// agree within the sketch's 1 % accuracy contract. Same seed, same
// engine schedule: the flows are byte-identical, only the stats differ.
func TestMeshSketchMatchesExact(t *testing.T) {
	run := func(sketch bool) *scenario.Mesh {
		m := scenario.NewMesh(scenario.MeshOptions{
			Seed: 7, Sites: 2, Mode: "pairwise", Requests: 80, Sketch: sketch})
		m.Run()
		return m
	}
	exact := run(false).Aggregate()
	sketched := run(true).Aggregate()

	if exact.Completed != sketched.Completed {
		t.Fatalf("sketch mode changed the simulation: %d vs %d completions", sketched.Completed, exact.Completed)
	}
	if !sketched.Slowdowns.Sketched() || exact.Slowdowns.Sketched() {
		t.Fatal("sketch flag did not select recorder modes")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		e, s := exact.Slowdowns.Quantile(q), sketched.Slowdowns.Quantile(q)
		if rel := math.Abs(s-e) / e; rel > 0.01 {
			t.Errorf("slowdown q=%.2f: sketch %.6g vs exact %.6g (relative error %.4f > 1%%)", q, s, e, rel)
		}
		e, s = exact.FCTms.Quantile(q), sketched.FCTms.Quantile(q)
		if rel := math.Abs(s-e) / e; rel > 0.01 {
			t.Errorf("fct q=%.2f: sketch %.6g vs exact %.6g ms (relative error %.4f > 1%%)", q, s, e, rel)
		}
	}
}

// TestMeshFluidShardInvariant: the fluid tickers live on their sites'
// partition engines, so background load must not break the mesh's
// shards-never-change-results contract — including across the hub
// topology's cross-partition edges.
func TestMeshFluidShardInvariant(t *testing.T) {
	run := func(shards int) (med, p99, bg, lost float64, completed int) {
		m := scenario.NewMesh(scenario.MeshOptions{
			Seed: 3, Sites: 3, Mode: "hub", Requests: 20,
			BgUsersPerSite: 1000, Bundled: true, Shards: shards,
			Horizon: 60 * sim.Second})
		m.Run()
		agg := m.Aggregate()
		return agg.Slowdowns.Median(), agg.Slowdowns.Quantile(0.99),
			m.BgDeliveredBytes(), m.BgLostBytes(), agg.Completed
	}
	m1, p1, b1, l1, c1 := run(1)
	m3, p3, b3, l3, c3 := run(3)
	if m1 != m3 || p1 != p3 || b1 != b3 || l1 != l3 || c1 != c3 {
		t.Fatalf("shard count changed results: shards=1 (%g, %g, %g, %g, %d) vs shards=3 (%g, %g, %g, %g, %d)",
			m1, p1, b1, l1, c1, m3, p3, b3, l3, c3)
	}
	if b1 == 0 {
		t.Fatal("background aggregates delivered nothing")
	}
}
