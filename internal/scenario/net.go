// Package scenario wires complete experiments: the emulated dumbbell (and
// multipath / WAN variants), the Bundler boxes, endhost traffic, and the
// measurement probes each figure of the paper's evaluation (§7–§9) needs.
// Every evaluation figure has a Run* entry point here, wrapped as a
// registered exp.Experiment, invoked by cmd/bundler-bench and by the
// root-level benchmarks.
//
// The reusable endpoint machinery — sender mux, destination demux,
// reverse path, address allocation — lives in Fabric; Net adds the
// paper's single-bottleneck dumbbell on top, and internal/topo compiles
// declarative configs into arbitrary link graphs over the same Fabric.
// Rates are bits/second, times sim.Time, buffers bytes.
package scenario

import (
	"bundler/internal/bundle"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/tcp"
	"bundler/internal/udpapp"
	"bundler/internal/workload"
)

// NetConfig describes the shared dumbbell.
type NetConfig struct {
	Seed       int64
	LinkRate   float64  // bottleneck rate, bits/s
	RTT        sim.Time // end-to-end propagation RTT
	BufBytes   int      // bottleneck buffer; 0 → 2 BDP
	Bottleneck qdisc.Qdisc
}

func (c *NetConfig) fill() {
	if c.LinkRate == 0 {
		c.LinkRate = 96e6
	}
	if c.RTT == 0 {
		c.RTT = 50 * sim.Millisecond
	}
	if c.BufBytes == 0 {
		c.BufBytes = 2 * int(c.LinkRate/8*c.RTT.Seconds())
	}
	if c.Bottleneck == nil {
		c.Bottleneck = qdisc.NewFIFO(c.BufBytes)
	}
}

// Fabric is the endpoint machinery every emulated topology hangs sites
// on: the sender-side mux, the destination demux, the uncongested
// reverse path for ACKs and Bundler control messages, and the address /
// flow-ID allocators. The forward path between them — one bottleneck,
// a chain, load-balanced parallel links — is the caller's to wire;
// Net wires the paper's dumbbell, and internal/topo compiles declarative
// configs into arbitrary link graphs over the same fabric.
type Fabric struct {
	Eng     *sim.Engine
	MuxA    *tcp.Mux
	Demux   *netem.Demux
	Reverse *netem.Link

	// OracleRate (bits/s) and OracleRTT normalize recorded slowdowns:
	// the unloaded-path parameters of workload.OracleFCT. Traffic can
	// override them per workload.
	OracleRate float64
	OracleRTT  sim.Time

	// Pool, when set, is the partition-local packet pool every endpoint
	// added to this fabric mints from (sharded topologies give each
	// partition its own fabric and pool). Nil means the shared global
	// pool — the legacy single-engine configuration.
	Pool *pkt.Pool

	nextHost  uint32
	nextCtl   uint32
	hostLimit uint32
	ctlLimit  uint32
	flowID    uint64
}

// NewFabric builds the shared endpoint machinery on eng. The caller must
// set Reverse (and the oracle parameters) before adding sites.
func NewFabric(eng *sim.Engine) *Fabric {
	return &Fabric{Eng: eng, MuxA: tcp.NewMux(), Demux: netem.NewDemux(),
		nextHost: 1 << 16, nextCtl: 1 << 30}
}

// SetIDSpace moves the fabric's address and flow-ID allocators into a
// disjoint per-partition region, so a sharded topology can decode which
// partition owns a destination host from the address bits alone (static
// cross-partition routing, no shared maps). Each base gets a 2^19-entry
// region; overflowing it panics. Must be called before any site or flow
// is added. Zero limits (the default) mean the legacy unchecked ranges.
func (f *Fabric) SetIDSpace(hostBase, ctlBase uint32, flowBase uint64) {
	if f.nextHost != 1<<16 || f.nextCtl != 1<<30 || f.flowID != 0 {
		panic("scenario: SetIDSpace after allocation began")
	}
	f.nextHost, f.hostLimit = hostBase, hostBase+1<<19
	f.nextCtl, f.ctlLimit = ctlBase, ctlBase+1<<19
	f.flowID = flowBase
}

// Net is one emulated dumbbell: source sites on the left, a single
// bottleneck link, destination demux on the right, and an uncongested
// reverse path for ACKs and Bundler control messages.
type Net struct {
	Fabric
	Cfg        NetConfig
	Bottleneck *netem.Link
}

// NewNet builds the dumbbell.
func NewNet(cfg NetConfig) *Net {
	cfg.fill()
	eng := sim.NewEngine(cfg.Seed)
	n := &Net{Fabric: *NewFabric(eng), Cfg: cfg}
	n.OracleRate, n.OracleRTT = cfg.LinkRate, cfg.RTT
	n.Bottleneck = netem.NewLink(eng, "bottleneck", cfg.LinkRate, cfg.RTT/2, cfg.Bottleneck, n.Demux)
	n.Reverse = netem.NewLink(eng, "reverse", 10e9, cfg.RTT/2, qdisc.NewFIFO(1<<26), n.MuxA)
	return n
}

// Site is one source-site/destination-site pairing. With a Bundler pair
// attached, its egress is the sendbox and its ingress is tapped by the
// receivebox; otherwise traffic goes straight to the bottleneck.
type Site struct {
	net     *Fabric
	SB      *bundle.Sendbox
	RB      *bundle.Receivebox
	MuxB    *tcp.Mux
	ingress netem.Receiver
	egress  netem.Receiver
	// onNewDst observes every destination host allocated for this site's
	// flows. The mesh fabric uses it to teach each source site's
	// MultiSendbox classifier which bundle a destination belongs to.
	onNewDst func(host uint32)
}

// AddSite creates a site pairing whose egress is the dumbbell's
// bottleneck. bcfg nil means no Bundler (status quo).
func (n *Net) AddSite(bcfg *bundle.Config) *Site {
	return n.AddSiteAt(n.Bottleneck, bcfg)
}

// AddSiteAt creates a site pairing that forwards into egress — the head
// of whatever forward path the topology wired there. bcfg nil means no
// Bundler (status quo); otherwise a Sendbox is interposed in front of
// egress and a Receivebox taps the site's ingress.
func (f *Fabric) AddSiteAt(egress netem.Receiver, bcfg *bundle.Config) *Site {
	s := &Site{net: f, MuxB: tcp.NewMux()}
	if bcfg == nil {
		s.ingress = s.MuxB
		s.egress = egress
		return s
	}
	sbCtl := pkt.Addr{Host: f.nextCtl, Port: 1}
	rbCtl := pkt.Addr{Host: f.nextCtl, Port: 2}
	f.nextCtl++
	if f.ctlLimit != 0 && f.nextCtl > f.ctlLimit {
		panic("scenario: control-address region exhausted (SetIDSpace)")
	}
	s.SB = bundle.NewSendbox(f.Eng, *bcfg, egress, sbCtl, rbCtl)
	s.SB.SetPool(f.Pool)
	s.RB = bundle.NewReceivebox(f.Eng, f.Reverse, rbCtl, sbCtl, bcfg.InitialEpochN)
	s.RB.SetPool(f.Pool)
	f.MuxA.Register(sbCtl, s.SB)
	s.MuxB.Register(rbCtl, s.RB)
	f.Demux.Route(rbCtl.Host, s.MuxB) // epoch updates reach the receivebox
	s.ingress = netem.NewTap(s.RB.Observe, s.MuxB)
	s.egress = s.SB
	return s
}

// addrs allocates a fresh (source, destination) address pair and routes
// the destination host into the site's ingress.
func (s *Site) addrs(dstPort uint16) (src, dst pkt.Addr) {
	n := s.net
	src = pkt.Addr{Host: n.nextHost, Port: 5000}
	n.nextHost++
	dst = pkt.Addr{Host: n.nextHost, Port: dstPort}
	n.nextHost++
	if n.hostLimit != 0 && n.nextHost > n.hostLimit {
		panic("scenario: host-address region exhausted (SetIDSpace)")
	}
	n.Demux.Route(dst.Host, s.ingress)
	if s.onNewDst != nil {
		s.onNewDst(dst.Host)
	}
	return src, dst
}

// AddFlow starts a size-byte transfer through the site at the current
// virtual time. done (optional) receives the flow's completion time, as
// observed at the receiver (last byte arrival). Endpoint addresses are
// recycled on completion so long experiments keep the muxes small.
func (s *Site) AddFlow(size int64, cc tcp.Congestion, done func(size int64, fct sim.Time)) *tcp.Sender {
	return s.AddFlowPort(size, cc, 80, done)
}

// AddFlowPort is AddFlow with an explicit destination port, which the
// §7.2 priority experiment uses as its traffic-class marker.
func (s *Site) AddFlowPort(size int64, cc tcp.Congestion, dstPort uint16, done func(size int64, fct sim.Time)) *tcp.Sender {
	n := s.net
	src, dst := s.addrs(dstPort)
	n.flowID++
	id := n.flowID
	start := n.Eng.Now()
	var snd *tcp.Sender
	rcv := tcp.NewReceiver(n.Eng, n.Reverse, dst, src, id, size, func(now sim.Time) {
		if done != nil {
			done(size, now-start)
		}
	})
	rcv.SetPool(n.Pool)
	snd = tcp.NewSender(n.Eng, s.egress, src, dst, id, size, cc, func(now sim.Time) {
		// Sender-side completion: both directions are finished; recycle.
		n.MuxA.Unregister(src)
		s.MuxB.Unregister(dst)
	})
	snd.SetPool(n.Pool)
	n.MuxA.Register(src, snd)
	s.MuxB.Register(dst, rcv)
	snd.Start()
	return snd
}

// AddPing starts a closed-loop UDP request/response pair through the site
// (the §8 latency probe) and returns the client for RTT inspection.
func (s *Site) AddPing() *udpapp.PingClient {
	n := s.net
	src, dst := s.addrs(7)
	n.flowID++
	client := udpapp.NewPingClient(n.Eng, s.egress, src, dst, n.flowID)
	client.SetPool(n.Pool)
	server := udpapp.NewPingServer(n.Eng, n.Reverse, dst)
	server.SetPool(n.Pool)
	n.MuxA.Register(src, client)
	s.MuxB.Register(dst, server)
	client.Start()
	return client
}

// AddCBR starts a paced constant-bit-rate UDP stream through the site —
// the §3 application-limited "video" traffic class — and returns the
// stream plus the receiving sink (whose count measures delivery).
// pktSize is the on-wire packet size in bytes.
func (s *Site) AddCBR(rateBps float64, pktSize int) (*udpapp.CBRStream, *netem.Sink) {
	n := s.net
	src, dst := s.addrs(443)
	n.flowID++
	sink := &netem.Sink{}
	stream := udpapp.NewCBRStream(n.Eng, s.egress, src, dst, n.flowID, rateBps, pktSize)
	stream.SetPool(n.Pool)
	s.MuxB.Register(dst, sink)
	stream.Start()
	return stream, sink
}

// Traffic configures an open-loop request workload through a site.
type Traffic struct {
	Dist       *workload.SizeDist
	OfferedBps float64
	Requests   int
	// CC names the endhost congestion control ("cubic" default).
	CC string
	// FixedCwndSegs, when positive, pins every endhost window (the §7.5
	// idealized proxy).
	FixedCwndSegs int
	// DstPortBase overrides the flows' destination port (the §7.2
	// priority experiment classifies on it).
	DstPort uint16
	// Warmup excludes flows arriving before this virtual time from the
	// statistics (they still load the network). Short runs are otherwise
	// dominated by the control loops' convergence transient.
	Warmup sim.Time
	// OracleRate (bits/s) and OracleRTT override the fabric's slowdown
	// normalization for this workload — for sites whose path bottleneck
	// differs from the fabric default. Zero means use the fabric's.
	OracleRate float64
	OracleRTT  sim.Time
	// Sketch records completions into bounded quantile sketches instead
	// of exact per-flow slices (see internal/stats/sketch.go): recorder
	// memory becomes independent of the request count, at ≤1 % relative
	// quantile error. Mesh runs with emulated-user background load turn
	// this on.
	Sketch bool
}

func (t *Traffic) cc() tcp.Congestion {
	if t.FixedCwndSegs > 0 {
		return tcp.NewFixedCwnd(t.FixedCwndSegs)
	}
	name := t.CC
	if name == "" {
		name = "cubic"
	}
	return tcp.NewEndhostCC(name)
}

// RunOpenLoop schedules tr.Requests Poisson arrivals through the site and
// returns the recorder that accumulates their completions. The engine is
// not run; drive it with Net.RunUntilDone.
func (s *Site) RunOpenLoop(tr Traffic) *workload.Recorder {
	if tr.Dist == nil {
		tr.Dist = workload.PaperWebCDF()
	}
	rate, rtt := s.net.OracleRate, s.net.OracleRTT
	if tr.OracleRate > 0 {
		rate = tr.OracleRate
	}
	if tr.OracleRTT > 0 {
		rtt = tr.OracleRTT
	}
	rec := workload.NewRecorder(rate, rtt)
	if tr.Sketch {
		rec.UseSketch()
	} else if tr.Requests < 1<<20 { // huge counts mean "run until the horizon"
		rec.Reserve(tr.Requests)
	}
	port := tr.DstPort
	if port == 0 {
		port = 80
	}
	workload.Arrivals(s.net.Eng, tr.Dist, tr.OfferedBps, tr.Requests, func(size int64) {
		if s.net.Eng.Now() < tr.Warmup {
			s.AddFlowPort(size, tr.cc(), port, func(int64, sim.Time) {
				rec.RecordUncounted()
			})
			return
		}
		s.AddFlowPort(size, tr.cc(), port, func(sz int64, fct sim.Time) {
			rec.Record(sz, fct)
		})
	})
	return rec
}

// RunUntilDone advances the engine in one-second steps until check reports
// true or the horizon passes. It returns the stop time.
func (f *Fabric) RunUntilDone(horizon sim.Time, check func() bool) sim.Time {
	for f.Eng.Now() < horizon {
		if check != nil && check() {
			break
		}
		next := f.Eng.Now() + sim.Second
		if next > horizon {
			next = horizon
		}
		f.Eng.RunUntil(next)
	}
	return f.Eng.Now()
}

// DefaultBundleConfig returns the evaluation's default sendbox setup:
// Copa inner loop with Nimbus detection and SFQ scheduling (§7.1).
func DefaultBundleConfig() *bundle.Config {
	return &bundle.Config{Algorithm: "copa"}
}
