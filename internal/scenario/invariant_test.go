package scenario_test

import (
	"encoding/json"
	"testing"

	"bundler/internal/exp"
	"bundler/internal/pkt"
	_ "bundler/internal/scenario" // registers every experiment
)

// slowExperiments run tens of simulated seconds with no scale knob; they
// are exercised in full CI runs but skipped under -short.
var slowExperiments = map[string]bool{
	"fig10":    true,
	"fig11":    true,
	"fig12":    true,
	"fig16":    true,
	"sec76":    true,
	"policies": true,
}

// requestFloor keeps experiments whose statistics need a minimum open-
// loop duration above it: fig11 and the policy sweep exclude a warmup
// window from their stats, so tiny request counts leave them empty
// (NaN medians) — a pre-existing scale threshold, not an invariant
// violation.
var requestFloor = map[string]string{
	"fig11":    "8000",
	"policies": "8000",
}

// invariantParams shrinks an experiment to invariant-checking scale
// using only the knobs it declares. The properties under test (packet
// conservation, queue accounting, clock monotonicity) are scale-free.
func invariantParams(e exp.Experiment) exp.Params {
	p := exp.Params{}
	for _, d := range e.Params() {
		switch d.Name {
		case "requests":
			if floor, ok := requestFloor[e.Name()]; ok {
				p["requests"] = floor
			} else {
				p["requests"] = "600"
			}
		case "dur":
			p["dur"] = "3s"
		}
	}
	return p
}

// TestInvariants runs every registered experiment at reduced scale and
// checks the properties optimization must never bend:
//
//   - packet conservation: every packet handed out by the pool is either
//     released exactly once (delivery, drop) or still in flight when the
//     engine stops. Over-release panics inside pkt.Put; the live-count
//     bound below catches leaks. Together: enqueued == delivered +
//     dropped + in-flight at end.
//   - qdisc byte/packet accounting never goes negative: asserted on
//     every dequeue inside netem.Link (a panic fails the run here).
//   - the engine clock is monotone: asserted on every event dispatch
//     inside sim.Engine.step (likewise a panic).
//   - results are well-formed: JSON-marshalable (NaN-free metrics) and
//     error-free at reduced scale.
func TestInvariants(t *testing.T) {
	for _, e := range exp.All() {
		t.Run(e.Name(), func(t *testing.T) {
			if testing.Short() && slowExperiments[e.Name()] {
				t.Skipf("%s is slow; skipped under -short", e.Name())
			}
			liveBefore := pkt.Live()
			res, err := e.Run(1, invariantParams(e))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if _, err := json.Marshal(res); err != nil {
				t.Errorf("result not JSON-marshalable (NaN/Inf metric?): %v", err)
			}

			// Conservation: the run may leave packets queued or
			// propagating when its engines stop (they are abandoned, not
			// released), so the live count can only have grown by an
			// amount bounded by end-of-run in-flight state — far below
			// the packets sent. A large positive delta means a leak on
			// the release paths; a negative delta means something
			// released packets it did not own.
			delta := pkt.Live() - liveBefore
			if delta < 0 {
				t.Errorf("live packet count fell by %d: a component released packets it did not own", -delta)
			}
			const inFlightBound = 200_000
			if delta > inFlightBound {
				t.Errorf("live packet count grew by %d (> %d): release paths are leaking", delta, inFlightBound)
			}
		})
	}
}
