package scenario

import (
	"fmt"
	"strings"

	"bundler/internal/bundle"
	"bundler/internal/exp"
	"bundler/internal/sim"
	"bundler/internal/stats"
	"bundler/internal/udpapp"
)

// PolicyRow is one sendbox scheduling policy's outcome in the extended
// §7.2 sweep.
type PolicyRow struct {
	Policy string
	// Median FCT slowdown of the web workload.
	MedianSlowdown float64
	// P99 slowdown (tail isolation).
	P99Slowdown float64
	// Latency-probe RTTs sharing the bundle (median / p99, ms).
	ProbeP50Ms, ProbeP99Ms float64
}

// RunPolicySweep extends §7.2 across every scheduler this repository
// implements: the paper evaluates SFQ (Fig 9), FQ-CoDel and strict
// priority (§7.2); the sweep adds the cited-but-unevaluated disciplines
// (CoDel, RED, DRR, PIE) under the same workload so their trade-offs are
// directly comparable — scheduling (SFQ/DRR/FQ-CoDel) is what protects
// short flows; pure AQM (CoDel/RED/PIE) bounds delay but cannot reorder.
func RunPolicySweep(seed int64, requests int) []PolicyRow {
	policies := []string{"fifo", "sfq", "drr", "fqcodel", "codel", "red", "pie"}
	var out []PolicyRow
	for _, pol := range policies {
		n := NewNet(NetConfig{Seed: seed})
		cfg := &bundle.Config{Algorithm: "copa"}
		cfg.Scheduler = SchedulerByName(n.Eng, pol, 1000)
		site := n.AddSite(cfg)
		var probes []*udpapp.PingClient
		for i := 0; i < 5; i++ {
			probes = append(probes, site.AddPing())
		}
		rec := site.RunOpenLoop(Traffic{OfferedBps: 84e6, Requests: requests,
			Warmup: 2 * sim.Second})
		horizon := n.RunUntilDone(600*sim.Second, func() bool {
			return rec.Completed >= requests
		})
		site.SB.Stop()
		var rtts stats.Sample
		for _, pc := range probes {
			for i, at := range pc.Series.T {
				if at > 2*sim.Second {
					rtts.Add(pc.Series.V[i])
				}
			}
		}
		_ = horizon
		out = append(out, PolicyRow{
			Policy:         pol,
			MedianSlowdown: rec.Slowdowns.Median(),
			P99Slowdown:    rec.Slowdowns.Quantile(0.99),
			ProbeP50Ms:     rtts.Median(),
			ProbeP99Ms:     rtts.Quantile(0.99),
		})
	}
	return out
}

// --- experiment adapter ---

// policiesExp is the extended scheduler-vs-AQM sweep.
type policiesExp struct{}

func (policiesExp) Name() string { return "policies" }
func (policiesExp) Desc() string {
	return "extension: every sendbox scheduler/AQM under the Fig 9 workload"
}
func (policiesExp) Params() []exp.Param { return []exp.Param{requestsParam("15000")} }

func (policiesExp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	requests := b.Int("requests", 15000)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	rows := RunPolicySweep(seed, requests/2)
	var w strings.Builder
	ReportHeader(&w, "Extension: full sendbox policy sweep (schedulers vs AQMs)")
	fmt.Fprintf(&w, "%-10s %14s %12s %12s %12s\n", "policy", "median slow", "p99 slow", "probe p50", "probe p99")
	out := exp.Result{Experiment: "policies", Seed: seed, Params: p}
	for _, r := range rows {
		fmt.Fprintf(&w, "%-10s %14.2f %12.2f %10.1fms %10.1fms\n",
			r.Policy, r.MedianSlowdown, r.P99Slowdown, r.ProbeP50Ms, r.ProbeP99Ms)
		out.AddMetric(r.Policy+"/median-slowdown", r.MedianSlowdown, "")
		out.AddMetric(r.Policy+"/p99-slowdown", r.P99Slowdown, "")
		out.AddMetric(r.Policy+"/probe-p99", r.ProbeP99Ms, "ms")
	}
	out.Report = w.String()
	return out, nil
}
