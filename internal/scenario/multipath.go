package scenario

import (
	"fmt"
	"strings"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/exp"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/stats"
	"bundler/internal/tcp"
)

// MultipathNet is a dumbbell whose bottleneck is a set of load-balanced
// parallel paths with (optionally) imbalanced delays — the §5.2 / §7.6
// topology.
type MultipathNet struct {
	Eng     *sim.Engine
	MuxA    *tcp.Mux
	MuxB    *tcp.Mux
	Demux   *netem.Demux
	Reverse *netem.Link
	LB      *netem.LoadBalancer
	Paths   []*netem.Link
	SB      *bundle.Sendbox
	RB      *bundle.Receivebox

	linkRate float64
	rtt      sim.Time
	nextHost uint32
	flowID   uint64
}

// NewMultipathNet builds the topology: totalRate is split evenly across
// nPaths; path i adds i×skew of one-way delay on top of the base RTT/2.
// With skew 0 the paths are balanced.
func NewMultipathNet(seed int64, totalRate float64, rtt sim.Time, nPaths int, skew sim.Time, bcfg *bundle.Config) *MultipathNet {
	eng := sim.NewEngine(seed)
	m := &MultipathNet{
		Eng: eng, MuxA: tcp.NewMux(), MuxB: tcp.NewMux(), Demux: netem.NewDemux(),
		linkRate: totalRate, rtt: rtt, nextHost: 1 << 16,
	}
	m.Reverse = netem.NewLink(eng, "reverse", 10e9, rtt/2, qdisc.NewFIFO(1<<26), m.MuxA)
	if bcfg == nil {
		bcfg = DefaultBundleConfig()
	}
	sbCtl := pkt.Addr{Host: 1 << 30, Port: 1}
	rbCtl := pkt.Addr{Host: 1 << 30, Port: 2}
	m.RB = bundle.NewReceivebox(eng, m.Reverse, rbCtl, sbCtl, bcfg.InitialEpochN)
	m.Demux.Default = netem.NewTap(m.RB.Observe, m.MuxB)
	perPath := totalRate / float64(nPaths)
	buf := 2 * int(perPath/8*rtt.Seconds())
	if buf < 40*pkt.MTU {
		buf = 40 * pkt.MTU
	}
	var heads []netem.Receiver
	for i := 0; i < nPaths; i++ {
		delay := rtt/2 + sim.Time(i)*skew
		l := netem.NewLink(eng, "path", perPath, delay, qdisc.NewFIFO(buf), m.Demux)
		m.Paths = append(m.Paths, l)
		heads = append(heads, l)
	}
	m.LB = netem.NewLoadBalancer(eng, netem.BalanceFlowHash, heads...)
	m.SB = bundle.NewSendbox(eng, *bcfg, m.LB, sbCtl, rbCtl)
	m.MuxA.Register(sbCtl, m.SB)
	m.MuxB.Register(rbCtl, m.RB)
	return m
}

// AddFlow starts a bundled transfer across the multipath bottleneck.
func (m *MultipathNet) AddFlow(size int64, cc tcp.Congestion) *tcp.Sender {
	src := pkt.Addr{Host: m.nextHost, Port: 5000}
	m.nextHost++
	dst := pkt.Addr{Host: m.nextHost, Port: 80}
	m.nextHost++
	m.flowID++
	snd := tcp.NewSender(m.Eng, m.SB, src, dst, m.flowID, size, cc, nil)
	rcv := tcp.NewReceiver(m.Eng, m.Reverse, dst, src, m.flowID, size, nil)
	m.MuxA.Register(src, snd)
	m.MuxB.Register(dst, rcv)
	snd.Start()
	return snd
}

// Fig7Result holds the multipath-visibility timeline: per-path true RTTs
// and the sendbox's epoch RTT estimates, whose spread (and out-of-order
// fraction) exposes the imbalance.
type Fig7Result struct {
	// PathRTTms is the true per-path RTT (propagation + queue) sampled
	// over time.
	PathRTTms []stats.TimeSeries
	// EstimateRTTms is the sendbox's observed epoch RTT series.
	EstimateRTTms stats.TimeSeries
	// OOOFraction at the end of the run.
	OOOFraction float64
	// Mode the sendbox ended in.
	Mode bundle.Mode
}

// RunFig7 reproduces Figure 7: many flows through 4 load-balanced paths
// with imbalanced delays. Bundler's measurements mix the paths; the
// out-of-order congestion-ACK fraction cleanly exposes the imbalance.
func RunFig7(seed int64, dur sim.Time) Fig7Result {
	m := NewMultipathNet(seed, 96e6, 10*sim.Millisecond, 4, 60*sim.Millisecond, nil)
	for i := 0; i < 40; i++ {
		m.AddFlow(1<<40, tcp.NewCubic())
	}
	res := Fig7Result{PathRTTms: make([]stats.TimeSeries, len(m.Paths))}
	sim.Tick(m.Eng, 100*sim.Millisecond, func() {
		now := m.Eng.Now()
		for i, p := range m.Paths {
			rtt := 2*p.Delay() + p.QueueDelay() // forward prop + queue, plus symmetric reverse
			res.PathRTTms[i].Add(now, rtt.Millis())
		}
	})
	m.Eng.RunUntil(dur)
	m.SB.Stop()
	res.EstimateRTTms = m.SB.RTTEstimates
	res.OOOFraction = m.SB.OOOFraction()
	res.Mode = m.SB.Mode()
	return res
}

// Sec76Point is one configuration of the §7.6 sweep.
type Sec76Point struct {
	RateMbps float64
	RTTms    float64
	Paths    int
	OOOFrac  float64
	Disabled bool
}

// RunSec76 reproduces the §7.6 robustness sweep: bandwidths 12–96 Mbit/s,
// RTTs 10–300 ms, and 1–32 load-balanced paths. Single-path runs must
// show near-zero out-of-order fractions; imbalanced multi-path runs must
// sit far above the 5 % threshold.
func RunSec76(seed int64, dur sim.Time) []Sec76Point {
	var out []Sec76Point
	for _, rate := range []float64{12e6, 48e6, 96e6} {
		for _, rtt := range []sim.Time{10 * sim.Millisecond, 100 * sim.Millisecond, 300 * sim.Millisecond} {
			for _, paths := range []int{1, 2, 8, 32} {
				skew := sim.Time(0)
				if paths > 1 {
					// Imbalance: spread one-way delays across ±50 % of
					// the base RTT.
					skew = rtt / sim.Time(paths)
				}
				m := NewMultipathNet(seed, rate, rtt, paths, skew, nil)
				for i := 0; i < 40; i++ {
					m.AddFlow(1<<40, tcp.NewCubic())
				}
				m.Eng.RunUntil(dur)
				m.SB.Stop()
				out = append(out, Sec76Point{
					RateMbps: rate / 1e6,
					RTTms:    rtt.Millis(),
					Paths:    paths,
					OOOFrac:  m.SB.OOOFraction(),
					Disabled: m.SB.Mode() == bundle.ModeDisabled,
				})
			}
		}
	}
	return out
}

// --- experiment adapters ---

// fig7Exp shows multipath visibility through the OOO fraction.
type fig7Exp struct{}

func (fig7Exp) Name() string { return "fig7" }
func (fig7Exp) Desc() string {
	return "Figure 7: imbalanced multipath detection via out-of-order congestion ACKs"
}
func (fig7Exp) Params() []exp.Param {
	return []exp.Param{{Name: "dur", Default: "20s", Help: "run duration (virtual time)"}}
}

func (fig7Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	dur := sim.FromSeconds(b.Duration("dur", 20*time.Second).Seconds())
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	res := RunFig7(seed, dur)
	var w strings.Builder
	ReportHeader(&w, "Figure 7: imbalanced multipath visibility (4 paths)")
	out := exp.Result{Experiment: "fig7", Seed: seed, Params: p}
	for i, ts := range res.PathRTTms {
		mean := ts.MeanOver(0, dur)
		fmt.Fprintf(&w, "path %d true RTT: %.1f ms (mean)\n", i+1, mean)
		out.AddMetric(fmt.Sprintf("path%d-rtt", i+1), mean, "ms")
	}
	fmt.Fprintf(&w, "out-of-order congestion-ACK fraction: %.1f%% (threshold 5%%)\n", res.OOOFraction*100)
	fmt.Fprintf(&w, "sendbox mode: %v\n", res.Mode)
	out.AddMetric("ooo-fraction", res.OOOFraction, "")
	out.AddMetric("mode", float64(res.Mode), "")
	out.Report = w.String()
	return out, nil
}

// sec76Exp is the multipath-detection robustness sweep.
type sec76Exp struct{}

func (sec76Exp) Name() string { return "sec76" }
func (sec76Exp) Desc() string {
	return "§7.6: multipath detection across bandwidths, RTTs, and path counts"
}
func (sec76Exp) Params() []exp.Param {
	return []exp.Param{{Name: "dur", Default: "10s", Help: "virtual time per configuration"}}
}

func (sec76Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	dur := sim.FromSeconds(b.Duration("dur", 10*time.Second).Seconds())
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	points := RunSec76(seed, dur)
	var w strings.Builder
	ReportHeader(&w, "§7.6: multipath detection sweep (paper: ≤0.4% single path, ≥20% multipath)")
	fmt.Fprintf(&w, "%-10s %-8s %-8s %-10s %-8s\n", "rate Mb/s", "RTT ms", "paths", "OOO frac", "disabled")
	out := exp.Result{Experiment: "sec76", Seed: seed, Params: p}
	maxSingle, minMulti := 0.0, 1.0
	for _, pt := range points {
		fmt.Fprintf(&w, "%-10.0f %-8.0f %-8d %-10.4f %-8v\n", pt.RateMbps, pt.RTTms, pt.Paths, pt.OOOFrac, pt.Disabled)
		if pt.Paths == 1 {
			if pt.OOOFrac > maxSingle {
				maxSingle = pt.OOOFrac
			}
		} else if pt.OOOFrac < minMulti {
			minMulti = pt.OOOFrac
		}
	}
	out.AddMetric("max-single-path-ooo", maxSingle, "")
	out.AddMetric("min-multi-path-ooo", minMulti, "")
	out.Report = w.String()
	return out, nil
}
