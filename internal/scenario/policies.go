package scenario

import (
	"fmt"
	"strings"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/exp"
	"bundler/internal/sim"
	"bundler/internal/stats"
	"bundler/internal/udpapp"
)

// Sec72CoDelResult is the §7.2 FQ-CoDel highlight: end-to-end RTTs for
// latency probes sharing the bundle with the web workload.
type Sec72CoDelResult struct {
	StatusQuoMedianMs, StatusQuoP99Ms float64
	BundlerMedianMs, BundlerP99Ms     float64
}

// RunSec72CoDel measures request/response RTTs through the loaded
// bottleneck with and without Bundler running FQ-CoDel at the sendbox.
// The paper reports ~97 % lower median and ~89 % lower 99th-percentile
// RTTs.
func RunSec72CoDel(seed int64, dur sim.Time) Sec72CoDelResult {
	run := func(withBundler bool) (med, p99 float64) {
		n := NewNet(NetConfig{Seed: seed})
		var site *Site
		if withBundler {
			cfg := &bundle.Config{Algorithm: "copa"}
			cfg.Scheduler = SchedulerByName(n.Eng, "fqcodel", 1000)
			site = n.AddSite(cfg)
		} else {
			site = n.AddSite(nil)
		}
		var pings []*udpapp.PingClient
		for i := 0; i < 10; i++ {
			pings = append(pings, site.AddPing())
		}
		site.RunOpenLoop(Traffic{OfferedBps: 84e6, Requests: 1 << 30})
		n.Eng.RunUntil(dur)
		if site.SB != nil {
			site.SB.Stop()
		}
		var all stats.Sample
		for _, pc := range pings {
			for i, at := range pc.Series.T {
				if at > dur/4 {
					all.Add(pc.Series.V[i])
				}
			}
		}
		return all.Median(), all.Quantile(0.99)
	}
	var res Sec72CoDelResult
	res.StatusQuoMedianMs, res.StatusQuoP99Ms = run(false)
	res.BundlerMedianMs, res.BundlerP99Ms = run(true)
	return res
}

// Sec72PrioResult is the §7.2 strict-priority highlight.
type Sec72PrioResult struct {
	// Median FCT slowdowns for the favored (high) and other (low)
	// classes, with Bundler's priority scheduling and in the status quo.
	BundlerHigh, BundlerLow     float64
	StatusQuoHigh, StatusQuoLow float64
}

// RunSec72Prio splits the web workload into two classes and gives one
// strict priority at the sendbox; the paper reports ~65 % lower median
// FCTs for the favored class.
func RunSec72Prio(seed int64, requests int) Sec72PrioResult {
	const highPort, lowPort = 8443, 80
	run := func(withBundler bool) (hi, lo float64) {
		n := NewNet(NetConfig{Seed: seed})
		var site *Site
		if withBundler {
			cfg := &bundle.Config{Algorithm: "copa"}
			cfg.Scheduler = SchedulerByName(n.Eng, "prio:8443", 1000)
			site = n.AddSite(cfg)
		} else {
			site = n.AddSite(nil)
		}
		// A latency-sensitive quarter of the load is favored over bulk
		// three quarters, the §7.2 setup's spirit.
		hiRec := site.RunOpenLoop(Traffic{OfferedBps: 21e6, Requests: requests / 4, DstPort: highPort})
		loRec := site.RunOpenLoop(Traffic{OfferedBps: 63e6, Requests: requests * 3 / 4, DstPort: lowPort})
		n.RunUntilDone(600*sim.Second, func() bool {
			return hiRec.Completed >= requests/4 && loRec.Completed >= requests*3/4
		})
		if site.SB != nil {
			site.SB.Stop()
		}
		return hiRec.Slowdowns.Median(), loRec.Slowdowns.Median()
	}
	var res Sec72PrioResult
	res.StatusQuoHigh, res.StatusQuoLow = run(false)
	res.BundlerHigh, res.BundlerLow = run(true)
	return res
}

// --- experiment adapter ---

// sec72Exp runs both §7.2 highlights: FQ-CoDel latency probes and strict
// priority.
type sec72Exp struct{}

func (sec72Exp) Name() string { return "sec72" }
func (sec72Exp) Desc() string {
	return "§7.2: other sendbox policies — FQ-CoDel probe RTTs and strict priority"
}
func (sec72Exp) Params() []exp.Param {
	return []exp.Param{
		requestsParam("15000"),
		{Name: "dur", Default: "20s", Help: "virtual time for the FQ-CoDel probe run"},
	}
}

func (sec72Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	requests := b.Int("requests", 15000)
	dur := sim.FromSeconds(b.Duration("dur", 20*time.Second).Seconds())
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	var w strings.Builder
	ReportHeader(&w, "§7.2: other sendbox policies")
	c := RunSec72CoDel(seed, dur)
	fmt.Fprintf(&w, "FQ-CoDel probe RTTs: status quo p50=%.1fms p99=%.1fms | bundler p50=%.1fms p99=%.1fms\n",
		c.StatusQuoMedianMs, c.StatusQuoP99Ms, c.BundlerMedianMs, c.BundlerP99Ms)
	pr := RunSec72Prio(seed, requests)
	fmt.Fprintf(&w, "strict priority: favored class p50 %.2f (status quo %.2f); other class p50 %.2f (status quo %.2f)\n",
		pr.BundlerHigh, pr.StatusQuoHigh, pr.BundlerLow, pr.StatusQuoLow)
	out := exp.Result{Experiment: "sec72", Seed: seed, Params: p, Report: w.String()}
	out.AddMetric("fqcodel/statusquo-probe-p50", c.StatusQuoMedianMs, "ms")
	out.AddMetric("fqcodel/bundler-probe-p50", c.BundlerMedianMs, "ms")
	out.AddMetric("prio/bundler-high-median", pr.BundlerHigh, "")
	out.AddMetric("prio/statusquo-high-median", pr.StatusQuoHigh, "")
	return out, nil
}
