package scenario

import (
	"testing"

	"bundler/internal/bundle"
	"bundler/internal/sim"
	"bundler/internal/tcp"
	"bundler/internal/workload"
)

// Request counts are scaled down from the paper's 1M so the suite runs in
// minutes; the comparative claims are stable at this scale (EXPERIMENTS.md
// records full-scale numbers).
const testRequests = 15000

func TestFig9Shape(t *testing.T) {
	res := RunFig9(1, testRequests)
	byLabel := map[string]Fig9Result{}
	for _, r := range res {
		byLabel[r.Label] = r
		if r.Rec.Completed < testRequests {
			t.Fatalf("%s: only %d of %d requests completed", r.Label, r.Rec.Completed, testRequests)
		}
	}
	sq := byLabel["Status Quo"]
	sfq := byLabel["Bundler (SFQ)"]
	inet := byLabel["In-Network FQ"]
	fifo := byLabel["Bundler (FIFO)"]

	// Headline: Bundler+SFQ lowers median slowdown by ≥ 28 % (paper:
	// 1.76 → 1.26).
	if sfq.Median > 0.72*sq.Median {
		t.Errorf("Bundler median %.2f vs status quo %.2f: less than 28%% improvement", sfq.Median, sq.Median)
	}
	// In-Network FQ is at least as good as Bundler (paper: 15 % better).
	if inet.Median > sfq.Median*1.05 {
		t.Errorf("In-Network FQ median %.2f worse than Bundler %.2f", inet.Median, sfq.Median)
	}
	// Aggregate congestion control alone is not enough: FIFO at the
	// sendbox is no better than the status quo.
	if fifo.Median < sq.Median*0.95 {
		t.Errorf("Bundler+FIFO median %.2f unexpectedly beats status quo %.2f", fifo.Median, sq.Median)
	}
	// Tail benefit (paper: 48 % lower p99).
	if sfq.P99 > 0.8*sq.P99 {
		t.Errorf("Bundler p99 %.1f vs status quo %.1f: tail did not improve", sfq.P99, sq.P99)
	}
}

func TestFig14InnerCCOrdering(t *testing.T) {
	res := RunFig14(1, testRequests)
	byLabel := map[string]Fig9Result{}
	for _, r := range res {
		byLabel[r.Label] = r
	}
	copa := byLabel["Bundler (copa)"]
	basic := byLabel["Bundler (basicdelay)"]
	sq := byLabel["Status Quo"]
	// Copa and BasicDelay both beat the status quo (paper: similar
	// benefits); BBR is no better than status quo.
	if copa.Median > 0.85*sq.Median || basic.Median > 0.85*sq.Median {
		t.Errorf("delay controllers should beat status quo: copa=%.2f basic=%.2f sq=%.2f",
			copa.Median, basic.Median, sq.Median)
	}
	bbr := byLabel["Bundler (bbr)"]
	if bbr.Median < copa.Median {
		t.Errorf("BBR median %.2f should not beat Copa %.2f (it keeps an in-network queue)", bbr.Median, copa.Median)
	}
}

func TestSec74EndhostCC(t *testing.T) {
	res := RunSec74(1, testRequests)
	for cc, pair := range res {
		sq, bd := pair[0], pair[1]
		if bd.Median > 0.8*sq.Median {
			t.Errorf("endhost %s: bundler median %.2f vs status quo %.2f, want ≥ 20%% improvement",
				cc, bd.Median, sq.Median)
		}
	}
}

func TestFig15ProxyHelpsMidFlows(t *testing.T) {
	res := RunFig15(1, testRequests)
	normal, proxy := res[0], res[1]
	// Short flows: no additional benefit from termination (both finish in
	// a few RTTs).
	if proxy.ByClass[workload.ClassSmall] > normal.ByClass[workload.ClassSmall]*1.3 {
		t.Errorf("proxy hurt short flows: %.2f vs %.2f",
			proxy.ByClass[workload.ClassSmall], normal.ByClass[workload.ClassSmall])
	}
	// Medium flows skip window growth: raw completion times improve (the
	// slowdown metric floors at 1 and hides the ramp-up savings).
	pm := proxy.Rec.FCTByClass[workload.ClassMedium].Median()
	nm := normal.Rec.FCTByClass[workload.ClassMedium].Median()
	if pm > nm {
		t.Errorf("proxy did not help medium flows: median FCT %.1fms vs %.1fms", pm, nm)
	}
}

func TestFig13CompetingBundles(t *testing.T) {
	res := RunFig13(1, testRequests)
	var sqMedian float64
	for _, r := range res {
		if r.Label == "Status Quo (aggregate)" {
			sqMedian = r.Medians[0]
		}
	}
	for _, r := range res {
		if r.Label == "Status Quo (aggregate)" {
			continue
		}
		for i, m := range r.Medians {
			if m > 0.9*sqMedian {
				t.Errorf("split %s bundle %d median %.2f vs status quo %.2f: no improvement",
					r.Label, i, m, sqMedian)
			}
		}
	}
}

func TestFig11ShortCrossSweep(t *testing.T) {
	points := RunFig11(1, 15000)
	for _, p := range points {
		sq := p.Median["statusquo"]
		for _, label := range []string{"bundler-copa", "bundler-nimbus"} {
			// The paper notes Bundler's delay controller can briefly cede
			// throughput when short-flow cross traffic builds transient
			// queues. Near-idle baselines (sq ≈ 1.0) make pure ratio
			// checks degenerate, so the bound is the larger of a 35 %
			// ratio and a small absolute penalty; a collapse still fails.
			limit := sq * 1.35
			if limit < 1.6 {
				limit = 1.6
			}
			if p.Median[label] > limit {
				t.Errorf("cross=%.0fMbps %s median %.2f much worse than status quo %.2f",
					p.CrossBps/1e6, label, p.Median[label], sq)
			}
		}
	}
	// Status quo FCTs grow with cross load (aggregate queueing effect).
	first := points[0].Median["statusquo"]
	last := points[len(points)-1].Median["statusquo"]
	if last < first {
		t.Errorf("status quo medians did not grow with cross load: %.2f -> %.2f", first, last)
	}
}

func TestFig12ElasticCrossThroughput(t *testing.T) {
	points := RunFig12(1)
	for _, p := range points {
		sq := p.Throughput["statusquo"]
		for _, label := range []string{"bundler-copa", "bundler-nimbus"} {
			got := p.Throughput[label]
			// Paper: 12–22 % average throughput loss across 10–50 cross
			// flows. Allow up to 45 % before flagging.
			if got < 0.55*sq {
				t.Errorf("%d cross flows: %s bundle throughput %.1f vs status quo %.1f (> 45%% loss)",
					p.CrossFlows, label, got, sq)
			}
		}
	}
}

func TestFig2QueueShift(t *testing.T) {
	res := RunQueueShift(1, 30*sim.Second)
	sqBn := res.StatusQuoBottleneck.MeanOver(5*sim.Second, 30*sim.Second)
	bdBn := res.BundlerBottleneck.MeanOver(5*sim.Second, 30*sim.Second)
	bdSB := res.BundlerSendbox.MeanOver(5*sim.Second, 30*sim.Second)
	if sqBn < 20 {
		t.Fatalf("status quo bottleneck queue %.1fms: no bufferbloat to shift", sqBn)
	}
	if bdBn > sqBn/2 {
		t.Errorf("bundler bottleneck queue %.1fms vs status quo %.1fms: queue did not shrink", bdBn, sqBn)
	}
	if bdSB < bdBn {
		t.Errorf("sendbox queue %.1fms < bottleneck %.1fms: queue did not shift", bdSB, bdBn)
	}
	if res.BundlerThroughput < 0.85*res.StatusQuoThroughput {
		t.Errorf("throughput %.1f vs %.1f Mbit/s: shifting the queue cost too much",
			res.BundlerThroughput, res.StatusQuoThroughput)
	}
}

func TestFig56MeasurementAccuracy(t *testing.T) {
	// One configuration here (the full 9-config sweep runs in the bench).
	var res AccuracyResult
	collectAccuracy(1, 48e6, 50*sim.Millisecond, 20*sim.Second, &res)
	if res.RTTErrMs.N() < 100 {
		t.Fatalf("only %d RTT samples", res.RTTErrMs.N())
	}
	if within := res.RTTErrMs.FractionWithin(1.2); within < 0.8 {
		t.Errorf("RTT estimates within 1.2ms: %.2f, paper reports 0.80", within)
	}
	if within := res.RateErrMbps.FractionWithin(4); within < 0.6 {
		t.Errorf("rate estimates within 4Mbps: %.2f, paper reports 0.80", within)
	}
}

func TestFig10Phases(t *testing.T) {
	res := RunFig10(1)
	p1, p2, p3 := res.Phases[0], res.Phases[1], res.Phases[2]
	// Phase 1: pure delay control, full utilization, tiny queue.
	if p1.PassThroughFrac > 0.05 {
		t.Errorf("phase 1 spent %.0f%% outside delay control with no cross traffic", p1.PassThroughFrac*100)
	}
	if p1.BundleMbps < 75 {
		t.Errorf("phase 1 bundle throughput %.1f Mbit/s, want ≈ 84", p1.BundleMbps)
	}
	if p1.MeanQueueMs > 10 {
		t.Errorf("phase 1 mean in-network queue %.1fms, want small", p1.MeanQueueMs)
	}
	// Phase 2: the buffer-filler takes a meaningful share; Bundler cedes
	// control (pass-through engages at least part of the phase).
	// With many bundle flows against one cross flow, per-flow fairness
	// gives the cross flow a small-but-alive share.
	if p2.CrossMbps < 2 {
		t.Errorf("phase 2 cross throughput %.1f Mbit/s: buffer-filler starved entirely", p2.CrossMbps)
	}
	if p2.PassThroughFrac < 0.05 {
		t.Errorf("phase 2 never entered pass-through (%.2f)", p2.PassThroughFrac)
	}
	// Phase 3: scheduling benefits return; cross web traffic flows.
	if p3.PassThroughFrac > p2.PassThroughFrac+0.2 {
		t.Errorf("phase 3 pass-through %.2f did not subside vs phase 2 %.2f",
			p3.PassThroughFrac, p2.PassThroughFrac)
	}
	if p3.ShortFlowSlowdowns.P50 > 4 {
		t.Errorf("phase 3 short-flow median slowdown %.2f: benefits did not return", p3.ShortFlowSlowdowns.P50)
	}
}

func TestFig7MultipathVisibility(t *testing.T) {
	res := RunFig7(1, 20*sim.Second)
	if res.OOOFraction < 0.2 {
		t.Errorf("OOO fraction %.3f across 4 imbalanced paths, want ≫ 5%%", res.OOOFraction)
	}
	if res.Mode != bundle.ModeDisabled {
		t.Errorf("mode = %v, want disabled", res.Mode)
	}
	if res.EstimateRTTms.N() == 0 {
		t.Error("no RTT estimates recorded")
	}
}

func TestSec76Separation(t *testing.T) {
	// Subset of the sweep for test time; the bench runs it all.
	pts := []Sec76Point{}
	for _, paths := range []int{1, 4} {
		skew := sim.Time(0)
		if paths > 1 {
			skew = 25 * sim.Millisecond
		}
		m := NewMultipathNet(1, 48e6, 100*sim.Millisecond, paths, skew, nil)
		for i := 0; i < 40; i++ {
			m.AddFlow(1<<40, tcp.NewCubic())
		}
		m.Eng.RunUntil(15 * sim.Second)
		m.SB.Stop()
		pts = append(pts, Sec76Point{Paths: paths, OOOFrac: m.SB.OOOFraction()})
	}
	if pts[0].OOOFrac > 0.01 {
		t.Errorf("single path OOO %.4f, want ≈ 0 (paper max 0.4%%)", pts[0].OOOFrac)
	}
	if pts[1].OOOFrac < 0.2 {
		t.Errorf("4-path OOO %.3f, want ≥ 20%% (paper min 20%%)", pts[1].OOOFrac)
	}
}

func TestFig16WANLatency(t *testing.T) {
	res := RunFig16(1, 15*sim.Second)
	for _, r := range res {
		// Status quo inflates well above base; Bundler restores it.
		if r.StatusQuoRTT < r.BaseRTT+20 {
			t.Errorf("%s: status quo %.1fms vs base %.1fms — no queueing to control", r.Name, r.StatusQuoRTT, r.BaseRTT)
		}
		if r.BundlerRTT > r.BaseRTT+10 {
			t.Errorf("%s: bundler RTT %.1fms did not return to base %.1fms", r.Name, r.BundlerRTT, r.BaseRTT)
		}
		// Paper: 57 % lower at the median overall.
		if r.BundlerRTT > 0.7*r.StatusQuoRTT {
			t.Errorf("%s: bundler %.1fms vs status quo %.1fms, want ≥ 30%% lower", r.Name, r.BundlerRTT, r.StatusQuoRTT)
		}
		// Bulk throughput within 25 % (paper: 1 % on real paths; the
		// emulated rate-limiter setup pays a little more).
		if r.BundlerMbps < 0.75*r.StatusQuoMbps {
			t.Errorf("%s: bundler throughput %.0f vs %.0f Mbit/s", r.Name, r.BundlerMbps, r.StatusQuoMbps)
		}
	}
}

func TestSec72Policies(t *testing.T) {
	c := RunSec72CoDel(1, 20*sim.Second)
	if c.BundlerMedianMs > 0.7*c.StatusQuoMedianMs {
		t.Errorf("FQ-CoDel median RTT %.1fms vs status quo %.1fms: want large reduction",
			c.BundlerMedianMs, c.StatusQuoMedianMs)
	}
	p := RunSec72Prio(1, 12000)
	// Medians floor at 1.0 (an unloaded-path completion), so require
	// either a large relative reduction or a near-perfect absolute one.
	if p.BundlerHigh > 0.8*p.StatusQuoHigh && p.BundlerHigh > 1.05 {
		t.Errorf("priority class median %.2f vs status quo %.2f: want large reduction",
			p.BundlerHigh, p.StatusQuoHigh)
	}
	if p.BundlerHigh > p.BundlerLow {
		t.Errorf("favored class (%.2f) should beat the other class (%.2f)", p.BundlerHigh, p.BundlerLow)
	}
}

func TestRunFCTUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown mode")
		}
	}()
	RunFCT(FCTOptions{Mode: "nonsense", Requests: 1})
}

func TestSchedulerByNameVariants(t *testing.T) {
	n := NewNet(NetConfig{Seed: 1})
	for _, name := range []string{"", "sfq", "fifo", "fqcodel", "codel", "red", "drr", "pie", "prio:443"} {
		if SchedulerByName(n.Eng, name, 100) == nil {
			t.Fatalf("nil scheduler for %q", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown scheduler")
		}
	}()
	SchedulerByName(n.Eng, "cbq", 100)
}

func TestSec9HierarchicalBundles(t *testing.T) {
	res := RunHierarchical(1, 30*sim.Second)
	if res.ParentMatched < 100 || res.SubAMatched < 100 || res.SubBMatched < 100 {
		t.Fatalf("control loops starved: parent=%d subA=%d subB=%d",
			res.ParentMatched, res.SubAMatched, res.SubBMatched)
	}
	total := res.SubAMbps + res.SubBMbps
	if total < 0.7*96 {
		t.Errorf("aggregate goodput %.1f Mbit/s through nested bundlers, want ≥ 70%% of 96", total)
	}
	// The departments share roughly fairly (the parent schedules across
	// sub-bundles with SFQ).
	ratio := res.SubAMbps / res.SubBMbps
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("department split %.1f / %.1f Mbit/s is unfair", res.SubAMbps, res.SubBMbps)
	}
	// The in-network queue still shifts to the edge boxes.
	if res.BottleneckQueueMs > 20 {
		t.Errorf("bottleneck queue %.1fms with nested bundlers, want small", res.BottleneckQueueMs)
	}
}

func TestPolicySweepOrdering(t *testing.T) {
	rows := RunPolicySweep(1, 8000)
	byName := map[string]PolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// Fair-queueing disciplines protect short flows better than FIFO.
	for _, fq := range []string{"sfq", "drr", "fqcodel"} {
		if byName[fq].MedianSlowdown > byName["fifo"].MedianSlowdown {
			t.Errorf("%s median %.2f worse than fifo %.2f", fq,
				byName[fq].MedianSlowdown, byName["fifo"].MedianSlowdown)
		}
	}
	// AQMs bound probe latency versus plain FIFO.
	for _, aqm := range []string{"codel", "fqcodel", "pie"} {
		if byName[aqm].ProbeP99Ms > byName["fifo"].ProbeP99Ms*1.1 {
			t.Errorf("%s probe p99 %.1fms no better than fifo %.1fms", aqm,
				byName[aqm].ProbeP99Ms, byName["fifo"].ProbeP99Ms)
		}
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	// The whole point of the virtual-time substrate: identical seeds give
	// bit-identical experiments.
	a := RunFCT(FCTOptions{Seed: 3, Requests: 3000, Mode: "bundler"})
	b := RunFCT(FCTOptions{Seed: 3, Requests: 3000, Mode: "bundler"})
	if a.Slowdowns.N() != b.Slowdowns.N() {
		t.Fatalf("different sample counts: %d vs %d", a.Slowdowns.N(), b.Slowdowns.N())
	}
	if a.Slowdowns.Median() != b.Slowdowns.Median() ||
		a.Slowdowns.Quantile(0.99) != b.Slowdowns.Quantile(0.99) ||
		a.Bytes != b.Bytes {
		t.Fatal("same seed produced different results")
	}
	c := RunFCT(FCTOptions{Seed: 4, Requests: 3000, Mode: "bundler"})
	if c.Bytes == a.Bytes {
		t.Fatal("different seeds produced identical workloads (suspicious)")
	}
}
