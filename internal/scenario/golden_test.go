package scenario_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bundler/internal/exp"
	_ "bundler/internal/scenario" // registers every experiment
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/scenario -run TestGolden -update
//
// Regenerate ONLY when an intentional behavior change alters experiment
// output; the whole point of these files is that refactors (pooling,
// scheduling changes, ...) must reproduce them byte for byte.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenCases pins the experiments the paper's headline claims rest on.
// Scales are reduced (goldens must be cheap enough to run on every test
// invocation) but large enough that every mechanism — pacing, epoch
// matching, loss recovery, mode switching — is exercised.
var goldenCases = []struct {
	name   string // golden file stem
	exp    string // registry name (aliases allowed)
	seed   int64
	params exp.Params
	slow   bool // skipped under -short
}{
	{name: "fig9", exp: "fig9", seed: 1, params: exp.Params{"requests": "2000"}},
	{name: "fig5", exp: "fig5", seed: 1, params: exp.Params{"dur": "5s"}},
	{name: "fig10", exp: "fig10", seed: 1, slow: true},
	// The smallest mesh, with SFQ re-keying fast enough to fire several
	// times during the run: pins the multibundle fan-out and the
	// rehash-on-perturbation behavior byte for byte.
	{name: "mesh2", exp: "mesh", seed: 1, params: exp.Params{
		"sites": "2", "requests": "400", "perturb": "250ms"}},
}

// TestGolden asserts that experiment output is byte-identical to the
// snapshots under testdata/. Everything in a Result derives from virtual
// time and the seeded RNG, so any diff means the simulation's behavior
// changed — never environment noise.
func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skipf("%s golden is slow; skipped under -short", tc.name)
			}
			e, ok := exp.Lookup(tc.exp)
			if !ok {
				t.Fatalf("experiment %q not registered", tc.exp)
			}
			res, err := e.Run(tc.seed, tc.params)
			if err != nil {
				t.Fatalf("%s: %v", tc.exp, err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatalf("marshal result: %v", err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s output diverged from %s.\n"+
					"If this change is intentional, regenerate with:\n"+
					"  go test ./internal/scenario -run TestGolden -update\n"+
					"got %d bytes, want %d bytes; first divergence at byte %d",
					tc.exp, path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
