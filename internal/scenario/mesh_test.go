package scenario_test

import (
	"bytes"
	"testing"

	"bundler/internal/exp"
	"bundler/internal/pkt"
	"bundler/internal/scenario"
	"bundler/internal/sim"
)

// TestMeshInvariants is the multibundle fan-out table test: every mesh
// shape must conserve packets (pool live-count bounded), classify every
// data packet to its own bundle (zero MultiSendbox misroutes — a
// misroute is cross-pair leakage through one physical box), and complete
// every pair's workload. Perturbation and jitter are on where noted so
// the SFQ re-key and ordered-jitter paths run under the checks.
func TestMeshInvariants(t *testing.T) {
	cases := []struct {
		name string
		opt  scenario.MeshOptions
	}{
		{"2-site hub bundled", scenario.MeshOptions{
			Sites: 2, Bundled: true, Requests: 60, PerturbPeriod: 300 * sim.Millisecond}},
		{"4-site hub bundled perturb+jitter", scenario.MeshOptions{
			Sites: 4, Bundled: true, Requests: 40, PerturbPeriod: 250 * sim.Millisecond,
			JitterMax: 2 * sim.Millisecond, JitterOrdered: true}},
		{"4-site hub status quo", scenario.MeshOptions{Sites: 4, Requests: 40}},
		{"8-site pairwise bundled", scenario.MeshOptions{
			Sites: 8, Mode: "pairwise", Bundled: true, Requests: 50,
			PerturbPeriod: 200 * sim.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opt.Seed = 1
			liveBefore := pkt.Live()
			m := scenario.NewMesh(tc.opt)
			m.Run()

			if got := m.Misrouted(); got != 0 {
				t.Errorf("%d packets crossed bundles inside a physical box", got)
			}
			wantPairs := tc.opt.Sites * (tc.opt.Sites - 1)
			if len(m.Pairs) != wantPairs {
				t.Fatalf("built %d pairs, want %d", len(m.Pairs), wantPairs)
			}
			total := 0
			for _, pr := range m.Pairs {
				if pr.Rec.Completed < tc.opt.Requests {
					t.Errorf("pair s%d->s%d completed %d/%d requests",
						pr.Src, pr.Dst, pr.Rec.Completed, tc.opt.Requests)
				}
				total += pr.Rec.Completed
			}
			if agg := m.Aggregate(); agg.Completed != total {
				t.Errorf("aggregate recorder counts %d flows, pairs sum to %d", agg.Completed, total)
			}
			if tc.opt.Bundled {
				if len(m.Multis) != tc.opt.Sites {
					t.Fatalf("%d physical boxes, want one per site (%d)", len(m.Multis), tc.opt.Sites)
				}
				for _, pr := range m.Pairs {
					if pr.Site.SB.AcksMatched == 0 {
						t.Errorf("bundle s%d->s%d matched no congestion ACKs: its inner loop never ran",
							pr.Src, pr.Dst)
					}
				}
			}

			// Conservation, as in TestInvariants: the live count may grow
			// by end-of-run in-flight state, never shrink, never leak big.
			delta := pkt.Live() - liveBefore
			if delta < 0 {
				t.Errorf("live packet count fell by %d: something released packets it did not own", -delta)
			}
			const inFlightBound = 200_000
			if delta > inFlightBound {
				t.Errorf("live packet count grew by %d (> %d): release paths are leaking", delta, inFlightBound)
			}
		})
	}
}

// TestMeshSweepDeterminism runs the registered mesh experiment over a
// small grid at 8 sites with 1 and 8 workers: byte-identical JSON is the
// sweep engine's contract, and the mesh — hundreds of engines, pools,
// and control loops per cell — is its heaviest client.
func TestMeshSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh determinism sweep is slow; skipped under -short")
	}
	mesh, ok := exp.Lookup("mesh")
	if !ok {
		t.Fatal("mesh experiment not registered")
	}
	g, err := exp.ParseGrid("sites=8;requests=15;perturb=300ms;seed=1,2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int) []byte {
		results, err := exp.Sweep(mesh, g, parallel, nil)
		if err != nil {
			t.Fatalf("parallel %d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := exp.WriteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	concurrent := run(8)
	if !bytes.Equal(serial, concurrent) {
		t.Fatal("mesh sweep output differs between -parallel 1 and -parallel 8")
	}
}
