package scenario

import (
	"fmt"
	"strings"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/exp"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/workload"
)

// This file is the N-site mesh scenario family: the paper's site-to-site
// deployment story (§9) at scale, instead of the single dumbbell pair
// every other experiment runs. N sites exchange traffic pairwise; each
// ordered site pair is one bundle (its own sendbox/receivebox pair and
// inner loop), and each source site's N-1 per-destination sendboxes sit
// behind one physical box — a MultiSendbox — feeding the site's shared
// access bottleneck. Cross-pair contention happens at that access link
// (and, in hub mode, again at the shared core), which is precisely the
// per-site rate-allocation regime §9 discusses.
//
// The mesh is also the stress harness for the in-bundle ordering fixes:
// its sendbox SFQs re-key periodically (the Linux perturbation path that
// used to split in-flight flows across buckets), and its in-path jitter
// elements run in order-preserving mode (plain jitter would fake the
// §5.2 multipath reordering signal on a single-path mesh).

// MeshOptions parameterizes one mesh run.
type MeshOptions struct {
	Seed int64
	// Sites is the site count N (≥ 2); the mesh carries N·(N-1) ordered
	// site pairs, each its own bundle.
	Sites int
	// Mode is "hub" (default: per-site access links feed one shared core
	// link) or "pairwise" (access links deliver directly; each source
	// site's access link is its pairs' only shared bottleneck).
	Mode string
	// AccessRate is the per-site access link rate in bits/s (default
	// 96e6, the dumbbell experiments' bottleneck).
	AccessRate float64
	// CoreRate is the hub-mode core rate (default Sites·AccessRate/2:
	// statistically multiplexed, so the core congests under load skew).
	CoreRate float64
	// RTT is the end-to-end propagation round trip (default 50 ms).
	RTT sim.Time
	// Bundled interposes a Bundler pair per ordered site pair; false is
	// the status-quo baseline.
	Bundled bool
	// SendboxQueuePackets is the per-bundle SFQ depth (default 1000).
	SendboxQueuePackets int
	// PerturbPeriod re-keys every sendbox SFQ this often (0 disables) —
	// the Linux perturbation path the re-key regression fix covers.
	PerturbPeriod sim.Time
	// JitterMax adds uniform in-path delay variation in [0, JitterMax)
	// after each access link (0 disables); JitterOrdered selects the
	// order-preserving element (a FIFO path element that varies latency
	// without reordering).
	JitterMax     sim.Time
	JitterOrdered bool
	// Requests is the web request count per ordered pair (default 300).
	Requests int
	// OfferedBps is the per-pair offered load (default 70 % of the
	// access rate split across the site's N-1 destinations).
	OfferedBps float64
	// Horizon bounds the run (default: the FCT experiments' load-scaled
	// rule over the total request count).
	Horizon sim.Time
}

func (o *MeshOptions) fill() {
	if o.Sites == 0 {
		o.Sites = 4
	}
	if o.Mode == "" {
		o.Mode = "hub"
	}
	if o.AccessRate == 0 {
		o.AccessRate = 96e6
	}
	if o.CoreRate == 0 {
		o.CoreRate = float64(o.Sites) * o.AccessRate / 2
	}
	if o.RTT == 0 {
		o.RTT = 50 * sim.Millisecond
	}
	if o.SendboxQueuePackets == 0 {
		o.SendboxQueuePackets = 1000
	}
	if o.Requests == 0 {
		o.Requests = 300
	}
	if o.OfferedBps == 0 {
		o.OfferedBps = 0.7 * o.AccessRate / float64(o.Sites-1)
	}
	if o.Horizon == 0 {
		total := o.Requests * o.Sites * (o.Sites - 1)
		o.Horizon = 10 * sim.Time(total) * sim.Millisecond
		if o.Horizon < 120*sim.Second {
			o.Horizon = 120 * sim.Second
		}
	}
}

// Validate reports whether the options (after defaulting) describe a
// buildable mesh. NewMesh panics on exactly these conditions — direct
// callers are programmers — while the topo compiler and the registered
// experiment, whose inputs are user-supplied, surface them as errors.
func (o MeshOptions) Validate() error {
	c := o
	c.fill()
	if c.Sites < 2 || c.Sites > 64 {
		return fmt.Errorf("mesh sites %d outside [2, 64]", c.Sites)
	}
	if c.Mode != "hub" && c.Mode != "pairwise" {
		return fmt.Errorf("mesh mode %q unknown (want hub or pairwise)", c.Mode)
	}
	if c.AccessRate < netem.MinRate {
		return fmt.Errorf("mesh access rate %.0f below the %.0f bits/s minimum", c.AccessRate, netem.MinRate)
	}
	if c.CoreRate < netem.MinRate {
		return fmt.Errorf("mesh core rate %.0f below the %.0f bits/s minimum", c.CoreRate, netem.MinRate)
	}
	if o.Requests < 0 || o.OfferedBps < 0 || o.PerturbPeriod < 0 || o.JitterMax < 0 {
		return fmt.Errorf("mesh requests, load, perturb, and jitter must be non-negative")
	}
	return nil
}

// MeshPair is one ordered site pair: one bundle, one open-loop web
// workload, one recorder.
type MeshPair struct {
	Src, Dst int
	Site     *Site
	Rec      *workload.Recorder
}

// Mesh is one instantiated N-site mesh on a private engine.
type Mesh struct {
	Opt    MeshOptions
	Fab    *Fabric
	Access []*netem.Link
	// Core is the hub-mode shared link (nil in pairwise mode).
	Core *netem.Link
	// Pairs lists the ordered site pairs in (src, dst) lexicographic
	// order: (0,1), (0,2), ..., (1,0), ...
	Pairs []*MeshPair
	// Multis holds each source site's physical box (nil when unbundled).
	Multis []*bundle.MultiSendbox

	sfqs    []*qdisc.SFQ
	perturb *sim.Ticker
}

// NewMesh builds the mesh and schedules its workloads; drive it with Run.
func NewMesh(o MeshOptions) *Mesh {
	o.fill()
	if err := o.Validate(); err != nil {
		panic("scenario: " + err.Error())
	}
	eng := sim.NewEngine(o.Seed)
	fab := NewFabric(eng)
	fab.Reverse = netem.NewLink(eng, "reverse", 10e9, o.RTT/2, qdisc.NewFIFO(1<<26), fab.MuxA)
	fab.OracleRTT = o.RTT
	fab.OracleRate = o.AccessRate

	m := &Mesh{Opt: o, Fab: fab}

	// Forward path: access links (one per site), converging either on a
	// shared core (hub) or directly on the destination demux (pairwise).
	// Propagation splits so forward delay is RTT/2 either way.
	var coreEntry netem.Receiver = fab.Demux
	accessDelay := o.RTT / 2
	if o.Mode == "hub" {
		if o.CoreRate < o.AccessRate {
			fab.OracleRate = o.CoreRate
		}
		coreBuf := 2 * int(o.CoreRate/8*o.RTT.Seconds())
		m.Core = netem.NewLink(eng, "core", o.CoreRate, o.RTT/4, qdisc.NewFIFO(coreBuf), fab.Demux)
		coreEntry = m.Core
		accessDelay = o.RTT / 4
	}
	accessBuf := 2 * int(o.AccessRate/8*o.RTT.Seconds())
	for i := 0; i < o.Sites; i++ {
		dst := coreEntry
		if o.JitterMax > 0 {
			// In-path delay variation between access and core. Ordered
			// mode is the physically honest choice for a FIFO element;
			// plain mode deliberately fakes reordering.
			if o.JitterOrdered {
				dst = netem.NewOrderedJitter(eng, o.JitterMax, coreEntry)
			} else {
				dst = netem.NewJitter(eng, o.JitterMax, coreEntry)
			}
		}
		m.Access = append(m.Access, netem.NewLink(eng, fmt.Sprintf("access%d", i),
			o.AccessRate, accessDelay, qdisc.NewFIFO(accessBuf), dst))
	}

	// Sites and bundles: each ordered pair (i, j) is one bundle whose
	// sendbox egress is site i's access link. A bundled source site then
	// fronts its N-1 sendboxes with one MultiSendbox — the physical box —
	// classified by destination host, learned as flow addresses are
	// allocated (Site.onNewDst).
	for i := 0; i < o.Sites; i++ {
		var boxes []*bundle.Sendbox
		classify := make(map[uint32]int)
		for j := 0; j < o.Sites; j++ {
			if j == i {
				continue
			}
			var bcfg *bundle.Config
			var sfq *qdisc.SFQ
			if o.Bundled {
				sfq = qdisc.NewSFQ(1024, o.SendboxQueuePackets)
				bcfg = &bundle.Config{Algorithm: "copa", Scheduler: sfq}
			}
			site := fab.AddSiteAt(m.Access[i], bcfg)
			if o.Bundled {
				m.sfqs = append(m.sfqs, sfq)
				box := len(boxes)
				boxes = append(boxes, site.SB)
				site.onNewDst = func(host uint32) { classify[host] = box }
			}
			m.Pairs = append(m.Pairs, &MeshPair{Src: i, Dst: j, Site: site})
		}
		if o.Bundled {
			multi := bundle.NewMultiSendbox(func(p *pkt.Packet) int {
				if b, ok := classify[p.Dst.Host]; ok {
					return b
				}
				return -1 // counted as misrouted; the leak tests assert zero
			}, boxes...)
			m.Multis = append(m.Multis, multi)
			// Route the site's egress through the physical box: every
			// data packet must pass the classifier to reach its bundle.
			for _, pr := range m.Pairs[len(m.Pairs)-len(boxes):] {
				pr.Site.egress = multi
			}
		}
	}

	// Workloads: one open-loop web workload per ordered pair.
	for _, pr := range m.Pairs {
		pr.Rec = pr.Site.RunOpenLoop(Traffic{OfferedBps: o.OfferedBps, Requests: o.Requests})
	}

	// Periodic SFQ re-keying (Linux's perturbation), the path the re-key
	// reordering fix covers: without the queued-packet rehash this would
	// reorder in-flight flows inside every mesh bundle.
	if o.Bundled && o.PerturbPeriod > 0 && len(m.sfqs) > 0 {
		m.perturb = sim.Tick(eng, o.PerturbPeriod, func() {
			for _, q := range m.sfqs {
				q.SetPerturbation(eng.Rand().Uint64())
			}
		})
	}
	return m
}

// Run advances the mesh until every pair completes its requests (or the
// horizon passes), then stops the control planes. It returns the virtual
// stop time.
func (m *Mesh) Run() sim.Time {
	stop := m.Fab.RunUntilDone(m.Opt.Horizon, func() bool {
		for _, pr := range m.Pairs {
			if pr.Rec.Completed < m.Opt.Requests {
				return false
			}
		}
		return true
	})
	m.Stop()
	return stop
}

// Stop halts every bundle's control loop and the perturbation ticker.
func (m *Mesh) Stop() {
	for _, pr := range m.Pairs {
		if pr.Site.SB != nil {
			pr.Site.SB.Stop()
		}
	}
	if m.perturb != nil {
		m.perturb.Stop()
		m.perturb = nil
	}
}

// Aggregate merges every pair's recorder into one site-to-site view —
// the row the mesh FCT table reports per variant.
func (m *Mesh) Aggregate() *workload.Recorder {
	agg := workload.NewRecorder(m.Fab.OracleRate, m.Fab.OracleRTT)
	for _, pr := range m.Pairs {
		agg.Merge(pr.Rec)
	}
	return agg
}

// Misrouted sums the MultiSendbox misclassification counters: any
// nonzero value means a packet crossed bundles inside a physical box.
func (m *Mesh) Misrouted() int {
	total := 0
	for _, mb := range m.Multis {
		total += mb.Misrouted
	}
	return total
}

// RunMesh executes the status-quo and Bundler variants of one mesh
// configuration and returns the shared FCT-comparison rows.
func RunMesh(o MeshOptions) []Fig9Result {
	var rows []Fig9Result
	for _, v := range []struct {
		label   string
		bundled bool
	}{
		{"Status Quo", false},
		{"Bundler (SFQ)", true},
	} {
		vo := o
		vo.Bundled = v.bundled
		mesh := NewMesh(vo)
		mesh.Run()
		rows = append(rows, SummarizeFCT(v.label, mesh.Aggregate()))
	}
	return rows
}

// meshExp is the registered mesh experiment: the scale-out scenario
// family (2..N sites), sweepable over site count, mode, and load.
type meshExp struct{}

func (meshExp) Name() string { return "mesh" }
func (meshExp) Desc() string {
	return "N-site mesh (§9 scale-out): per-pair bundles behind shared access bottlenecks, status quo vs Bundler"
}

func (meshExp) Params() []exp.Param {
	return []exp.Param{
		{Name: "sites", Default: "4", Help: "site count N (N·(N-1) ordered pairs, one bundle each)"},
		{Name: "mode", Default: "hub", Help: `"hub" (shared core link) or "pairwise" (access links only)`},
		{Name: "requests", Default: "300", Help: "web requests per ordered site pair"},
		{Name: "rate", Default: "96e6", Help: "per-site access link rate, bits/s"},
		{Name: "load", Default: "0", Help: "per-pair offered load, bits/s (0 = 70% of access rate split across destinations)"},
		{Name: "perturb", Default: "2s", Help: "sendbox SFQ re-key period (0s disables)"},
		{Name: "jitter", Default: "0s", Help: "in-path delay variation bound after each access link"},
		{Name: "jitterordered", Default: "true", Help: "order-preserving jitter (false fakes multipath reordering)"},
	}
}

// Metadata implements exp.Metadater for run-store manifests.
func (meshExp) Metadata() map[string]string {
	return map[string]string{"paper": "§9", "figure": "mesh scale-out (extension)"}
}

func (meshExp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	var (
		sites    = b.Int("sites", 4)
		mode     = b.String("mode", "hub")
		requests = b.Int("requests", 300)
		rate     = b.Float("rate", 96e6)
		load     = b.Float("load", 0)
		perturb  = b.Duration("perturb", 2*time.Second)
		jitter   = b.Duration("jitter", 0)
		ordered  = b.Bool("jitterordered", true)
	)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	o := MeshOptions{
		Seed:          seed,
		Sites:         sites,
		Mode:          mode,
		AccessRate:    rate,
		Requests:      requests,
		OfferedBps:    load,
		PerturbPeriod: sim.FromSeconds(perturb.Seconds()),
		JitterMax:     sim.FromSeconds(jitter.Seconds()),
		JitterOrdered: ordered,
	}
	if err := o.Validate(); err != nil {
		return exp.Result{}, err
	}
	rows := RunMesh(o)
	var w strings.Builder
	ReportHeader(&w, fmt.Sprintf("Mesh: %d sites (%d bundles, %s), %d requests/pair",
		sites, sites*(sites-1), mode, requests))
	WriteFCTRows(&w, rows)
	res := exp.Result{Experiment: "mesh", Seed: seed, Params: p, Report: w.String()}
	AddFCTRowMetrics(&res, rows)
	for _, r := range rows {
		label := strings.ReplaceAll(r.Label, " ", "_")
		res.AddMetric(label+"/completed", float64(r.Rec.Completed), "requests")
	}
	return res, nil
}
