package scenario

import (
	"fmt"
	"strings"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/exp"
	"bundler/internal/fluid"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
	"bundler/internal/sim/shard"
	"bundler/internal/workload"
)

// This file is the N-site mesh scenario family: the paper's site-to-site
// deployment story (§9) at scale, instead of the single dumbbell pair
// every other experiment runs. N sites exchange traffic pairwise; each
// ordered site pair is one bundle (its own sendbox/receivebox pair and
// inner loop), and each source site's N-1 per-destination sendboxes sit
// behind one physical box — a MultiSendbox — feeding the site's shared
// access bottleneck. Cross-pair contention happens at that access link
// (and, in hub mode, again at the shared core), which is precisely the
// per-site rate-allocation regime §9 discusses.
//
// The mesh runs on a sharded event engine (internal/sim/shard): each
// source site is one partition — its own sim.Engine, RNG stream, and
// packet pool — owning every component of its outbound pairs (senders,
// receivers, boxes, access link, reverse path). In hub mode an extra
// partition owns the shared core link; the only cross-partition edges
// are access→core and core→site, each with RTT/4 propagation, which is
// therefore the world's conservative lookahead. Pairwise mode has no
// cross-partition edges at all. Partition identity depends only on the
// site count, never on the shard (worker) count, so any shards setting
// produces byte-identical output.
//
// The mesh is also the stress harness for the in-bundle ordering fixes:
// its sendbox SFQs re-key periodically (the Linux perturbation path that
// used to split in-flight flows across buckets), and its in-path jitter
// elements run in order-preserving mode (plain jitter would fake the
// §5.2 multipath reordering signal on a single-path mesh).

// MeshOptions parameterizes one mesh run.
type MeshOptions struct {
	Seed int64
	// Sites is the site count N (≥ 2); the mesh carries N·(N-1) ordered
	// site pairs, each its own bundle.
	Sites int
	// Mode is "hub" (default: per-site access links feed one shared core
	// link) or "pairwise" (access links deliver directly; each source
	// site's access link is its pairs' only shared bottleneck).
	Mode string
	// AccessRate is the per-site access link rate in bits/s (default
	// 96e6, the dumbbell experiments' bottleneck).
	AccessRate float64
	// CoreRate is the hub-mode core rate (default Sites·AccessRate/2:
	// statistically multiplexed, so the core congests under load skew).
	CoreRate float64
	// RTT is the end-to-end propagation round trip (default 50 ms).
	RTT sim.Time
	// Bundled interposes a Bundler pair per ordered site pair; false is
	// the status-quo baseline.
	Bundled bool
	// SendboxQueuePackets is the per-bundle SFQ depth (default 1000).
	SendboxQueuePackets int
	// PerturbPeriod re-keys every sendbox SFQ this often (0 disables) —
	// the Linux perturbation path the re-key regression fix covers.
	PerturbPeriod sim.Time
	// JitterMax adds uniform in-path delay variation in [0, JitterMax)
	// after each access link (0 disables); JitterOrdered selects the
	// order-preserving element (a FIFO path element that varies latency
	// without reordering).
	JitterMax     sim.Time
	JitterOrdered bool
	// Requests is the web request count per ordered pair (default 300).
	Requests int
	// OfferedBps is the per-pair offered load. The default is 70 % of
	// the per-destination share of whatever the foreground can actually
	// get: the full access rate normally, or the guaranteed foreground
	// headroom of it when emulated background users saturate the link.
	OfferedBps float64
	// BgUsersPerSite emulates this many background users at every source
	// site as a fluid AIMD aggregate on the site's access link (package
	// fluid): the foreground bundles feel the load through slowed
	// serialization and added queueing delay, but no background packet is
	// ever simulated — per-site cost is O(1) in the user count. Zero
	// disables.
	BgUsersPerSite int
	// Sketch switches every recorder to bounded quantile sketches
	// (internal/stats), making stats memory independent of the request
	// count at ≤1 % quantile error. Forced on whenever BgUsersPerSite is
	// set — million-user meshes are exactly the runs that cannot afford
	// exact per-flow slices.
	Sketch bool
	// Horizon bounds the run (default: the FCT experiments' load-scaled
	// rule over the total request count).
	Horizon sim.Time
	// Shards is the worker-goroutine count driving the partitions. 0
	// (default) auto-budgets against the sweep's active worker count so
	// sweep parallelism × shard parallelism never oversubscribes
	// GOMAXPROCS; an explicit value is honored (clamped to the partition
	// count). The value never affects results, only wall-clock.
	Shards int
}

func (o *MeshOptions) fill() {
	if o.Sites == 0 {
		o.Sites = 4
	}
	if o.Mode == "" {
		o.Mode = "hub"
	}
	if o.AccessRate == 0 {
		o.AccessRate = 96e6
	}
	if o.CoreRate == 0 {
		o.CoreRate = float64(o.Sites) * o.AccessRate / 2
	}
	if o.RTT == 0 {
		o.RTT = 50 * sim.Millisecond
	}
	if o.SendboxQueuePackets == 0 {
		o.SendboxQueuePackets = 1000
	}
	if o.Requests == 0 {
		o.Requests = 300
	}
	if o.BgUsersPerSite > 0 {
		o.Sketch = true
	}
	if o.OfferedBps == 0 {
		share := o.AccessRate
		if o.BgUsersPerSite > 0 {
			// A saturating background aggregate leaves the foreground only
			// the guaranteed headroom; offering more would just run every
			// pair into the horizon.
			share *= fluid.ForegroundHeadroom
		}
		o.OfferedBps = 0.7 * share / float64(o.Sites-1)
	}
	if o.Horizon == 0 {
		total := o.Requests * o.Sites * (o.Sites - 1)
		o.Horizon = 10 * sim.Time(total) * sim.Millisecond
		if o.Horizon < 120*sim.Second {
			o.Horizon = 120 * sim.Second
		}
	}
}

// Validate reports whether the options (after defaulting) describe a
// buildable mesh. NewMesh panics on exactly these conditions — direct
// callers are programmers — while the topo compiler and the registered
// experiment, whose inputs are user-supplied, surface them as errors.
func (o MeshOptions) Validate() error {
	c := o
	c.fill()
	if c.Sites < 2 || c.Sites > 64 {
		return fmt.Errorf("mesh sites %d outside [2, 64]", c.Sites)
	}
	if c.Mode != "hub" && c.Mode != "pairwise" {
		return fmt.Errorf("mesh mode %q unknown (want hub or pairwise)", c.Mode)
	}
	if c.AccessRate < netem.MinRate {
		return fmt.Errorf("mesh access rate %.0f below the %.0f bits/s minimum", c.AccessRate, netem.MinRate)
	}
	if c.CoreRate < netem.MinRate {
		return fmt.Errorf("mesh core rate %.0f below the %.0f bits/s minimum", c.CoreRate, netem.MinRate)
	}
	if o.Requests < 0 || o.OfferedBps < 0 || o.PerturbPeriod < 0 || o.JitterMax < 0 {
		return fmt.Errorf("mesh requests, load, perturb, and jitter must be non-negative")
	}
	if o.BgUsersPerSite < 0 {
		return fmt.Errorf("mesh background users must be non-negative (got %d)", o.BgUsersPerSite)
	}
	if o.Shards < 0 {
		return fmt.Errorf("mesh shards must be non-negative (0 = auto)")
	}
	return nil
}

// meshHostBase encodes a site's partition index into its fabric's
// address region: hosts (i+1)<<20, control addresses the same region
// with bit 19 set, flow IDs (i+1)<<32. The core router decodes the
// owning site back out of any destination host with meshSiteOf.
func meshHostBase(site int) (host, ctl uint32, flow uint64) {
	return uint32(site+1) << 20, uint32(site+1)<<20 | 1<<19, uint64(site+1) << 32
}

func meshSiteOf(host uint32) int { return int(host>>20) - 1 }

// MeshPair is one ordered site pair: one bundle, one open-loop web
// workload, one recorder.
type MeshPair struct {
	Src, Dst int
	Site     *Site
	Rec      *workload.Recorder
}

// Mesh is one instantiated N-site mesh on a sharded world: one
// partition (engine + fabric + pool) per source site, plus a core
// partition in hub mode.
type Mesh struct {
	Opt MeshOptions
	// World is the sharded engine driving the partitions.
	World *shard.World
	// Fabs holds each site partition's endpoint fabric, indexed by site.
	Fabs   []*Fabric
	Access []*netem.Link
	// Core is the hub-mode shared link (nil in pairwise mode); it lives
	// on its own partition.
	Core *netem.Link
	// Pairs lists the ordered site pairs in (src, dst) lexicographic
	// order: (0,1), (0,2), ..., (1,0), ...
	Pairs []*MeshPair
	// Multis holds each source site's physical box (nil when unbundled).
	Multis []*bundle.MultiSendbox
	// Fluids holds each site's background-user aggregate, indexed by
	// site (empty when BgUsersPerSite is zero). Each lives on its site's
	// partition engine, so fluid ticks shard with everything else.
	Fluids []*fluid.Aggregate

	oracleRate float64
	sfqs       [][]*qdisc.SFQ // per source site
	perturbs   []*sim.Ticker
}

// NewMesh builds the mesh and schedules its workloads; drive it with Run.
func NewMesh(o MeshOptions) *Mesh {
	o.fill()
	if err := o.Validate(); err != nil {
		panic("scenario: " + err.Error())
	}
	m := &Mesh{Opt: o, World: shard.NewWorld()}

	// One partition per source site; partition seeds mix the experiment
	// seed with the stable site index, never the shard count.
	parts := make([]*shard.Part, o.Sites)
	for i := range parts {
		parts[i] = m.World.AddPart(shard.MixSeed(o.Seed, i))
	}

	m.oracleRate = o.AccessRate
	hub := o.Mode == "hub"
	var core *shard.Part
	inPorts := make([]*shard.Port, 0, o.Sites) // core → site, indexed by site
	if hub {
		if o.CoreRate < o.AccessRate {
			m.oracleRate = o.CoreRate
		}
		core = m.World.AddPart(shard.MixSeed(o.Seed, o.Sites))
		// The core switch: decode the owning site from the destination
		// host's partition bits and forward over that site's inbound port.
		router := shard.NewRouter(func(p *pkt.Packet) *shard.Port {
			site := meshSiteOf(p.Dst.Host)
			if site < 0 || site >= len(inPorts) {
				panic(fmt.Sprintf("scenario: mesh core cannot route host %#x", p.Dst.Host))
			}
			return inPorts[site]
		})
		coreBuf := 2 * int(o.CoreRate/8*o.RTT.Seconds())
		m.Core = netem.NewLink(core.Eng, "core", o.CoreRate, o.RTT/4, qdisc.NewFIFO(coreBuf), router)
	}

	// Per-site fabric, access link, and (hub) boundary ports. Forward
	// propagation totals RTT/2 either way: pairwise pays it all on the
	// local access link; hub pays RTT/4 on the access→core crossing and
	// RTT/4 on the core link's own delay (consumed by the core→site
	// crossing). With jitter the access link's share moves onto the
	// outbound port so the jitter element sits between them, matching
	// the single-engine topology's access → jitter → core chain.
	accessBuf := 2 * int(o.AccessRate/8*o.RTT.Seconds())
	for i := 0; i < o.Sites; i++ {
		pa := parts[i]
		fab := NewFabric(pa.Eng)
		fab.Pool = pa.Pool
		hostBase, ctlBase, flowBase := meshHostBase(i)
		fab.SetIDSpace(hostBase, ctlBase, flowBase)
		fab.Reverse = netem.NewLink(pa.Eng, fmt.Sprintf("reverse%d", i), 10e9, o.RTT/2, qdisc.NewFIFO(1<<26), fab.MuxA)
		fab.OracleRTT = o.RTT
		fab.OracleRate = m.oracleRate
		m.Fabs = append(m.Fabs, fab)

		var dst netem.Receiver
		var accessDelay sim.Time
		if hub {
			out := m.World.NewPort(pa, core, m.Core, o.RTT/4)
			inPorts = append(inPorts, m.World.NewPort(core, pa, fab.Demux, o.RTT/4))
			dst = out
			accessDelay = o.RTT / 4
			if o.JitterMax > 0 {
				// In-path delay variation between access and core. Ordered
				// mode is the physically honest choice for a FIFO element;
				// plain mode deliberately fakes reordering. The port's
				// fixed RTT/4 replaces the access link's propagation.
				accessDelay = 0
				if o.JitterOrdered {
					dst = netem.NewOrderedJitter(pa.Eng, o.JitterMax, out)
				} else {
					dst = netem.NewJitter(pa.Eng, o.JitterMax, out)
				}
			}
		} else {
			dst = fab.Demux
			accessDelay = o.RTT / 2
			if o.JitterMax > 0 {
				if o.JitterOrdered {
					dst = netem.NewOrderedJitter(pa.Eng, o.JitterMax, fab.Demux)
				} else {
					dst = netem.NewJitter(pa.Eng, o.JitterMax, fab.Demux)
				}
			}
		}
		m.Access = append(m.Access, netem.NewLink(pa.Eng, fmt.Sprintf("access%d", i),
			o.AccessRate, accessDelay, qdisc.NewFIFO(accessBuf), dst))
		if o.BgUsersPerSite > 0 {
			agg := fluid.Attach(pa.Eng, m.Access[i], 0)
			agg.AddClass(fluid.Class{Name: fmt.Sprintf("bg%d", i),
				Users: o.BgUsersPerSite, RTT: o.RTT})
			m.Fluids = append(m.Fluids, agg)
		}
	}

	// Sites and bundles: each ordered pair (i, j) is one bundle whose
	// sendbox egress is site i's access link. A bundled source site then
	// fronts its N-1 sendboxes with one MultiSendbox — the physical box —
	// classified by destination host, learned as flow addresses are
	// allocated (Site.onNewDst). Everything here lives on partition i.
	for i := 0; i < o.Sites; i++ {
		fab := m.Fabs[i]
		var boxes []*bundle.Sendbox
		var siteSFQs []*qdisc.SFQ
		classify := make(map[uint32]int)
		for j := 0; j < o.Sites; j++ {
			if j == i {
				continue
			}
			var bcfg *bundle.Config
			var sfq *qdisc.SFQ
			if o.Bundled {
				sfq = qdisc.NewSFQ(1024, o.SendboxQueuePackets)
				// Mesh rows report flow-level summaries only; drop the
				// per-tick box traces, which would otherwise retain
				// O(ticks) memory for each of the N(N-1) bundles.
				bcfg = &bundle.Config{Algorithm: "copa", Scheduler: sfq, DisableTelemetry: true}
			}
			site := fab.AddSiteAt(m.Access[i], bcfg)
			if o.Bundled {
				siteSFQs = append(siteSFQs, sfq)
				box := len(boxes)
				boxes = append(boxes, site.SB)
				site.onNewDst = func(host uint32) { classify[host] = box }
			}
			m.Pairs = append(m.Pairs, &MeshPair{Src: i, Dst: j, Site: site})
		}
		if o.Bundled {
			multi := bundle.NewMultiSendbox(func(p *pkt.Packet) int {
				if b, ok := classify[p.Dst.Host]; ok {
					return b
				}
				return -1 // counted as misrouted; the leak tests assert zero
			}, boxes...)
			m.Multis = append(m.Multis, multi)
			// Route the site's egress through the physical box: every
			// data packet must pass the classifier to reach its bundle.
			for _, pr := range m.Pairs[len(m.Pairs)-len(boxes):] {
				pr.Site.egress = multi
			}
		}
		m.sfqs = append(m.sfqs, siteSFQs)
	}

	// Workloads: one open-loop web workload per ordered pair, drawing
	// arrivals from the owning partition's RNG stream.
	for _, pr := range m.Pairs {
		pr.Rec = pr.Site.RunOpenLoop(Traffic{OfferedBps: o.OfferedBps, Requests: o.Requests, Sketch: o.Sketch})
	}

	// Periodic SFQ re-keying (Linux's perturbation), the path the re-key
	// reordering fix covers. One ticker per source site, on that site's
	// engine, so the perturbation keys come from partition-local RNG.
	if o.Bundled && o.PerturbPeriod > 0 {
		for i, qs := range m.sfqs {
			if len(qs) == 0 {
				continue
			}
			eng, qs := m.Fabs[i].Eng, qs
			m.perturbs = append(m.perturbs, sim.Tick(eng, o.PerturbPeriod, func() {
				for _, q := range qs {
					q.SetPerturbation(eng.Rand().Uint64())
				}
			}))
		}
	}

	shards := o.Shards
	if shards == 0 {
		shards = exp.ShardBudget()
	}
	m.World.SetShards(shards)
	return m
}

// Shards reports the effective worker count driving the mesh.
func (m *Mesh) Shards() int { return m.World.Shards() }

// Run advances the mesh until every pair completes its requests (or the
// horizon passes), then stops the control planes. It returns the virtual
// stop time.
func (m *Mesh) Run() sim.Time { return m.RunUntil(m.Opt.Horizon) }

// RunUntil is Run with an explicit horizon (the topo compiler's entry
// point, whose scenario-level horizon may override the mesh default).
func (m *Mesh) RunUntil(horizon sim.Time) sim.Time {
	// Tear each pair's control loop down at the completion check where
	// its workload finishes — a bundle exists while its traffic does.
	// Early pairs would otherwise tick their 10 ms control loop for the
	// whole tail of the run; with N·(N-1) bundles that idle ticking,
	// not packet work, dominates large-mesh run time. The check runs at
	// window barriers, whose times depend only on the topology's
	// lookahead — never on the shard count — so teardown times are
	// deterministic and shard-invariant like everything else.
	done := make([]bool, len(m.Pairs))
	stop := m.World.Run(horizon, func() bool {
		all := true
		for i, pr := range m.Pairs {
			if done[i] {
				continue
			}
			if pr.Rec.Completed < m.Opt.Requests {
				all = false
				continue
			}
			done[i] = true
			if pr.Site.SB != nil {
				pr.Site.SB.Stop()
			}
		}
		return all
	})
	m.Stop()
	return stop
}

// Stop halts every bundle's control loop and the perturbation tickers.
func (m *Mesh) Stop() {
	for _, pr := range m.Pairs {
		if pr.Site.SB != nil {
			pr.Site.SB.Stop()
		}
	}
	for _, t := range m.perturbs {
		t.Stop()
	}
	m.perturbs = nil
	for _, a := range m.Fluids {
		a.Stop()
	}
}

// Aggregate merges every pair's recorder into one site-to-site view —
// the row the mesh FCT table reports per variant.
func (m *Mesh) Aggregate() *workload.Recorder {
	agg := workload.NewRecorder(m.oracleRate, m.Opt.RTT)
	if m.Opt.Sketch {
		agg.UseSketch()
	}
	for _, pr := range m.Pairs {
		agg.Merge(pr.Rec)
	}
	return agg
}

// BgDeliveredBytes sums the background aggregates' drained fluid volume;
// BgLostBytes sums their virtual-buffer overflow. Both are zero when the
// mesh runs without emulated users.
func (m *Mesh) BgDeliveredBytes() float64 {
	v := 0.0
	for _, a := range m.Fluids {
		v += a.DeliveredBytes()
	}
	return v
}

// BgLostBytes reports the cumulative background loss volume (the AIMD
// signal) across sites.
func (m *Mesh) BgLostBytes() float64 {
	v := 0.0
	for _, a := range m.Fluids {
		v += a.LostBytes()
	}
	return v
}

// Misrouted sums the MultiSendbox misclassification counters: any
// nonzero value means a packet crossed bundles inside a physical box.
func (m *Mesh) Misrouted() int {
	total := 0
	for _, mb := range m.Multis {
		total += mb.Misrouted
	}
	return total
}

// MeshBg summarizes one variant's background fluid volume: how much the
// emulated users pushed through their access links and how much their
// virtual buffers dropped (all zero without BgUsersPerSite).
type MeshBg struct {
	Label                     string
	DeliveredBytes, LostBytes float64
}

// RunMesh executes the status-quo and Bundler variants of one mesh
// configuration and returns the shared FCT-comparison rows plus each
// variant's background-traffic summary.
func RunMesh(o MeshOptions) ([]Fig9Result, []MeshBg) {
	var rows []Fig9Result
	var bgs []MeshBg
	for _, v := range []struct {
		label   string
		bundled bool
	}{
		{"Status Quo", false},
		{"Bundler (SFQ)", true},
	} {
		vo := o
		vo.Bundled = v.bundled
		mesh := NewMesh(vo)
		mesh.Run()
		rows = append(rows, SummarizeFCT(v.label, mesh.Aggregate()))
		bgs = append(bgs, MeshBg{Label: v.label,
			DeliveredBytes: mesh.BgDeliveredBytes(), LostBytes: mesh.BgLostBytes()})
	}
	return rows, bgs
}

// meshExp is the registered mesh experiment: the scale-out scenario
// family (2..N sites), sweepable over site count, mode, load, and shard
// parallelism.
type meshExp struct{}

func (meshExp) Name() string { return "mesh" }
func (meshExp) Desc() string {
	return "N-site mesh (§9 scale-out): per-pair bundles behind shared access bottlenecks, status quo vs Bundler"
}

func (meshExp) Params() []exp.Param {
	return []exp.Param{
		{Name: "sites", Default: "4", Help: "site count N (N·(N-1) ordered pairs, one bundle each)"},
		{Name: "mode", Default: "hub", Help: `"hub" (shared core link) or "pairwise" (access links only)`},
		{Name: "requests", Default: "300", Help: "web requests per ordered site pair"},
		{Name: "rate", Default: "96e6", Help: "per-site access link rate, bits/s"},
		{Name: "load", Default: "0", Help: "per-pair offered load, bits/s (0 = 70% of access rate split across destinations)"},
		{Name: "perturb", Default: "2s", Help: "sendbox SFQ re-key period (0s disables)"},
		{Name: "jitter", Default: "0s", Help: "in-path delay variation bound after each access link"},
		{Name: "jitterordered", Default: "true", Help: "order-preserving jitter (false fakes multipath reordering)"},
		{Name: "shards", Default: "0", Help: "engine shards driving the per-site partitions (0 = auto-budget against sweep workers; results are identical for any value)"},
		{Name: "users", Default: "0", Help: "emulated background users per site, modeled as a fluid AIMD aggregate on each access link (0 disables; >0 also switches stats to sketch mode)"},
		{Name: "sketch", Default: "auto", Help: `bounded quantile sketches for FCT stats: "auto" (on when users > 0), "true", or "false"`},
	}
}

// Metadata implements exp.Metadater for run-store manifests.
func (meshExp) Metadata() map[string]string {
	return map[string]string{"paper": "§9", "figure": "mesh scale-out (extension)"}
}

func (meshExp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	var (
		sites    = b.Int("sites", 4)
		mode     = b.String("mode", "hub")
		requests = b.Int("requests", 300)
		rate     = b.Float("rate", 96e6)
		load     = b.Float("load", 0)
		perturb  = b.Duration("perturb", 2*time.Second)
		jitter   = b.Duration("jitter", 0)
		ordered  = b.Bool("jitterordered", true)
		shards   = b.Int("shards", 0)
		users    = b.Int("users", 0)
		sketch   = b.String("sketch", "auto")
	)
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	o := MeshOptions{
		Seed:           seed,
		Sites:          sites,
		Mode:           mode,
		AccessRate:     rate,
		Requests:       requests,
		OfferedBps:     load,
		PerturbPeriod:  sim.FromSeconds(perturb.Seconds()),
		JitterMax:      sim.FromSeconds(jitter.Seconds()),
		JitterOrdered:  ordered,
		Shards:         shards,
		BgUsersPerSite: users,
	}
	switch sketch {
	case "auto":
		// fill() turns sketches on with the background users.
	case "true":
		o.Sketch = true
	case "false":
		if users > 0 {
			return exp.Result{}, fmt.Errorf("mesh: sketch=false is incompatible with users=%d (emulated-user runs need bounded stats)", users)
		}
	default:
		return exp.Result{}, fmt.Errorf("mesh: sketch=%q (want auto, true, or false)", sketch)
	}
	if err := o.Validate(); err != nil {
		return exp.Result{}, err
	}
	rows, bgs := RunMesh(o)
	var w strings.Builder
	hdr := fmt.Sprintf("Mesh: %d sites (%d bundles, %s), %d requests/pair",
		sites, sites*(sites-1), mode, requests)
	if users > 0 {
		hdr += fmt.Sprintf(", %d background users/site", users)
	}
	ReportHeader(&w, hdr)
	WriteFCTRows(&w, rows)
	res := exp.Result{Experiment: "mesh", Seed: seed, Params: p, Report: w.String()}
	AddFCTRowMetrics(&res, rows)
	for i, r := range rows {
		label := strings.ReplaceAll(r.Label, " ", "_")
		res.AddMetric(label+"/completed", float64(r.Rec.Completed), "requests")
		if users > 0 {
			fmt.Fprintf(&w, "%-22s background delivered %.1f MB, lost %.1f MB\n",
				bgs[i].Label, bgs[i].DeliveredBytes/1e6, bgs[i].LostBytes/1e6)
			res.AddMetric(label+"/bg-delivered", bgs[i].DeliveredBytes, "bytes")
			res.AddMetric(label+"/bg-lost", bgs[i].LostBytes, "bytes")
		}
	}
	if users > 0 {
		res.Report = w.String()
	}
	return res, nil
}
