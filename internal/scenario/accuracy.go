package scenario

import (
	"fmt"
	"strings"
	"time"

	"bundler/internal/exp"
	"bundler/internal/pkt"
	"bundler/internal/sim"
	"bundler/internal/stats"
)

// AccuracyResult holds the Figure 5/6 microbenchmark: Bundler's RTT and
// receive-rate estimates against ground truth measured at the emulated
// bottleneck, across the paper's sweep of link delays (20/50/100 ms) and
// rates (24/48/96 Mbit/s).
type AccuracyResult struct {
	// RTTErrMs collects per-sample (estimate − actual) RTT differences.
	RTTErrMs stats.Sample
	// RateErrMbps collects per-sample receive-rate differences.
	RateErrMbps stats.Sample
	// WithinRTT is the fraction of RTT estimates within 1.2 ms (the
	// paper reports 80 %).
	WithinRTT float64
	// WithinRate is the fraction of rate estimates within 4 Mbit/s (the
	// paper reports 80 %).
	WithinRate float64
}

// RunMeasurementAccuracy reproduces the §4.5 microbenchmark. For each
// (delay, rate) configuration it drives the §7.1 web workload through a
// Bundler pair and compares every epoch estimate with the bottleneck's
// ground truth at that moment.
func RunMeasurementAccuracy(seed int64, perConfig sim.Time) AccuracyResult {
	var res AccuracyResult
	for _, rtt := range []sim.Time{20 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond} {
		for _, rate := range []float64{24e6, 48e6, 96e6} {
			collectAccuracy(seed, rate, rtt, perConfig, &res)
		}
	}
	res.WithinRTT = res.RTTErrMs.FractionWithin(1.2)
	res.WithinRate = res.RateErrMbps.FractionWithin(4)
	return res
}

func collectAccuracy(seed int64, rate float64, rtt, dur sim.Time, res *AccuracyResult) {
	n := NewNet(NetConfig{Seed: seed, LinkRate: rate, RTT: rtt})
	site := n.AddSite(DefaultBundleConfig())
	// 87.5 % offered load, as in the evaluation's standard setup.
	site.RunOpenLoop(Traffic{OfferedBps: 0.875 * rate, Requests: 1 << 30})

	// Per-packet RTT ground truth: as each packet leaves the bottleneck
	// queue, record the queueing delay it actually experienced, keyed by
	// its epoch hash. When the sendbox later reports an RTT estimate for
	// that hash, the true value is base propagation + that packet's
	// queueing delay + its two serialization hops (pacer and bottleneck).
	truthQ := make(map[uint64]float64)
	// One serialization hop remains in the estimate (the bottleneck's);
	// the sendbox timestamps epoch packets after its own.
	serialMs := float64(pkt.MTU*8) / rate * 1e3
	n.Bottleneck.OnDequeue(func(p *pkt.Packet, qd sim.Time) {
		if p.Proto == pkt.ProtoCtl {
			return
		}
		truthQ[pkt.EpochHash(p)] = qd.Millis()
		if len(truthQ) > 1<<16 {
			truthQ = make(map[uint64]float64) // cheap bound; stale entries are re-recorded
		}
	})
	site.SB.OnEpochSample = func(hash uint64, est sim.Time, at sim.Time) {
		if at < sim.Second {
			return
		}
		if q, ok := truthQ[hash]; ok {
			actual := rtt.Millis() + q + serialMs
			res.RTTErrMs.Add(est.Millis() - actual)
		}
	}

	// Receive-rate ground truth: bottleneck delivered bytes over each
	// sampling interval, smoothed over one RTT when paired.
	var truthRate stats.TimeSeries
	var rc stats.RateCounter
	sim.Tick(n.Eng, 10*sim.Millisecond, func() {
		now := n.Eng.Now()
		truthRate.Add(now, rc.Rate(now, n.Bottleneck.BytesSent())/1e6)
	})
	n.Eng.RunUntil(dur)
	site.SB.Stop()

	for i, at := range site.SB.RateEstimates.T {
		if at < sim.Second {
			continue
		}
		actual := truthRate.MeanOver(at-rtt, at+10*sim.Millisecond)
		if actual == actual { // not NaN
			res.RateErrMbps.Add(site.SB.RateEstimates.V[i] - actual)
		}
	}
}

// --- experiment adapter ---

// fig56Exp is the §4.5 measurement-accuracy microbenchmark; the paper
// plots it as Figures 5 and 6, so "fig5" and "fig6" alias this.
type fig56Exp struct{}

func (fig56Exp) Name() string { return "fig56" }
func (fig56Exp) Desc() string {
	return "Figures 5+6: RTT and receive-rate estimate accuracy vs bottleneck ground truth"
}
func (fig56Exp) Params() []exp.Param {
	return []exp.Param{{Name: "dur", Default: "20s", Help: "virtual time per (delay, rate) config"}}
}

func (fig56Exp) Run(seed int64, p exp.Params) (exp.Result, error) {
	b := exp.Bind(p)
	dur := sim.FromSeconds(b.Duration("dur", 20*time.Second).Seconds())
	if err := b.Err(); err != nil {
		return exp.Result{}, err
	}
	res := RunMeasurementAccuracy(seed, dur)
	var w strings.Builder
	ReportHeader(&w, "Figures 5+6: measurement accuracy (9 configs: {20,50,100 ms} × {24,48,96 Mbit/s})")
	fmt.Fprintf(&w, "RTT estimate error:  p10=%+.2fms p50=%+.2fms p90=%+.2fms  within ±1.2ms: %.0f%% (paper: 80%%)\n",
		res.RTTErrMs.Quantile(0.1), res.RTTErrMs.Quantile(0.5), res.RTTErrMs.Quantile(0.9), res.WithinRTT*100)
	fmt.Fprintf(&w, "rate estimate error: p10=%+.2fMbps p50=%+.2fMbps p90=%+.2fMbps  within ±4Mbps: %.0f%% (paper: 80%%)\n",
		res.RateErrMbps.Quantile(0.1), res.RateErrMbps.Quantile(0.5), res.RateErrMbps.Quantile(0.9), res.WithinRate*100)
	out := exp.Result{Experiment: "fig56", Seed: seed, Params: p, Report: w.String()}
	out.AddMetric("rtt-err-p50", res.RTTErrMs.Quantile(0.5), "ms")
	out.AddMetric("rtt-within-1.2ms-frac", res.WithinRTT, "")
	out.AddMetric("rate-err-p50", res.RateErrMbps.Quantile(0.5), "Mbps")
	out.AddMetric("rate-within-4Mbps-frac", res.WithinRate, "")
	return out, nil
}
