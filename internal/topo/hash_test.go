package topo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCanonicalHashGolden pins the canonical serialization scheme with
// an inline config: the run store keys cells by this digest across
// processes, so an accidental change to Emit's encoding (or the Config
// struct shape) must fail loudly here rather than silently invalidating
// every stored sweep.
func TestCanonicalHashGolden(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"name": "golden",
		"desc": "hash-scheme pin",
		"params": [{"name": "rate", "default": "96e6"}],
		"base": {
			"rtt": "50ms",
			"links": [{"name": "bn", "rate": "$rate", "qdisc": "sfq"}],
			"hosts": [{"name": "site"}],
			"workloads": [{"host": "site", "kind": "web", "load": "84e6", "requests": "100"}]
		},
		"runs": [{"label": "status quo"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cfg.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	const want = "28256fd1627ae253433efecc28b613be853d9216cdb92fa5e7d766e7861b0c65"
	if got != want {
		t.Fatalf("canonical hash scheme changed: got %s want %s\n"+
			"(a deliberate change invalidates every run store — update this golden knowingly)", got, want)
	}
}

// reorderJSON rewrites a config file's JSON with every object's keys in
// a different (sorted) order, preserving semantics: decoding into
// map[string]any and re-marshaling sorts keys alphabetically, whereas
// the files are written in struct order.
func reorderJSON(t *testing.T, data []byte) []byte {
	t.Helper()
	var v map[string]any
	if err := json.Unmarshal(stripComments(data), &v); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunKeyStabilityExamples is the run-key stability table test over
// every shipped config: the canonical hash must be invariant under
// reparsing, comment stripping, whitespace, and JSON key order — the
// cosmetic edits that must keep a run store warm — while each semantic
// mutation must change it, because a stale cache hit after a real
// config change would silently report the wrong experiment.
func TestRunKeyStabilityExamples(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "configs", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example configs found: %v", err)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			base, err := cfg.CanonicalHash()
			if err != nil {
				t.Fatal(err)
			}

			// Stability: reparse, canonical re-emit, and key reordering
			// all preserve the hash.
			again, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if h, _ := again.CanonicalHash(); h != base {
				t.Fatal("reloading the same file changed the hash")
			}
			emitted, err := cfg.Emit()
			if err != nil {
				t.Fatal(err)
			}
			roundTrip, err := Parse(emitted)
			if err != nil {
				t.Fatal(err)
			}
			if h, _ := roundTrip.CanonicalHash(); h != base {
				t.Fatal("canonical re-emit round trip changed the hash")
			}
			reordered, err := Parse(reorderJSON(t, data))
			if err != nil {
				t.Fatal(err)
			}
			if h, _ := reordered.CanonicalHash(); h != base {
				t.Fatal("JSON key reordering changed the hash (field order must be canonicalized)")
			}

			// Sensitivity: each semantic mutation must move the hash.
			// Section-specific mutations apply only where the config
			// declares the section (a mesh config has no links).
			mutations := map[string]func(c *Config){
				"name":         func(c *Config) { c.Name += "-mut" },
				"desc":         func(c *Config) { c.Desc += " (edited)" },
				"rtt":          func(c *Config) { c.Base.RTT = "123ms" },
				"new param":    func(c *Config) { c.Params = append(c.Params, ParamDecl{Name: "zz_mut", Default: "1"}) },
				"report style": func(c *Config) { c.Report.Style = "summary2" },
			}
			if len(cfg.Base.Links) > 0 {
				mutations["link rate"] = func(c *Config) { c.Base.Links[0].Rate = "1e6" }
				mutations["link qdisc"] = func(c *Config) { c.Base.Links[0].Qdisc = "fifo2" }
			}
			if len(cfg.Base.Workloads) > 0 {
				mutations["workload kind"] = func(c *Config) { c.Base.Workloads[0].Kind += "x" }
			}
			if cfg.Base.Mesh != nil {
				mutations["mesh sites"] = func(c *Config) { c.Base.Mesh.Sites += "0" }
				mutations["mesh bundled"] = func(c *Config) { c.Base.Mesh.Bundled = "maybe" }
			}
			if len(cfg.Runs) > 0 {
				mutations["run label"] = func(c *Config) { c.Runs[0].Label += "!" }
			}
			if len(cfg.Params) > 0 {
				mutations["param default"] = func(c *Config) { c.Params[0].Default += "0" }
			}
			for what, mutate := range mutations {
				fresh, err := Parse(data)
				if err != nil {
					t.Fatal(err)
				}
				mutate(fresh)
				h, err := fresh.CanonicalHash()
				if err != nil {
					t.Fatal(err)
				}
				if h == base {
					t.Errorf("semantic change (%s) did not change the canonical hash", what)
				}
			}

			// The registered experiment advertises the hash to the run
			// store through exp.SourceHasher.
			e := Experiment(cfg)
			type sourceHasher interface{ SourceHash() string }
			sh, ok := e.(sourceHasher)
			if !ok {
				t.Fatal("config experiment does not implement SourceHash")
			}
			if sh.SourceHash() != "topo:"+base {
				t.Fatalf("SourceHash %q does not carry the canonical hash", sh.SourceHash())
			}
		})
	}
}
