package topo

import (
	"fmt"
	"strings"
	"sync"

	"bundler/internal/exp"
	"bundler/internal/report"
	"bundler/internal/scenario"
	"bundler/internal/sim"
)

// configExp adapts a Config to the exp.Experiment interface, making a
// loaded file indistinguishable from a hand-coded experiment: runnable
// by name, listable, and sweepable over its declared params.
type configExp struct {
	cfg      *Config
	hashOnce sync.Once
	hash     string
}

// Experiment wraps a parsed config as an exp.Experiment.
func Experiment(cfg *Config) exp.Experiment { return &configExp{cfg: cfg} }

func (e *configExp) Name() string { return e.cfg.Name }

func (e *configExp) Desc() string {
	if e.cfg.Desc != "" {
		return e.cfg.Desc
	}
	return "declarative scenario (config-defined)"
}

func (e *configExp) Params() []exp.Param {
	out := make([]exp.Param, len(e.cfg.Params))
	for i, d := range e.cfg.Params {
		out[i] = exp.Param{Name: d.Name, Default: d.Default, Help: d.Help}
	}
	return out
}

func (e *configExp) Run(seed int64, p exp.Params) (exp.Result, error) {
	return runConfig(e.cfg, seed, p, 0)
}

// SourceHash implements exp.SourceHasher: config experiments are keyed
// in the run store by the config's canonical content, not the binary,
// so a rebuild keeps their cache warm while a semantic config edit
// invalidates exactly the cells it changes. An unhashable config (never
// the case for one that validated) falls back to the binary fingerprint
// by returning "".
func (e *configExp) SourceHash() string {
	e.hashOnce.Do(func() {
		h, err := e.cfg.CanonicalHash()
		if err != nil {
			return
		}
		e.hash = "topo:" + h
	})
	return e.hash
}

// Metadata implements exp.Metadater: run-store manifests record which
// declarative file shape produced the cell.
func (e *configExp) Metadata() map[string]string {
	return map[string]string{"kind": "topo-config", "runs": fmt.Sprintf("%d", len(e.cfg.runList()))}
}

// Validate dry-compiles every run of cfg with default parameters,
// surfacing bad qdisc names, dangling link endpoints, unknown hosts, and
// the like without executing anything. The CLIs call it at -config load
// time so a broken file fails fast.
func Validate(cfg *Config) error {
	pv, err := cfg.paramValues(nil)
	if err != nil {
		return err
	}
	style, err := reportStyle(cfg)
	if err != nil {
		return err
	}
	header := cfg.Report.Header
	if header == "" {
		header = defaultHeader(cfg)
	}
	if _, err := expand(header, pv); err != nil {
		// Catch a typoed $ref here, not after every simulation has run.
		return fmt.Errorf("topo: config %s: report header: %w", cfg.Name, err)
	}
	for _, r := range cfg.runList() {
		c, err := compile(merged(cfg.Base, r), 0, pv)
		if err != nil {
			return fmt.Errorf("topo: config %s, run %q: %w", cfg.Name, r.Label, err)
		}
		if style == "fct" && len(c.webs) == 0 {
			return fmt.Errorf("topo: config %s, run %q: fct report style needs a web workload in every run", cfg.Name, r.Label)
		}
	}
	return nil
}

// RegisterFile loads, validates, and registers the config at path as an
// experiment, replacing a same-named built-in (the declarative
// re-expression shadows it). It reports whether a replacement happened.
func RegisterFile(path string) (exp.Experiment, bool, error) {
	cfg, err := Load(path)
	if err != nil {
		return nil, false, err
	}
	if err := Validate(cfg); err != nil {
		return nil, false, fmt.Errorf("%w (in %s)", err, path)
	}
	e := Experiment(cfg)
	replaced, err := exp.RegisterOrReplace(e)
	if err != nil {
		return nil, false, fmt.Errorf("topo: register %s: %w", path, err)
	}
	return e, replaced, nil
}

// Smoke runs every labeled run of cfg with default parameters and the
// horizon capped at maxHorizon, without requiring workload completion —
// the cheap "shipped configs can never rot" check CI applies to
// examples/configs/.
func Smoke(cfg *Config, seed int64, maxHorizon sim.Time) (exp.Result, error) {
	return runConfig(cfg, seed, nil, maxHorizon)
}

// outcome is one executed run.
type outcome struct {
	label string
	c     *compiled
	stop  sim.Time
}

func reportStyle(cfg *Config) (string, error) {
	switch cfg.Report.Style {
	case "", "summary":
		return "summary", nil
	case "fct":
		return "fct", nil
	default:
		return "", fmt.Errorf("topo: config %s: unknown report style %q (want summary or fct)", cfg.Name, cfg.Report.Style)
	}
}

// runConfig compiles and executes every run, then renders the report.
func runConfig(cfg *Config, seed int64, p exp.Params, maxHorizon sim.Time) (exp.Result, error) {
	pv, err := cfg.paramValues(p)
	if err != nil {
		return exp.Result{}, err
	}
	style, err := reportStyle(cfg)
	if err != nil {
		return exp.Result{}, err
	}
	var outs []outcome
	for _, r := range cfg.runList() {
		c, cerr := compile(merged(cfg.Base, r), seed, pv)
		if cerr != nil {
			return exp.Result{}, fmt.Errorf("topo: config %s, run %q: %w", cfg.Name, r.Label, cerr)
		}
		if style == "fct" && len(c.webs) == 0 {
			return exp.Result{}, fmt.Errorf("topo: config %s, run %q: fct report style needs a web workload in every run", cfg.Name, r.Label)
		}
		outs = append(outs, outcome{label: r.Label, c: c, stop: c.run(maxHorizon)})
	}

	header := cfg.Report.Header
	if header == "" {
		header = defaultHeader(cfg)
	}
	header, err = expand(header, pv)
	if err != nil {
		return exp.Result{}, fmt.Errorf("topo: config %s: report header: %w", cfg.Name, err)
	}

	if style == "fct" {
		return fctResult(cfg, seed, p, header, outs), nil
	}
	return summaryResult(cfg, seed, p, header, outs), nil
}

func defaultHeader(cfg *Config) string {
	if cfg.Desc != "" {
		return cfg.Desc
	}
	return cfg.Name
}

// fctResult renders the shared FCT-comparison table (the Figures 9/14/15
// format): one row per run from its first web workload — or, for a mesh
// run, from the aggregate over every ordered site pair (one pair alone
// would silently misrepresent the whole mesh as its first pair, unlike
// the registered mesh experiment). Byte-compatible with the hand-coded
// figures — the same header string, rows, and metric names produce the
// same Result JSON.
func fctResult(cfg *Config, seed int64, p exp.Params, header string, outs []outcome) exp.Result {
	var rows []scenario.Fig9Result
	for _, o := range outs {
		rec := o.c.webs[0].Rec
		if o.c.mesh != nil {
			rec = o.c.mesh.Aggregate()
		}
		rows = append(rows, scenario.SummarizeFCT(o.label, rec))
	}
	var w strings.Builder
	scenario.ReportHeader(&w, header)
	scenario.WriteFCTRows(&w, rows)
	res := exp.Result{Experiment: cfg.Name, Seed: seed, Params: p, Report: w.String()}
	scenario.AddFCTRowMetrics(&res, rows)
	// Runs with a classes section carry scheduler meters; append their
	// fairness blocks after the FCT table. Class-less configs (every
	// pre-existing figure) emit nothing here, keeping their reports
	// byte-identical.
	var fw strings.Builder
	for _, o := range outs {
		if len(o.c.meters) == 0 {
			continue
		}
		fmt.Fprintf(&fw, "%s fairness:\n", o.label)
		addFairness(&fw, &res, strings.ReplaceAll(o.label, " ", "_")+"/", o)
	}
	res.Report += fw.String()
	return res
}

// addFairness renders the scheduler-fairness section for one run — one
// block per metered bundle — and registers the matching metrics so
// sweeps and diffs can track fairness per cell. Only runs whose
// scenario declares classes have meters.
func addFairness(w *strings.Builder, res *exp.Result, prefix string, o outcome) {
	for _, m := range o.c.meters {
		stats := m.Meter.Stats()
		shares := make([]report.ClassShare, len(stats))
		for i, st := range stats {
			shares[i] = report.ClassShare{Name: st.Class.Name, Weight: st.Class.Weight, Bytes: st.Bytes}
		}
		f := report.ComputeFairness(shares, m.Meter.Served(), m.Meter.Attempts(), m.Rate, o.stop.Seconds())
		fmt.Fprintf(w, "  fair %-12s sched=%s\n", m.Host, m.Sched)
		f.WriteText(w, "    ")
		base := prefix + "fair-" + m.Host
		res.AddMetric(base+"/jain", f.Jain, "")
		res.AddMetric(base+"/work-conservation", f.WorkConservation, "")
		for _, cs := range f.Classes {
			res.AddMetric(base+"/"+cs.Name+"/share", cs.Share, "")
			res.AddMetric(base+"/"+cs.Name+"/Mbps", cs.Mbps, "Mbps")
			res.AddMetric(base+"/"+cs.Name+"/utilization", cs.Utilization, "")
		}
	}
}

// summaryResult renders per-run, per-workload statistics.
func summaryResult(cfg *Config, seed int64, p exp.Params, header string, outs []outcome) exp.Result {
	var w strings.Builder
	scenario.ReportHeader(&w, header)
	res := exp.Result{Experiment: cfg.Name, Seed: seed, Params: p}
	for _, o := range outs {
		fmt.Fprintf(&w, "%s (ran %.0fs virtual):\n", o.label, o.stop.Seconds())
		prefix := strings.ReplaceAll(o.label, " ", "_") + "/"
		for _, web := range o.c.webs {
			s := web.Rec.Slowdowns.Summarize()
			// Class-assigned workloads report as host.class: a host can
			// carry one web workload per class, and the names must not
			// collide in the metric namespace.
			name := web.Host
			if web.Class != "" {
				name = web.Host + "." + web.Class
			}
			fmt.Fprintf(&w, "  web  %-12s completed %d/%d, slowdown p50=%.2f p90=%.2f p99=%.2f\n",
				name, web.Rec.Completed, web.Requests, s.P50, s.P90, s.P99)
			res.AddMetric(prefix+"web-"+name+"/completed", float64(web.Rec.Completed), "requests")
			res.AddMetric(prefix+"web-"+name+"/median-slowdown", s.P50, "")
			res.AddMetric(prefix+"web-"+name+"/p99-slowdown", s.P99, "")
		}
		for _, bk := range o.c.bulks {
			var acked int64
			for _, snd := range bk.Senders {
				acked += snd.Acked()
			}
			mbps := float64(acked) * 8 / o.stop.Seconds() / 1e6
			fmt.Fprintf(&w, "  bulk %-12s %d flows, %.1f Mbit/s aggregate\n", bk.Host, len(bk.Senders), mbps)
			res.AddMetric(prefix+"bulk-"+bk.Host+"/Mbps", mbps, "Mbps")
		}
		for _, pg := range o.c.pings {
			r := pg.Client.RTTs
			fmt.Fprintf(&w, "  ping %-12s rtt p50=%.1fms p90=%.1fms (n=%d)\n",
				pg.Host, r.Quantile(0.5), r.Quantile(0.9), r.N())
			res.AddMetric(prefix+"ping-"+pg.Host+"/p50-ms", r.Quantile(0.5), "ms")
			res.AddMetric(prefix+"ping-"+pg.Host+"/p90-ms", r.Quantile(0.9), "ms")
		}
		for _, cb := range o.c.cbrs {
			mbps := float64(cb.Sink.Count) * float64(cb.PktSize) * 8 / o.stop.Seconds() / 1e6
			fmt.Fprintf(&w, "  cbr  %-12s offered %.1f, delivered %.1f Mbit/s\n", cb.Host, cb.RateBps/1e6, mbps)
			res.AddMetric(prefix+"cbr-"+cb.Host+"/Mbps", mbps, "Mbps")
		}
		for _, fl := range o.c.fluids {
			mbps := fl.Agg.DeliveredBytes() * 8 / o.stop.Seconds() / 1e6
			fmt.Fprintf(&w, "  fluid %-11s %d users, delivered %.1f Mbit/s, lost %.1f MB\n",
				fl.Host, fl.Users, mbps, fl.Agg.LostBytes()/1e6)
			res.AddMetric(prefix+"fluid-"+fl.Host+"/Mbps", mbps, "Mbps")
			res.AddMetric(prefix+"fluid-"+fl.Host+"/lost-bytes", fl.Agg.LostBytes(), "bytes")
		}
		addFairness(&w, &res, prefix, o)
	}
	res.Report = w.String()
	return res
}
