package topo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CanonicalHash digests the config's semantic content: the canonical
// Emit bytes, where struct field order is fixed, comments are stripped,
// and whitespace is normalized. Two files that parse to the same Config
// — reordered keys, different comments, different formatting — hash
// identically, while any semantic edit (a rate, a param default, a run
// label) produces a new hash. The run store keys a config experiment's
// cells by this digest, so editing a config invalidates exactly the
// cells it changes and nothing else.
//
// The scheme is pinned by a golden test (TestCanonicalHashGolden):
// changing Emit's encoding or the Config struct shape is a deliberate,
// cache-invalidating event, not an accident.
func (c *Config) CanonicalHash() (string, error) {
	b, err := c.Emit()
	if err != nil {
		return "", fmt.Errorf("topo: hash config %s: %w", c.Name, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
