package topo

import (
	"path/filepath"
	"testing"

	"bundler/internal/sim"
)

// TestExampleConfigsSmoke parses, validates, and actually runs every
// shipped config at a short virtual horizon — the CI job that keeps
// examples/configs/ from rotting. Completion is not required (the
// horizon cap cuts the runs short); what must hold is that every config
// compiles against the current scenario machinery and produces a report.
func TestExampleConfigsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("config smoke runs every shipped scenario; skipped under -short")
	}
	for _, path := range exampleConfigs(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			cfg, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Smoke(cfg, 1, 5*sim.Second)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report == "" {
				t.Fatal("smoke run produced an empty report")
			}
			if res.Experiment != cfg.Name {
				t.Fatalf("result experiment %q, config name %q", res.Experiment, cfg.Name)
			}
			if len(res.Metrics) == 0 {
				t.Fatal("smoke run produced no metrics")
			}
		})
	}
}
