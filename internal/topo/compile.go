package topo

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"bundler/internal/bundle"
	"bundler/internal/fluid"
	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/scenario"
	"bundler/internal/sim"
	"bundler/internal/tcp"
	"bundler/internal/udpapp"
	"bundler/internal/workload"
)

// binder parses expanded config strings into typed values, remembering
// the first failure (the exp.Binder pattern, but over "$param"-expanded
// config fields rather than Params maps).
type binder struct {
	pv  map[string]string
	err error
}

func (b *binder) fail(field, val, kind string, err error) {
	if b.err == nil {
		if err != nil {
			b.err = fmt.Errorf("%s %q: bad %s: %v", field, val, kind, err)
		} else {
			b.err = fmt.Errorf("%s %q: bad %s", field, val, kind)
		}
	}
}

// str expands "$param" references.
func (b *binder) str(field, s string) string {
	out, err := expand(s, b.pv)
	if err != nil {
		if b.err == nil {
			b.err = fmt.Errorf("%s %q: %v", field, s, err)
		}
		return ""
	}
	return out
}

// rate parses a bits/s value in float syntax ("96e6"); zero or absent
// means def.
func (b *binder) rate(field, s string, def float64) float64 {
	v := b.str(field, s)
	if v == "" {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 {
		b.fail(field, v, "rate (bits/s)", err)
		return def
	}
	if f == 0 {
		return def
	}
	return f
}

// dur parses a Go duration string ("50ms") into virtual time.
func (b *binder) dur(field, s string, def sim.Time) sim.Time {
	v := b.str(field, s)
	if v == "" {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		b.fail(field, v, "duration", err)
		return def
	}
	return sim.Time(d.Nanoseconds())
}

// count parses a non-negative integer; absent means def.
func (b *binder) count(field, s string, def int) int {
	v := b.str(field, s)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		b.fail(field, v, "count", err)
		return def
	}
	return n
}

// boolean parses a true/false value; absent means def.
func (b *binder) boolean(field, s string, def bool) bool {
	v := b.str(field, s)
	if v == "" {
		return def
	}
	t, err := strconv.ParseBool(v)
	if err != nil {
		b.fail(field, v, "bool", err)
		return def
	}
	return t
}

// bytes parses a byte count in float syntax ("1e12", "1200000").
func (b *binder) bytes(field, s string, def int64) int64 {
	v := b.str(field, s)
	if v == "" {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 {
		b.fail(field, v, "bytes", err)
		return def
	}
	return int64(f)
}

// weight parses a scheduler class weight; absent means def. Range
// checks (positive, finite) are the caller's, so the error can name the
// class.
func (b *binder) weight(field, s string, def float64) float64 {
	v := b.str(field, s)
	if v == "" {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		b.fail(field, v, "weight", err)
		return def
	}
	return f
}

// webOut is one web workload's live state during a run.
type webOut struct {
	Host     string
	Class    string // traffic class, "" when the scenario declares none
	Requests int
	Rec      *workload.Recorder
}

// meterOut is one bundle's scheduler meter: per-class byte counts and
// the attempt/serve tally behind the work-conservation ratio, plus the
// unloaded path rate that normalizes utilization in the fairness
// report.
type meterOut struct {
	Host  string
	Sched string  // scheduler mode label ("fifo", "wfq", ...)
	Rate  float64 // unloaded bottleneck rate (bits/s) of the host's path
	Meter *qdisc.Meter
}

// bulkOut is one bulk workload's live state.
type bulkOut struct {
	Host    string
	Senders []*tcp.Sender
}

// pingOut is one probe workload's live state.
type pingOut struct {
	Host   string
	Client *udpapp.PingClient
}

// cbrOut is one constant-bit-rate workload's live state.
type cbrOut struct {
	Host    string
	RateBps float64
	PktSize int
	Stream  *udpapp.CBRStream
	Sink    *netem.Sink
}

// fluidOut is one fluid background aggregate's live state.
type fluidOut struct {
	Host  string
	Users int
	Agg   *fluid.Aggregate
}

// compiled is one instantiated scenario: the fabric, links, and
// workload probes of a single run, ready to execute.
type compiled struct {
	fab     *scenario.Fabric
	links   map[string]*netem.Link
	sites   []*scenario.Site // host declaration order
	mesh    *scenario.Mesh   // set for mesh scenarios (sites then empty)
	horizon sim.Time

	webs   []webOut
	bulks  []bulkOut
	pings  []pingOut
	cbrs   []cbrOut
	fluids []fluidOut
	meters []meterOut
}

var innerAlgs = map[string]bool{"": true, "copa": true, "basicdelay": true, "bbr": true}
var endhostCCs = map[string]bool{"": true, "cubic": true, "reno": true, "bbr": true}

// compile instantiates sc on a fresh engine seeded with seed. It returns
// an error — never panics — on invalid input: every name, rate, and
// reference in a config is user input.
func compile(sc Scenario, seed int64, pv map[string]string) (*compiled, error) {
	b := &binder{pv: pv}
	rtt := b.dur("rtt", sc.RTT, 50*sim.Millisecond)
	if b.err != nil {
		return nil, b.err
	}

	if sc.Mesh != nil {
		if len(sc.Links) > 0 || len(sc.Hosts) > 0 || len(sc.Bundles) > 0 || len(sc.Workloads) > 0 || len(sc.Classes) > 0 {
			return nil, fmt.Errorf("a mesh scenario generates its own links/hosts/bundles/workloads; remove the explicit sections")
		}
		return compileMesh(sc, seed, b, rtt)
	}

	classes, classPort, err := compileClasses(b, sc.Classes)
	if err != nil {
		return nil, err
	}

	if len(sc.Links) == 0 {
		return nil, fmt.Errorf("scenario declares no links")
	}
	if len(sc.Hosts) == 0 {
		return nil, fmt.Errorf("scenario declares no hosts")
	}

	// Validate the link graph before building anything: unique names, no
	// dangling endpoints, converging on "dst" without cycles.
	decl := make(map[string]Link, len(sc.Links))
	for _, l := range sc.Links {
		if l.Name == "" || l.Name == "dst" || l.Name == "reverse" {
			return nil, fmt.Errorf("link name %q is empty or reserved", l.Name)
		}
		if _, dup := decl[l.Name]; dup {
			return nil, fmt.Errorf("duplicate link %q", l.Name)
		}
		decl[l.Name] = l
	}
	for _, l := range sc.Links {
		if to := linkTo(l); to != "dst" {
			if _, ok := decl[to]; !ok {
				return nil, fmt.Errorf("link %q forwards to unknown link %q", l.Name, to)
			}
		}
	}

	eng := sim.NewEngine(seed)
	fab := scenario.NewFabric(eng)

	// Build links downstream-first so each has its destination receiver.
	// A pass over the declarations that makes no progress means the
	// remaining links form a cycle.
	links := make(map[string]*netem.Link, len(sc.Links))
	entries := make(map[string]netem.Receiver, len(sc.Links))
	for built := 0; built < len(sc.Links); {
		progress := false
		for _, l := range sc.Links {
			if _, done := links[l.Name]; done {
				continue
			}
			var dst netem.Receiver
			if to := linkTo(l); to == "dst" {
				dst = fab.Demux
			} else if e, ok := entries[to]; ok {
				dst = e
			} else {
				continue
			}
			link, entry, err := buildLink(b, eng, l, rtt, dst, classes)
			if err != nil {
				return nil, err
			}
			links[l.Name] = link
			entries[l.Name] = entry
			built++
			progress = true
		}
		if !progress {
			var cyclic []string
			for _, l := range sc.Links {
				if _, done := links[l.Name]; !done {
					cyclic = append(cyclic, l.Name)
				}
			}
			return nil, fmt.Errorf("link cycle through %v (links must converge on \"dst\")", cyclic)
		}
	}

	fab.Reverse = netem.NewLink(eng, "reverse", 10e9, rtt/2, qdisc.NewFIFO(1<<26), fab.MuxA)
	fab.OracleRTT = rtt
	fab.OracleRate = minRateOverall(b, decl)

	// Time-varying links: schedule their rate traces.
	for _, l := range sc.Links {
		if err := scheduleTrace(b, eng, l, links[l.Name]); err != nil {
			return nil, err
		}
	}

	c := &compiled{fab: fab, links: links}

	// Hosts, with their Bundler pairs, in declaration order.
	bundleFor := make(map[string]Bundle, len(sc.Bundles))
	hostNames := make(map[string]bool, len(sc.Hosts))
	for _, h := range sc.Hosts {
		if h.Name == "" {
			return nil, fmt.Errorf("host with empty name")
		}
		if hostNames[h.Name] {
			return nil, fmt.Errorf("duplicate host %q", h.Name)
		}
		hostNames[h.Name] = true
	}
	for _, bd := range sc.Bundles {
		if !hostNames[bd.Host] {
			return nil, fmt.Errorf("bundle on unknown host %q", bd.Host)
		}
		if _, dup := bundleFor[bd.Host]; dup {
			return nil, fmt.Errorf("host %q has two bundles", bd.Host)
		}
		bundleFor[bd.Host] = bd
	}

	siteByName := make(map[string]*scenario.Site, len(sc.Hosts))
	hostLink := make(map[string]*netem.Link, len(sc.Hosts))
	oracleRate := make(map[string]float64, len(sc.Hosts))
	oracleRTT := make(map[string]sim.Time, len(sc.Hosts))
	for _, h := range sc.Hosts {
		attach := h.Attach
		if attach == "" {
			attach = sc.Links[0].Name
		}
		if _, ok := decl[attach]; !ok {
			return nil, fmt.Errorf("host %q attaches to unknown link %q", h.Name, attach)
		}
		oRate, oRTT := pathOracle(b, decl, attach, rtt)
		var bcfg *bundle.Config
		if bd, ok := bundleFor[h.Name]; ok {
			alg := b.str("bundle alg", bd.Alg)
			if !innerAlgs[alg] {
				return nil, fmt.Errorf("bundle on %q: unknown inner algorithm %q (want copa, basicdelay, or bbr)", h.Name, alg)
			}
			queue := b.count("bundle queue", bd.Queue, 1000)
			schedName := b.str("bundle sched", bd.Sched)
			sched, err := buildSched(eng, schedName, queue, classes)
			if b.err != nil {
				return nil, b.err
			}
			if err != nil {
				return nil, fmt.Errorf("bundle on %q: %w", h.Name, err)
			}
			// With a classes section, every bundle's scheduler is wrapped
			// in a meter so the fairness report covers fifo and sfq cells
			// exactly the way it covers wfq and sp cells.
			if len(classes) > 0 {
				label := schedName
				if label == "" {
					label = "sfq"
				}
				m := qdisc.NewMeter(sched, classes)
				sched = m
				c.meters = append(c.meters, meterOut{Host: h.Name, Sched: label, Rate: oRate, Meter: m})
			}
			bcfg = &bundle.Config{Algorithm: alg, TunnelMode: bd.Tunnel, Scheduler: sched}
		}
		site := fab.AddSiteAt(entries[attach], bcfg)
		c.sites = append(c.sites, site)
		siteByName[h.Name] = site
		hostLink[h.Name] = links[attach]
		oracleRate[h.Name], oracleRTT[h.Name] = oRate, oRTT
	}
	if b.err != nil {
		return nil, b.err
	}

	// Workloads in declaration order.
	maxRequests := 0
	for i, w := range sc.Workloads {
		site, ok := siteByName[w.Host]
		if !ok {
			return nil, fmt.Errorf("workload %d (%s) on unknown host %q", i, w.Kind, w.Host)
		}
		if w.Class != "" && w.Kind != "web" {
			return nil, fmt.Errorf("workload %d on %q: class is only for web workloads (got kind %q)", i, w.Host, w.Kind)
		}
		switch w.Kind {
		case "web":
			requests := b.count("web requests", w.Requests, 0)
			load := b.rate("web load", w.Load, 0)
			if b.err == nil && (requests <= 0 || load <= 0) {
				return nil, fmt.Errorf("web workload on %q needs positive requests and load", w.Host)
			}
			dist, err := webDist(b, w)
			if err != nil {
				return nil, fmt.Errorf("web workload on %q: %w", w.Host, err)
			}
			cc := b.str("web cc", w.CC)
			if !endhostCCs[cc] {
				return nil, fmt.Errorf("web workload on %q: unknown endhost cc %q (want cubic, reno, or bbr)", w.Host, cc)
			}
			dstPort := b.count("web dstport", w.DstPort, 0)
			if dstPort > 65535 {
				return nil, fmt.Errorf("web workload on %q: dstport %d outside [0, 65535]", w.Host, dstPort)
			}
			if w.Class != "" {
				if w.DstPort != "" {
					return nil, fmt.Errorf("web workload on %q: give class or dstport, not both", w.Host)
				}
				port, ok := classPort[w.Class]
				if !ok {
					return nil, fmt.Errorf("web workload on %q: unknown class %q", w.Host, w.Class)
				}
				dstPort = int(port)
			}
			tr := scenario.Traffic{
				Dist:          dist,
				OfferedBps:    load,
				Requests:      requests,
				CC:            cc,
				FixedCwndSegs: b.count("web fixedcwnd", w.FixedCwnd, 0),
				DstPort:       uint16(dstPort),
				Warmup:        b.dur("web warmup", w.Warmup, 0),
				OracleRate:    oracleRate[w.Host],
				OracleRTT:     oracleRTT[w.Host],
			}
			if b.err != nil {
				return nil, b.err
			}
			rec := site.RunOpenLoop(tr)
			rec.Class = w.Class
			c.webs = append(c.webs, webOut{Host: w.Host, Class: w.Class, Requests: requests, Rec: rec})
			if requests > maxRequests {
				maxRequests = requests
			}
		case "bulk":
			flows := b.count("bulk flows", w.Flows, 1)
			size := b.bytes("bulk size", w.Size, 1e12)
			cc := b.str("bulk cc", w.CC)
			if !endhostCCs[cc] {
				return nil, fmt.Errorf("bulk workload on %q: unknown endhost cc %q (want cubic, reno, or bbr)", w.Host, cc)
			}
			if cc == "" {
				cc = "cubic"
			}
			if b.err != nil {
				return nil, b.err
			}
			out := bulkOut{Host: w.Host}
			for f := 0; f < flows; f++ {
				out.Senders = append(out.Senders, site.AddFlow(size, tcp.NewEndhostCC(cc), nil))
			}
			c.bulks = append(c.bulks, out)
		case "ping":
			c.pings = append(c.pings, pingOut{Host: w.Host, Client: site.AddPing()})
		case "cbr":
			load := b.rate("cbr load", w.Load, 0)
			pktSize := b.count("cbr pktsize", w.PktSize, pkt.MTU)
			if b.err == nil && load <= 0 {
				return nil, fmt.Errorf("cbr workload on %q needs a positive load", w.Host)
			}
			if b.err == nil && (pktSize <= pkt.HeaderBytes || pktSize > pkt.MTU) {
				return nil, fmt.Errorf("cbr workload on %q: pktsize %d outside (%d, %d]", w.Host, pktSize, pkt.HeaderBytes, pkt.MTU)
			}
			if b.err != nil {
				return nil, b.err
			}
			stream, sink := site.AddCBR(load, pktSize)
			c.cbrs = append(c.cbrs, cbrOut{Host: w.Host, RateBps: load, PktSize: pktSize, Stream: stream, Sink: sink})
		case "fluid":
			users := b.count("fluid users", w.Users, 0)
			if b.err == nil && users <= 0 {
				return nil, fmt.Errorf("fluid workload on %q needs a positive users count", w.Host)
			}
			if b.err != nil {
				return nil, b.err
			}
			// The aggregate loads the host's attach link directly — no
			// endpoints, no packets, O(1) state however large users is.
			agg := fluid.Attach(eng, hostLink[w.Host], 0)
			agg.AddClass(fluid.Class{Name: w.Host, Users: users, RTT: rtt})
			c.fluids = append(c.fluids, fluidOut{Host: w.Host, Users: users, Agg: agg})
		default:
			return nil, fmt.Errorf("workload %d on %q: unknown kind %q (want web, bulk, ping, cbr, or fluid)", i, w.Host, w.Kind)
		}
	}
	if b.err != nil {
		return nil, b.err
	}

	// Horizon: explicit, or the FCT experiments' load-scaled rule.
	if sc.Horizon != "" {
		c.horizon = b.dur("horizon", sc.Horizon, 0)
		if b.err != nil {
			return nil, b.err
		}
		if c.horizon <= 0 {
			return nil, fmt.Errorf("horizon must be positive")
		}
	} else {
		if maxRequests == 0 {
			return nil, fmt.Errorf("an explicit horizon is required when no web workload gates completion")
		}
		c.horizon = 10 * sim.Time(maxRequests) * sim.Millisecond
		if c.horizon < 120*sim.Second {
			c.horizon = 120 * sim.Second
		}
	}
	return c, nil
}

// compileMesh instantiates a mesh scenario through scenario.NewMesh —
// the same fabric the registered mesh experiment drives — and adapts its
// per-pair recorders into the compiled form the report renderers expect
// (one web workload named "s<i>-s<j>" per ordered site pair).
func compileMesh(sc Scenario, seed int64, b *binder, rtt sim.Time) (*compiled, error) {
	d := sc.Mesh
	sites := b.count("mesh sites", d.Sites, 0)
	mode := b.str("mesh mode", d.Mode)
	access := b.rate("mesh accessrate", d.AccessRate, 96e6)
	core := b.rate("mesh corerate", d.CoreRate, 0)
	bundled := b.boolean("mesh bundled", d.Bundled, false)
	queue := b.count("mesh queue", d.Queue, 1000)
	perturb := b.dur("mesh perturb", d.Perturb, 0)
	jitter := b.dur("mesh jitter", d.Jitter, 0)
	ordered := b.boolean("mesh jitterordered", d.JitterOrdered, true)
	requests := b.count("mesh requests", d.Requests, 300)
	load := b.rate("mesh load", d.Load, 0)
	shards := b.count("mesh shards", d.Shards, 0)
	users := b.count("mesh users", d.Users, 0)
	sketch := b.str("mesh sketch", d.Sketch)
	if b.err != nil {
		return nil, b.err
	}
	if d.Sites == "" {
		return nil, fmt.Errorf("mesh needs a sites count")
	}
	opt := scenario.MeshOptions{
		Seed:                seed,
		Sites:               sites,
		Mode:                mode,
		AccessRate:          access,
		CoreRate:            core,
		RTT:                 rtt,
		Bundled:             bundled,
		SendboxQueuePackets: queue,
		PerturbPeriod:       perturb,
		JitterMax:           jitter,
		JitterOrdered:       ordered,
		Requests:            requests,
		OfferedBps:          load,
		Shards:              shards,
		BgUsersPerSite:      users,
	}
	switch sketch {
	case "", "auto":
		// MeshOptions turns sketches on with the background users.
	case "true":
		opt.Sketch = true
	case "false":
		if users > 0 {
			return nil, fmt.Errorf("mesh sketch=false is incompatible with users=%d (emulated-user runs need bounded stats)", users)
		}
	default:
		return nil, fmt.Errorf("mesh sketch %q: want auto, true, or false", sketch)
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	m := scenario.NewMesh(opt)
	c := &compiled{mesh: m, horizon: m.Opt.Horizon}
	for _, pr := range m.Pairs {
		c.webs = append(c.webs, webOut{
			Host: fmt.Sprintf("s%d-s%d", pr.Src, pr.Dst), Requests: requests, Rec: pr.Rec})
	}
	for i, a := range m.Fluids {
		c.fluids = append(c.fluids, fluidOut{Host: fmt.Sprintf("s%d", i), Users: a.Users(), Agg: a})
	}
	if sc.Horizon != "" {
		c.horizon = b.dur("horizon", sc.Horizon, 0)
		if b.err != nil {
			return nil, b.err
		}
		if c.horizon <= 0 {
			return nil, fmt.Errorf("horizon must be positive")
		}
	}
	return c, nil
}

// compileClasses validates a scenario's classes section into the qdisc
// form plus a name→port lookup for class-assigned workloads. Weights
// default to 1 (equal shares) when omitted.
func compileClasses(b *binder, decls []ClassDecl) ([]qdisc.Class, map[string]uint16, error) {
	if len(decls) == 0 {
		return nil, nil, nil
	}
	classes := make([]qdisc.Class, 0, len(decls))
	byName := make(map[string]uint16, len(decls))
	ports := make(map[int]string, len(decls))
	for i, d := range decls {
		if d.Name == "" {
			return nil, nil, fmt.Errorf("class %d has no name", i)
		}
		if _, dup := byName[d.Name]; dup {
			return nil, nil, fmt.Errorf("duplicate class %q", d.Name)
		}
		port := b.count("class "+d.Name+" port", d.Port, 0)
		weight := b.weight("class "+d.Name+" weight", d.Weight, 1)
		if b.err != nil {
			return nil, nil, b.err
		}
		if port < 1 || port > 65535 {
			return nil, nil, fmt.Errorf("class %q: port %d outside [1, 65535]", d.Name, port)
		}
		if prev, dup := ports[port]; dup {
			return nil, nil, fmt.Errorf("classes %q and %q share port %d", prev, d.Name, port)
		}
		if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
			return nil, nil, fmt.Errorf("class %q: weight must be positive and finite (got %g)", d.Name, weight)
		}
		ports[port] = d.Name
		byName[d.Name] = uint16(port)
		classes = append(classes, qdisc.Class{Name: d.Name, Port: uint16(port), Weight: weight})
	}
	return classes, byName, nil
}

// buildSched resolves a scheduler name against the scenario's declared
// classes: bare "wfq" and "sp" take their class lists from the classes
// section; everything else — fifo, sfq, prio:<port>, and the inline
// "wfq:<port>=<weight>/..." spellings — goes through
// scenario.ParseScheduler unchanged (which rejects bare wfq/sp with a
// "needs classes" error when no section is declared).
func buildSched(eng *sim.Engine, name string, packets int, classes []qdisc.Class) (qdisc.Qdisc, error) {
	if len(classes) > 0 {
		switch name {
		case "wfq":
			return qdisc.NewWFQ(packets, classes, qdisc.ClassifierByPort(classes)), nil
		case "sp":
			return qdisc.NewSP(packets, classes, qdisc.ClassifierByPort(classes)), nil
		}
	}
	return scenario.ParseScheduler(eng, name, packets)
}

// linkTo resolves a link's downstream name ("dst" default).
func linkTo(l Link) string {
	if l.To == "" {
		return "dst"
	}
	return l.To
}

// buildLink constructs one netem.Link (and its loss wrapper, if any)
// delivering into dst.
func buildLink(b *binder, eng *sim.Engine, l Link, rtt sim.Time, dst netem.Receiver, classes []qdisc.Class) (*netem.Link, netem.Receiver, error) {
	rate := b.rate("link "+l.Name+" rate", l.Rate, 0)
	delay := b.dur("link "+l.Name+" delay", l.Delay, 0)
	if b.err != nil {
		return nil, nil, b.err
	}
	if rate < netem.MinRate {
		return nil, nil, fmt.Errorf("link %q rate %.0f below the %.0f bits/s minimum", l.Name, rate, netem.MinRate)
	}
	// Default buffer: 2×BDP, the NetConfig rule.
	bufBytes := b.bytes("link "+l.Name+" buffer", l.Buffer, int64(2*int(rate/8*rtt.Seconds())))
	if b.err != nil {
		return nil, nil, b.err
	}
	if bufBytes < pkt.MTU {
		return nil, nil, fmt.Errorf("link %q buffer %d below one MTU (%d bytes)", l.Name, bufBytes, pkt.MTU)
	}
	q, err := linkQdisc(b, eng, l, int(bufBytes), classes)
	if err != nil {
		return nil, nil, err
	}
	// Exit-side delay variation: the jitter element sits between the
	// link and its downstream receiver.
	jmax := b.dur("link "+l.Name+" jitter", l.Jitter, 0)
	ordered := b.boolean("link "+l.Name+" jitterordered", l.JitterOrdered, false)
	if b.err != nil {
		return nil, nil, b.err
	}
	if ordered && l.Jitter == "" {
		return nil, nil, fmt.Errorf("link %q: jitterordered without a jitter bound", l.Name)
	}
	if jmax > 0 {
		if ordered {
			dst = netem.NewOrderedJitter(eng, jmax, dst)
		} else {
			dst = netem.NewJitter(eng, jmax, dst)
		}
	}
	link := netem.NewLink(eng, l.Name, rate, delay, q, dst)
	entry := netem.Receiver(link)
	if l.Loss != 0 {
		if l.Loss < 0 || l.Loss > 1 {
			return nil, nil, fmt.Errorf("link %q loss %g outside [0, 1]", l.Name, l.Loss)
		}
		entry = netem.NewLossy(eng, l.Loss, link)
	}
	return link, entry, nil
}

// linkQdisc builds a link's queueing discipline with a byte budget:
// FIFO takes it directly, packet-budgeted disciplines get bufBytes/MTU.
func linkQdisc(b *binder, eng *sim.Engine, l Link, bufBytes int, classes []qdisc.Class) (qdisc.Qdisc, error) {
	name := b.str("link "+l.Name+" qdisc", l.Qdisc)
	if b.err != nil {
		return nil, b.err
	}
	if name == "" || name == "fifo" {
		// FIFO takes the byte budget exactly (no MTU rounding), matching
		// NetConfig's 2×BDP dumbbell bottleneck byte for byte.
		return qdisc.NewFIFO(bufBytes), nil
	}
	q, err := buildSched(eng, name, bufBytes/pkt.MTU, classes)
	if err != nil {
		return nil, fmt.Errorf("link %q: %w", l.Name, err)
	}
	return q, nil
}

// scheduleTrace validates and installs a link's rate trace.
func scheduleTrace(b *binder, eng *sim.Engine, l Link, link *netem.Link) error {
	if len(l.RateTrace) == 0 {
		if l.Repeat != "" {
			return fmt.Errorf("link %q: repeat without a ratetrace", l.Name)
		}
		return nil
	}
	steps := make([]netem.RateStep, len(l.RateTrace))
	for i, s := range l.RateTrace {
		at := b.dur(fmt.Sprintf("link %s trace[%d] at", l.Name, i), s.At, 0)
		rate := b.rate(fmt.Sprintf("link %s trace[%d] rate", l.Name, i), s.Rate, 0)
		if b.err != nil {
			return b.err
		}
		if rate <= 0 {
			return fmt.Errorf("link %q trace[%d]: rate must be positive", l.Name, i)
		}
		if i > 0 && at <= steps[i-1].At {
			return fmt.Errorf("link %q trace: steps must be sorted by time", l.Name)
		}
		steps[i] = netem.RateStep{At: at, Bps: rate}
	}
	period := b.dur("link "+l.Name+" repeat", l.Repeat, 0)
	if b.err != nil {
		return b.err
	}
	if period > 0 && steps[len(steps)-1].At >= period {
		return fmt.Errorf("link %q trace: step at %s is beyond the %s repeat period",
			l.Name, steps[len(steps)-1].At, period)
	}
	netem.ScheduleRate(eng, link, steps, period)
	return nil
}

// webDist resolves a web workload's size distribution: inline CDF
// points, a named built-in, or nil (the default paper CDF).
func webDist(b *binder, w Workload) (*workload.SizeDist, error) {
	if len(w.Sizes) > 0 || len(w.Probs) > 0 {
		if w.Dist != "" {
			return nil, fmt.Errorf("give dist or inline sizes/probs, not both")
		}
		return workload.MakeSizeDist(w.Sizes, w.Probs)
	}
	name := b.str("web dist", w.Dist)
	if b.err != nil {
		return nil, b.err
	}
	if name == "" {
		return nil, nil // Site.RunOpenLoop defaults to the paper CDF
	}
	return workload.NamedDist(name)
}

// pathOracle walks a host's attach chain to the destination and returns
// the unloaded-path parameters that normalize the slowdown metric: the
// minimum base link rate (the path bottleneck) and the path round trip
// (forward propagation along the chain plus the rtt/2 reverse path). For
// a host whose chain delays sum to rtt/2 — every single-link dumbbell —
// this is exactly the scenario-wide rtt.
func pathOracle(b *binder, decl map[string]Link, attach string, rtt sim.Time) (float64, sim.Time) {
	min := 0.0
	forward := sim.Time(0)
	for name := attach; name != "dst"; name = linkTo(decl[name]) {
		l := decl[name]
		r := b.rate("link "+l.Name+" rate", l.Rate, 0)
		if min == 0 || r < min {
			min = r
		}
		forward += b.dur("link "+l.Name+" delay", l.Delay, 0)
	}
	return min, forward + rtt/2
}

// minRateOverall returns the minimum rate across all links (the global
// bottleneck), the fabric's fallback oracle.
func minRateOverall(b *binder, decl map[string]Link) float64 {
	min := 0.0
	for _, l := range decl {
		r := b.rate("link "+l.Name+" rate", l.Rate, 0)
		if min == 0 || r < min {
			min = r
		}
	}
	return min
}

// run executes the compiled scenario: advance until every web workload
// completes its request count (or the horizon), then stop the sendboxes
// and paced streams. maxHorizon, when positive, caps the horizon — the
// config smoke tests use it to keep shipped examples cheap to verify.
// It returns the virtual stop time.
func (c *compiled) run(maxHorizon sim.Time) sim.Time {
	h := c.horizon
	if maxHorizon > 0 && maxHorizon < h {
		h = maxHorizon
	}
	var check func() bool
	if len(c.webs) > 0 {
		check = func() bool {
			for _, w := range c.webs {
				if w.Rec.Completed < w.Requests {
					return false
				}
			}
			return true
		}
	}
	var stop sim.Time
	if c.mesh != nil {
		// Mesh scenarios run on the sharded world; RunUntil applies the
		// mesh's own per-pair completion check and stops its control
		// planes on return.
		stop = c.mesh.RunUntil(h)
	} else {
		stop = c.fab.RunUntilDone(h, check)
	}
	for _, s := range c.sites {
		if s.SB != nil {
			s.SB.Stop()
		}
	}
	for _, cb := range c.cbrs {
		cb.Stream.Stop()
	}
	return stop
}
