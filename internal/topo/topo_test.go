package topo

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// configsDir is the shipped config-only scenario set; the tests here
// treat it as part of the package's contract.
const configsDir = "../../examples/configs"

// TestRoundTrip pins the parse → emit → parse cycle on every shipped
// config: emitting and re-parsing must reproduce the identical Config
// (comments are the only thing lost), and a second emit must be
// byte-stable.
func TestRoundTrip(t *testing.T) {
	for _, path := range exampleConfigs(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			c1, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := c1.Emit()
			if err != nil {
				t.Fatal(err)
			}
			c2, err := Parse(b1)
			if err != nil {
				t.Fatalf("re-parse emitted config: %v", err)
			}
			if !reflect.DeepEqual(c1, c2) {
				t.Fatalf("round-trip changed the config:\n%s", b1)
			}
			b2, err := c2.Emit()
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Fatalf("emit is not byte-stable")
			}
		})
	}
}

// TestValidateExamples dry-compiles every shipped config (cheap; the
// full smoke run lives in TestExampleConfigsSmoke).
func TestValidateExamples(t *testing.T) {
	for _, path := range exampleConfigs(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			cfg, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func exampleConfigs(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(configsDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected ≥4 shipped configs in %s, found %d", configsDir, len(files))
	}
	return files
}

// minimal returns a valid single-run config that the rejection tests
// mutate one field at a time.
func minimal() string {
	return `{
	  "name": "t",
	  "base": {
	    "rtt": "50ms",
	    "links": [{"name": "l1", "rate": "96e6", "delay": "25ms"}],
	    "hosts": [{"name": "h"}],
	    "workloads": [{"host": "h", "kind": "web", "load": "10e6", "requests": "100"}]
	  }
	}`
}

func TestMinimalIsValid(t *testing.T) {
	cfg, err := Parse([]byte(minimal()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRejections pins the error surface: every class of bad input a
// config file can carry must fail Validate (or Parse) with a message
// naming the problem, never panic or silently default.
func TestRejections(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // error substring
	}{
		{
			name: "mesh with explicit links",
			json: `{"name":"t","base":{"mesh":{"sites":"4"},
				"links":[{"name":"l1","rate":"96e6"}]}}`,
			want: "generates its own links",
		},
		{
			name: "mesh too few sites",
			json: `{"name":"t","base":{"mesh":{"sites":"1"}}}`,
			want: "sites 1 outside",
		},
		{
			name: "mesh too many sites",
			json: `{"name":"t","base":{"mesh":{"sites":"65"}}}`,
			want: "sites 65 outside",
		},
		{
			name: "mesh bad mode",
			json: `{"name":"t","base":{"mesh":{"sites":"4","mode":"ring"}}}`,
			want: "mesh mode",
		},
		{
			name: "mesh bad bundled flag",
			json: `{"name":"t","base":{"mesh":{"sites":"4","bundled":"maybe"}}}`,
			want: "bad bool",
		},
		{
			name: "mesh access rate below minimum",
			json: `{"name":"t","base":{"mesh":{"sites":"4","accessrate":"10"}}}`,
			want: "below the",
		},
		{
			name: "jitterordered without jitter",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","jitterordered":"true"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "jitterordered without a jitter bound",
		},
		{
			name: "bad link jitter",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","jitter":"-3ms"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "bad duration",
		},
		{
			name: "bad qdisc name",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","qdisc":"hfsc"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown scheduler",
		},
		{
			name: "bare wfq qdisc without classes",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","qdisc":"wfq"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "needs classes",
		},
		{
			name: "bare wfq bundle sched without classes",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"bundles":[{"host":"h","sched":"wfq"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "needs classes",
		},
		{
			name: "weights on sp spec",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"bundles":[{"host":"h","sched":"sp:8443=4/80"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "takes no weights",
		},
		{
			name: "class without name",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"port":"8443"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "has no name",
		},
		{
			name: "class without port",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "outside [1, 65535]",
		},
		{
			name: "class port out of range",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"70000"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "outside [1, 65535]",
		},
		{
			name: "duplicate class name",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"80"},{"name":"a","port":"81"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "duplicate class",
		},
		{
			name: "duplicate class port",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"80"},{"name":"b","port":"80"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "share port 80",
		},
		{
			name: "negative class weight",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"80","weight":"-2"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "weight must be positive",
		},
		{
			name: "zero class weight",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"80","weight":"0"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "weight must be positive",
		},
		{
			name: "infinite class weight",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"80","weight":"+Inf"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "weight must be positive",
		},
		{
			name: "workload references unknown class",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"80"}],
				"workloads":[{"host":"h","kind":"web","class":"b","load":"10e6","requests":"100"}]}}`,
			want: "unknown class \"b\"",
		},
		{
			name: "workload with class and dstport",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"80"}],
				"workloads":[{"host":"h","kind":"web","class":"a","dstport":"80","load":"10e6","requests":"100"}]}}`,
			want: "not both",
		},
		{
			name: "class on non-web workload",
			json: `{"name":"t","base":{"horizon":"10s","links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"classes":[{"name":"a","port":"80"}],
				"workloads":[{"host":"h","kind":"bulk","class":"a"}]}}`,
			want: "class is only for web workloads",
		},
		{
			name: "mesh with classes",
			json: `{"name":"t","base":{"mesh":{"sites":"4"},
				"classes":[{"name":"a","port":"80"}]}}`,
			want: "generates its own links",
		},
		{
			name: "bad bundle scheduler",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"bundles":[{"host":"h","sched":"hfsc"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown scheduler",
		},
		{
			name: "dangling link endpoint",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","to":"nowhere"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown link \"nowhere\"",
		},
		{
			name: "link cycle",
			json: `{"name":"t","base":{"links":[
				{"name":"a","rate":"96e6","to":"b"},
				{"name":"b","rate":"96e6","to":"a"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "cycle",
		},
		{
			name: "duplicate link",
			json: `{"name":"t","base":{"links":[
				{"name":"l1","rate":"96e6"},{"name":"l1","rate":"48e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "duplicate link",
		},
		{
			name: "duplicate host",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"},{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "duplicate host",
		},
		{
			name: "host attaches to unknown link",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h","attach":"l2"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown link \"l2\"",
		},
		{
			name: "bundle on unknown host",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"bundles":[{"host":"ghost"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown host \"ghost\"",
		},
		{
			name: "two bundles on one host",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"bundles":[{"host":"h"},{"host":"h","sched":"fifo"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "two bundles",
		},
		{
			name: "workload on unknown host",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"ghost","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown host \"ghost\"",
		},
		{
			name: "unknown workload kind",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"torrent"}]}}`,
			want: "unknown kind",
		},
		{
			name: "bad inline CDF",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100",
					"sizes":[100,1000],"probs":[0.5]}]}}`,
			want: "matching size/prob points",
		},
		{
			name: "unknown named dist",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100","dist":"zipf"}]}}`,
			want: "unknown size distribution",
		},
		{
			name: "undeclared parameter reference",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"$nope"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "undeclared parameter \"$nope\"",
		},
		{
			name: "no horizon without web",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"bulk","flows":"2"}]}}`,
			want: "explicit horizon",
		},
		{
			name: "fct style without web workload",
			json: `{"name":"t","report":{"style":"fct"},
				"base":{"horizon":"10s","links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"bulk"}]}}`,
			want: "fct report style needs a web workload",
		},
		{
			name: "unknown report style",
			json: `{"name":"t","report":{"style":"table"},
				"base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown report style",
		},
		{
			name: "unparsable rate",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"fast"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "bad rate",
		},
		{
			name: "rate below minimum",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"10"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "below the",
		},
		{
			name: "buffer below one MTU",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","buffer":"100"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "below one MTU",
		},
		{
			name: "loss out of range",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","loss":1.5}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "outside [0, 1]",
		},
		{
			name: "repeat without trace",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","repeat":"5s"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "repeat without a ratetrace",
		},
		{
			name: "trace step beyond repeat period",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6",
				"ratetrace":[{"at":"0s","rate":"96e6"},{"at":"6s","rate":"48e6"}],"repeat":"5s"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "beyond the",
		},
		{
			name: "unsorted trace",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6",
				"ratetrace":[{"at":"4s","rate":"96e6"},{"at":"2s","rate":"48e6"}]}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "sorted",
		},
		{
			name: "unknown inner algorithm",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"bundles":[{"host":"h","alg":"vegas"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown inner algorithm",
		},
		{
			name: "unknown endhost cc",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100","cc":"dctcp"}]}}`,
			want: "unknown endhost cc",
		},
		{
			name: "unknown field",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6","qdsc":"fifo"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}`,
			want: "unknown field",
		},
		{
			name: "missing name",
			json: `{"base":{"links":[{"name":"l1","rate":"96e6"}],"hosts":[{"name":"h"}]}}`,
			want: "needs a name",
		},
		{
			name: "typoed param in report header",
			json: `{"name":"t","params":[{"name":"requests","default":"100"}],
				"report":{"header":"FCT ($reqs requests)"},
				"base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"$requests"}]}}`,
			want: "undeclared parameter \"$reqs\"",
		},
		{
			name: "fluid workload without users",
			json: `{"name":"t","base":{"horizon":"10s","links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"fluid"}]}}`,
			want: "needs a positive users count",
		},
		{
			name: "fluid workload bad users",
			json: `{"name":"t","base":{"horizon":"10s","links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"fluid","users":"many"}]}}`,
			want: "bad count",
		},
		{
			name: "mesh sketch off with users on",
			json: `{"name":"t","base":{"mesh":{"sites":"2","users":"1000","sketch":"false"}}}`,
			want: "incompatible",
		},
		{
			name: "mesh bad sketch value",
			json: `{"name":"t","base":{"mesh":{"sites":"2","sketch":"maybe"}}}`,
			want: "want auto, true, or false",
		},
		{
			name: "mesh negative users",
			json: `{"name":"t","base":{"mesh":{"sites":"2","users":"-5"}}}`,
			want: "bad count",
		},
		{
			name: "trailing content after the config",
			json: `{"name":"t","base":{"links":[{"name":"l1","rate":"96e6"}],
				"hosts":[{"name":"h"}],
				"workloads":[{"host":"h","kind":"web","load":"10e6","requests":"100"}]}}
				{"name":"t2"}`,
			want: "trailing content",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := Parse([]byte(tc.json))
			if err == nil {
				err = Validate(cfg)
			}
			if err == nil {
				t.Fatalf("want error containing %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got: %v", tc.want, err)
			}
		})
	}
}

// TestFluidWorkloadKind runs a declarative scenario carrying a fluid
// background aggregate next to a packet workload: the aggregate must
// take (most of) the link, the cbr stream must keep the guaranteed
// foreground share, and both must land in the summary metrics.
func TestFluidWorkloadKind(t *testing.T) {
	cfg, err := Parse([]byte(`{
	  "name": "fluidtest",
	  "params": [{"name": "users", "default": "50000"}],
	  "base": {
	    "rtt": "50ms",
	    "horizon": "15s",
	    "links": [{"name": "l1", "rate": "48e6", "delay": "25ms"}],
	    "hosts": [{"name": "h"}],
	    "workloads": [
	      {"host": "h", "kind": "fluid", "users": "$users"},
	      {"host": "h", "kind": "cbr", "load": "2e6"}
	    ]
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Smoke(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fluidMbps := res.Metric("fluidtest/fluid-h/Mbps")
	if fluidMbps < 0.5*48*0.95 {
		t.Errorf("fluid aggregate delivered %.1f Mbit/s, want most of the 48 Mbit/s link", fluidMbps)
	}
	cbrMbps := res.Metric("fluidtest/cbr-h/Mbps")
	if cbrMbps < 0.9*2 {
		t.Errorf("cbr stream squeezed to %.2f of its 2 Mbit/s: the foreground headroom is not holding", cbrMbps)
	}
	if lost := res.Metric("fluidtest/fluid-h/lost-bytes"); lost == 0 {
		t.Error("fluid aggregate saw no loss against a 50000-user offered load")
	}
}

// TestParamExpansion pins $name substitution: maximal-identifier
// matching (so $ratehigh never reads as $rate + "high"), no re-expansion
// of substituted values, the $$ escape, and undeclared-reference errors.
func TestParamExpansion(t *testing.T) {
	pv := map[string]string{"rate": "96e6", "ratehigh": "200e6", "n": "5", "tricky": "$rate"}
	for _, tc := range []struct{ in, want string }{
		{"$rate", "96e6"},
		{"$ratehigh", "200e6"},
		{"$n requests at $rate", "5 requests at 96e6"},
		{"$tricky", "$rate"}, // substituted values are not re-expanded
		{"costs $$5", "costs $5"},
		{"plain", "plain"},
	} {
		got, err := expand(tc.in, pv)
		if err != nil {
			t.Fatalf("expand(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("expand(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if _, err := expand("$missing", pv); err == nil {
		t.Fatal("want error for undeclared reference")
	}
	if _, err := expand("stray $ sign", pv); err == nil {
		t.Fatal("want error for stray unescaped dollar sign")
	}
}

// TestStripComments pins the comment stripper's string-awareness: a //
// inside a JSON string (a URL, say) must survive.
func TestStripComments(t *testing.T) {
	in := `{"a": "http://x//y", // trailing comment
	"b": 1} // end`
	got := string(stripComments([]byte(in)))
	want := "{\"a\": \"http://x//y\", \n\t\"b\": 1} "
	if got != want {
		t.Fatalf("stripComments = %q, want %q", got, want)
	}
}

// TestMergedOverrides pins the run-override semantics: non-empty
// sections replace, empty sections inherit.
func TestMergedOverrides(t *testing.T) {
	base := Scenario{
		RTT:       "50ms",
		Links:     []Link{{Name: "l1", Rate: "96e6"}},
		Hosts:     []Host{{Name: "h"}},
		Workloads: []Workload{{Host: "h", Kind: "web", Load: "10e6", Requests: "100"}},
	}
	r := Run{Label: "x", Scenario: Scenario{Bundles: []Bundle{{Host: "h"}}}}
	m := merged(base, r)
	if len(m.Bundles) != 1 || len(m.Links) != 1 || m.RTT != "50ms" {
		t.Fatalf("merged override wrong: %+v", m)
	}
	r2 := Run{Label: "y", Scenario: Scenario{Links: []Link{{Name: "l1", Rate: "48e6"}}}}
	m2 := merged(base, r2)
	if m2.Links[0].Rate != "48e6" || len(m2.Bundles) != 0 {
		t.Fatalf("merged replace wrong: %+v", m2)
	}
}
