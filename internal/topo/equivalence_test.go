package topo

import (
	"bytes"
	"encoding/json"
	"testing"

	"bundler/internal/exp"
	_ "bundler/internal/scenario" // registers the hand-coded experiments
)

// TestFig9ConfigEquivalence is the tentpole guarantee of the config
// layer: the shipped fig9 config compiles into *exactly* the simulation
// the hand-coded fig9 experiment wires — same engine event sequence,
// same RNG draws, same report and metrics — so the two Results marshal
// byte-identically. Any divergence means the compiler's defaults or
// wiring order drifted from internal/scenario.
func TestFig9ConfigEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 equivalence runs eight FCT simulations; skipped under -short")
	}
	cfg, err := Load("../../examples/configs/fig9.json")
	if err != nil {
		t.Fatal(err)
	}
	hand, ok := exp.Lookup("fig9")
	if !ok {
		t.Fatal("built-in fig9 not registered")
	}

	const seed = 1
	params := exp.Params{"requests": "2000"}
	want, err := hand.Run(seed, params.Clone())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Experiment(cfg).Run(seed, params.Clone())
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("config fig9 diverged from hand-coded fig9.\nhand-coded:\n%s\n\nconfig:\n%s",
			wantJSON, gotJSON)
	}
}
