// Package topo is the declarative scenario layer: experiments as data
// instead of code. A Config — JSON with // comments — names a topology
// (links with rate/delay/qdisc/loss and optional time-varying rate
// traces, hosts attached to them, Bundler pairs placed on hosts) and the
// workloads offered through it, plus the labeled run variants to compare
// (status quo vs Bundler, schedulers, ...). The compiler (compile.go)
// instantiates the same internal/sim, netem, bundle, and workload
// machinery the hand-coded internal/scenario experiments use — the
// shipped fig9 config reproduces the hand-coded fig9 experiment byte for
// byte — and Experiment (exp.go) wraps a Config as a first-class
// exp.Experiment, so loaded configs sweep, grid, and parallelize exactly
// like built-ins.
//
// Units follow the repository convention: rates are bits/s (float syntax,
// so "96e6" reads naturally), durations are Go time.Duration strings
// ("50ms"), buffers and flow sizes are bytes, queue depths are packets.
// Any string field may reference a declared parameter as "$name" ("$$"
// for a literal dollar sign); values come from the sweep grid or -set at
// run time, making every knob of a config a sweepable axis.
package topo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// ParamDecl declares one tunable of a config, mirroring exp.Param:
// "$name" references anywhere in the config resolve to its value.
type ParamDecl struct {
	Name    string `json:"name"`
	Default string `json:"default"`
	Help    string `json:"help,omitempty"`
}

// Report selects how a config's runs are rendered into an exp.Result.
type Report struct {
	// Style is "summary" (default: per-run workload statistics) or "fct"
	// (the shared FCT-comparison table of Figures 9/14/15; each run must
	// then offer at least one web workload, whose recorder makes the row).
	Style string `json:"style,omitempty"`
	// Header is the report banner; "$param" references are substituted.
	// Default: the config's desc, or its name.
	Header string `json:"header,omitempty"`
}

// Link declares one rate-limited, store-and-forward link of the forward
// path. Links form a DAG converging on the destination ("dst").
type Link struct {
	Name string `json:"name"`
	// Rate is the drain rate in bits/s ("96e6").
	Rate string `json:"rate"`
	// Delay is the one-way propagation delay ("25ms"); default 0.
	Delay string `json:"delay,omitempty"`
	// Qdisc names the queueing discipline holding the backlog: "fifo"
	// (default), or any scenario scheduler name (sfq, fqcodel, codel,
	// red, drr, pie, prio:<port>).
	Qdisc string `json:"qdisc,omitempty"`
	// Buffer is the queue capacity in bytes; default 2×BDP computed from
	// Rate and the scenario's RTT. Packet-budgeted qdiscs get Buffer/MTU
	// packets.
	Buffer string `json:"buffer,omitempty"`
	// Loss drops each entering packet independently with this
	// probability (Bernoulli, from the engine's deterministic RNG).
	Loss float64 `json:"loss,omitempty"`
	// To names the downstream link, or "dst" (default): the destination
	// demux where receivers live.
	To string `json:"to,omitempty"`
	// RateTrace makes the link time-varying: a piecewise-constant rate
	// schedule starting at t=0. Repeat (a duration) loops the trace.
	RateTrace []TraceStep `json:"ratetrace,omitempty"`
	Repeat    string      `json:"repeat,omitempty"`
	// Jitter adds uniform per-packet delay variation in [0, Jitter) at
	// the link's exit ("5ms"; default off). JitterOrdered ("true") opts
	// into the order-preserving element: delivery clamps to the previous
	// packet's, so latency varies but FIFO order holds — without it,
	// jitter larger than the packet spacing reorders, which Bundler's
	// §5.2 heuristic reads as multipath imbalance. A string like every
	// other knob, so "$param" references make it a sweep axis.
	Jitter        string `json:"jitter,omitempty"`
	JitterOrdered string `json:"jitterordered,omitempty"`
}

// TraceStep is one point of a link's rate trace.
type TraceStep struct {
	At   string `json:"at"`
	Rate string `json:"rate"`
}

// MeshDecl declares an N-site mesh generated from a handful of knobs
// instead of enumerated links and hosts: N sites exchange traffic
// pairwise, each ordered site pair is one bundle, and each source site's
// per-destination sendboxes share one physical box behind the site's
// access bottleneck (the §9 scale-out family; see scenario.NewMesh). A
// scenario with a mesh section generates its own links, hosts, bundles,
// and workloads — declaring those sections alongside it is an error.
type MeshDecl struct {
	// Sites is the site count N (≥ 2); the mesh carries N·(N-1) ordered
	// pairs. "$param" references make it a sweep axis.
	Sites string `json:"sites"`
	// Mode is "hub" (default: access links feed one shared core link) or
	// "pairwise" (access links deliver directly).
	Mode string `json:"mode,omitempty"`
	// AccessRate is the per-site access link rate in bits/s (default
	// 96e6); CoreRate the hub core rate (default sites·accessrate/2).
	AccessRate string `json:"accessrate,omitempty"`
	CoreRate   string `json:"corerate,omitempty"`
	// Bundled interposes a Bundler pair per site pair (default false).
	Bundled string `json:"bundled,omitempty"`
	// Queue is the per-bundle sendbox SFQ depth in packets (default 1000).
	Queue string `json:"queue,omitempty"`
	// Perturb re-keys every sendbox SFQ this often ("2s"; default off).
	Perturb string `json:"perturb,omitempty"`
	// Jitter bounds uniform in-path delay variation after each access
	// link (default off); JitterOrdered selects the order-preserving
	// element (default true — plain jitter fakes multipath reordering).
	Jitter        string `json:"jitter,omitempty"`
	JitterOrdered string `json:"jitterordered,omitempty"`
	// Requests is the web request count per ordered pair (default 300);
	// Load the per-pair offered bits/s (default 70 % of the access rate
	// split across the site's destinations).
	Requests string `json:"requests,omitempty"`
	Load     string `json:"load,omitempty"`
	// Shards is the engine shard count driving the per-site partitions
	// (default 0 = auto-budget against sweep workers). Results are
	// byte-identical for any value; "$param" makes it a sweep axis.
	Shards string `json:"shards,omitempty"`
	// Users emulates this many background users per site as a fluid AIMD
	// aggregate on each access link (scenario.MeshOptions.BgUsersPerSite;
	// default 0 = off). "$param" makes the user count a sweep axis.
	Users string `json:"users,omitempty"`
	// Sketch selects bounded quantile sketches for the FCT statistics:
	// "auto" (default: on when Users > 0), "true", or "false" ("false"
	// with Users set is an error — emulated-user runs need bounded stats).
	Sketch string `json:"sketch,omitempty"`
}

// ClassDecl declares one scheduler traffic class: flows whose
// destination port matches Port belong to the class. One declaration
// drives every mode of a scheduler sweep — WFQ divides service by the
// Weights, strict priority ("sp") serves classes in declaration order
// (first = highest) and ignores the weights, and any other scheduler
// (FIFO included) still gets per-class metering, so a fifo/sp/wfq grid
// reports the same fairness section for every cell. Packets matching no
// declared class fall to the last class for scheduling and to an
// "other" bucket in the metering.
type ClassDecl struct {
	Name string `json:"name"`
	// Port is the destination port selecting the class (1-65535).
	Port string `json:"port"`
	// Weight is the WFQ service weight (positive; default 1).
	Weight string `json:"weight,omitempty"`
}

// Host declares one source-site/destination-site pairing (a
// scenario.Site): a cluster of endpoints whose egress enters the forward
// path at Attach and whose ingress hangs off the destination demux.
type Host struct {
	Name string `json:"name"`
	// Attach names the link the host's egress enters; default: the first
	// declared link.
	Attach string `json:"attach,omitempty"`
}

// Bundle places a Bundler pair on a host: the sendbox in front of the
// host's attach link, the receivebox tapping the host's ingress.
type Bundle struct {
	Host string `json:"host"`
	// Alg names the inner-loop controller: "copa" (default),
	// "basicdelay", or "bbr".
	Alg string `json:"alg,omitempty"`
	// Sched names the sendbox scheduler (default "sfq"). Bare "wfq" and
	// "sp" resolve against the scenario's classes section; the inline
	// "wfq:<port>=<weight>/..." and "sp:<port>/..." spellings carry their
	// own class lists.
	Sched string `json:"sched,omitempty"`
	// Queue is the sendbox scheduler depth in packets (default 1000).
	Queue string `json:"queue,omitempty"`
	// Tunnel switches epoch identification to the §4.5 encapsulation
	// variant.
	Tunnel bool `json:"tunnel,omitempty"`
}

// Workload declares one traffic source offered through a host.
type Workload struct {
	Host string `json:"host"`
	// Kind selects the generator:
	//
	//	"web"   — open-loop Poisson request arrivals (§7.1); FCTs recorded
	//	"bulk"  — backlogged long-running TCP flows
	//	"ping"  — closed-loop 40-byte UDP request/response probes (§8)
	//	"cbr"   — paced constant-bit-rate UDP stream (§3's video class)
	//	"fluid" — Users emulated background users as one packet-free AIMD
	//	          aggregate loading the host's attach link (package fluid)
	Kind string `json:"kind"`
	// Load is the offered load in bits/s (web: mean arrival load; cbr:
	// stream rate).
	Load string `json:"load,omitempty"`
	// Requests is the number of web requests to complete; the run ends
	// when every web workload reaches its count (or at the horizon).
	Requests string `json:"requests,omitempty"`
	// Dist names a built-in size distribution ("web", the default);
	// Sizes/Probs give an inline CDF instead (bytes, cumulative probs).
	Dist  string    `json:"dist,omitempty"`
	Sizes []float64 `json:"sizes,omitempty"`
	Probs []float64 `json:"probs,omitempty"`
	// CC names the endhost congestion control ("cubic" default; web and
	// bulk kinds).
	CC string `json:"cc,omitempty"`
	// FixedCwnd pins every endhost window to this many segments (the
	// §7.5 idealized-proxy emulation; web kind).
	FixedCwnd string `json:"fixedcwnd,omitempty"`
	// DstPort overrides the flows' destination port (the §7.2 priority
	// experiments classify on it; web kind).
	DstPort string `json:"dstport,omitempty"`
	// Class assigns the flows to a declared scheduler class by name,
	// setting their destination port to the class's port (web kind; give
	// class or dstport, not both).
	Class string `json:"class,omitempty"`
	// Warmup excludes flows arriving before this virtual time from the
	// statistics (web kind).
	Warmup string `json:"warmup,omitempty"`
	// Flows is the bulk flow count (default 1); Size the per-flow
	// transfer in bytes (default 1e12, i.e. effectively backlogged).
	Flows string `json:"flows,omitempty"`
	Size  string `json:"size,omitempty"`
	// PktSize is the cbr packet size in bytes (default MTU).
	PktSize string `json:"pktsize,omitempty"`
	// Users is the fluid kind's emulated user count (required, > 0);
	// "$param" makes it a sweep axis.
	Users string `json:"users,omitempty"`
}

// Scenario is one complete topology + workload description. It appears
// twice in a Config: as the shared base and as per-run overrides, where
// any non-empty section replaces the base's wholesale (empty sections
// inherit; to compare with/without bundles, leave bundles out of the
// base and add them per run).
type Scenario struct {
	// RTT is the base end-to-end propagation round trip ("50ms" default):
	// it sets the reverse path's delay (RTT/2) and the default 2×BDP
	// link buffers. Forward-path delay comes from the links' own Delay
	// fields; each host's slowdown oracle uses its own path (minimum
	// link rate and summed forward delay plus the RTT/2 reverse leg).
	RTT string `json:"rtt,omitempty"`
	// Horizon bounds the run in virtual time. Default: load-scaled, 10 ms
	// per web request with a 120 s floor (the FCT experiments' rule);
	// required when no web workload gates completion.
	Horizon string `json:"horizon,omitempty"`
	// Classes declares the scheduler traffic classes workloads may join
	// and the bare "wfq"/"sp" bundle scheduler modes resolve against.
	Classes   []ClassDecl `json:"classes,omitempty"`
	Links     []Link      `json:"links,omitempty"`
	Hosts     []Host      `json:"hosts,omitempty"`
	Bundles   []Bundle    `json:"bundles,omitempty"`
	Workloads []Workload  `json:"workloads,omitempty"`
	// Mesh generates an N-site mesh topology instead of the explicit
	// sections above (which must then be absent).
	Mesh *MeshDecl `json:"mesh,omitempty"`
}

// Run is one labeled variant of the config's scenario: its sections
// override the base's.
type Run struct {
	Label    string `json:"label"`
	Scenario        // inline overrides
}

// Config is one declarative experiment: a named, parameterized scenario
// with labeled run variants and a report style.
type Config struct {
	Name   string      `json:"name"`
	Desc   string      `json:"desc,omitempty"`
	Params []ParamDecl `json:"params,omitempty"`
	Report Report      `json:"report,omitempty"`
	Base   Scenario    `json:"base"`
	Runs   []Run       `json:"runs,omitempty"`
}

// Parse decodes a config from JSON. Line comments (// to end of line,
// outside strings) are stripped first so shipped configs can be
// annotated. Unknown fields are rejected — a typoed key silently
// reverting to a default is exactly the class of error a declarative
// layer must surface.
func Parse(data []byte) (*Config, error) {
	dec := json.NewDecoder(strings.NewReader(string(stripComments(data))))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("topo: parse config: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		// A second JSON value (a botched merge of two configs, say) must
		// not be silently dropped.
		return nil, fmt.Errorf("topo: parse config: trailing content after the config object")
	}
	if c.Name == "" {
		return nil, fmt.Errorf("topo: config needs a name")
	}
	return &c, nil
}

// Load reads and parses a config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return c, nil
}

// Emit renders the config as canonical indented JSON (comments are not
// preserved). Parse(Emit(c)) round-trips to an identical Config.
func (c *Config) Emit() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("topo: emit config: %w", err)
	}
	return append(b, '\n'), nil
}

// stripComments removes // line comments outside of JSON strings.
func stripComments(data []byte) []byte {
	out := make([]byte, 0, len(data))
	inStr, esc := false, false
	for i := 0; i < len(data); i++ {
		ch := data[i]
		if inStr {
			out = append(out, ch)
			switch {
			case esc:
				esc = false
			case ch == '\\':
				esc = true
			case ch == '"':
				inStr = false
			}
			continue
		}
		if ch == '"' {
			inStr = true
			out = append(out, ch)
			continue
		}
		if ch == '/' && i+1 < len(data) && data[i+1] == '/' {
			for i < len(data) && data[i] != '\n' {
				i++
			}
			if i < len(data) {
				out = append(out, '\n')
			}
			continue
		}
		out = append(out, ch)
	}
	return out
}

// paramValues resolves the declared parameters against the run-time
// overrides in p, rejecting unknown or empty declarations.
func (c *Config) paramValues(p map[string]string) (map[string]string, error) {
	pv := make(map[string]string, len(c.Params))
	for _, d := range c.Params {
		if d.Name == "" {
			return nil, fmt.Errorf("topo: config %s: param with empty name", c.Name)
		}
		if _, dup := pv[d.Name]; dup {
			return nil, fmt.Errorf("topo: config %s: duplicate param %q", c.Name, d.Name)
		}
		pv[d.Name] = d.Default
	}
	for k, v := range p {
		if _, ok := pv[k]; ok {
			pv[k] = v
		}
	}
	return pv, nil
}

// expand substitutes "$name" references with parameter values in one
// deterministic left-to-right pass: each reference consumes the maximal
// identifier after the "$" (so $ratehigh never reads as $rate + "high"),
// substituted values are not re-expanded, "$$" escapes a literal dollar
// sign, and references to undeclared parameters are errors.
func expand(s string, pv map[string]string) (string, error) {
	if !strings.Contains(s, "$") {
		return s, nil
	}
	var out strings.Builder
	out.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '$' {
			out.WriteByte(s[i])
			i++
			continue
		}
		if i+1 < len(s) && s[i+1] == '$' {
			out.WriteByte('$')
			i += 2
			continue
		}
		j := i + 1
		for j < len(s) && isIdent(s[j]) {
			j++
		}
		name := s[i+1 : j]
		if name == "" {
			return "", fmt.Errorf(`stray "$" (use "$$" for a literal dollar sign)`)
		}
		v, ok := pv[name]
		if !ok {
			return "", fmt.Errorf("reference to undeclared parameter %q", "$"+name)
		}
		out.WriteString(v)
		i = j
	}
	return out.String(), nil
}

func isIdent(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// merged returns the run's effective scenario: base with the run's
// non-empty sections substituted.
func merged(base Scenario, r Run) Scenario {
	sc := base
	if r.RTT != "" {
		sc.RTT = r.RTT
	}
	if r.Horizon != "" {
		sc.Horizon = r.Horizon
	}
	if len(r.Classes) > 0 {
		sc.Classes = r.Classes
	}
	if len(r.Links) > 0 {
		sc.Links = r.Links
	}
	if len(r.Hosts) > 0 {
		sc.Hosts = r.Hosts
	}
	if len(r.Bundles) > 0 {
		sc.Bundles = r.Bundles
	}
	if len(r.Workloads) > 0 {
		sc.Workloads = r.Workloads
	}
	if r.Mesh != nil {
		sc.Mesh = r.Mesh
	}
	return sc
}

// runList returns the labeled runs, synthesizing a single run named
// after the config when none are declared.
func (c *Config) runList() []Run {
	if len(c.Runs) == 0 {
		return []Run{{Label: c.Name}}
	}
	return c.Runs
}
