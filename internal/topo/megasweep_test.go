package topo

import (
	"bytes"
	"math"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"bundler/internal/exp"
	"bundler/internal/report"
	"bundler/internal/runstore"
)

// megasweepGrid is the shipped scheduler-mode grid (see the header of
// examples/configs/megasweep.json): 3 modes × 8 base latencies × 2
// interactive loads × 3 bottleneck delays = 144 cells, with the
// per-cell cost knobs (requests, horizon) turned down so the full grid
// stays a unit test — each cell completes its 30-per-class requests in
// about a second of virtual time, with a 4s horizon catching the
// high-latency stragglers. -short (the race-checked CI job) keeps the
// full mode axis and trims the others to a 6-cell subset.
func megasweepGrid(t *testing.T) exp.Grid {
	t.Helper()
	spec := "mode=fifo,sp,wfq;baselatency=10ms,50ms,100ms,200ms,300ms,400ms,500ms,1000ms;" +
		"load=10e6,30e6;delay=24ms,16ms,10ms;bulkload=48e6;requests=30;horizon=4s;seed=1"
	want := 144
	if testing.Short() {
		spec = "mode=fifo,sp,wfq;baselatency=50ms,200ms;load=10e6;delay=24ms;" +
			"bulkload=48e6;requests=30;horizon=4s;seed=1"
		want = 6
	}
	g, err := exp.ParseGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != want {
		t.Fatalf("megasweep grid has %d cells, want %d", g.Size(), want)
	}
	return g
}

// assertFairnessCell checks one sweep cell carries a complete, sane
// fairness section: finite Jain index, a work-conservation ratio in
// (0, 1], and per-class shares that account for (essentially) all
// served bytes.
func assertFairnessCell(t *testing.T, r exp.Result) {
	t.Helper()
	cell := r.Params["mode"] + "/" + r.Params["baselatency"] + "/" + r.Params["load"] + "/" + r.Params["delay"]
	jain := r.Metric("run/fair-edge/jain")
	if math.IsNaN(jain) || jain <= 0 || jain > 1.0000001 {
		t.Fatalf("cell %s: jain=%v, want finite in (0, 1]", cell, jain)
	}
	wc := r.Metric("run/fair-edge/work-conservation")
	if math.IsNaN(wc) || wc <= 0 || wc > 1.0000001 {
		t.Fatalf("cell %s: work-conservation=%v, want in (0, 1]", cell, wc)
	}
	var shares float64
	for _, class := range []string{"interactive", "bulk"} {
		s := r.Metric("run/fair-edge/" + class + "/share")
		if math.IsNaN(s) {
			t.Fatalf("cell %s: missing share metric for class %s", cell, class)
		}
		shares += s
	}
	// The two declared classes carry every web flow; the meter's "other"
	// bucket should hold nothing, so the shares must account for all
	// served bytes (shares are 0 only in a cell that served nothing).
	if shares != 0 && math.Abs(shares-1) > 1e-6 {
		t.Fatalf("cell %s: class shares sum to %v, want 1", cell, shares)
	}
	if !strings.Contains(r.Report, "jain=") {
		t.Fatalf("cell %s: report lacks a fairness section:\n%s", cell, r.Report)
	}
}

// TestMegasweepResume is the tentpole acceptance test: the full
// scheduler-mode grid swept through the run store's resume path. A
// sweep resumed from a half-populated store must emit bytes identical
// to an uninterrupted run, a cache-warm re-run must execute zero cells,
// and every cell — fifo, sp, and wfq alike — must carry the fairness
// section.
func TestMegasweepResume(t *testing.T) {
	cfg, err := Load(filepath.Join(configsDir, "megasweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	e := Experiment(cfg)
	g := megasweepGrid(t)
	par := runtime.GOMAXPROCS(0)

	emit := func(results []exp.Result) []byte {
		var b bytes.Buffer
		if err := exp.WriteJSON(&b, results); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	fresh, st, err := exp.SweepOpts(e, g, exp.Options{Parallel: par})
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != g.Size() {
		t.Fatalf("fresh sweep executed %d of %d cells", st.Executed, g.Size())
	}
	for _, r := range fresh {
		assertFairnessCell(t, r)
	}
	want := emit(fresh)

	// "Interrupt" the sweep by pre-populating only half the cells, then
	// resume over the full grid.
	s, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	half := g.Points()[:g.Size()/2]
	for _, pt := range half {
		res, err := e.Run(pt.Seed, pt.Params.Clone())
		if err != nil {
			t.Fatal(err)
		}
		s.Save(e, pt, res, time.Millisecond)
	}
	resumed, st2, err := exp.SweepOpts(e, g, exp.Options{Parallel: par, Cache: s, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached != len(half) || st2.Executed != g.Size()-len(half) {
		t.Fatalf("resume stats %+v, want %d cached %d executed", st2, len(half), g.Size()-len(half))
	}
	if got := emit(resumed); !bytes.Equal(got, want) {
		t.Fatal("resumed sweep output differs from the uninterrupted run")
	}

	// Cache-warm re-run: every cell served from the store.
	warm, st3, err := exp.SweepOpts(e, g, exp.Options{Parallel: par, Cache: s, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Executed != 0 || st3.Cached != g.Size() {
		t.Fatalf("warm re-run stats %+v, want 0 executed %d cached", st3, g.Size())
	}
	if got := emit(warm); !bytes.Equal(got, want) {
		t.Fatal("cache-warm sweep output differs from the uninterrupted run")
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

// fairGoldConfig is a two-class dumbbell where both classes offer 40 of
// the bottleneck's 48 Mbit/s — both stay backlogged, so the scheduler
// alone decides the split. Under wfq (weights 4:1) the weight-normalized
// throughputs equalize and Jain's index approaches 1; under fifo both
// classes get roughly equal service, which against 4:1 weights scores
// (6+24)²/(2·(6²+24²)) ≈ 0.74.
func fairGoldConfig(t *testing.T, sched string) *Config {
	t.Helper()
	// 8 virtual seconds even under -short: the first couple of seconds
	// are slow-start transient, and a shorter window leaves the fifo
	// baseline's split too noisy to bound.
	horizon := "8s"
	cfg, err := Parse([]byte(`{
	  "name": "fairgold",
	  "base": {
	    "rtt": "40ms",
	    "horizon": "` + horizon + `",
	    "links": [{"name": "bn", "rate": "48e6", "delay": "20ms"}],
	    "hosts": [{"name": "edge"}],
	    "classes": [
	      {"name": "interactive", "port": "8443", "weight": "4"},
	      {"name": "bulk", "port": "80", "weight": "1"}
	    ],
	    "bundles": [{"host": "edge", "sched": "` + sched + `"}],
	    "workloads": [
	      {"host": "edge", "kind": "web", "class": "interactive", "load": "40e6", "requests": "100000"},
	      {"host": "edge", "kind": "web", "class": "bulk", "load": "40e6", "requests": "100000"}
	    ]
	  },
	  "runs": [{"label": "run"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestFairnessGoldenJainDelta pins the fairness report end to end: an
// unfair FIFO cell against a WFQ cell of the same scenario must show a
// large Jain's-index gap, and bundler-report's results diff must
// surface that gap as a finding on the jain metric.
func TestFairnessGoldenJainDelta(t *testing.T) {
	run := func(sched string) exp.Result {
		res, err := Experiment(fairGoldConfig(t, sched)).Run(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo, wfq := run("fifo"), run("wfq")

	fifoJain := fifo.Metric("run/fair-edge/jain")
	wfqJain := wfq.Metric("run/fair-edge/jain")
	if !(wfqJain > 0.95) {
		t.Errorf("wfq jain = %v, want > 0.95 (weight-proportional service)", wfqJain)
	}
	if !(fifoJain < 0.85) {
		t.Errorf("fifo jain = %v, want < 0.85 (equal service under 4:1 weights)", fifoJain)
	}
	// The weighted split itself: interactive holds about 4/5 of the link
	// under wfq. The band here is looser than the 5% the qdisc-level
	// tests pin because endhost congestion control moves the offered
	// load: bulk's flows keep backing off from drops, so interactive
	// picks up some of the slack beyond its 0.8 guarantee.
	if share := wfq.Metric("run/fair-edge/interactive/share"); math.Abs(share-0.8) > 0.1 {
		t.Errorf("wfq interactive share = %v, want 0.8 ± 0.1", share)
	}

	// The diff surfaces the gap: comparing the fifo baseline against the
	// wfq run (same experiment, seed, and params, so the cells match)
	// must flag the jain metric beyond a 5% tolerance.
	r := report.DiffResults([]exp.Result{fifo}, []exp.Result{wfq}, report.Options{MetricTol: 0.05})
	var found *report.Finding
	for i, f := range r.Findings {
		if f.Metric == "run/fair-edge/jain" {
			found = &r.Findings[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no jain finding in diff: %+v", r.Findings)
	}
	if found.Severity != "fail" || found.DeltaPct == nil || *found.DeltaPct < 5 {
		t.Fatalf("jain finding %+v, want severity=fail with delta > 5%%", found)
	}
	var w strings.Builder
	if err := r.WriteText(&w); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.String(), "jain") {
		t.Fatalf("bundler-report output lacks the jain finding:\n%s", w.String())
	}
}
