// Package perf is the reproducible performance harness: it runs
// registry experiments under the testing.Benchmark machinery, prices
// them in ns and allocations per simulated packet (using the packet
// pool's counters), and emits a JSON trajectory file (the committed
// BENCH_main.json baseline) that optimization PRs re-emit and that
// cmd/bundler-report diffs against in CI's bench-gate job.
//
// Two entry points exist: the benchmarks in bench_test.go (so plain
// `go test -bench` works, with b.ReportAllocs wired), and
// cmd/bundler-bench's -bench-out flag, which runs the same cases
// programmatically and writes the JSON file.
package perf

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime/debug"
	"sort"
	"sync"
	"testing"

	"bundler/internal/exp"
	"bundler/internal/pkt"
	_ "bundler/internal/scenario" // registers every experiment
)

// Case is one benchmarkable experiment configuration. Scales match the
// root-level benchmarks so numbers are comparable across both entry
// points and across PRs.
type Case struct {
	// Name follows Go benchmark naming (BenchmarkFig09FCT) so -bench
	// filters and the JSON trajectory use the same identifiers.
	Name string
	// Exp and Params select the registry experiment to run.
	Exp    string
	Seed   int64
	Params exp.Params
	// Users is the total emulated background user count the case carries
	// (the fluid aggregates' user sum across sites); nonzero cases form
	// the memory-per-user axis, where bytes/op ÷ Users must stay flat or
	// fall as Users grows — the hybrid simulation's O(1)-per-user
	// contract, gated by cmd/bundler-report.
	Users float64
}

// Cases returns the benchmark suite in a fixed order. The mesh cases are
// the scale-out axis: total request count is held near-constant (~3360
// flows per variant) while the site count doubles, so ns/op prices the
// same workload against a quadratically growing bundle population —
// per-site overhead shows up directly, and allocs/op growing
// sub-linearly in site count is the pooled hot path's contract. Each
// scale runs twice on the shards axis: pinned to one shard (the serial
// reference, comparable across PRs regardless of host core count) and
// at shards=auto (= GOMAXPROCS outside a sweep), where ns/packet
// staying flat or falling 16→64 sites is the sharded engine's contract.
func Cases() []Case {
	meshParams := func(sites, requests, shards string) exp.Params {
		return exp.Params{"sites": sites, "requests": requests, "perturb": "500ms", "shards": shards}
	}
	return []Case{
		{Name: "BenchmarkFig09FCT", Exp: "fig9", Seed: 1, Params: exp.Params{"requests": "15000"}},
		{Name: "BenchmarkFig05RateAccuracy", Exp: "fig56", Seed: 1, Params: exp.Params{"dur": "20s"}},
		{Name: "BenchmarkFig10CrossTraffic", Exp: "fig10", Seed: 1, Params: nil},
		{Name: "BenchmarkMesh02Sites", Exp: "mesh", Seed: 1, Params: meshParams("2", "1680", "1")},
		{Name: "BenchmarkMesh04Sites", Exp: "mesh", Seed: 1, Params: meshParams("4", "280", "1")},
		{Name: "BenchmarkMesh08Sites", Exp: "mesh", Seed: 1, Params: meshParams("8", "60", "1")},
		// Each scale's serial reference and shards=auto run are adjacent,
		// so slow measurement drift over a long suite run (heap growth,
		// thermal state) lands on both sides of the pinned-vs-auto
		// comparison rather than on one.
		{Name: "BenchmarkMesh16Sites", Exp: "mesh", Seed: 1, Params: meshParams("16", "14", "1")},
		{Name: "BenchmarkMesh16SitesShardsAuto", Exp: "mesh", Seed: 1, Params: meshParams("16", "14", "0")},
		{Name: "BenchmarkMesh32Sites", Exp: "mesh", Seed: 1, Params: meshParams("32", "3", "1")},
		{Name: "BenchmarkMesh32SitesShardsAuto", Exp: "mesh", Seed: 1, Params: meshParams("32", "3", "0")},
		{Name: "BenchmarkMesh64Sites", Exp: "mesh", Seed: 1, Params: meshParams("64", "1", "1")},
		{Name: "BenchmarkMesh64SitesShardsAuto", Exp: "mesh", Seed: 1, Params: meshParams("64", "1", "0")},
		// The emulated-user axis: the same 2-site mesh under a 10× step in
		// fluid background users. The foreground workload, packet count,
		// and sketch-mode recorders are identical across the pair, so
		// bytes/op ÷ users falling ~10× is the fluid model's
		// O(1)-state-per-user contract made measurable; bundler-report
		// fails the gate if bytes-per-user grows instead (super-linear
		// memory in the user count).
		{Name: "BenchmarkMeshBg010kUsers", Exp: "mesh", Seed: 1, Users: 2e4,
			Params: exp.Params{"sites": "2", "mode": "pairwise", "requests": "30", "shards": "1", "users": "10000"}},
		{Name: "BenchmarkMeshBg100kUsers", Exp: "mesh", Seed: 1, Users: 2e5,
			Params: exp.Params{"sites": "2", "mode": "pairwise", "requests": "30", "shards": "1", "users": "100000"}},
	}
}

// Run executes the case once, returning the number of packets the
// simulation sent (pool Gets) during the run. It is the body both
// benchmark entry points share.
func (c Case) Run() (packets int64, err error) {
	e, ok := exp.Lookup(c.Exp)
	if !ok {
		return 0, fmt.Errorf("perf: experiment %q not registered", c.Exp)
	}
	before := pkt.Stats().Gets
	if _, err := e.Run(c.Seed, c.Params); err != nil {
		return 0, err
	}
	return pkt.Stats().Gets - before, nil
}

// Record is one benchmark measurement. Per-packet figures divide by the
// number of packets the simulation sent during the run — the unit the
// ROADMAP's "scenario-seconds per wall-second" goal decomposes into.
type Record struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	Packets         float64 `json:"packets_per_op,omitempty"`
	NsPerPacket     float64 `json:"ns_per_packet,omitempty"`
	AllocsPerPacket float64 `json:"allocs_per_packet,omitempty"`
	// Users and BytesPerUser form the memory-per-emulated-user axis:
	// cases carrying fluid background users report bytes/op ÷ Users, and
	// the report gate requires the figure to stay flat or fall as Users
	// grows across same-prefix cases.
	Users        float64 `json:"users,omitempty"`
	BytesPerUser float64 `json:"bytes_per_user,omitempty"`
}

// Baseline is the pre-optimization state of the suite, measured at the
// start of this PR (seed commit efe98c3, go1.24, -benchtime=1x) before
// the packet/event pooling landed. It is frozen here so the emitted
// file always carries its own point of comparison; per-packet figures
// are absent because the packet counters did not exist yet.
var Baseline = []Record{
	{Name: "BenchmarkFig09FCT", NsPerOp: 4715743754, BytesPerOp: 636891008, AllocsPerOp: 12514979},
	{Name: "BenchmarkFig05RateAccuracy", NsPerOp: 3466611804, BytesPerOp: 923645360, AllocsPerOp: 16788464},
	{Name: "BenchmarkFig10CrossTraffic", NsPerOp: 7990156867, BytesPerOp: 1516990256, AllocsPerOp: 29317809},
}

// benchInit raises the benchmark target time for Measure's
// testing.Benchmark runs from the 1s default to 2s, so each repetition
// averages over more iterations (GC cycles land mid-iteration instead
// of deciding a whole measurement). It only applies when the testing
// flags are not already registered — i.e. in cmd/bundler-bench; inside
// a `go test` binary the user's own -benchtime stays in charge.
var benchInit sync.Once

func setBenchTime() {
	if flag.Lookup("test.benchtime") != nil {
		return
	}
	testing.Init()
	flag.Set("test.benchtime", "2s")
}

// measureReps is how many independent testing.Benchmark repetitions
// Measure takes per case. The fastest repetition is reported: the
// simulation is deterministic, so allocation figures are identical
// across repetitions and wall time differs only by GC phase and OS
// scheduling noise — the minimum is the standard low-variance
// estimator of the true cost (what benchstat's documentation calls
// out for -count runs).
const measureReps = 3

// Measure benchmarks one case with the testing machinery (which
// handles iteration count and alloc accounting) and derives the
// per-packet figures. It repeats the measurement measureReps times and
// keeps the fastest, so the committed trajectory compares costs rather
// than scheduler luck.
func Measure(c Case) (Record, error) {
	benchInit.Do(setBenchTime)
	var best Record
	for rep := 0; rep < measureReps; rep++ {
		// Start every repetition from a collected, OS-returned heap:
		// without this, a case's wall time depends on how much garbage
		// the *previous* cases left behind (suite-order bias — the last
		// benchmarks in a long run read systematically slow).
		debug.FreeOSMemory()
		var packets int64
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			packets = 0
			for i := 0; i < b.N; i++ {
				n, err := c.Run()
				if err != nil {
					runErr = err
					b.Fatal(err)
				}
				packets += n
			}
		})
		if runErr != nil {
			return Record{}, fmt.Errorf("%s: %w", c.Name, runErr)
		}
		r := Record{
			Name:        c.Name,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
		}
		if res.N > 0 && packets > 0 {
			r.Packets = float64(packets) / float64(res.N)
			r.NsPerPacket = float64(res.T.Nanoseconds()) / float64(packets)
			r.AllocsPerPacket = float64(res.MemAllocs) / float64(packets)
		}
		if c.Users > 0 {
			r.Users = c.Users
			r.BytesPerUser = r.BytesPerOp / c.Users
		}
		if rep == 0 || r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best, nil
}

// MeasureAll benchmarks every case whose name matches filter (nil
// matches all), reporting progress through logf (may be nil).
func MeasureAll(filter *regexp.Regexp, logf func(format string, args ...any)) ([]Record, error) {
	var out []Record
	for _, c := range Cases() {
		if filter != nil && !filter.MatchString(c.Name) {
			continue
		}
		if logf != nil {
			logf("bench: running %s", c.Name)
		}
		r, err := Measure(c)
		if err != nil {
			return out, err
		}
		if logf != nil {
			logf("bench: %s  %.0f ns/op  %.0f allocs/op  %.1f ns/pkt  %.3f allocs/pkt",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.NsPerPacket, r.AllocsPerPacket)
		}
		out = append(out, r)
	}
	return out, nil
}

// File is the on-disk trajectory format: the frozen pre-PR baseline
// next to the current measurements, so a single artifact shows the
// delta this PR (and, as later PRs re-emit it, each successive PR)
// bought.
type File struct {
	Note     string   `json:"note"`
	Baseline []Record `json:"baseline"`
	Current  []Record `json:"current"`
}

// ReadFile parses a trajectory file previously written by WriteJSON —
// how cmd/bundler-report loads the committed baseline and a fresh
// emission to diff them.
func ReadFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("perf: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return f, nil
}

// GoBenchLine renders the record in `go test -bench` result format, the
// machine-parseable line -bench-out prints to stdout (logs and progress
// stay on stderr, so CI can parse stdout alone).
func (r Record) GoBenchLine() string {
	return fmt.Sprintf("%s\t%8d ns/op\t%8d B/op\t%8d allocs/op",
		r.Name, int64(r.NsPerOp), int64(r.BytesPerOp), int64(r.AllocsPerOp))
}

// WriteJSON emits the trajectory file for the given current records,
// sorted by name for deterministic output.
func WriteJSON(w io.Writer, current []Record) error {
	f := File{
		Note: "simulation hot-path benchmarks; baseline = pre-pooling (PR 2 start), " +
			"regenerate with: go run ./cmd/bundler-bench -bench-out BENCH_main.json",
		Baseline: append([]Record(nil), Baseline...),
		Current:  append([]Record(nil), current...),
	}
	sort.Slice(f.Baseline, func(i, j int) bool { return f.Baseline[i].Name < f.Baseline[j].Name })
	sort.Slice(f.Current, func(i, j int) bool { return f.Current[i].Name < f.Current[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
