package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// benchCase runs one suite case under the standard benchmark driver:
//
//	go test ./internal/perf -run '^$' -bench Fig09 -benchtime 1x
func benchCase(b *testing.B, name string) {
	for _, c := range Cases() {
		if c.Name != name {
			continue
		}
		b.ReportAllocs()
		var packets int64
		for i := 0; i < b.N; i++ {
			n, err := c.Run()
			if err != nil {
				b.Fatal(err)
			}
			packets += n
		}
		b.ReportMetric(float64(packets)/float64(b.N), "packets/op")
		return
	}
	b.Fatalf("no case named %s", name)
}

func BenchmarkFig09FCT(b *testing.B)          { benchCase(b, "BenchmarkFig09FCT") }
func BenchmarkFig05RateAccuracy(b *testing.B) { benchCase(b, "BenchmarkFig05RateAccuracy") }
func BenchmarkFig10CrossTraffic(b *testing.B) { benchCase(b, "BenchmarkFig10CrossTraffic") }
func BenchmarkMesh02Sites(b *testing.B)       { benchCase(b, "BenchmarkMesh02Sites") }
func BenchmarkMesh04Sites(b *testing.B)       { benchCase(b, "BenchmarkMesh04Sites") }
func BenchmarkMesh08Sites(b *testing.B)       { benchCase(b, "BenchmarkMesh08Sites") }
func BenchmarkMesh16Sites(b *testing.B)       { benchCase(b, "BenchmarkMesh16Sites") }
func BenchmarkMesh32Sites(b *testing.B)       { benchCase(b, "BenchmarkMesh32Sites") }
func BenchmarkMesh64Sites(b *testing.B)       { benchCase(b, "BenchmarkMesh64Sites") }

func BenchmarkMesh16SitesShardsAuto(b *testing.B) { benchCase(b, "BenchmarkMesh16SitesShardsAuto") }
func BenchmarkMesh32SitesShardsAuto(b *testing.B) { benchCase(b, "BenchmarkMesh32SitesShardsAuto") }
func BenchmarkMesh64SitesShardsAuto(b *testing.B) { benchCase(b, "BenchmarkMesh64SitesShardsAuto") }

func BenchmarkMeshBg010kUsers(b *testing.B) { benchCase(b, "BenchmarkMeshBg010kUsers") }
func BenchmarkMeshBg100kUsers(b *testing.B) { benchCase(b, "BenchmarkMeshBg100kUsers") }

// TestBaselineMatchesSuite pins the baseline table to the suite: every
// baseline entry must name a live case (a renamed benchmark would
// otherwise silently orphan its point of comparison).
func TestBaselineMatchesSuite(t *testing.T) {
	known := map[string]bool{}
	for _, c := range Cases() {
		known[c.Name] = true
	}
	for _, r := range Baseline {
		if !known[r.Name] {
			t.Errorf("baseline entry %q has no matching benchmark case", r.Name)
		}
		if r.AllocsPerOp <= 0 || r.NsPerOp <= 0 {
			t.Errorf("baseline entry %q has non-positive measurements", r.Name)
		}
	}
}

// TestWriteJSON checks the trajectory file shape without running any
// benchmark: baseline present, current sorted, valid JSON.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	current := []Record{
		{Name: "BenchmarkZZZ", NsPerOp: 2, AllocsPerOp: 1},
		{Name: "BenchmarkAAA", NsPerOp: 1, AllocsPerOp: 1},
	}
	if err := WriteJSON(&buf, current); err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("emitted file is not valid JSON: %v", err)
	}
	if len(f.Baseline) != len(Baseline) {
		t.Errorf("baseline not embedded: got %d entries, want %d", len(f.Baseline), len(Baseline))
	}
	if len(f.Current) != 2 || f.Current[0].Name != "BenchmarkAAA" {
		t.Errorf("current not sorted by name: %+v", f.Current)
	}
	if !strings.Contains(f.Note, "bench-out") {
		t.Errorf("note should say how to regenerate; got %q", f.Note)
	}
}

// TestMeasureSmoke runs the cheapest case end to end through Measure at
// a tiny scale, checking the per-packet derivation.
func TestMeasureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke is slow; skipped under -short")
	}
	c := Case{Name: "BenchmarkSmoke", Exp: "fct", Seed: 1,
		Params: map[string]string{"requests": "200"}}
	r, err := Measure(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets <= 0 {
		t.Fatalf("expected simulated packets to be counted, got %v", r.Packets)
	}
	if r.NsPerPacket <= 0 {
		t.Fatalf("ns/packet not derived: %+v", r)
	}
}
