// Package workload generates the paper's evaluation traffic: request sizes
// drawn from a heavy-tailed empirical CDF measured at an Internet core
// router (§7.1 — 97.6 % of requests ≤ 10 KB, the largest 0.002 % between
// 5 MB and 100 MB), open-loop Poisson arrivals at a configured offered
// load, and flow-completion-time bookkeeping with the paper's "slowdown"
// metric (FCT divided by the unloaded completion time). Flow sizes are
// bytes, offered loads are bits/second, completion times are clock.Time
// (recorded in milliseconds).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"bundler/internal/clock"
	"bundler/internal/pkt"
	"bundler/internal/stats"
)

// SizeDist is a piecewise log-linear empirical CDF over flow sizes in
// bytes.
type SizeDist struct {
	sizes []float64 // strictly increasing
	probs []float64 // strictly increasing, ends at 1
}

// NewSizeDist builds a distribution from (size, cumulative probability)
// points. The first point's probability bounds the smallest sizes; the
// last probability must be 1. It panics on invalid points; code paths
// fed by user-supplied config files use MakeSizeDist instead.
func NewSizeDist(sizes, probs []float64) *SizeDist {
	d, err := MakeSizeDist(sizes, probs)
	if err != nil {
		panic("workload: " + err.Error())
	}
	return d
}

// MakeSizeDist is NewSizeDist returning an error instead of panicking —
// the entry point for internal/topo's declarative configs, where a bad
// CDF is user input, not a programming error.
func MakeSizeDist(sizes, probs []float64) (*SizeDist, error) {
	if len(sizes) != len(probs) || len(sizes) < 2 {
		return nil, fmt.Errorf("need matching size/prob points (got %d sizes, %d probs)", len(sizes), len(probs))
	}
	if sizes[0] <= 0 {
		return nil, fmt.Errorf("sizes must be positive (got %g)", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] || probs[i] <= probs[i-1] {
			return nil, fmt.Errorf("CDF points must be strictly increasing (point %d)", i)
		}
	}
	if probs[len(probs)-1] != 1 {
		return nil, fmt.Errorf("CDF must end at probability 1 (got %g)", probs[len(probs)-1])
	}
	return &SizeDist{sizes: sizes, probs: probs}, nil
}

// NamedDist returns a built-in size distribution: "web" (or "") is the
// paper's §7.1 core-router request CDF.
func NamedDist(name string) (*SizeDist, error) {
	switch name {
	case "", "web":
		return PaperWebCDF(), nil
	default:
		return nil, fmt.Errorf("unknown size distribution %q (want \"web\" or inline sizes/probs)", name)
	}
}

// PaperWebCDF reproduces the shape of the request-size CDF the paper draws
// from a CAIDA core-router trace: mostly-tiny requests with a tail to
// 100 MB. Quoted anchors: 97.6 % ≤ 10 KB; largest 0.002 % in 5–100 MB.
func PaperWebCDF() *SizeDist {
	return NewSizeDist(
		[]float64{100, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 5 << 20, 100 << 20},
		[]float64{0.30, 0.65, 0.976, 0.990, 0.9985, 0.99998, 1.0},
	)
}

// Sample draws one flow size.
func (d *SizeDist) Sample(r *rand.Rand) int64 {
	u := r.Float64()
	if u <= d.probs[0] {
		return int64(d.sizes[0])
	}
	for i := 1; i < len(d.probs); i++ {
		if u <= d.probs[i] {
			// Log-linear interpolation within the segment.
			frac := (u - d.probs[i-1]) / (d.probs[i] - d.probs[i-1])
			lo, hi := d.sizes[i-1], d.sizes[i]
			return int64(lo * math.Pow(hi/lo, frac))
		}
	}
	return int64(d.sizes[len(d.sizes)-1])
}

// Mean returns the exact distribution mean in bytes (log-mean per
// segment).
func (d *SizeDist) Mean() float64 {
	mean := d.probs[0] * d.sizes[0]
	for i := 1; i < len(d.probs); i++ {
		p := d.probs[i] - d.probs[i-1]
		lo, hi := d.sizes[i-1], d.sizes[i]
		mean += p * (hi - lo) / math.Log(hi/lo)
	}
	return mean
}

// Arrivals schedules fn for n Poisson arrivals whose mean rate sustains
// offeredBps of load given the distribution's mean flow size. fn receives
// the drawn flow size. Arrival times use the engine's deterministic RNG.
func Arrivals(eng clock.Clock, d *SizeDist, offeredBps float64, n int, fn func(size int64)) {
	if offeredBps <= 0 || n <= 0 {
		panic("workload: offered load and request count must be positive")
	}
	lambda := offeredBps / 8 / d.Mean() // requests per second
	var schedule func(i int, at clock.Time)
	schedule = func(i int, at clock.Time) {
		if i >= n {
			return
		}
		clock.At(eng, at, func() {
			fn(d.Sample(eng.Rand()))
			gap := clock.FromSeconds(eng.Rand().ExpFloat64() / lambda)
			schedule(i+1, eng.Now()+gap)
		})
	}
	first := eng.Now() + clock.FromSeconds(eng.Rand().ExpFloat64()/lambda)
	schedule(0, first)
}

// OracleFCT estimates a request's completion time on an unloaded path:
// slow-start round trips from a 10-segment initial window plus
// transmission time. This is the denominator of the paper's slowdown
// metric.
func OracleFCT(size int64, linkRate float64, rtt clock.Time) clock.Time {
	iw := int64(10 * pkt.MSS)
	rtts := 1
	for sent := iw; sent < size; sent = sent*2 + iw {
		rtts++
	}
	tx := clock.FromSeconds(float64(size) * 8 / linkRate)
	return clock.Time(rtts)*rtt + tx
}

// SizeClass buckets flows the way Figure 9 groups them.
type SizeClass int

// Figure 9's request-size groups.
const (
	ClassSmall  SizeClass = iota // ≤ 10 KB
	ClassMedium                  // 10 KB – 1 MB
	ClassLarge                   // > 1 MB
)

func (c SizeClass) String() string {
	switch c {
	case ClassSmall:
		return "(0, 10KB]"
	case ClassMedium:
		return "(10KB, 1MB]"
	case ClassLarge:
		return "(1MB, inf)"
	}
	return "?"
}

// ClassOf buckets a size.
func ClassOf(size int64) SizeClass {
	switch {
	case size <= 10<<10:
		return ClassSmall
	case size <= 1<<20:
		return ClassMedium
	default:
		return ClassLarge
	}
}

// Recorder accumulates per-flow completion results.
type Recorder struct {
	linkRate float64
	rtt      clock.Time

	// Class tags the recorder with the scheduler traffic class its flows
	// belong to ("" when the scenario declares no classes). The topo
	// layer sets it when a workload is class-assigned, so per-class
	// application goodput can sit next to the scheduler-level fairness
	// figures in reports.
	Class string
	// Slowdowns holds FCT/oracle per completed flow.
	Slowdowns stats.Sample
	// FCTms holds raw completion times in milliseconds.
	FCTms stats.Sample
	// ByClass splits slowdowns by Figure 9's size groups.
	ByClass [3]stats.Sample
	// FCTByClass holds raw completion times (ms) per size group; the
	// §7.5 proxy comparison uses these because its ramp-up savings push
	// slowdowns below the metric's floor of 1.
	FCTByClass [3]stats.Sample
	// Completed counts finished flows; Bytes sums their sizes.
	Completed int
	Bytes     int64
}

// NewRecorder builds a recorder that normalizes against the given unloaded
// path parameters.
func NewRecorder(linkRate float64, rtt clock.Time) *Recorder {
	return &Recorder{linkRate: linkRate, rtt: rtt}
}

// Reserve pre-sizes the recorder's sample buffers for n expected flows,
// batching what would otherwise be grow-on-Add reallocation during the
// run. The per-class samples are sized by the web CDF's class shares
// (97.6 % small) with headroom, since exact splits are seed-dependent.
// Tiny workloads are left to grow on Add: below a few dozen flows the
// eight reservation allocations cost more than the appends they would
// save, and a large mesh carries one recorder per ordered site pair —
// thousands of them, most seeing a handful of flows each.
func (r *Recorder) Reserve(n int) {
	if n < 32 {
		return
	}
	r.Slowdowns.Reserve(n)
	r.FCTms.Reserve(n)
	small := n
	medium := n/16 + 16
	large := n/256 + 16
	for c, want := range [3]int{small, medium, large} {
		r.ByClass[c].Reserve(want)
		r.FCTByClass[c].Reserve(want)
	}
}

// UseSketch switches every sample the recorder holds to bounded sketch
// mode (see the accuracy contract in internal/stats/sketch.go): memory
// per recorder becomes independent of the flow count, and Merge folds
// bucket maps instead of concatenating slices. Mesh-scale runs with
// emulated-user background load switch their recorders before the first
// flow completes.
func (r *Recorder) UseSketch() {
	r.Slowdowns.UseSketch()
	r.FCTms.UseSketch()
	for c := range r.ByClass {
		r.ByClass[c].UseSketch()
		r.FCTByClass[c].UseSketch()
	}
}

// RecordUncounted marks a flow complete without contributing to the
// statistics — used for warmup traffic that loads the network while the
// control loops converge.
func (r *Recorder) RecordUncounted() { r.Completed++ }

// Record registers one completed flow.
func (r *Recorder) Record(size int64, fct clock.Time) {
	oracle := OracleFCT(size, r.linkRate, r.rtt)
	slow := float64(fct) / float64(oracle)
	if slow < 1 {
		slow = 1
	}
	r.Slowdowns.Add(slow)
	r.FCTms.Add(fct.Millis())
	r.ByClass[ClassOf(size)].Add(slow)
	r.FCTByClass[ClassOf(size)].Add(fct.Millis())
	r.Completed++
	r.Bytes += size
}

// Merge folds another recorder's completed-flow statistics into r — how
// the mesh experiments aggregate per-destination-pair recorders into one
// site-to-site table row. Both recorders' samples are already normalized
// slowdowns/times, so merging is pure concatenation; o is left untouched.
func (r *Recorder) Merge(o *Recorder) {
	r.Slowdowns.AddSample(&o.Slowdowns)
	r.FCTms.AddSample(&o.FCTms)
	for c := range r.ByClass {
		r.ByClass[c].AddSample(&o.ByClass[c])
		r.FCTByClass[c].AddSample(&o.FCTByClass[c])
	}
	r.Completed += o.Completed
	r.Bytes += o.Bytes
}
