package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bundler/internal/sim"
)

func TestPaperCDFShapeMatchesQuotedAnchors(t *testing.T) {
	d := PaperWebCDF()
	r := rand.New(rand.NewSource(1))
	const n = 200000
	small, huge := 0, 0
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s <= 10<<10 {
			small++
		}
		if s > 5<<20 {
			huge++
		}
	}
	fracSmall := float64(small) / n
	if math.Abs(fracSmall-0.976) > 0.01 {
		t.Fatalf("fraction ≤ 10KB = %.4f, want ≈ 0.976", fracSmall)
	}
	fracHuge := float64(huge) / n
	if fracHuge > 0.001 {
		t.Fatalf("fraction > 5MB = %.5f, want ≈ 0.00002", fracHuge)
	}
}

func TestSampleWithinBounds(t *testing.T) {
	d := PaperWebCDF()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		s := d.Sample(r)
		if s < 100 || s > 100<<20 {
			t.Fatalf("sample %d outside [100, 100MB]", s)
		}
	}
}

func TestMeanMatchesEmpirical(t *testing.T) {
	d := PaperWebCDF()
	analytic := d.Mean()
	r := rand.New(rand.NewSource(3))
	var sum float64
	const n = 2_000_000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	emp := sum / n
	if math.Abs(emp-analytic)/analytic > 0.15 {
		t.Fatalf("empirical mean %.0f vs analytic %.0f (>15%% apart)", emp, analytic)
	}
}

func TestNewSizeDistValidation(t *testing.T) {
	cases := [][2][]float64{
		{{1}, {1}},            // too few points
		{{2, 1}, {0.5, 1}},    // sizes not increasing
		{{1, 2}, {0.9, 0.5}},  // probs not increasing
		{{1, 2}, {0.5, 0.9}},  // does not end at 1
		{{1, 2, 3}, {0.5, 1}}, // length mismatch
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			NewSizeDist(c[0], c[1])
		}()
	}
}

func TestArrivalsRateAndCount(t *testing.T) {
	eng := sim.NewEngine(7)
	d := PaperWebCDF()
	const n = 5000
	var count int
	var bytes int64
	Arrivals(eng, d, 84e6, n, func(size int64) {
		count++
		bytes += size
	})
	eng.Run()
	if count != n {
		t.Fatalf("generated %d arrivals, want %d", count, n)
	}
	// Offered load over the generation horizon ≈ 84 Mbit/s.
	dur := eng.Now().Seconds()
	load := float64(bytes) * 8 / dur
	if load < 0.5*84e6 || load > 2.0*84e6 {
		t.Fatalf("offered load %.1f Mbit/s over %.1fs, want ≈ 84 (heavy tail makes this noisy)", load/1e6, dur)
	}
}

func TestArrivalsDeterministicPerSeed(t *testing.T) {
	run := func() []int64 {
		eng := sim.NewEngine(42)
		var sizes []int64
		Arrivals(eng, PaperWebCDF(), 10e6, 100, func(s int64) { sizes = append(sizes, s) })
		eng.Run()
		return sizes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestOracleFCT(t *testing.T) {
	rtt := 50 * sim.Millisecond
	// A 1-byte flow: 1 RTT + ~0 transmission.
	if got := OracleFCT(1, 96e6, rtt); got < rtt || got > rtt+sim.Millisecond {
		t.Fatalf("oracle for tiny flow = %v, want ≈ 1 RTT", got)
	}
	// 10 KB fits in the initial window: still 1 RTT.
	if got := OracleFCT(10<<10, 96e6, rtt); got < rtt || got > rtt+2*sim.Millisecond {
		t.Fatalf("oracle for 10KB = %v, want ≈ 1 RTT", got)
	}
	// 100 KB needs slow start: more than one RTT.
	if got := OracleFCT(100<<10, 96e6, rtt); got <= rtt+8*sim.Millisecond {
		t.Fatalf("oracle for 100KB = %v, want > 1 RTT", got)
	}
	// Monotone in size.
	prev := sim.Time(0)
	for _, s := range []int64{1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20} {
		got := OracleFCT(s, 96e6, rtt)
		if got < prev {
			t.Fatalf("oracle not monotone at %d", s)
		}
		prev = got
	}
}

func TestClassOf(t *testing.T) {
	cases := map[int64]SizeClass{
		100:       ClassSmall,
		10 << 10:  ClassSmall,
		11 << 10:  ClassMedium,
		1 << 20:   ClassMedium,
		2 << 20:   ClassLarge,
		100 << 20: ClassLarge,
	}
	for size, want := range cases {
		if got := ClassOf(size); got != want {
			t.Fatalf("ClassOf(%d) = %v, want %v", size, got, want)
		}
	}
	for _, c := range []SizeClass{ClassSmall, ClassMedium, ClassLarge} {
		if c.String() == "?" {
			t.Fatal("missing class name")
		}
	}
}

func TestRecorderSlowdownFloorsAtOne(t *testing.T) {
	rec := NewRecorder(96e6, 50*sim.Millisecond)
	rec.Record(1000, sim.Millisecond) // impossibly fast: floor to 1
	if got := rec.Slowdowns.Median(); got != 1 {
		t.Fatalf("slowdown = %v, want floor of 1", got)
	}
	rec.Record(1000, 500*sim.Millisecond) // 10x the oracle
	if rec.Completed != 2 || rec.Bytes != 2000 {
		t.Fatalf("recorder counts wrong: %d/%d", rec.Completed, rec.Bytes)
	}
	if rec.ByClass[ClassSmall].N() != 2 {
		t.Fatal("class bucketing missed")
	}
}

// Property: sampled sizes follow the CDF (Kolmogorov-style spot check at
// each anchor point).
func TestPropertyCDFAnchors(t *testing.T) {
	f := func(seed int64) bool {
		d := PaperWebCDF()
		r := rand.New(rand.NewSource(seed))
		const n = 20000
		at1KB := 0
		for i := 0; i < n; i++ {
			if d.Sample(r) <= 1<<10 {
				at1KB++
			}
		}
		frac := float64(at1KB) / n
		return math.Abs(frac-0.65) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
