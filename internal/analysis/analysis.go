// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface that bundler-vet's
// invariant checkers are written against. The container this repository
// grows in has no module proxy access, so the real x/tools framework is
// unavailable; this package keeps the same shape (Analyzer, Pass,
// Diagnostic, Reportf) so the analyzers could migrate to the upstream
// framework by changing only imports.
//
// The framework is deliberately small: one package at a time, no
// cross-analyzer facts, no suggested fixes. Each Analyzer receives a
// fully type-checked package (see internal/analysis/load) and reports
// diagnostics through its Pass. Diagnostics are pure data; the driver
// (cmd/bundler-vet) and the test harness (internal/analysis/analysistest)
// decide presentation and exit status.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named invariant check. Run inspects the package in
// pass and reports violations via pass.Report/Reportf. Run returns an
// error only for operational failures (the check itself could not run);
// findings are diagnostics, not errors.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in bundler-vet's
	// -only flag. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run performs the check on a single package.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run (diagnostic attribution).
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet
	// Files are the package's parsed source files (no test files).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression types, uses, and
	// definitions for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
