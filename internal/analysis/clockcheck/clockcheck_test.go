package clockcheck_test

import (
	"testing"

	"bundler/internal/analysis/analysistest"
	"bundler/internal/analysis/clockcheck"
)

func TestClockcheckGolden(t *testing.T) {
	analysistest.Run(t, "testdata", clockcheck.Analyzer, "bundle", "notsim")
}

// TestExempt pins the targeting rule: package-name driven, with the
// issue's allowlist (clock itself, runstore, exp, cmd binaries).
func TestExempt(t *testing.T) {
	cases := []struct {
		name, path string
		exempt     bool
	}{
		{"bundle", "bundler/internal/bundle", false},
		{"tcp", "bundler/internal/tcp", false},
		{"shard", "bundler/internal/sim/shard", false},
		{"pilot", "bundler/internal/pilot", false},
		{"report", "bundler/internal/report", true}, // not simulation-facing
		{"clock", "bundler/internal/clock", true},   // the wall-time implementation itself
		{"runstore", "bundler/internal/runstore", true},
		{"exp", "bundler/internal/exp", true},       // sweep timing is real execution time
		{"main", "bundler/cmd/bundler-bench", true}, // process entry points
		{"sim", "cmd/whatever", true},               // cmd/ prefix without module path
	}
	for _, c := range cases {
		if got := clockcheck.Exempt(c.name, c.path); got != c.exempt {
			t.Errorf("Exempt(%q, %q) = %v, want %v", c.name, c.path, got, c.exempt)
		}
	}
}
