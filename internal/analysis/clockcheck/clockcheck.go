// Package clockcheck enforces the PR-9 clock discipline: in
// simulation-facing packages, time and randomness must flow through an
// injected clock.Clock — never the process clock or the global
// math/rand stream. A single time.Now in a qdisc or a global rand.Intn
// in a workload silently breaks seed-reproducibility and the golden
// byte-identity every regression gate in this repository rests on.
//
// The check flags calls; taking time.Now as a value (e.g. wiring it as
// the default of an injectable `now func() time.Time` field, as
// internal/runstore does) is the sanctioned seam and stays legal.
package clockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"bundler/internal/analysis"
)

// Analyzer is the clock-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc: "forbid wall-clock and global math/rand calls in simulation-facing packages; " +
		"time must flow through clock.Clock",
	Run: run,
}

// simFacing names the packages under the discipline: everything that
// runs on the simulator's virtual clock (or, for pilot, on a clock.Wall
// that must stay swappable with the engine).
var simFacing = map[string]bool{
	"bundle":   true,
	"tcp":      true,
	"ccalg":    true,
	"qdisc":    true,
	"netem":    true,
	"fluid":    true,
	"udpapp":   true,
	"workload": true,
	"scenario": true,
	"sim":      true,
	"shard":    true,
	"pilot":    true,
}

// allowFragments exempts packages by import path: the clock package is
// the wall-time implementation itself, runstore and exp time real
// execution (cache stamps, sweep durations), and cmd binaries are
// process entry points free to consult the process clock.
var allowFragments = []string{
	"internal/clock",
	"internal/runstore",
	"internal/exp",
	"/cmd/",
}

// forbiddenTime is the time-package call set that reads or schedules
// against the process clock.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// randAllowed lists the math/rand package functions that construct
// local seeded sources rather than touching the global stream.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Exempt reports whether the package escapes the discipline: not a
// simulation-facing package name, or an allowlisted import path.
// Exported so the driver and tests can probe the targeting rule
// directly.
func Exempt(name, importPath string) bool {
	if !simFacing[name] {
		return true
	}
	if strings.HasPrefix(importPath, "cmd/") {
		return true
	}
	for _, frag := range allowFragments {
		if strings.Contains(importPath, frag) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if Exempt(pass.Pkg.Name(), pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s in simulation-facing package %s: inject clock.Clock (PR-9 clock discipline)",
						fn.Name(), pass.Pkg.Name())
				}
			case "math/rand":
				if !randAllowed[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global math/rand.%s in simulation-facing package %s: draw from the clock's seeded Rand()",
						fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
