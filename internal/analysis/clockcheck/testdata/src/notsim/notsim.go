// Package report is clockcheck golden testdata for the targeting rule:
// its name is not simulation-facing, so process-clock reads here are
// legal and the analyzer must stay silent.
package report

import "time"

func stamp() time.Time { return time.Now() }
