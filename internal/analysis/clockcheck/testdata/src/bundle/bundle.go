// Package bundle is clockcheck golden testdata: it carries a
// simulation-facing package name and exercises both the forbidden call
// set and the patterns that must stay legal.
package bundle

import (
	"math/rand"
	"time"
)

func violations() {
	_ = time.Now()                  // want `time\.Now in simulation-facing package bundle`
	time.Sleep(time.Millisecond)    // want `time\.Sleep`
	<-time.After(time.Millisecond)  // want `time\.After`
	t := time.NewTimer(time.Second) // want `time\.NewTimer`
	t.Stop()
	tk := time.NewTicker(time.Second) // want `time\.NewTicker`
	tk.Stop()
	_ = time.Since(time.Time{})        // want `time\.Since`
	_ = rand.Intn(4)                   // want `global math/rand\.Intn`
	_ = rand.Float64()                 // want `global math/rand\.Float64`
	rand.Shuffle(0, func(i, j int) {}) // want `global math/rand\.Shuffle`
}

func legal() {
	// Constructors build local seeded streams; methods on them are the
	// disciplined way to draw randomness.
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(4)
	// Types, constants, and arithmetic on time.Duration are fine: the
	// discipline is about reading the process clock, not about units.
	var d time.Duration = time.Second
	_ = d * 2
	// Taking time.Now as a value is the sanctioned injection seam
	// (internal/runstore wires it as a default this way).
	now := time.Now
	_ = now
}
