package sortcmp_test

import (
	"testing"

	"bundler/internal/analysis/analysistest"
	"bundler/internal/analysis/sortcmp"
)

func TestSortcmpGolden(t *testing.T) {
	analysistest.Run(t, "testdata", sortcmp.Analyzer, "a")
}
