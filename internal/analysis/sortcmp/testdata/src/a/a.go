// Package a is sortcmp golden testdata: non-strict comparators
// (flagged) next to the strict and tie-broken idioms (legal).
package a

import "sort"

func bad(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] <= xs[j] })       // want `Slice comparator uses <=`
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] >= xs[j] }) // want `SliceStable comparator uses >=`
}

func good(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] > xs[j] })
	// A predicate, not a sort: <= is the correct check for "already
	// sorted allowing equal runs".
	_ = sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] <= xs[j] })
}

type row struct{ a, b int }

// tieBreak is the required idiom for composite keys: strict compares
// with explicit secondary fields.
func tieBreak(rows []row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].a != rows[j].a {
			return rows[i].a < rows[j].a
		}
		return rows[i].b < rows[j].b
	})
}
