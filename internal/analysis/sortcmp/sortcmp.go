// Package sortcmp guards golden byte-identity at sort call sites:
// a sort.Slice / sort.SliceStable comparator written with <= or >= is
// not a strict weak ordering. Under <=, equal elements compare "less"
// both ways, so the final order of ties depends on pivot choice and
// input permutation — two runs that build the same multiset of rows can
// emit them in different orders, silently breaking byte-identical
// goldens. Strict < (with explicit tie-break fields, as
// sim/shard.drainOutboxes does) is the only stable idiom.
package sortcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"bundler/internal/analysis"
)

// Analyzer is the comparator-strictness check.
var Analyzer = &analysis.Analyzer{
	Name: "sortcmp",
	Doc: "flag sort.Slice/sort.SliceStable comparators using <= or >=: non-strict orderings " +
		"make tie order run-dependent and break golden byte-identity",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
				return true
			}
			if fn.Name() != "Slice" && fn.Name() != "SliceStable" {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				bin, ok := m.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				if bin.Op == token.LEQ || bin.Op == token.GEQ {
					pass.Reportf(bin.OpPos,
						"%s comparator uses %s: not a strict ordering, tie order becomes run-dependent; use %s with explicit tie-breaks",
						fn.Name(), bin.Op, strictOp(bin.Op))
				}
				return true
			})
			return true
		})
	}
	return nil
}

func strictOp(op token.Token) token.Token {
	if op == token.LEQ {
		return token.LSS
	}
	return token.GTR
}
