package load

import (
	"go/types"
	"testing"
)

// TestLoadTypedPackage loads a real module package with both standard-
// library and module-internal dependencies and checks the fact tables
// the analyzers rely on are populated.
func TestLoadTypedPackage(t *testing.T) {
	pkgs, err := Load("bundler/internal/pilot")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "pilot" || p.ImportPath != "bundler/internal/pilot" {
		t.Fatalf("unexpected identity: name %q path %q", p.Name, p.ImportPath)
	}
	if len(p.Files) == 0 {
		t.Fatal("no parsed files")
	}
	if len(p.Info.Uses) == 0 || len(p.Info.Types) == 0 {
		t.Fatal("type info not populated")
	}
	// The import graph must resolve module-internal dependencies to
	// their real import paths (poolcheck keys on them).
	var sawPkt bool
	for _, imp := range p.Types.Imports() {
		if imp.Path() == "bundler/internal/pkt" {
			sawPkt = true
		}
	}
	if !sawPkt {
		t.Fatal("bundler/internal/pkt missing from pilot's imports")
	}
}

// TestLoadDeterministicOrder asserts multi-package loads come back
// sorted by import path regardless of pattern order.
func TestLoadDeterministicOrder(t *testing.T) {
	pkgs, err := Load("bundler/internal/pkt", "bundler/internal/clock")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 || pkgs[0].ImportPath != "bundler/internal/clock" || pkgs[1].ImportPath != "bundler/internal/pkt" {
		t.Fatalf("unexpected order: %v", []string{pkgs[0].ImportPath, pkgs[1].ImportPath})
	}
	var _ *types.Package = pkgs[0].Types
}

// TestLoadUnknownPattern surfaces go list failures as errors.
func TestLoadUnknownPattern(t *testing.T) {
	if _, err := Load("bundler/internal/definitely-not-a-package"); err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
}
