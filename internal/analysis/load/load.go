// Package load turns Go package patterns into fully type-checked
// packages for the analyzers, using only the standard library and the
// go command. It is the offline stand-in for x/tools' go/packages: one
// `go list -deps -json` invocation enumerates the targets and their
// whole dependency graph in one subprocess, then go/types checks
// everything from source — dependencies with IgnoreFuncBodies (only
// their exported API matters), targets with full bodies and a populated
// types.Info.
//
// The listing runs with CGO_ENABLED=0 so the standard library resolves
// to its pure-Go file sets (net's Go resolver, os/user stubs);
// typechecking cgo preambles from source is not possible without the
// cgo tool chain.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	// ImportPath is the package's import path as reported by go list.
	ImportPath string
	// Name is the package name from its source files.
	Name string
	// Dir is the directory holding the source files.
	Dir string
	// Fset positions all token.Pos values in Files.
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type-checker's fact tables for Files.
	Info *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go command and returns the matched
// packages type-checked, in deterministic (import path) order. Patterns
// follow go list syntax relative to the current directory ("./...",
// "./testdata/src/a"). Any listing or type error in a target package
// fails the load; dependency packages tolerate errors as long as their
// exported API survives (their function bodies are never checked).
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := &importer{
		fset:  fset,
		index: make(map[string]*listPkg, len(listed)),
		typed: make(map[string]*types.Package, len(listed)),
		busy:  make(map[string]bool),
	}
	for _, lp := range listed {
		imp.index[lp.ImportPath] = lp
	}

	var targets []*listPkg
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		targets = append(targets, lp)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	pkgs := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		p, err := checkTarget(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList runs one `go list -deps -json` over patterns and decodes the
// package stream, dependencies included.
func goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Name,Dir,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// checkTarget parses a target package with comments and type-checks it
// with full function bodies and fact tables.
func checkTarget(fset *token.FileSet, imp *importer, lp *listPkg) (*Package, error) {
	files, err := parseFiles(fset, lp, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var terrs []error
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := cfg.Check(lp.ImportPath, fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("load: type errors in %s: %v", lp.ImportPath, terrs[0])
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Name:       tpkg.Name(),
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

func parseFiles(fset *token.FileSet, lp *listPkg, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// importer resolves import paths against the go list graph, type-
// checking each dependency from source once, API only. It implements
// types.Importer.
type importer struct {
	fset  *token.FileSet
	index map[string]*listPkg
	typed map[string]*types.Package
	busy  map[string]bool
}

func (imp *importer) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := imp.typed[path]; ok {
		return p, nil
	}
	lp, ok := imp.index[path]
	if !ok {
		return nil, fmt.Errorf("import %q: not in the go list dependency graph", path)
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("import %q: %s", path, lp.Error.Err)
	}
	if imp.busy[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	imp.busy[path] = true
	defer delete(imp.busy, path)

	files, err := parseFiles(imp.fset, lp, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	// Dependencies only contribute their exported API: skip bodies, and
	// tolerate residual errors (e.g. assembly-backed intrinsics) as long
	// as the checker produces a usable package.
	cfg := &types.Config{
		Importer:         imp,
		IgnoreFuncBodies: true,
		Error:            func(error) {},
	}
	tpkg, err := cfg.Check(path, imp.fset, files, nil)
	if tpkg == nil {
		return nil, fmt.Errorf("import %q: %v", path, err)
	}
	imp.typed[path] = tpkg
	return tpkg, nil
}
