// Package analysistest runs one analyzer over golden testdata packages
// and checks its diagnostics against expectations embedded in the
// sources, mirroring x/tools' analysistest conventions: a comment
//
//	// want "regexp" `another regexp`
//
// on a line means the analyzer must report diagnostics on that line
// matching each pattern, and every diagnostic must be claimed by some
// want. Testdata lives under <dir>/src/<pkg>, and since the go tool
// never matches testdata directories with ./... wildcards, the golden
// packages stay invisible to normal builds while remaining ordinary,
// compilable packages the loader can type-check.
package analysistest

import (
	"path"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bundler/internal/analysis"
	"bundler/internal/analysis/load"
)

// want is one expected diagnostic: a pattern anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads dir/src/<pkg> for each named package, applies a to each,
// and reports missing or unexpected diagnostics through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "./" + path.Join(dir, "src", p)
	}
	loaded, err := load.Load(patterns...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	for _, pkg := range loaded {
		checkPackage(t, a, pkg)
	}
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", pkg.ImportPath, err)
	}

	wants := parseWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the // want expectations from a package's
// comments.
func parseWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := wantText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range quotedStrings(t, pos.String(), text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

func wantText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	body = strings.TrimSpace(body)
	return strings.CutPrefix(body, "want ")
}

// quotedStrings decodes the sequence of Go string literals after
// "want".
func quotedStrings(t *testing.T, at, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		lit, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want expectation near %q: %v", at, s, err)
		}
		dec, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: cannot unquote %s: %v", at, lit, err)
		}
		out = append(out, dec)
		s = s[len(lit):]
	}
}
