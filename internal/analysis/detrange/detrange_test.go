package detrange_test

import (
	"testing"

	"bundler/internal/analysis/analysistest"
	"bundler/internal/analysis/detrange"
)

func TestDetrangeGolden(t *testing.T) {
	detrange.Budget = -1
	detrange.Reset()
	analysistest.Run(t, "testdata", detrange.Analyzer, "a")
	if got := detrange.Count(); got != 1 {
		t.Errorf("suppression count = %d, want 1 (the one directive in testdata/src/a)", got)
	}
}

// TestDetrangeBudgetOverflow pins the budget semantics: directives
// beyond the budget are themselves diagnostics, so suppressions cannot
// silently accumulate.
func TestDetrangeBudgetOverflow(t *testing.T) {
	detrange.Budget = 1
	defer func() { detrange.Budget = -1 }()
	detrange.Reset()
	analysistest.Run(t, "testdata", detrange.Analyzer, "budget")
	if got := detrange.Count(); got != 2 {
		t.Errorf("suppression count = %d, want 2", got)
	}
}
