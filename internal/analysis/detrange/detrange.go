// Package detrange enforces output determinism at map-iteration sites:
// a `range` over a map whose body builds ordered output — appending to
// a slice, writing to an encoder/writer, or concatenating a string —
// produces a different byte stream every run, which breaks the golden
// byte-identity all of this repository's regression gates depend on.
//
// The sanctioned pattern is collect-then-sort: a loop whose body only
// appends the map key to a slice is exempt (the slice is assumed to be
// sorted before use — every such site in this tree is followed by a
// sort call). Sites where iteration order provably cannot reach the
// output can carry an explicit directive on the `for` line or the line
// above:
//
//	//bundlervet:allow detrange(reason why order cannot leak)
//
// Directives are counted against a budget (bundler-vet's
// -detrange-budget flag) so suppressions cannot silently accumulate:
// once the budget is exceeded, every further directive is itself a
// diagnostic.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"bundler/internal/analysis"
)

// Analyzer is the map-iteration determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag range-over-map loops that feed ordered output (slice appends, encoder/writer " +
		"writes, string building) without sorting keys first",
	Run: run,
}

// Budget caps how many //bundlervet:allow detrange(...) directives one
// run may consume; -1 means unlimited. The driver sets it from
// -detrange-budget before running, and tests pin it.
var Budget = -1

// count tallies directives consumed in the current run, across
// packages. Reset clears it; the driver and tests call Reset before a
// run. Packages are analyzed sequentially in deterministic order, so a
// plain int is enough.
var count int

// Reset zeroes the run-wide directive tally.
func Reset() { count = 0 }

// Count reports directives consumed since the last Reset.
func Count() int { return count }

// directiveRE matches the suppression comment. The reason is mandatory:
// an unexplained suppression is indistinguishable from a silenced bug.
var directiveRE = regexp.MustCompile(`^//bundlervet:allow detrange\((.+)\)\s*$`)

// writeMethods are method names that emit bytes in call order: stream
// writers, string builders, and encoders.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Encode":      true,
}

// writeFuncs are package-level printing functions keyed by package
// path; any listed call inside the loop body is ordered output.
var writeFuncs = map[string]map[string]bool{
	"fmt": {
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true,
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		directives := collectDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pass.Fset.Position(rng.For).Line
			if directives[line] || directives[line-1] {
				count++
				if Budget >= 0 && count > Budget {
					pass.Reportf(rng.For,
						"detrange suppression budget exceeded (%d directives, budget %d): fix a site instead of adding directives",
						count, Budget)
				}
				return true
			}
			if sink := outputSink(pass, rng); sink != "" {
				pass.Reportf(rng.For,
					"range over map feeds %s in iteration order: sort the keys first, or annotate with //bundlervet:allow detrange(reason)",
					sink)
			}
			return true
		})
	}
	return nil
}

// collectDirectives maps source lines carrying a suppression directive.
func collectDirectives(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if directiveRE.MatchString(c.Text) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// outputSink classifies the first ordered-output operation in the loop
// body, or "" if the body is order-safe. The sanctioned collect-then-
// sort idiom is exempt: appends whose only added element is the range
// key (possibly filtered by a condition, possibly through a single
// conversion) put nothing order-dependent in the slice beyond the key
// set itself, which every such site in this tree sorts before use.
func outputSink(pass *analysis.Pass, rng *ast.RangeStmt) string {
	keyObj := rangeKeyObject(pass, rng)
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch m := n.(type) {
		case *ast.CallExpr:
			if s := callSink(pass, m, keyObj); s != "" {
				sink = s
				return false
			}
		case *ast.AssignStmt:
			if s := stringBuildSink(pass, m); s != "" {
				sink = s
				return false
			}
		}
		return true
	})
	return sink
}

// callSink classifies one call inside the body.
func callSink(pass *analysis.Pass, call *ast.CallExpr, keyObj types.Object) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if bi, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && bi.Name() == "append" {
			if appendsKeyOnly(pass, call, keyObj) {
				return ""
			}
			return "a slice append"
		}
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			return ""
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if writeMethods[fn.Name()] {
				return "an encoder/writer"
			}
			return ""
		}
		if fn.Pkg() != nil {
			if set, ok := writeFuncs[fn.Pkg().Path()]; ok && set[fn.Name()] {
				return "formatted output"
			}
		}
	}
	return ""
}

// stringBuildSink flags `s += ...` (and `s = s + ...`) where s is a
// string: classic ordered concatenation.
func stringBuildSink(pass *analysis.Pass, as *ast.AssignStmt) string {
	if len(as.Lhs) != 1 {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[as.Lhs[0]]
	if !ok || tv.Type == nil {
		return ""
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.String && basic.Kind() != types.UntypedString {
		return ""
	}
	switch as.Tok {
	case token.ADD_ASSIGN:
		return "string concatenation"
	case token.ASSIGN:
		if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && bin.Op == token.ADD && sameIdent(as.Lhs[0], bin.X) {
			return "string concatenation"
		}
	}
	return ""
}

func sameIdent(a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}

// rangeKeyObject resolves the loop's key variable, or nil when the key
// is discarded or not a plain identifier.
func rangeKeyObject(pass *analysis.Pass, rng *ast.RangeStmt) types.Object {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[keyID]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[keyID]
}

// appendsKeyOnly reports whether call is `append(s, k)` where k is the
// range key, optionally through a single conversion like string(k).
func appendsKeyOnly(pass *analysis.Pass, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	arg := call.Args[1]
	// Unwrap a single type conversion (append(keys, string(k))) — but
	// not an arbitrary function call, whose result ordering is the
	// caller's to prove.
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 && !conv.Ellipsis.IsValid() {
		if tv, ok := pass.TypesInfo.Types[conv.Fun]; ok && tv.IsType() {
			arg = conv.Args[0]
		}
	}
	argID, ok := arg.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[argID] == keyObj
}
