// Package budget is detrange golden testdata for the suppression
// budget: with the budget pinned to 1 by the test, the first directive
// is consumed silently and the second becomes a diagnostic.
package budget

func first(m map[string]int) []int {
	var out []int
	//bundlervet:allow detrange(first directive: within the test budget)
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func second(m map[string]int) []int {
	var out []int
	//bundlervet:allow detrange(second directive: exceeds the test budget)
	for _, v := range m { // want `detrange suppression budget exceeded`
		out = append(out, v)
	}
	return out
}
