// Package a is detrange golden testdata: map iterations that feed
// ordered output (flagged), the sanctioned collect-then-sort idiom and
// order-free folds (legal), and a directive-suppressed site.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func appendValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over map feeds a slice append`
		out = append(out, v)
	}
	return out
}

func writeOut(m map[string]int, w *strings.Builder) {
	for k := range m { // want `range over map feeds an encoder/writer`
		w.WriteString(k)
	}
}

func printOut(m map[string]int) {
	for k, v := range m { // want `range over map feeds formatted output`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func buildString(m map[string]int) string {
	s := ""
	for k := range m { // want `range over map feeds string concatenation`
		s += k
	}
	return s
}

// collectThenSort is the sanctioned prelude: only the key reaches the
// slice, and the slice is sorted before use.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// filteredCollect guards the key append with a condition; still only
// the key set lands in the slice.
func filteredCollect(m map[string]int, drop map[string]bool) []string {
	var keys []string
	for k := range m {
		if !drop[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// convertedCollect appends a type conversion of the key.
func convertedCollect(m map[int32]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	return keys
}

// suppressed carries the explicit directive; detrange counts it against
// the run budget instead of flagging.
func suppressed(m map[string]int) int {
	var out []int
	//bundlervet:allow detrange(min is commutative; order cannot reach the result)
	for _, v := range m {
		out = append(out, v)
	}
	min := 1 << 30
	for _, v := range out {
		if v < min {
			min = v
		}
	}
	return min
}

// sumFold is order-free: no append, no writer, no string build.
func sumFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
