// Package a is poolcheck golden testdata: the straight-line ownership
// violations the analyzer must catch, and the branch-local / reassign /
// defer patterns that must stay legal.
package a

import "bundler/internal/pkt"

func useAfterPut(p *pkt.Packet) {
	pkt.Put(p)
	_ = p.Size // want `use of p after Put`
}

func doublePut(p *pkt.Packet) {
	pkt.Put(p)
	pkt.Put(p) // want `double Put of p`
}

func returnAfterPut(p *pkt.Packet) *pkt.Packet {
	pkt.Put(p)
	return p // want `p returned after Put`
}

type holder struct{ p *pkt.Packet }

func storeAfterPut(h *holder, p *pkt.Packet) {
	pkt.Put(p)
	h.p = p // want `use of p after Put`
}

func poolPutUse(pl *pkt.Pool, p *pkt.Packet) {
	pl.Put(p)
	_ = p.Seq // want `use of p after Put`
}

func capturedAfterPut(p *pkt.Packet, run func(func())) {
	pkt.Put(p)
	run(func() { _ = p.Seq }) // want `use of p after Put`
}

func loopBackEdge(p *pkt.Packet) {
	for i := 0; i < 2; i++ {
		_ = p.Size // want `use of p after Put`
		pkt.Put(p) // want `double Put of p`
	}
}

// --- legal patterns ---

// branchLocalPut: the common guard `if full { pkt.Put(p); return }`.
// A release inside a branch poisons only that branch.
func branchLocalPut(p *pkt.Packet, full bool) bool {
	if full {
		pkt.Put(p)
		return false
	}
	_ = p.Size
	return true
}

// reassignClears: a fresh Get re-establishes ownership.
func reassignClears(p *pkt.Packet) {
	pkt.Put(p)
	p = pkt.Get()
	_ = p.Size
	pkt.Put(p)
}

// loopScopedGet: per-iteration ownership, released each pass.
func loopScopedGet() {
	for i := 0; i < 2; i++ {
		p := pkt.Get()
		p.Size = i
		pkt.Put(p)
	}
}

// deferredPut runs at function exit, after every use in the body.
func deferredPut(p *pkt.Packet) int {
	defer pkt.Put(p)
	return p.Size
}

// handOff transfers ownership without releasing: later code may not be
// flagged just because the packet left through a channel or call.
func handOff(p *pkt.Packet, sink func(*pkt.Packet)) {
	sink(p)
}
