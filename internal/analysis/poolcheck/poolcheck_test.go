package poolcheck_test

import (
	"testing"

	"bundler/internal/analysis/analysistest"
	"bundler/internal/analysis/poolcheck"
)

func TestPoolcheckGolden(t *testing.T) {
	analysistest.Run(t, "testdata", poolcheck.Analyzer, "a")
}
