// Package poolcheck enforces the statically detectable slice of the
// packet-pool ownership contract (internal/pkt): once a *pkt.Packet is
// released with Put, the releasing function must not touch it again —
// not read a field, not hand it off, not return it, and certainly not
// Put it a second time. At runtime these bugs surface as double-release
// panics or, worse, as field corruption two flows away once the pool
// recycles the storage; poolcheck catches the straight-line cases at
// vet time.
//
// The analysis is intra-procedural and path-local: within each function
// body it walks statement lists in order, tracking which *pkt.Packet
// variables have been released. Releases inside a branch (if/for/switch
// arm) poison only that branch — the common `if full { pkt.Put(p);
// return false }` guard stays legal — and loop bodies are additionally
// re-walked with the end-of-body state to catch releases that flow
// around the back edge into the next iteration. `defer pkt.Put(p)` is
// ignored (it runs at function exit, after every use in the body).
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bundler/internal/analysis"
)

// Analyzer is the pool-ownership check.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "flag use-after-Put, double-Put, and return/store-after-Put of *pkt.Packet values " +
		"(the statically detectable slice of the pool ownership contract)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, seen: make(map[string]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkList(fn.Body.List, released{})
				}
			case *ast.FuncLit:
				c.checkList(fn.Body.List, released{})
			}
			return true
		})
	}
	return nil
}

// released maps a packet variable to the position of the Put that
// released it on the current path.
type released map[*types.Var]token.Pos

func (r released) clone() released {
	c := make(released, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

type checker struct {
	pass *analysis.Pass
	// seen dedupes diagnostics: the loop back-edge re-walk visits
	// statements twice.
	seen map[string]bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	p := c.pass.Fset.Position(pos)
	key := p.String() + format
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, format, args...)
}

// checkList walks one statement list in order, mutating state as Puts
// and reassignments are encountered. Nested control-flow bodies run on
// clones: their releases never escape to the statements that follow.
func (c *checker) checkList(list []ast.Stmt, state released) {
	for _, stmt := range list {
		c.checkStmt(stmt, state)
	}
}

func (c *checker) checkStmt(stmt ast.Stmt, state released) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		c.checkList(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			c.checkStmt(s.Init, state)
		}
		c.useCheck(s.Cond, state, false)
		c.checkList(s.Body.List, state.clone())
		if s.Else != nil {
			c.checkStmt(s.Else, state.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.checkStmt(s.Init, state)
		}
		if s.Cond != nil {
			c.useCheck(s.Cond, state, false)
		}
		body := make([]ast.Stmt, 0, len(s.Body.List)+1)
		body = append(body, s.Body.List...)
		body = append(body, postStmt(s.Post)...)
		c.loopBody(body, state)
	case *ast.RangeStmt:
		c.useCheck(s.X, state, false)
		c.loopBody(s.Body.List, state)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.checkStmt(s.Init, state)
		}
		if s.Tag != nil {
			c.useCheck(s.Tag, state, false)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.checkList(cl.Body, state.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.checkList(cl.Body, state.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.checkList(cl.Body, state.clone())
			}
		}
	case *ast.LabeledStmt:
		c.checkStmt(s.Stmt, state)
	case *ast.DeferStmt:
		// Deferred releases run at function exit, after every use in
		// the body: not a sequential release. Still check the call's
		// arguments for uses of already-released packets.
		c.useCheck(s.Call, state, false)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.useCheck(r, state, true)
		}
	case *ast.AssignStmt:
		// RHS evaluates before the LHS binds: uses first, then clear
		// reassigned packet variables, then record any Puts.
		for _, r := range s.Rhs {
			c.useCheck(r, state, false)
		}
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if v := c.packetVar(id); v != nil {
					delete(state, v)
					continue
				}
			}
			c.useCheck(l, state, false)
		}
		for _, r := range s.Rhs {
			c.recordPuts(r, state)
		}
	default:
		c.useCheck(stmt, state, false)
		c.recordPuts(stmt, state)
	}
}

// postStmt wraps a for-loop post statement for the back-edge re-walk.
func postStmt(s ast.Stmt) []ast.Stmt {
	if s == nil {
		return nil
	}
	return []ast.Stmt{s}
}

// loopBody checks a loop body twice: once with the incoming state, then
// once more seeded with the first pass's end state, so a Put at the
// bottom of the body is seen by the uses at the top of the next
// iteration. Diagnostics dedupe, so the double walk never double-
// reports.
func (c *checker) loopBody(body []ast.Stmt, state released) {
	first := state.clone()
	c.checkList(body, first)
	c.checkList(body, first)
}

// useCheck reports reads of released packet variables anywhere under n
// (including inside function literals: capturing a released packet is
// as much a contract breach as reading it inline). isReturn selects the
// return-specific wording.
func (c *checker) useCheck(n ast.Node, state released, isReturn bool) {
	if n == nil || len(state) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		// A Put call's own argument is the release, not a use; it is
		// judged by recordPuts (double-Put has its own diagnostic).
		if call, ok := m.(*ast.CallExpr); ok && c.putCallArg(call) != nil {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v := c.packetVar(id)
		if v == nil {
			return true
		}
		putPos, gone := state[v]
		if !gone {
			return true
		}
		where := c.pass.Fset.Position(putPos)
		if isReturn {
			c.report(id.Pos(), "%s returned after Put (released at %s): ownership ended at the release", id.Name, where)
		} else {
			c.report(id.Pos(), "use of %s after Put (released at %s): the pool may already have reissued it", id.Name, where)
		}
		return true
	})
}

// recordPuts finds Put calls under n (outside nested function literals)
// and marks their packet arguments released, reporting double-Puts.
func (c *checker) recordPuts(n ast.Node, state released) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // a literal's body does not run here
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		id := c.putCallArg(call)
		if id == nil {
			return true
		}
		v := c.packetVar(id)
		if v == nil {
			return true
		}
		if prev, dup := state[v]; dup {
			c.report(call.Pos(), "double Put of %s (already released at %s)", id.Name, c.pass.Fset.Position(prev))
			return true
		}
		state[v] = call.Pos()
		return true
	})
}

// putCallArg returns the *ast.Ident argument when call is
// pkt.Put(ident) or pool.Put(ident), else nil.
func (c *checker) putCallArg(call *ast.CallExpr) *ast.Ident {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return nil
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !fromPktPackage(fn.Pkg()) {
		return nil
	}
	id, _ := call.Args[0].(*ast.Ident)
	return id
}

// packetVar resolves id to a *types.Var of type *pkt.Packet, else nil.
func (c *checker) packetVar(id *ast.Ident) *types.Var {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	ptr, ok := v.Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if tn.Name() != "Packet" || !fromPktPackage(tn.Pkg()) {
		return nil
	}
	return v
}

func fromPktPackage(p *types.Package) bool {
	return p != nil && strings.HasSuffix(p.Path(), "internal/pkt")
}
