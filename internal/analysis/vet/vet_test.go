package vet_test

import (
	"strings"
	"testing"

	"bundler/internal/analysis/vet"
)

func names(spec string, t *testing.T) []string {
	t.Helper()
	as, err := vet.Select(spec)
	if err != nil {
		t.Fatalf("Select(%q): %v", spec, err)
	}
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestSelect(t *testing.T) {
	if got := names("", t); strings.Join(got, ",") != "clockcheck,poolcheck,detrange,sortcmp" {
		t.Errorf("empty spec selected %v", got)
	}
	if got := names("clockcheck,poolcheck", t); strings.Join(got, ",") != "clockcheck,poolcheck" {
		t.Errorf("subset selected %v", got)
	}
	// Whitespace and duplicates are tolerated; order is request order.
	if got := names(" sortcmp , sortcmp ,clockcheck", t); strings.Join(got, ",") != "sortcmp,clockcheck" {
		t.Errorf("messy spec selected %v", got)
	}
}

// TestSelectUnknown is the CI-bisection contract: a typo in -only must
// fail loudly and name the valid analyzers.
func TestSelectUnknown(t *testing.T) {
	_, err := vet.Select("clockcheck,nosuchcheck")
	if err == nil {
		t.Fatal("unknown analyzer name accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nosuchcheck") || !strings.Contains(msg, "poolcheck") {
		t.Errorf("error %q should name the bad input and the valid set", msg)
	}
	if _, err := vet.Select(" , "); err == nil {
		t.Fatal("spec selecting nothing accepted")
	}
}

// TestRunClean runs the whole suite over a package that must be clean.
func TestRunClean(t *testing.T) {
	findings, err := vet.Run(vet.All(), "bundler/internal/pkt")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestRunTrips proves the assembled suite fails on a violation — the
// unit-level twin of CI's synthetic-violation self-test.
func TestRunTrips(t *testing.T) {
	findings, err := vet.Run(vet.All(), "./testdata/src/sim")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "clockcheck" || !strings.Contains(f.Message, "time.Now") {
		t.Errorf("unexpected finding: %s", f)
	}
	// Subset selection skipping clockcheck must not trip.
	subset, err := vet.Select("poolcheck,detrange,sortcmp")
	if err != nil {
		t.Fatal(err)
	}
	findings, err = vet.Run(subset, "./testdata/src/sim")
	if err != nil {
		t.Fatalf("Run subset: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("subset without clockcheck still found %v", findings)
	}
}
