// Package vet is the library behind cmd/bundler-vet: the analyzer
// registry, the -only subset grammar, and the run loop that applies
// analyzers to loaded packages and returns position-sorted findings.
// It lives apart from cmd/bundler-vet so the selection grammar and the
// gate semantics are unit-testable without spawning the binary.
package vet

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"bundler/internal/analysis"
	"bundler/internal/analysis/clockcheck"
	"bundler/internal/analysis/detrange"
	"bundler/internal/analysis/load"
	"bundler/internal/analysis/poolcheck"
	"bundler/internal/analysis/sortcmp"
)

// All returns the full analyzer suite in its canonical order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clockcheck.Analyzer,
		poolcheck.Analyzer,
		detrange.Analyzer,
		sortcmp.Analyzer,
	}
}

// Select resolves a comma-separated -only list against the registry.
// An empty spec selects the whole suite; an unknown name is an error
// naming the valid set, so a typo in CI fails loudly instead of
// silently gating nothing.
func Select(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := make(map[string]*analysis.Analyzer)
	var valid []string
	for _, a := range All() {
		byName[a.Name] = a
		valid = append(valid, a.Name)
	}
	var picked []*analysis.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(valid, ", "))
		}
		if !seen[name] {
			seen[name] = true
			picked = append(picked, a)
		}
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers (valid: %s)", strings.Join(valid, ", "))
	}
	return picked, nil
}

// Finding is one diagnostic resolved to a file position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matching patterns and applies each analyzer to
// each package, returning findings sorted by position (then analyzer,
// then message) so output is byte-stable across runs. The detrange
// suppression tally is reset at the start of the run; callers that gate
// on the budget read detrange.Count afterwards.
func Run(analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Load(patterns...)
	if err != nil {
		return nil, err
	}
	detrange.Reset()
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
