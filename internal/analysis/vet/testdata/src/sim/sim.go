// Package sim is vet-driver testdata: a simulation-facing package name
// with one clock-discipline violation, used to prove the assembled
// suite actually trips end to end.
package sim

import "time"

func bad() time.Time { return time.Now() }
