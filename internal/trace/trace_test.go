package trace

import (
	"strings"
	"testing"

	"bundler/internal/sim"
	"bundler/internal/stats"
)

func TestWriteTimeSeries(t *testing.T) {
	var a, b stats.TimeSeries
	a.Add(sim.Second, 1)
	a.Add(2*sim.Second, 2)
	b.Add(500*sim.Millisecond, 9)
	var out strings.Builder
	if err := WriteTimeSeries(&out, []string{"queue", "rate"}, []*stats.TimeSeries{&a, &b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), out.String())
	}
	if lines[0] != "queue_t,queue_v,rate_t,rate_v" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.000000,1.000000,0.500000,9.000000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",,") {
		t.Fatalf("short series not padded: %q", lines[2])
	}
}

func TestWriteTimeSeriesLengthMismatch(t *testing.T) {
	var out strings.Builder
	if err := WriteTimeSeries(&out, []string{"a"}, nil); err == nil {
		t.Fatal("no error for mismatched names/series")
	}
}

func TestWriteCDF(t *testing.T) {
	var s stats.Sample
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	var out strings.Builder
	if err := WriteCDF(&out, "fct", &s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want header + 4", len(lines))
	}
	if !strings.HasPrefix(lines[4], "4.000000,1.000000") {
		t.Fatalf("last row = %q, want max at p=1", lines[4])
	}
}

func TestWriteCDFEmpty(t *testing.T) {
	var s stats.Sample
	var out strings.Builder
	if err := WriteCDF(&out, "x", &s); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "\n") != 1 {
		t.Fatal("empty sample should produce header only")
	}
}

func TestWriteSummaryTableDeterministic(t *testing.T) {
	var s stats.Sample
	s.Add(1)
	s.Add(2)
	rows := map[string]stats.Summary{"b": s.Summarize(), "a": s.Summarize()}
	var out1, out2 strings.Builder
	if err := WriteSummaryTable(&out1, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummaryTable(&out2, rows); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatal("non-deterministic output")
	}
	lines := strings.Split(strings.TrimSpace(out1.String()), "\n")
	if !strings.HasPrefix(lines[1], "a,") || !strings.HasPrefix(lines[2], "b,") {
		t.Fatalf("labels not sorted: %v", lines)
	}
}
