// Package trace exports experiment measurements as CSV for external
// plotting — the emulator-side equivalent of the paper's measurement dump
// scripts (the timeline and CDF figures of §2 and §7). Writers accept the
// stats types the scenarios already produce; time columns are seconds of
// virtual time, value columns keep the producing sample's unit.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bundler/internal/stats"
)

// WriteTimeSeries writes one or more aligned-by-row time series as CSV:
// a time column (seconds) per series followed by its values. Series may
// have different lengths; short columns are left empty.
func WriteTimeSeries(w io.Writer, names []string, series []*stats.TimeSeries) error {
	if len(names) != len(series) {
		return fmt.Errorf("trace: %d names for %d series", len(names), len(series))
	}
	header := make([]string, 0, 2*len(names))
	rows := 0
	for i, n := range names {
		header = append(header, n+"_t", n+"_v")
		if series[i].N() > rows {
			rows = series[i].N()
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for r := 0; r < rows; r++ {
		cells := make([]string, 0, 2*len(series))
		for _, s := range series {
			if r < s.N() {
				cells = append(cells,
					fmt.Sprintf("%.6f", s.T[r].Seconds()),
					fmt.Sprintf("%.6f", s.V[r]))
			} else {
				cells = append(cells, "", "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCDF writes a sample's empirical CDF as (value, cumulative
// probability) CSV rows, one per distinct quantile step.
func WriteCDF(w io.Writer, name string, s *stats.Sample) error {
	if _, err := fmt.Fprintf(w, "%s,cdf\n", name); err != nil {
		return err
	}
	n := s.N()
	if n == 0 {
		return nil
	}
	// Sample exposes quantiles; reconstruct the sorted values through
	// them at 1/n resolution.
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", s.Quantile(q), q); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummaryTable writes labeled stats.Summary rows as CSV, sorted by
// label for deterministic output.
func WriteSummaryTable(w io.Writer, rows map[string]stats.Summary) error {
	if _, err := fmt.Fprintln(w, "label,n,mean,p10,p25,p50,p75,p90,p99,min,max"); err != nil {
		return err
	}
	labels := make([]string, 0, len(rows))
	for l := range rows {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		s := rows[l]
		if _, err := fmt.Fprintf(w, "%s,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			l, s.N, s.Mean, s.P10, s.P25, s.P50, s.P75, s.P90, s.P99, s.Min, s.Max); err != nil {
			return err
		}
	}
	return nil
}
