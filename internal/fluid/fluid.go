// Package fluid models background traffic as per-class aggregate rate
// ODEs instead of per-packet TCP state — the hybrid-simulation half of
// the ROADMAP's "millions of users per site" target. Each Class stands
// for an arbitrary number of emulated users whose combined send rate
// evolves by discrete-step AIMD (additive increase per user, one
// multiplicative cut per RTT on loss), against a virtual buffer whose
// overflow is the loss signal. The aggregate couples into a
// netem.Link: the fluid's served rate consumes link capacity (packet
// serialization slows by exactly that share) and its standing backlog
// contributes queueing delay — so packet-simulated foreground bundles
// feel the background load without a single background packet existing.
//
// State per class is O(1) regardless of Users, which is what makes a
// 10⁶-user site cost the same memory as a 10-user one.
package fluid

import (
	"fmt"

	"bundler/internal/clock"
	"bundler/internal/netem"
	"bundler/internal/pkt"
)

// DefaultStep is the rate-ODE integration step. 10 ms is well under the
// RTTs the scenarios use (20–100 ms), so the AIMD dynamics are resolved,
// while a 60 s horizon costs only 6000 ticks per aggregate.
const DefaultStep = 10 * clock.Millisecond

// ForegroundHeadroom is the capacity fraction fluid aggregates can never
// take from the foreground. A fluid model has no per-packet round-robin
// to keep a thin packet flow alive the way a real FIFO (or the sendbox's
// SFQ) interleaves it, so without a floor an overwhelming aggregate —
// 10⁵ users whose one-MSS-per-RTT floor already exceeds the link —
// would starve the packet path to netem.MinRate and foreground flows
// would effectively never complete. Five percent models the service
// share a handful of foreground flows would win against a saturated
// aggregate under FIFO statistical multiplexing.
const ForegroundHeadroom = 0.05

// Class describes one background aggregate sharing a link.
type Class struct {
	// Name labels the class in reports.
	Name string
	// Users is the emulated flow count: it scales the aggregate's
	// additive-increase slope and its rate floor (each user always has
	// at least one MSS per RTT in flight), but not the memory footprint.
	Users int
	// RTT is the aggregate's feedback delay: the additive-increase and
	// multiplicative-decrease clock.
	RTT clock.Time
	// MSS is the emulated segment size in bytes (pkt.MSS when zero).
	MSS int
	// BufBytes is the virtual buffer backing the aggregate; backlog
	// beyond it is lost, which is the AIMD loss signal. Zero defaults to
	// one bandwidth-delay product at attach time.
	BufBytes float64
}

// classState is the O(1) evolving state behind one Class.
type classState struct {
	Class
	rate      float64 // current aggregate send rate, bits/s
	backlog   float64 // bytes standing in the virtual buffer
	lastCut   clock.Time
	cutValid  bool
	delivered float64 // cumulative drained bytes
	lost      float64 // cumulative overflow bytes
}

// floor is the rate the aggregate can never drop below: one MSS per RTT
// per user, the fluid analogue of TCP's minimum window.
func (c *classState) floor() float64 {
	return float64(c.Users) * float64(c.MSS) * 8 / c.RTT.Seconds()
}

// Aggregate evolves the fluid classes attached to one link. It lives on
// the link's own engine, so in a sharded mesh every site's aggregate
// ticks inside that site's shard — no cross-shard state.
type Aggregate struct {
	eng     clock.Clock
	link    *netem.Link
	step    clock.Time
	classes []*classState

	lastPktBytes int64 // link.BytesSent() at the previous tick
	ticker       clock.Ticker
}

// Attach builds an aggregate over link, ticking every step (DefaultStep
// if step is zero). Classes are added with AddClass before the first
// tick fires; the aggregate starts influencing the link once a class
// exists.
func Attach(eng clock.Clock, link *netem.Link, step clock.Time) *Aggregate {
	if step <= 0 {
		step = DefaultStep
	}
	a := &Aggregate{eng: eng, link: link, step: step, lastPktBytes: link.BytesSent()}
	a.ticker = eng.Tick(step, a.tick)
	return a
}

// AddClass registers a background aggregate. Rate starts at the
// one-MSS-per-RTT-per-user floor, exactly like a slow-start entry point
// without the exponential phase (the steady-state behavior under heavy
// multiplexing is AIMD-dominated either way).
func (a *Aggregate) AddClass(c Class) {
	if c.Users <= 0 {
		panic(fmt.Sprintf("fluid: class %q needs a positive user count", c.Name))
	}
	if c.RTT <= 0 {
		panic(fmt.Sprintf("fluid: class %q needs a positive RTT", c.Name))
	}
	if c.MSS <= 0 {
		c.MSS = pkt.MSS
	}
	if c.BufBytes <= 0 {
		c.BufBytes = a.link.Rate() * c.RTT.Seconds() / 8 // one BDP
	}
	st := &classState{Class: c}
	st.rate = st.floor()
	a.classes = append(a.classes, st)
}

// Stop cancels the tick loop and withdraws the fluid load from the link.
func (a *Aggregate) Stop() {
	a.ticker.Stop()
	a.link.SetFluidLoad(0, 0)
}

// tick advances every class by one ODE step and pushes the combined
// served rate and backlog into the link.
func (a *Aggregate) tick() {
	if len(a.classes) == 0 {
		return
	}
	dt := a.step.Seconds()
	now := a.eng.Now()

	// Capacity left for fluid this step: the link rate (minus the
	// guaranteed foreground headroom) minus the packet throughput the
	// foreground actually achieved over the last step.
	sent := a.link.BytesSent()
	pktBps := float64(sent-a.lastPktBytes) * 8 / dt
	a.lastPktBytes = sent
	avail := a.link.Rate()*(1-ForegroundHeadroom) - pktBps
	if avail < 0 {
		avail = 0
	}
	capBytes := avail * dt / 8

	// Offered fluid this step: standing backlog plus fresh sending.
	totalInflow := 0.0
	for _, c := range a.classes {
		totalInflow += c.backlog + c.rate*dt/8
	}

	servedBps := 0.0
	backlogBytes := 0.0
	for _, c := range a.classes {
		inflow := c.backlog + c.rate*dt/8
		drained := inflow
		if totalInflow > capBytes {
			// Oversubscribed: capacity splits proportionally to offered
			// load (FIFO fluid approximation).
			drained = capBytes * inflow / totalInflow
		}
		remaining := inflow - drained
		lost := remaining - c.BufBytes
		if lost < 0 {
			lost = 0
		}
		c.backlog = remaining - lost
		c.delivered += drained
		c.lost += lost

		// AIMD: at most one multiplicative cut per RTT on loss;
		// otherwise every user adds one MSS per RTT per RTT.
		if lost > 0 {
			if !c.cutValid || now-c.lastCut >= c.RTT {
				c.rate *= 0.5
				c.lastCut = now
				c.cutValid = true
			}
		} else {
			rtt := c.RTT.Seconds()
			c.rate += float64(c.Users) * float64(c.MSS) * 8 / (rtt * rtt) * dt
		}
		if f := c.floor(); c.rate < f {
			c.rate = f
		}

		servedBps += drained * 8 / dt
		backlogBytes += c.backlog
	}
	a.link.SetFluidLoad(servedBps, backlogBytes)
}

// Users reports the total emulated user count across classes.
func (a *Aggregate) Users() int {
	n := 0
	for _, c := range a.classes {
		n += c.Users
	}
	return n
}

// DeliveredBytes reports the cumulative fluid bytes drained through the
// link across all classes.
func (a *Aggregate) DeliveredBytes() float64 {
	v := 0.0
	for _, c := range a.classes {
		v += c.delivered
	}
	return v
}

// LostBytes reports the cumulative virtual-buffer overflow across all
// classes — the loss volume that drove the AIMD cuts.
func (a *Aggregate) LostBytes() float64 {
	v := 0.0
	for _, c := range a.classes {
		v += c.lost
	}
	return v
}

// Rate reports the current aggregate send rate (bits/s) summed over
// classes.
func (a *Aggregate) Rate() float64 {
	v := 0.0
	for _, c := range a.classes {
		v += c.rate
	}
	return v
}

// Backlog reports the standing virtual backlog in bytes summed over
// classes.
func (a *Aggregate) Backlog() float64 {
	v := 0.0
	for _, c := range a.classes {
		v += c.backlog
	}
	return v
}
