package fluid

import (
	"testing"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
)

func mklink(eng *sim.Engine, rate float64) (*netem.Link, *netem.Sink) {
	sink := &netem.Sink{}
	l := netem.NewLink(eng, "l", rate, 5*sim.Millisecond, qdisc.NewFIFO(200*pkt.MTU), sink)
	return l, sink
}

// TestFluidAIMDFillsIdleLink: with no foreground packets, one aggregate
// converges onto the link's fluid share (capacity minus the foreground
// headroom) and its AIMD probe sees loss along the way.
func TestFluidAIMDFillsIdleLink(t *testing.T) {
	eng := sim.NewEngine(1)
	link, _ := mklink(eng, 48e6)
	agg := Attach(eng, link, 0)
	agg.AddClass(Class{Name: "bulk", Users: 100, RTT: 50 * sim.Millisecond})

	const horizon = 30
	eng.RunUntil(horizon * sim.Second)

	goodput := agg.DeliveredBytes() * 8 / horizon
	share := 48e6 * (1 - ForegroundHeadroom)
	if goodput < 0.80*share || goodput > 1.001*share {
		t.Fatalf("fluid goodput %.1f Mbit/s, want ≈ %.1f (the link's fluid share)", goodput/1e6, share/1e6)
	}
	if agg.LostBytes() == 0 {
		t.Fatal("AIMD never saw loss: the probe is not reaching the buffer limit")
	}
	if agg.Backlog() < 0 {
		t.Fatalf("negative backlog %f", agg.Backlog())
	}
}

// TestFluidSharesWithForegroundPackets: foreground packets offered at a
// third of capacity keep their throughput while the fluid aggregate
// absorbs (most of) the rest — the two-way coupling through measured
// BytesSent and effRate.
func TestFluidSharesWithForegroundPackets(t *testing.T) {
	eng := sim.NewEngine(2)
	link, sink := mklink(eng, 48e6)
	agg := Attach(eng, link, 0)
	agg.AddClass(Class{Name: "bulk", Users: 50, RTT: 50 * sim.Millisecond})

	// Foreground: one MTU every 750 µs = 16 Mbit/s offered.
	period := sim.Time(float64(pkt.MTU*8) / 16e6 * float64(sim.Second))
	sim.Tick(eng, period, func() {
		link.Receive(&pkt.Packet{Size: pkt.MTU})
	})

	const horizon = 30
	eng.RunUntil(horizon * sim.Second)

	fgBps := float64(link.BytesSent()) * 8 / horizon
	if fgBps < 0.90*16e6 {
		t.Fatalf("foreground squeezed to %.1f Mbit/s of its 16 offered: fluid load is starving the packet path", fgBps/1e6)
	}
	fluidBps := agg.DeliveredBytes() * 8 / horizon
	residual := 48e6*(1-ForegroundHeadroom) - 16e6
	if fluidBps < 0.6*residual || fluidBps > 1.1*residual {
		t.Fatalf("fluid took %.1f Mbit/s, want ≈ residual %.1f", fluidBps/1e6, residual/1e6)
	}
	if sink.Count == 0 {
		t.Fatal("no foreground packets delivered")
	}
}

// TestFluidLoadSlowsSerialization: the direct netem coupling — a link
// carrying a 50% fluid share serializes foreground packets at half
// speed, and fluid backlog shows up in QueueDelay.
func TestFluidLoadSlowsSerialization(t *testing.T) {
	drain := func(fluidBps float64) sim.Time {
		eng := sim.NewEngine(3)
		link, sink := mklink(eng, 96e6)
		var last sim.Time
		link.OnDelivery(func(p *pkt.Packet) { last = eng.Now() })
		link.SetFluidLoad(fluidBps, 0)
		for i := 0; i < 100; i++ {
			link.Receive(&pkt.Packet{Size: pkt.MTU})
		}
		eng.RunUntil(10 * sim.Second)
		if sink.Count != 100 {
			t.Fatalf("delivered %d of 100", sink.Count)
		}
		return last
	}
	// 100 MTU at 96 Mbit/s = 12.5 ms serialization (+5 ms delay); at the
	// halved effective rate it must take twice the serialization time.
	base := drain(0)
	halved := drain(48e6)
	if halved < base+11*sim.Millisecond || halved > base+14*sim.Millisecond {
		t.Fatalf("halving capacity moved drain time %v → %v, want ≈ +12.5ms", base, halved)
	}

	eng := sim.NewEngine(4)
	link, _ := mklink(eng, 96e6)
	if link.QueueDelay() != 0 {
		t.Fatal("idle link reports queue delay")
	}
	link.SetFluidLoad(0, 120000) // 120 KB backlog at 96 Mbit/s = 10 ms
	qd := link.QueueDelay()
	if qd < 9*sim.Millisecond || qd > 11*sim.Millisecond {
		t.Fatalf("fluid backlog queue delay %v, want ≈10ms", qd)
	}
}

// TestFluidStateIndependentOfUsers: the whole point — a million-user
// class is the same classState as a ten-user one, and the run completes
// in the same number of events.
func TestFluidStateIndependentOfUsers(t *testing.T) {
	run := func(users int) float64 {
		eng := sim.NewEngine(5)
		link, _ := mklink(eng, 96e6)
		agg := Attach(eng, link, 0)
		agg.AddClass(Class{Name: "bg", Users: users, RTT: 50 * sim.Millisecond})
		eng.RunUntil(10 * sim.Second)
		return agg.DeliveredBytes()
	}
	small := run(10)
	huge := run(1000000)
	// Both saturate their share; the huge aggregate is floor-pinned so it
	// must deliver at least as much as the small one.
	if huge < small {
		t.Fatalf("10⁶-user aggregate delivered %.0f < 10-user %.0f", huge, small)
	}
}

// TestFluidDeterminism: two identical runs produce identical floats —
// the fluid step is pure arithmetic on the engine's deterministic clock.
func TestFluidDeterminism(t *testing.T) {
	run := func() (float64, float64, float64) {
		eng := sim.NewEngine(6)
		link, _ := mklink(eng, 48e6)
		agg := Attach(eng, link, 0)
		agg.AddClass(Class{Name: "a", Users: 40, RTT: 30 * sim.Millisecond})
		agg.AddClass(Class{Name: "b", Users: 10, RTT: 90 * sim.Millisecond})
		eng.RunUntil(20 * sim.Second)
		return agg.DeliveredBytes(), agg.LostBytes(), agg.Rate()
	}
	d1, l1, r1 := run()
	d2, l2, r2 := run()
	if d1 != d2 || l1 != l2 || r1 != r2 {
		t.Fatalf("nondeterministic fluid state: (%v,%v,%v) vs (%v,%v,%v)", d1, l1, r1, d2, l2, r2)
	}
}

// TestFluidStopWithdrawsLoad: Stop must both cancel the ticker and zero
// the link's fluid share so a torn-down aggregate leaves no ghost load.
func TestFluidStopWithdrawsLoad(t *testing.T) {
	eng := sim.NewEngine(7)
	link, _ := mklink(eng, 48e6)
	agg := Attach(eng, link, 0)
	agg.AddClass(Class{Name: "bg", Users: 100, RTT: 50 * sim.Millisecond})
	eng.RunUntil(5 * sim.Second)
	if link.FluidBps() == 0 {
		t.Fatal("aggregate never loaded the link")
	}
	agg.Stop()
	if link.FluidBps() != 0 || link.FluidBacklogBytes() != 0 {
		t.Fatal("Stop left fluid load on the link")
	}
}
