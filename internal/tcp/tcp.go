// Package tcp implements a packet-level TCP endhost: a sender with
// cumulative ACKs plus SACK, RFC 6675-style loss recovery, RTO with
// exponential backoff, and pluggable congestion control (Reno, Cubic, BBR,
// and a fixed-window variant used to emulate the paper's idealized TCP
// proxy in §7.5).
//
// Bundler deliberately leaves endhost loops untouched, so reproducing the
// paper requires faithful endhost dynamics: slow start overshoot, Cubic's
// probing to loss, and BBR's pacing are all load-bearing in the
// evaluation. The model sends a configurable number of payload bytes from
// sender to receiver; the receiver ACKs every data packet (no delayed
// ACKs) and reports up to four SACK blocks, matching a modern Linux stack.
// Windows and transfer sizes are bytes, pacing rates bits/second, and all
// timers run on clock.Time.
package tcp

import (
	"fmt"
	"sync"

	"bundler/internal/clock"
	"bundler/internal/netem"
	"bundler/internal/pkt"
)

// Timer constants (RFC 6298, with the common Linux-style 200 ms floor).
const (
	minRTO     = 200 * clock.Millisecond
	initialRTO = 1 * clock.Second
	maxRTO     = 60 * clock.Second
)

// InitialCwnd is the initial congestion window in segments (RFC 6928).
const InitialCwnd = 10

// sackDupThresh mirrors the 3-dupack reordering allowance: a segment is
// declared lost once SACKed bytes reach this many segments past its end.
const sackDupThresh = 3

// SACKBlock reports one contiguous received range in an ACK. It travels
// inline in the packet header (see pkt.Packet.SACK); the alias keeps
// the transport's vocabulary intact.
type SACKBlock = pkt.SACKBlock

// segment is the sender's scoreboard entry for one in-flight segment.
// Segments are pooled: the scoreboard releases them as they are
// cumulatively acknowledged (and in bulk on completion/abort).
type segment struct {
	seq      int64
	length   int
	sentAt   clock.Time
	retx     bool // ever retransmitted (Karn: no RTT samples)
	sacked   bool
	lost     bool
	inFlight bool
}

var segPool = sync.Pool{New: func() any { return new(segment) }}

// Sender transmits Size payload bytes to Dst and consumes the ACK stream.
// It implements netem.Receiver for incoming ACKs.
type Sender struct {
	eng    clock.Clock
	out    netem.Receiver
	src    pkt.Addr
	dst    pkt.Addr
	flowID uint64
	size   int64
	cc     Congestion

	sndUna    int64
	sndNxt    int64
	segs      []*segment // ordered scoreboard covering [sndUna, sndNxt)
	pipeBytes int64      // running Σ length over inFlight && !sacked segments
	highSack  int64      // highest SACKed extent ever seen (0 = none yet)
	lostCount int        // segments currently marked lost (fast path: no scan when 0)
	dupacks   int
	recovery  bool
	recoverPt int64

	srtt, rttvar, rto clock.Time
	lastRTT           clock.Time
	rtoTimer          clock.Timer

	ipid       uint16
	nextSendAt clock.Time
	paceTimer  clock.Timer
	pool       *pkt.Pool

	started    bool
	done       bool
	StartedAt  clock.Time
	DoneAt     clock.Time
	onComplete func(now clock.Time)

	// Counters for tests and stats.
	DataSent    int
	Retransmits int
	Timeouts    int
}

// NewSender constructs a sender for a size-byte transfer. out is the first
// hop of the egress path; onComplete (optional) fires when the final byte
// is cumulatively acknowledged.
func NewSender(eng clock.Clock, out netem.Receiver, src, dst pkt.Addr, flowID uint64, size int64, cc Congestion, onComplete func(now clock.Time)) *Sender {
	if size <= 0 {
		panic("tcp: transfer size must be positive")
	}
	s := &Sender{
		eng: eng, out: out, src: src, dst: dst, flowID: flowID, size: size,
		cc: cc, rto: initialRTO, onComplete: onComplete,
	}
	s.rtoTimer = eng.NewTimer(s.onRTO)
	s.paceTimer = eng.NewTimer(s.trySend)
	return s
}

// Start begins the transfer.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.StartedAt = s.eng.Now()
	s.trySend()
}

// SetPool makes the sender mint packets from a partition-local pool
// (nil keeps the shared global pool). Call before Start.
func (s *Sender) SetPool(pl *pkt.Pool) { s.pool = pl }

// Done reports whether every byte has been acknowledged.
func (s *Sender) Done() bool { return s.done }

// FlowID returns the flow identifier packets carry.
func (s *Sender) FlowID() uint64 { return s.flowID }

// Acked reports cumulatively acknowledged bytes.
func (s *Sender) Acked() int64 { return s.sndUna }

// Size reports the transfer size in bytes.
func (s *Sender) Size() int64 { return s.size }

// pipe estimates bytes currently in the network: transmitted, neither
// SACKed nor declared lost (RFC 6675 pipe). It is maintained
// incrementally at every segment state transition — trySend consults it
// once per window-limit check, and a scoreboard scan there is quadratic
// in the window.
func (s *Sender) pipe() int64 { return s.pipeBytes }

// trySend transmits retransmissions first, then new data, as the window
// (and pacing rate) allows.
func (s *Sender) trySend() {
	if s.done || !s.started {
		return
	}
	for {
		if float64(s.pipe())+1 > s.cc.CwndBytes() {
			return
		}
		if pr := s.cc.PacingRate(); pr > 0 {
			now := s.eng.Now()
			if now < s.nextSendAt {
				if !s.paceTimer.Pending() {
					s.paceTimer.ArmAt(s.nextSendAt)
				}
				return
			}
		}
		if sg := s.nextLost(); sg != nil {
			s.retransmit(sg)
			continue
		}
		if s.sndNxt < s.size {
			s.sendNew()
			continue
		}
		return
	}
}

func (s *Sender) nextLost() *segment {
	if s.lostCount == 0 {
		return nil // loss-free fast path: trySend polls this per send
	}
	for _, sg := range s.segs {
		if sg.lost && !sg.inFlight && !sg.sacked {
			return sg
		}
	}
	return nil
}

func (s *Sender) sendNew() {
	length := int(min64(int64(pkt.MSS), s.size-s.sndNxt))
	sg := segPool.Get().(*segment)
	*sg = segment{seq: s.sndNxt, length: length}
	s.segs = append(s.segs, sg)
	s.sndNxt += int64(length)
	s.emit(sg, false)
}

func (s *Sender) retransmit(sg *segment) {
	sg.lost = false
	s.lostCount--
	sg.retx = true
	s.Retransmits++
	s.emit(sg, true)
}

// emit sends a segment. Every transmission — including retransmissions —
// gets a fresh IP ID, the property Bundler's epoch hash relies on to avoid
// spurious samples (§4.5).
func (s *Sender) emit(sg *segment, retx bool) {
	now := s.eng.Now()
	sg.sentAt = now
	if !sg.inFlight && !sg.sacked {
		s.pipeBytes += int64(sg.length)
	}
	sg.inFlight = true
	s.ipid++
	s.DataSent++
	p := s.pool.Get()
	p.IPID = s.ipid
	p.Src = s.src
	p.Dst = s.dst
	p.Proto = pkt.ProtoTCP
	p.Size = sg.length + pkt.HeaderBytes
	p.Seq = sg.seq
	p.FlowID = s.flowID
	p.Retransmit = retx
	p.SentAt = now
	if pr := s.cc.PacingRate(); pr > 0 {
		if s.nextSendAt < now {
			s.nextSendAt = now
		}
		s.nextSendAt += clock.Time(float64(p.Size*8) / pr * float64(clock.Second))
	}
	if !s.rtoTimer.Pending() {
		s.rtoTimer.ArmAfter(s.rto)
	}
	s.out.Receive(p)
}

func (s *Sender) rearmRTO() {
	s.rtoTimer.Stop()
	if s.sndUna < s.sndNxt {
		s.rtoTimer.ArmAfter(s.rto)
	}
}

func (s *Sender) onRTO() {
	if s.done {
		return
	}
	s.Timeouts++
	s.cc.OnTimeout(s.eng.Now())
	// Everything unacknowledged is presumed lost and eligible for
	// retransmission.
	for _, sg := range s.segs {
		if !sg.sacked {
			if sg.inFlight {
				s.pipeBytes -= int64(sg.length)
			}
			if !sg.lost {
				s.lostCount++
			}
			sg.lost = true
			sg.inFlight = false
		}
	}
	s.dupacks = 0
	s.recovery = true
	s.recoverPt = s.sndNxt
	s.rto *= 2
	if s.rto > maxRTO {
		s.rto = maxRTO
	}
	s.rtoTimer.ArmAfter(s.rto)
	s.trySend()
}

// Receive implements netem.Receiver; the sender consumes (and releases)
// ACKs.
func (s *Sender) Receive(p *pkt.Packet) {
	if s.done || p.Flags&pkt.FlagACK == 0 {
		pkt.Put(p)
		return
	}
	now := s.eng.Now()
	ack := p.Ack
	blocks := p.SACK[:p.NSACK]

	cumAdvance := ack > s.sndUna
	if cumAdvance {
		s.popAcked(ack, now)
		newly := ack - s.sndUna
		s.sndUna = ack
		s.dupacks = 0
		s.cc.OnAck(int(newly), s.lastRTT, now)
		if s.recovery && ack >= s.recoverPt {
			s.recovery = false
		}
		if s.sndUna >= s.size {
			s.complete(now)
			pkt.Put(p)
			return
		}
		s.rearmRTO()
	}

	if len(blocks) > 0 {
		s.applySACK(blocks)
	}
	newLoss := s.markLost()
	if !cumAdvance {
		s.dupacks++
		// Fallback for SACK-less peers: third dupack implies the first
		// outstanding segment was lost.
		if s.dupacks >= sackDupThresh && len(s.segs) > 0 && !s.segs[0].sacked &&
			!s.segs[0].lost && s.segs[0].inFlight && p.NSACK == 0 {
			s.pipeBytes -= int64(s.segs[0].length)
			s.segs[0].lost = true
			s.lostCount++
			s.segs[0].inFlight = false
			newLoss = true
		}
	}
	pkt.Put(p)
	if newLoss && !s.recovery {
		s.recovery = true
		s.recoverPt = s.sndNxt
		s.cc.OnLoss(now)
	}
	s.trySend()
}

var _ netem.Receiver = (*Sender)(nil)

func (s *Sender) applySACK(blocks []SACKBlock) {
	for _, sg := range s.segs {
		if sg.sacked {
			continue
		}
		end := sg.seq + int64(sg.length)
		for _, b := range blocks {
			if sg.seq >= b.Start && end <= b.End {
				if sg.inFlight {
					s.pipeBytes -= int64(sg.length)
				}
				if sg.lost {
					s.lostCount--
				}
				sg.sacked = true
				sg.lost = false
				if end > s.highSack {
					s.highSack = end
				}
				break
			}
		}
	}
}

// markLost applies the RFC 6675 rule: a segment is lost once SACKed data
// extends sackDupThresh segments beyond it. Retransmitted segments are
// exempt (the RTO catches re-lost retransmissions). It reports whether any
// segment was newly marked.
func (s *Sender) markLost() bool {
	// highSack is the monotone watermark applySACK maintains rather than
	// a per-ACK scoreboard scan. It can exceed the highest extent still
	// on the scoreboard only after the cumulative ACK passed it (popAcked
	// removes whole segments, so every live segment ends above sndUna ≥
	// that stale watermark) — and then no live segment can sit a full
	// threshold below it, so the rule marks nothing, exactly as the
	// rescan would.
	highestSacked := s.highSack
	if highestSacked == 0 {
		return false
	}
	newLoss := false
	threshold := int64(sackDupThresh * pkt.MSS)
	for _, sg := range s.segs {
		if sg.sacked || sg.lost || sg.retx {
			continue
		}
		if sg.seq+int64(sg.length)+threshold <= highestSacked {
			if sg.inFlight {
				s.pipeBytes -= int64(sg.length)
			}
			sg.lost = true
			s.lostCount++
			sg.inFlight = false
			newLoss = true
		}
	}
	return newLoss
}

// popAcked removes cumulatively acknowledged segments from the front of
// the scoreboard (releasing them to the pool) and feeds the RTT
// estimator from the newest popped segment that was never retransmitted
// (Karn's algorithm). The scoreboard is ordered by sequence, so this is
// O(newly acked).
func (s *Sender) popAcked(ack int64, now clock.Time) {
	var bestSent clock.Time
	haveBest := false
	i := 0
	for ; i < len(s.segs); i++ {
		sg := s.segs[i]
		if sg.seq+int64(sg.length) > ack {
			break
		}
		if sg.inFlight && !sg.sacked {
			s.pipeBytes -= int64(sg.length)
		}
		if sg.lost {
			s.lostCount--
		}
		if !sg.retx {
			bestSent = sg.sentAt
			haveBest = true
		}
		segPool.Put(sg)
	}
	if i > 0 {
		copy(s.segs, s.segs[i:])
		for j := len(s.segs) - i; j < len(s.segs); j++ {
			s.segs[j] = nil
		}
		s.segs = s.segs[:len(s.segs)-i]
	}
	if !haveBest {
		return
	}
	rtt := now - bestSent
	s.lastRTT = rtt
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < minRTO {
		s.rto = minRTO
	}
	if s.rto > maxRTO {
		s.rto = maxRTO
	}
}

func (s *Sender) complete(now clock.Time) {
	s.done = true
	s.DoneAt = now
	s.rtoTimer.Stop()
	s.paceTimer.Stop()
	s.releaseScoreboard()
	if s.onComplete != nil {
		s.onComplete(now)
	}
}

func (s *Sender) releaseScoreboard() {
	for _, sg := range s.segs {
		segPool.Put(sg)
	}
	s.segs = nil
	s.pipeBytes = 0
	s.lostCount = 0
}

// SRTT exposes the smoothed RTT estimate (for tests and the §7.5 proxy
// discussion).
func (s *Sender) SRTT() clock.Time { return s.srtt }

// Abort stops the transfer immediately without marking it complete:
// timers are cancelled and no further packets are sent. Experiments use it
// to model cross traffic that departs (Figure 10's phase changes).
func (s *Sender) Abort() {
	s.done = true
	s.rtoTimer.Stop()
	s.paceTimer.Stop()
	s.releaseScoreboard()
}

// Receiver consumes data packets, reassembles the byte stream, and emits
// an ACK (with up to four SACK blocks) per packet on its egress. It
// implements netem.Receiver.
type Receiver struct {
	eng    clock.Clock
	out    netem.Receiver
	addr   pkt.Addr
	peer   pkt.Addr
	flowID uint64
	size   int64

	rcvNxt int64
	ooo    []interval
	ipid   uint16
	pool   *pkt.Pool

	done       bool
	DoneAt     clock.Time
	onComplete func(now clock.Time)

	// DataReceived counts data packets (including spurious retransmits).
	DataReceived int
}

type interval struct{ start, end int64 }

// NewReceiver constructs the receiving endpoint of a size-byte transfer.
// out is the first hop of the reverse (ACK) path; onComplete fires when
// the last payload byte arrives in order.
func NewReceiver(eng clock.Clock, out netem.Receiver, addr, peer pkt.Addr, flowID uint64, size int64, onComplete func(now clock.Time)) *Receiver {
	return &Receiver{eng: eng, out: out, addr: addr, peer: peer, flowID: flowID, size: size, onComplete: onComplete}
}

// SetPool makes the receiver mint ACKs from a partition-local pool (nil
// keeps the shared global pool).
func (r *Receiver) SetPool(pl *pkt.Pool) { r.pool = pl }

// Receive implements netem.Receiver; the receiver consumes (and
// releases) data packets.
func (r *Receiver) Receive(p *pkt.Packet) {
	if p.Proto != pkt.ProtoTCP || p.Flags&pkt.FlagACK != 0 {
		pkt.Put(p)
		return
	}
	r.DataReceived++
	payload := int64(p.Size - pkt.HeaderBytes)
	seq := p.Seq
	pkt.Put(p)
	r.insert(seq, seq+payload)
	if !r.done && r.rcvNxt >= r.size {
		r.done = true
		r.DoneAt = r.eng.Now()
		if r.onComplete != nil {
			r.onComplete(r.eng.Now())
		}
	}
	r.sendAck()
}

// Done reports whether the whole stream arrived.
func (r *Receiver) Done() bool { return r.done }

// insert merges [start, end) into the reassembly state and advances
// rcvNxt across any now-contiguous prefix. The interval list is kept
// sorted by insertion (a shift-and-merge in place), so the common
// in-order arrival neither sorts nor allocates.
func (r *Receiver) insert(start, end int64) {
	if end <= r.rcvNxt {
		return // stale retransmit
	}
	if start < r.rcvNxt {
		start = r.rcvNxt
	}
	// Insert in sorted position.
	i := len(r.ooo)
	for i > 0 && r.ooo[i-1].start > start {
		i--
	}
	r.ooo = append(r.ooo, interval{})
	copy(r.ooo[i+1:], r.ooo[i:])
	r.ooo[i] = interval{start, end}
	// Merge overlapping/adjacent runs in place.
	merged := r.ooo[:1]
	for _, iv := range r.ooo[1:] {
		if n := len(merged); iv.start <= merged[n-1].end {
			if iv.end > merged[n-1].end {
				merged[n-1].end = iv.end
			}
		} else {
			merged = append(merged, iv)
		}
	}
	r.ooo = merged
	// Advance the contiguous prefix, compacting without dropping the
	// backing array (the list is reused for the connection's lifetime).
	k := 0
	for k < len(r.ooo) && r.ooo[k].start <= r.rcvNxt {
		if r.ooo[k].end > r.rcvNxt {
			r.rcvNxt = r.ooo[k].end
		}
		k++
	}
	if k > 0 {
		copy(r.ooo, r.ooo[k:])
		r.ooo = r.ooo[:len(r.ooo)-k]
	}
}

func (r *Receiver) sendAck() {
	r.ipid++
	p := r.pool.Get()
	p.IPID = r.ipid
	p.Src = r.addr
	p.Dst = r.peer
	p.Proto = pkt.ProtoTCP
	p.Size = pkt.HeaderBytes
	p.Ack = r.rcvNxt
	p.Flags = pkt.FlagACK
	p.FlowID = r.flowID
	p.SentAt = r.eng.Now()
	for i := 0; i < len(r.ooo) && i < 4; i++ {
		p.SACK[i] = SACKBlock{Start: r.ooo[i].start, End: r.ooo[i].end}
		p.NSACK = uint8(i + 1)
	}
	r.out.Receive(p)
}

// Mux routes packets to registered endpoints by destination address. It is
// the site-internal dispatch both endpoints and Bundler control messages
// share.
type Mux struct {
	routes  map[pkt.Addr]netem.Receiver
	dropped int
}

// NewMux returns an empty address mux.
func NewMux() *Mux { return &Mux{routes: make(map[pkt.Addr]netem.Receiver)} }

// Register installs r as the receiver for packets addressed to a.
// Registering the same address twice panics: it always indicates an
// address-allocation bug in scenario wiring.
func (m *Mux) Register(a pkt.Addr, r netem.Receiver) {
	if _, dup := m.routes[a]; dup {
		panic(fmt.Sprintf("tcp: duplicate mux registration for %+v", a))
	}
	m.routes[a] = r
}

// Unregister removes the route for a (flows that finished).
func (m *Mux) Unregister(a pkt.Addr) { delete(m.routes, a) }

// Receive implements netem.Receiver.
func (m *Mux) Receive(p *pkt.Packet) {
	if r, ok := m.routes[p.Dst]; ok {
		r.Receive(p)
		return
	}
	m.dropped++
	pkt.Put(p)
}

// Dropped reports packets with no registered endpoint.
func (m *Mux) Dropped() int { return m.dropped }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
