package tcp

import (
	"math"

	"bundler/internal/clock"
	"bundler/internal/pkt"
)

// Congestion is the endhost congestion-control plug-in interface. All
// window quantities are in bytes.
type Congestion interface {
	// OnAck is called for each cumulative ACK advancing the window by
	// acked bytes, with the latest RTT sample (0 if none was available).
	OnAck(acked int, rtt, now clock.Time)
	// OnLoss is called on a fast-retransmit loss event.
	OnLoss(now clock.Time)
	// OnTimeout is called when the retransmission timer fires.
	OnTimeout(now clock.Time)
	// CwndBytes returns the current congestion window.
	CwndBytes() float64
	// PacingRate returns the pacing rate in bits/second, or 0 for pure
	// window (ack-clocked) operation.
	PacingRate() float64
}

const mssF = float64(pkt.MSS)

// Reno implements TCP NewReno congestion control.
type Reno struct {
	cwnd     float64
	ssthresh float64
}

// NewReno returns a Reno controller with the standard initial window.
func NewReno() *Reno {
	return &Reno{cwnd: InitialCwnd * mssF, ssthresh: math.Inf(1)}
}

// OnAck implements Congestion.
func (r *Reno) OnAck(acked int, _, _ clock.Time) {
	if r.cwnd < r.ssthresh {
		r.cwnd += float64(acked)
	} else {
		r.cwnd += mssF * float64(acked) / r.cwnd
	}
}

// OnLoss implements Congestion.
func (r *Reno) OnLoss(clock.Time) {
	r.ssthresh = math.Max(r.cwnd/2, 2*mssF)
	r.cwnd = r.ssthresh
}

// OnTimeout implements Congestion.
func (r *Reno) OnTimeout(clock.Time) {
	r.ssthresh = math.Max(r.cwnd/2, 2*mssF)
	r.cwnd = mssF
}

// CwndBytes implements Congestion.
func (r *Reno) CwndBytes() float64 { return r.cwnd }

// PacingRate implements Congestion.
func (r *Reno) PacingRate() float64 { return 0 }

// Cubic implements TCP Cubic (Ha, Rhee, Xu), the paper's default endhost
// algorithm. Window growth in congestion avoidance follows
// W(t) = C(t-K)^3 + Wmax, with fast convergence.
type Cubic struct {
	cwnd       float64 // bytes
	ssthresh   float64
	wMax       float64 // segments
	epochStart clock.Time
	k          float64 // seconds
	originWin  float64 // segments
}

// Cubic constants from RFC 8312.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a Cubic controller.
func NewCubic() *Cubic {
	return &Cubic{cwnd: InitialCwnd * mssF, ssthresh: math.Inf(1)}
}

// OnAck implements Congestion.
func (c *Cubic) OnAck(acked int, _, now clock.Time) {
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(acked)
		return
	}
	if c.epochStart == 0 {
		c.epochStart = now
		segs := c.cwnd / mssF
		if segs < c.wMax {
			c.k = math.Cbrt((c.wMax - segs) / cubicC)
		} else {
			c.k = 0
		}
		c.originWin = segs
	}
	t := (now - c.epochStart).Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax
	if c.k == 0 {
		target = cubicC*math.Pow(t, 3) + c.originWin
	}
	segs := c.cwnd / mssF
	if target > segs {
		// Approach the cubic target over the next RTT's worth of ACKs.
		c.cwnd += mssF * (target - segs) / segs * float64(acked) / mssF
	} else {
		// Slow (TCP-friendly region handled implicitly): minimal growth.
		c.cwnd += mssF * 0.01 * float64(acked) / c.cwnd
	}
}

// OnLoss implements Congestion.
func (c *Cubic) OnLoss(clock.Time) {
	segs := c.cwnd / mssF
	// Fast convergence: release bandwidth faster when wMax shrinks.
	if segs < c.wMax {
		c.wMax = segs * (1 + cubicBeta) / 2
	} else {
		c.wMax = segs
	}
	c.cwnd = math.Max(c.cwnd*cubicBeta, 2*mssF)
	c.ssthresh = c.cwnd
	c.epochStart = 0
}

// OnTimeout implements Congestion.
func (c *Cubic) OnTimeout(clock.Time) {
	c.OnLoss(0)
	c.cwnd = mssF
	c.epochStart = 0
}

// CwndBytes implements Congestion.
func (c *Cubic) CwndBytes() float64 { return c.cwnd }

// PacingRate implements Congestion.
func (c *Cubic) PacingRate() float64 { return 0 }

// BBR implements a compact BBRv1: windowed-max bandwidth and windowed-min
// RTT estimation, startup/drain, and the 8-phase ProbeBW pacing-gain
// cycle. PROBE_RTT is omitted (flows in the evaluation are either short or
// share the bottleneck with enough churn that min-RTT samples recur); the
// simplification is recorded in DESIGN.md.
type BBR struct {
	state      bbrState
	btlBw      maxFilter
	minRTT     clock.Time
	minRTTAt   clock.Time
	cycleIdx   int
	cycleStart clock.Time
	fullBw     float64
	fullBwCnt  int
	pacingGain float64
	cwndGain   float64
	delivered  int64
	lastAckAt  clock.Time
	drainUntil clock.Time
}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
)

var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

const bbrHighGain = 2.885 // 2/ln(2)

// NewBBR returns a BBR controller.
func NewBBR() *BBR {
	return &BBR{state: bbrStartup, pacingGain: bbrHighGain, cwndGain: bbrHighGain}
}

// OnAck implements Congestion.
func (b *BBR) OnAck(acked int, rtt, now clock.Time) {
	if rtt > 0 && (b.minRTT == 0 || rtt < b.minRTT || now-b.minRTTAt > 10*clock.Second) {
		b.minRTT = rtt
		b.minRTTAt = now
	}
	// Delivery-rate sample: bytes ACKed over the inter-ACK gap. With an
	// ACK per packet this recovers the bottleneck rate (ack clocking).
	if b.lastAckAt != 0 && now > b.lastAckAt {
		rate := float64(acked) * 8 / (now - b.lastAckAt).Seconds()
		b.btlBw.update(now, rate, 10*b.rtprop())
	}
	b.lastAckAt = now
	b.delivered += int64(acked)

	switch b.state {
	case bbrStartup:
		bw := b.btlBw.get()
		if bw > b.fullBw*1.25 {
			b.fullBw = bw
			b.fullBwCnt = 0
		} else if bw > 0 {
			b.fullBwCnt++
			if b.fullBwCnt >= 3 {
				b.state = bbrDrain
				b.pacingGain = 1 / bbrHighGain
				b.drainUntil = now + b.rtprop()
			}
		}
	case bbrDrain:
		if now >= b.drainUntil {
			b.state = bbrProbeBW
			b.pacingGain = 1
			b.cwndGain = 2
			b.cycleIdx = 0
			b.cycleStart = now
		}
	case bbrProbeBW:
		if now-b.cycleStart >= b.rtprop() {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrCycleGains)
			b.cycleStart = now
			b.pacingGain = bbrCycleGains[b.cycleIdx]
		}
	}
}

func (b *BBR) rtprop() clock.Time {
	if b.minRTT == 0 {
		return 100 * clock.Millisecond
	}
	return b.minRTT
}

// OnLoss implements Congestion. BBRv1 ignores individual losses.
func (b *BBR) OnLoss(clock.Time) {}

// OnTimeout implements Congestion.
func (b *BBR) OnTimeout(clock.Time) {}

func (b *BBR) bdp() float64 {
	bw := b.btlBw.get()
	if bw == 0 {
		return InitialCwnd * mssF
	}
	return bw / 8 * b.rtprop().Seconds()
}

// CwndBytes implements Congestion.
func (b *BBR) CwndBytes() float64 {
	w := b.cwndGain * b.bdp()
	if w < 4*mssF {
		w = 4 * mssF
	}
	return w
}

// PacingRate implements Congestion.
func (b *BBR) PacingRate() float64 {
	bw := b.btlBw.get()
	if bw == 0 {
		// Until the first bandwidth sample, pace at initial window per
		// assumed RTT.
		return InitialCwnd * mssF * 8 / b.rtprop().Seconds() * b.pacingGain
	}
	return b.pacingGain * bw
}

// maxFilter is a time-windowed maximum implemented as a monotone
// decreasing deque: the front is always the window maximum.
type maxFilter struct {
	samples []maxSample
}

type maxSample struct {
	at clock.Time
	v  float64
}

func (m *maxFilter) update(now clock.Time, v float64, window clock.Time) {
	// Expire from the front.
	cut := 0
	for cut < len(m.samples) && now-m.samples[cut].at > window {
		cut++
	}
	m.samples = m.samples[cut:]
	// Dominated samples at the back can never become the maximum.
	for len(m.samples) > 0 && m.samples[len(m.samples)-1].v <= v {
		m.samples = m.samples[:len(m.samples)-1]
	}
	m.samples = append(m.samples, maxSample{now, v})
}

func (m *maxFilter) get() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	return m.samples[0].v
}

// FixedCwnd holds the congestion window constant: the paper's §7.5
// idealized-proxy emulation pins endhost windows at 450 packets.
type FixedCwnd struct{ w float64 }

// NewFixedCwnd returns a controller with a constant window of segs
// segments.
func NewFixedCwnd(segs int) *FixedCwnd { return &FixedCwnd{w: float64(segs) * mssF} }

// OnAck implements Congestion.
func (f *FixedCwnd) OnAck(int, clock.Time, clock.Time) {}

// OnLoss implements Congestion.
func (f *FixedCwnd) OnLoss(clock.Time) {}

// OnTimeout implements Congestion.
func (f *FixedCwnd) OnTimeout(clock.Time) {}

// CwndBytes implements Congestion.
func (f *FixedCwnd) CwndBytes() float64 { return f.w }

// PacingRate implements Congestion.
func (f *FixedCwnd) PacingRate() float64 { return 0 }

// NewEndhostCC builds an endhost controller by name: "cubic", "reno",
// "bbr", or "fixed:N". Unknown names panic.
func NewEndhostCC(name string) Congestion {
	switch name {
	case "cubic":
		return NewCubic()
	case "reno":
		return NewReno()
	case "bbr":
		return NewBBR()
	default:
		panic("tcp: unknown congestion control " + name)
	}
}
