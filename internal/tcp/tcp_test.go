package tcp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
)

// testPath wires a symmetric dumbbell: sender -> bottleneck link -> mux,
// receiver -> reverse link -> mux. Addresses route back to the endpoints.
type testPath struct {
	eng *sim.Engine
	mux *Mux
	fwd *netem.Link
	rev *netem.Link
}

func newTestPath(rateBps float64, rtt sim.Time, bufBytes int) *testPath {
	eng := sim.NewEngine(1)
	mux := NewMux()
	fwd := netem.NewLink(eng, "fwd", rateBps, rtt/2, qdisc.NewFIFO(bufBytes), mux)
	rev := netem.NewLink(eng, "rev", 1e9, rtt/2, qdisc.NewFIFO(1<<24), mux)
	return &testPath{eng: eng, mux: mux, fwd: fwd, rev: rev}
}

// addFlow creates a sender/receiver pair over the path.
func (tp *testPath) addFlow(id uint64, size int64, cc Congestion) (*Sender, *Receiver) {
	sa := pkt.Addr{Host: uint32(1000 + id), Port: 5000}
	ra := pkt.Addr{Host: uint32(2000 + id), Port: 80}
	s := NewSender(tp.eng, tp.fwd, sa, ra, id, size, cc, nil)
	r := NewReceiver(tp.eng, tp.rev, ra, sa, id, size, nil)
	tp.mux.Register(sa, s)
	tp.mux.Register(ra, r)
	return s, r
}

func TestShortFlowCompletesInFewRTTs(t *testing.T) {
	tp := newTestPath(96e6, 50*sim.Millisecond, 1<<20)
	s, r := tp.addFlow(1, 10_000, NewCubic())
	s.Start()
	tp.eng.RunUntil(5 * sim.Second)
	if !s.Done() || !r.Done() {
		t.Fatal("10KB flow did not complete")
	}
	// 10 KB fits in the initial window: one RTT plus serialization.
	fct := s.DoneAt - s.StartedAt
	if fct > 100*sim.Millisecond {
		t.Fatalf("FCT = %v, want ≈ 1 RTT (50ms)", fct)
	}
	if s.Retransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", s.Retransmits)
	}
}

func TestLargeFlowSaturatesLink(t *testing.T) {
	for _, cc := range []string{"cubic", "reno", "bbr"} {
		cc := cc
		t.Run(cc, func(t *testing.T) {
			tp := newTestPath(48e6, 40*sim.Millisecond, 2*240*1500) // ~2 BDP buffer
			const size = 60_000_000
			s, r := tp.addFlow(1, size, NewEndhostCC(cc))
			s.Start()
			tp.eng.RunUntil(60 * sim.Second)
			if !s.Done() || !r.Done() {
				t.Fatalf("%s: 60MB flow incomplete after 60s (acked %d)", cc, s.sndUna)
			}
			fct := (s.DoneAt - s.StartedAt).Seconds()
			gput := float64(size) * 8 / fct
			if gput < 0.70*48e6 {
				t.Fatalf("%s: goodput %.1f Mbit/s, want ≥ 70%% of 48", cc, gput/1e6)
			}
		})
	}
}

func TestLossRecoveryWithTinyBuffer(t *testing.T) {
	tp := newTestPath(24e6, 40*sim.Millisecond, 20*1500) // tiny buffer: forced drops
	const size = 20_000_000
	s, r := tp.addFlow(1, size, NewCubic())
	s.Start()
	tp.eng.RunUntil(120 * sim.Second)
	if !s.Done() || !r.Done() {
		t.Fatalf("flow incomplete: acked %d of %d (retx=%d timeouts=%d)",
			s.sndUna, int64(size), s.Retransmits, s.Timeouts)
	}
	if s.Retransmits == 0 {
		t.Fatal("expected retransmits with a 20-packet buffer")
	}
	if tp.fwd.Queue().Drops() == 0 {
		t.Fatal("expected queue drops")
	}
}

func TestSRTTTracksPathRTT(t *testing.T) {
	tp := newTestPath(96e6, 80*sim.Millisecond, 1<<22)
	s, _ := tp.addFlow(1, 2_000_000, NewReno())
	s.Start()
	tp.eng.RunUntil(10 * sim.Second)
	if !s.Done() {
		t.Fatal("flow incomplete")
	}
	if s.SRTT() < 80*sim.Millisecond || s.SRTT() > 200*sim.Millisecond {
		t.Fatalf("SRTT = %v, want ≈ 80ms (plus queueing)", s.SRTT())
	}
}

func TestTwoFlowsShareRoughlyFairly(t *testing.T) {
	tp := newTestPath(48e6, 40*sim.Millisecond, 240*1500)
	const size = 30_000_000
	s1, _ := tp.addFlow(1, size, NewCubic())
	s2, _ := tp.addFlow(2, size, NewCubic())
	s1.Start()
	s2.Start()
	tp.eng.RunUntil(60 * sim.Second)
	if !s1.Done() || !s2.Done() {
		t.Fatal("flows incomplete")
	}
	f1 := (s1.DoneAt - s1.StartedAt).Seconds()
	f2 := (s2.DoneAt - s2.StartedAt).Seconds()
	ratio := math.Max(f1, f2) / math.Min(f1, f2)
	if ratio > 1.6 {
		t.Fatalf("FCT ratio %.2f between equal flows, want < 1.6 (f1=%.1fs f2=%.1fs)", ratio, f1, f2)
	}
}

func TestFixedCwndKeepsWindowConstant(t *testing.T) {
	tp := newTestPath(96e6, 50*sim.Millisecond, 1<<24)
	cc := NewFixedCwnd(450)
	s, r := tp.addFlow(1, 10_000_000, cc)
	s.Start()
	tp.eng.RunUntil(30 * sim.Second)
	if !s.Done() || !r.Done() {
		t.Fatal("flow incomplete")
	}
	if cc.CwndBytes() != 450*mssF {
		t.Fatalf("fixed window drifted to %v", cc.CwndBytes())
	}
}

func TestRetransmitsGetFreshIPID(t *testing.T) {
	// Feed a sender's packets through a lossy tap and record IPIDs.
	eng := sim.NewEngine(3)
	mux := NewMux()
	seen := map[uint16]int{}
	dropEvery := 7
	count := 0
	lossy := netem.NewTap(func(p *pkt.Packet) {
		if p.Proto == pkt.ProtoTCP && p.Flags&pkt.FlagACK == 0 {
			seen[p.IPID]++
		}
	}, netem.ReceiverFunc(func(p *pkt.Packet) {}))
	_ = lossy
	fwdQ := qdisc.NewFIFO(1 << 22)
	var fwd *netem.Link
	dropper := netem.ReceiverFunc(func(p *pkt.Packet) {
		count++
		if p.Flags&pkt.FlagACK == 0 {
			seen[p.IPID]++
			if count%dropEvery == 0 {
				return // drop
			}
		}
		mux.Receive(p)
	})
	fwd = netem.NewLink(eng, "fwd", 24e6, 20*sim.Millisecond, fwdQ, dropper)
	rev := netem.NewLink(eng, "rev", 1e9, 20*sim.Millisecond, qdisc.NewFIFO(1<<22), mux)
	sa := pkt.Addr{Host: 1, Port: 1}
	ra := pkt.Addr{Host: 2, Port: 2}
	s := NewSender(eng, fwd, sa, ra, 1, 3_000_000, NewCubic(), nil)
	r := NewReceiver(eng, rev, ra, sa, 1, 3_000_000, nil)
	mux.Register(sa, s)
	mux.Register(ra, r)
	s.Start()
	eng.RunUntil(60 * sim.Second)
	if !s.Done() {
		t.Fatalf("flow incomplete under loss (retx=%d timeouts=%d una=%d)", s.Retransmits, s.Timeouts, s.sndUna)
	}
	if s.Retransmits == 0 {
		t.Fatal("no retransmits despite forced loss")
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("IPID %d reused %d times; retransmits must get fresh IPIDs", id, n)
		}
	}
}

func TestReceiverReassemblyInOrderAck(t *testing.T) {
	eng := sim.NewEngine(1)
	var acks []int64
	out := netem.ReceiverFunc(func(p *pkt.Packet) { acks = append(acks, p.Ack) })
	r := NewReceiver(eng, out, pkt.Addr{Host: 2}, pkt.Addr{Host: 1}, 1, 3*1460, nil)
	for i := 0; i < 3; i++ {
		r.Receive(&pkt.Packet{Proto: pkt.ProtoTCP, Seq: int64(i * 1460), Size: 1500})
	}
	want := []int64{1460, 2920, 4380}
	for i, a := range acks {
		if a != want[i] {
			t.Fatalf("ack %d = %d, want %d", i, a, want[i])
		}
	}
	if !r.Done() {
		t.Fatal("receiver not done after all bytes")
	}
}

func TestReceiverDupAcksForGap(t *testing.T) {
	eng := sim.NewEngine(1)
	var acks []int64
	out := netem.ReceiverFunc(func(p *pkt.Packet) { acks = append(acks, p.Ack) })
	r := NewReceiver(eng, out, pkt.Addr{Host: 2}, pkt.Addr{Host: 1}, 1, 4*1460, nil)
	r.Receive(&pkt.Packet{Proto: pkt.ProtoTCP, Seq: 0, Size: 1500})
	r.Receive(&pkt.Packet{Proto: pkt.ProtoTCP, Seq: 2920, Size: 1500}) // gap at 1460
	r.Receive(&pkt.Packet{Proto: pkt.ProtoTCP, Seq: 4380, Size: 1500})
	r.Receive(&pkt.Packet{Proto: pkt.ProtoTCP, Seq: 1460, Size: 1500}) // fill
	want := []int64{1460, 1460, 1460, 5840}
	if len(acks) != len(want) {
		t.Fatalf("got %d acks, want %d", len(acks), len(want))
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("ack %d = %d, want %d", i, acks[i], want[i])
		}
	}
}

// Property: any delivery permutation of the segments completes the stream.
func TestPropertyReassemblyAnyOrder(t *testing.T) {
	f := func(seed int64, nseg uint8) bool {
		n := int(nseg)%20 + 1
		eng := sim.NewEngine(1)
		r := NewReceiver(eng, netem.ReceiverFunc(func(*pkt.Packet) {}),
			pkt.Addr{Host: 2}, pkt.Addr{Host: 1}, 1, int64(n*1460), nil)
		order := rand.New(rand.NewSource(seed)).Perm(n)
		for _, i := range order {
			r.Receive(&pkt.Packet{Proto: pkt.ProtoTCP, Seq: int64(i * 1460), Size: 1500})
		}
		return r.Done() && r.rcvNxt == int64(n*1460)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: duplicated deliveries never over-advance rcvNxt.
func TestPropertyReassemblyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		const n = 10
		eng := sim.NewEngine(1)
		r := NewReceiver(eng, netem.ReceiverFunc(func(*pkt.Packet) {}),
			pkt.Addr{Host: 2}, pkt.Addr{Host: 1}, 1, n*1460, nil)
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < 100; k++ {
			i := rng.Intn(n)
			r.Receive(&pkt.Packet{Proto: pkt.ProtoTCP, Seq: int64(i * 1460), Size: 1500})
			if r.rcvNxt > n*1460 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMuxDuplicateRegistrationPanics(t *testing.T) {
	m := NewMux()
	a := pkt.Addr{Host: 1, Port: 1}
	m.Register(a, &netem.Sink{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	m.Register(a, &netem.Sink{})
}

func TestMuxUnregister(t *testing.T) {
	m := NewMux()
	a := pkt.Addr{Host: 1, Port: 1}
	sink := &netem.Sink{}
	m.Register(a, sink)
	m.Unregister(a)
	m.Receive(&pkt.Packet{Dst: a})
	if sink.Count != 0 || m.Dropped() != 1 {
		t.Fatal("unregister failed")
	}
}

func TestBBRConvergesNearBottleneckRate(t *testing.T) {
	tp := newTestPath(48e6, 40*sim.Millisecond, 480*1500)
	cc := NewBBR()
	s, _ := tp.addFlow(1, 40_000_000, cc)
	s.Start()
	tp.eng.RunUntil(30 * sim.Second)
	if !s.Done() {
		t.Fatal("BBR flow incomplete")
	}
	bw := cc.btlBw.get()
	if bw < 0.7*48e6 || bw > 1.4*48e6 {
		t.Fatalf("BBR bandwidth estimate %.1f Mbit/s, want ≈ 48", bw/1e6)
	}
}

func TestMaxFilterWindowAndMonotonicity(t *testing.T) {
	var m maxFilter
	m.update(0, 5, 10)
	m.update(1, 3, 10)
	m.update(2, 4, 10)
	if m.get() != 5 {
		t.Fatalf("max = %v, want 5", m.get())
	}
	m.update(15, 1, 10) // expires everything older than t=5
	if m.get() != 1 {
		t.Fatalf("max after expiry = %v, want 1", m.get())
	}
}

func TestRenoHalvesOnLoss(t *testing.T) {
	r := NewReno()
	for i := 0; i < 100; i++ {
		r.OnAck(pkt.MSS, 0, 0)
	}
	before := r.CwndBytes()
	r.OnLoss(0)
	if got := r.CwndBytes(); math.Abs(got-before/2) > 1 {
		t.Fatalf("cwnd after loss = %v, want %v", got, before/2)
	}
	r.OnTimeout(0)
	if r.CwndBytes() != mssF {
		t.Fatalf("cwnd after timeout = %v, want 1 MSS", r.CwndBytes())
	}
}

func TestCubicReducesBy30PercentOnLoss(t *testing.T) {
	c := NewCubic()
	for i := 0; i < 100; i++ {
		c.OnAck(pkt.MSS, 0, sim.Time(i)*sim.Millisecond)
	}
	before := c.CwndBytes()
	c.OnLoss(0)
	if got := c.CwndBytes(); math.Abs(got-before*0.7) > 1 {
		t.Fatalf("cwnd after loss = %v, want %v", got, before*0.7)
	}
}

func TestUnknownCCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown cc")
		}
	}()
	NewEndhostCC("vegas")
}
