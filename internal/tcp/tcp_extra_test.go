package tcp

import (
	"testing"

	"bundler/internal/netem"
	"bundler/internal/pkt"
	"bundler/internal/qdisc"
	"bundler/internal/sim"
)

func TestAbortStopsTransmission(t *testing.T) {
	tp := newTestPath(48e6, 40*sim.Millisecond, 1<<22)
	s, _ := tp.addFlow(1, 1<<40, NewCubic())
	s.Start()
	tp.eng.RunUntil(2 * sim.Second)
	sentBefore := s.DataSent
	s.Abort()
	tp.eng.RunUntil(10 * sim.Second)
	if s.DataSent != sentBefore {
		t.Fatalf("sender transmitted %d packets after Abort", s.DataSent-sentBefore)
	}
	if !s.Done() {
		t.Fatal("aborted sender should report done")
	}
}

func TestAbortCancelsTimers(t *testing.T) {
	// Abort with outstanding data: the RTO must not fire afterward (the
	// engine should go quiet once in-flight packets drain).
	eng := sim.NewEngine(1)
	blackhole := netem.ReceiverFunc(func(*pkt.Packet) {})
	s := NewSender(eng, blackhole, pkt.Addr{Host: 1}, pkt.Addr{Host: 2}, 1, 1<<20, NewCubic(), nil)
	s.Start()
	eng.RunUntil(100 * sim.Millisecond)
	s.Abort()
	timeouts := s.Timeouts
	eng.RunUntil(10 * sim.Second)
	if s.Timeouts != timeouts {
		t.Fatalf("RTO fired %d times after Abort", s.Timeouts-timeouts)
	}
}

func TestRTOBackoffIsExponentialAndCapped(t *testing.T) {
	// A sender into a black hole retransmits on exponentially backed-off
	// timeouts, capped at maxRTO.
	eng := sim.NewEngine(1)
	var sendTimes []sim.Time
	blackhole := netem.ReceiverFunc(func(p *pkt.Packet) {
		if p.Flags&pkt.FlagACK == 0 {
			sendTimes = append(sendTimes, eng.Now())
		}
	})
	s := NewSender(eng, blackhole, pkt.Addr{Host: 1}, pkt.Addr{Host: 2}, 1, 1000, NewReno(), nil)
	s.Start()
	eng.RunUntil(200 * sim.Second)
	if s.Timeouts < 4 {
		t.Fatalf("only %d timeouts in 200s of black hole", s.Timeouts)
	}
	// Gaps between successive retransmissions grow (at least double until
	// the cap).
	var prevGap sim.Time
	for i := 1; i < len(sendTimes) && i < 5; i++ {
		gap := sendTimes[i] - sendTimes[i-1]
		if prevGap > 0 && gap < prevGap {
			t.Fatalf("retransmit gap shrank: %v after %v", gap, prevGap)
		}
		prevGap = gap
	}
	for i := 1; i < len(sendTimes); i++ {
		if gap := sendTimes[i] - sendTimes[i-1]; gap > maxRTO+sim.Second {
			t.Fatalf("gap %v exceeds RTO cap", gap)
		}
	}
}

func TestSACKRecoveryRetransmitsOnlyHoles(t *testing.T) {
	// Drop exactly one data packet; SACK recovery should retransmit one
	// segment, not go-back-N.
	eng := sim.NewEngine(2)
	mux := NewMux()
	dropOne := true
	var dropped int64 = -1
	filter := netem.ReceiverFunc(func(p *pkt.Packet) {
		if dropOne && p.Flags&pkt.FlagACK == 0 && p.Seq > 20000 {
			dropOne = false
			dropped = p.Seq
			return
		}
		mux.Receive(p)
	})
	fwd := netem.NewLink(eng, "fwd", 48e6, 20*sim.Millisecond, qdiscFIFO(), filter)
	rev := netem.NewLink(eng, "rev", 1e9, 20*sim.Millisecond, qdiscFIFO(), mux)
	sa, ra := pkt.Addr{Host: 1, Port: 1}, pkt.Addr{Host: 2, Port: 2}
	s := NewSender(eng, fwd, sa, ra, 1, 1_000_000, NewCubic(), nil)
	r := NewReceiver(eng, rev, ra, sa, 1, 1_000_000, nil)
	mux.Register(sa, s)
	mux.Register(ra, r)
	s.Start()
	eng.RunUntil(10 * sim.Second)
	if !s.Done() {
		t.Fatalf("flow incomplete (dropped seq %d)", dropped)
	}
	if s.Retransmits != 1 {
		t.Fatalf("%d retransmits for a single loss, want exactly 1 (SACK)", s.Retransmits)
	}
	if s.Timeouts != 0 {
		t.Fatalf("%d timeouts for a fast-retransmittable loss", s.Timeouts)
	}
}

func TestSenderAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSender(eng, &netem.Sink{}, pkt.Addr{Host: 1}, pkt.Addr{Host: 2}, 42, 5000, NewReno(), nil)
	if s.FlowID() != 42 || s.Size() != 5000 || s.Acked() != 0 {
		t.Fatal("accessor values wrong")
	}
	if s.Done() {
		t.Fatal("done before start")
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-size transfer")
		}
	}()
	NewSender(sim.NewEngine(1), &netem.Sink{}, pkt.Addr{}, pkt.Addr{}, 1, 0, NewReno(), nil)
}

func TestCompletionCallbacksFire(t *testing.T) {
	tp := newTestPath(96e6, 20*sim.Millisecond, 1<<22)
	eng := tp.eng
	var sDone, rDone sim.Time
	sa := pkt.Addr{Host: 9001, Port: 1}
	ra := pkt.Addr{Host: 9002, Port: 2}
	s := NewSender(eng, tp.fwd, sa, ra, 7, 100_000, NewCubic(), func(now sim.Time) { sDone = now })
	r := NewReceiver(eng, tp.rev, ra, sa, 7, 100_000, func(now sim.Time) { rDone = now })
	tp.mux.Register(sa, s)
	tp.mux.Register(ra, r)
	s.Start()
	eng.RunUntil(5 * sim.Second)
	if sDone == 0 || rDone == 0 {
		t.Fatal("completion callbacks did not fire")
	}
	// The receiver finishes half an RTT before the sender learns of it.
	if sDone <= rDone {
		t.Fatal("sender completed before receiver")
	}
}

// qdiscFIFO builds a large FIFO for test links.
func qdiscFIFO() qdisc.Qdisc { return qdisc.NewFIFO(1 << 24) }
