package ccalg

import (
	"math"
	"math/rand"
	"testing"

	"bundler/internal/clock"
)

func meas(rtt, minRTT clock.Time, send, recv, mu float64) Measurement {
	return Measurement{RTT: rtt, MinRTT: minRTT, SendRate: send, RecvRate: recv, Mu: mu}
}

// driveToEquilibrium runs a crude fluid model of a single bottleneck: the
// algorithm's rate fills a queue drained at capacity mu, and the measured
// RTT reflects the resulting queueing delay. It returns the final rate and
// queueing delay.
func driveToEquilibrium(t *testing.T, alg Alg, mu float64, minRTT clock.Time, seconds float64) (rate float64, qdelay clock.Time) {
	t.Helper()
	var qBits float64
	now := clock.Time(0)
	const tick = 10 * clock.Millisecond
	rate = mu / 2
	for now.Seconds() < seconds {
		now += tick
		dt := tick.Seconds()
		qBits += (rate - mu) * dt
		if qBits < 0 {
			qBits = 0
		}
		qd := clock.Time(qBits / mu * float64(clock.Second))
		recv := mu
		if rate < mu && qBits == 0 {
			recv = rate
		}
		alg.OnMeasurement(meas(minRTT+qd, minRTT, rate, recv, mu), now)
		rate = alg.Rate(now)
	}
	return rate, clock.Time(qBits / mu * float64(clock.Second))
}

func TestCopaConvergesToCapacityWithSmallQueue(t *testing.T) {
	rate, qd := driveToEquilibrium(t, NewCopa(), 96e6, 50*clock.Millisecond, 30)
	if rate < 0.85*96e6 || rate > 1.3*96e6 {
		t.Fatalf("copa rate %.1f Mbit/s, want ≈ 96", rate/1e6)
	}
	if qd > 15*clock.Millisecond {
		t.Fatalf("copa standing queue %v, want small (<15ms)", qd)
	}
}

func TestBasicDelayConvergesToCapacityWithSmallQueue(t *testing.T) {
	rate, qd := driveToEquilibrium(t, NewBasicDelay(), 48e6, 40*clock.Millisecond, 30)
	if rate < 0.85*48e6 || rate > 1.3*48e6 {
		t.Fatalf("basicdelay rate %.1f Mbit/s, want ≈ 48", rate/1e6)
	}
	if qd > 15*clock.Millisecond {
		t.Fatalf("basicdelay standing queue %v, want <15ms", qd)
	}
}

func TestBBRBundleMaintainsStandingQueue(t *testing.T) {
	rate, _ := driveToEquilibrium(t, NewBBRBundle(), 48e6, 40*clock.Millisecond, 30)
	// BBR paces around capacity; its probing keeps rate ≈ mu (cycle mean
	// slightly above due to queue it creates).
	if rate < 0.7*48e6 || rate > 1.5*48e6 {
		t.Fatalf("bbr rate %.1f Mbit/s, want ≈ 48", rate/1e6)
	}
}

func TestCopaDrainsQueueWhenAboveTarget(t *testing.T) {
	c := NewCopa()
	now := clock.Time(0)
	// Large persistent queueing delay: Copa must reduce its window.
	for i := 0; i < 200; i++ {
		now += 10 * clock.Millisecond
		c.OnMeasurement(meas(150*clock.Millisecond, 50*clock.Millisecond, 96e6, 96e6, 96e6), now)
	}
	got := c.Rate(now)
	// Copa reduces toward — but not below — 80 % of the receive rate the
	// network is still delivering: that deficit drains a self-inflicted
	// queue without surrendering the bundle's share of a foreign one.
	if got > 0.85*96e6 {
		t.Fatalf("copa rate %.1f Mbit/s under 100ms standing queue, want backoff toward 0.8*R", got/1e6)
	}
	if got < 0.7*96e6 {
		t.Fatalf("copa rate %.1f Mbit/s collapsed below the 0.8*R floor", got/1e6)
	}
}

func TestCrossTrafficRateEstimate(t *testing.T) {
	// We send 40, receive 40, capacity 100 -> cross ≈ 60.
	m := meas(0, 0, 40e6, 40e6, 100e6)
	if got := CrossTrafficRate(m); math.Abs(got-60e6) > 1 {
		t.Fatalf("xc = %.1f, want 60 Mbit/s", got/1e6)
	}
	// Receiving everything at capacity: no cross traffic.
	m = meas(0, 0, 100e6, 100e6, 100e6)
	if got := CrossTrafficRate(m); got != 0 {
		t.Fatalf("xc = %v, want 0", got)
	}
	// Degenerate inputs.
	if CrossTrafficRate(meas(0, 0, 1, 0, 100e6)) != 0 {
		t.Fatal("zero recv rate should yield 0")
	}
}

func TestPulserZeroMean(t *testing.T) {
	p := NewPulser()
	const steps = 20000
	sum := 0.0
	for i := 0; i < steps; i++ {
		now := clock.Time(i) * p.Period / steps
		sum += p.Offset(now, 100e6)
	}
	mean := sum / steps
	if math.Abs(mean) > 0.002*100e6 {
		t.Fatalf("pulse mean %.3f Mbit/s, want ≈ 0", mean/1e6)
	}
}

func TestPulserUpPulseAreaMatchesPaper(t *testing.T) {
	// Area under the up-pulse should be A·T/(2π)·π = ... the paper's
	// formula gives ∫ A·sin(4πt/T) over [0,T/4] = A·T/(2π). Numerically
	// integrate and compare.
	p := NewPulser()
	mu := 96e6
	amp := p.AmplitudeFrac * mu
	const steps = 100000
	dt := p.Period.Seconds() / steps
	area := 0.0
	for i := 0; i < steps; i++ {
		now := clock.Time(i) * p.Period / steps
		if off := p.Offset(now, mu); off > 0 {
			area += off * dt
		}
	}
	want := amp * p.Period.Seconds() / (2 * math.Pi) * 2 // ∫sin over half period = 2/π · A · L
	// ∫_0^{T/4} A sin(π t/(T/4)) dt = 2A(T/4)/π = A·T/(2π) · ... just
	// compare against the closed form directly:
	want = 2 * amp * (p.Period.Seconds() / 4) / math.Pi
	if math.Abs(area-want)/want > 0.01 {
		t.Fatalf("up-pulse area %.4f, want %.4f", area, want)
	}
}

func TestPulserFrequency(t *testing.T) {
	p := NewPulser()
	if got := p.Frequency(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("pulse frequency %.2f Hz, want 5", got)
	}
}

func TestDetectorFlagsElasticResponse(t *testing.T) {
	// Elastic cross traffic mirrors our pulses (opposite sign) at f_p.
	d := NewDetector(5, 100)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < DetectorWindow; i++ {
		tt := float64(i) / 100
		z := 50e6 - 10e6*math.Sin(2*math.Pi*5*tt) + 1e6*r.NormFloat64()
		d.AddSample(z)
	}
	if !d.Ready() {
		t.Fatal("detector not ready after full window")
	}
	if !d.Elastic(100e6) {
		t.Fatal("elastic cross traffic not detected")
	}
}

func TestDetectorIgnoresInelasticCross(t *testing.T) {
	// Constant-rate cross traffic shows no 5 Hz component.
	d := NewDetector(5, 100)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < DetectorWindow; i++ {
		z := 50e6 + 2e6*r.NormFloat64()
		d.AddSample(z)
	}
	if d.Elastic(100e6) {
		t.Fatal("inelastic cross traffic misclassified as elastic")
	}
}

func TestDetectorGatesOnCrossMagnitude(t *testing.T) {
	d := NewDetector(5, 100)
	for i := 0; i < DetectorWindow; i++ {
		tt := float64(i) / 100
		d.AddSample(1e6 * math.Sin(2*math.Pi*5*tt))
	}
	if d.Elastic(100e6) {
		t.Fatal("negligible cross traffic (1% of mu) must not classify as elastic")
	}
}

func TestDetectorNotReadyBeforeFullWindow(t *testing.T) {
	d := NewDetector(5, 100)
	for i := 0; i < DetectorWindow-1; i++ {
		d.AddSample(1)
	}
	if d.Ready() {
		t.Fatal("ready before window filled")
	}
	if d.Elastic(100e6) {
		t.Fatal("classified before window filled")
	}
}

func TestPIControllerReachesQueueTarget(t *testing.T) {
	// Fluid model: arrivals at a fixed aggregate rate; the PI-set rate
	// drains the queue. The queue should settle at the 10 ms target.
	pi := NewPIController()
	mu := 96e6
	arrival := 96e6
	var qBits float64
	now := clock.Time(0)
	pi.Reset(mu, now)
	const tick = 10 * clock.Millisecond
	var lastQ clock.Time
	for i := 0; i < 3000; i++ {
		now += tick
		rate := pi.Rate()
		qBits += (arrival - rate) * tick.Seconds()
		if qBits < 0 {
			qBits = 0
		}
		lastQ = clock.Time(qBits / mu * float64(clock.Second))
		pi.Update(lastQ, mu, now)
	}
	if lastQ < 5*clock.Millisecond || lastQ > 20*clock.Millisecond {
		t.Fatalf("PI settled at queue %v, want ≈ 10ms", lastQ)
	}
}

func TestPIControllerRateBounds(t *testing.T) {
	pi := NewPIController()
	pi.Reset(1e6, 0)
	// Huge queue for a long time must not blow past 4·mu.
	for i := 1; i <= 1000; i++ {
		pi.Update(10*clock.Second, 10e6, clock.Time(i)*10*clock.Millisecond)
	}
	if pi.Rate() > 40e6+1 {
		t.Fatalf("rate %v exceeded 4·mu bound", pi.Rate())
	}
	// Empty queue forever must not go below 1% mu.
	for i := 1001; i <= 3000; i++ {
		pi.Update(0, 10e6, clock.Time(i)*10*clock.Millisecond)
	}
	if pi.Rate() < 0.1e6-1 {
		t.Fatalf("rate %v fell below 1%% mu floor", pi.Rate())
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"copa", "basicdelay", "bbr"} {
		if got := New(name).Name(); got != name {
			t.Fatalf("New(%q).Name() = %q", name, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name did not panic")
		}
	}()
	New("vegas")
}
