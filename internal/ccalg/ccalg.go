// Package ccalg implements the congestion-control algorithms Bundler's
// inner loop runs at the sendbox (§4.3, §6.1 of the paper): Copa, Nimbus
// BasicDelay, and a rate-based BBR, plus the Nimbus machinery from §5.1 —
// the asymmetric rate pulser, the FFT-based elasticity detector for
// buffer-filling cross traffic, and the PI controller that holds a small
// sendbox queue while "letting traffic pass".
//
// All rates are bits/second; all algorithms consume epoch Measurements
// produced by the sendbox measurement module and are polled for a rate on
// the 10 ms CCP control cadence.
package ccalg

import (
	"math"

	"bundler/internal/clock"
	"bundler/internal/fft"
	"bundler/internal/pkt"
)

// Measurement is one windowed congestion sample: the sendbox averages
// epoch measurements over a sliding window of about one RTT (§4.5).
type Measurement struct {
	RTT      clock.Time // windowed RTT
	MinRTT   clock.Time // minimum RTT observed for the bundle
	SendRate float64    // bits/s measured across send epochs
	RecvRate float64    // bits/s measured across congestion-ACK arrivals
	Mu       float64    // bottleneck capacity estimate (windowed max recv rate)
	// LatestRTT is the most recent single-epoch RTT sample (0 if unset).
	// Algorithms that maintain their own filters (Copa's standing-RTT
	// window) consume this: filtering an already window-averaged RTT
	// doubles the smoothing lag.
	LatestRTT clock.Time
}

// Alg computes the bundle's base sending rate from measurements.
type Alg interface {
	// Name identifies the algorithm in reports.
	Name() string
	// OnMeasurement feeds one new windowed measurement.
	OnMeasurement(m Measurement, now clock.Time)
	// Rate returns the base sending rate in bits/s.
	Rate(now clock.Time) float64
}

// minRatePkts floors internal windows so algorithms can always probe.
const minCwndPkts = 4

// Copa implements Copa (Arun & Balakrishnan, NSDI 2018) adapted to
// aggregate, epoch-measurement-driven operation. The target rate is
// 1/(δ·dq) packets/s where dq is the standing queueing delay; the window
// moves toward the target with a velocity that doubles while the direction
// is stable, yielding Copa's characteristic small standing queue.
type Copa struct {
	delta float64
	cwnd  float64 // packets
	vel   float64
	dir   float64
	// Velocity doubles at most once per RTT while direction persists.
	lastVelUpdate clock.Time
	lastDir       float64

	// Standing RTT: minimum over the most recent half-RTT of samples.
	recent []rttSample

	lastRate float64
	lastTime clock.Time
}

type rttSample struct {
	at  clock.Time
	rtt clock.Time
}

// NewCopa returns a Copa controller with the default δ = 0.5.
func NewCopa() *Copa {
	return &Copa{delta: 0.5, cwnd: 2 * minCwndPkts, vel: 1, dir: 1, lastDir: 1}
}

// Name implements Alg.
func (c *Copa) Name() string { return "copa" }

// OnMeasurement implements Alg.
func (c *Copa) OnMeasurement(m Measurement, now clock.Time) {
	if m.RTT <= 0 || m.MinRTT <= 0 {
		return
	}
	sample := m.LatestRTT
	if sample <= 0 {
		sample = m.RTT
	}
	// Maintain the standing-RTT window (half an RTT of history).
	c.recent = append(c.recent, rttSample{now, sample})
	cutoff := now - m.RTT/2
	for len(c.recent) > 1 && c.recent[0].at < cutoff {
		c.recent = c.recent[1:]
	}
	standing := c.recent[0].rtt
	for _, s := range c.recent[1:] {
		if s.rtt < standing {
			standing = s.rtt
		}
	}

	dq := (standing - m.MinRTT).Seconds()
	curRate := c.cwnd / standing.Seconds() // packets/s
	var dir float64 = 1
	if dq > 0 {
		target := 1 / (c.delta * dq)
		switch {
		case curRate > 1.05*target:
			dir = -1
		case curRate < 0.95*target:
			dir = 1
		default:
			// Dead band: aggregate epoch measurements put the equilibrium
			// standing queue (sub-millisecond) inside the noise floor;
			// holding here avoids direction chatter.
			c.vel = 1
			c.lastDir = 0
			return
		}
	}
	// Velocity: double every two RTTs while the direction persists; reset
	// on reversal. The feedback path (epoch measurement + 1 RTT of
	// window smoothing) is laggier than per-ACK Copa, so doubling is
	// slowed and capped harder to avoid bang-bang oscillation.
	if dir != c.lastDir {
		c.vel = 1
		c.lastDir = dir
		c.lastVelUpdate = now
	} else if now-c.lastVelUpdate >= 2*standing {
		c.vel *= 2
		if lim := c.cwnd / 4; c.vel > lim && lim >= 1 {
			c.vel = lim
		}
		c.lastVelUpdate = now
	}

	dt := (now - c.lastTime).Seconds()
	if c.lastTime == 0 || dt <= 0 || dt > 1 {
		dt = standing.Seconds()
	}
	c.lastTime = now
	// Copa moves v/δ packets per RTT.
	c.cwnd += dir * (c.vel / c.delta) * (dt / standing.Seconds())
	if c.cwnd < minCwndPkts {
		c.cwnd = minCwndPkts
	}
	// At aggregate rates, Copa's equilibrium standing queue
	// (1/(δ·rate) seconds) is below both the queue's own packet
	// granularity and the epoch measurement resolution, so the window
	// rule alone oscillates around queue-empty and parks a few percent
	// under capacity. When the queue measures empty and the window sits
	// below the measured bandwidth-delay product, snap up to it — the
	// δ-rule still trims any overshoot the moment a standing queue
	// appears.
	if m.Mu > 0 {
		bdp := m.Mu / 8 / float64(pkt.MTU) * standing.Seconds()
		if dq < 0.0005 && c.cwnd < bdp && bdp >= minCwndPkts {
			c.cwnd = bdp
		}
		// Cap at 2.5 BDP: aggregate operation can leave the standing-RTT
		// estimate stale across queue drains, and an uncapped window then
		// converts into an enormous instantaneous rate.
		if maxW := 2.5 * bdp; maxW >= minCwndPkts && c.cwnd > maxW {
			c.cwnd = maxW
		}
	}
	c.lastRate = c.cwnd * pkt.MTU * 8 / standing.Seconds()
	// Never fall far below the rate the network is demonstrably
	// delivering: draining a self-inflicted queue needs only a modest
	// deficit, while collapsing below the achieved rate during a foreign
	// queue burst surrenders the bundle's share for nothing.
	if floor := 0.8 * m.RecvRate; c.lastRate < floor && floor > 0 {
		c.lastRate = floor
		c.cwnd = floor / (pkt.MTU * 8) * standing.Seconds()
		if c.cwnd < minCwndPkts {
			c.cwnd = minCwndPkts
		}
	}
}

// Rate implements Alg.
func (c *Copa) Rate(clock.Time) float64 {
	if c.lastRate == 0 {
		return float64(2*minCwndPkts) * pkt.MTU * 8 / 0.1
	}
	return c.lastRate
}

// BasicDelay implements the Nimbus paper's basic delay-control rule: send
// at the estimated available capacity (total minus cross traffic),
// modulated to hold queueing delay at a small target.
type BasicDelay struct {
	// QueueTargetFrac expresses the queueing-delay target as a fraction
	// of the minimum RTT (Nimbus holds a small standing queue; 1/8 works
	// well across the evaluation's RTT range).
	QueueTargetFrac float64
	// Gain scales the corrective term.
	Gain float64

	rate float64
}

// NewBasicDelay returns the controller with the defaults used in the
// evaluation.
func NewBasicDelay() *BasicDelay {
	return &BasicDelay{QueueTargetFrac: 0.125, Gain: 0.8}
}

// Name implements Alg.
func (b *BasicDelay) Name() string { return "basicdelay" }

// OnMeasurement implements Alg.
func (b *BasicDelay) OnMeasurement(m Measurement, now clock.Time) {
	if m.MinRTT <= 0 || m.Mu <= 0 {
		return
	}
	xc := CrossTrafficRate(m)
	avail := m.Mu - xc
	if avail < 0.05*m.Mu {
		avail = 0.05 * m.Mu
	}
	dq := (m.RTT - m.MinRTT).Seconds()
	dt := b.QueueTargetFrac * m.MinRTT.Seconds()
	if dt <= 0 {
		dt = 0.005
	}
	// The corrective multiplier is clamped: a deep queue spike (often
	// caused by cross traffic, already subtracted via avail) must slow us
	// down, not starve the bundle until someone else's queue drains.
	mult := 1 + b.Gain*(dt-dq)/dt
	if mult < 0.3 {
		mult = 0.3
	}
	// Probing above the available rate is bounded: avail already sits at
	// (or above) the bundle's fair share, and a large overshoot converts
	// straight into a bottleneck queue spike.
	if mult > 1.2 {
		mult = 1.2
	}
	r := avail * mult
	if dq <= dt {
		// Below the queue target there is no congestion evidence at all:
		// pace at capacity rather than at the (noisy) availability
		// estimate — epochs straddling busy and idle periods can read
		// spare capacity as cross traffic and talk the rate down.
		if probe := 1.02 * m.Mu; r < probe {
			r = probe
		}
	}
	lo, hi := 0.05*m.Mu, 2*m.Mu
	if r < lo {
		r = lo
	}
	if r > hi {
		r = hi
	}
	b.rate = r
}

// Rate implements Alg.
func (b *BasicDelay) Rate(clock.Time) float64 {
	if b.rate == 0 {
		return 1e6
	}
	return b.rate
}

// BBRBundle is a rate-based BBR for the bundle: pace at a gain cycle
// around the windowed-max receive rate. As §7.4 shows, its 1.25× probing
// phases keep a standing in-network queue, which is why it underperforms
// the delay controllers at the sendbox.
type BBRBundle struct {
	mu         float64 // windowed max recv rate
	muAt       clock.Time
	minRTT     clock.Time
	cycleIdx   int
	cycleStart clock.Time
	started    bool
	startup    bool
	lastMu     float64
	plateau    int
}

var bundleCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBRBundle returns the controller.
func NewBBRBundle() *BBRBundle { return &BBRBundle{startup: true} }

// Name implements Alg.
func (b *BBRBundle) Name() string { return "bbr" }

// OnMeasurement implements Alg.
func (b *BBRBundle) OnMeasurement(m Measurement, now clock.Time) {
	if m.RecvRate > b.mu || now-b.muAt > 10*clock.Second {
		b.mu = m.RecvRate
		b.muAt = now
	}
	if m.MinRTT > 0 {
		b.minRTT = m.MinRTT
	}
	b.started = true
	if b.startup {
		if b.mu > b.lastMu*1.25 {
			b.lastMu = b.mu
			b.plateau = 0
		} else {
			b.plateau++
			if b.plateau >= 3 {
				b.startup = false
				b.cycleStart = now
			}
		}
	} else if rt := b.rtprop(); now-b.cycleStart >= rt {
		b.cycleIdx = (b.cycleIdx + 1) % len(bundleCycleGains)
		b.cycleStart = now
	}
}

func (b *BBRBundle) rtprop() clock.Time {
	if b.minRTT == 0 {
		return 100 * clock.Millisecond
	}
	return b.minRTT
}

// Rate implements Alg.
func (b *BBRBundle) Rate(clock.Time) float64 {
	if !b.started || b.mu == 0 {
		return 1e6
	}
	if b.startup {
		return 2.885 * b.mu
	}
	return bundleCycleGains[b.cycleIdx] * b.mu
}

// CrossTrafficRate estimates the competing traffic's rate at the shared
// bottleneck (Nimbus eq. 1): x = μ·S/R − S. A receive rate at capacity
// with S below it implies the gap is someone else's traffic.
//
// The formula is only meaningful while the bottleneck is busy: on an idle
// link R equals S and the expression degenerates to μ − S, which is spare
// capacity, not cross traffic. Measurements that include RTT information
// therefore gate on observed queueing delay.
func CrossTrafficRate(m Measurement) float64 {
	if m.RecvRate <= 0 || m.Mu <= 0 {
		return 0
	}
	if m.RTT > 0 && m.MinRTT > 0 {
		if dq := m.RTT - m.MinRTT; dq < queueBusyThreshold(m.MinRTT) {
			return 0
		}
	}
	x := m.Mu*m.SendRate/m.RecvRate - m.SendRate
	if x < 0 {
		return 0
	}
	if x > m.Mu {
		return m.Mu
	}
	return x
}

// queueBusyThreshold is the queueing delay below which the bottleneck is
// treated as effectively idle for cross-traffic estimation.
func queueBusyThreshold(minRTT clock.Time) clock.Time {
	th := minRTT / 20
	if th < 2*clock.Millisecond {
		th = 2 * clock.Millisecond
	}
	return th
}

// New builds an inner-loop algorithm by name: "copa", "basicdelay", or
// "bbr". Unknown names panic.
func New(name string) Alg {
	switch name {
	case "copa":
		return NewCopa()
	case "basicdelay":
		return NewBasicDelay()
	case "bbr":
		return NewBBRBundle()
	default:
		panic("ccalg: unknown algorithm " + name)
	}
}

// Pulser superimposes the Nimbus asymmetric sinusoid on a base rate: a
// half-sine up-pulse of amplitude A over the first quarter period,
// balanced by a shallow A/3 down-pulse over the remaining three quarters,
// so the mean added rate is zero. The paper uses T = 0.2 s and
// A = μ/4 (§5.1).
type Pulser struct {
	// Period is the pulse period T.
	Period clock.Time
	// AmplitudeFrac is A as a fraction of the capacity estimate μ.
	AmplitudeFrac float64
}

// NewPulser returns the paper's pulser configuration.
func NewPulser() *Pulser {
	return &Pulser{Period: 200 * clock.Millisecond, AmplitudeFrac: 0.25}
}

// Offset returns the rate offset at time now for capacity estimate mu.
// The amplitude is μ/4 regardless of the base rate: detection matters most
// precisely when the delay controller has collapsed against a
// buffer-filler, and an attenuated pulse would be invisible in the cross
// traffic's response. The caller floors the summed rate so the down-pulse
// cannot stall the pacer.
func (p *Pulser) Offset(now clock.Time, mu float64) float64 {
	if mu <= 0 {
		return 0
	}
	amp := p.AmplitudeFrac * mu
	t := float64(now%p.Period) / float64(p.Period) // phase in [0,1)
	if t < 0.25 {
		return amp * math.Sin(math.Pi*t/0.25)
	}
	return -(amp / 3) * math.Sin(math.Pi*(t-0.25)/0.75)
}

// Frequency returns the pulse frequency in Hz.
func (p *Pulser) Frequency() float64 { return 1 / p.Period.Seconds() }

// Detector decides whether buffer-filling (elastic) cross traffic shares
// the bottleneck, by looking for the pulser's frequency in the
// cross-traffic rate estimate: elastic traffic reacts to our pulses at
// f_p, inelastic traffic does not (§5.1, after Nimbus).
type Detector struct {
	pulseHz  float64
	sampleHz float64
	buf      []float64
	next     int
	filled   bool

	// Threshold is the required ratio of pulse-bin power to comparison
	// band power.
	Threshold float64
	// MinCrossFrac gates detection: with negligible cross traffic there
	// is nothing to classify.
	MinCrossFrac float64
}

// DetectorWindow is the FFT window size (power of two).
const DetectorWindow = 512

// NewDetector builds a detector for a pulser at pulseHz sampled at
// sampleHz (the 10 ms control tick → 100 Hz).
func NewDetector(pulseHz, sampleHz float64) *Detector {
	return &Detector{
		pulseHz:   pulseHz,
		sampleHz:  sampleHz,
		Threshold: 3.0,
		// Aggregate send rates swing more than a single Nimbus flow's, and
		// pulses leak into the cross-traffic estimate whenever the
		// bottleneck runs empty; requiring the window-mean cross traffic
		// to reach 20 % of capacity rejects that self-signal.
		MinCrossFrac: 0.2,
	}
}

// AddSample appends one cross-traffic rate estimate (bits/s), sampled at
// the detector's sample rate.
func (d *Detector) AddSample(z float64) {
	// The buffer grows toward the full window instead of being sized for
	// it up front: it is only ever read once filled, and a window takes
	// DetectorWindow/sampleHz (≈ 5 s at the 100 Hz control tick) to
	// accumulate — a short-lived bundle, e.g. a mesh pair torn down when
	// its requests complete, never pays for samples it never records.
	if !d.filled && len(d.buf) < DetectorWindow {
		if len(d.buf) == cap(d.buf) {
			ncap := 4 * cap(d.buf)
			if ncap == 0 {
				ncap = 32
			}
			if ncap > DetectorWindow {
				ncap = DetectorWindow
			}
			nb := make([]float64, len(d.buf), ncap)
			copy(nb, d.buf)
			d.buf = nb
		}
		d.buf = append(d.buf, z)
		if len(d.buf) == DetectorWindow {
			d.filled = true
		}
		return
	}
	d.buf[d.next] = z
	d.next++
	if d.next == len(d.buf) {
		d.next = 0
	}
}

// Ready reports whether a full window has accumulated.
func (d *Detector) Ready() bool { return d.filled }

// WindowMean reports the mean cross-traffic estimate over the current
// window (0 until the window fills).
func (d *Detector) WindowMean() float64 {
	if !d.filled {
		return 0
	}
	mean := 0.0
	for _, v := range d.buf {
		mean += v
	}
	return mean / float64(len(d.buf))
}

// Elastic classifies the current window with the default magnitude gate.
func (d *Detector) Elastic(mu float64) bool {
	return d.ElasticGated(mu, d.MinCrossFrac)
}

// ElasticGated classifies the current window. The gate requires the cross
// traffic to average minFrac of capacity over the whole window —
// instantaneous estimates spike whenever the bundle's own rate transients
// drain the queue, and must not self-trigger detection. Callers already in
// pass-through mode use a lower gate: competing fairly suppresses the
// cross traffic's share, and a symmetric gate would oscillate between
// modes.
func (d *Detector) ElasticGated(mu, minFrac float64) bool {
	if !d.filled || mu <= 0 {
		return false
	}
	mean := 0.0
	for _, v := range d.buf {
		mean += v
	}
	mean /= float64(len(d.buf))
	if mean < minFrac*mu {
		return false
	}
	// Unroll the ring into chronological order.
	window := make([]float64, len(d.buf))
	copy(window, d.buf[d.next:])
	copy(window[len(d.buf)-d.next:], d.buf[:d.next])
	return ElasticSpectrum(window, d.pulseHz, d.sampleHz, d.Threshold)
}

// ElasticSpectrum applies the Nimbus criterion to one window of
// cross-traffic samples: the power near the pulse frequency must dominate
// the power at half the pulse frequency (elastic traffic reacts at f_p;
// the half-frequency band measures broadband churn).
func ElasticSpectrum(window []float64, pulseHz, sampleHz, threshold float64) bool {
	spec := fft.PowerSpectrum(window)
	n := len(window)
	pb := fft.BinOf(pulseHz, sampleHz, n)
	hb := fft.BinOf(pulseHz/2, sampleHz, n)
	pulsePower := bandMax(spec, pb, 1)
	refPower := bandMax(spec, hb, 1)
	if refPower <= 0 {
		return pulsePower > 0
	}
	return pulsePower/refPower > threshold
}

func bandMax(spec []float64, center, halfWidth int) float64 {
	best := 0.0
	for k := center - halfWidth; k <= center+halfWidth; k++ {
		if k >= 0 && k < len(spec) && spec[k] > best {
			best = spec[k]
		}
	}
	return best
}

// PIController is the §5.1 controller that holds the sendbox queue at the
// target while traffic passes: ṙ = α(q − q_T) + β·q̇ with α = β = 10.
// Gains are normalized: one target's worth of queue error moves the rate
// by α·μ per second.
type PIController struct {
	Alpha, Beta float64
	// Target is q_T, expressed as queueing delay.
	Target clock.Time

	rate     float64
	lastQ    clock.Time
	lastTime clock.Time
}

// NewPIController returns the paper's configuration: α = β = 10 and a
// 10 ms target (8 ms for the up-pulse area plus 2 ms cushion).
func NewPIController() *PIController {
	return &PIController{Alpha: 10, Beta: 10, Target: 10 * clock.Millisecond}
}

// Reset initializes the controller when pass-through mode engages,
// starting from the given rate.
func (pi *PIController) Reset(rate float64, now clock.Time) {
	pi.rate = rate
	pi.lastQ = 0
	pi.lastTime = now
}

// Update advances the controller: q is the current sendbox queueing delay
// and mu the capacity estimate used for normalization. It returns the new
// base rate.
func (pi *PIController) Update(q clock.Time, mu float64, now clock.Time) float64 {
	dt := (now - pi.lastTime).Seconds()
	if dt <= 0 {
		return pi.rate
	}
	qErr := (q - pi.Target).Seconds() / pi.Target.Seconds()
	qDot := (q - pi.lastQ).Seconds() / dt / pi.Target.Seconds()
	pi.lastQ = q
	pi.lastTime = now
	pi.rate += (pi.Alpha*qErr + pi.Beta*qDot) * mu * dt
	if pi.rate < 0.01*mu {
		pi.rate = 0.01 * mu
	}
	if pi.rate > 4*mu {
		pi.rate = 4 * mu
	}
	return pi.rate
}

// Rate returns the controller's current rate.
func (pi *PIController) Rate() float64 { return pi.rate }
