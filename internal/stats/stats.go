// Package stats provides the measurement plumbing the evaluation harness
// uses: exact quantiles, summaries, histograms/PDFs of estimate errors
// (the paper's Figs 5–6), and virtual-time series (Figs 2, 7, 10).
// Values are unitless float64s — the producer picks the unit (slowdowns,
// milliseconds, Mbit/s) — and time series are indexed by sim.Time.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"bundler/internal/sim"
)

// Sample accumulates float64 observations for quantile queries. The
// default mode stores every observation exactly; UseSketch switches the
// sample to a bounded log-histogram sketch (see the accuracy contract in
// sketch.go) for mesh-scale runs where per-flow buffers are
// memory-impossible. Exact mode's behavior — and therefore golden
// output — is byte-identical to the pre-sketch implementation.
type Sample struct {
	vals   []float64
	sorted bool
	sk     *Sketch // non-nil → sketch mode
}

// UseSketch switches the sample to sketch mode, converting any
// observations already recorded. Quantiles become ≤1 %-relative-error
// approximations (N/Mean/Min/Max/Stddev stay exact) and memory becomes
// independent of the observation count. There is no way back to exact
// mode: the raw observations are discarded.
func (s *Sample) UseSketch() {
	if s.sk != nil {
		return
	}
	s.sk = NewSketch()
	for _, v := range s.vals {
		s.sk.Add(v)
	}
	s.vals = nil
	s.sorted = false
}

// Sketched reports whether the sample is in sketch mode.
func (s *Sample) Sketched() bool { return s.sk != nil }

// Add appends an observation.
func (s *Sample) Add(v float64) {
	if s.sk != nil {
		s.sk.Add(v)
		return
	}
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Reserve grows the sample's buffer to hold at least n observations, so
// recording hot paths (one Add per flow or per packet) never reallocate
// mid-run. It never shrinks, and is a no-op in sketch mode (whose
// footprint does not scale with n).
func (s *Sample) Reserve(n int) {
	if s.sk != nil || cap(s.vals) >= n {
		return
	}
	vals := make([]float64, len(s.vals), n)
	copy(vals, s.vals)
	s.vals = vals
}

// AddSample folds every observation of o into s — the aggregation step
// the mesh experiments use to report one row over many per-pair
// recorders. Two exact samples concatenate; two sketches merge in
// bucket space (bounded, exact over sketches). Mixed modes make s a
// sketch: folding a sketch into an exact sample converts s first, since
// o's raw observations no longer exist. o is left untouched.
func (s *Sample) AddSample(o *Sample) {
	switch {
	case s.sk == nil && o.sk == nil:
		s.vals = append(s.vals, o.vals...)
		s.sorted = false
	case s.sk != nil && o.sk != nil:
		s.sk.Merge(o.sk)
	case s.sk != nil:
		for _, v := range o.vals {
			s.sk.Add(v)
		}
	default:
		s.UseSketch()
		s.sk.Merge(o.sk)
	}
}

// Reset discards all observations but keeps the buffer (or sketch mode
// and bucket map), so a Sample can be reused across runs without
// reallocating.
func (s *Sample) Reset() {
	if s.sk != nil {
		s.sk.Reset()
		return
	}
	s.vals = s.vals[:0]
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int {
	if s.sk != nil {
		return s.sk.N()
	}
	return len(s.vals)
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// (within 1 % relative error in sketch mode). It returns NaN for an
// empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if s.sk != nil {
		return s.sk.Quantile(q)
	}
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	pos := q * float64(len(s.vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.vals) {
		return s.vals[lo]
	}
	return s.vals[lo]*(1-frac) + s.vals[lo+1]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean (exact in both modes), or NaN when
// empty.
func (s *Sample) Mean() float64 {
	if s.sk != nil {
		return s.sk.Mean()
	}
	if len(s.vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Stddev returns the population standard deviation (exact in both
// modes).
func (s *Sample) Stddev() float64 {
	if s.sk != nil {
		return s.sk.Stddev()
	}
	if len(s.vals) == 0 {
		return math.NaN()
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.vals)))
}

// FractionWithin reports the fraction of observations v with |v| ≤ bound
// (used for the paper's "80 % of estimates within X" claims). Sketch
// mode resolves the bound at bucket granularity.
func (s *Sample) FractionWithin(bound float64) float64 {
	if s.sk != nil {
		return s.sk.FractionWithin(bound)
	}
	if len(s.vals) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range s.vals {
		if math.Abs(v) <= bound {
			n++
		}
	}
	return float64(n) / float64(len(s.vals))
}

// Summary is a fixed set of quantiles for reporting.
type Summary struct {
	N                       int
	Mean                    float64
	P10, P25, P50, P75, P90 float64
	P99                     float64
	Min, Max                float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:    s.N(),
		Mean: s.Mean(),
		P10:  s.Quantile(0.10),
		P25:  s.Quantile(0.25),
		P50:  s.Quantile(0.50),
		P75:  s.Quantile(0.75),
		P90:  s.Quantile(0.90),
		P99:  s.Quantile(0.99),
		Min:  s.Min(),
		Max:  s.Max(),
	}
}

// MarshalJSON emits non-finite quantiles as null (encoding/json rejects
// NaN/Inf outright): an empty sample's Summary is all-NaN, and one such
// summary must not make a whole results file unserializable. Finite
// summaries take the standard encoding path, byte-identical to a plain
// struct marshal.
func (s Summary) MarshalJSON() ([]byte, error) {
	finite := true
	for _, v := range [...]float64{s.Mean, s.P10, s.P25, s.P50, s.P75, s.P90, s.P99, s.Min, s.Max} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = false
			break
		}
	}
	if finite {
		type noMethods Summary // drop MarshalJSON to avoid recursion
		return json.Marshal(noMethods(s))
	}
	opt := func(v float64) *float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		return &v
	}
	return json.Marshal(struct {
		N                       int
		Mean                    *float64
		P10, P25, P50, P75, P90 *float64
		P99                     *float64
		Min, Max                *float64
	}{s.N, opt(s.Mean), opt(s.P10), opt(s.P25), opt(s.P50), opt(s.P75), opt(s.P90), opt(s.P99), opt(s.Min), opt(s.Max)})
}

// UnmarshalJSON inverts the NaN-as-null encoding: null quantiles decode
// back to NaN, so a Summary that round-trips through a run-store
// manifest re-marshals byte-identically (a plain decode would turn the
// nulls into zeroes and corrupt resumed sweep output).
func (s *Summary) UnmarshalJSON(data []byte) error {
	var raw struct {
		N                       int
		Mean                    *float64
		P10, P25, P50, P75, P90 *float64
		P99                     *float64
		Min, Max                *float64
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	val := func(p *float64) float64 {
		if p == nil {
			return math.NaN()
		}
		return *p
	}
	*s = Summary{N: raw.N, Mean: val(raw.Mean),
		P10: val(raw.P10), P25: val(raw.P25), P50: val(raw.P50),
		P75: val(raw.P75), P90: val(raw.P90), P99: val(raw.P99),
		Min: val(raw.Min), Max: val(raw.Max)}
	return nil
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p10=%.3f p50=%.3f p90=%.3f p99=%.3f",
		s.N, s.Mean, s.P10, s.P50, s.P90, s.P99)
}

// Histogram buckets observations into fixed-width bins over [lo, hi);
// out-of-range values land in the edge bins.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram builds a histogram with nbins bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, nbins)}
}

// Add records v.
func (h *Histogram) Add(v float64) {
	i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// PDF returns the normalized density per bin (sums to 1 over all bins).
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.bins))
	if h.n == 0 {
		return out
	}
	for i, c := range h.bins {
		out[i] = float64(c) / float64(h.n)
	}
	return out
}

// Reset zeroes all bins, keeping the configuration, for reuse across
// runs.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.n = 0
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*(float64(i)+0.5)
}

// N reports total observations.
func (h *Histogram) N() int { return h.n }

// TimeSeries records (virtual time, value) pairs.
type TimeSeries struct {
	T []sim.Time
	V []float64
}

// Add appends a point.
func (ts *TimeSeries) Add(t sim.Time, v float64) {
	ts.T = append(ts.T, t)
	ts.V = append(ts.V, v)
}

// Reserve grows both columns to hold at least n points (see
// Sample.Reserve).
func (ts *TimeSeries) Reserve(n int) {
	if cap(ts.T) < n {
		t := make([]sim.Time, len(ts.T), n)
		copy(t, ts.T)
		ts.T = t
	}
	if cap(ts.V) < n {
		v := make([]float64, len(ts.V), n)
		copy(v, ts.V)
		ts.V = v
	}
}

// Reset discards all points but keeps the buffers for reuse.
func (ts *TimeSeries) Reset() {
	ts.T = ts.T[:0]
	ts.V = ts.V[:0]
}

// N reports the number of points.
func (ts *TimeSeries) N() int { return len(ts.T) }

// MeanOver averages points with from ≤ t < to, returning NaN if none.
func (ts *TimeSeries) MeanOver(from, to sim.Time) float64 {
	sum, n := 0.0, 0
	for i, t := range ts.T {
		if t >= from && t < to {
			sum += ts.V[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MaxOver returns the maximum over [from, to), or NaN if none.
func (ts *TimeSeries) MaxOver(from, to sim.Time) float64 {
	best, any := 0.0, false
	for i, t := range ts.T {
		if t >= from && t < to {
			if !any || ts.V[i] > best {
				best, any = ts.V[i], true
			}
		}
	}
	if !any {
		return math.NaN()
	}
	return best
}

// RateCounter converts cumulative byte counts into a windowed throughput
// estimate (bits/second).
type RateCounter struct {
	lastBytes int64
	lastTime  sim.Time
}

// Rate returns throughput since the previous call given the current
// cumulative byte count, then resets the window. Returns 0 for an empty
// interval.
func (rc *RateCounter) Rate(now sim.Time, cumBytes int64) float64 {
	defer func() { rc.lastBytes, rc.lastTime = cumBytes, now }()
	dt := now - rc.lastTime
	if dt <= 0 {
		return 0
	}
	return float64(cumBytes-rc.lastBytes) * 8 / dt.Seconds()
}
