package stats

import (
	"math"
	"math/rand"
	"testing"
)

// quantiles the accuracy tests probe — the same set Summarize reports.
var testQs = []float64{0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1}

// TestSketchQuantileWithinOnePercent is the accuracy contract: on
// heavy-tailed positive data (the shape of slowdowns and FCTs), every
// reported quantile must sit within 1 % relative error of the exact
// answer for the same observations.
func TestSketchQuantileWithinOnePercent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var exact, sketched Sample
	sketched.UseSketch()
	for i := 0; i < 200000; i++ {
		// Lognormal over ~4 decades plus a shifted floor, like slowdowns.
		v := 1 + math.Exp(rng.NormFloat64()*2)
		exact.Add(v)
		sketched.Add(v)
	}
	for _, q := range testQs {
		e, s := exact.Quantile(q), sketched.Quantile(q)
		if rel := math.Abs(s-e) / e; rel > 0.01 {
			t.Errorf("q=%.2f: sketch %.6g vs exact %.6g (relative error %.4f > 1%%)", q, s, e, rel)
		}
	}
}

// TestSketchSideStatsExact: N, Mean, Min, Max, and Stddev are tracked
// exactly, not through the buckets.
func TestSketchSideStatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var exact, sketched Sample
	sketched.UseSketch()
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64() * 100 // negatives included
		exact.Add(v)
		sketched.Add(v)
	}
	if exact.N() != sketched.N() {
		t.Fatalf("N: %d vs %d", sketched.N(), exact.N())
	}
	close := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%s: sketch %.12g, exact %.12g", name, got, want)
		}
	}
	close("mean", sketched.Mean(), exact.Mean())
	close("min", sketched.Min(), exact.Min())
	close("max", sketched.Max(), exact.Max())
	close("stddev", sketched.Stddev(), exact.Stddev())
}

// TestSketchNegativeAndZeroValues: the sign-mirrored buckets and the
// zero bucket order correctly around zero.
func TestSketchNegativeAndZeroValues(t *testing.T) {
	var s Sample
	s.UseSketch()
	for _, v := range []float64{-100, -10, -1, 0, 0, 1, 10, 100, 1000} {
		s.Add(v)
	}
	if med := s.Median(); math.Abs(med) > 0.01 {
		t.Errorf("median of symmetric-around-zero set = %g, want ≈0", med)
	}
	if q := s.Quantile(0); q != -100 {
		t.Errorf("min quantile %g, want exact -100", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Errorf("max quantile %g, want exact 1000", q)
	}
}

// TestSketchMergeMatchesSequential: merging sketches is exact — the
// merged state answers identically to one sketch fed the concatenation.
func TestSketchMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var all, a, b Sample
	all.UseSketch()
	a.UseSketch()
	b.UseSketch()
	for i := 0; i < 50000; i++ {
		v := math.Exp(rng.NormFloat64() * 3)
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.AddSample(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N %d, want %d", a.N(), all.N())
	}
	for _, q := range testQs {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("q=%.2f: merged %.9g != sequential %.9g", q, got, want)
		}
	}
}

// TestSampleAddSampleModeCombos: every exact/sketch pairing of AddSample
// yields the same observation count and ≤1 %-error quantiles; folding a
// sketch into an exact sample converts the destination.
func TestSampleAddSampleModeCombos(t *testing.T) {
	mk := func(sketch bool, lo, hi int) *Sample {
		var s Sample
		if sketch {
			s.UseSketch()
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < hi; i++ {
			v := 1 + math.Exp(rng.NormFloat64())
			if i >= lo {
				s.Add(v)
			}
		}
		return &s
	}
	var ref Sample // exact over the full stream
	ref.AddSample(mk(false, 0, 5000))
	ref.AddSample(mk(false, 5000, 10000))

	combos := []struct {
		name       string
		dst, src   bool // sketched?
		wantSketch bool
	}{
		{"exact+exact", false, false, false},
		{"sketch+sketch", true, true, true},
		{"sketch+exact", true, false, true},
		{"exact+sketch", false, true, true},
	}
	for _, c := range combos {
		dst := mk(c.dst, 0, 5000)
		dst.AddSample(mk(c.src, 5000, 10000))
		if dst.Sketched() != c.wantSketch {
			t.Errorf("%s: sketched=%v, want %v", c.name, dst.Sketched(), c.wantSketch)
		}
		if dst.N() != ref.N() {
			t.Errorf("%s: N=%d, want %d", c.name, dst.N(), ref.N())
			continue
		}
		for _, q := range testQs {
			e, g := ref.Quantile(q), dst.Quantile(q)
			if rel := math.Abs(g-e) / e; rel > 0.01 {
				t.Errorf("%s q=%.2f: %.6g vs exact %.6g (err %.4f)", c.name, q, g, e, rel)
			}
		}
	}
}

// TestSketchMemoryBounded: the bucket count is set by the data's dynamic
// range, not the observation count — a million observations over six
// decades stay within ~700 log-scale buckets (+1 zero bucket).
func TestSketchMemoryBounded(t *testing.T) {
	var s Sample
	s.UseSketch()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000000; i++ {
		s.Add(math.Pow(10, rng.Float64()*6)) // 1..1e6
	}
	if got := len(s.sk.bins); got > 700 {
		t.Fatalf("%d buckets for 6 decades, want ≤ ⌈6·ln10/ln γ⌉ ≈ 698", got)
	}
	if s.N() != 1000000 {
		t.Fatalf("N=%d", s.N())
	}
}

// TestSketchResetKeepsMode: Reset on a sketched sample empties it but
// stays in sketch mode, mirroring exact mode's buffer reuse.
func TestSketchResetKeepsMode(t *testing.T) {
	var s Sample
	s.UseSketch()
	s.Add(3)
	s.Reset()
	if !s.Sketched() || s.N() != 0 {
		t.Fatalf("after reset: sketched=%v n=%d", s.Sketched(), s.N())
	}
	s.Add(5)
	if s.Median() == 0 || s.N() != 1 {
		t.Fatalf("post-reset add broken: n=%d median=%g", s.N(), s.Median())
	}
}
