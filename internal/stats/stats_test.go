package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bundler/internal/sim"
)

func TestQuantileExactValues(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEmptyIsNaN(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Fatal("empty sample should give NaN")
	}
}

func TestQuantileSingleValue(t *testing.T) {
	var s Sample
	s.Add(7)
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%v) = %v, want 7", q, got)
		}
	}
}

func TestMeanStddev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := s.Stddev(); got != 2 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestFractionWithin(t *testing.T) {
	var s Sample
	for _, v := range []float64{-3, -1, 0, 0.5, 2, 10} {
		s.Add(v)
	}
	if got := s.FractionWithin(2); math.Abs(got-4.0/6) > 1e-9 {
		t.Fatalf("FractionWithin(2) = %v, want 4/6", got)
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 1000 || sum.Min != 0 || sum.Max != 999 {
		t.Fatalf("summary %+v wrong bounds", sum)
	}
	if math.Abs(sum.P50-499.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 499.5", sum.P50)
	}
	if len(sum.String()) == 0 {
		t.Fatal("empty String()")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		var s Sample
		for _, v := range vals {
			s.Add(v)
		}
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: median of sorted data equals middle element interpolation.
func TestPropertyMedianMatchesSort(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		var s Sample
		for _, v := range vals {
			s.Add(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		var want float64
		n := len(sorted)
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			// Half-sum form avoids overflow near ±MaxFloat64, matching
			// the interpolation Quantile performs.
			want = sorted[n/2-1]*0.5 + sorted[n/2]*0.5
		}
		return math.Abs(s.Median()-want) < 1e-9*math.Max(1, math.Abs(want))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPDFSumsToOne(t *testing.T) {
	h := NewHistogram(-10, 10, 20)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Add(r.NormFloat64() * 3)
	}
	sum := 0.0
	for _, p := range h.PDF() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PDF sums to %v", sum)
	}
	if h.N() != 10000 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramEdgeClamping(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(50)
	pdf := h.PDF()
	if pdf[0] != 0.5 || pdf[9] != 0.5 {
		t.Fatalf("edge bins %v, want 0.5 at both ends", pdf)
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Fatalf("BinCenter(0) = %v, want 0.5", got)
	}
}

func TestTimeSeriesWindows(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Add(sim.Time(i)*sim.Second, float64(i))
	}
	if got := ts.MeanOver(2*sim.Second, 5*sim.Second); got != 3 {
		t.Fatalf("MeanOver = %v, want 3", got)
	}
	if got := ts.MaxOver(0, 10*sim.Second); got != 9 {
		t.Fatalf("MaxOver = %v, want 9", got)
	}
	if !math.IsNaN(ts.MeanOver(100*sim.Second, 200*sim.Second)) {
		t.Fatal("empty window should be NaN")
	}
	if ts.N() != 10 {
		t.Fatalf("N = %d", ts.N())
	}
}

func TestRateCounter(t *testing.T) {
	var rc RateCounter
	// First call establishes the baseline window from t=0.
	got := rc.Rate(sim.Second, 1_000_000) // 1 MB in 1 s = 8 Mbit/s
	if math.Abs(got-8e6) > 1 {
		t.Fatalf("rate = %v, want 8e6", got)
	}
	got = rc.Rate(2*sim.Second, 1_000_000) // no new bytes
	if got != 0 {
		t.Fatalf("rate = %v, want 0", got)
	}
	if rc.Rate(2*sim.Second, 5_000_000) != 0 {
		t.Fatal("zero-length window should report 0")
	}
}
