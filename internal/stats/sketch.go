package stats

import (
	"math"
	"sort"
)

// Sketch accuracy contract
//
// Sketch is a bounded, mergeable quantile sketch: a sparse log-scale
// histogram (DDSketch-style) with growth factor γ = 1.02. Its guarantees,
// which the mesh experiments' sketch mode and the tests in
// sketch_test.go rely on, are:
//
//   - Quantile(q) is within 1 % relative error of the exact-mode answer
//     for the same observations: every non-zero value v lands in the
//     bucket (γ^(i-1), γ^i] and is reported as the bucket midpoint
//     2γ^i/(γ+1), so |reported−v|/|v| ≤ (γ−1)/(γ+1) ≈ 0.99 %. Ranks are
//     exact (counts are integral), so the error is purely in value
//     resolution, never in which order statistic is consulted.
//   - N, Mean, Min, Max, and Stddev are exact: counts, Σv and Σv² are
//     tracked on the side in full precision, and Quantile(0)/Quantile(1)
//     return the tracked exact extremes.
//   - Memory is bounded by the dynamic range, not the observation count:
//     one bucket per occupied log-scale bin, at most
//     ⌈log(max/min)/log γ⌉ + 2 entries — observations spanning twelve
//     decades fit in ~1400 buckets — so a recorder absorbing 10⁶ flows
//     costs the same as one absorbing 10³.
//   - Merge is exact over sketches: merging two sketches yields the same
//     state as sketching the concatenated observation streams.
//
// Values with |v| < sketchMinVal collapse into a dedicated zero bucket
// (reported as 0); negative values mirror positives in sign-tagged keys.
const (
	sketchGamma  = 1.02
	sketchMinVal = 1e-12
)

var sketchLogGamma = math.Log(sketchGamma)

// Sketch is the bounded quantile sketch behind Sample's sketch mode. The
// zero value is NOT ready to use; call NewSketch.
type Sketch struct {
	bins map[int32]int64 // log-bucket index (sign-tagged) → count
	zero int64           // count of |v| < sketchMinVal
	n    int64
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{bins: make(map[int32]int64)}
}

// sketchKey maps a non-zero magnitude to its bucket index and tags the
// sign in the low bit (negative values mirror positive buckets).
func sketchKey(v float64) int32 {
	a := v
	neg := false
	if a < 0 {
		a, neg = -a, true
	}
	i := int32(math.Ceil(math.Log(a) / sketchLogGamma))
	k := i << 1
	if neg {
		k |= 1
	}
	return k
}

// sketchRep returns the representative value of a bucket key: the
// midpoint 2γ^i/(γ+1) of (γ^(i-1), γ^i], sign restored.
func sketchRep(k int32) float64 {
	i := k >> 1
	v := math.Exp(float64(i)*sketchLogGamma) * 2 / (sketchGamma + 1)
	if k&1 != 0 {
		return -v
	}
	return v
}

// Add records one observation.
func (sk *Sketch) Add(v float64) {
	if sk.n == 0 || v < sk.min {
		sk.min = v
	}
	if sk.n == 0 || v > sk.max {
		sk.max = v
	}
	sk.n++
	sk.sum += v
	sk.sum2 += v * v
	if math.Abs(v) < sketchMinVal {
		sk.zero++
		return
	}
	sk.bins[sketchKey(v)]++
}

// Merge folds o into sk; o is left untouched.
func (sk *Sketch) Merge(o *Sketch) {
	if o.n == 0 {
		return
	}
	if sk.n == 0 || o.min < sk.min {
		sk.min = o.min
	}
	if sk.n == 0 || o.max > sk.max {
		sk.max = o.max
	}
	sk.n += o.n
	sk.sum += o.sum
	sk.sum2 += o.sum2
	sk.zero += o.zero
	for k, c := range o.bins {
		sk.bins[k] += c
	}
}

// Reset empties the sketch, keeping its bucket map for reuse.
func (sk *Sketch) Reset() {
	for k := range sk.bins {
		delete(sk.bins, k)
	}
	*sk = Sketch{bins: sk.bins}
}

// N reports the observation count.
func (sk *Sketch) N() int { return int(sk.n) }

// Mean returns the exact arithmetic mean, or NaN when empty.
func (sk *Sketch) Mean() float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	return sk.sum / float64(sk.n)
}

// Stddev returns the exact population standard deviation.
func (sk *Sketch) Stddev() float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	m := sk.Mean()
	v := sk.sum2/float64(sk.n) - m*m
	if v < 0 {
		v = 0 // float cancellation
	}
	return math.Sqrt(v)
}

// Min returns the exact smallest observation.
func (sk *Sketch) Min() float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	return sk.min
}

// Max returns the exact largest observation.
func (sk *Sketch) Max() float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	return sk.max
}

// sortedBins returns the occupied buckets in ascending representative-
// value order: negatives (descending index), the zero bucket, positives
// (ascending index).
func (sk *Sketch) sortedBins() ([]int32, []int64) {
	keys := make([]int32, 0, len(sk.bins)+1)
	for k := range sk.bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		return sketchRep(keys[a]) < sketchRep(keys[b])
	})
	counts := make([]int64, 0, len(keys)+1)
	ordered := make([]int32, 0, len(keys)+1)
	placedZero := sk.zero == 0
	for _, k := range keys {
		if !placedZero && sketchRep(k) > 0 {
			ordered = append(ordered, math.MinInt32) // zero-bucket marker
			counts = append(counts, sk.zero)
			placedZero = true
		}
		ordered = append(ordered, k)
		counts = append(counts, sk.bins[k])
	}
	if !placedZero {
		ordered = append(ordered, math.MinInt32)
		counts = append(counts, sk.zero)
	}
	return ordered, counts
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1), mirroring exact mode's
// linear interpolation between adjacent order statistics, with each
// order statistic resolved to its bucket's representative (≤1 % relative
// error). The endpoints are the exact extremes.
func (sk *Sketch) Quantile(q float64) float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sk.min
	}
	if q >= 1 {
		return sk.max
	}
	keys, counts := sk.sortedBins()
	// statAt resolves the k-th order statistic (0-based) to a value.
	statAt := func(k int64) float64 {
		if k <= 0 {
			return sk.min
		}
		if k >= sk.n-1 {
			return sk.max
		}
		cum := int64(0)
		for i, c := range counts {
			cum += c
			if k < cum {
				if keys[i] == math.MinInt32 {
					return 0
				}
				v := sketchRep(keys[i])
				// The representative may poke past the tracked exact
				// extremes; an order statistic never can.
				return math.Min(math.Max(v, sk.min), sk.max)
			}
		}
		return sk.max
	}
	pos := q * float64(sk.n-1)
	lo := int64(pos)
	frac := pos - float64(lo)
	if frac == 0 || lo+1 >= sk.n {
		return statAt(lo)
	}
	return statAt(lo)*(1-frac) + statAt(lo+1)*frac
}

// FractionWithin reports the fraction of observations v with |v| ≤
// bound, resolved at bucket granularity (each bucket counts entirely in
// or out by its representative).
func (sk *Sketch) FractionWithin(bound float64) float64 {
	if sk.n == 0 {
		return math.NaN()
	}
	in := sk.zero
	for k, c := range sk.bins {
		if math.Abs(sketchRep(k)) <= bound {
			in += c
		}
	}
	return float64(in) / float64(sk.n)
}
