// Command bundler-pilot runs the real-clock pilot datapath: one process
// per side of the paper's dumbbell (a Sendbox in front of real TCP-model
// senders, a Receivebox in front of the receivers), exchanging UDP
// datagrams — the same bundle/tcp/netem code the simulator drives, paced
// by clock.Wall instead of virtual time.
//
// Both sides, plus the -role sim twin, derive the identical workload
// from -seed, and both result-producing roles emit the same report
// schema, so bundler-report can diff emulation against simulation:
//
//	bundler-pilot -role recv -listen 127.0.0.1:9001 -peer 127.0.0.1:9000 &
//	bundler-pilot -role send -listen 127.0.0.1:9000 -peer 127.0.0.1:9001 -out pilot.json
//	bundler-pilot -role sim -out sim.json
//	bundler-report -tol $(bundler-pilot -print-tol) sim.json pilot.json
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"bundler/internal/clock"
	"bundler/internal/exp"
	"bundler/internal/pilot"
)

func main() {
	var (
		role     = flag.String("role", "", `"send", "recv", or "sim" (the simulated twin)`)
		listen   = flag.String("listen", "127.0.0.1:0", "local UDP address to bind (send/recv roles)")
		peer     = flag.String("peer", "", "peer process's UDP address (send/recv roles)")
		seed     = flag.Int64("seed", 1, "workload seed — must match on send, recv, and sim")
		rate     = flag.Float64("rate", 0, "bottleneck rate, bits/s (0 = pilot default)")
		rtt      = flag.Duration("rtt", 0, "emulated path RTT (0 = pilot default)")
		requests = flag.Int("requests", 0, "number of web-CDF transfers (0 = pilot default)")
		offered  = flag.Float64("offered", 0, "offered load, bits/s (0 = pilot default)")
		alg      = flag.String("alg", "", `bundle inner-loop algorithm (empty = pilot default)`)
		horizon  = flag.Duration("horizon", 0, "abort if the workload has not drained by then")
		outPath  = flag.String("out", "", "write the result JSON here instead of stdout (send/sim roles)")
		printTol = flag.Bool("print-tol", false,
			"print the declared pilot-vs-sim tolerance for bundler-report and exit")
	)
	flag.Parse()

	if *printTol {
		fmt.Println(pilot.Tolerance)
		return
	}

	cfg := pilot.Config{
		Seed:       *seed,
		Rate:       *rate,
		RTT:        clock.Time(*rtt),
		Requests:   *requests,
		OfferedBps: *offered,
		Algorithm:  *alg,
		Horizon:    *horizon,
	}

	switch *role {
	case "send", "recv":
		laddr, err := net.ResolveUDPAddr("udp", *listen)
		if err != nil {
			fatal(fmt.Errorf("-listen: %w", err))
		}
		if *peer == "" {
			fatal(fmt.Errorf("-role %s needs -peer", *role))
		}
		paddr, err := net.ResolveUDPAddr("udp", *peer)
		if err != nil {
			fatal(fmt.Errorf("-peer: %w", err))
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		if *role == "recv" {
			if err := pilot.RunRecv(cfg, conn, paddr); err != nil {
				fatal(err)
			}
			return
		}
		start := time.Now()
		res, err := pilot.RunSend(cfg, conn, paddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pilot: workload drained in %.1fs wall time\n",
			time.Since(start).Seconds())
		emit(res, *outPath)
	case "sim":
		res, err := pilot.RunTwin(cfg)
		if err != nil {
			fatal(err)
		}
		emit(res, *outPath)
	case "":
		fatal(fmt.Errorf("-role is required (send, recv, or sim)"))
	default:
		fatal(fmt.Errorf("unknown -role %q (want send, recv, or sim)", *role))
	}
}

// emit writes the single-result array bundler-report expects.
func emit(res exp.Result, outPath string) {
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := exp.WriteJSON(w, []exp.Result{res}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bundler-pilot:", err)
	os.Exit(1)
}
