// Command bundler-report diffs two evaluation artifacts and gates on
// regressions — the tool CI's hard gates are built from. It compares
// either two sweep/run result files (JSON arrays from bundler-bench
// -sweep -out or bundler-sim -json) or two benchmark trajectory files
// (BENCH_*.json from bundler-bench -bench-out), auto-detecting which.
//
// Results mode matches cells on (experiment, seed, params) and fails on
// metric or summary drift beyond -tol, missing cells/metrics, new
// errors, and — in exact mode — golden-table drift of the rendered
// report text. Bench mode fails when ns/op, allocs/op, or ns/packet
// regresses more than -ns-threshold / -alloc-threshold / -nspkt-threshold
// percent against the old file.
//
// Exit status: 0 clean, 1 regressions found, 2 usage or I/O error.
//
// Example:
//
//	bundler-report BENCH_main.json BENCH_new.json
//	bundler-report -alloc-threshold 5 BENCH_main.json BENCH_new.json
//	bundler-report baseline-sweep.json sweep.json          # exact
//	bundler-report -tol 0.01 baseline-sweep.json sweep.json
//	bundler-report -json report.json old.json new.json     # machine output too
package main

import (
	"flag"
	"fmt"
	"os"

	"bundler/internal/report"
)

func main() {
	var (
		tol = flag.Float64("tol", 0,
			"results mode: relative metric/summary tolerance (0 = exact; report-text drift only gates at 0)")
		nsPct = flag.Float64("ns-threshold", 10,
			"bench mode: fail when ns/op regresses more than this percent")
		allocPct = flag.Float64("alloc-threshold", 10,
			"bench mode: fail when allocs/op regresses more than this percent")
		nsPktPct = flag.Float64("nspkt-threshold", 10,
			"bench mode: fail when ns/packet regresses more than this percent (records without per-packet figures are skipped)")
		jsonOut = flag.String("json", "",
			`also write the machine-readable report to this file ("-" for stdout, replacing the text)`)
		quiet = flag.Bool("q", false, "suppress the text report (exit status still reflects the verdict)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bundler-report [flags] OLD NEW\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Diffs two result files or two BENCH_*.json trajectories (auto-detected).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	r, err := report.DiffFiles(flag.Arg(0), flag.Arg(1), report.Options{
		MetricTol: *tol, NsPct: *nsPct, AllocPct: *allocPct, NsPktPct: *nsPktPct,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *jsonOut == "-" {
		if err := r.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		if !*quiet {
			if err := r.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if err := r.WriteJSON(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	if !r.OK {
		os.Exit(1)
	}
}
