// Command bundler-vet runs the repository's invariant analyzer suite —
// clockcheck (PR-9 clock discipline), poolcheck (pkt pool ownership),
// detrange and sortcmp (output determinism) — over Go package patterns
// and exits non-zero on any finding. CI runs it over ./... and
// ./examples/... as a hard gate; locally:
//
//	go run ./cmd/bundler-vet ./...
//	go run ./cmd/bundler-vet -only clockcheck,poolcheck ./internal/tcp
//
// Flags:
//
//	-only a,b            run a subset of the suite (unknown names error)
//	-detrange-budget n   cap //bundlervet:allow detrange(...) directives
//	                     (-1: unlimited)
//	-list                print the analyzer names and contracts, then exit
package main

import (
	"flag"
	"fmt"
	"os"

	"bundler/internal/analysis/detrange"
	"bundler/internal/analysis/vet"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	budget := flag.Int("detrange-budget", 8, "max detrange suppression directives per run; -1 for unlimited")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bundler-vet [-only a,b] [-detrange-budget n] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range vet.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := vet.Select(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bundler-vet: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	detrange.Budget = *budget
	findings, err := vet.Run(analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bundler-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if n := detrange.Count(); n > 0 {
		fmt.Fprintf(os.Stderr, "bundler-vet: %d detrange suppression(s) in use (budget %d)\n", n, *budget)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bundler-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
