// Command bundler-sim runs a single Bundler emulation scenario and prints
// its flow-completion statistics — a quick way to explore how the paper's
// §7.1 setup responds to different knobs. It is a thin front-end over the
// registry's "fct" experiment (the same one bundler-bench -sweep fans
// out), so the two tools cannot drift apart.
//
// With -config it instead runs a declarative scenario file (see
// internal/topo and examples/configs/), with -set overriding the
// config's declared parameters.
//
// Example:
//
//	bundler-sim -mode bundler -alg copa -sched sfq -requests 20000
//	bundler-sim -mode statusquo -rate 48e6 -rtt 100ms
//	bundler-sim -config examples/configs/cellular.json -set requests=2000
//	bundler-sim -json            # structured result for scripting
//	bundler-sim -out run.json    # save a baseline for bundler-report
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bundler/internal/exp"
	_ "bundler/internal/scenario" // registers the fct experiment
	"bundler/internal/topo"
)

func main() {
	var (
		mode     = flag.String("mode", "bundler", `"statusquo", "bundler", or "innetwork"`)
		alg      = flag.String("alg", "copa", `inner-loop algorithm: "copa", "basicdelay", "bbr"`)
		sched    = flag.String("sched", "sfq", `sendbox scheduler: "sfq", "fifo", "fqcodel", "prio:<port>", "sp:<port>/...", "wfq:<port>=<weight>/..."`)
		endhost  = flag.String("endhost", "cubic", `endhost congestion control: "cubic", "reno", "bbr"`)
		rate     = flag.Float64("rate", 96e6, "bottleneck rate, bits/s")
		rtt      = flag.Duration("rtt", 50*time.Millisecond, "path round-trip propagation delay")
		load     = flag.Float64("load", 84e6, "offered load, bits/s")
		requests = flag.Int("requests", 10000, "number of requests to complete")
		seed     = flag.Int64("seed", 1, "simulation seed")
		tunnel   = flag.Bool("tunnel", false, "use encapsulation-based epoch marking (§4.5 tunnel mode)")
		config   = flag.String("config", "", "run a declarative scenario file instead of the fct flags above")
		set      = flag.String("set", "", "with -config: comma-separated k=v overrides of the config's declared params")
		asJSON   = flag.Bool("json", false, "emit the structured result as JSON instead of text")
		outPath  = flag.String("out", "",
			"also write the structured result JSON to this file (a baseline/run file bundler-report can diff)")
	)
	flag.Parse()

	if *config != "" {
		// The dedicated scenario flags describe the fct experiment, not a
		// config; silently ignoring one the user set would make them
		// believe they changed the run. Configs take overrides via -set.
		allowed := map[string]bool{"config": true, "set": true, "seed": true, "json": true, "out": true}
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				fmt.Fprintf(os.Stderr, "-%s does not apply with -config; override the config's params with -set (see its \"params\" section)\n", f.Name)
				os.Exit(1)
			}
		})
		runConfig(*config, *set, *seed, *asJSON, *outPath)
		return
	}
	if *set != "" {
		fmt.Fprintln(os.Stderr, "-set only applies with -config (use the dedicated flags otherwise)")
		os.Exit(1)
	}

	e, ok := exp.Lookup("fct")
	if !ok {
		fmt.Fprintln(os.Stderr, "fct experiment not registered")
		os.Exit(1)
	}
	res, err := e.Run(*seed, exp.Params{
		"mode":     *mode,
		"alg":      *alg,
		"sched":    *sched,
		"endhost":  *endhost,
		"rate":     strconv.FormatFloat(*rate, 'g', -1, 64),
		"rtt":      rtt.String(),
		"load":     strconv.FormatFloat(*load, 'g', -1, 64),
		"requests": strconv.Itoa(*requests),
		"tunnel":   strconv.FormatBool(*tunnel),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if completed := int(res.Metric("completed")); completed < *requests {
		fmt.Fprintf(os.Stderr, "warning: only %d of %d requests completed before the horizon\n",
			completed, *requests)
	}
	emit(res, *asJSON, *outPath)
}

// runConfig executes a declarative scenario file with -set param
// overrides, through the same load-and-validate path bundler-bench
// -config uses, so a broken file (or a broken later run) fails before
// any simulation starts.
func runConfig(path, set string, seed int64, asJSON bool, outPath string) {
	e, _, err := topo.RegisterFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	declared := map[string]bool{}
	for _, d := range e.Params() {
		declared[d.Name] = true
	}
	params := exp.Params{}
	if set != "" {
		for _, pair := range strings.Split(set, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "-set %q: want k=v pairs\n", pair)
				os.Exit(1)
			}
			k = strings.TrimSpace(k)
			if !declared[k] {
				fmt.Fprintf(os.Stderr, "-set %s: config %s declares no such param\n", k, e.Name())
				os.Exit(1)
			}
			params[k] = strings.TrimSpace(v)
		}
	}
	res, err := e.Run(seed, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	emit(res, asJSON, outPath)
}

func emit(res exp.Result, asJSON bool, outPath string) {
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = exp.WriteJSON(f, []exp.Result{res})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if asJSON {
		if err := exp.WriteJSON(os.Stdout, []exp.Result{res}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(res.Report)
}
