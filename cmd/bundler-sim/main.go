// Command bundler-sim runs a single Bundler emulation scenario and prints
// its flow-completion statistics — a quick way to explore how the paper's
// §7.1 setup responds to different knobs. It is a thin front-end over the
// registry's "fct" experiment (the same one bundler-bench -sweep fans
// out), so the two tools cannot drift apart.
//
// Example:
//
//	bundler-sim -mode bundler -alg copa -sched sfq -requests 20000
//	bundler-sim -mode statusquo -rate 48e6 -rtt 100ms
//	bundler-sim -json            # structured result for scripting
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"bundler/internal/exp"
	_ "bundler/internal/scenario" // registers the fct experiment
)

func main() {
	var (
		mode     = flag.String("mode", "bundler", `"statusquo", "bundler", or "innetwork"`)
		alg      = flag.String("alg", "copa", `inner-loop algorithm: "copa", "basicdelay", "bbr"`)
		sched    = flag.String("sched", "sfq", `sendbox scheduler: "sfq", "fifo", "fqcodel", "prio:<port>"`)
		endhost  = flag.String("endhost", "cubic", `endhost congestion control: "cubic", "reno", "bbr"`)
		rate     = flag.Float64("rate", 96e6, "bottleneck rate, bits/s")
		rtt      = flag.Duration("rtt", 50*time.Millisecond, "path round-trip propagation delay")
		load     = flag.Float64("load", 84e6, "offered load, bits/s")
		requests = flag.Int("requests", 10000, "number of requests to complete")
		seed     = flag.Int64("seed", 1, "simulation seed")
		tunnel   = flag.Bool("tunnel", false, "use encapsulation-based epoch marking (§4.5 tunnel mode)")
		asJSON   = flag.Bool("json", false, "emit the structured result as JSON instead of text")
	)
	flag.Parse()

	e, ok := exp.Lookup("fct")
	if !ok {
		fmt.Fprintln(os.Stderr, "fct experiment not registered")
		os.Exit(1)
	}
	res, err := e.Run(*seed, exp.Params{
		"mode":     *mode,
		"alg":      *alg,
		"sched":    *sched,
		"endhost":  *endhost,
		"rate":     strconv.FormatFloat(*rate, 'g', -1, 64),
		"rtt":      rtt.String(),
		"load":     strconv.FormatFloat(*load, 'g', -1, 64),
		"requests": strconv.Itoa(*requests),
		"tunnel":   strconv.FormatBool(*tunnel),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if completed := int(res.Metric("completed")); completed < *requests {
		fmt.Fprintf(os.Stderr, "warning: only %d of %d requests completed before the horizon\n",
			completed, *requests)
	}
	if *asJSON {
		if err := exp.WriteJSON(os.Stdout, []exp.Result{res}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(res.Report)
}
