// Command bundler-sim runs a single Bundler emulation scenario and prints
// its flow-completion statistics — a quick way to explore how the paper's
// §7.1 setup responds to different knobs.
//
// Example:
//
//	bundler-sim -mode bundler -alg copa -sched sfq -requests 20000
//	bundler-sim -mode statusquo -rate 48e6 -rtt 100ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bundler/internal/scenario"
	"bundler/internal/sim"
	"bundler/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "bundler", `"statusquo", "bundler", or "innetwork"`)
		alg      = flag.String("alg", "copa", `inner-loop algorithm: "copa", "basicdelay", "bbr"`)
		sched    = flag.String("sched", "sfq", `sendbox scheduler: "sfq", "fifo", "fqcodel", "prio:<port>"`)
		endhost  = flag.String("endhost", "cubic", `endhost congestion control: "cubic", "reno", "bbr"`)
		rate     = flag.Float64("rate", 96e6, "bottleneck rate, bits/s")
		rtt      = flag.Duration("rtt", 50*time.Millisecond, "path round-trip propagation delay")
		load     = flag.Float64("load", 84e6, "offered load, bits/s")
		requests = flag.Int("requests", 10000, "number of requests to complete")
		seed     = flag.Int64("seed", 1, "simulation seed")
		tunnel   = flag.Bool("tunnel", false, "use encapsulation-based epoch marking (§4.5 tunnel mode)")
	)
	flag.Parse()

	rec := scenario.RunFCT(scenario.FCTOptions{
		Seed:       *seed,
		LinkRate:   *rate,
		RTT:        sim.FromSeconds(rtt.Seconds()),
		Requests:   *requests,
		OfferedBps: *load,
		Mode:       *mode,
		InnerAlg:   *alg,
		Scheduler:  *sched,
		EndhostCC:  *endhost,
		TunnelMode: *tunnel,
	})
	if rec.Completed < *requests {
		fmt.Fprintf(os.Stderr, "warning: only %d of %d requests completed before the horizon\n",
			rec.Completed, *requests)
	}

	s := rec.Slowdowns.Summarize()
	fmt.Printf("mode=%s alg=%s sched=%s endhost=%s rate=%.0fMbps rtt=%s load=%.0fMbps\n",
		*mode, *alg, *sched, *endhost, *rate/1e6, rtt, *load/1e6)
	fmt.Printf("completed %d requests, %.1f MB total\n", rec.Completed, float64(rec.Bytes)/1e6)
	fmt.Printf("slowdown: p10=%.2f p50=%.2f p90=%.2f p99=%.2f mean=%.2f\n",
		s.P10, s.P50, s.P90, s.P99, s.Mean)
	for c := workload.ClassSmall; c <= workload.ClassLarge; c++ {
		cs := rec.ByClass[c].Summarize()
		fmt.Printf("  %-12s n=%-6d p50=%.2f p90=%.2f p99=%.2f\n", c, cs.N, cs.P50, cs.P90, cs.P99)
	}
	fmt.Printf("FCT: p50=%.1fms p99=%.1fms\n", rec.FCTms.Quantile(0.5), rec.FCTms.Quantile(0.99))
}
