// Command bundler-bench regenerates the paper's evaluation: every figure
// in §7–§8 plus the §4.5 microbenchmarks, printed as the same rows and
// series the paper reports. The experiment list, help text, and "all"
// ordering all come from the internal/exp registry — registering a new
// experiment in internal/scenario is enough to make it runnable here.
//
// Example:
//
//	bundler-bench                             # everything (several minutes)
//	bundler-bench -experiment fig9            # just the headline FCT comparison
//	bundler-bench -requests 50000             # closer to paper scale
//	bundler-bench -experiment fct -set mode=statusquo,rate=48e6
//	bundler-bench -sweep -parallel 8 -out results.json
//	bundler-bench -sweep -grid "rate=24e6,96e6;sched=sfq,fifo;requests=2000;seed=1,2"
//	bundler-bench -sweep -store /tmp/rs -resume -out results.json   # checkpoint + resume
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strconv"
	"strings"
	"time"

	"bundler/internal/exp"
	"bundler/internal/perf"
	"bundler/internal/runstore"
	_ "bundler/internal/scenario" // registers every experiment
	"bundler/internal/topo"
)

// defaultGrid is the out-of-the-box -sweep space: 3 rates × 3 RTTs ×
// 2 schedulers × 2 loads = 36 points of the single-point FCT experiment.
const defaultGrid = "rate=24e6,48e6,96e6;rtt=20ms,50ms,100ms;sched=sfq,fifo;loadfrac=0.5,0.875;requests=1200"

func main() {
	var (
		experiment = flag.String("experiment", "all",
			strings.Join(exp.Names(), "|")+"|all (aliases: "+aliasHelp()+"; -config files add more)")
		requests = flag.Int("requests", 15000,
			"requests per FCT experiment (paper: 1,000,000); when not set, each experiment's declared default applies")
		seed     = flag.Int64("seed", 1, "simulation seed")
		dump     = flag.String("dump", "", "directory to write CSV traces of the timeline figures (fig2, fig10)")
		set      = flag.String("set", "", "extra experiment params, comma-separated k=v pairs (see -experiment <name> -params)")
		params   = flag.Bool("params", false, "print the selected experiment's parameters and exit")
		sweep    = flag.Bool("sweep", false, "run a parameter sweep of -sweepexp over -grid instead of single experiments")
		sweepExp = flag.String("sweepexp", "fct", "experiment the sweep grid parameterizes")
		grid     = flag.String("grid", defaultGrid, `sweep grid "axis=v1,v2;..."; a seed axis overrides -seed`)
		parallel = flag.Int("parallel", runtime.NumCPU(), "sweep worker goroutines")
		out      = flag.String("out", "", "sweep results file (.json or .csv); default: CSV to stdout")
		benchOut = flag.String("bench-out", "",
			"run the perf harness and write its JSON trajectory (e.g. BENCH_main.json), then exit")
		benchFilter = flag.String("bench-filter", "",
			"with -bench-out: regexp selecting which benchmarks to run (default all)")
		config = flag.String("config", "",
			"comma-separated declarative scenario files or directories (*.json) to load and register as experiments; a config named like a built-in shadows it")
		store = flag.String("store", "",
			"run store directory: completed sweep cells are checkpointed there as content-addressed manifests (default with -resume: $BUNDLER_RUNSTORE or the user cache dir)")
		resume = flag.Bool("resume", false,
			"load already-stored sweep cells from the run store instead of re-running them (only missing cells execute)")
		storePrune = flag.Duration("store-prune", 0,
			"evict run-store cells older than this age (e.g. 720h), then exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
		tracePath  = flag.String("trace", "", "write a runtime execution trace to this file (go tool trace)")
	)
	flag.Parse()
	stopProfiles = startProfiles(*cpuProfile, *memProfile, *tracePath)
	defer stopProfiles()

	// Distinguish "-requests 15000" from the flag's default: experiments
	// (and loaded configs in particular) declare their own defaults, and
	// the flag must only override them when the user actually set it.
	requestsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "requests" {
			requestsSet = true
		}
	})

	loadConfigs(*config)

	if *storePrune > 0 {
		pruneStore(*store, *storePrune)
		return
	}
	if *benchOut != "" {
		runBench(*benchOut, *benchFilter)
		return
	}
	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			fatal("dump:", err)
		}
	}

	if *sweep {
		runSweep(*sweepExp, *grid, *set, *seed, *parallel, *out, *store, *resume)
		return
	}
	if *resume || *store != "" {
		fatal("-store/-resume only apply with -sweep (single runs are cheap; the store exists to checkpoint grids)")
	}

	pairs, err := parseSet(*set)
	if err != nil {
		fatal(err)
	}

	if *experiment == "all" {
		if *params {
			for _, e := range exp.All() {
				printParams(e)
			}
			return
		}
		// -set keys must be declared by at least one experiment; each
		// experiment then receives only the keys it declares.
		for k := range pairs {
			if !anyDeclares(k) {
				fatal(fmt.Sprintf("-set %s: no experiment declares that param (see -params)", k))
			}
		}
		for _, e := range exp.All() {
			runOne(e, *seed, paramsFor(e, *requests, requestsSet, *dump, pairs, false), *dump)
		}
		return
	}
	e, ok := exp.Lookup(*experiment)
	if !ok {
		fatal("unknown experiment " + *experiment + "; see -help")
	}
	if *params {
		printParams(e)
		return
	}
	runOne(e, *seed, paramsFor(e, *requests, requestsSet, *dump, pairs, true), *dump)
}

// paramsFor assembles an experiment's params: the -requests and -dump
// flags map onto the declared "requests"/"artifacts" params, and -set
// pairs are checked against the declaration (strict mode rejects
// unknown keys; "all" mode skips keys other experiments own). -requests
// applies only when explicitly given, so an experiment's own declared
// default — a loaded config's, say — wins otherwise.
func paramsFor(e exp.Experiment, requests int, requestsSet bool, dumpDir string, pairs map[string]string, strict bool) exp.Params {
	declared := map[string]bool{}
	for _, pd := range e.Params() {
		declared[pd.Name] = true
	}
	p := exp.Params{}
	if requestsSet && declared["requests"] {
		p["requests"] = strconv.Itoa(requests)
	}
	if dumpDir != "" && declared["artifacts"] {
		p["artifacts"] = "true"
	}
	for k, v := range pairs {
		if !declared[k] {
			if strict {
				fatal(fmt.Sprintf("-set %s: %s has no such param (see -experiment %s -params)",
					k, e.Name(), e.Name()))
			}
			continue
		}
		p[k] = v
	}
	return p
}

func anyDeclares(param string) bool {
	for _, e := range exp.All() {
		for _, pd := range e.Params() {
			if pd.Name == param {
				return true
			}
		}
	}
	return false
}

func runOne(e exp.Experiment, seed int64, params exp.Params, dumpDir string) {
	res, err := e.Run(seed, params)
	if err != nil {
		fatal(e.Name()+":", err)
	}
	fmt.Print(res.Report)
	for _, a := range res.Artifacts {
		dumpArtifact(dumpDir, a)
	}
}

// openStore opens the run store for a sweep: at storeDir when given,
// else (with -resume) at the default location. Returns nil when the
// store is disabled.
func openStore(storeDir string, resume bool) *runstore.Store {
	if storeDir == "" {
		if !resume {
			return nil
		}
		storeDir = runstore.DefaultDir()
	}
	s, err := runstore.Open(storeDir)
	if err != nil {
		fatal(err)
	}
	return s
}

func pruneStore(storeDir string, age time.Duration) {
	s, err := runstore.Open(storeDir) // "" falls back to the default dir
	if err != nil {
		fatal(err)
	}
	removed, err := s.Prune(age)
	if err != nil {
		fatal("store-prune:", err)
	}
	fmt.Fprintf(os.Stderr, "store: evicted %d cells older than %s from %s\n", removed, age, s.Root())
}

func runSweep(name, gridSpec, setSpec string, seed int64, parallel int, outPath, storeDir string, resume bool) {
	e, ok := exp.Lookup(name)
	if !ok {
		fatal("sweep: unknown experiment " + name)
	}
	g, err := exp.ParseGrid(gridSpec)
	if err != nil {
		fatal(err)
	}
	// -set pairs become single-value axes (fixed across the sweep); a
	// -set seed pins the sweep seed the same way the -seed flag does.
	pairs, err := parseSet(setSpec)
	if err != nil {
		fatal(err)
	}
	if sv, ok := pairs["seed"]; ok {
		if len(g.Seeds) > 0 {
			fatal("seed given both in -grid and -set; pick one")
		}
		s, perr := strconv.ParseInt(sv, 10, 64)
		if perr != nil {
			fatal(fmt.Sprintf("-set seed=%q: %v", sv, perr))
		}
		g.Seeds = []int64{s}
		delete(pairs, "seed")
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []int64{seed}
	}
	swept := map[string]bool{}
	for _, a := range g.Axes {
		swept[a.Name] = true
	}
	for _, k := range sortedKeys(pairs) {
		if swept[k] {
			fatal(fmt.Sprintf("param %s given both in -grid and -set; pick one", k))
		}
		g.Axes = append(g.Axes, exp.Axis{Name: k, Values: []string{pairs[k]}})
	}
	st := openStore(storeDir, resume)
	total := g.Size()
	fmt.Fprintf(os.Stderr, "sweep: %s over %d points, %d workers\n", e.Name(), total, parallel)
	if st != nil {
		mode := "checkpointing to"
		if resume {
			mode = "resuming from"
		}
		fmt.Fprintf(os.Stderr, "sweep: %s run store %s\n", mode, st.Root())
	}
	opt := exp.Options{
		Parallel: parallel,
		Resume:   resume,
		Progress: func(done, total, cached int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d points (%d cached)", done, total, cached)
		},
	}
	if st != nil {
		opt.Cache = st
	}
	results, stats, err := exp.SweepOpts(e, g, opt)
	if results == nil && err != nil {
		fatal(err) // the grid itself was rejected; nothing ran
	}
	fmt.Fprintln(os.Stderr)
	fmt.Fprintf(os.Stderr, "sweep: %d points: %d cached, %d executed\n",
		stats.Total, stats.Cached, stats.Executed)
	if st != nil {
		if serr := st.Err(); serr != nil {
			fmt.Fprintln(os.Stderr, "sweep: warning: run-store checkpointing incomplete:", serr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep: some points failed:", err)
	}

	switch {
	case outPath == "":
		if err := exp.WriteCSV(os.Stdout, results); err != nil {
			fatal(err)
		}
	default:
		f, ferr := os.Create(outPath)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		emit := exp.WriteJSON
		if strings.HasSuffix(outPath, ".csv") {
			emit = exp.WriteCSV
		}
		if werr := emit(f, results); werr != nil {
			fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "wrote %d results to %s\n", len(results), outPath)
	}
	if err != nil {
		stopProfiles() // os.Exit skips the deferred flush
		os.Exit(1)
	}
}

// runBench executes the internal/perf suite and writes the trajectory
// file (current measurements next to the frozen pre-pooling baseline).
// Streams are strictly separated so CI log parsing is reliable: stdout
// carries only the machine-parseable `go test -bench`-format result
// lines, while progress, measurements-in-flight, and the "wrote ..."
// confirmation all go to stderr.
func runBench(outPath, filter string) {
	var re *regexp.Regexp
	if filter != "" {
		var err error
		if re, err = regexp.Compile(filter); err != nil {
			fatal("-bench-filter:", err)
		}
	}
	records, err := perf.MeasureAll(re, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		fatal(err)
	}
	if len(records) == 0 {
		fatal("-bench-filter matched no benchmarks")
	}
	for _, r := range records {
		fmt.Println(r.GoBenchLine())
	}
	f, err := os.Create(outPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := perf.WriteJSON(f, records); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmark records to %s\n", len(records), outPath)
}

// loadConfigs registers every declarative scenario named by the -config
// flag: a comma-separated list of files and/or directories (a directory
// contributes its *.json files, sorted). Loaded configs become ordinary
// registry entries — runnable, listable, sweepable — and a config whose
// name matches a built-in experiment replaces it for this invocation.
func loadConfigs(spec string) {
	if spec == "" {
		return
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		paths := []string{entry}
		if st, err := os.Stat(entry); err == nil && st.IsDir() {
			var gerr error
			paths, gerr = filepath.Glob(filepath.Join(entry, "*.json"))
			if gerr != nil || len(paths) == 0 {
				fatal("-config " + entry + ": no *.json files found")
			}
			sort.Strings(paths)
		}
		for _, path := range paths {
			e, replaced, err := topo.RegisterFile(path)
			if err != nil {
				fatal(err)
			}
			if replaced {
				fmt.Fprintf(os.Stderr, "config %s: %q shadows the built-in experiment\n", path, e.Name())
			}
		}
	}
}

// parseSet parses "k=v,k2=v2".
func parseSet(s string) (map[string]string, error) {
	pairs := map[string]string{}
	if s == "" {
		return pairs, nil
	}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-set %q: want k=v pairs", pair)
		}
		pairs[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return pairs, nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func printParams(e exp.Experiment) {
	fmt.Printf("%s — %s\n", e.Name(), e.Desc())
	for _, p := range e.Params() {
		fmt.Printf("  %-10s default %-8q %s\n", p.Name, p.Default, p.Help)
	}
}

func aliasHelp() string {
	var parts []string
	aliases := exp.Aliases()
	for _, a := range exp.AliasNames() {
		parts = append(parts, a+"→"+aliases[a])
	}
	return strings.Join(parts, ",")
}

func dumpArtifact(dir string, a exp.Artifact) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, a.Name)
	if err := os.WriteFile(path, []byte(a.Data), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dump:", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

// stopProfiles finalizes any active -cpuprofile/-memprofile/-trace
// captures. It is a package variable so the os.Exit paths (fatal, the
// sweep's failure exit) can flush profiles too — os.Exit skips defers,
// and a profile of a failing run is exactly the one worth keeping.
var stopProfiles = func() {}

// startProfiles begins the requested captures and returns the (idempotent)
// finisher: stop the CPU profile and trace, then snapshot the heap.
func startProfiles(cpuPath, memPath, tracePath string) func() {
	create := func(path string) *os.File {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		return f
	}
	var cpuF, traceF *os.File
	if cpuPath != "" {
		cpuF = create(cpuPath)
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			fatal("cpuprofile:", err)
		}
	}
	if tracePath != "" {
		traceF = create(tracePath)
		if err := trace.Start(traceF); err != nil {
			fatal("trace:", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
		if memPath != "" {
			f := create(memPath)
			runtime.GC() // up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("memprofile:", err)
			}
			f.Close()
		}
	}
}

func fatal(args ...any) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, args...)
	os.Exit(1)
}
