// Command bundler-bench regenerates the paper's evaluation: every figure
// in §7–§8 plus the §4.5 microbenchmarks, printed as the same rows and
// series the paper reports. Use -experiment to run a single one.
//
// Example:
//
//	bundler-bench                       # everything (several minutes)
//	bundler-bench -experiment fig9      # just the headline FCT comparison
//	bundler-bench -requests 50000       # closer to paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bundler/internal/scenario"
	"bundler/internal/sim"
	"bundler/internal/stats"
	"bundler/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2|fig5|fig6|fig7|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|sec72|sec74|sec76|all")
		requests   = flag.Int("requests", 15000, "requests per FCT experiment (paper: 1,000,000)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		dump       = flag.String("dump", "", "directory to write CSV traces of the timeline figures (fig2, fig10)")
	)
	flag.Parse()
	dumpDir = *dump
	if dumpDir != "" {
		if err := os.MkdirAll(dumpDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
	}

	runs := map[string]func(){
		"fig2":     func() { fig2(*seed) },
		"fig5":     func() { fig56(*seed) },
		"fig6":     func() { fig56(*seed) },
		"fig7":     func() { fig7(*seed) },
		"fig9":     func() { fig9(*seed, *requests) },
		"fig10":    func() { fig10(*seed) },
		"fig11":    func() { fig11(*seed, *requests/2) },
		"fig12":    func() { fig12(*seed) },
		"fig13":    func() { fig13(*seed, *requests) },
		"fig14":    func() { fig14(*seed, *requests) },
		"fig15":    func() { fig15(*seed, *requests) },
		"fig16":    func() { fig16(*seed) },
		"sec72":    func() { sec72(*seed, *requests) },
		"sec74":    func() { sec74(*seed, *requests) },
		"sec76":    func() { sec76(*seed) },
		"policies": func() { policies(*seed, *requests) },
	}
	if *experiment == "all" {
		var names []string
		for n := range runs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if n == "fig5" { // fig5/fig6 share one run
				continue
			}
			runs[n]()
		}
		return
	}
	run, ok := runs[*experiment]
	if !ok {
		fmt.Println("unknown experiment; see -help")
		return
	}
	run()
}

func header(s string) {
	fmt.Printf("\n=== %s ===\n", s)
}

// dumpDir, when non-empty, receives CSV traces for the timeline figures.
var dumpDir string

func dumpCSV(name string, write func(f *os.File) error) {
	if dumpDir == "" {
		return
	}
	path := filepath.Join(dumpDir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dump:", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "dump:", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func fig2(seed int64) {
	header("Figure 2: queue shifting (single flow, 96 Mbit/s, 50 ms RTT)")
	res := scenario.RunQueueShift(seed, 30*sim.Second)
	fmt.Printf("%-28s %-22s %-20s\n", "", "bottleneck queue (ms)", "edge/sendbox queue (ms)")
	fmt.Printf("%-28s %-22.1f %-20.1f\n", "Status Quo",
		res.StatusQuoBottleneck.MeanOver(5*sim.Second, 30*sim.Second),
		res.StatusQuoEdge.MeanOver(5*sim.Second, 30*sim.Second))
	fmt.Printf("%-28s %-22.1f %-20.1f\n", "With Bundler",
		res.BundlerBottleneck.MeanOver(5*sim.Second, 30*sim.Second),
		res.BundlerSendbox.MeanOver(5*sim.Second, 30*sim.Second))
	fmt.Printf("throughput: status quo %.1f Mbit/s, bundler %.1f Mbit/s\n",
		res.StatusQuoThroughput, res.BundlerThroughput)
	dumpCSV("fig2_queues.csv", func(f *os.File) error {
		return trace.WriteTimeSeries(f,
			[]string{"statusquo_bottleneck_ms", "bundler_bottleneck_ms", "bundler_sendbox_ms"},
			[]*stats.TimeSeries{&res.StatusQuoBottleneck, &res.BundlerBottleneck, &res.BundlerSendbox})
	})
}

func fig56(seed int64) {
	header("Figures 5+6: measurement accuracy (9 configs: {20,50,100 ms} × {24,48,96 Mbit/s})")
	res := scenario.RunMeasurementAccuracy(seed, 20*sim.Second)
	fmt.Printf("RTT estimate error:  p10=%+.2fms p50=%+.2fms p90=%+.2fms  within ±1.2ms: %.0f%% (paper: 80%%)\n",
		res.RTTErrMs.Quantile(0.1), res.RTTErrMs.Quantile(0.5), res.RTTErrMs.Quantile(0.9), res.WithinRTT*100)
	fmt.Printf("rate estimate error: p10=%+.2fMbps p50=%+.2fMbps p90=%+.2fMbps  within ±4Mbps: %.0f%% (paper: 80%%)\n",
		res.RateErrMbps.Quantile(0.1), res.RateErrMbps.Quantile(0.5), res.RateErrMbps.Quantile(0.9), res.WithinRate*100)
}

func fig7(seed int64) {
	header("Figure 7: imbalanced multipath visibility (4 paths)")
	res := scenario.RunFig7(seed, 20*sim.Second)
	for i, ts := range res.PathRTTms {
		fmt.Printf("path %d true RTT: %.1f ms (mean)\n", i+1, ts.MeanOver(0, 20*sim.Second))
	}
	fmt.Printf("out-of-order congestion-ACK fraction: %.1f%% (threshold 5%%)\n", res.OOOFraction*100)
	fmt.Printf("sendbox mode: %v\n", res.Mode)
}

func printFCTRows(rows []scenario.Fig9Result) {
	fmt.Printf("%-22s %8s %8s | median slowdown by size: %-10s %-12s %-10s\n",
		"", "p50", "p99", "≤10KB", "10KB-1MB", ">1MB")
	for _, r := range rows {
		fmt.Printf("%-22s %8.2f %8.2f | %26.2f %-12.2f %-10.2f\n",
			r.Label, r.Median, r.P99, r.ByClass[0], r.ByClass[1], r.ByClass[2])
	}
}

func fig9(seed int64, requests int) {
	header(fmt.Sprintf("Figure 9: FCT slowdowns (%d requests; paper: 1M, medians 1.76 → 1.26)", requests))
	printFCTRows(scenario.RunFig9(seed, requests))
}

func fig10(seed int64) {
	header("Figure 10: time-varying cross traffic (3 × 60 s phases)")
	res := scenario.RunFig10(seed)
	fmt.Printf("%-28s %12s %12s %10s %12s %14s\n",
		"phase", "bundle Mb/s", "cross Mb/s", "queue ms", "pass-through", "short-flow p50")
	for _, p := range res.Phases {
		fmt.Printf("%-28s %12.1f %12.1f %10.1f %11.0f%% %14.2f\n",
			p.Label, p.BundleMbps, p.CrossMbps, p.MeanQueueMs, p.PassThroughFrac*100, p.ShortFlowSlowdowns.P50)
	}
	dumpCSV("fig10_timeline.csv", func(f *os.File) error {
		return trace.WriteTimeSeries(f,
			[]string{"bundle_mbps", "cross_mbps", "queue_ms", "mode"},
			[]*stats.TimeSeries{&res.BundleTput, &res.CrossTput, &res.QueueMs, &res.Mode})
	})
}

func fig11(seed int64, requests int) {
	header("Figure 11: short-flow cross traffic sweep (bundle fixed at 48 Mbit/s)")
	fmt.Printf("%-12s %12s %14s %16s\n", "cross Mb/s", "status quo", "bundler-copa", "bundler-nimbus")
	for _, p := range scenario.RunFig11(seed, requests) {
		fmt.Printf("%-12.0f %12.2f %14.2f %16.2f\n",
			p.CrossBps/1e6, p.Median["statusquo"], p.Median["bundler-copa"], p.Median["bundler-nimbus"])
	}
}

func fig12(seed int64) {
	header("Figure 12: persistent elastic cross flows (paper: 12-22% bundle throughput loss)")
	fmt.Printf("%-12s %12s %14s %16s\n", "cross flows", "status quo", "bundler-copa", "bundler-nimbus")
	for _, p := range scenario.RunFig12(seed) {
		fmt.Printf("%-12d %9.1f Mb/s %11.1f Mb/s %13.1f Mb/s\n",
			p.CrossFlows, p.Throughput["statusquo"], p.Throughput["bundler-copa"], p.Throughput["bundler-nimbus"])
	}
}

func fig13(seed int64, requests int) {
	header("Figure 13: competing bundles (aggregate 84 Mbit/s)")
	for _, r := range scenario.RunFig13(seed, requests) {
		var parts []string
		for i, m := range r.Medians {
			parts = append(parts, fmt.Sprintf("bundle%d p50=%.2f", i+1, m))
		}
		fmt.Printf("%-24s %s\n", r.Label, strings.Join(parts, "  "))
	}
}

func fig14(seed int64, requests int) {
	header("Figure 14: inner-loop congestion control comparison")
	printFCTRows(scenario.RunFig14(seed, requests))
}

func fig15(seed int64, requests int) {
	header("Figure 15: idealized TCP proxy (fixed 450-packet endhost windows)")
	printFCTRows(scenario.RunFig15(seed, requests))
}

func fig16(seed int64) {
	header("Figure 16: emulated wide-area paths (paper: 57% lower latencies, throughput within 1%)")
	fmt.Printf("%-12s %10s %12s %10s | %14s %12s\n",
		"path", "base ms", "statusquo ms", "bundler ms", "statusquo Mb/s", "bundler Mb/s")
	for _, r := range scenario.RunFig16(seed, 15*sim.Second) {
		fmt.Printf("%-12s %10.1f %12.1f %10.1f | %14.0f %12.0f\n",
			r.Name, r.BaseRTT, r.StatusQuoRTT, r.BundlerRTT, r.StatusQuoMbps, r.BundlerMbps)
	}
}

func sec72(seed int64, requests int) {
	header("§7.2: other sendbox policies")
	c := scenario.RunSec72CoDel(seed, 20*sim.Second)
	fmt.Printf("FQ-CoDel probe RTTs: status quo p50=%.1fms p99=%.1fms | bundler p50=%.1fms p99=%.1fms\n",
		c.StatusQuoMedianMs, c.StatusQuoP99Ms, c.BundlerMedianMs, c.BundlerP99Ms)
	p := scenario.RunSec72Prio(seed, requests)
	fmt.Printf("strict priority: favored class p50 %.2f (status quo %.2f); other class p50 %.2f (status quo %.2f)\n",
		p.BundlerHigh, p.StatusQuoHigh, p.BundlerLow, p.StatusQuoLow)
}

func policies(seed int64, requests int) {
	header("Extension: full sendbox policy sweep (schedulers vs AQMs)")
	fmt.Printf("%-10s %14s %12s %12s %12s\n", "policy", "median slow", "p99 slow", "probe p50", "probe p99")
	for _, r := range scenario.RunPolicySweep(seed, requests/2) {
		fmt.Printf("%-10s %14.2f %12.2f %10.1fms %10.1fms\n",
			r.Policy, r.MedianSlowdown, r.P99Slowdown, r.ProbeP50Ms, r.ProbeP99Ms)
	}
}

func sec74(seed int64, requests int) {
	header("§7.4: endhost congestion control")
	res := scenario.RunSec74(seed, requests)
	var ccs []string
	for cc := range res {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	for _, cc := range ccs {
		pair := res[cc]
		fmt.Printf("endhost %-6s status quo p50=%.2f | bundler p50=%.2f (%.0f%% lower)\n",
			cc, pair[0].Median, pair[1].Median, (1-pair[1].Median/pair[0].Median)*100)
	}
}

func sec76(seed int64) {
	header("§7.6: multipath detection sweep (paper: ≤0.4% single path, ≥20% multipath)")
	points := scenario.RunSec76(seed, 10*sim.Second)
	fmt.Printf("%-10s %-8s %-8s %-10s %-8s\n", "rate Mb/s", "RTT ms", "paths", "OOO frac", "disabled")
	for _, p := range points {
		fmt.Printf("%-10.0f %-8.0f %-8d %-10.4f %-8v\n", p.RateMbps, p.RTTms, p.Paths, p.OOOFrac, p.Disabled)
	}
}
