// Package bench regenerates every table and figure in the paper's
// evaluation as Go benchmarks. Each benchmark runs the corresponding
// scenario at a reduced (but representative) scale and reports the same
// quantities the paper plots as custom benchmark metrics, so
// `go test -bench=. -benchmem` reproduces the whole evaluation and
// cmd/bundler-bench pretty-prints it.
//
// Absolute numbers differ from the paper (their substrate was a Linux
// testbed; ours is a deterministic emulator, and request counts are scaled
// down) — EXPERIMENTS.md records the paper-vs-measured comparison. The
// comparative structure (who wins, by roughly what factor, where the
// crossovers fall) is what these benchmarks pin down.
package bench

import (
	"strings"
	"testing"

	"bundler/internal/bundle"
	"bundler/internal/ccalg"
	"bundler/internal/qdisc"
	"bundler/internal/scenario"
	"bundler/internal/sim"
	"bundler/internal/tcp"
)

const benchRequests = 15000

// metric sanitizes a label for testing.B.ReportMetric (no whitespace).
func metric(parts ...string) string {
	s := strings.Join(parts, "/")
	return strings.ReplaceAll(s, " ", "_")
}

func BenchmarkFig02QueueShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunQueueShift(1, 30*sim.Second)
		b.ReportMetric(res.StatusQuoBottleneck.MeanOver(5*sim.Second, 30*sim.Second), "statusquo-bottleneck-ms")
		b.ReportMetric(res.BundlerBottleneck.MeanOver(5*sim.Second, 30*sim.Second), "bundler-bottleneck-ms")
		b.ReportMetric(res.BundlerSendbox.MeanOver(5*sim.Second, 30*sim.Second), "bundler-sendbox-ms")
		b.ReportMetric(res.BundlerThroughput/res.StatusQuoThroughput, "throughput-ratio")
	}
}

func BenchmarkFig05RateAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunMeasurementAccuracy(1, 20*sim.Second)
		b.ReportMetric(res.WithinRate, "frac-within-4Mbps")
		b.ReportMetric(res.RateErrMbps.Quantile(0.5), "p50-err-Mbps")
		b.ReportMetric(res.RateErrMbps.Quantile(0.9), "p90-err-Mbps")
	}
}

func BenchmarkFig06RTTAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunMeasurementAccuracy(1, 20*sim.Second)
		b.ReportMetric(res.WithinRTT, "frac-within-1.2ms")
		b.ReportMetric(res.RTTErrMs.Quantile(0.5), "p50-err-ms")
		b.ReportMetric(res.RTTErrMs.Quantile(0.9), "p90-err-ms")
	}
}

func BenchmarkFig07Multipath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFig7(1, 20*sim.Second)
		b.ReportMetric(res.OOOFraction, "ooo-fraction")
		b.ReportMetric(float64(res.Mode), "mode")
	}
}

func BenchmarkFig09FCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFig9(1, benchRequests)
		for _, r := range res {
			b.ReportMetric(r.Median, metric(r.Label, "median-slowdown"))
			b.ReportMetric(r.P99, metric(r.Label, "p99-slowdown"))
		}
	}
}

func BenchmarkFig10CrossTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFig10(1)
		for pi, p := range res.Phases {
			prefix := []string{"none", "bufferfilling", "web"}[pi]
			b.ReportMetric(p.BundleMbps, metric(prefix, "bundle-Mbps"))
			b.ReportMetric(p.CrossMbps, metric(prefix, "cross-Mbps"))
			b.ReportMetric(p.ShortFlowSlowdowns.P50, metric(prefix, "short-p50-slowdown"))
			b.ReportMetric(p.PassThroughFrac, metric(prefix, "passthrough-frac"))
		}
	}
}

func BenchmarkFig11ShortCross(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range scenario.RunFig11(1, 6000) {
			for label, med := range p.Median {
				b.ReportMetric(med, metric(label, "median"))
				_ = label
			}
			_ = p
		}
	}
}

func BenchmarkFig12ElasticCross(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range scenario.RunFig12(1) {
			sq := p.Throughput["statusquo"]
			if sq > 0 {
				b.ReportMetric(p.Throughput["bundler-copa"]/sq, "copa-tput-ratio")
				b.ReportMetric(p.Throughput["bundler-nimbus"]/sq, "nimbus-tput-ratio")
			}
		}
	}
}

func BenchmarkFig13CompetingBundles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range scenario.RunFig13(1, benchRequests) {
			for bi, m := range r.Medians {
				b.ReportMetric(m, metric(r.Label, "bundle-median"))
				_ = bi
			}
		}
	}
}

func BenchmarkFig14InnerCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range scenario.RunFig14(1, benchRequests) {
			b.ReportMetric(r.Median, metric(r.Label, "median-slowdown"))
		}
	}
}

func BenchmarkFig15Proxy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range scenario.RunFig15(1, benchRequests) {
			b.ReportMetric(r.ByClass[1], metric(r.Label, "medium-median"))
			b.ReportMetric(r.ByClass[2], metric(r.Label, "large-median"))
		}
	}
}

func BenchmarkFig16WAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range scenario.RunFig16(1, 15*sim.Second) {
			b.ReportMetric(r.BundlerRTT/r.StatusQuoRTT, metric(r.Name, "rtt-ratio"))
			b.ReportMetric(r.BundlerMbps/r.StatusQuoMbps, metric(r.Name, "tput-ratio"))
		}
	}
}

func BenchmarkSec72OtherPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := scenario.RunSec72CoDel(1, 20*sim.Second)
		b.ReportMetric(c.BundlerMedianMs/c.StatusQuoMedianMs, "fqcodel-rtt-ratio")
		p := scenario.RunSec72Prio(1, 8000)
		b.ReportMetric(p.BundlerHigh/p.StatusQuoHigh, "prio-high-fct-ratio")
	}
}

func BenchmarkSec74EndhostCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for cc, pair := range scenario.RunSec74(1, benchRequests) {
			b.ReportMetric(pair[1].Median/pair[0].Median, metric(cc, "bundler-vs-statusquo"))
		}
	}
}

func BenchmarkSec76MultipathSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := scenario.RunSec76(1, 10*sim.Second)
		maxSingle, minMulti := 0.0, 1.0
		for _, p := range points {
			if p.Paths == 1 {
				if p.OOOFrac > maxSingle {
					maxSingle = p.OOOFrac
				}
			} else if p.OOOFrac < minMulti {
				minMulti = p.OOOFrac
			}
		}
		b.ReportMetric(maxSingle, "max-single-path-ooo")
		b.ReportMetric(minMulti, "min-multi-path-ooo")
	}
}

// --- Ablations of DESIGN.md's called-out choices ---

// BenchmarkAblationEpochRounding compares power-of-two epoch rounding
// (resilient to epoch-update loss) against exact sizing.
func BenchmarkAblationEpochRounding(b *testing.B) {
	run := func(exact bool) (matchedFrac float64) {
		n := scenario.NewNet(scenario.NetConfig{Seed: 1})
		cfg := scenario.DefaultBundleConfig()
		cfg.ExactEpochSize = exact
		site := n.AddSite(cfg)
		site.RunOpenLoop(scenario.Traffic{OfferedBps: 84e6, Requests: 1 << 30})
		n.Eng.RunUntil(20 * sim.Second)
		site.SB.Stop()
		total := site.SB.AcksMatched + site.SB.AcksSpurious
		if total == 0 {
			return 0
		}
		return float64(site.SB.AcksMatched) / float64(total)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "rounded-matched-frac")
		b.ReportMetric(run(true), "exact-matched-frac")
	}
}

// BenchmarkAblationWindow compares the 1-RTT measurement window against
// near-single-epoch operation: the wider window trades reaction speed for
// a steadier rate signal.
func BenchmarkAblationWindow(b *testing.B) {
	run := func(windowRTTs float64) float64 {
		n := scenario.NewNet(scenario.NetConfig{Seed: 1})
		cfg := scenario.DefaultBundleConfig()
		cfg.MeasurementWindowRTTs = windowRTTs
		site := n.AddSite(cfg)
		site.AddFlow(1<<40, tcp.NewCubic(), nil)
		n.Eng.RunUntil(20 * sim.Second)
		site.SB.Stop()
		// Stability metric: stddev of the applied pacing rate after
		// convergence.
		var v, m, c float64
		for i, at := range site.SB.RateTrace.T {
			if at > 5*sim.Second {
				m += site.SB.RateTrace.V[i]
				c++
			}
		}
		m /= c
		for i, at := range site.SB.RateTrace.T {
			if at > 5*sim.Second {
				d := site.SB.RateTrace.V[i] - m
				v += d * d
			}
		}
		return v / c
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(1), "window-1rtt-rate-var")
		b.ReportMetric(run(0.25), "window-quarter-rate-var")
	}
}

// BenchmarkAblationPIGains sweeps the §5.1 PI controller gains around the
// paper's α = β = 10, reporting the steady-state queue error in a fluid
// model.
func BenchmarkAblationPIGains(b *testing.B) {
	run := func(alpha, beta float64) float64 {
		pi := ccalg.NewPIController()
		pi.Alpha, pi.Beta = alpha, beta
		mu, arrival := 96e6, 96e6
		var qBits float64
		now := sim.Time(0)
		pi.Reset(mu, now)
		var lastQ sim.Time
		for i := 0; i < 2000; i++ {
			now += 10 * sim.Millisecond
			qBits += (arrival - pi.Rate()) * 0.01
			if qBits < 0 {
				qBits = 0
			}
			lastQ = sim.Time(qBits / mu * float64(sim.Second))
			pi.Update(lastQ, mu, now)
		}
		return (lastQ - pi.Target).Seconds() * 1000 // ms of error
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(10, 10), "paper-gains-err-ms")
		b.ReportMetric(run(1, 1), "low-gains-err-ms")
		b.ReportMetric(run(100, 100), "high-gains-err-ms")
	}
}

// BenchmarkAblationSFQBuckets compares sendbox SFQ bucket counts: too few
// buckets collide flows and lose isolation.
func BenchmarkAblationSFQBuckets(b *testing.B) {
	runWith := func(buckets int) float64 {
		n := scenario.NewNet(scenario.NetConfig{Seed: 1})
		cfg := &bundle.Config{Algorithm: "copa"}
		cfg.Scheduler = qdisc.NewSFQ(buckets, 1000)
		site := n.AddSite(cfg)
		rec := site.RunOpenLoop(scenario.Traffic{OfferedBps: 84e6, Requests: benchRequests})
		n.RunUntilDone(300*sim.Second, func() bool { return rec.Completed >= benchRequests })
		site.SB.Stop()
		return rec.Slowdowns.Median()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(runWith(1024), "sfq1024-median")
		b.ReportMetric(runWith(16), "sfq16-median")
	}
}

// BenchmarkExtPolicySweep runs the extended §7.2 policy sweep: every
// scheduler in the repository under the Fig 9 workload.
func BenchmarkExtPolicySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range scenario.RunPolicySweep(1, 8000) {
			b.ReportMetric(r.MedianSlowdown, metric(r.Policy, "median-slowdown"))
			b.ReportMetric(r.ProbeP99Ms, metric(r.Policy, "probe-p99-ms"))
		}
	}
}

// BenchmarkAblationTunnelMode compares hash-based epoch identification
// (§4.5 default) against the explicit encapsulation variant: tunnel mode
// eliminates spurious matches at the cost of per-packet overhead.
func BenchmarkAblationTunnelMode(b *testing.B) {
	run := func(tunnel bool) (matchedFrac, goodput float64) {
		n := scenario.NewNet(scenario.NetConfig{Seed: 1})
		cfg := scenario.DefaultBundleConfig()
		cfg.TunnelMode = tunnel
		site := n.AddSite(cfg)
		snd := site.AddFlow(1<<40, tcp.NewCubic(), nil)
		n.Eng.RunUntil(20 * sim.Second)
		site.SB.Stop()
		total := site.SB.AcksMatched + site.SB.AcksSpurious
		if total == 0 {
			return 0, 0
		}
		return float64(site.SB.AcksMatched) / float64(total),
			float64(snd.Acked()) * 8 / 20 / 1e6
	}
	for i := 0; i < b.N; i++ {
		mf, gp := run(false)
		b.ReportMetric(mf, "hash-matched-frac")
		b.ReportMetric(gp, "hash-goodput-Mbps")
		mf, gp = run(true)
		b.ReportMetric(mf, "tunnel-matched-frac")
		b.ReportMetric(gp, "tunnel-goodput-Mbps")
	}
}
